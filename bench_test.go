// Root benchmark harness: one benchmark per table and figure of the BTS
// paper's evaluation (see DESIGN.md's experiment index). Each benchmark
// times the regeneration of its experiment and, on the first iteration,
// prints the rows the paper reports so that `go test -bench=.` reproduces
// the entire evaluation section on stdout (EXPERIMENTS.md records a run).
package bts

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"bts/internal/arch"
	"bts/internal/eval"
	"bts/internal/workload"
)

var printOnce sync.Map

// report prints the experiment output once per benchmark name.
func report(b *testing.B, body func()) {
	if _, done := printOnce.LoadOrStore(b.Name(), true); !done {
		fmt.Printf("\n===== %s =====\n", b.Name())
		body()
	}
}

func BenchmarkTable1_PlatformComparison(b *testing.B) {
	var rows []eval.Table1Row
	for i := 0; i < b.N; i++ {
		rows = eval.Table1()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.Platform, fmt.Sprint(r.LogN), fmt.Sprint(r.Slots),
				fmt.Sprint(r.Bootstrap), r.Parallelism, fmt.Sprintf("%.3g", r.MultPerSec),
			})
		}
		fmt.Print(eval.FormatTable(
			[]string{"platform", "logN", "slots/bootstrap", "boot", "parallelism", "FHE mult/s"}, cells))
	})
}

func BenchmarkFig1_LevelAndEvkVsDnum(b *testing.B) {
	res := eval.Fig1()
	for i := 0; i < b.N; i++ {
		res = eval.Fig1()
	}
	report(b, func() {
		logNs := []int{15, 16, 17, 18}
		for _, logN := range logNs {
			rows := res[logN]
			fmt.Printf("N=2^%d: max dnum=%d, L(dnum=1)=%d, L(max)=%d, evk(dnum=1)=%d MiB, evk agg(max)=%.1f GiB\n",
				logN, rows[len(rows)-1].Dnum, rows[0].MaxLevel, rows[len(rows)-1].MaxLevel,
				rows[0].EvkSingleBytes>>20, float64(rows[len(rows)-1].EvkAggBytes)/(1<<30))
		}
	})
}

func BenchmarkFig2_MinBoundTmult(b *testing.B) {
	var rows []eval.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = eval.Fig2()
	}
	report(b, func() {
		// Print the Pareto-relevant points near the 128-bit target.
		fmt.Println("points with λ ∈ [125, 140] (the paper's target band):")
		var cells [][]string
		for _, r := range rows {
			if r.Lambda < 125 || r.Lambda > 140 || !r.Feasible {
				continue
			}
			cells = append(cells, []string{
				fmt.Sprintf("2^%d", r.LogN), fmt.Sprint(r.L), fmt.Sprint(r.Dnum),
				fmt.Sprintf("%.1f", r.Lambda), fmt.Sprintf("%.1f", r.TmultASlotNs),
			})
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i][0] < cells[j][0] })
		fmt.Print(eval.FormatTable([]string{"N", "L", "dnum", "λ", "Tmult,a/slot (ns)"}, cells))
	})
}

func BenchmarkFig3b_ComplexityBreakdown(b *testing.B) {
	var rows []eval.Fig3bRow
	for i := 0; i < b.N; i++ {
		rows = eval.Fig3b()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				fmt.Sprint(r.Dnum), fmt.Sprintf("%.1f", r.BConvPct), fmt.Sprintf("%.1f", r.NTTPct),
				fmt.Sprintf("%.1f", r.INTTPct), fmt.Sprintf("%.1f", r.OthersPct),
			})
		}
		fmt.Print(eval.FormatTable([]string{"dnum", "BConv %", "NTT %", "iNTT %", "others %"}, cells))
	})
}

func BenchmarkTable3_AreaPower(b *testing.B) {
	var comps []arch.Component
	for i := 0; i < b.N; i++ {
		comps = eval.Table3()
	}
	report(b, func() {
		var cells [][]string
		for _, c := range comps {
			cells = append(cells, []string{c.Name, fmt.Sprintf("%.2f", c.AreaMM2), fmt.Sprintf("%.2f", c.PowerW)})
		}
		cells = append(cells, []string{"Total", fmt.Sprintf("%.1f", arch.TotalArea()), fmt.Sprintf("%.1f", arch.TotalPower())})
		fmt.Print(eval.FormatTable([]string{"component", "area (mm²)", "power (W)"}, cells))
	})
}

func BenchmarkTable4_Instances(b *testing.B) {
	var rows []eval.Table4Row
	for i := 0; i < b.N; i++ {
		rows = eval.Table4()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.Name, fmt.Sprint(r.L), fmt.Sprint(r.Dnum), fmt.Sprintf("%.0f", r.LogPQ),
				fmt.Sprintf("%.1f", r.Lambda), fmt.Sprintf("%.0f", r.TempDataMB),
				fmt.Sprintf("%.0f", r.EvkMB), fmt.Sprintf("%.0f", r.CtMB),
			})
		}
		fmt.Print(eval.FormatTable(
			[]string{"instance", "L", "dnum", "logPQ", "λ", "temp MB", "evk MB", "ct MB"}, cells))
	})
}

func BenchmarkFig6_TmultComparison(b *testing.B) {
	var rows []eval.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = eval.Fig6()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.System, fmt.Sprintf("%.1f", r.TmultASlotNs), fmt.Sprintf("%.0fx", r.SpeedupVsCPU)})
		}
		fmt.Print(eval.FormatTable([]string{"system", "Tmult,a/slot (ns)", "speedup vs CPU"}, cells))
	})
}

func BenchmarkFig7a_ScratchpadTmult(b *testing.B) {
	var rows []eval.Fig7aRow
	for i := 0; i < b.N; i++ {
		rows = eval.Fig7a()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.Instance, fmt.Sprintf("%.1f", r.MinBoundNs),
				fmt.Sprintf("%.1f", r.With512MNs), fmt.Sprintf("%.1f", r.With2GNs),
			})
		}
		fmt.Print(eval.FormatTable([]string{"instance", "min bound (ns)", "512MB (ns)", "2GB (ns)"}, cells))
	})
}

func BenchmarkFig7b_BootstrapFraction(b *testing.B) {
	var rows []eval.Fig7bRow
	for i := 0; i < b.N; i++ {
		rows = eval.Fig7b()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.App, fmt.Sprintf("%.1f%%", r.BootstrapPct)})
		}
		fmt.Print(eval.FormatTable([]string{"application", "bootstrapping share"}, cells))
	})
}

func BenchmarkFig8_HMultTimeline(b *testing.B) {
	var res eval.Fig8Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig8()
	}
	report(b, func() {
		fmt.Printf("HMult on INS-1: total %.1f µs; HBM %.0f%%, NTTU %.0f%%, BConvU %.0f%% busy\n",
			res.TotalUs, res.HBMUtilPct, res.NTTUUtilPct, res.BConvUtilPct)
		for _, ev := range res.Events {
			fmt.Printf("  %-12s %8.1f .. %8.1f µs\n", ev.Phase, ev.Start*1e6, ev.End*1e6)
		}
	})
}

func BenchmarkFig9_Ablation(b *testing.B) {
	var rows []eval.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = eval.Fig9()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Config, fmt.Sprintf("%.3f", r.TmultASlotUs), fmt.Sprintf("%.0fx", r.Speedup)})
		}
		fmt.Print(eval.FormatTable([]string{"configuration", "Tmult,a/slot (µs)", "speedup vs Lattigo"}, cells))
	})
}

func BenchmarkFig10_ScratchpadEDAP(b *testing.B) {
	var rows []eval.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = eval.Fig10()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			ks := r.PerKindMs[workload.HMult] + r.PerKindMs[workload.HRot]
			cells = append(cells, []string{
				fmt.Sprint(r.ScratchpadMB), fmt.Sprintf("%.1f", r.BootstrapMs),
				fmt.Sprintf("%.1f", ks), fmt.Sprintf("%.1f", r.PerKindMs[workload.PMult]),
				fmt.Sprintf("%.3g", r.EDAP),
			})
		}
		fmt.Print(eval.FormatTable(
			[]string{"scratchpad MB", "bootstrap ms", "HMult+HRot ms", "PMult ms", "EDAP (J·s·mm²)"}, cells))
	})
}

func BenchmarkTable5_HELR(b *testing.B) {
	var rows []eval.Table5Row
	for i := 0; i < b.N; i++ {
		rows = eval.Table5()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.System, fmt.Sprintf("%.1f", r.MsPerIter), fmt.Sprintf("%.0fx", r.Speedup)})
		}
		fmt.Print(eval.FormatTable([]string{"system", "HELR ms/iter", "speedup"}, cells))
	})
}

func BenchmarkTable6_ResNetSorting(b *testing.B) {
	var rows []eval.Table6Row
	for i := 0; i < b.N; i++ {
		rows = eval.Table6()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.App, r.System, fmt.Sprintf("%.2f", r.Seconds),
				fmt.Sprintf("%.0fx", r.Speedup), fmt.Sprint(r.Bootstraps),
			})
		}
		fmt.Print(eval.FormatTable([]string{"application", "system", "time (s)", "speedup", "#bootstraps"}, cells))
	})
}

func BenchmarkSlowdown_VsUnencrypted(b *testing.B) {
	var rows []eval.SlowdownRow
	for i := 0; i < b.N; i++ {
		rows = eval.SlowdownVsPlain()
	}
	report(b, func() {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.App, fmt.Sprintf("%.4f", r.FHESec), fmt.Sprintf("%.5f", r.PlainSec),
				fmt.Sprintf("%.0fx", r.Slowdown),
			})
		}
		fmt.Print(eval.FormatTable([]string{"application", "FHE on BTS (s)", "plain CPU (s)", "slowdown"}, cells))
	})
}
