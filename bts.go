// Package bts is a from-scratch Go reproduction of "BTS: An Accelerator for
// Bootstrappable Fully Homomorphic Encryption" (Kim et al., ISCA 2022).
//
// The repository contains two complementary halves:
//
//   - A complete Full-RNS CKKS library (internal/ckks on top of internal/ring
//     and internal/mod) implementing every primitive the paper accelerates —
//     encoding, encryption, HAdd/HMult/HRot/HRescale, generalized dnum
//     key-switching, homomorphic linear transforms, Chebyshev evaluation,
//     and full bootstrapping — functionally verified at reduced ring degrees.
//
//   - A model of the BTS accelerator itself: the parameter analysis of
//     Section 3 (internal/params), the hardware catalog of Section 5 and
//     Table 3 (internal/arch), a cycle-level simulator following the
//     Section 6.2 methodology (internal/sim), workload traces for the
//     paper's applications (internal/workload), published baselines
//     (internal/baseline), and the experiment harness regenerating every
//     table and figure (internal/eval).
//
// # Execution engine
//
// The CKKS library executes on a two-dimensional execution engine
// (ring.Engine): every NTT, element-wise op, automorphism and base
// conversion fans out across a worker pool over RNS limbs and, when the
// active limbs alone cannot fill the pool (low-level ciphertexts,
// bootstrapping's tail), over contiguous coefficient blocks within each
// residue row — the software analogue of the paper's PE grid distributing
// both limbs and coefficients (Section 4.1). Full rows run the fused
// radix-4 NTT kernels as one task each; sharded rows fall back to the
// per-stage radix-2 schedule with a barrier between stages. A context
// created by NewScheme
// runs on a process-wide pool sized to runtime.GOMAXPROCS (snapshotted at
// first use); NewSchemeWorkers (or Context.SetWorkers) picks an explicit
// worker count, with 0 selecting the serial fallback. Results are
// bit-identical for every worker count and block configuration, so the
// knobs are purely throughput dials: worker counts up to the number of
// physical cores scale near-linearly at any level, no longer saturating at
// the limb count (level+1). Hot operations draw all
// temporary polynomials from per-ring sync.Pool scratch allocators
// (ring.GetPoly/PutPoly), so steady-state evaluation and bootstrapping do
// not allocate. Long-lived processes that create many contexts with
// explicit worker counts should Context.Close discarded ones to release
// their private worker pools.
//
// Rotation-heavy workloads additionally run on hoisted key-switching: a
// ciphertext is decomposed once (ckks.Evaluator.DecomposeNTT) and every
// rotation of it reuses the decomposition (RotateHoisted, bit-identical to
// sequential Rotate), while BSGS linear transforms — the bulk of
// bootstrapping's CoeffToSlot/SlotToCoeff — accumulate baby-step products
// in the extended QP basis with 128-bit lazy MACs (the automorphism fused
// into the MAC's gather index) and defer ModDown to once per giant step.
// Bootstrapping evaluates those transforms *factored*: CoeffToSlot and
// SlotToCoeff are chains of sparse radix stages (ckks.TransformChain over
// the encoder's butterfly-group factorization, dft.go) instead of dense
// slots×slots matrices, spending ~1.8× fewer key-switch ops and ~2.2×
// fewer rotation keys at equal precision for one extra level per
// transform. `btsbench -experiment hoisting` and `-experiment bootstrap`
// report the measured speedups and CI archives both as the repo's
// perf-trajectory record.
//
// # Montgomery ring core
//
// The RNS residue arithmetic underneath all of this runs end-to-end in
// Montgomery representation: every polynomial the library holds — ciphertext
// components, plaintexts, evaluation keys, key-switching decomposition
// slices — stores residues as x·R mod q (R = 2^64), so every butterfly,
// element-wise product and lazy MAC reduces with one fused 3-multiply REDC
// instead of a wider Barrett pass, and multiplication by precomputed plain
// constants (rescale inverses, P mod q) is form-preserving and free of
// conversions. Residues enter M-form at the encode/sampling boundary and
// leave it only at decode time and in the wire format, which transports
// true canonical residues (internal/wire). The NTT/iNTT inner kernels are
// fused radix-4 (merged two-layer) butterflies: twiddle triples precomputed
// per modulus (mod.FusedNTTTwiddles), four coefficients per butterfly,
// intermediates on a widened [0, 4q) lazy window with one REDC per multiply
// — halving the passes over each row relative to the per-stage radix-2
// kernels, which are retained for the sharded stage-barrier schedule and as
// the fused kernels' in-family baseline. The pre-Montgomery Barrett kernels
// are retained as the bit-identity reference (internal/ring/reference.go);
// `btsbench -experiment table2` measures the per-kernel speedups (including
// ns/butterfly and effective GB/s for the transforms), runs the N=2^17
// Table 2 paper instance (ckks.Table2Literal) through the S=3 factored
// bootstrap, and appends a 1/2/4/8-worker bootstrap scaling table, with CI
// archiving the report as BENCH_table2.json.
//
// # Serving runtime
//
// The repository also contains a multi-tenant serving stack over the CKKS
// library, mirroring the paper's framing of bootstrappable FHE as a service
// that amortizes cost across many client ciphertexts in flight:
//
//   - internal/wire is the serialization layer: a versioned, length-prefixed
//     binary codec (magic "BTSW", version 1) for polynomials, plaintexts,
//     ciphertexts, public keys, switching keys and rotation-key sets. Every
//     decode is validated against the owning Context (ring degree, level
//     bounds, residue canonicity), so malformed bytes error instead of
//     corrupting memory, and round trips are bit-exact.
//
//   - internal/serve is the batch scheduler: clients open named sessions by
//     uploading evaluation keys (never the secret key) and submit jobs —
//     programs of Add/Sub/Mult/Rotate/Conjugate/Rescale/Bootstrap ops. A
//     job addresses its data either as a flat slot list (the original wire
//     form) or as a DAG over named per-session ciphertext registers
//     ("$x", "$tmp0"): register values persist server-side across requests,
//     so a multi-request pipeline uploads and downloads ciphertexts only at
//     its boundary. Every job compiles to a dependency-staged program —
//     independent ops run concurrently within a stage, and same-register
//     rotation fans are auto-hoisted through one shared key-switch
//     decomposition, bit-identically to the naive path. The dispatcher
//     groups compatible jobs (same session) into batches, runs up to
//     Parallel batches concurrently with one goroutine per job, and draws
//     every result from the context's pooled ciphertext allocator
//     (Context.GetCiphertext/PutCiphertext), so steady-state serving
//     allocates nothing. Per-session statistics (jobs, ops, registers,
//     queue depth, p50/p90/p99 latency) are exported as JSON.
//
//   - cmd/btsserve wraps the scheduler in an HTTP daemon speaking the wire
//     format, and `btsbench -experiment serve -clients K` is the matching
//     load generator, reporting ops/sec and latency percentiles as JSON;
//     `btsbench -experiment dag` measures the register model's wire and
//     key-switch savings against per-op round trips.
//
// # Observability
//
// The serving stack is instrumented end to end by internal/telemetry, a
// dependency-free tracing and metrics layer whose hooks are nil-guarded
// pointers: with telemetry detached every hook is a single nil check, so
// the Table 2 kernel gate (`btsbench -experiment table2`) asserts the
// instrumented kernel sweep stays within 2% of the plain one.
//
// Metrics. btsserve exposes Prometheus text-format 0.0.4 on GET /metrics
// (and expvar JSON on /debug/vars) unless started with -metrics=false.
// The exported families, by layer:
//
//   - ring.Engine / pools: bts_engine_runs_total, bts_engine_tasks_total,
//     bts_engine_stolen_tasks_total, bts_engine_block_runs_total and the
//     other dispatch-shape gauges; bts_pool_gets_total /
//     bts_pool_misses_total {ring="q"|"qp", kind="poly"|...}.
//   - wire codec: bts_wire_bytes_total / bts_wire_envelopes_total
//     {dir="in"|"out"}.
//   - scheduler: bts_jobs_total{result="ok"|"error"}, bts_batches_total,
//     bts_batches_inflight, bts_batch_size, bts_linger_wait_seconds,
//     bts_job_latency_seconds, bts_queue_depth, bts_sessions_open,
//     bts_slow_jobs_total.
//   - per-op: bts_op_latency_seconds{op, level} histograms keyed op kind ×
//     ciphertext level.
//   - per-session: bts_session_jobs_total, bts_session_errors_total,
//     bts_session_queue_depth, bts_session_ops_total{session, kind} (the
//     evaluator op mix: mult, full_rot, hoisted_rot, decompose, mod_down,
//     rescale, pmult, mod_raise, key_switch), and bts_noise_floor_bits —
//     the FHE-domain health signal, the running minimum over the session
//     of noise margin = log2(q_0..q_level) − log2(scale): bits of modulus
//     headroom above the working scale. A floor trending toward zero
//     means results are about to drown in noise; a bootstrap restores it.
//
// Tracing. Started with -slow-job <d>, btsserve traces every job through
// a lock-free span buffer (zero allocation on the hot path) and retains
// the rendered span tree of any job slower than d on GET /v1/traces. The
// span hierarchy is serve.job → serve.queue + op.<kind> →
// ckks.<primitive> (keyswitch, mulrelin, rescale, decompose, ...) and,
// under op.bootstrap, the four pipeline phases bootstrap.modraise /
// coeff_to_slot / eval_mod / slot_to_coeff. Op spans carry the result
// level and noise margin as attributes. `btsbench -experiment table2`
// prints the same phase breakdown for the timed bootstrap, and
// /v1/stats reports each session's op mix, latency-reservoir window and
// noise floor alongside the existing percentiles. -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
//
// # Fault tolerance
//
// The serving runtime is built to survive crashes, restarts and partial
// failures without ever returning a wrong ciphertext:
//
//   - Durable key store. With serve.Config.StoreDir set, every session's
//     uploaded evaluation keys are persisted write-through at open — wire
//     codec blobs plus a JSON manifest carrying CRC-32C checksums, sizes
//     and the parameter fingerprint, committed crash-safely (blobs fsynced
//     into a temp dir, manifest written last, atomic rename). A restarted
//     daemon lists manifests only; key material rehydrates lazily on each
//     session's first job. Any corruption — bit flip, truncation, foreign
//     parameters — fails the load with a typed "store" error, never a bad
//     key.
//
//   - Key-memory governance. SessionQuotaBytes caps a tenant's decoded
//     key bytes at upload (HTTP 413 past it); KeyCacheBytes bounds total
//     resident decoded keys with an LRU over idle sessions, evicting cold
//     key sets to disk and reloading on demand. bts_key_resident_bytes,
//     bts_key_evictions_total and bts_key_reloads_total track the cache.
//     Ciphertext registers ride the same machinery: an evicted or drained
//     session spills its registers to the store (CRC-checked, atomic
//     rename) and the next DAG job rehydrates them transparently;
//     bts_register_bytes, bts_register_spills_total and
//     bts_register_reloads_total track that lifecycle, and register bytes
//     count against the same tenant quota as keys.
//
//   - Request lifecycle. A context.Context follows each job from HTTP
//     handler through queue to batch execution: per-job deadlines
//     (Config.DefaultJobTimeout or the request's timeout_ms), cancelled
//     jobs that are still queued never execute, and a cancelled session
//     never stalls other tenants' batches. A panic inside an op fails only
//     the offending job (bts_job_panics_total{op}, span tree retained on
//     /v1/traces when tracing); a session whose jobs panic repeatedly is
//     quarantined until its keys are re-uploaded. Errors carry a stable
//     code and a retryable bit end to end — serve.Error over HTTP — and
//     the client retries retryable failures with exponential backoff and
//     full jitter instead of a blanket request timeout. Jobs are pure
//     functions of inputs and keys, so a retried job is bit-identical.
//
//   - Fault injection. internal/faultinject provides named failpoints
//     (error, panic, delay — armed via BTS_FAILPOINTS or tests, free nil
//     checks when disarmed) at the store, scheduler-dispatch and op
//     boundaries; the chaos suite kills and restarts a daemon mid-workload
//     under the race detector and asserts every job either completes
//     bit-identically or fails with a typed retryable error.
//
// btsserve drains on SIGTERM/SIGINT: it stops accepting connections,
// finishes queued and in-flight jobs (bounded by -drain-timeout) and exits
// 0; the write-through store means shutdown flushes nothing.
//
// This package re-exports the stable entry points used by the examples and
// command-line tools; the root-level benchmarks (bench_test.go) regenerate
// the paper's evaluation via the same functions.
package bts

import (
	"bts/internal/arch"
	"bts/internal/ckks"
	"bts/internal/params"
	"bts/internal/serve"
	"bts/internal/sim"
	"bts/internal/wire"
	"bts/internal/workload"
)

// CKKS scheme construction (the workload the accelerator runs).
type (
	// SchemeParams selects a concrete CKKS instantiation by prime bit sizes.
	SchemeParams = ckks.ParametersLiteral
	// Context owns the rings and conversion tables of one instantiation.
	Context = ckks.Context
	// Ciphertext is a CKKS ciphertext (pair of RNS polynomials, NTT domain).
	Ciphertext = ckks.Ciphertext
)

// NewScheme generates NTT-friendly primes for lit and opens a context. The
// context executes limb-parallel on the shared GOMAXPROCS-sized worker pool.
func NewScheme(lit SchemeParams) (*ckks.Context, error) {
	p, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, err
	}
	return ckks.NewContext(p)
}

// NewSchemeWorkers is NewScheme with an explicit execution-engine worker
// count: workers <= 1 (and in particular 0) forces serial execution, higher
// counts fan limb-indexed tasks across that many goroutines. Outputs are
// bit-identical for every worker count.
func NewSchemeWorkers(lit SchemeParams, workers int) (*ckks.Context, error) {
	ctx, err := NewScheme(lit)
	if err != nil {
		return nil, err
	}
	ctx.SetWorkers(workers)
	return ctx, nil
}

// Serving runtime (wire serialization + multi-tenant batch scheduler).
type (
	// WireCodec marshals CKKS objects to the versioned wire format, validated
	// against one Context.
	WireCodec = wire.Codec
	// ServeConfig parameterizes a serving runtime.
	ServeConfig = serve.Config
	// Server is the multi-tenant batch scheduler behind cmd/btsserve.
	Server = serve.Server
	// ServeOp is one step of a serving job program.
	ServeOp = serve.Op
	// ServeClient is the HTTP client for a btsserve daemon.
	ServeClient = serve.Client
	// ServeStats is the JSON statistics snapshot of a serving runtime.
	ServeStats = serve.Stats
)

// NewWireCodec returns a codec bound to ctx; see also wire.NewPooledCodec
// for the allocation-free serving path.
func NewWireCodec(ctx *Context) *WireCodec { return wire.NewCodec(ctx) }

// NewServer builds a serving runtime and starts its dispatcher.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// NewServeClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8631"); ctx must mirror the daemon's parameters, which
// serve.FetchParams retrieves.
func NewServeClient(base string, ctx *Context) *ServeClient { return serve.NewClient(base, ctx) }

// Accelerator modeling (the paper's contribution).
type (
	// HWConfig is a BTS hardware configuration (PE grid, HBM, scratchpad).
	HWConfig = arch.Config
	// Instance is a symbolic CKKS instance (N, L, dnum) for the simulator.
	Instance = params.Instance
	// Simulator executes HE-op traces on a hardware configuration.
	Simulator = sim.Simulator
	// Trace is a sequence of primitive HE ops.
	Trace = workload.Trace
)

// DefaultHW returns the paper's BTS configuration (2,048 PEs, 1 TB/s HBM,
// 512 MB scratchpad).
func DefaultHW() HWConfig { return arch.Default() }

// PaperInstances returns Table 4's INS-1/2/3.
func PaperInstances() []Instance { return params.PaperInstances() }

// NewSimulator builds a simulator for one hardware config and instance.
func NewSimulator(hw HWConfig, inst Instance) *Simulator { return sim.New(hw, inst) }

// BootstrapTrace builds the paper-scale bootstrapping op trace.
func BootstrapTrace(inst Instance) Trace {
	return workload.BootstrapTrace(inst, workload.PaperBootstrapShape())
}
