// Accelerator anatomy: the design math of Sections 3-5 — minNTTU (Eq. 10),
// the Table 3 floorplan, the Fig. 8 HMult timeline, and how a bootstrapping
// maps onto the PE grid's resources.
package main

import (
	"fmt"

	"bts/internal/arch"
	"bts/internal/eval"
	"bts/internal/params"
	"bts/internal/sim"
	"bts/internal/workload"
)

func main() {
	hw := arch.Default()
	fmt.Printf("BTS: %d PEs (%dx%d grid) @ %.1f GHz, %d MB scratchpad, %.0f GB/s HBM\n",
		hw.PEs(), hw.PEVer, hw.PEHor, hw.FreqHz/1e9, hw.ScratchpadBytes>>20, hw.HBMBytesPerSec/1e9)

	// Eq. 10: why 2,048 NTTUs.
	fmt.Println("\nminNTTU (Eq. 10) — NTTUs needed to hide compute under the evk stream:")
	for _, dnum := range []int{1, 2, 3, 6, 14} {
		fmt.Printf("  dnum=%-3d minNTTU=%6.0f\n", dnum, arch.MinNTTU(1<<17, dnum, hw.FreqHz, hw.HBMBytesPerSec))
	}
	fmt.Println("  → maximized at dnum=1 (1,328); BTS provisions 2,048 with margin")

	// Table 3 floorplan.
	fmt.Println("\nTable 3 floorplan:")
	for _, c := range arch.Table3() {
		fmt.Printf("  %-22s %7.2f mm²  %6.2f W\n", c.Name, c.AreaMM2, c.PowerW)
	}
	fmt.Printf("  %-22s %7.1f mm²  %6.1f W\n", "total", arch.TotalArea(), arch.TotalPower())

	// Fig. 8: the HMult pipeline.
	res := eval.Fig8()
	fmt.Printf("\nHMult on INS-1 (Fig. 8): %.1f µs total — memory-bound on the evk stream\n", res.TotalUs)
	for _, ev := range res.Events {
		bar := int((ev.End - ev.Start) * 1e6 / res.TotalUs * 40)
		fmt.Printf("  %-12s %6.1f µs  %s\n", ev.Phase, (ev.End-ev.Start)*1e6, bars(bar))
	}

	// A full bootstrapping on the machine.
	inst := params.INS1
	tr := workload.BootstrapTrace(inst, workload.PaperBootstrapShape())
	s := sim.New(hw, inst)
	st := s.RunTrace(tr)
	fmt.Printf("\none bootstrapping on %s: %.2f ms, %.1f GB HBM traffic, %.2f J\n",
		inst.Name, st.Time*1e3, float64(st.HBMBytes)/1e9, st.EnergyJ)
	fmt.Printf("  utilization: HBM %.0f%%, NTTU %.0f%%, BConvU %.0f%%, NoC %.0f%%\n",
		100*st.Utilization("HBM"), 100*st.Utilization("NTTU"),
		100*st.Utilization("BConvU"), 100*st.Utilization("NoC"))
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
