// HELR: encrypted logistic-regression training, the Table 5 workload, run
// for real on the CKKS library (reduced ring degree, small synthetic data).
//
// The model w is trained on encrypted features with a degree-3 polynomial
// sigmoid approximation σ(x) ≈ 0.5 + 0.197x - 0.004x³ (the approximation
// used by HELR [39]); gradients are computed with rotation-based reductions,
// exactly the op mix the accelerator trace generator accounts for.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bts/internal/ckks"
)

func main() {
	// Each training iteration consumes 8 levels (margin, sigmoid cubic,
	// gradient, learning-rate scaling); a 26-level chain covers three
	// iterations without bootstrapping.
	logQ := []int{55}
	for i := 0; i < 26; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     logQ,
		LogP:     55,
		Dnum:     3,
		LogScale: 45,
		H:        64,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	// Rotations for the batch-sum reduction.
	var rots []int
	for r := 1; r < params.Slots(); r <<= 1 {
		rots = append(rots, r)
	}
	rtks := kg.GenRotationKeys(sk, rots, false)
	encoder := ckks.NewEncoder(ctx)
	enc := ckks.NewEncryptorSK(ctx, sk, 2)
	dec := ckks.NewDecryptor(ctx, sk)
	eval := ckks.NewEvaluator(ctx, encoder, rlk, rtks)

	// Synthetic 1-feature binary classification: y = 1 if x > 0.3.
	// One slot per training sample (the "batch packing" of HELR).
	n := params.Slots()
	rng := rand.New(rand.NewSource(42))
	xs := make([]complex128, n)
	ys := make([]complex128, n) // labels mapped to ±1
	for i := range xs {
		x := 2*rng.Float64() - 1
		xs[i] = complex(x, 0)
		if x > 0.3 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	lvl := params.MaxLevel()
	ptX, _ := encoder.Encode(xs, lvl, params.Scale)
	ptY, _ := encoder.Encode(ys, lvl, params.Scale)
	ctX, _ := enc.EncryptNew(ptX)
	ctY, _ := enc.EncryptNew(ptY)

	// Encrypted parameters (w, b), replicated in every slot.
	ctW, _ := enc.EncryptNew(mustEncode(encoder, []complex128{0}, lvl, params.Scale))
	ctB, _ := enc.EncryptNew(mustEncode(encoder, []complex128{0}, lvl, params.Scale))

	lr := 1.0
	iters := 3
	fmt.Printf("training encrypted logistic regression: %d samples, %d iterations\n", n, iters)
	for it := 0; it < iters; it++ {
		// margin m = y*(w*x + b)
		wx := eval.Rescale(eval.MulRelin(ctW, ctX))
		bAligned := ctB.CopyNew(ctx)
		bAligned.DropLevel(wx.Level)
		z := eval.Add(wx, bAligned)
		m := eval.Rescale(eval.MulRelin(ctY, z))

		// σ'(−m)-weighted gradient via the HELR cubic: g ≈ y*(0.5 − 0.197m + 0.004m³)
		m2 := eval.Rescale(eval.Square(m))
		m3 := eval.Rescale(eval.MulRelin(m2, m))
		t1 := eval.Rescale(eval.MulConst(m, complex(-0.197, 0), qAt(params, m.Level)))
		t3 := eval.Rescale(eval.MulConst(m3, complex(0.004, 0), qAt(params, m3.Level)))
		t1.DropLevel(t3.Level)
		s := eval.AddConst(eval.Add(t1, t3), 0.5)
		yw := eval.Rescale(eval.MulRelin(ctY, s))
		gx := eval.Rescale(eval.MulRelin(yw, ctX)) // per-sample gradient wrt w

		// Batch mean via rotate-and-add (all slots end up with the sum).
		gw := gx
		gb := yw
		for r := 1; r < n; r <<= 1 {
			gw = eval.Add(gw, eval.Rotate(gw, r))
			gb = eval.Add(gb, eval.Rotate(gb, r))
		}
		scale := complex(lr/float64(n), 0)
		gw = eval.Rescale(eval.MulConst(gw, scale, qAt(params, gw.Level)))
		gb = eval.Rescale(eval.MulConst(gb, scale, qAt(params, gb.Level)))

		// w += g — levels must be aligned to the deepest operand.
		wAligned := ctW.CopyNew(ctx)
		wAligned.DropLevel(gw.Level)
		ctW = eval.Add(wAligned, gw)
		bAligned2 := ctB.CopyNew(ctx)
		bAligned2.DropLevel(gb.Level)
		ctB = eval.Add(bAligned2, gb)

		w := real(encoder.Decode(dec.DecryptNew(ctW))[0])
		bv := real(encoder.Decode(dec.DecryptNew(ctB))[0])
		fmt.Printf("  iter %d: w=%.4f b=%.4f (level %d left)\n", it+1, w, bv, ctW.Level)
	}

	// Accuracy of the (decrypted) model.
	w := real(encoder.Decode(dec.DecryptNew(ctW))[0])
	b := real(encoder.Decode(dec.DecryptNew(ctB))[0])
	correct := 0
	for i := range xs {
		pred := sigmoid(w*real(xs[i]) + b)
		if (pred > 0.5) == (real(ys[i]) > 0) {
			correct++
		}
	}
	fmt.Printf("final model: w=%.4f b=%.4f, training accuracy %.1f%%\n",
		w, b, 100*float64(correct)/float64(n))
	fmt.Println("(at paper scale this workload runs 30 iterations on 1,024 MNIST images —")
	fmt.Println(" see cmd/btssim -workload helr for the accelerator-side reproduction)")
}

func mustEncode(e *ckks.Encoder, v []complex128, lvl int, scale float64) *ckks.Plaintext {
	pt, err := e.Encode(v, lvl, scale)
	if err != nil {
		panic(err)
	}
	return pt
}

func qAt(p ckks.Parameters, lvl int) float64 { return float64(p.Q[lvl]) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
