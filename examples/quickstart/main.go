// Quickstart: encrypt two vectors, add, multiply, rotate, and decrypt with
// the Full-RNS CKKS library — the primitive ops of Section 2.3 of the BTS
// paper (HAdd, HMult+HRescale, HRot).
//
// The parameter set is a reduced-degree toy (N = 2^11) so the example runs
// in milliseconds; it exercises exactly the code paths the accelerator
// model simulates at N = 2^17.
//
// # Serving the same ops over HTTP with btsserve
//
// Everything this example does locally can run against the multi-tenant
// serving daemon instead. Start it on the same toy parameters:
//
//	go run ./cmd/btsserve -params toy -addr 127.0.0.1:8631
//
// A client then mirrors the daemon's parameters (GET /v1/params, or
// serve.FetchParams), opens a session by uploading its evaluation keys —
// the secret key stays local — and submits jobs over the wire format:
//
//	params, _, _ := serve.FetchParams("http://127.0.0.1:8631")
//	ctx, _ := ckks.NewContext(params)
//	// ... generate keys exactly as below ...
//	cl := serve.NewClient("http://127.0.0.1:8631", ctx)
//	cl.OpenSession("alice", rlk, rtks)
//	res, _ := cl.Do("alice", []serve.Op{
//		{Kind: serve.OpRotate, A: 0, By: 1}, // rot(a, 1)
//		{Kind: serve.OpMul, A: 2, B: 1},     // ⊗ b
//		{Kind: serve.OpRescale, A: 3},       // rescale
//	}, ctA, ctB)
//	fmt.Println(encoder.Decode(decryptor.DecryptNew(res)))
//
// `go run ./cmd/btsbench -experiment serve -clients 4` load-tests the
// daemon and prints a JSON throughput/latency report.
package main

import (
	"fmt"
	"log"

	"bts/internal/ckks"
)

func main() {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     51,
		Dnum:     2,
		LogScale: 40,
		H:        64,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		log.Fatal(err)
	}

	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, []int{1, 4}, false)

	encoder := ckks.NewEncoder(ctx)
	encryptor := ckks.NewEncryptorSK(ctx, sk, 2)
	decryptor := ckks.NewDecryptor(ctx, sk)
	eval := ckks.NewEvaluator(ctx, encoder, rlk, rtks)

	// Two small messages (replicated across all N/2 = 1024 slots).
	a := []complex128{0.5, -0.25, 0.125 + 0.5i, 1}
	b := []complex128{2, 4, -2i, 0.5}

	ptA, _ := encoder.Encode(a, params.MaxLevel(), params.Scale)
	ptB, _ := encoder.Encode(b, params.MaxLevel(), params.Scale)
	ctA, _ := encryptor.EncryptNew(ptA)
	ctB, _ := encryptor.EncryptNew(ptB)

	sum := eval.Add(ctA, ctB)
	prod := eval.Rescale(eval.MulRelin(ctA, ctB))
	rot := eval.Rotate(ctA, 1)

	show := func(name string, ct *ckks.Ciphertext, n int) {
		vals := encoder.Decode(decryptor.DecryptNew(ct))
		fmt.Printf("%-10s level=%d:", name, ct.Level)
		for i := 0; i < n; i++ {
			fmt.Printf("  %6.3f%+6.3fi", real(vals[i]), imag(vals[i]))
		}
		fmt.Println()
	}

	fmt.Printf("CKKS quickstart: N=%d, %d slots, L=%d, dnum=%d, λ is NOT production-grade (toy degree)\n\n",
		params.N(), params.Slots(), params.MaxLevel(), params.Dnum)
	show("a", ctA, 4)
	show("b", ctB, 4)
	show("a+b", sum, 4)
	show("a*b", prod, 4)
	show("rot(a,1)", rot, 4)
}
