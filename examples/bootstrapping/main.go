// Bootstrapping: refresh a fully exhausted (level-0) ciphertext back to a
// usable level — the operation BTS accelerates as a first-class citizen.
//
// The example runs the complete pipeline of Section 2.4 on a reduced-degree
// instance: ModRaise → CoeffToSlot (homomorphic linear transform) → EvalMod
// (Chebyshev scaled-sine) → SlotToCoeff, then proves the refreshed
// ciphertext supports further multiplications.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"
	"time"

	"bts/internal/ckks"
)

func main() {
	logQ := []int{55}
	for i := 0; i < 14; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10, // toy degree: functional, NOT 128-bit secure
		LogQ:     logQ,
		LogP:     55,
		Dnum:     2,
		LogScale: 45,
		H:        8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("building keys and bootstrapping matrices (N=%d, L=%d, dnum=%d)...\n",
		params.N(), params.MaxLevel(), params.Dnum)
	start := time.Now()
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	encoder := ckks.NewEncoder(ctx)

	probe := ckks.NewEvaluator(ctx, encoder, rlk, nil)
	bt0, err := ckks.NewBootstrapper(ctx, encoder, probe, ckks.DefaultBootstrapParams())
	if err != nil {
		log.Fatal(err)
	}
	rtks := kg.GenRotationKeys(sk, bt0.Rotations(), true)
	eval := ckks.NewEvaluator(ctx, encoder, rlk, rtks)
	bt, err := ckks.NewBootstrapper(ctx, encoder, eval, ckks.DefaultBootstrapParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup done in %v (%d rotation keys)\n", time.Since(start).Round(time.Millisecond), len(rtks.Keys))

	// Encrypt at level 0: no multiplications possible anymore.
	rng := rand.New(rand.NewSource(7))
	msg := make([]complex128, params.Slots())
	for i := range msg {
		msg[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	pt, _ := encoder.Encode(msg, 0, params.Scale)
	encryptor := ckks.NewEncryptorSK(ctx, sk, 2)
	ct, _ := encryptor.EncryptNew(pt)
	fmt.Printf("\ninput ciphertext: %s (exhausted: no HMult possible)\n", ct)

	start = time.Now()
	refreshed, err := bt.Bootstrap(ct)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	decryptor := ckks.NewDecryptor(ctx, sk)
	got := encoder.Decode(decryptor.DecryptNew(refreshed))
	var worst float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("bootstrapped in %v → %s\n", elapsed.Round(time.Millisecond), refreshed)
	fmt.Printf("max error after refresh: %.3g\n", worst)

	// The paper's point: bootstrapping restores multiplicative levels.
	sq := eval.Rescale(eval.Square(refreshed))
	got = encoder.Decode(decryptor.DecryptNew(sq))
	var worstSq float64
	for i := range msg {
		if e := cmplx.Abs(got[i] - msg[i]*msg[i]); e > worstSq {
			worstSq = e
		}
	}
	fmt.Printf("post-bootstrap HMult works: square error %.3g at level %d\n", worstSq, sq.Level)
}
