// ResNet-20 on BTS: simulate the paper's flagship application (Table 6) on
// the cycle-level accelerator model for all three CKKS instances, including
// the channel-packing ablation (the 17.8× throughput lever of Section 6.3).
package main

import (
	"fmt"

	"bts/internal/arch"
	"bts/internal/params"
	"bts/internal/sim"
	"bts/internal/workload"
)

func main() {
	shape := workload.PaperBootstrapShape()
	fmt.Println("ResNet-20 encrypted inference on BTS (CIFAR-10, channel packing):")
	fmt.Printf("%-8s %10s %12s %8s %14s %10s\n",
		"inst", "time (s)", "vs CPU [59]", "#boots", "boot share", "HBM GB")
	for _, inst := range params.PaperInstances() {
		tr := workload.ResNet20Trace(inst, shape, workload.DefaultResNet())
		s := sim.New(arch.Default(), inst)
		st := s.RunTrace(tr)
		fmt.Printf("%-8s %10.2f %11.0fx %8d %13.1f%% %10.1f\n",
			inst.Name, st.Time, 10602/st.Time, tr.Bootstraps,
			100*st.BootTime/st.Time, float64(st.HBMBytes)/1e9)
	}

	// Channel-packing ablation: without it, each channel needs its own
	// ciphertext and the rotation count explodes.
	cfg := workload.DefaultResNet()
	cfg.ChannelPacking = false
	tr := workload.ResNet20Trace(params.INS1, shape, cfg)
	s := sim.New(arch.Default(), params.INS1)
	st := s.RunTrace(tr)
	trPacked := workload.ResNet20Trace(params.INS1, shape, workload.DefaultResNet())
	stPacked := sim.New(arch.Default(), params.INS1).RunTrace(trPacked)
	fmt.Printf("\nchannel-packing ablation on INS-1: packed %.2f s vs unpacked %.2f s (%.1fx)\n",
		stPacked.Time, st.Time, st.Time/stPacked.Time)
	fmt.Println("(the paper reports a 17.8x throughput gain from channel packing [50])")
}
