// Package baseline records the published reference points BTS is compared
// against (Lattigo on a Xeon 8160, the 100x GPU implementation on a V100,
// and the F1 ASIC), plus the paper's own reported BTS results. We have none
// of those testbeds, so — exactly as the paper itself does for 100x and F1 —
// these are encoded as constants taken from the respective publications and
// from the BTS paper's tables, used to reproduce the comparison tables and
// to report paper-vs-measured deltas in EXPERIMENTS.md.
package baseline

// Platform is one comparison system of Table 1 / Fig. 6 / Table 5.
type Platform struct {
	Name string
	// TmultASlot is the amortized mult time per slot in seconds (Fig. 6).
	TmultASlot float64
	// HELRMsPerIter is the Table 5 logistic-regression time (ms/iteration).
	HELRMsPerIter float64
	// Table 1 metadata.
	LogN        int
	Slots       int
	Bootstrap   bool
	Parallelism string // "SIMT", "rPLP", "CLP", "-"
}

// Published baselines. TmultASlot provenance:
//   - Lattigo: BTS paper reports INS-2 (45.5 ns) is 2,237× better → 101.8 µs.
//   - 100x: 743 ns at a 97-bit-secure parameter set (its paper), 8 µs at 173-bit.
//   - F1: reported 2.5× slower than Lattigo (single-slot bootstrapping) → 254.5 µs.
//   - F1+: area-scaled F1; 824× slower than BTS INS-2 → 37.5 µs.
var (
	Lattigo = Platform{
		Name: "Lattigo (CPU)", TmultASlot: 45.5e-9 * 2237, HELRMsPerIter: 37050,
		LogN: 16, Slots: 32768, Bootstrap: true, Parallelism: "-",
	}
	GPU100x = Platform{
		Name: "100x (GPU)", TmultASlot: 743e-9, HELRMsPerIter: 775,
		LogN: 17, Slots: 65536, Bootstrap: true, Parallelism: "SIMT",
	}
	GPU100x173b = Platform{
		Name: "100x (GPU, 173b)", TmultASlot: 8e-6, HELRMsPerIter: 0,
		LogN: 17, Slots: 65536, Bootstrap: true, Parallelism: "SIMT",
	}
	F1 = Platform{
		Name: "F1 (ASIC)", TmultASlot: 45.5e-9 * 2237 * 2.5, HELRMsPerIter: 1024,
		LogN: 14, Slots: 1, Bootstrap: true, Parallelism: "rPLP",
	}
	F1Plus = Platform{
		Name: "F1+ (scaled)", TmultASlot: 45.5e-9 * 824, HELRMsPerIter: 148,
		LogN: 14, Slots: 1, Bootstrap: true, Parallelism: "rPLP",
	}
)

// All returns the comparison platforms in presentation order.
func All() []Platform {
	return []Platform{Lattigo, GPU100x, GPU100x173b, F1, F1Plus}
}

// PaperBTS holds the BTS paper's own reported results, used for
// paper-vs-measured reporting (never fed back into our measurements).
type PaperBTS struct {
	TmultASlotNs   [3]float64 // INS-1/2/3, Fig. 6 best = 45.5 (INS-2)
	MinBoundNs     [3]float64 // Section 3.4: 27.7 / 19.9 / 22.1
	HELRMs         [3]float64 // Table 5: 39.9 / 28.4 / 43.5
	ResNetSec      [3]float64 // Table 6: 1.91 / 2.02 / 3.09
	ResNetBoots    [3]int     // 53 / 22 / 19
	SortingSec     [3]float64 // 15.6 / 18.8 / 25.2
	SortingBoots   [3]int     // 521 / 306 / 229
	MultThroughput float64    // Table 1: 20M mult/s
	HMultTimeUs    float64    // Fig. 8 total HMult latency ≈ 128 µs (INS-1)
}

// Paper returns the reported numbers.
func Paper() PaperBTS {
	return PaperBTS{
		TmultASlotNs:   [3]float64{68, 45.5, 77}, // INS-1/3 read from Fig. 7(a)
		MinBoundNs:     [3]float64{27.7, 19.9, 22.1},
		HELRMs:         [3]float64{39.9, 28.4, 43.5},
		ResNetSec:      [3]float64{1.91, 2.02, 3.09},
		ResNetBoots:    [3]int{53, 22, 19},
		SortingSec:     [3]float64{15.6, 18.8, 25.2},
		SortingBoots:   [3]int{521, 306, 229},
		MultThroughput: 20e6,
		HMultTimeUs:    128,
	}
}

// UnencryptedReference gives the plain (no FHE) runtimes implied by the
// paper's §6.3 slowdown discussion: HELR on BTS is 141× and ResNet-20 is
// 440× slower than unencrypted CPU execution.
type UnencryptedReference struct {
	HELRMsPerIter float64
	ResNetSec     float64
}

// Unencrypted derives the implied plain runtimes from the paper's slowdowns.
func Unencrypted() UnencryptedReference {
	p := Paper()
	return UnencryptedReference{
		HELRMsPerIter: p.HELRMs[1] / 141,
		ResNetSec:     p.ResNetSec[0] / 440,
	}
}
