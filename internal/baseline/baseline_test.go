package baseline

import "testing"

func TestProvenanceRatios(t *testing.T) {
	// Lattigo's Tmult is defined via the paper's 2,237× claim over 45.5 ns.
	if got := Lattigo.TmultASlot; got < 100e-6 || got > 104e-6 {
		t.Fatalf("Lattigo Tmult %.3g s outside the published-derived band", got)
	}
	// F1 is 2.5× slower than Lattigo (single-slot bootstrapping).
	if r := F1.TmultASlot / Lattigo.TmultASlot; r < 2.4 || r > 2.6 {
		t.Fatalf("F1/Lattigo ratio %.2f, paper says 2.5", r)
	}
	// F1+ is 824× slower than BTS INS-2's 45.5 ns.
	if r := F1Plus.TmultASlot / 45.5e-9; r < 820 || r > 828 {
		t.Fatalf("F1+ ratio %.0f, paper says 824", r)
	}
}

func TestAllOrdering(t *testing.T) {
	ps := All()
	if len(ps) != 5 || ps[0].Name != Lattigo.Name {
		t.Fatalf("All() broken: %v", ps)
	}
}

func TestPaperNumbers(t *testing.T) {
	p := Paper()
	if p.MinBoundNs != [3]float64{27.7, 19.9, 22.1} {
		t.Fatalf("min-bound constants drifted: %v", p.MinBoundNs)
	}
	if p.ResNetBoots != [3]int{53, 22, 19} || p.SortingBoots != [3]int{521, 306, 229} {
		t.Fatal("Table 6 bootstrap constants drifted")
	}
}

func TestUnencryptedDerivation(t *testing.T) {
	u := Unencrypted()
	if u.HELRMsPerIter <= 0 || u.ResNetSec <= 0 {
		t.Fatal("implied plain runtimes must be positive")
	}
	// HELR plain ≈ 28.4/141 ≈ 0.20 ms.
	if u.HELRMsPerIter < 0.1 || u.HELRMsPerIter > 0.4 {
		t.Fatalf("HELR plain %.3f ms implausible", u.HELRMsPerIter)
	}
}
