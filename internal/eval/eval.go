// Package eval regenerates every table and figure of the BTS paper's
// evaluation (Section 6) from this repository's models: the parameter
// analysis (Figs. 1-2), the complexity breakdown (Fig. 3b), the hardware
// tables (Tables 3-4), the simulator-driven results (Figs. 6-10, Tables
// 5-6) and the §6.3 slowdown discussion. Each experiment returns structured
// rows so that cmd/btsbench, the root benchmark harness, and EXPERIMENTS.md
// all share one source of truth.
package eval

import (
	"fmt"
	"strings"

	"bts/internal/arch"
	"bts/internal/baseline"
	"bts/internal/params"
	"bts/internal/sim"
	"bts/internal/workload"
)

// --- Table 1 -----------------------------------------------------------------

// Table1Row compares platforms on bootstrappable-FHE throughput.
type Table1Row struct {
	Platform    string
	LogN        int
	Slots       int
	Bootstrap   bool
	Parallelism string
	MultPerSec  float64
}

// Table1 reproduces the cross-platform comparison. BTS's row is measured
// with the simulator on INS-2 (the paper's best instance).
func Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range baseline.All() {
		rows = append(rows, Table1Row{
			Platform: p.Name, LogN: p.LogN, Slots: p.Slots,
			Bootstrap: p.Bootstrap, Parallelism: p.Parallelism,
			MultPerSec: 1 / p.TmultASlot,
		})
	}
	s := sim.New(arch.Default(), params.INS2)
	t, err := s.AmortizedMultPerSlot(workload.PaperBootstrapShape())
	if err != nil {
		panic(err)
	}
	rows = append(rows, Table1Row{
		Platform: "BTS (this work)", LogN: 17, Slots: 65536,
		Bootstrap: true, Parallelism: "CLP", MultPerSec: 1 / t,
	})
	return rows
}

// --- Fig. 1 ------------------------------------------------------------------

// Fig1 returns the L-vs-dnum and evk-size-vs-dnum series for the four ring
// degrees of the figure.
func Fig1() map[int][]params.Fig1Row {
	out := map[int][]params.Fig1Row{}
	for _, logN := range []int{15, 16, 17, 18} {
		out[logN] = params.LevelsAndEvkVsDnum(logN)
	}
	return out
}

// --- Fig. 2 ------------------------------------------------------------------

// Fig2Row is one sweep point: a CKKS instance's security and its
// minimum-bound amortized mult time at 1 TB/s.
type Fig2Row struct {
	LogN, L, Dnum int
	Lambda        float64
	TmultASlotNs  float64
	Feasible      bool // false when L < L_boot (below the Fig. 1 dotted line)
}

// Fig2 sweeps (N, dnum) points at 128-bit security like the paper's Fig. 2.
func Fig2() []Fig2Row {
	var rows []Fig2Row
	for _, logN := range []int{15, 16, 17, 18} {
		maxD := params.MaxDnum(logN)
		for dnum := 1; dnum <= maxD; dnum++ {
			inst := params.SweepInstance(logN, dnum)
			if inst.L < 1 {
				continue
			}
			row := Fig2Row{LogN: logN, L: inst.L, Dnum: dnum, Lambda: inst.Lambda()}
			// The sweep uses the paper's 19-level bootstrapping throughout;
			// instances that cannot afford it are infeasible (the dotted
			// line of Fig. 1a).
			shape := workload.PaperBootstrapShape()
			t, err := sim.MinBoundMultPerSlot(inst, shape, 1e12)
			if err != nil {
				rows = append(rows, row)
				continue
			}
			row.Feasible = true
			row.TmultASlotNs = t * 1e9
			rows = append(rows, row)
		}
	}
	return rows
}

// --- Fig. 3(b) ---------------------------------------------------------------

// Fig3bRow is the computational-complexity breakdown of HMult for one dnum.
type Fig3bRow struct {
	Dnum                      int
	BConvPct, NTTPct, INTTPct float64
	OthersPct                 float64
}

// Fig3b computes the relative op counts of the key-switching pipeline at
// N = 2^17 and 128-bit security for increasing dnum, reproducing the trend
// that BConv grows from ~12% at dnum=max to ~34% at dnum=1.
func Fig3b() []Fig3bRow {
	var rows []Fig3bRow
	maxD := params.MaxDnum(17)
	for _, dnum := range []int{1, 3, 6, 14, maxD} {
		inst := params.SweepInstance(17, dnum)
		n := float64(inst.N())
		logN := float64(inst.LogN)
		L := inst.L
		k := inst.K()
		alpha := float64(inst.Alpha())
		rows64 := float64(k + L + 1)
		lrows := float64(L + 1)
		beta := float64(inst.Beta(L))

		// Modular multiplications per function (the unit of Fig. 3b).
		nttMults := (beta + 1) * rows64 * n / 2 * logN // forward NTTs
		inttMults := (lrows + 2*float64(k)) * n / 2 * logN
		bconvMults := (beta*alpha*(rows64-alpha) + 2*float64(k)*lrows) * n * 1.1
		others := (2*beta*rows64*2 + 4*lrows) * n

		total := nttMults + inttMults + bconvMults + others
		rows = append(rows, Fig3bRow{
			Dnum:      dnum,
			BConvPct:  100 * bconvMults / total,
			NTTPct:    100 * nttMults / total,
			INTTPct:   100 * inttMults / total,
			OthersPct: 100 * others / total,
		})
	}
	return rows
}

// --- Tables 3 and 4 ----------------------------------------------------------

// Table3 re-exports the hardware area/power model.
func Table3() []arch.Component { return arch.Table3() }

// Table4Row describes one evaluation instance.
type Table4Row struct {
	Name          string
	LogN, L, Dnum int
	LogPQ         float64
	Lambda        float64
	TempDataMB    float64
	EvkMB         float64
	CtMB          float64
}

// Table4 reproduces the instance table (plus derived footprints).
func Table4() []Table4Row {
	var rows []Table4Row
	for _, in := range params.PaperInstances() {
		rows = append(rows, Table4Row{
			Name: in.Name, LogN: in.LogN, L: in.L, Dnum: in.Dnum,
			LogPQ:      in.LogPQ(),
			Lambda:     in.Lambda(),
			TempDataMB: float64(in.TempDataBytes()) / (1 << 20),
			EvkMB:      float64(in.EvkBytesMax()) / (1 << 20),
			CtMB:       float64(in.CtBytes(in.L)) / (1 << 20),
		})
	}
	return rows
}

// --- Fig. 6 ------------------------------------------------------------------

// Fig6Row is one platform/instance point of the Tmult comparison.
type Fig6Row struct {
	System       string
	TmultASlotNs float64
	SpeedupVsCPU float64
}

// Fig6 compares BTS (simulated, 512 MB scratchpad) with the baselines.
func Fig6() []Fig6Row {
	var rows []Fig6Row
	cpu := baseline.Lattigo.TmultASlot
	for _, p := range baseline.All() {
		rows = append(rows, Fig6Row{p.Name, p.TmultASlot * 1e9, cpu / p.TmultASlot})
	}
	for _, inst := range params.PaperInstances() {
		s := sim.New(arch.Default(), inst)
		t, err := s.AmortizedMultPerSlot(workload.PaperBootstrapShape())
		if err != nil {
			panic(err)
		}
		rows = append(rows, Fig6Row{"BTS " + inst.Name, t * 1e9, cpu / t})
	}
	return rows
}

// --- Fig. 7 ------------------------------------------------------------------

// Fig7aRow compares the minimum bound with simulated Tmult at two
// scratchpad capacities.
type Fig7aRow struct {
	Instance   string
	MinBoundNs float64
	With512MNs float64
	With2GNs   float64
}

// Fig7a reproduces the scratchpad-capacity study.
func Fig7a() []Fig7aRow {
	shape := workload.PaperBootstrapShape()
	var rows []Fig7aRow
	for _, inst := range params.PaperInstances() {
		mb, err := sim.MinBoundMultPerSlot(inst, shape, 1e12)
		if err != nil {
			panic(err)
		}
		hw := arch.Default()
		s512 := sim.New(hw, inst)
		t512, err := s512.AmortizedMultPerSlot(shape)
		if err != nil {
			panic(err)
		}
		hw2g := hw
		hw2g.ScratchpadBytes = 2 << 30
		s2g := sim.New(hw2g, inst)
		t2g, err := s2g.AmortizedMultPerSlot(shape)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Fig7aRow{
			Instance: inst.Name, MinBoundNs: mb * 1e9,
			With512MNs: t512 * 1e9, With2GNs: t2g * 1e9,
		})
	}
	return rows
}

// Fig7bRow is the bootstrapping share of one application's runtime (INS-1).
type Fig7bRow struct {
	App          string
	BootstrapPct float64
}

// Fig7b measures the bootstrapping fraction per application on INS-1.
func Fig7b() []Fig7bRow {
	inst := params.INS1
	shape := workload.PaperBootstrapShape()
	traces := []workload.Trace{
		workload.AmortizedMultTrace(inst, shape),
		workload.HELRTrace(inst, shape, workload.DefaultHELR()),
		workload.ResNet20Trace(inst, shape, workload.DefaultResNet()),
		workload.SortingTrace(inst, shape, workload.DefaultSorting()),
	}
	var rows []Fig7bRow
	for _, tr := range traces {
		s := sim.New(arch.Default(), inst)
		st := s.RunTrace(tr)
		rows = append(rows, Fig7bRow{App: tr.Name, BootstrapPct: 100 * st.BootTime / st.Time})
	}
	return rows
}

// --- Fig. 8 ------------------------------------------------------------------

// Fig8Result is the HMult timeline on INS-1 (with resident operands).
type Fig8Result struct {
	Events       []sim.TimelineEvent
	TotalUs      float64
	HBMUtilPct   float64
	NTTUUtilPct  float64
	BConvUtilPct float64
}

// Fig8 expands a single top-level HMult with resident operands and captures
// the phase breakdown, mirroring the paper's Fig. 8 (HMult latency = the evk
// load ≈ 128 µs on INS-1; HBM ≈ 98% busy, NTTUs ≈ 76%, BConvU ≈ 33%).
func Fig8() Fig8Result {
	inst := params.INS1
	s := sim.New(arch.Default(), inst)
	op := workload.Op{Kind: workload.HMult, Level: inst.L, CtIn: []int{1, 2}, CtOut: 3}
	hbm, ntt, bconv, elt, noc, total := s.OpBreakdown(op)
	events := []sim.TimelineEvent{
		{Op: "HMult", Phase: "evk-load", Start: 0, End: hbm},
		{Op: "HMult", Phase: "NTT/iNTT", Start: 0, End: ntt},
		{Op: "HMult", Phase: "BConv", Start: ntt * 0.25, End: ntt*0.25 + bconv},
		{Op: "HMult", Phase: "elementwise", Start: 0, End: elt},
		{Op: "HMult", Phase: "NoC", Start: 0, End: noc},
	}
	return Fig8Result{
		Events:       events,
		TotalUs:      total * 1e6,
		HBMUtilPct:   100 * hbm / total,
		NTTUUtilPct:  100 * ntt / total,
		BConvUtilPct: 100 * bconv / total,
	}
}

// --- Fig. 9 ------------------------------------------------------------------

// Fig9Row is one ablation step.
type Fig9Row struct {
	Config       string
	TmultASlotUs float64
	Speedup      float64 // vs the Lattigo CPU baseline
}

// Fig9 reproduces the ablation: small BTS on a Lattigo-like instance →
// FHE-optimized instance (INS-1) → 512 MB scratchpad → BConv/iNTT overlap →
// 2 TB/s HBM.
func Fig9() []Fig9Row {
	cpu := baseline.Lattigo.TmultASlot
	var rows []Fig9Row
	add := func(name string, hw arch.Config, inst params.Instance) {
		shape, ok := workload.ShapeForInstance(inst)
		if !ok {
			panic("fig9: instance cannot bootstrap: " + inst.Name)
		}
		s := sim.New(hw, inst)
		t, err := s.AmortizedMultPerSlot(shape)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Fig9Row{name, t * 1e6, cpu / t})
	}

	small := arch.Default()
	small.Name = "small BTS"
	small.BConvOverlap = false
	small.ScratchpadBytes = params.INSLattigo.TempDataBytes() + params.INSLattigo.EvkBytesMax() + (16 << 20)
	add("small BTS (INS-Lattigo)", small, params.INSLattigo)

	small1 := small
	small1.ScratchpadBytes = params.INS1.TempDataBytes() + params.INS1.EvkBytesMax() + (16 << 20)
	add("small BTS (INS-1)", small1, params.INS1)

	noOverlap := arch.Default()
	noOverlap.BConvOverlap = false
	add("BTS w/o BConvU overlapping (INS-1)", noOverlap, params.INS1)

	add("BTS (INS-1)", arch.Default(), params.INS1)

	fast := arch.Default()
	fast.HBMBytesPerSec = 2e12
	// The paper shrinks the scratchpad to fit the extra HBM PHYs.
	fast.ScratchpadBytes = 448 << 20
	add("BTS w/ high bandwidth (INS-1)", fast, params.INS1)
	return rows
}

// --- Fig. 10 -----------------------------------------------------------------

// Fig10Row is the bootstrapping-time breakdown and EDAP at one scratchpad
// capacity.
type Fig10Row struct {
	ScratchpadMB int64
	BootstrapMs  float64
	PerKindMs    map[workload.OpKind]float64
	EDAP         float64
}

// Fig10 sweeps the scratchpad from 192 MB to 1 GB in 64 MB steps on the
// INS-1 bootstrapping trace.
func Fig10() []Fig10Row {
	inst := params.INS1
	shape := workload.PaperBootstrapShape()
	tr := workload.BootstrapTrace(inst, shape)
	var rows []Fig10Row
	for mb := int64(192); mb <= 1024; mb += 64 {
		hw := arch.Default()
		hw.ScratchpadBytes = mb << 20
		s := sim.New(hw, inst)
		st := s.RunTrace(tr)
		per := map[workload.OpKind]float64{}
		for k, v := range st.PerKind {
			per[k] = v * 1e3
		}
		rows = append(rows, Fig10Row{
			ScratchpadMB: mb,
			BootstrapMs:  st.Time * 1e3,
			PerKindMs:    per,
			EDAP:         st.EDAP(),
		})
	}
	return rows
}

// --- Tables 5 and 6 ----------------------------------------------------------

// Table5Row is HELR training time per iteration.
type Table5Row struct {
	System    string
	MsPerIter float64
	Speedup   float64
}

// Table5 reproduces the logistic-regression comparison.
func Table5() []Table5Row {
	var rows []Table5Row
	cpu := baseline.Lattigo.HELRMsPerIter
	for _, p := range baseline.All() {
		if p.HELRMsPerIter == 0 {
			continue
		}
		rows = append(rows, Table5Row{p.Name, p.HELRMsPerIter, cpu / p.HELRMsPerIter})
	}
	cfg := workload.DefaultHELR()
	for _, inst := range params.PaperInstances() {
		shape := workload.PaperBootstrapShape()
		tr := workload.HELRTrace(inst, shape, cfg)
		s := sim.New(arch.Default(), inst)
		st := s.RunTrace(tr)
		ms := st.Time * 1e3 / float64(cfg.Iterations)
		rows = append(rows, Table5Row{"BTS " + inst.Name, ms, cpu / ms})
	}
	return rows
}

// Table6Row is one application/instance result.
type Table6Row struct {
	App        string
	System     string
	Seconds    float64
	Speedup    float64
	Bootstraps int
}

// Table6 reproduces the ResNet-20 and sorting results (CPU references from
// the respective papers, as in the original).
func Table6() []Table6Row {
	var rows []Table6Row
	rows = append(rows,
		Table6Row{App: "ResNet-20", System: "CPU [59]", Seconds: 10602, Speedup: 1},
		Table6Row{App: "sorting", System: "CPU [42]", Seconds: 23066, Speedup: 1},
	)
	shape := workload.PaperBootstrapShape()
	for _, inst := range params.PaperInstances() {
		tr := workload.ResNet20Trace(inst, shape, workload.DefaultResNet())
		s := sim.New(arch.Default(), inst)
		st := s.RunTrace(tr)
		rows = append(rows, Table6Row{
			App: "ResNet-20", System: "BTS " + inst.Name,
			Seconds: st.Time, Speedup: 10602 / st.Time, Bootstraps: tr.Bootstraps,
		})
	}
	for _, inst := range params.PaperInstances() {
		tr := workload.SortingTrace(inst, shape, workload.DefaultSorting())
		s := sim.New(arch.Default(), inst)
		st := s.RunTrace(tr)
		rows = append(rows, Table6Row{
			App: "sorting", System: "BTS " + inst.Name,
			Seconds: st.Time, Speedup: 23066 / st.Time, Bootstraps: tr.Bootstraps,
		})
	}
	return rows
}

// --- §6.3 slowdown vs unencrypted ---------------------------------------------

// SlowdownRow compares FHE-on-BTS with plain execution.
type SlowdownRow struct {
	App      string
	FHESec   float64
	PlainSec float64
	Slowdown float64
}

// SlowdownVsPlain reproduces the §6.3 discussion (HELR 141×, ResNet 440×).
func SlowdownVsPlain() []SlowdownRow {
	shape := workload.PaperBootstrapShape()
	un := baseline.Unencrypted()
	var rows []SlowdownRow

	helr := workload.HELRTrace(params.INS2, shape, workload.DefaultHELR())
	s := sim.New(arch.Default(), params.INS2)
	st := s.RunTrace(helr)
	fheIter := st.Time / float64(workload.DefaultHELR().Iterations)
	plainIter := un.HELRMsPerIter / 1e3
	rows = append(rows, SlowdownRow{"HELR (per iter)", fheIter, plainIter, fheIter / plainIter})

	res := workload.ResNet20Trace(params.INS1, shape, workload.DefaultResNet())
	s2 := sim.New(arch.Default(), params.INS1)
	st2 := s2.RunTrace(res)
	rows = append(rows, SlowdownRow{"ResNet-20", st2.Time, un.ResNetSec, st2.Time / un.ResNetSec})
	return rows
}

// FormatTable renders rows of strings as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for i, w := range widths {
		header[i] = strings.Repeat("-", w)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
