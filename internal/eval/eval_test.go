package eval

import (
	"math"
	"strings"
	"testing"

	"bts/internal/workload"
)

func TestTable1BTSWins(t *testing.T) {
	rows := Table1()
	var bts, best float64
	for _, r := range rows {
		if strings.HasPrefix(r.Platform, "BTS") {
			bts = r.MultPerSec
		} else if r.MultPerSec > best {
			best = r.MultPerSec
		}
	}
	// The paper reports 20M mult/s vs 0.1-1M for the best prior work; our
	// simulated BTS lands at ~13M (Tmult ≈ 79 ns at 512 MB), still about
	// an order of magnitude beyond the 100x GPU.
	if bts < 10e6 {
		t.Fatalf("BTS throughput %.3g below 10M mult/s", bts)
	}
	if bts < 5*best {
		t.Fatalf("BTS (%.3g) not ≥5× the best baseline (%.3g)", bts, best)
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	rows := Fig2()
	// The paper's key observation: around λ=128, N=2^17 beats N=2^16 by
	// ~3.8× and N=2^18 adds only ~1.3×.
	best := map[int]float64{}
	for _, r := range rows {
		if !r.Feasible || r.Lambda < 125 || r.Lambda > 145 {
			continue
		}
		if v, ok := best[r.LogN]; !ok || r.TmultASlotNs < v {
			best[r.LogN] = r.TmultASlotNs
		}
	}
	if best[16] <= best[17] {
		t.Fatalf("N=2^17 (%.1f ns) must beat N=2^16 (%.1f ns)", best[17], best[16])
	}
	gain1617 := best[16] / best[17]
	if gain1617 < 2 {
		t.Fatalf("2^16→2^17 gain %.2fx, paper reports ≈3.8x", gain1617)
	}
	gain1718 := best[17] / best[18]
	if gain1718 > gain1617 {
		t.Fatalf("gain must saturate after 2^17: %.2f vs %.2f", gain1718, gain1617)
	}
}

func TestFig3bBConvTrend(t *testing.T) {
	rows := Fig3b()
	// BConv share grows as dnum shrinks: ~34% at dnum=1, ~12% at max.
	first, last := rows[0], rows[len(rows)-1]
	if first.Dnum != 1 {
		t.Fatalf("first row dnum=%d want 1", first.Dnum)
	}
	if first.BConvPct <= last.BConvPct {
		t.Fatalf("BConv share must shrink with dnum: %.1f%% vs %.1f%%", first.BConvPct, last.BConvPct)
	}
	// Our accounting charges every BConv MAC to BConv, which yields a
	// higher absolute share than the paper's Fig. 3b (34% at dnum=1); the
	// monotone trend is the reproduced claim (see EXPERIMENTS.md).
	if first.BConvPct < 25 || first.BConvPct > 65 {
		t.Fatalf("BConv at dnum=1 is %.1f%%, outside [25,65]", first.BConvPct)
	}
	if last.BConvPct > 30 {
		t.Fatalf("BConv at dnum=max is %.1f%%, should fall below 30%%", last.BConvPct)
	}
	for _, r := range rows {
		sum := r.BConvPct + r.NTTPct + r.INTTPct + r.OthersPct
		if math.Abs(sum-100) > 0.01 {
			t.Fatalf("breakdown sums to %.2f%%", sum)
		}
	}
}

func TestFig6SpeedupBand(t *testing.T) {
	rows := Fig6()
	var bestBTS float64 = math.Inf(1)
	for _, r := range rows {
		if strings.HasPrefix(r.System, "BTS") && r.TmultASlotNs < bestBTS {
			bestBTS = r.TmultASlotNs
		}
	}
	// Paper: 45.5 ns best (2,237× over Lattigo). Accept the right order of
	// magnitude: tens of ns, ≥ 1000× speedup.
	if bestBTS < 15 || bestBTS > 90 {
		t.Fatalf("best BTS Tmult %.1f ns outside [15,90]", bestBTS)
	}
	cpu := rows[0].TmultASlotNs
	if cpu/bestBTS < 1000 {
		t.Fatalf("speedup vs CPU %.0fx below 1000x", cpu/bestBTS)
	}
}

func TestFig7aOrdering(t *testing.T) {
	rows := Fig7a()
	for _, r := range rows {
		if r.MinBoundNs > r.With2GNs || r.With2GNs > r.With512MNs {
			t.Fatalf("%s: expected min ≤ 2GB ≤ 512MB, got %.1f / %.1f / %.1f",
				r.Instance, r.MinBoundNs, r.With2GNs, r.With512MNs)
		}
	}
	// INS-2 is the best instance at 2 GB (paper Fig. 7a).
	if !(rows[1].With2GNs < rows[0].With2GNs && rows[1].With2GNs < rows[2].With2GNs) {
		t.Fatalf("INS-2 must be fastest at 2GB: %v", rows)
	}
}

func TestFig7bBootstrappingDominatesAmortized(t *testing.T) {
	rows := Fig7b()
	byApp := map[string]float64{}
	for _, r := range rows {
		byApp[r.App] = r.BootstrapPct
	}
	if byApp["amortized-mult"] < 70 {
		t.Fatalf("bootstrapping share of the microbenchmark %.1f%% too low", byApp["amortized-mult"])
	}
	if byApp["ResNet-20"] >= byApp["amortized-mult"] {
		t.Fatal("ResNet must have a lower bootstrap share than the microbenchmark")
	}
}

func TestFig8MemoryBound(t *testing.T) {
	res := Fig8()
	if res.TotalUs < 100 || res.TotalUs > 140 {
		t.Fatalf("HMult latency %.1f µs outside [100,140] (paper ≈128)", res.TotalUs)
	}
	if res.HBMUtilPct < 95 {
		t.Fatalf("HBM %.0f%% — HMult must be memory-bound (paper 98%%)", res.HBMUtilPct)
	}
	if res.NTTUUtilPct < 60 || res.NTTUUtilPct > 90 {
		t.Fatalf("NTTU %.0f%% outside [60,90] (paper 76%%)", res.NTTUUtilPct)
	}
}

func TestFig9Monotone(t *testing.T) {
	rows := Fig9()
	if len(rows) != 5 {
		t.Fatalf("expected 5 ablation steps, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup*0.999 {
			t.Fatalf("ablation speedups not monotone: %s %.0fx after %.0fx",
				rows[i].Config, rows[i].Speedup, rows[i-1].Speedup)
		}
	}
	if rows[4].Speedup < 1000 {
		t.Fatalf("final configuration only %.0fx over Lattigo", rows[4].Speedup)
	}
}

func TestFig10EDAPImprovesThenSaturates(t *testing.T) {
	rows := Fig10()
	if rows[0].ScratchpadMB != 192 || rows[len(rows)-1].ScratchpadMB != 1024 {
		t.Fatalf("sweep range wrong: %d..%d", rows[0].ScratchpadMB, rows[len(rows)-1].ScratchpadMB)
	}
	if rows[0].BootstrapMs < rows[len(rows)-1].BootstrapMs {
		t.Fatal("bootstrapping must get faster with more scratchpad")
	}
	// Saturation: the last two points differ by < 5%.
	a, b := rows[len(rows)-2].BootstrapMs, rows[len(rows)-1].BootstrapMs
	if math.Abs(a-b)/b > 0.05 {
		t.Fatalf("no saturation at 1GB: %.2f vs %.2f ms", a, b)
	}
}

func TestTable5BTSBeatsAll(t *testing.T) {
	rows := Table5()
	var bestBase, bestBTS float64 = math.Inf(1), math.Inf(1)
	for _, r := range rows {
		if strings.HasPrefix(r.System, "BTS") {
			if r.MsPerIter < bestBTS {
				bestBTS = r.MsPerIter
			}
		} else if r.MsPerIter < bestBase {
			bestBase = r.MsPerIter
		}
	}
	if bestBTS >= bestBase {
		t.Fatalf("BTS HELR %.1f ms/iter not better than best baseline %.1f", bestBTS, bestBase)
	}
}

func TestTable6OrderingAndBand(t *testing.T) {
	rows := Table6()
	var resnet []Table6Row
	for _, r := range rows {
		if r.App == "ResNet-20" && strings.HasPrefix(r.System, "BTS") {
			resnet = append(resnet, r)
		}
	}
	if len(resnet) != 3 {
		t.Fatalf("expected 3 BTS ResNet rows, got %d", len(resnet))
	}
	// Paper: INS-1 fastest at 1.91 s with thousands-fold speedup.
	if resnet[0].Seconds > resnet[1].Seconds || resnet[0].Seconds > resnet[2].Seconds {
		t.Fatal("INS-1 must be the fastest ResNet instance")
	}
	if resnet[0].Seconds < 1 || resnet[0].Seconds > 4 {
		t.Fatalf("ResNet INS-1 %.2f s outside [1,4] (paper 1.91)", resnet[0].Seconds)
	}
	if resnet[0].Speedup < 1000 {
		t.Fatalf("ResNet speedup %.0fx below 1000x", resnet[0].Speedup)
	}
}

func TestSlowdownVsPlain(t *testing.T) {
	rows := SlowdownVsPlain()
	for _, r := range rows {
		// Paper reports 141× (HELR) and 440× (ResNet); accept the band
		// [50, 2000] — FHE remains orders of magnitude slower than plain.
		if r.Slowdown < 50 || r.Slowdown > 2000 {
			t.Fatalf("%s slowdown %.0fx outside [50,2000]", r.App, r.Slowdown)
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "333") || !strings.Contains(out, "--") {
		t.Fatalf("bad table output:\n%s", out)
	}
}

func TestFig10UsesAllKinds(t *testing.T) {
	rows := Fig10()
	per := rows[0].PerKindMs
	if per[workload.HMult] <= 0 || per[workload.PMult] <= 0 || per[workload.HRot] <= 0 {
		t.Fatalf("missing op kinds in breakdown: %v", per)
	}
}
