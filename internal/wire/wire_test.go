package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"bts/internal/ckks"
)

// testContext builds a small context plus key material shared by the tests.
func testContext(t testing.TB) (*ckks.Context, *ckks.KeyGenerator, *ckks.SecretKey) {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{45, 38, 38, 38},
		LogP:     46,
		Dnum:     2,
		LogScale: 38,
		H:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 4242)
	return ctx, kg, kg.GenSecretKey()
}

func TestPolyRoundTrip(t *testing.T) {
	ctx, _, _ := testContext(t)
	c := NewCodec(ctx)
	rng := rand.New(rand.NewSource(1))
	for level := 0; level <= ctx.RingQ.MaxLevel(); level++ {
		p := ctx.RingQ.NewPolyLevel(level)
		ctx.RingQ.SampleUniform(rng, p, level)
		b, err := c.MarshalPoly(p, level)
		if err != nil {
			t.Fatal(err)
		}
		got, gotLevel, err := c.UnmarshalPoly(b)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if gotLevel != level || !ctx.RingQ.Equal(got, p, level) {
			t.Fatalf("level %d: poly round trip mismatch", level)
		}
		b2, err := c.MarshalPoly(got, gotLevel)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("level %d: re-marshal not bit-exact", level)
		}
	}
}

func TestPlaintextCiphertextRoundTrip(t *testing.T) {
	ctx, _, sk := testContext(t)
	c := NewCodec(ctx)
	enc := ckks.NewEncoder(ctx)
	encryptor := ckks.NewEncryptorSK(ctx, sk, 7)
	rng := rand.New(rand.NewSource(2))
	for level := 0; level <= ctx.Params.MaxLevel(); level++ {
		values := make([]complex128, ctx.Params.Slots())
		for i := range values {
			values[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		pt, err := enc.Encode(values, level, ctx.Params.Scale)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := c.MarshalPlaintext(pt)
		if err != nil {
			t.Fatal(err)
		}
		pt2, err := c.UnmarshalPlaintext(pb)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if pt2.Level != pt.Level || pt2.Scale != pt.Scale || !ctx.RingQ.Equal(pt2.Value, pt.Value, level) {
			t.Fatalf("level %d: plaintext round trip mismatch", level)
		}

		ct, err := encryptor.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := c.MarshalCiphertext(ct)
		if err != nil {
			t.Fatal(err)
		}
		ct2, err := c.UnmarshalCiphertext(cb)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if ct2.Level != ct.Level || ct2.Scale != ct.Scale ||
			!ctx.RingQ.Equal(ct2.C0, ct.C0, level) || !ctx.RingQ.Equal(ct2.C1, ct.C1, level) {
			t.Fatalf("level %d: ciphertext round trip mismatch", level)
		}
		cb2, err := c.MarshalCiphertext(ct2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cb, cb2) {
			t.Fatalf("level %d: ciphertext re-marshal not bit-exact", level)
		}
	}
}

func TestPooledCodecCiphertext(t *testing.T) {
	ctx, _, sk := testContext(t)
	c := NewPooledCodec(ctx)
	enc := ckks.NewEncoder(ctx)
	encryptor := ckks.NewEncryptorSK(ctx, sk, 8)
	pt, _ := enc.Encode([]complex128{0.5, -0.5}, ctx.Params.MaxLevel(), ctx.Params.Scale)
	ct, _ := encryptor.EncryptNew(pt)
	b, err := c.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.UnmarshalCiphertext(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Pooled() {
		t.Fatal("pooled codec returned a plain ciphertext")
	}
	if !ctx.RingQ.Equal(got.C0, ct.C0, ct.Level) || !ctx.RingQ.Equal(got.C1, ct.C1, ct.Level) {
		t.Fatal("pooled decode mismatch")
	}
	ctx.PutCiphertext(got)
}

func TestPublicKeyRoundTrip(t *testing.T) {
	ctx, kg, sk := testContext(t)
	c := NewCodec(ctx)
	pk := kg.GenPublicKey(sk)
	b, err := c.MarshalPublicKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := c.UnmarshalPublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	lvl := ctx.RingQ.MaxLevel()
	if !ctx.RingQ.Equal(pk2.Value[0], pk.Value[0], lvl) || !ctx.RingQ.Equal(pk2.Value[1], pk.Value[1], lvl) {
		t.Fatal("public key round trip mismatch")
	}
	// A decoded public key must be usable for encryption.
	enc := ckks.NewEncoder(ctx)
	pt, _ := enc.Encode([]complex128{0.25}, lvl, ctx.Params.Scale)
	encryptor := ckks.NewEncryptorPK(ctx, pk2, 9)
	ct, err := encryptor.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	dec := ckks.NewDecryptor(ctx, sk)
	vals := enc.Decode(dec.DecryptNew(ct))
	if r := real(vals[0]); r < 0.24 || r > 0.26 {
		t.Fatalf("decoded pk does not encrypt correctly: got %g", r)
	}
}

func TestSwitchingKeyAndRotationKeySetRoundTrip(t *testing.T) {
	ctx, kg, sk := testContext(t)
	c := NewCodec(ctx)
	rlk := kg.GenRelinearizationKey(sk)
	b, err := c.MarshalSwitchingKey(rlk)
	if err != nil {
		t.Fatal(err)
	}
	rlk2, err := c.UnmarshalSwitchingKey(b)
	if err != nil {
		t.Fatal(err)
	}
	lq, lp := ctx.RingQ.MaxLevel(), ctx.RingP.MaxLevel()
	for j := range rlk.Value {
		for k := 0; k < 2; k++ {
			if !ctx.RingQ.Equal(rlk2.Value[j][k].Q, rlk.Value[j][k].Q, lq) ||
				!ctx.RingP.Equal(rlk2.Value[j][k].P, rlk.Value[j][k].P, lp) {
				t.Fatalf("switching key group %d pair %d mismatch", j, k)
			}
		}
	}

	rtks := kg.GenRotationKeys(sk, []int{1, 2, 4}, true)
	rb, err := c.MarshalRotationKeySet(rtks)
	if err != nil {
		t.Fatal(err)
	}
	rtks2, err := c.UnmarshalRotationKeySet(rb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtks2.Keys) != len(rtks.Keys) {
		t.Fatalf("rotation key set size %d, want %d", len(rtks2.Keys), len(rtks.Keys))
	}
	rb2, err := c.MarshalRotationKeySet(rtks2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, rb2) {
		t.Fatal("rotation key set re-marshal not bit-exact")
	}

	// Decoded keys must actually evaluate: rotate+relinearize and decrypt.
	enc := ckks.NewEncoder(ctx)
	encryptor := ckks.NewEncryptorSK(ctx, sk, 10)
	eval := ckks.NewEvaluator(ctx, enc, rlk2, rtks2)
	values := make([]complex128, ctx.Params.Slots())
	for i := range values {
		values[i] = complex(float64(i%7)/7, 0)
	}
	pt, _ := enc.Encode(values, ctx.Params.MaxLevel(), ctx.Params.Scale)
	ct, _ := encryptor.EncryptNew(pt)
	rot := eval.Rotate(ct, 2)
	prod := eval.Rescale(eval.MulRelin(rot, ct))
	dec := ckks.NewDecryptor(ctx, sk)
	got := enc.Decode(dec.DecryptNew(prod))
	slots := ctx.Params.Slots()
	for i := 0; i < 8; i++ {
		want := values[(i+2)%slots] * values[i]
		if d := real(got[i]) - real(want); d > 1e-4 || d < -1e-4 {
			t.Fatalf("slot %d: got %g want %g", i, real(got[i]), real(want))
		}
	}
}

// TestMalformedInputs exercises the main rejection paths explicitly (the fuzz
// target covers the long tail).
func TestMalformedInputs(t *testing.T) {
	ctx, _, sk := testContext(t)
	c := NewCodec(ctx)
	enc := ckks.NewEncoder(ctx)
	encryptor := ckks.NewEncryptorSK(ctx, sk, 11)
	pt, _ := enc.Encode([]complex128{1}, 1, ctx.Params.Scale)
	ct, _ := encryptor.EncryptNew(pt)
	good, err := c.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}(),
		"wrong type": func() []byte {
			b := append([]byte(nil), good...)
			b[5] = byte(TypePublicKey)
			return b
		}(),
		"truncated header":  good[:5],
		"truncated payload": good[:len(good)-3],
		"oversized length": func() []byte {
			b := append([]byte(nil), good...)
			b[6], b[7], b[8], b[9] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
		"level above max": func() []byte {
			b := append([]byte(nil), good...)
			b[10] = 200
			return b
		}(),
		"residue out of range": func() []byte {
			b := append([]byte(nil), good...)
			// First residue word of c0 (header 10 + level 4 + scale 8 + poly hdr 8).
			for i := 0; i < 8; i++ {
				b[30+i] = 0xff
			}
			return b
		}(),
		"trailing garbage": func() []byte {
			b := append([]byte(nil), good...)
			b = append(b, 1, 2, 3)
			// Grow the declared length so the cursor sees the extra bytes.
			l := uint32(len(b) - headerSize)
			b[6], b[7], b[8], b[9] = byte(l), byte(l>>8), byte(l>>16), byte(l>>24)
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := c.UnmarshalCiphertext(b); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}
