// Package wire is the serialization layer of the serving runtime: a
// versioned, length-prefixed binary codec for every CKKS object that crosses
// a process boundary — polynomials, plaintexts, ciphertexts, public keys,
// switching keys and rotation-key sets.
//
// Every object travels inside an envelope:
//
//	offset 0  magic   "BTSW" (4 bytes)
//	offset 4  version (1 byte, currently 1)
//	offset 5  type    (1 byte, see Type)
//	offset 6  length  (uint32 little-endian, payload byte count)
//	offset 10 payload (type-specific, little-endian)
//
// A Codec is bound to a ckks.Context and validates everything it decodes
// against it — ring degree, level bounds, residue canonicity (every residue
// must be < its prime), scale sanity, decomposition arity — so malformed or
// truncated bytes always surface as an error, never as a panic or an
// out-of-range write. The length prefix is checked against a per-type upper
// bound derived from the context before any allocation, bounding the memory
// a hostile peer can make the decoder commit.
//
// The payload of a polynomial is
//
//	uint32 N | uint32 rows | rows×N × uint64 residues (row-major)
//
// and compound objects nest polynomial bodies without repeating the
// envelope. Integers and floats are little-endian; scales travel as IEEE-754
// bit patterns, so round trips are bit-exact.
//
// In-memory polynomials hold their residues in Montgomery form (the ring
// package's M-form invariant); the wire format does not. Encoding strips the
// Montgomery factor from every residue and decoding restores it, so the
// bytes always carry true canonical residues — the representation is an
// implementation detail of this process, not of the protocol, and the
// decoder's range validation stays meaningful.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bts/internal/ckks"
	"bts/internal/ring"
	"bts/internal/telemetry"
)

// Version is the wire-format version emitted by this package. Decoders
// reject envelopes with any other version.
const Version = 1

// magic is the 4-byte envelope preamble.
var magic = [4]byte{'B', 'T', 'S', 'W'}

// headerSize is the envelope size preceding every payload.
const headerSize = 10

// Type tags the object carried by an envelope.
type Type uint8

const (
	TypePoly           Type = 1
	TypePlaintext      Type = 2
	TypeCiphertext     Type = 3
	TypePublicKey      Type = 4
	TypeSwitchingKey   Type = 5
	TypeRotationKeySet Type = 6
)

func (t Type) String() string {
	switch t {
	case TypePoly:
		return "Poly"
	case TypePlaintext:
		return "Plaintext"
	case TypeCiphertext:
		return "Ciphertext"
	case TypePublicKey:
		return "PublicKey"
	case TypeSwitchingKey:
		return "SwitchingKey"
	case TypeRotationKeySet:
		return "RotationKeySet"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// MaxRotationKeys bounds the number of entries a RotationKeySet envelope may
// carry; it exists purely to cap decoder allocation on hostile input.
const MaxRotationKeys = 4096

// Codec encodes and decodes wire objects for one ckks.Context. A Codec is
// stateless apart from its context binding (and an optional stats sink) and
// is safe for concurrent use.
type Codec struct {
	ctx    *ckks.Context
	pooled bool

	// stats, when non-nil, counts envelopes and bytes through the codec
	// (headers included); every hook is nil-guarded. See SetStats.
	stats *telemetry.WireStats
}

// SetStats attaches a traffic counter sink to the codec (nil detaches):
// every envelope encoded counts as "out" and every envelope decoded as "in",
// whether it crossed a socket or a byte-slice Marshal round trip. Attach
// before serving traffic; must not race encode/decode calls.
func (c *Codec) SetStats(st *telemetry.WireStats) { c.stats = st }

// NewCodec returns a codec bound to ctx. Decoded ciphertexts are plain
// allocations.
func NewCodec(ctx *ckks.Context) *Codec { return &Codec{ctx: ctx} }

// NewPooledCodec returns a codec whose ReadCiphertext/UnmarshalCiphertext
// draw the result from the context's ciphertext pool, so a serving loop that
// returns results with Context.PutCiphertext decodes without allocating.
func NewPooledCodec(ctx *ckks.Context) *Codec { return &Codec{ctx: ctx, pooled: true} }

// Context returns the context this codec validates against.
func (c *Codec) Context() *ckks.Context { return c.ctx }

// --- Envelope ---------------------------------------------------------------

// PeekType reports the type of the next envelope in br without consuming
// it, validating the magic and version. It lets a stream consumer (the
// serving session endpoint) dispatch on what the peer actually sent.
func PeekType(br *bufio.Reader) (Type, error) {
	hdr, err := br.Peek(6)
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return 0, fmt.Errorf("wire: bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return 0, fmt.Errorf("wire: unsupported version %d (have %d)", hdr[4], Version)
	}
	return Type(hdr[5]), nil
}

// writeEnvelope frames payload and writes it to w.
func (c *Codec) writeEnvelope(w io.Writer, t Type, payload []byte) error {
	if uint64(len(payload)) > math.MaxUint32 {
		return fmt.Errorf("wire: %s payload of %d bytes exceeds the 4 GiB envelope limit", t, len(payload))
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	hdr[4] = Version
	hdr[5] = byte(t)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing %s header: %w", t, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing %s payload: %w", t, err)
	}
	if st := c.stats; st != nil {
		st.EnvelopesOut.Add(1)
		st.BytesOut.Add(int64(headerSize + len(payload)))
	}
	return nil
}

// readEnvelope reads one envelope of the expected type, enforcing the
// per-type payload bound before allocating.
func (c *Codec) readEnvelope(r io.Reader, want Type) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading %s header: %w", want, err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return nil, fmt.Errorf("wire: bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (have %d)", hdr[4], Version)
	}
	if got := Type(hdr[5]); got != want {
		return nil, fmt.Errorf("wire: expected %s envelope, got %s", want, got)
	}
	n := binary.LittleEndian.Uint32(hdr[6:])
	if max := c.maxPayload(want); uint64(n) > max {
		return nil, fmt.Errorf("wire: %s payload of %d bytes exceeds bound %d", want, n, max)
	}
	// Grow the buffer as bytes actually arrive rather than trusting the
	// declared length for the allocation: a hostile header then costs its
	// sender bandwidth, not this process memory.
	var buf bytes.Buffer
	m, err := io.Copy(&buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, fmt.Errorf("wire: reading %s payload: %w", want, err)
	}
	if uint64(m) != uint64(n) {
		return nil, fmt.Errorf("wire: %s payload truncated: got %d of %d bytes", want, m, n)
	}
	if st := c.stats; st != nil {
		st.EnvelopesIn.Add(1)
		st.BytesIn.Add(int64(headerSize) + m)
	}
	return buf.Bytes(), nil
}

// maxPayload returns the largest payload a well-formed envelope of type t can
// carry under this codec's context.
func (c *Codec) maxPayload(t Type) uint64 {
	n := uint64(c.ctx.Params.N())
	qRows := uint64(len(c.ctx.Params.Q))
	pRows := uint64(len(c.ctx.Params.P))
	polyQ := 8 + qRows*n*8 // N + rows header, then residues
	polyP := 8 + pRows*n*8
	swk := 4 + uint64(c.ctx.Params.Dnum)*2*(polyQ+polyP)
	switch t {
	case TypePoly:
		return polyQ
	case TypePlaintext:
		return 12 + polyQ
	case TypeCiphertext:
		return 12 + 2*polyQ
	case TypePublicKey:
		return 2 * polyQ
	case TypeSwitchingKey:
		return swk
	case TypeRotationKeySet:
		return 4 + MaxRotationKeys*(8+swk)
	}
	return 0
}

// --- Payload cursor ---------------------------------------------------------

// cursor walks a payload with explicit bounds checks; every accessor returns
// an error instead of slicing out of range.
type cursor struct {
	b   []byte
	off int
}

func (cu *cursor) remaining() int { return len(cu.b) - cu.off }

func (cu *cursor) u32() (uint32, error) {
	if cu.remaining() < 4 {
		return 0, fmt.Errorf("wire: truncated payload at offset %d", cu.off)
	}
	v := binary.LittleEndian.Uint32(cu.b[cu.off:])
	cu.off += 4
	return v, nil
}

func (cu *cursor) u64() (uint64, error) {
	if cu.remaining() < 8 {
		return 0, fmt.Errorf("wire: truncated payload at offset %d", cu.off)
	}
	v := binary.LittleEndian.Uint64(cu.b[cu.off:])
	cu.off += 8
	return v, nil
}

func (cu *cursor) done() error {
	if cu.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after payload", cu.remaining())
	}
	return nil
}

// --- Polynomial bodies ------------------------------------------------------

// appendPolyBody serializes rows [0..level] of p (which must belong to r).
func appendPolyBody(buf *bytes.Buffer, r *ring.Ring, p *ring.Poly, level int) error {
	if level < 0 || level > r.MaxLevel() {
		return fmt.Errorf("wire: level %d outside [0,%d]", level, r.MaxLevel())
	}
	if p.Levels() < level {
		return fmt.Errorf("wire: polynomial has %d rows, need %d", p.Levels()+1, level+1)
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:4], uint32(r.N))
	binary.LittleEndian.PutUint32(tmp[4:8], uint32(level+1))
	buf.Write(tmp[:])
	for i := 0; i <= level; i++ {
		row := p.Coeffs[i]
		mr := r.Moduli[i].MRed
		for j := 0; j < r.N; j++ {
			binary.LittleEndian.PutUint64(tmp[:], mr.IForm(row[j]))
			buf.Write(tmp[:])
		}
	}
	return nil
}

// readPolyBody decodes one polynomial body from cu, validating the degree,
// the row count against r's chain, and every residue against its prime. If
// into is non-nil it must already hold at least the decoded rows and is
// filled in place; otherwise a fresh polynomial is allocated.
func readPolyBody(cu *cursor, r *ring.Ring, into *ring.Poly) (*ring.Poly, int, error) {
	n, err := cu.u32()
	if err != nil {
		return nil, 0, err
	}
	if int(n) != r.N {
		return nil, 0, fmt.Errorf("wire: polynomial degree %d, context uses N=%d", n, r.N)
	}
	rows, err := cu.u32()
	if err != nil {
		return nil, 0, err
	}
	if rows < 1 || int(rows) > len(r.Moduli) {
		return nil, 0, fmt.Errorf("wire: %d residue rows outside [1,%d]", rows, len(r.Moduli))
	}
	level := int(rows) - 1
	need := int(rows) * r.N * 8
	if cu.remaining() < need {
		return nil, 0, fmt.Errorf("wire: polynomial body truncated: %d bytes, need %d", cu.remaining(), need)
	}
	p := into
	if p == nil {
		p = r.NewPolyLevel(level)
	} else if p.Levels() < level {
		return nil, 0, fmt.Errorf("wire: destination polynomial has %d rows, need %d", p.Levels()+1, rows)
	}
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		mr := r.Moduli[i].MRed
		row := p.Coeffs[i]
		src := cu.b[cu.off:]
		for j := 0; j < r.N; j++ {
			v := binary.LittleEndian.Uint64(src[j*8:])
			if v >= q {
				return nil, 0, fmt.Errorf("wire: residue %d out of range for modulus %d (row %d)", v, q, i)
			}
			row[j] = mr.MForm(v)
		}
		cu.off += r.N * 8
	}
	return p, level, nil
}

// readScale validates an IEEE-754 scale bit pattern.
func readScale(cu *cursor) (float64, error) {
	bits, err := cu.u64()
	if err != nil {
		return 0, err
	}
	s := math.Float64frombits(bits)
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
		return 0, fmt.Errorf("wire: invalid scale %g", s)
	}
	return s, nil
}
