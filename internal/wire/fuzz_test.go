package wire

import (
	"sync"
	"testing"

	"bts/internal/ckks"
)

// fuzzCodec is built once: context construction (prime generation, NTT
// tables) is far too slow per fuzz iteration.
var fuzzCodec = struct {
	once sync.Once
	c    *Codec
	seed [][]byte
}{}

func getFuzzCodec(f *testing.F) *Codec {
	fuzzCodec.once.Do(func() {
		params, err := ckks.NewParameters(ckks.ParametersLiteral{
			LogN:     4,
			LogQ:     []int{30, 25},
			LogP:     31,
			Dnum:     1,
			LogScale: 25,
			H:        4,
		})
		if err != nil {
			f.Fatal(err)
		}
		ctx, err := ckks.NewContext(params)
		if err != nil {
			f.Fatal(err)
		}
		fuzzCodec.c = NewCodec(ctx)

		// Seed corpus: one valid ciphertext plus systematic corruptions.
		kg := ckks.NewKeyGenerator(ctx, 1)
		sk := kg.GenSecretKey()
		enc := ckks.NewEncoder(ctx)
		encryptor := ckks.NewEncryptorSK(ctx, sk, 2)
		pt, _ := enc.Encode([]complex128{0.5}, params.MaxLevel(), params.Scale)
		ct, _ := encryptor.EncryptNew(pt)
		good, err := fuzzCodec.c.MarshalCiphertext(ct)
		if err != nil {
			f.Fatal(err)
		}
		fuzzCodec.seed = append(fuzzCodec.seed, good)
		for _, cut := range []int{0, 4, headerSize, headerSize + 4, len(good) / 2, len(good) - 1} {
			fuzzCodec.seed = append(fuzzCodec.seed, good[:cut])
		}
		for _, off := range []int{0, 4, 5, 6, 10, 14, 22, len(good) - 1} {
			mut := append([]byte(nil), good...)
			mut[off] ^= 0xff
			fuzzCodec.seed = append(fuzzCodec.seed, mut)
		}
	})
	return fuzzCodec.c
}

// FuzzUnmarshalCiphertext proves the decoder's contract: arbitrary input
// either yields a valid ciphertext or an error — never a panic, never an
// out-of-range write.
func FuzzUnmarshalCiphertext(f *testing.F) {
	c := getFuzzCodec(f)
	for _, s := range fuzzCodec.seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := c.UnmarshalCiphertext(data)
		if err != nil {
			if ct != nil {
				t.Fatal("non-nil ciphertext alongside error")
			}
			return
		}
		// Whatever decoded must satisfy the context's invariants.
		if ct.Level < 0 || ct.Level > c.Context().RingQ.MaxLevel() {
			t.Fatalf("decoded level %d out of range", ct.Level)
		}
		if ct.C0.Levels() < ct.Level || ct.C1.Levels() < ct.Level {
			t.Fatal("decoded ciphertext missing residue rows")
		}
		for i := 0; i <= ct.Level; i++ {
			q := c.Context().RingQ.Moduli[i].Q
			for j := 0; j < c.Context().RingQ.N; j++ {
				if ct.C0.Coeffs[i][j] >= q || ct.C1.Coeffs[i][j] >= q {
					t.Fatal("decoded residue out of range")
				}
			}
		}
	})
}
