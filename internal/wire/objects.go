package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"bts/internal/ckks"
	"bts/internal/ring"
)

// --- Poly -------------------------------------------------------------------

// WritePoly frames rows [0..level] of a q-ring polynomial.
func (c *Codec) WritePoly(w io.Writer, p *ring.Poly, level int) error {
	var buf bytes.Buffer
	if err := appendPolyBody(&buf, c.ctx.RingQ, p, level); err != nil {
		return err
	}
	return c.writeEnvelope(w, TypePoly, buf.Bytes())
}

// ReadPoly decodes one q-ring polynomial envelope, returning the polynomial
// and its level.
func (c *Codec) ReadPoly(r io.Reader) (*ring.Poly, int, error) {
	payload, err := c.readEnvelope(r, TypePoly)
	if err != nil {
		return nil, 0, err
	}
	cu := &cursor{b: payload}
	p, level, err := readPolyBody(cu, c.ctx.RingQ, nil)
	if err != nil {
		return nil, 0, err
	}
	if err := cu.done(); err != nil {
		return nil, 0, err
	}
	return p, level, nil
}

// MarshalPoly returns the wire encoding of rows [0..level] of p.
func (c *Codec) MarshalPoly(p *ring.Poly, level int) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WritePoly(&buf, p, level); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalPoly decodes a polynomial envelope from b.
func (c *Codec) UnmarshalPoly(b []byte) (*ring.Poly, int, error) {
	return c.ReadPoly(bytes.NewReader(b))
}

// --- Plaintext --------------------------------------------------------------

// WritePlaintext frames pt.
func (c *Codec) WritePlaintext(w io.Writer, pt *ckks.Plaintext) error {
	var buf bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(pt.Level))
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(pt.Scale))
	buf.Write(tmp[:])
	if err := appendPolyBody(&buf, c.ctx.RingQ, pt.Value, pt.Level); err != nil {
		return err
	}
	return c.writeEnvelope(w, TypePlaintext, buf.Bytes())
}

// ReadPlaintext decodes one plaintext envelope.
func (c *Codec) ReadPlaintext(r io.Reader) (*ckks.Plaintext, error) {
	payload, err := c.readEnvelope(r, TypePlaintext)
	if err != nil {
		return nil, err
	}
	cu := &cursor{b: payload}
	level, scale, err := c.readLevelScale(cu)
	if err != nil {
		return nil, err
	}
	p, gotLevel, err := readPolyBody(cu, c.ctx.RingQ, nil)
	if err != nil {
		return nil, err
	}
	if gotLevel != level {
		return nil, fmt.Errorf("wire: plaintext header level %d but %d residue rows", level, gotLevel+1)
	}
	if err := cu.done(); err != nil {
		return nil, err
	}
	return &ckks.Plaintext{Value: p, Level: level, Scale: scale}, nil
}

// MarshalPlaintext returns the wire encoding of pt.
func (c *Codec) MarshalPlaintext(pt *ckks.Plaintext) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WritePlaintext(&buf, pt); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalPlaintext decodes a plaintext envelope from b.
func (c *Codec) UnmarshalPlaintext(b []byte) (*ckks.Plaintext, error) {
	return c.ReadPlaintext(bytes.NewReader(b))
}

// --- Ciphertext -------------------------------------------------------------

// WriteCiphertext frames ct.
func (c *Codec) WriteCiphertext(w io.Writer, ct *ckks.Ciphertext) error {
	var buf bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(ct.Level))
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(ct.Scale))
	buf.Write(tmp[:])
	if err := appendPolyBody(&buf, c.ctx.RingQ, ct.C0, ct.Level); err != nil {
		return err
	}
	if err := appendPolyBody(&buf, c.ctx.RingQ, ct.C1, ct.Level); err != nil {
		return err
	}
	return c.writeEnvelope(w, TypeCiphertext, buf.Bytes())
}

// ReadCiphertext decodes one ciphertext envelope. A pooled codec draws the
// result from the context's ciphertext pool; return it with
// Context.PutCiphertext to serve without allocating.
func (c *Codec) ReadCiphertext(r io.Reader) (*ckks.Ciphertext, error) {
	payload, err := c.readEnvelope(r, TypeCiphertext)
	if err != nil {
		return nil, err
	}
	cu := &cursor{b: payload}
	level, scale, err := c.readLevelScale(cu)
	if err != nil {
		return nil, err
	}
	var ct *ckks.Ciphertext
	if c.pooled {
		// No zeroing pass: readPolyBody overwrites every active row, and on
		// error the partially-filled ciphertext goes straight back to the
		// pool (pool contents are scratch).
		ct = c.ctx.GetCiphertextNoZero(level, scale)
	} else {
		ct = c.ctx.NewCiphertext(level, scale)
	}
	fail := func(err error) (*ckks.Ciphertext, error) {
		c.ctx.PutCiphertext(ct) // no-op for plain ciphertexts
		return nil, err
	}
	if _, got, err := readPolyBody(cu, c.ctx.RingQ, ct.C0); err != nil {
		return fail(err)
	} else if got != level {
		return fail(fmt.Errorf("wire: ciphertext header level %d but c0 has %d rows", level, got+1))
	}
	if _, got, err := readPolyBody(cu, c.ctx.RingQ, ct.C1); err != nil {
		return fail(err)
	} else if got != level {
		return fail(fmt.Errorf("wire: ciphertext header level %d but c1 has %d rows", level, got+1))
	}
	if err := cu.done(); err != nil {
		return fail(err)
	}
	return ct, nil
}

// MarshalCiphertext returns the wire encoding of ct.
func (c *Codec) MarshalCiphertext(ct *ckks.Ciphertext) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WriteCiphertext(&buf, ct); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalCiphertext decodes a ciphertext envelope from b.
func (c *Codec) UnmarshalCiphertext(b []byte) (*ckks.Ciphertext, error) {
	return c.ReadCiphertext(bytes.NewReader(b))
}

// readLevelScale reads and validates the (level, scale) prefix shared by
// plaintext and ciphertext payloads.
func (c *Codec) readLevelScale(cu *cursor) (int, float64, error) {
	lvl, err := cu.u32()
	if err != nil {
		return 0, 0, err
	}
	if int(lvl) > c.ctx.RingQ.MaxLevel() {
		return 0, 0, fmt.Errorf("wire: level %d above context maximum %d", lvl, c.ctx.RingQ.MaxLevel())
	}
	scale, err := readScale(cu)
	if err != nil {
		return 0, 0, err
	}
	return int(lvl), scale, nil
}

// --- PublicKey --------------------------------------------------------------

// WritePublicKey frames pk (both polynomials over the full q-chain).
func (c *Codec) WritePublicKey(w io.Writer, pk *ckks.PublicKey) error {
	rq := c.ctx.RingQ
	var buf bytes.Buffer
	if err := appendPolyBody(&buf, rq, pk.Value[0], rq.MaxLevel()); err != nil {
		return err
	}
	if err := appendPolyBody(&buf, rq, pk.Value[1], rq.MaxLevel()); err != nil {
		return err
	}
	return c.writeEnvelope(w, TypePublicKey, buf.Bytes())
}

// ReadPublicKey decodes one public-key envelope.
func (c *Codec) ReadPublicKey(r io.Reader) (*ckks.PublicKey, error) {
	payload, err := c.readEnvelope(r, TypePublicKey)
	if err != nil {
		return nil, err
	}
	cu := &cursor{b: payload}
	rq := c.ctx.RingQ
	pk := &ckks.PublicKey{}
	for i := range pk.Value {
		p, level, err := readPolyBody(cu, rq, nil)
		if err != nil {
			return nil, err
		}
		if level != rq.MaxLevel() {
			return nil, fmt.Errorf("wire: public key polynomial has %d rows, need full chain %d", level+1, rq.MaxLevel()+1)
		}
		pk.Value[i] = p
	}
	if err := cu.done(); err != nil {
		return nil, err
	}
	return pk, nil
}

// MarshalPublicKey returns the wire encoding of pk.
func (c *Codec) MarshalPublicKey(pk *ckks.PublicKey) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WritePublicKey(&buf, pk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalPublicKey decodes a public-key envelope from b.
func (c *Codec) UnmarshalPublicKey(b []byte) (*ckks.PublicKey, error) {
	return c.ReadPublicKey(bytes.NewReader(b))
}

// --- SwitchingKey -----------------------------------------------------------

// appendSwitchingKeyBody serializes swk: uint32 dnum, then per decomposition
// group the four polynomials bQ, bP, aQ, aP over their full chains.
func (c *Codec) appendSwitchingKeyBody(buf *bytes.Buffer, swk *ckks.SwitchingKey) error {
	rq, rp := c.ctx.RingQ, c.ctx.RingP
	if len(swk.Value) != c.ctx.Params.Dnum {
		return fmt.Errorf("wire: switching key has %d groups, context dnum is %d", len(swk.Value), c.ctx.Params.Dnum)
	}
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(swk.Value)))
	buf.Write(tmp[:])
	for _, pair := range swk.Value {
		for _, qp := range pair {
			if err := appendPolyBody(buf, rq, qp.Q, rq.MaxLevel()); err != nil {
				return err
			}
			if err := appendPolyBody(buf, rp, qp.P, rp.MaxLevel()); err != nil {
				return err
			}
		}
	}
	return nil
}

// readSwitchingKeyBody decodes one switching-key body from cu.
func (c *Codec) readSwitchingKeyBody(cu *cursor) (*ckks.SwitchingKey, error) {
	rq, rp := c.ctx.RingQ, c.ctx.RingP
	groups, err := cu.u32()
	if err != nil {
		return nil, err
	}
	if int(groups) != c.ctx.Params.Dnum {
		return nil, fmt.Errorf("wire: switching key with %d groups, context dnum is %d", groups, c.ctx.Params.Dnum)
	}
	swk := &ckks.SwitchingKey{Value: make([][2]ckks.PolyQP, groups)}
	for j := range swk.Value {
		for k := 0; k < 2; k++ {
			pq, lvlQ, err := readPolyBody(cu, rq, nil)
			if err != nil {
				return nil, err
			}
			if lvlQ != rq.MaxLevel() {
				return nil, fmt.Errorf("wire: switching key Q part has %d rows, need %d", lvlQ+1, rq.MaxLevel()+1)
			}
			pp, lvlP, err := readPolyBody(cu, rp, nil)
			if err != nil {
				return nil, err
			}
			if lvlP != rp.MaxLevel() {
				return nil, fmt.Errorf("wire: switching key P part has %d rows, need %d", lvlP+1, rp.MaxLevel()+1)
			}
			swk.Value[j][k] = ckks.PolyQP{Q: pq, P: pp}
		}
	}
	return swk, nil
}

// WriteSwitchingKey frames swk.
func (c *Codec) WriteSwitchingKey(w io.Writer, swk *ckks.SwitchingKey) error {
	var buf bytes.Buffer
	if err := c.appendSwitchingKeyBody(&buf, swk); err != nil {
		return err
	}
	return c.writeEnvelope(w, TypeSwitchingKey, buf.Bytes())
}

// ReadSwitchingKey decodes one switching-key envelope.
func (c *Codec) ReadSwitchingKey(r io.Reader) (*ckks.SwitchingKey, error) {
	payload, err := c.readEnvelope(r, TypeSwitchingKey)
	if err != nil {
		return nil, err
	}
	cu := &cursor{b: payload}
	swk, err := c.readSwitchingKeyBody(cu)
	if err != nil {
		return nil, err
	}
	if err := cu.done(); err != nil {
		return nil, err
	}
	return swk, nil
}

// MarshalSwitchingKey returns the wire encoding of swk.
func (c *Codec) MarshalSwitchingKey(swk *ckks.SwitchingKey) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WriteSwitchingKey(&buf, swk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalSwitchingKey decodes a switching-key envelope from b.
func (c *Codec) UnmarshalSwitchingKey(b []byte) (*ckks.SwitchingKey, error) {
	return c.ReadSwitchingKey(bytes.NewReader(b))
}

// --- RotationKeySet ---------------------------------------------------------

// WriteRotationKeySet frames rtks with entries sorted by Galois element, so
// equal key sets marshal to identical bytes.
func (c *Codec) WriteRotationKeySet(w io.Writer, rtks *ckks.RotationKeySet) error {
	if len(rtks.Keys) > MaxRotationKeys {
		return fmt.Errorf("wire: rotation key set with %d entries exceeds limit %d", len(rtks.Keys), MaxRotationKeys)
	}
	galois := make([]uint64, 0, len(rtks.Keys))
	for g := range rtks.Keys {
		galois = append(galois, g)
	}
	sort.Slice(galois, func(i, j int) bool { return galois[i] < galois[j] })
	var buf bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(galois)))
	buf.Write(tmp[:4])
	for _, g := range galois {
		binary.LittleEndian.PutUint64(tmp[:], g)
		buf.Write(tmp[:])
		if err := c.appendSwitchingKeyBody(&buf, rtks.Keys[g]); err != nil {
			return err
		}
	}
	return c.writeEnvelope(w, TypeRotationKeySet, buf.Bytes())
}

// ReadRotationKeySet decodes one rotation-key-set envelope. Galois elements
// must be odd, in range (0, 2N), and unique.
func (c *Codec) ReadRotationKeySet(r io.Reader) (*ckks.RotationKeySet, error) {
	payload, err := c.readEnvelope(r, TypeRotationKeySet)
	if err != nil {
		return nil, err
	}
	cu := &cursor{b: payload}
	count, err := cu.u32()
	if err != nil {
		return nil, err
	}
	if count > MaxRotationKeys {
		return nil, fmt.Errorf("wire: rotation key set with %d entries exceeds limit %d", count, MaxRotationKeys)
	}
	twoN := uint64(2 * c.ctx.RingQ.N)
	rtks := &ckks.RotationKeySet{Keys: make(map[uint64]*ckks.SwitchingKey, count)}
	for i := uint32(0); i < count; i++ {
		g, err := cu.u64()
		if err != nil {
			return nil, err
		}
		if g%2 == 0 || g >= twoN {
			return nil, fmt.Errorf("wire: invalid Galois element %d (need odd, < %d)", g, twoN)
		}
		if _, dup := rtks.Keys[g]; dup {
			return nil, fmt.Errorf("wire: duplicate Galois element %d", g)
		}
		swk, err := c.readSwitchingKeyBody(cu)
		if err != nil {
			return nil, err
		}
		rtks.Keys[g] = swk
	}
	if err := cu.done(); err != nil {
		return nil, err
	}
	return rtks, nil
}

// MarshalRotationKeySet returns the wire encoding of rtks.
func (c *Codec) MarshalRotationKeySet(rtks *ckks.RotationKeySet) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WriteRotationKeySet(&buf, rtks); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalRotationKeySet decodes a rotation-key-set envelope from b.
func (c *Codec) UnmarshalRotationKeySet(b []byte) (*ckks.RotationKeySet, error) {
	return c.ReadRotationKeySet(bytes.NewReader(b))
}
