package wire

import (
	"math/rand"
	"testing"

	"bts/internal/telemetry"
)

func TestCodecStatsCountTraffic(t *testing.T) {
	ctx, _, _ := testContext(t)
	c := NewCodec(ctx)
	var st telemetry.WireStats
	c.SetStats(&st)

	rng := rand.New(rand.NewSource(9))
	p := ctx.RingQ.NewPolyLevel(1)
	ctx.RingQ.SampleUniform(rng, p, 1)

	b, err := c.MarshalPoly(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.UnmarshalPoly(b); err != nil {
		t.Fatal(err)
	}

	if got := st.EnvelopesOut.Load(); got != 1 {
		t.Fatalf("EnvelopesOut = %d, want 1", got)
	}
	if got := st.EnvelopesIn.Load(); got != 1 {
		t.Fatalf("EnvelopesIn = %d, want 1", got)
	}
	if got := st.BytesOut.Load(); got != int64(len(b)) {
		t.Fatalf("BytesOut = %d, want the full envelope %d", got, len(b))
	}
	if got := st.BytesIn.Load(); got != int64(len(b)) {
		t.Fatalf("BytesIn = %d, want the full envelope %d", got, len(b))
	}
}
