// Package ckks implements the Full-RNS CKKS homomorphic encryption scheme
// (Cheon-Kim-Kim-Song with the RNS optimizations of Section 2 of the BTS
// paper), including the generalized dnum key-switching of Han-Ki (Eq. 7) and
// full bootstrapping (ModRaise → CoeffToSlot → EvalMod → SlotToCoeff).
//
// This is the workload library that the BTS accelerator executes; the
// internal/sim package models how its primitive functions (NTT, iNTT, BConv,
// element-wise ops, automorphism) map onto the accelerator's hardware.
//
// # Hoisted key-switching
//
// Rotation-heavy paths — BSGS linear transforms, and therefore the
// CoeffToSlot/SlotToCoeff phases that dominate bootstrapping — do not pay
// the full key-switch pipeline per rotation. DecomposeNTT runs the
// decomposition half (iNTT → ModUp/BConv → NTT per slice, Fig. 3a) once per
// ciphertext; each rotation of that ciphertext then costs an NTT-domain
// slice permutation plus the multiply-accumulate against its rotation key
// (hoisting, exposed as RotateHoisted — bit-identical to Rotate because the
// centered BConv commutes exactly with the Galois permutation). On top,
// LinearTransform evaluates double-hoisted: baby-step products stay in the
// extended QP basis, every diagonal is folded in with unreduced 128-bit
// lazy MACs (ring.Acc128), and each giant step pays a single deferred
// ModDown per ciphertext component. The cost model per transform is
//
//	1 decomposition + (per baby rotation: permutation + MAC)
//	+ (per giant step: 1 ModDown per component + 1 full rotation)
//
// instead of one full key-switch per baby step and one ModDown per diagonal
// group; bsgsSplit weights the BSGS split accordingly (over the transform's
// actual diagonal indices, which is what makes sparse stages cheap). The
// deferred ModDown also *reduces* noise: its rounding enters once per giant
// step, unscaled by the plaintext, instead of once per rotation. `btsbench
// -experiment hoisting` measures both paths and CI archives the report.
//
// # Factored bootstrap transforms
//
// CoeffToSlot and SlotToCoeff are evaluated *factored* (the Table 2 form):
// the encoder's special FFT is split into radix stages (dft.go), each a
// sparse few-diagonal LinearTransform, chained by a TransformChain with one
// rescale between stages. Two stages at 2^9 slots turn a 512-diagonal dense
// matrix into 32+31-diagonal stages — ~1.8× fewer key-switch ops and a
// ~2.2× smaller rotation-key set for one extra level per transform — with
// the dense matrices kept as the equivalence oracle
// (Bootstrapper.SetDenseTransforms). `btsbench -experiment bootstrap`
// measures both pipelines and CI archives the report.
//
// # Montgomery ring core
//
// Every polynomial this package holds in RNS residues — ciphertext
// components, plaintexts, switching keys, decomposition slices, Acc128
// inputs — is stored in Montgomery form (x·R mod q, R = 2^64; see
// internal/ring's package doc). The invariant is maintained entirely by the
// ring layer: residues enter M-form where they are born (encoding's
// SetBigCoeffs/SetInt64Coeffs, uniform/ternary/Gaussian sampling) and leave
// it only at decode time and on the wire (internal/wire transports true
// canonical residues). This package never converts forms itself — the
// algebra keeps every evaluator path consistent, because multiplying two
// M-form operands with a fused REDC yields an M-form product, while
// multiplying by a *plain* precomputed constant (pModQ, P^-1 via its Shoup
// companions, rescale q_ℓ^-1) is form-preserving: (x·R)·c mod q is (x·c)·R
// mod q. The payoff is one 3-multiply reduction per butterfly, MAC and
// element-wise product where the Barrett path paid roughly twice that;
// `btsbench -experiment table2` measures the per-kernel speedups against
// the retained Barrett reference loops and CI archives the report.
package ckks

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"bts/internal/mod"
	"bts/internal/ring"
	"bts/internal/telemetry"
)

// Parameters fully determines a CKKS instance (the paper's Table 2 symbols).
type Parameters struct {
	// LogN is log2 of the polynomial degree N.
	LogN int
	// Q is the prime modulus chain q_0..q_L (L+1 primes).
	Q []uint64
	// P is the special prime chain p_0..p_{k-1} used by key-switching.
	P []uint64
	// Dnum is the key-switching decomposition number (Eq. 7). The number of
	// special primes k must equal ceil((L+1)/Dnum).
	Dnum int
	// Scale is the default encoding scale Δ.
	Scale float64
	// H is the Hamming weight of the sparse ternary secret.
	H int
	// Sigma is the standard deviation of the LWE error distribution.
	Sigma float64
}

// N returns the polynomial degree.
func (p Parameters) N() int { return 1 << p.LogN }

// Slots returns the number of message slots N/2.
func (p Parameters) Slots() int { return 1 << (p.LogN - 1) }

// MaxLevel returns L, the maximum multiplicative level.
func (p Parameters) MaxLevel() int { return len(p.Q) - 1 }

// Alpha returns the number of primes per decomposition group, equal to the
// number of special primes k = (L+1)/dnum (Section 2.5).
func (p Parameters) Alpha() int { return (p.MaxLevel() + p.Dnum) / p.Dnum }

// Beta returns the number of decomposition groups spanned by a ciphertext at
// the given level: ceil((level+1)/alpha). At the maximum level this is Dnum.
func (p Parameters) Beta(level int) int {
	a := p.Alpha()
	return (level + 1 + a - 1) / a
}

// LogQP returns log2 of the full modulus product P·Q, the quantity that
// (together with N) determines the security level λ (Section 2.5).
func (p Parameters) LogQP() float64 {
	s := 0.0
	for _, q := range p.Q {
		s += math.Log2(float64(q))
	}
	for _, q := range p.P {
		s += math.Log2(float64(q))
	}
	return s
}

// Validate checks internal consistency of the parameter set.
func (p Parameters) Validate() error {
	if p.LogN < 4 || p.LogN > 17 {
		return fmt.Errorf("ckks: LogN=%d outside [4,17]", p.LogN)
	}
	if len(p.Q) == 0 {
		return fmt.Errorf("ckks: empty modulus chain")
	}
	if p.Dnum < 1 || p.Dnum > len(p.Q) {
		return fmt.Errorf("ckks: Dnum=%d outside [1,L+1=%d]", p.Dnum, len(p.Q))
	}
	if len(p.P) != p.Alpha() {
		return fmt.Errorf("ckks: got %d special primes, need alpha=%d", len(p.P), p.Alpha())
	}
	if p.Scale < 2 {
		return fmt.Errorf("ckks: scale %f too small", p.Scale)
	}
	if p.H < 1 || p.H >= p.N() {
		return fmt.Errorf("ckks: secret Hamming weight %d outside (0,N)", p.H)
	}
	seen := map[uint64]bool{}
	for _, q := range append(append([]uint64{}, p.Q...), p.P...) {
		if seen[q] {
			return fmt.Errorf("ckks: duplicate modulus %d", q)
		}
		seen[q] = true
	}
	return nil
}

// ParametersLiteral describes a parameter set by prime bit-sizes; the actual
// NTT-friendly primes are generated on construction.
type ParametersLiteral struct {
	LogN     int
	LogQ     []int // bit sizes of q_0..q_L
	LogP     int   // bit size of every special prime
	Dnum     int
	LogScale int
	H        int
	Sigma    float64
}

// NewParameters generates the prime chains described by the literal and
// returns the resulting Parameters.
func NewParameters(lit ParametersLiteral) (Parameters, error) {
	if lit.Sigma == 0 {
		lit.Sigma = 3.2
	}
	// Group requested q-sizes so equal sizes share one generation sweep and
	// all primes stay distinct.
	bySize := map[int]int{}
	for _, lq := range lit.LogQ {
		bySize[lq]++
	}
	alpha := (len(lit.LogQ) + lit.Dnum - 1) / lit.Dnum
	bySize[lit.LogP] += alpha // specials share the sweep with same-sized q primes
	generated := map[int][]uint64{}
	for size, count := range bySize {
		ps, err := mod.GenerateNTTPrimes(size, lit.LogN, count)
		if err != nil {
			return Parameters{}, err
		}
		generated[size] = ps
	}
	next := func(size int) uint64 {
		ps := generated[size]
		q := ps[0]
		generated[size] = ps[1:]
		return q
	}
	p := Parameters{
		LogN:  lit.LogN,
		Dnum:  lit.Dnum,
		Scale: math.Exp2(float64(lit.LogScale)),
		H:     lit.H,
		Sigma: lit.Sigma,
	}
	for _, lq := range lit.LogQ {
		p.Q = append(p.Q, next(lq))
	}
	for i := 0; i < alpha; i++ {
		p.P = append(p.P, next(lit.LogP))
	}
	if err := p.Validate(); err != nil {
		return Parameters{}, err
	}
	return p, nil
}

// Context carries the rings and cached conversion tables for a parameter set.
// It is the entry point for building encoders, key generators, encryptors and
// evaluators. One execution engine (a limb-parallel worker pool, see
// ring.Engine) is shared by the q-ring, the p-ring, and every cached
// BasisExtender; SetWorkers swaps it for the whole context at once.
type Context struct {
	Params Parameters
	RingQ  *ring.Ring // R over the q-chain
	RingP  *ring.Ring // R over the special p-chain

	pModQ         []uint64 // [P]_{q_i}, used when generating switching keys
	pInvModQ      []uint64 // [P^-1]_{q_i}, used by ModDown
	pInvModQShoup []uint64 // Shoup companions of pInvModQ

	// cacheMu guards the lazily-populated extender caches below so several
	// ciphertexts can be evaluated concurrently on one context (the serving
	// runtime's batch scheduler keeps many jobs in flight per context).
	cacheMu      sync.RWMutex
	modUpCache   map[[2]int]*ring.BasisExtender // (group j, level) → extender
	modDownCache map[int]*ring.BasisExtender    // level → extender P→C_level

	engine *ring.Engine

	// stats, when non-nil, is the telemetry bundle the engine and both rings
	// count into (see SetStats); kept so engine swaps reattach it.
	stats *telemetry.ContextStats

	// cumLogQ[l] = log2(q_0···q_l), precomputed for NoiseMargin (noise.go).
	cumLogQ []float64

	// ctPool recycles pooled ciphertexts (see GetCiphertext/PutCiphertext);
	// their residue rows come from the q-ring's row pool, so DropLevel can
	// hand now-unused rows straight back to the scratch allocator.
	ctPool sync.Pool
}

// NewContext builds the rings and precomputed tables for params. The context
// starts on the process-wide shared engine (GOMAXPROCS workers); call
// SetWorkers to pick a specific worker count or to force serial execution.
func NewContext(params Parameters) (*Context, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rq, err := ring.NewRing(params.LogN, params.Q)
	if err != nil {
		return nil, err
	}
	rp, err := ring.NewRing(params.LogN, params.P)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		Params:       params,
		RingQ:        rq,
		RingP:        rp,
		modUpCache:   make(map[[2]int]*ring.BasisExtender),
		modDownCache: make(map[int]*ring.BasisExtender),
		engine:       ring.DefaultEngine(),
	}
	ctx.cumLogQ = make([]float64, len(params.Q))
	logQ := 0.0
	for i, q := range params.Q {
		logQ += math.Log2(float64(q))
		ctx.cumLogQ[i] = logQ
	}
	ctx.pModQ = make([]uint64, len(params.Q))
	ctx.pInvModQ = make([]uint64, len(params.Q))
	ctx.pInvModQShoup = make([]uint64, len(params.Q))
	for i, q := range params.Q {
		pm := uint64(1)
		for _, pj := range params.P {
			pm = mod.Mul(pm, pj%q, q)
		}
		ctx.pModQ[i] = pm
		ctx.pInvModQ[i] = mod.Inv(pm, q)
		ctx.pInvModQShoup[i] = mod.ShoupPrecomp(ctx.pInvModQ[i], q)
	}
	return ctx, nil
}

// SetWorkers rebuilds the context's execution engine with the given worker
// count and attaches it to both rings and every cached basis extender.
// n <= 1 (and in particular 0) selects the serial fallback; by default a
// fresh context runs on GOMAXPROCS workers. The new engine starts at the
// default coefficient-block size (call SetBlockSize afterwards to change
// it). Must not be called concurrently with homomorphic operations on this
// context.
func (ctx *Context) SetWorkers(n int) {
	old := ctx.engine
	ctx.engine = ring.NewEngine(n)
	ctx.RingQ.SetEngine(ctx.engine)
	ctx.RingP.SetEngine(ctx.engine)
	ctx.cacheMu.Lock()
	for _, be := range ctx.modUpCache {
		be.SetEngine(ctx.engine)
	}
	for _, be := range ctx.modDownCache {
		be.SetEngine(ctx.engine)
	}
	ctx.cacheMu.Unlock()
	ctx.attachStats()
	if old != nil && old != ring.DefaultEngine() {
		old.Close()
	}
}

// SetStats attaches a telemetry bundle to the context: the execution engine
// counts dispatch/steal activity into st.Engine and the two rings count
// scratch-pool traffic into st.PoolQ/st.PoolP. nil detaches. If the context
// is still on the process-wide shared engine, a private engine is installed
// first (exactly as SetBlockSize does) so one server's counters never mix
// with another context's work on the shared pool. Attachment survives later
// SetWorkers/SetBlockSize calls; Close detaches the engine half (the shared
// default engine is never instrumented) but keeps counting pool traffic.
// Must not be called concurrently with homomorphic operations.
func (ctx *Context) SetStats(st *telemetry.ContextStats) {
	if st != nil && ctx.engine == ring.DefaultEngine() {
		ctx.SetWorkers(runtime.GOMAXPROCS(0))
	}
	ctx.stats = st
	ctx.attachStats()
}

// attachStats points the current engine and both rings at the context's stats
// bundle (or detaches them when it is nil). The shared default engine is
// never touched.
func (ctx *Context) attachStats() {
	var es *telemetry.EngineStats
	var pq, pp *telemetry.PoolStats
	if ctx.stats != nil {
		es, pq, pp = &ctx.stats.Engine, &ctx.stats.PoolQ, &ctx.stats.PoolP
	}
	if ctx.engine != ring.DefaultEngine() {
		ctx.engine.SetStats(es)
	}
	ctx.RingQ.SetPoolStats(pq)
	ctx.RingP.SetPoolStats(pp)
}

// Workers reports the context's effective worker count (0 = serial).
func (ctx *Context) Workers() int { return ctx.engine.Workers() }

// SetBlockSize overrides the engine's minimum coefficient-block width for
// the 2-D (limb × coefficient-block) sharded dispatch; 0 restores
// ring.DefaultBlockSize, and any value ≥ N disables coefficient sharding
// (pure limb-parallel dispatch — the benchmark baseline). If the context is
// still on the process-wide shared engine, a private engine with GOMAXPROCS
// workers is installed first (exactly as if SetWorkers had been called) so
// the shared engine's configuration is never mutated — a long-lived process
// discarding such a context should Close it to release the private pool.
// Must not be called concurrently with homomorphic operations.
func (ctx *Context) SetBlockSize(n int) {
	if ctx.engine == ring.DefaultEngine() {
		ctx.SetWorkers(runtime.GOMAXPROCS(0))
	}
	ctx.engine.SetBlockSize(n)
}

// Close releases the worker goroutines of a private engine installed by
// SetWorkers (or by SetBlockSize, which installs one implicitly), reverting
// the context to the shared default engine. Call it when discarding a
// context that used either knob in a long-lived process; the context
// remains usable (shared-pool) afterwards. Closing a context that never
// installed a private engine is a no-op.
func (ctx *Context) Close() {
	old := ctx.engine
	if old == ring.DefaultEngine() {
		return
	}
	ctx.engine = ring.DefaultEngine()
	ctx.RingQ.SetEngine(ctx.engine)
	ctx.RingP.SetEngine(ctx.engine)
	ctx.cacheMu.Lock()
	for _, be := range ctx.modUpCache {
		be.SetEngine(ctx.engine)
	}
	for _, be := range ctx.modDownCache {
		be.SetEngine(ctx.engine)
	}
	ctx.cacheMu.Unlock()
	ctx.attachStats()
	old.Close()
}

// groupRange returns the q-prime index range [lo,hi] of decomposition group j
// at the given level.
func (ctx *Context) groupRange(j, level int) (lo, hi int) {
	a := ctx.Params.Alpha()
	lo = j * a
	hi = (j+1)*a - 1
	if hi > level {
		hi = level
	}
	return lo, hi
}

// modUpExtender returns the BasisExtender converting group j's primes to the
// rest of the active basis (other q primes + all special primes), caching by
// (group, level). Safe for concurrent use.
func (ctx *Context) modUpExtender(j, level int) *ring.BasisExtender {
	key := [2]int{j, level}
	ctx.cacheMu.RLock()
	be, ok := ctx.modUpCache[key]
	ctx.cacheMu.RUnlock()
	if ok {
		return be
	}
	lo, hi := ctx.groupRange(j, level)
	var from, to []*ring.Modulus
	from = append(from, ctx.RingQ.Moduli[lo:hi+1]...)
	for i := 0; i <= level; i++ {
		if i < lo || i > hi {
			to = append(to, ctx.RingQ.Moduli[i])
		}
	}
	to = append(to, ctx.RingP.Moduli...)
	be, err := ring.NewBasisExtender(from, to)
	if err != nil {
		panic(fmt.Sprintf("ckks: modUpExtender(%d,%d): %v", j, level, err))
	}
	ctx.cacheMu.Lock()
	if prior, ok := ctx.modUpCache[key]; ok {
		be = prior // another goroutine won the build race
	} else {
		be.SetEngine(ctx.engine)
		ctx.modUpCache[key] = be
	}
	ctx.cacheMu.Unlock()
	return be
}

// modDownExtender returns the BasisExtender converting the special basis P to
// the active q-basis at the given level, cached per level. Safe for
// concurrent use.
func (ctx *Context) modDownExtender(level int) *ring.BasisExtender {
	ctx.cacheMu.RLock()
	be, ok := ctx.modDownCache[level]
	ctx.cacheMu.RUnlock()
	if ok {
		return be
	}
	be, err := ring.NewBasisExtender(ctx.RingP.Moduli, ctx.RingQ.Moduli[:level+1])
	if err != nil {
		panic(fmt.Sprintf("ckks: modDownExtender(%d): %v", level, err))
	}
	ctx.cacheMu.Lock()
	if prior, ok := ctx.modDownCache[level]; ok {
		be = prior
	} else {
		be.SetEngine(ctx.engine)
		ctx.modDownCache[level] = be
	}
	ctx.cacheMu.Unlock()
	return be
}
