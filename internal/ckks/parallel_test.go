package ckks

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"
)

// equalCT reports whether two ciphertexts (possibly from different contexts
// over identical prime chains) are bit-identical.
func equalCT(t *testing.T, ctx *Context, a, b *Ciphertext) {
	t.Helper()
	if a.Level != b.Level {
		t.Fatalf("levels differ: %d vs %d", a.Level, b.Level)
	}
	if a.Scale != b.Scale {
		t.Fatalf("scales differ: %g vs %g", a.Scale, b.Scale)
	}
	if !ctx.RingQ.Equal(a.C0, b.C0, a.Level) || !ctx.RingQ.Equal(a.C1, b.C1, a.Level) {
		t.Fatal("ciphertext residues differ between serial and parallel execution")
	}
}

// parallelPair builds two identical setups over the same (deterministically
// generated) prime chain: one serial, one with workers > 1.
func parallelPair(t *testing.T, workers int) (serial, parallel *testSetup) {
	t.Helper()
	serial = newTestSetup(t, 2, []int{1, 2, 4})
	serial.ctx.SetWorkers(0)
	parallel = newTestSetup(t, 2, []int{1, 2, 4})
	parallel.ctx.SetWorkers(workers)
	return serial, parallel
}

// TestEvaluatorParallelEquivalence runs a representative homomorphic circuit
// on a serial and a 4-worker context and demands bit-identical ciphertexts at
// every step: the engine must be a pure throughput dial.
func TestEvaluatorParallelEquivalence(t *testing.T) {
	s, p := parallelPair(t, 4)
	if got := p.ctx.Workers(); got != 4 {
		t.Fatalf("parallel context reports %d workers, want 4", got)
	}
	if got := s.ctx.Workers(); got != 0 {
		t.Fatalf("serial context reports %d workers, want 0", got)
	}

	rng := rand.New(rand.NewSource(77))
	v0 := randomComplex(rng, s.params.Slots(), 1)
	v1 := randomComplex(rng, s.params.Slots(), 1)

	run := func(ts *testSetup) []*Ciphertext {
		lvl := ts.params.MaxLevel()
		pt0, _ := ts.encoder.Encode(v0, lvl, ts.params.Scale)
		pt1, _ := ts.encoder.Encode(v1, lvl, ts.params.Scale)
		ct0, _ := ts.enc.EncryptNew(pt0)
		ct1, _ := ts.enc.EncryptNew(pt1)
		prod := ts.eval.Rescale(ts.eval.MulRelin(ct0, ct1))
		rot := ts.eval.Rotate(prod, 2)
		conj := ts.eval.Conjugate(rot)
		sum := ts.eval.Add(rot, conj)
		cmul := ts.eval.Rescale(ts.eval.MulConst(sum, complex(0.5, -0.25), ts.params.Scale))
		cadd := ts.eval.AddConst(cmul, complex(-1.25, 0.5))
		sq := ts.eval.Rescale(ts.eval.Square(cadd))
		return []*Ciphertext{ct0, ct1, prod, rot, conj, sum, cmul, cadd, sq}
	}
	outS := run(s)
	outP := run(p)
	for i := range outS {
		equalCT(t, s.ctx, outS[i], outP[i])
	}

	// Close releases the private engine and reverts to the shared pool; the
	// context stays usable and still matches serial. (Both encryptor RNGs
	// advanced identically above, so second runs are comparable to each
	// other, not to the first.)
	p.ctx.Close()
	outS2 := run(s)
	outP2 := run(p)
	for i := range outS2 {
		equalCT(t, s.ctx, outS2[i], outP2[i])
	}
}

// TestLinearTransformParallelEquivalence covers the BSGS path (and with it
// the AddInPlace accumulators) under both engines.
func TestLinearTransformParallelEquivalence(t *testing.T) {
	s, p := parallelPair(t, 3)
	rng := rand.New(rand.NewSource(78))
	n := s.params.Slots()
	v := randomComplex(rng, n, 1)
	diags := MatrixFromFunc(n, func(r, c int) complex128 {
		return complex(float64(1+(r+2*c)%5)/5, float64(r%3)/3)
	}, 0)

	run := func(ts *testSetup) *Ciphertext {
		lvl := ts.params.MaxLevel()
		lt, err := NewLinearTransform(ts.encoder, diags, lvl, ts.params.Scale)
		if err != nil {
			t.Fatal(err)
		}
		rtks := ts.kg.GenRotationKeys(ts.sk, lt.Rotations(), true)
		ev := NewEvaluator(ts.ctx, ts.encoder, ts.rlk, rtks)
		pt, _ := ts.encoder.Encode(v, lvl, ts.params.Scale)
		ct, _ := ts.enc.EncryptNew(pt)
		return ev.LinearTransform(ct, lt)
	}
	equalCT(t, s.ctx, run(s), run(p))
}

// TestBootstrapParallelEquivalence is the end-to-end check of the issue's
// acceptance criteria: a full small-N bootstrap — starting from a level-0
// ciphertext, the regime where coefficient-block sharding carries the
// pipeline's tail — must be bit-identical to the serial run with workers > 1
// alone and with coefficient-block sharding forced on (a block size far
// below the default floor so sharding engages at the test's small N). The
// 8-worker rows exercise a pool wider than the limb count, where the fused
// radix-4 row path and the sharded per-stage radix-2 path mix within one
// bootstrap.
func TestBootstrapParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap equivalence skipped with -short")
	}
	rng := rand.New(rand.NewSource(79))
	var ref *Ciphertext
	var refCtx *Context
	values := randomComplex(rng, 1<<9, 0.7)
	for _, cfg := range []struct{ workers, block int }{
		{0, 0},  // serial reference
		{4, 0},  // limb-parallel, default block floor
		{4, 64}, // limb × coefficient-block sharded
		{8, 0},  // wide pool: rows oversubscribe limbs at low levels
		{8, 64}, // wide pool with sharding forced on — the full staged schedule
	} {
		s, bt := bootSetup(t)
		s.ctx.SetWorkers(cfg.workers)
		if cfg.block > 0 {
			s.ctx.SetBlockSize(cfg.block)
		}
		pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
		ct, err := s.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		out, err := bt.Bootstrap(ct)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refCtx = out, s.ctx
			continue
		}
		equalCT(t, refCtx, ref, out)
	}
}

// TestShardedEvaluatorEquivalence sweeps the evaluator's primitive ops at
// every level of the chain — including the low levels where coefficient
// blocks carry all the parallelism — across worker counts and block sizes,
// demanding bit-identical ciphertexts vs the serial engine at each step.
func TestShardedEvaluatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	probe := newTestSetup(t, 2, nil)
	v0 := randomComplex(rng, probe.params.Slots(), 1)
	v1 := randomComplex(rng, probe.params.Slots(), 1)

	// run exercises every primitive at one level: encode/encrypt at the top,
	// drop to the target level, then rotate/conjugate/mul/rescale/const ops.
	run := func(ts *testSetup, lvl int) []*Ciphertext {
		top := ts.params.MaxLevel()
		pt0, _ := ts.encoder.Encode(v0, top, ts.params.Scale)
		pt1, _ := ts.encoder.Encode(v1, top, ts.params.Scale)
		ct0, _ := ts.enc.EncryptNew(pt0)
		ct1, _ := ts.enc.EncryptNew(pt1)
		ct0.DropLevel(lvl)
		ct1.DropLevel(lvl)
		out := []*Ciphertext{ct0, ct1}
		rot := ts.eval.Rotate(ct0, 2)
		conj := ts.eval.Conjugate(rot)
		sum := ts.eval.Add(conj, ct1)
		cadd := ts.eval.AddConst(sum, complex(-0.75, 0.25))
		out = append(out, rot, conj, sum, cadd)
		if lvl >= 1 {
			prod := ts.eval.Rescale(ts.eval.MulRelin(cadd, ct1))
			out = append(out, prod)
		}
		return out
	}

	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		for _, block := range []int{16, 33, probe.params.N()} {
			// Fresh serial/parallel pairs per configuration: the encryptor
			// RNG is stateful, so both sides must issue the same encrypt
			// sequence from the same deterministic seed.
			serial := newTestSetup(t, 2, []int{1, 2, 4})
			serial.ctx.SetWorkers(0)
			p := newTestSetup(t, 2, []int{1, 2, 4})
			p.ctx.SetWorkers(workers)
			p.ctx.SetBlockSize(block)
			for lvl := 0; lvl <= serial.params.MaxLevel(); lvl++ {
				outS := run(serial, lvl)
				outP := run(p, lvl)
				for i := range outS {
					equalCT(t, serial.ctx, outS[i], outP[i])
				}
			}
			p.ctx.Close()
		}
	}
}

// --- Benchmarks: serial vs NumCPU workers on the key-switching hot path ----

func benchWorkersName(workers int) string {
	if workers == 0 {
		return "workers=serial"
	}
	return "workers=" + strconv.Itoa(workers)
}

func BenchmarkHMultRelinWorkers(b *testing.B) {
	for _, workers := range []int{0, runtime.NumCPU()} {
		s, ct0, ct1 := benchSetup(b)
		s.ctx.SetWorkers(workers)
		b.Run(benchWorkersName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.eval.MulRelin(ct0, ct1)
			}
		})
	}
}

func BenchmarkBootstrapWorkers(b *testing.B) {
	if testing.Short() {
		b.Skip("bootstrapping bench skipped with -short")
	}
	for _, workers := range []int{0, runtime.NumCPU()} {
		s, bt := bootSetup(b)
		s.ctx.SetWorkers(workers)
		pt, _ := s.encoder.Encode([]complex128{0.25, -0.5}, 0, s.params.Scale)
		ct, _ := s.enc.EncryptNew(pt)
		b.Run(benchWorkersName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bt.Bootstrap(ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
