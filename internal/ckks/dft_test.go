package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// applyDiags multiplies the diagonal-represented matrix against v:
// out[j] = Σ_k diags[k][j] · v[(j+k) mod n].
func applyDiags(diags map[int][]complex128, v []complex128) []complex128 {
	n := len(v)
	out := make([]complex128, n)
	for k, d := range diags {
		for j := 0; j < n; j++ {
			out[j] += d[j] * v[(j+k)%n]
		}
	}
	return out
}

// TestDFTStageDiagsProduct pins the factorization convention: the product of
// the DFTInverse stages equals B·U^{-1} (apply the chain, get the
// bit-reversed inverse special FFT) and the DFTForward stages equal U·B, at
// every stage count. This is the exactness invariant that lets the staged
// bootstrap omit both bit-reversals.
func TestDFTStageDiagsProduct(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	e := s.encoder
	n := e.Slots()
	rng := rand.New(rand.NewSource(91))
	v := randomComplex(rng, n, 1)

	logn := 0
	for 1<<logn < n {
		logn++
	}
	for _, numStages := range []int{1, 2, 3, logn} {
		// Inverse: chain(v) must equal bitrev(fftSpecialInv(v)).
		stages, err := e.DFTStageDiags(DFTInverse, numStages)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), v...)
		for _, st := range stages {
			got = applyDiags(st, got)
		}
		want := append([]complex128(nil), v...)
		e.fftSpecialInv(want)
		bitReverseInPlace(want)
		if err := maxErr(got, want); err > 1e-9 {
			t.Fatalf("inverse chain (%d stages) deviates from B·U^{-1} by %g", numStages, err)
		}

		// Forward: chain(v) must equal fftSpecial(bitrev(v)).
		stages, err = e.DFTStageDiags(DFTForward, numStages)
		if err != nil {
			t.Fatal(err)
		}
		got = append([]complex128(nil), v...)
		for _, st := range stages {
			got = applyDiags(st, got)
		}
		want = append([]complex128(nil), v...)
		bitReverseInPlace(want)
		e.fftSpecial(want)
		if err := maxErr(got, want); err > 1e-9 {
			t.Fatalf("forward chain (%d stages) deviates from U·B by %g", numStages, err)
		}

		// Round trip: forward ∘ inverse must be the identity (B cancels).
		inv, _ := e.DFTStageDiags(DFTInverse, numStages)
		fwd, _ := e.DFTStageDiags(DFTForward, numStages)
		got = append([]complex128(nil), v...)
		for _, st := range inv {
			got = applyDiags(st, got)
		}
		for _, st := range fwd {
			got = applyDiags(st, got)
		}
		if err := maxErr(got, v); err > 1e-9 {
			t.Fatalf("forward∘inverse (%d stages) deviates from identity by %g", numStages, err)
		}
	}
}

// TestDFTStageDiagsSparsity checks the Table 2 cost-model premise: a merged
// stage of d radix-2 layers has at most 2^(d+1)-1 diagonals (collapsing
// further mod n), a tiny fraction of the dense transform's n.
func TestDFTStageDiagsSparsity(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	e := s.encoder
	n := e.Slots()
	logn := 0
	for 1<<logn < n {
		logn++
	}
	for _, kind := range []DFTKind{DFTInverse, DFTForward} {
		for _, numStages := range []int{2, 3} {
			stages, err := e.DFTStageDiags(kind, numStages)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for i, st := range stages {
				d := (logn + numStages - 1) / numStages // max layers per stage
				bound := 2<<d - 1
				if len(st) > bound {
					t.Fatalf("kind=%d stages=%d: stage %d has %d diagonals, bound %d",
						kind, numStages, i, len(st), bound)
				}
				total += len(st)
			}
			if total >= n {
				t.Fatalf("kind=%d stages=%d: %d total diagonals not sparser than dense %d",
					kind, numStages, total, n)
			}
		}
	}
	// Invalid stage counts are rejected.
	if _, err := e.DFTStageDiags(DFTInverse, 0); err == nil {
		t.Fatal("expected error for 0 stages")
	}
	if _, err := e.DFTStageDiags(DFTInverse, logn+1); err == nil {
		t.Fatal("expected error for more stages than radix layers")
	}
}

// TestEncodeDFTStagesHomomorphic runs a 2-stage inverse chain homomorphically
// and checks it against the plain bit-reversed inverse FFT, then the full
// inverse→forward round trip against the identity.
func TestEncodeDFTStagesHomomorphic(t *testing.T) {
	s := newTestSetup(t, 2, nil)
	e := s.encoder
	n := e.Slots()
	rng := rand.New(rand.NewSource(92))
	v := randomComplex(rng, n, 1)
	lvl := s.params.MaxLevel()

	inv, err := e.EncodeDFTStages(DFTInverse, 2, lvl, float64(n))
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := e.EncodeDFTStages(DFTForward, 2, inv.OutputLevel(), 1.0/float64(n))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Depth() != 2 || inv.OutputLevel() != lvl-2 {
		t.Fatalf("inverse chain depth/output = %d/%d", inv.Depth(), inv.OutputLevel())
	}
	rots := append(inv.Rotations(), fwd.Rotations()...)
	rtks := s.kg.GenRotationKeys(s.sk, rots, false)
	eval := NewEvaluator(s.ctx, e, s.rlk, rtks)

	pt, _ := e.Encode(v, lvl, s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	// The ×n factor on the inverse (undone by the forward chain's 1/n)
	// keeps the intermediate slot values O(1) for a crisp error bound.
	mid, err := eval.TransformChain(ct, inv)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]complex128(nil), v...)
	e.fftSpecialInv(want)
	bitReverseInPlace(want)
	for j := range want {
		want[j] *= complex(float64(n), 0)
	}
	got := e.Decode(s.dec.DecryptNew(mid))
	if err := maxErr(got, want); err > 1e-4 {
		t.Fatalf("homomorphic 2-stage inverse chain error %g", err)
	}

	back, err := eval.TransformChain(mid, fwd)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level != lvl-4 {
		t.Fatalf("round-trip output level %d, want %d", back.Level, lvl-4)
	}
	if math.Abs(back.Scale/s.params.Scale-1) > 1e-9 {
		t.Fatalf("round-trip scale drifted: %g vs %g", back.Scale, s.params.Scale)
	}
	got = e.Decode(s.dec.DecryptNew(back))
	if err := maxErr(got, v); err > 1e-4 {
		t.Fatalf("homomorphic inverse→forward round trip error %g", err)
	}

	// A ciphertext below the chain's start level is rejected cleanly.
	low, _ := e.Encode(v, 1, s.params.Scale)
	ctLow, _ := s.enc.EncryptNew(low)
	if _, err := eval.TransformChain(ctLow, inv); err == nil {
		t.Fatal("expected error for too-shallow ciphertext")
	}

	// A shifted forward chain multiplies the ciphertext scale by exactly the
	// shift (values untouched) — the mechanism the staged bootstrap uses to
	// shed its working-scale boost on SlotToCoeff.
	const shift = 1.0 / 16
	fwdShifted, err := e.EncodeDFTStagesShifted(DFTForward, 2, inv.OutputLevel(), 1.0/float64(n), shift)
	if err != nil {
		t.Fatal(err)
	}
	backShifted, err := eval.TransformChain(mid, fwdShifted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(backShifted.Scale/(s.params.Scale*shift)-1) > 1e-9 {
		t.Fatalf("shifted chain scale %g, want %g", backShifted.Scale, s.params.Scale*shift)
	}
	got = e.Decode(s.dec.DecryptNew(backShifted))
	if err := maxErr(got, v); err > 1e-3 {
		t.Fatalf("shifted inverse→forward round trip error %g", err)
	}
}

func TestNewTransformChainValidation(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	e := s.encoder
	n := e.Slots()
	lvl := s.params.MaxLevel()
	mk := func(level int) *LinearTransform {
		lt, err := NewLinearTransform(e, map[int][]complex128{0: ones(n)}, level, float64(s.params.Q[level]))
		if err != nil {
			t.Fatal(err)
		}
		return lt
	}
	if _, err := NewTransformChain(); err == nil {
		t.Fatal("expected error for empty chain")
	}
	if _, err := NewTransformChain(mk(lvl), mk(lvl)); err == nil {
		t.Fatal("expected error for non-descending stage levels")
	}
	if _, err := NewTransformChain(mk(lvl), mk(lvl-2)); err == nil {
		t.Fatal("expected error for a level gap between stages")
	}
	if _, err := NewTransformChain(mk(0)); err == nil {
		t.Fatal("expected error for an unrescalable last stage")
	}
	tc, err := NewTransformChain(mk(lvl), mk(lvl-1))
	if err != nil {
		t.Fatal(err)
	}
	if tc.Depth() != 2 || tc.Level() != lvl || tc.OutputLevel() != lvl-2 {
		t.Fatalf("chain geometry: depth=%d level=%d out=%d", tc.Depth(), tc.Level(), tc.OutputLevel())
	}
}

// TestBootstrapLevelBudget walks MinLevels across stage counts and checks
// the constructor accepts exactly L ≥ MinLevels — the off-by-one at every
// stage boundary — and rejects malformed stage configurations.
func TestBootstrapLevelBudget(t *testing.T) {
	newCtx := func(levels int) (*Context, *Encoder, *Evaluator) {
		logQ := []int{55}
		for i := 0; i < levels; i++ {
			logQ = append(logQ, 45)
		}
		params, err := NewParameters(ParametersLiteral{
			LogN: 10, LogQ: logQ, LogP: 55, Dnum: 2, LogScale: 45, H: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := NewContext(params)
		if err != nil {
			t.Fatal(err)
		}
		enc := NewEncoder(ctx)
		return ctx, enc, NewEvaluator(ctx, enc, nil, nil)
	}
	for _, tc := range []struct {
		ctsStages, stcStages int
		wantMin              int
	}{
		{0, 0, 12}, // dense only
		{1, 1, 12}, // staged min 11, but the dense oracle is built too
		{2, 2, 13},
		{2, 3, 14},
		{3, 3, 15},
	} {
		bp := BootstrapParams{K: 6, SineDegree: 63, CtSStages: tc.ctsStages, StCStages: tc.stcStages}
		if got := bp.MinLevels(); got != tc.wantMin {
			t.Fatalf("stages (%d,%d): MinLevels=%d want %d", tc.ctsStages, tc.stcStages, got, tc.wantMin)
		}
		// One level short of the budget must fail, the exact budget succeed.
		ctx, enc, ev := newCtx(tc.wantMin - 1)
		if _, err := NewBootstrapper(ctx, enc, ev, bp); err == nil {
			t.Fatalf("stages (%d,%d): expected error at L=%d", tc.ctsStages, tc.stcStages, tc.wantMin-1)
		}
		ctx, enc, ev = newCtx(tc.wantMin)
		bt, err := NewBootstrapper(ctx, enc, ev, bp)
		if err != nil {
			t.Fatalf("stages (%d,%d): unexpected error at L=%d: %v", tc.ctsStages, tc.stcStages, tc.wantMin, err)
		}
		if bp.Staged() {
			cts, stc := bt.Chains()
			if cts.Depth() != tc.ctsStages || stc.Depth() != tc.stcStages {
				t.Fatalf("stages (%d,%d): chain depths %d/%d", tc.ctsStages, tc.stcStages, cts.Depth(), stc.Depth())
			}
			if stc.OutputLevel() < 1 {
				t.Fatalf("stages (%d,%d): SlotToCoeff output level %d", tc.ctsStages, tc.stcStages, stc.OutputLevel())
			}
		}
	}
	// Half-staged and over-deep configurations are rejected.
	ctx, enc, ev := newCtx(15)
	if _, err := NewBootstrapper(ctx, enc, ev, BootstrapParams{K: 6, SineDegree: 63, CtSStages: 2}); err == nil {
		t.Fatal("expected error for CtSStages>0 with StCStages=0")
	}
	if _, err := enc.EncodeDFTStages(DFTInverse, 10, 14, 1); err == nil {
		t.Fatal("expected error for more stages than radix layers")
	}
}

// TestBootstrapStagedMatchesDense is the tentpole equivalence check: the
// staged pipeline must decrypt to the same plaintext as the dense reference
// within the existing precision budget — at several worker/block
// configurations (run under -race in CI) — while spending ≥1.5× fewer
// key-switch operations (measured by the evaluator's op counters, the same
// metric the bootstrap-bench CI gate enforces).
func TestBootstrapStagedMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("staged-vs-dense bootstrap comparison is expensive; skipped with -short")
	}
	rng := rand.New(rand.NewSource(93))
	values := randomComplex(rng, 1<<9, 0.7)
	for _, cfg := range []struct{ workers, block int }{
		{0, 0},  // serial
		{4, 64}, // limb × coefficient-block sharded
	} {
		s, bt := bootSetup(t)
		s.ctx.SetWorkers(cfg.workers)
		if cfg.block > 0 {
			s.ctx.SetBlockSize(cfg.block)
		}
		pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
		ct, err := s.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}

		s.eval.ResetCounters()
		staged, err := bt.Bootstrap(ct)
		if err != nil {
			t.Fatal(err)
		}
		stagedOps := s.eval.Counters()

		bt.SetDenseTransforms(true)
		s.eval.ResetCounters()
		dense, err := bt.Bootstrap(ct)
		if err != nil {
			t.Fatal(err)
		}
		denseOps := s.eval.Counters()
		bt.SetDenseTransforms(false)

		stagedVals := s.encoder.Decode(s.dec.DecryptNew(staged))
		denseVals := s.encoder.Decode(s.dec.DecryptNew(dense))
		errStaged := maxErr(stagedVals, values)
		errDense := maxErr(denseVals, values)
		errDelta := maxErr(stagedVals, denseVals)
		ratio := float64(denseOps.KeySwitchTotal()) / float64(stagedOps.KeySwitchTotal())
		t.Logf("workers=%d block=%d: staged err %.3g (level %d, ks %d), dense err %.3g (level %d, ks %d), delta %.3g, ks ratio %.2f",
			cfg.workers, cfg.block, errStaged, staged.Level, stagedOps.KeySwitchTotal(),
			errDense, dense.Level, denseOps.KeySwitchTotal(), errDelta, ratio)

		if errStaged > 2e-2 {
			t.Fatalf("staged bootstrap error %g above the 2e-2 budget", errStaged)
		}
		if errDelta > 2e-2 {
			t.Fatalf("staged deviates from dense reference by %g", errDelta)
		}
		if errStaged > 2*errDense+1e-9 {
			t.Fatalf("staged error %g worse than dense %g beyond jitter", errStaged, errDense)
		}
		if staged.Level < 2 {
			t.Fatalf("staged bootstrap restored only %d levels", staged.Level)
		}
		if ratio < 1.5 {
			t.Fatalf("staged key-switch reduction %.2fx below the 1.5x bar", ratio)
		}
	}
}
