package ckks

import (
	"fmt"
	"math"

	"bts/internal/mod"
	"bts/internal/ring"
	"bts/internal/telemetry"
)

// scaleTolerance is the maximum relative scale mismatch silently accepted by
// homomorphic additions. With primes generated within ~2^-25 of the nominal
// scale, drift across an entire bootstrapping stays far below this bound.
const scaleTolerance = 1.0 / (1 << 8)

// Evaluator applies the primitive HE ops of Section 2.3: HAdd, HMult (tensor
// product + key-switching, Eq. 3-4), HRot (automorphism + key-switching,
// Eq. 5-6), HRescale, and the plaintext/constant variants.
//
// Ops returning a fresh ciphertext draw it from the context's ciphertext
// pool: callers that are done with a result may hand it back via
// Context.PutCiphertext so steady-state evaluation allocates nothing, or
// simply drop it for the garbage collector. An Evaluator is safe for
// concurrent use by multiple goroutines (the serving runtime runs several
// ciphertexts in flight through one evaluator); all scratch comes from
// per-ring sync.Pools. The one exception is a traced copy — see WithTrace.
type Evaluator struct {
	ctx     *Context
	encoder *Encoder
	rlk     *SwitchingKey
	rtks    *RotationKeySet

	// eagerTransforms routes LinearTransform through the reference
	// one-key-switch-per-rotation path instead of the hoisted pipeline.
	eagerTransforms bool

	// counters tallies the op mix for the internal/sim calibration
	// cross-check and the serving op-mix export (see counters.go). It is a
	// pointer so WithTrace/WithNoiseFloor copies keep feeding one tally.
	counters *opCounters

	// noise, when non-nil, receives the margin of every scale-changing op's
	// output (see noise.go). Shared across evaluator copies by pointer.
	noise *NoiseFloor

	// tr/cur carry per-job tracing state: tr is the trace spans record into
	// (zero = tracing off) and cur the span ID nested spans parent under.
	// Only WithTrace copies ever have an active tr, and only they mutate
	// cur — which is why a traced evaluator is single-goroutine (see
	// WithTrace) while the shared original stays concurrency-safe.
	tr  telemetry.Trace
	cur uint64
}

// NewEvaluator builds an evaluator. rlk may be nil if no multiplications are
// relinearized; rtks may be nil if no rotations are performed.
func NewEvaluator(ctx *Context, encoder *Encoder, rlk *SwitchingKey, rtks *RotationKeySet) *Evaluator {
	return &Evaluator{ctx: ctx, encoder: encoder, rlk: rlk, rtks: rtks, counters: new(opCounters)}
}

func (ev *Evaluator) params() Parameters { return ev.ctx.Params }

// SetEagerTransforms selects the reference (non-hoisted) LinearTransform
// path when eager is true — one full key-switch per baby-step rotation and
// one ModDown per diagonal product. It exists so benchmarks and error-budget
// tests can compare against the hoisted pipeline; leave it off otherwise.
// Must not be toggled concurrently with evaluation.
func (ev *Evaluator) SetEagerTransforms(eager bool) { ev.eagerTransforms = eager }

// alignLevels returns min(ct0.Level, ct1.Level).
func alignLevels(ct0, ct1 *Ciphertext) int {
	if ct0.Level < ct1.Level {
		return ct0.Level
	}
	return ct1.Level
}

func checkScales(s0, s1 float64, op string) float64 {
	hi, lo := s0, s1
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi/lo-1 > scaleTolerance {
		panic(fmt.Sprintf("ckks: %s with mismatched scales 2^%.3f vs 2^%.3f", op, math.Log2(s0), math.Log2(s1)))
	}
	return hi
}

// Add returns ct0 + ct1 (HAdd, Eq. 2).
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) *Ciphertext {
	lvl := alignLevels(ct0, ct1)
	scale := checkScales(ct0.Scale, ct1.Scale, "Add")
	out := ev.ctx.getCiphertextNoZero(lvl, scale)
	ev.ctx.RingQ.Add(ct0.C0, ct1.C0, out.C0, lvl)
	ev.ctx.RingQ.Add(ct0.C1, ct1.C1, out.C1, lvl)
	return out
}

// AddInPlace folds ct1 into ct0 (HAdd without allocating the output), the
// accumulator form used by the linear-transform and Chebyshev inner loops.
// ct0's level drops to the minimum of the two operands.
func (ev *Evaluator) AddInPlace(ct0, ct1 *Ciphertext) {
	lvl := alignLevels(ct0, ct1)
	scale := checkScales(ct0.Scale, ct1.Scale, "AddInPlace")
	ev.ctx.RingQ.Add(ct0.C0, ct1.C0, ct0.C0, lvl)
	ev.ctx.RingQ.Add(ct0.C1, ct1.C1, ct0.C1, lvl)
	ct0.Level = lvl
	ct0.Scale = scale
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) *Ciphertext {
	lvl := alignLevels(ct0, ct1)
	scale := checkScales(ct0.Scale, ct1.Scale, "Sub")
	out := ev.ctx.getCiphertextNoZero(lvl, scale)
	ev.ctx.RingQ.Sub(ct0.C0, ct1.C0, out.C0, lvl)
	ev.ctx.RingQ.Sub(ct0.C1, ct1.C1, out.C1, lvl)
	return out
}

// Neg returns -ct.
func (ev *Evaluator) Neg(ct *Ciphertext) *Ciphertext {
	out := ev.ctx.getCiphertextNoZero(ct.Level, ct.Scale)
	ev.ctx.RingQ.Neg(ct.C0, out.C0, ct.Level)
	ev.ctx.RingQ.Neg(ct.C1, out.C1, ct.Level)
	return out
}

// AddPlain returns ct + pt (PAdd).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	lvl := ct.Level
	if pt.Level < lvl {
		lvl = pt.Level
	}
	scale := checkScales(ct.Scale, pt.Scale, "AddPlain")
	out := ev.ctx.getCiphertextNoZero(lvl, scale)
	ev.ctx.RingQ.Add(ct.C0, pt.Value, out.C0, lvl)
	ev.ctx.RingQ.CopyLevel(out.C1, ct.C1, lvl)
	return out
}

// MulPlain returns ct ⊙ pt (PMult) without rescaling; the output scale is the
// product of the input scales.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	ev.counters.PMult.Add(1)
	lvl := ct.Level
	if pt.Level < lvl {
		lvl = pt.Level
	}
	out := ev.ctx.getCiphertextNoZero(lvl, ct.Scale*pt.Scale)
	ev.ctx.RingQ.MulCoeffs(ct.C0, pt.Value, out.C0, lvl)
	ev.ctx.RingQ.MulCoeffs(ct.C1, pt.Value, out.C1, lvl)
	ev.observeMargin(out)
	return out
}

// AddConst returns ct + c, adding the constant to every slot. Exact for the
// real part (a constant polynomial) and uses the X^(N/2) monomial for the
// imaginary part, so no level is consumed.
func (ev *Evaluator) AddConst(ct *Ciphertext, c complex128) *Ciphertext {
	out := ev.ctx.copyCiphertextPooled(ct)
	rq := ev.ctx.RingQ
	re := int64(math.Round(real(c) * ct.Scale))
	im := int64(math.Round(imag(c) * ct.Scale))
	if re != 0 {
		// A constant polynomial has the same value in every NTT slot. The
		// ciphertext rows are in Montgomery form, so the constant is lifted
		// to M-form before the additive fold.
		rq.ForEachLimbBlock(ct.Level, func(i, lo, hi int) {
			q := rq.Moduli[i].Q
			var w uint64
			if re >= 0 {
				w = uint64(re) % q
			} else {
				w = q - uint64(-re)%q
			}
			w = rq.Moduli[i].MRed.MForm(w)
			row := out.C0.Coeffs[i]
			for j := lo; j < hi; j++ {
				row[j] = mod.Add(row[j], w, q)
			}
		})
	}
	if im != 0 {
		mono := rq.GetPolyNoZero()
		one := rq.GetPolyNoZero()
		rq.ForEachLimbBlock(ct.Level, func(i, lo, hi int) {
			q := rq.Moduli[i].Q
			var w uint64
			if im >= 0 {
				w = uint64(im) % q
			} else {
				w = q - uint64(-im)%q
			}
			w = rq.Moduli[i].MRed.MForm(w)
			row := one.Coeffs[i]
			for j := lo; j < hi; j++ {
				row[j] = w
			}
		})
		rq.MulByMonomialNTT(one, rq.N/2, mono, ct.Level)
		rq.Add(out.C0, mono, out.C0, ct.Level)
		rq.PutPoly(one)
		rq.PutPoly(mono)
	}
	return out
}

// MulConst multiplies every slot by the constant c, encoding it at constScale
// (the output scale is ct.Scale*constScale and no rescaling is performed).
// Pure real constants use a scalar fast path; complex constants combine the
// real scalar with the exact X^(N/2) imaginary unit.
func (ev *Evaluator) MulConst(ct *Ciphertext, c complex128, constScale float64) *Ciphertext {
	rq := ev.ctx.RingQ
	lvl := ct.Level
	re := int64(math.Round(real(c) * constScale))
	im := int64(math.Round(imag(c) * constScale))
	out := ev.ctx.getCiphertextNoZero(lvl, ct.Scale*constScale)
	rq.MulScalarInt64(ct.C0, re, out.C0, lvl)
	rq.MulScalarInt64(ct.C1, re, out.C1, lvl)
	if im != 0 {
		t0 := rq.GetPolyNoZero()
		t1 := rq.GetPolyNoZero()
		rq.MulByMonomialNTT(ct.C0, rq.N/2, t0, lvl)
		rq.MulByMonomialNTT(ct.C1, rq.N/2, t1, lvl)
		// Reuse the monomial scratch as the scaled term: s = im · t.
		rq.MulScalarInt64(t0, im, t0, lvl)
		rq.MulScalarInt64(t1, im, t1, lvl)
		rq.Add(out.C0, t0, out.C0, lvl)
		rq.Add(out.C1, t1, out.C1, lvl)
		rq.PutPoly(t1)
		rq.PutPoly(t0)
	}
	ev.observeMargin(out)
	return out
}

// MulByI multiplies every slot by the imaginary unit i — an exact, free
// operation realized as multiplication by the monomial X^(N/2).
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	rq := ev.ctx.RingQ
	out := ev.ctx.getCiphertextNoZero(ct.Level, ct.Scale)
	rq.MulByMonomialNTT(ct.C0, rq.N/2, out.C0, ct.Level)
	rq.MulByMonomialNTT(ct.C1, rq.N/2, out.C1, ct.Level)
	return out
}

// MulRelin returns ct0 ⊗ ct1 followed by relinearization (HMult, Eqs. 3-4).
// The output scale is the product of the input scales; callers normally
// Rescale afterwards.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: MulRelin without relinearization key")
	}
	ev.counters.Mult.Add(1)
	sp := ev.begin(spanMulRelin)
	rq := ev.ctx.RingQ
	lvl := alignLevels(ct0, ct1)

	d0 := rq.GetPolyNoZero()
	d1 := rq.GetPolyNoZero()
	d2 := rq.GetPolyNoZero()
	rq.MulCoeffs(ct0.C0, ct1.C0, d0, lvl)
	rq.MulCoeffs(ct0.C0, ct1.C1, d1, lvl)
	rq.MulCoeffsAndAdd(ct0.C1, ct1.C0, d1, lvl)
	rq.MulCoeffs(ct0.C1, ct1.C1, d2, lvl)

	ks0 := rq.GetPolyNoZero()
	ks1 := rq.GetPolyNoZero()
	ev.keySwitch(d2, lvl, ev.rlk, ks0, ks1)
	out := ev.ctx.getCiphertextNoZero(lvl, ct0.Scale*ct1.Scale)
	rq.Add(d0, ks0, out.C0, lvl)
	rq.Add(d1, ks1, out.C1, lvl)
	rq.PutPoly(ks1)
	rq.PutPoly(ks0)
	rq.PutPoly(d2)
	rq.PutPoly(d1)
	rq.PutPoly(d0)
	ev.observeMargin(out)
	ev.endSpan(&sp, out)
	return out
}

// Square is MulRelin(ct, ct).
func (ev *Evaluator) Square(ct *Ciphertext) *Ciphertext { return ev.MulRelin(ct, ct) }

// Rescale divides ct by the current last prime and drops one level
// (HRescale, Section 2.4). The tracked scale is divided by that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale a level-0 ciphertext")
	}
	ev.counters.Rescale.Add(1)
	sp := ev.begin(spanRescale)
	rq := ev.ctx.RingQ
	out := ev.ctx.copyCiphertextPooled(ct)
	q := float64(rq.Moduli[ct.Level].Q)
	rq.DivRoundByLastModulusNTT(out.C0, ct.Level)
	rq.DivRoundByLastModulusNTT(out.C1, ct.Level)
	out.Level = ct.Level - 1
	out.Scale = ct.Scale / q
	ev.observeMargin(out)
	ev.endSpan(&sp, out)
	return out
}

// Rotate returns HRot(ct, r): the message vector circularly shifted left by r
// slots (Eq. 5-6). Requires the rotation key for 5^r.
func (ev *Evaluator) Rotate(ct *Ciphertext, r int) *Ciphertext {
	g := ev.ctx.RingQ.GaloisElement(r)
	return ev.automorphism(ct, g)
}

// Conjugate returns the slot-wise complex conjugate of ct. Requires the
// conjugation key.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	return ev.automorphism(ct, ev.ctx.RingQ.GaloisConjugate())
}

func (ev *Evaluator) automorphism(ct *Ciphertext, g uint64) *Ciphertext {
	if g == 1 {
		return ev.ctx.copyCiphertextPooled(ct)
	}
	ev.counters.FullRot.Add(1)
	sp := ev.begin(spanRotate)
	swk := ev.rotationKey(g)
	rq := ev.ctx.RingQ
	lvl := ct.Level
	rb := rq.GetPolyNoZero()
	ra := rq.GetPolyNoZero()
	rq.AutomorphismNTT(ct.C0, g, rb, lvl)
	rq.AutomorphismNTT(ct.C1, g, ra, lvl)
	ks0 := rq.GetPolyNoZero()
	ks1 := rq.GetPolyNoZero()
	ev.keySwitch(ra, lvl, swk, ks0, ks1)
	out := ev.ctx.getCiphertextNoZero(lvl, ct.Scale)
	rq.Add(rb, ks0, out.C0, lvl)
	rq.CopyLevel(out.C1, ks1, lvl)
	rq.PutPoly(ks1)
	rq.PutPoly(ks0)
	rq.PutPoly(ra)
	rq.PutPoly(rb)
	ev.endSpan(&sp, out)
	return out
}

// keySwitch recombines d (NTT domain, level lvl), decryptable under the
// switching key's source secret, into the pair (ks0, ks1) decryptable under
// s; the caller supplies ks0 and ks1 (typically from the scratch pool). This
// is the pipeline of Fig. 3(a): per decomposition slice, iNTT → BConv
// (ModUp) → NTT → multiply-accumulate with the evk, then a final ModDown
// dividing by P (the subtraction-scaling-addition the paper fuses as SSA).
//
// This is the single-use form: it streams one slice at a time through a
// reused scratch pair, so it holds two temporaries regardless of β and
// allocates nothing per call. Rotation-heavy callers that reuse one
// decomposition across many rotations instead materialize every slice with
// decomposeNTT (hoisting.go); the two paths perform the identical op
// sequence per slice, so their outputs are bit-identical.
func (ev *Evaluator) keySwitch(d *ring.Poly, lvl int, swk *SwitchingKey, ks0, ks1 *ring.Poly) {
	sp := ev.begin(spanKeySwitch)
	sp.SetLevel(lvl)
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lp := rp.MaxLevel()
	beta := ctx.Params.Beta(lvl)

	dCoeff := rq.GetPolyNoZero()
	rq.CopyLevel(dCoeff, d, lvl)
	rq.INTT(dCoeff, lvl)

	accQ0 := rq.GetPoly(lvl)
	accQ1 := rq.GetPoly(lvl)
	accP0 := rp.GetPoly(lp)
	accP1 := rp.GetPoly(lp)

	// tmpQ/tmpP are fully overwritten each slice (copied rows + BConv
	// output), so they skip the zeroing pass; only the accumulators above
	// need zeroed memory. dst is the BConv target-row view, reused across
	// slices.
	tmpQ := rq.GetPolyNoZero()
	tmpP := rp.GetPolyNoZero()
	dst := make([][]uint64, 0, lvl+1+lp)

	for j := 0; j < beta; j++ {
		dst = ev.modUpSlice(j, lvl, dCoeff, tmpQ, tmpP, dst)

		// Multiply-accumulate with the evk slice (element-wise, Fig. 3a).
		rq.MulCoeffsAndAdd(tmpQ, swk.Value[j][0].Q, accQ0, lvl)
		rp.MulCoeffsAndAdd(tmpP, swk.Value[j][0].P, accP0, lp)
		rq.MulCoeffsAndAdd(tmpQ, swk.Value[j][1].Q, accQ1, lvl)
		rp.MulCoeffsAndAdd(tmpP, swk.Value[j][1].P, accP1, lp)
	}

	ev.modDown(accQ0, accP0, lvl, ks0)
	ev.modDown(accQ1, accP1, lvl, ks1)

	rp.PutPoly(tmpP)
	rq.PutPoly(tmpQ)
	rp.PutPoly(accP1)
	rp.PutPoly(accP0)
	rq.PutPoly(accQ1)
	rq.PutPoly(accQ0)
	rq.PutPoly(dCoeff)
	ev.endSpan(&sp, nil)
}

// modUpSlice runs one decomposition slice of the Fig. 3(a) pipeline: the
// residues of group j of dCoeff (coefficient domain, level lvl) are extended
// to the rest of the QP basis (ModUp/BConv), the group rows copied through,
// and both halves brought to the NTT domain. tmpQ and tmpP are fully
// overwritten; dst is the reusable BConv target-row view, returned for reuse
// across slices. Both the streaming keySwitch and the hoisted decomposeNTT
// run exactly this body per slice — sharing it is what keeps their outputs
// bit-identical.
func (ev *Evaluator) modUpSlice(j, lvl int, dCoeff, tmpQ, tmpP *ring.Poly, dst [][]uint64) [][]uint64 {
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lp := rp.MaxLevel()
	lo, hi := ctx.groupRange(j, lvl)
	src := dCoeff.Coeffs[lo : hi+1]
	dst = dst[:0]
	for i := 0; i <= lvl; i++ {
		if i < lo || i > hi {
			dst = append(dst, tmpQ.Coeffs[i])
		}
	}
	dst = append(dst, tmpP.Coeffs...)
	ctx.modUpExtender(j, lvl).Convert(src, dst)
	for i := lo; i <= hi; i++ {
		copy(tmpQ.Coeffs[i], dCoeff.Coeffs[i])
	}
	rq.NTT(tmpQ, lvl)
	rp.NTT(tmpP, lp)
	return dst
}

// modDown divides (accQ, accP) by P into out: BConv the P-part onto the
// q-basis, subtract, and scale by P^-1 mod q_i (the 1/P step of Eq. 4). The
// final fused subtract-scale runs limb × coefficient-block sharded with the
// cached Shoup companions of P^-1, so it stays parallel at low levels.
func (ev *Evaluator) modDown(accQ, accP *ring.Poly, lvl int, out *ring.Poly) {
	ev.counters.ModDown.Add(1)
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lp := rp.MaxLevel()
	rp.INTT(accP, lp)
	tmp := rq.GetPolyNoZero()
	ctx.modDownExtender(lvl).Convert(accP.Coeffs, tmp.Coeffs)
	rq.NTT(tmp, lvl)
	rq.ForEachLimbBlock(lvl, func(i, lo, hi int) {
		q := rq.Moduli[i].Q
		pInv, pInvShoup := ctx.pInvModQ[i], ctx.pInvModQShoup[i]
		a, b, o := accQ.Coeffs[i], tmp.Coeffs[i], out.Coeffs[i]
		for t := lo; t < hi; t++ {
			o[t] = mod.MulShoup(mod.Sub(a[t], b[t], q), pInv, pInvShoup, q)
		}
	})
	rq.PutPoly(tmp)
}
