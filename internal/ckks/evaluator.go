package ckks

import (
	"fmt"
	"math"

	"bts/internal/mod"
	"bts/internal/ring"
)

// scaleTolerance is the maximum relative scale mismatch silently accepted by
// homomorphic additions. With primes generated within ~2^-25 of the nominal
// scale, drift across an entire bootstrapping stays far below this bound.
const scaleTolerance = 1.0 / (1 << 8)

// Evaluator applies the primitive HE ops of Section 2.3: HAdd, HMult (tensor
// product + key-switching, Eq. 3-4), HRot (automorphism + key-switching,
// Eq. 5-6), HRescale, and the plaintext/constant variants.
type Evaluator struct {
	ctx     *Context
	encoder *Encoder
	rlk     *SwitchingKey
	rtks    *RotationKeySet
}

// NewEvaluator builds an evaluator. rlk may be nil if no multiplications are
// relinearized; rtks may be nil if no rotations are performed.
func NewEvaluator(ctx *Context, encoder *Encoder, rlk *SwitchingKey, rtks *RotationKeySet) *Evaluator {
	return &Evaluator{ctx: ctx, encoder: encoder, rlk: rlk, rtks: rtks}
}

func (ev *Evaluator) params() Parameters { return ev.ctx.Params }

// alignLevels returns min(ct0.Level, ct1.Level).
func alignLevels(ct0, ct1 *Ciphertext) int {
	if ct0.Level < ct1.Level {
		return ct0.Level
	}
	return ct1.Level
}

func checkScales(s0, s1 float64, op string) float64 {
	hi, lo := s0, s1
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi/lo-1 > scaleTolerance {
		panic(fmt.Sprintf("ckks: %s with mismatched scales 2^%.3f vs 2^%.3f", op, math.Log2(s0), math.Log2(s1)))
	}
	return hi
}

// Add returns ct0 + ct1 (HAdd, Eq. 2).
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) *Ciphertext {
	lvl := alignLevels(ct0, ct1)
	scale := checkScales(ct0.Scale, ct1.Scale, "Add")
	out := ev.ctx.NewCiphertext(lvl, scale)
	ev.ctx.RingQ.Add(ct0.C0, ct1.C0, out.C0, lvl)
	ev.ctx.RingQ.Add(ct0.C1, ct1.C1, out.C1, lvl)
	return out
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) *Ciphertext {
	lvl := alignLevels(ct0, ct1)
	scale := checkScales(ct0.Scale, ct1.Scale, "Sub")
	out := ev.ctx.NewCiphertext(lvl, scale)
	ev.ctx.RingQ.Sub(ct0.C0, ct1.C0, out.C0, lvl)
	ev.ctx.RingQ.Sub(ct0.C1, ct1.C1, out.C1, lvl)
	return out
}

// Neg returns -ct.
func (ev *Evaluator) Neg(ct *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext(ct.Level, ct.Scale)
	ev.ctx.RingQ.Neg(ct.C0, out.C0, ct.Level)
	ev.ctx.RingQ.Neg(ct.C1, out.C1, ct.Level)
	return out
}

// AddPlain returns ct + pt (PAdd).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	lvl := ct.Level
	if pt.Level < lvl {
		lvl = pt.Level
	}
	scale := checkScales(ct.Scale, pt.Scale, "AddPlain")
	out := ev.ctx.NewCiphertext(lvl, scale)
	ev.ctx.RingQ.Add(ct.C0, pt.Value, out.C0, lvl)
	ev.ctx.RingQ.CopyLevel(out.C1, ct.C1, lvl)
	return out
}

// MulPlain returns ct ⊙ pt (PMult) without rescaling; the output scale is the
// product of the input scales.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	lvl := ct.Level
	if pt.Level < lvl {
		lvl = pt.Level
	}
	out := ev.ctx.NewCiphertext(lvl, ct.Scale*pt.Scale)
	ev.ctx.RingQ.MulCoeffs(ct.C0, pt.Value, out.C0, lvl)
	ev.ctx.RingQ.MulCoeffs(ct.C1, pt.Value, out.C1, lvl)
	return out
}

// AddConst returns ct + c, adding the constant to every slot. Exact for the
// real part (a constant polynomial) and uses the X^(N/2) monomial for the
// imaginary part, so no level is consumed.
func (ev *Evaluator) AddConst(ct *Ciphertext, c complex128) *Ciphertext {
	out := ct.CopyNew(ev.ctx)
	rq := ev.ctx.RingQ
	re := int64(math.Round(real(c) * ct.Scale))
	im := int64(math.Round(imag(c) * ct.Scale))
	if re != 0 {
		// A constant polynomial has the same value in every NTT slot.
		for i := 0; i <= ct.Level; i++ {
			q := rq.Moduli[i].Q
			var w uint64
			if re >= 0 {
				w = uint64(re) % q
			} else {
				w = q - uint64(-re)%q
			}
			row := out.C0.Coeffs[i]
			for j := range row {
				row[j] = mod.Add(row[j], w, q)
			}
		}
	}
	if im != 0 {
		mono := rq.NewPolyLevel(ct.Level)
		one := rq.NewPolyLevel(ct.Level)
		for i := 0; i <= ct.Level; i++ {
			q := rq.Moduli[i].Q
			var w uint64
			if im >= 0 {
				w = uint64(im) % q
			} else {
				w = q - uint64(-im)%q
			}
			row := one.Coeffs[i]
			for j := range row {
				row[j] = w
			}
		}
		rq.MulByMonomialNTT(one, rq.N/2, mono, ct.Level)
		rq.Add(out.C0, mono, out.C0, ct.Level)
	}
	return out
}

// MulConst multiplies every slot by the constant c, encoding it at constScale
// (the output scale is ct.Scale*constScale and no rescaling is performed).
// Pure real constants use a scalar fast path; complex constants combine the
// real scalar with the exact X^(N/2) imaginary unit.
func (ev *Evaluator) MulConst(ct *Ciphertext, c complex128, constScale float64) *Ciphertext {
	rq := ev.ctx.RingQ
	lvl := ct.Level
	re := int64(math.Round(real(c) * constScale))
	im := int64(math.Round(imag(c) * constScale))
	out := ev.ctx.NewCiphertext(lvl, ct.Scale*constScale)
	rq.MulScalarInt64(ct.C0, re, out.C0, lvl)
	rq.MulScalarInt64(ct.C1, re, out.C1, lvl)
	if im != 0 {
		t0 := rq.NewPolyLevel(lvl)
		t1 := rq.NewPolyLevel(lvl)
		rq.MulByMonomialNTT(ct.C0, rq.N/2, t0, lvl)
		rq.MulByMonomialNTT(ct.C1, rq.N/2, t1, lvl)
		s0 := rq.NewPolyLevel(lvl)
		s1 := rq.NewPolyLevel(lvl)
		rq.MulScalarInt64(t0, im, s0, lvl)
		rq.MulScalarInt64(t1, im, s1, lvl)
		rq.Add(out.C0, s0, out.C0, lvl)
		rq.Add(out.C1, s1, out.C1, lvl)
	}
	return out
}

// MulByI multiplies every slot by the imaginary unit i — an exact, free
// operation realized as multiplication by the monomial X^(N/2).
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	rq := ev.ctx.RingQ
	out := ev.ctx.NewCiphertext(ct.Level, ct.Scale)
	rq.MulByMonomialNTT(ct.C0, rq.N/2, out.C0, ct.Level)
	rq.MulByMonomialNTT(ct.C1, rq.N/2, out.C1, ct.Level)
	return out
}

// MulRelin returns ct0 ⊗ ct1 followed by relinearization (HMult, Eqs. 3-4).
// The output scale is the product of the input scales; callers normally
// Rescale afterwards.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: MulRelin without relinearization key")
	}
	rq := ev.ctx.RingQ
	lvl := alignLevels(ct0, ct1)

	d0 := rq.NewPolyLevel(lvl)
	d1 := rq.NewPolyLevel(lvl)
	d2 := rq.NewPolyLevel(lvl)
	rq.MulCoeffs(ct0.C0, ct1.C0, d0, lvl)
	rq.MulCoeffs(ct0.C0, ct1.C1, d1, lvl)
	rq.MulCoeffsAndAdd(ct0.C1, ct1.C0, d1, lvl)
	rq.MulCoeffs(ct0.C1, ct1.C1, d2, lvl)

	ks0, ks1 := ev.keySwitch(d2, lvl, ev.rlk)
	out := ev.ctx.NewCiphertext(lvl, ct0.Scale*ct1.Scale)
	rq.Add(d0, ks0, out.C0, lvl)
	rq.Add(d1, ks1, out.C1, lvl)
	return out
}

// Square is MulRelin(ct, ct).
func (ev *Evaluator) Square(ct *Ciphertext) *Ciphertext { return ev.MulRelin(ct, ct) }

// Rescale divides ct by the current last prime and drops one level
// (HRescale, Section 2.4). The tracked scale is divided by that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale a level-0 ciphertext")
	}
	rq := ev.ctx.RingQ
	out := ct.CopyNew(ev.ctx)
	q := float64(rq.Moduli[ct.Level].Q)
	rq.DivRoundByLastModulusNTT(out.C0, ct.Level)
	rq.DivRoundByLastModulusNTT(out.C1, ct.Level)
	out.Level = ct.Level - 1
	out.Scale = ct.Scale / q
	return out
}

// Rotate returns HRot(ct, r): the message vector circularly shifted left by r
// slots (Eq. 5-6). Requires the rotation key for 5^r.
func (ev *Evaluator) Rotate(ct *Ciphertext, r int) *Ciphertext {
	g := ev.ctx.RingQ.GaloisElement(r)
	return ev.automorphism(ct, g)
}

// Conjugate returns the slot-wise complex conjugate of ct. Requires the
// conjugation key.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	return ev.automorphism(ct, ev.ctx.RingQ.GaloisConjugate())
}

func (ev *Evaluator) automorphism(ct *Ciphertext, g uint64) *Ciphertext {
	if g == 1 {
		return ct.CopyNew(ev.ctx)
	}
	if ev.rtks == nil {
		panic("ckks: rotation without rotation keys")
	}
	swk, ok := ev.rtks.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: missing rotation key for Galois element %d", g))
	}
	rq := ev.ctx.RingQ
	lvl := ct.Level
	rb := rq.NewPolyLevel(lvl)
	ra := rq.NewPolyLevel(lvl)
	rq.AutomorphismNTT(ct.C0, g, rb, lvl)
	rq.AutomorphismNTT(ct.C1, g, ra, lvl)
	ks0, ks1 := ev.keySwitch(ra, lvl, swk)
	out := ev.ctx.NewCiphertext(lvl, ct.Scale)
	rq.Add(rb, ks0, out.C0, lvl)
	rq.CopyLevel(out.C1, ks1, lvl)
	return out
}

// keySwitch recombines d (NTT domain, level lvl), decryptable under the
// switching key's source secret, into a pair decryptable under s. This is
// the pipeline of Fig. 3(a): per decomposition slice, iNTT → BConv (ModUp)
// → NTT → multiply-accumulate with the evk, then a final ModDown dividing
// by P (the subtraction-scaling-addition the paper fuses as SSA).
func (ev *Evaluator) keySwitch(d *ring.Poly, lvl int, swk *SwitchingKey) (ks0, ks1 *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lp := rp.MaxLevel()
	beta := ctx.Params.Beta(lvl)

	dCoeff := rq.CopyNew(d, lvl)
	rq.INTT(dCoeff, lvl)

	accQ0 := rq.NewPolyLevel(lvl)
	accQ1 := rq.NewPolyLevel(lvl)
	accP0 := rp.NewPoly(lp + 1)
	accP1 := rp.NewPoly(lp + 1)

	tmpQ := rq.NewPolyLevel(lvl)
	tmpP := rp.NewPoly(lp + 1)

	for j := 0; j < beta; j++ {
		lo, hi := ctx.groupRange(j, lvl)
		// ModUp: extend the slice's residues to the rest of the basis.
		src := dCoeff.Coeffs[lo : hi+1]
		dst := make([][]uint64, 0, lvl+1+lp)
		for i := 0; i <= lvl; i++ {
			if i < lo || i > hi {
				dst = append(dst, tmpQ.Coeffs[i])
			}
		}
		dst = append(dst, tmpP.Coeffs...)
		ctx.modUpExtender(j, lvl).Convert(src, dst)
		for i := lo; i <= hi; i++ {
			copy(tmpQ.Coeffs[i], dCoeff.Coeffs[i])
		}
		rq.NTT(tmpQ, lvl)
		rp.NTT(tmpP, lp)

		// Multiply-accumulate with the evk slice (element-wise, Fig. 3a).
		rq.MulCoeffsAndAdd(tmpQ, swk.Value[j][0].Q, accQ0, lvl)
		rp.MulCoeffsAndAdd(tmpP, swk.Value[j][0].P, accP0, lp)
		rq.MulCoeffsAndAdd(tmpQ, swk.Value[j][1].Q, accQ1, lvl)
		rp.MulCoeffsAndAdd(tmpP, swk.Value[j][1].P, accP1, lp)
	}

	ks0 = ev.modDown(accQ0, accP0, lvl)
	ks1 = ev.modDown(accQ1, accP1, lvl)
	return ks0, ks1
}

// modDown divides (accQ, accP) by P: BConv the P-part onto the q-basis,
// subtract, and scale by P^-1 mod q_i (the 1/P step of Eq. 4).
func (ev *Evaluator) modDown(accQ, accP *ring.Poly, lvl int) *ring.Poly {
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lp := rp.MaxLevel()
	rp.INTT(accP, lp)
	tmp := rq.NewPolyLevel(lvl)
	ctx.modDownExtender(lvl).Convert(accP.Coeffs, tmp.Coeffs)
	rq.NTT(tmp, lvl)
	out := rq.NewPolyLevel(lvl)
	for i := 0; i <= lvl; i++ {
		q := rq.Moduli[i].Q
		pInv := ctx.pInvModQ[i]
		pInvShoup := mod.ShoupPrecomp(pInv, q)
		a, b, o := accQ.Coeffs[i], tmp.Coeffs[i], out.Coeffs[i]
		for t := 0; t < rq.N; t++ {
			o[t] = mod.MulShoup(mod.Sub(a[t], b[t], q), pInv, pInvShoup, q)
		}
	}
	return out
}
