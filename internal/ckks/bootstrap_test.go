package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestChebyshevCoeffsNumeric(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(2*math.Pi*x) / (2 * math.Pi) }
	coeffs := ChebyshevCoeffs(func(tt float64) float64 { return f(6 * tt) }, -1, 1, 63)
	for _, y := range []float64{-5.9, -5, -1.01, 0.004, 3.99, 5.5, 5.9} {
		tt := y / 6
		got := EvalChebyshevDirect(coeffs, tt)
		want := f(y)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("cheb approx at y=%f: got %g want %g", y, got, want)
		}
	}
}

func TestChebDivideIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 20; trial++ {
		d := 8 + rng.Intn(56)
		g := 4 << rng.Intn(3) // 4, 8, or 16
		if g > d {
			g = 4
		}
		p := make([]float64, d+1)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		q, r := chebDivide(p, g)
		// Check p(t) == q(t)*T_g(t) + r(t) at sample points.
		for _, tt := range []float64{-0.9, -0.3, 0.1, 0.77} {
			lhs := EvalChebyshevDirect(p, tt)
			tg := math.Cos(float64(g) * math.Acos(tt))
			rhs := EvalChebyshevDirect(q, tt)*tg + EvalChebyshevDirect(r, tt)
			if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
				t.Fatalf("chebDivide identity failed: d=%d g=%d t=%f lhs=%g rhs=%g", d, g, tt, lhs, rhs)
			}
		}
	}
}

func TestEvalChebyshevHomomorphic(t *testing.T) {
	s := newTestSetup(t, 2, []int{})
	rng := rand.New(rand.NewSource(51))
	n := s.params.Slots()
	// Input values in [-1, 1].
	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 0)
	}
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	// A degree-7 polynomial fits the 5-level toy chain.
	coeffs := ChebyshevCoeffs(func(x float64) float64 { return math.Tanh(2 * x) }, -1, 1, 7)
	out, err := s.eval.EvalChebyshev(ct, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	got := s.encoder.Decode(s.dec.DecryptNew(out))
	for i := range values {
		want := EvalChebyshevDirect(coeffs, real(values[i]))
		if math.Abs(real(got[i])-want) > 1e-3 {
			t.Fatalf("slot %d: got %g want %g", i, real(got[i]), want)
		}
	}
}

func TestLinearTransformIdentity(t *testing.T) {
	s := newTestSetup(t, 1, []int{})
	n := s.params.Slots()
	rng := rand.New(rand.NewSource(52))
	values := randomComplex(rng, n, 1)
	lvl := s.params.MaxLevel()
	pt, _ := s.encoder.Encode(values, lvl, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	diags := map[int][]complex128{0: ones(n)}
	lt, err := NewLinearTransform(s.encoder, diags, lvl, float64(s.params.Q[lvl]))
	if err != nil {
		t.Fatal(err)
	}
	out := s.eval.Rescale(s.eval.LinearTransform(ct, lt))
	got := s.encoder.Decode(s.dec.DecryptNew(out))
	if e := maxErr(got, values); e > 1e-5 {
		t.Fatalf("identity transform error %g", e)
	}
}

func ones(n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestLinearTransformDense(t *testing.T) {
	// A random dense 16-diagonal matrix against plain evaluation.
	nDiags := 16
	rots := make([]int, 0)
	for b := 1; b < nDiags; b++ {
		rots = append(rots, b)
	}
	// n1 may group diagonals; add giant steps up to slots.
	s := newTestSetup(t, 2, allRotations(nDiags, 1<<9))
	n := s.params.Slots()
	_ = rots
	rng := rand.New(rand.NewSource(53))
	values := randomComplex(rng, n, 1)
	lvl := s.params.MaxLevel()
	pt, _ := s.encoder.Encode(values, lvl, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	diags := map[int][]complex128{}
	for k := 0; k < nDiags; k++ {
		diags[k] = randomComplex(rng, n, 1)
	}
	lt, err := NewLinearTransform(s.encoder, diags, lvl, float64(s.params.Q[lvl]))
	if err != nil {
		t.Fatal(err)
	}
	out := s.eval.Rescale(s.eval.LinearTransform(ct, lt))
	got := s.encoder.Decode(s.dec.DecryptNew(out))

	want := make([]complex128, n)
	for j := 0; j < n; j++ {
		for k := 0; k < nDiags; k++ {
			want[j] += diags[k][j] * values[(j+k)%n]
		}
	}
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("dense transform error %g", e)
	}
}

// allRotations returns every rotation either side might need for a BSGS
// transform with up to nDiags diagonals over n slots.
func allRotations(nDiags, n int) []int {
	set := map[int]bool{}
	for n1 := 1; n1 <= n; n1 <<= 1 {
		for b := 0; b < n1 && b < nDiags; b++ {
			set[b] = true
		}
		for g := 0; g*n1 < nDiags; g++ {
			set[g*n1] = true
		}
	}
	var out []int
	for r := range set {
		if r != 0 {
			out = append(out, r)
		}
	}
	return out
}

func TestLinearTransformErrors(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	if _, err := NewLinearTransform(s.encoder, map[int][]complex128{}, 1, 1024); err == nil {
		t.Fatal("expected error for empty diagonal map")
	}
	if _, err := NewLinearTransform(s.encoder, map[int][]complex128{0: make([]complex128, 3)}, 1, 1024); err == nil {
		t.Fatal("expected error for wrong diagonal length")
	}
}

// bootSetup builds a bootstrappable toy instance (LogN=10, insecure, for
// functional verification only).
func bootSetup(t testing.TB) (*testSetup, *Bootstrapper) {
	t.Helper()
	logQ := []int{55}
	for i := 0; i < 14; i++ {
		logQ = append(logQ, 45)
	}
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     logQ,
		LogP:     55,
		Dnum:     2,
		LogScale: 45,
		H:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 7001)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	encoder := NewEncoder(ctx)

	// Build the bootstrapper twice: first keyless to learn the rotations.
	probe := NewEvaluator(ctx, encoder, rlk, nil)
	bt0, err := NewBootstrapper(ctx, encoder, probe, DefaultBootstrapParams())
	if err != nil {
		t.Fatal(err)
	}
	// AllRotations covers both the staged default path and the dense
	// reference, so tests can toggle SetDenseTransforms on one key set.
	rtks := kg.GenRotationKeys(sk, bt0.AllRotations(), true)
	eval := NewEvaluator(ctx, encoder, rlk, rtks)
	bt, err := NewBootstrapper(ctx, encoder, eval, DefaultBootstrapParams())
	if err != nil {
		t.Fatal(err)
	}
	s := &testSetup{
		params: params, ctx: ctx, encoder: encoder, kg: kg, sk: sk,
		rlk: rlk, enc: NewEncryptorSK(ctx, sk, 7002), dec: NewDecryptor(ctx, sk), eval: eval,
	}
	return s, bt
}

func TestBootstrapRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping round trip is expensive; skipped with -short")
	}
	s, bt := bootSetup(t)
	rng := rand.New(rand.NewSource(54))
	n := s.params.Slots()
	values := randomComplex(rng, n, 0.7)

	// Encrypt directly at level 0: a fully exhausted ciphertext.
	pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.Level < 2 {
		t.Fatalf("bootstrap restored only %d levels", refreshed.Level)
	}
	got := s.encoder.Decode(s.dec.DecryptNew(refreshed))
	if e := maxErr(got, values); e > 2e-2 {
		t.Fatalf("bootstrap error %g (want < 2e-2)", e)
	}
	t.Logf("bootstrap: restored to level %d, max error %.3g, scale 2^%.2f",
		refreshed.Level, maxErr(got, values), math.Log2(refreshed.Scale))

	// The refreshed ciphertext must support further multiplications.
	sq := s.eval.Rescale(s.eval.Square(refreshed))
	got = s.encoder.Decode(s.dec.DecryptNew(sq))
	want := make([]complex128, n)
	for i := range want {
		want[i] = values[i] * values[i]
	}
	if e := maxErr(got, want); e > 5e-2 {
		t.Fatalf("post-bootstrap square error %g", e)
	}
}

func TestBootstrapRejectsNonZeroLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("uses the bootstrapping setup; skipped with -short")
	}
	s, bt := bootSetup(t)
	pt, _ := s.encoder.Encode([]complex128{0.1}, 1, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	if _, err := bt.Bootstrap(ct); err == nil {
		t.Fatal("expected error for level-1 input")
	}
}

func TestBootstrapParamsBudget(t *testing.T) {
	bp := DefaultBootstrapParams()
	if got := bp.MinLevels(); got != 13 {
		t.Fatalf("MinLevels=%d want 13 (2-stage CtS + 1 norm + 7 EvalMod + 2-stage StC + 1 margin)", got)
	}
	dense := BootstrapParams{K: bp.K, SineDegree: bp.SineDegree}
	if got := dense.MinLevels(); got != 12 {
		t.Fatalf("dense MinLevels=%d want 12 (2 CtS + 1 norm + 7 EvalMod + 1 StC + 1 rescale)", got)
	}
	// A chain shorter than the budget must be rejected.
	params, err := NewParameters(ParametersLiteral{
		LogN: 10, LogQ: []int{55, 45, 45, 45}, LogP: 55, Dnum: 1, LogScale: 45, H: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := NewContext(params)
	enc := NewEncoder(ctx)
	ev := NewEvaluator(ctx, enc, nil, nil)
	if _, err := NewBootstrapper(ctx, enc, ev, bp); err == nil {
		t.Fatal("expected error for insufficient levels")
	}
}

func TestModRaisePreservesMessage(t *testing.T) {
	if testing.Short() {
		t.Skip("uses the bootstrapping setup; skipped with -short")
	}
	s, bt := bootSetup(t)
	rng := rand.New(rand.NewSource(55))
	values := randomComplex(rng, s.params.Slots(), 0.7)
	pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	raised := bt.modRaise(bt.eval, ct)
	if raised.Level != s.params.MaxLevel() {
		t.Fatalf("modRaise level=%d want %d", raised.Level, s.params.MaxLevel())
	}
	// Decrypting the raised ct and reducing coefficients mod q0 must give
	// back the message: decode after dropping to level 0.
	raised.DropLevel(0)
	got := s.encoder.Decode(s.dec.DecryptNew(raised))
	if e := maxErr(got, values); e > 1e-6 {
		t.Fatalf("modRaise distorted the message: %g", e)
	}
}

func TestConjugateSplitIdentity(t *testing.T) {
	// (v+conj)/2 + i·(conj-v)·i/2 must reconstruct v; checked homomorphically.
	s := newTestSetup(t, 2, []int{})
	rng := rand.New(rand.NewSource(56))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	conj := s.eval.Conjugate(ct)
	ctR := s.eval.Add(ct, conj)
	ctR.Scale *= 2
	ctI := s.eval.MulByI(s.eval.Sub(conj, ct))
	ctI.Scale *= 2
	re := s.encoder.Decode(s.dec.DecryptNew(ctR))
	im := s.encoder.Decode(s.dec.DecryptNew(ctI))
	for i := range values {
		if math.Abs(real(re[i])-real(values[i])) > 1e-5 ||
			math.Abs(real(im[i])-imag(values[i])) > 1e-5 {
			t.Fatalf("slot %d: split (%v, %v) vs %v", i, re[i], im[i], values[i])
		}
	}
	recon := s.eval.Add(ctR, s.eval.MulByI(ctI))
	got := s.encoder.Decode(s.dec.DecryptNew(recon))
	if e := maxErr(got, values); e > 1e-5 {
		t.Fatalf("conjugate split reconstruction error %g", e)
	}
}

func TestBootstrapPrecisionStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; skipped with -short")
	}
	s, bt := bootSetup(t)
	rng := rand.New(rand.NewSource(57))
	values := randomComplex(rng, s.params.Slots(), 0.5)
	pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	refreshed, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := s.encoder.Decode(s.dec.DecryptNew(refreshed))
	var sum float64
	for i := range values {
		sum += cmplx.Abs(got[i] - values[i])
	}
	mean := sum / float64(len(values))
	t.Logf("bootstrap mean error %.3g (≈ %.1f bits)", mean, -math.Log2(mean))
	if mean > 5e-3 {
		t.Fatalf("mean bootstrap error %g too large", mean)
	}
}
