package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// testSetup bundles everything needed to exercise the scheme.
type testSetup struct {
	params  Parameters
	ctx     *Context
	encoder *Encoder
	kg      *KeyGenerator
	sk      *SecretKey
	pk      *PublicKey
	rlk     *SwitchingKey
	enc     *Encryptor
	dec     *Decryptor
	eval    *Evaluator
}

func newTestSetup(t testing.TB, dnum int, rotations []int) *testSetup {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40, 40, 40},
		LogP:     51,
		Dnum:     dnum,
		LogScale: 40,
		H:        64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 1001)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var rtks *RotationKeySet
	if rotations != nil {
		rtks = kg.GenRotationKeys(sk, rotations, true)
	}
	encoder := NewEncoder(ctx)
	return &testSetup{
		params:  params,
		ctx:     ctx,
		encoder: encoder,
		kg:      kg,
		sk:      sk,
		pk:      pk,
		rlk:     rlk,
		enc:     NewEncryptorSK(ctx, sk, 2002),
		dec:     NewDecryptor(ctx, sk),
		eval:    NewEvaluator(ctx, encoder, rlk, rtks),
	}
}

func randomComplex(rng *rand.Rand, n int, bound float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex((2*rng.Float64()-1)*bound, (2*rng.Float64()-1)*bound)
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestParametersValidate(t *testing.T) {
	good, err := NewParameters(ParametersLiteral{
		LogN: 10, LogQ: []int{50, 40, 40}, LogP: 51, Dnum: 1, LogScale: 40, H: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := good.Alpha(); got != 3 {
		t.Fatalf("Alpha=%d want 3", got)
	}
	if got := good.Beta(2); got != 1 {
		t.Fatalf("Beta(2)=%d want 1", got)
	}
	if good.LogQP() < 280 || good.LogQP() > 290 {
		t.Fatalf("LogQP=%.1f outside expectation", good.LogQP())
	}

	bad := good
	bad.Dnum = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected Dnum=0 to fail validation")
	}
	bad = good
	bad.P = bad.P[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("expected wrong special-prime count to fail validation")
	}
	bad = good
	bad.H = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected H=0 to fail validation")
	}
}

func TestParametersBetaDnum(t *testing.T) {
	p, err := NewParameters(ParametersLiteral{
		LogN: 10, LogQ: []int{50, 40, 40, 40, 40, 40}, LogP: 51, Dnum: 3, LogScale: 40, H: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Alpha(); got != 2 {
		t.Fatalf("Alpha=%d want 2", got)
	}
	// Level 5 spans all 3 groups; level 1 only the first.
	if got := p.Beta(5); got != 3 {
		t.Fatalf("Beta(5)=%d want 3", got)
	}
	if got := p.Beta(1); got != 1 {
		t.Fatalf("Beta(1)=%d want 1", got)
	}
	if got := p.Beta(2); got != 2 {
		t.Fatalf("Beta(2)=%d want 2", got)
	}
}

func TestSpecialFFTRoundTrip(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(30))
	vals := randomComplex(rng, s.params.Slots(), 1)
	orig := append([]complex128(nil), vals...)
	s.encoder.fftSpecialInv(vals)
	s.encoder.fftSpecial(vals)
	if e := maxErr(vals, orig); e > 1e-9 {
		t.Fatalf("special FFT roundtrip error %g", e)
	}
}

func TestEncodeDecode(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(31))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, err := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	got := s.encoder.Decode(pt)
	if e := maxErr(got, values); e > 1e-8 {
		t.Fatalf("encode/decode error %g", e)
	}
}

func TestEncodeReplicates(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	vals := []complex128{1 + 2i, 3 - 4i}
	pt, err := s.encoder.Encode(vals, s.params.MaxLevel(), s.params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	got := s.encoder.Decode(pt)
	for i := range got {
		if cmplx.Abs(got[i]-vals[i%2]) > 1e-8 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], vals[i%2])
		}
	}
	if _, err := s.encoder.Encode(nil, 0, s.params.Scale); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := s.encoder.Encode(make([]complex128, 3), 0, s.params.Scale); err == nil {
		t.Fatal("expected error for non-divisor length")
	}
}

func TestEncryptDecryptSK(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(32))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	got := s.encoder.Decode(s.dec.DecryptNew(ct))
	if e := maxErr(got, values); e > 1e-6 {
		t.Fatalf("sk encrypt/decrypt error %g", e)
	}
}

func TestEncryptDecryptPK(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(33))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	encPK := NewEncryptorPK(s.ctx, s.pk, 3003)
	ct, err := encPK.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	got := s.encoder.Decode(s.dec.DecryptNew(ct))
	if e := maxErr(got, values); e > 1e-5 {
		t.Fatalf("pk encrypt/decrypt error %g", e)
	}
}

func TestHAdd(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(34))
	v0 := randomComplex(rng, s.params.Slots(), 1)
	v1 := randomComplex(rng, s.params.Slots(), 1)
	pt0, _ := s.encoder.Encode(v0, s.params.MaxLevel(), s.params.Scale)
	pt1, _ := s.encoder.Encode(v1, s.params.MaxLevel(), s.params.Scale)
	ct0, _ := s.enc.EncryptNew(pt0)
	ct1, _ := s.enc.EncryptNew(pt1)
	sum := s.eval.Add(ct0, ct1)
	diff := s.eval.Sub(ct0, ct1)
	neg := s.eval.Neg(ct0)

	want := make([]complex128, len(v0))
	for i := range want {
		want[i] = v0[i] + v1[i]
	}
	if e := maxErr(s.encoder.Decode(s.dec.DecryptNew(sum)), want); e > 1e-6 {
		t.Fatalf("HAdd error %g", e)
	}
	for i := range want {
		want[i] = v0[i] - v1[i]
	}
	if e := maxErr(s.encoder.Decode(s.dec.DecryptNew(diff)), want); e > 1e-6 {
		t.Fatalf("HSub error %g", e)
	}
	for i := range want {
		want[i] = -v0[i]
	}
	if e := maxErr(s.encoder.Decode(s.dec.DecryptNew(neg)), want); e > 1e-6 {
		t.Fatalf("Neg error %g", e)
	}
}

func TestHMultRescale(t *testing.T) {
	for _, dnum := range []int{1, 2, 3, 6} {
		s := newTestSetup(t, dnum, nil)
		rng := rand.New(rand.NewSource(35))
		v0 := randomComplex(rng, s.params.Slots(), 1)
		v1 := randomComplex(rng, s.params.Slots(), 1)
		pt0, _ := s.encoder.Encode(v0, s.params.MaxLevel(), s.params.Scale)
		pt1, _ := s.encoder.Encode(v1, s.params.MaxLevel(), s.params.Scale)
		ct0, _ := s.enc.EncryptNew(pt0)
		ct1, _ := s.enc.EncryptNew(pt1)
		prod := s.eval.MulRelin(ct0, ct1)
		prod = s.eval.Rescale(prod)
		if prod.Level != s.params.MaxLevel()-1 {
			t.Fatalf("dnum=%d: level after rescale = %d", dnum, prod.Level)
		}
		want := make([]complex128, len(v0))
		for i := range want {
			want[i] = v0[i] * v1[i]
		}
		got := s.encoder.Decode(s.dec.DecryptNew(prod))
		if e := maxErr(got, want); e > 1e-4 {
			t.Fatalf("dnum=%d: HMult error %g", dnum, e)
		}
	}
}

func TestHMultChain(t *testing.T) {
	// Multiply down the entire modulus chain: x^(2^L) of |x|<1 values.
	s := newTestSetup(t, 2, nil)
	rng := rand.New(rand.NewSource(36))
	v := randomComplex(rng, s.params.Slots(), 0.9)
	pt, _ := s.encoder.Encode(v, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	want := append([]complex128(nil), v...)
	for ct.Level > 0 {
		ct = s.eval.Rescale(s.eval.Square(ct))
		for i := range want {
			want[i] *= want[i]
		}
	}
	got := s.encoder.Decode(s.dec.DecryptNew(ct))
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("deep mult chain error %g", e)
	}
}

func TestRotationDirection(t *testing.T) {
	// Pins the convention: Rotate(ct, r) shifts the message left by r:
	// out_j = in_{j+r mod n} (the paper's HRot, Section 2.3).
	s := newTestSetup(t, 1, []int{1, 3})
	n := s.params.Slots()
	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(float64(i), 0)
	}
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	for _, r := range []int{1, 3} {
		rot := s.eval.Rotate(ct, r)
		got := s.encoder.Decode(s.dec.DecryptNew(rot))
		for j := 0; j < n; j++ {
			want := values[(j+r)%n]
			if cmplx.Abs(got[j]-want) > 1e-4 {
				t.Fatalf("Rotate(%d): slot %d = %v, want %v", r, j, got[j], want)
			}
		}
	}
}

func TestRotateNegativeAndZero(t *testing.T) {
	s := newTestSetup(t, 1, []int{-2})
	n := s.params.Slots()
	rng := rand.New(rand.NewSource(37))
	values := randomComplex(rng, n, 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	rot := s.eval.Rotate(ct, -2)
	got := s.encoder.Decode(s.dec.DecryptNew(rot))
	for j := 0; j < n; j++ {
		want := values[((j-2)%n+n)%n]
		if cmplx.Abs(got[j]-want) > 1e-4 {
			t.Fatalf("Rotate(-2): slot %d = %v, want %v", j, got[j], want)
		}
	}
	same := s.eval.Rotate(ct, 0)
	got = s.encoder.Decode(s.dec.DecryptNew(same))
	if e := maxErr(got, values); e > 1e-5 {
		t.Fatalf("Rotate(0) error %g", e)
	}
}

func TestConjugate(t *testing.T) {
	s := newTestSetup(t, 2, []int{})
	rng := rand.New(rand.NewSource(38))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	conj := s.eval.Conjugate(ct)
	got := s.encoder.Decode(s.dec.DecryptNew(conj))
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = cmplx.Conj(values[i])
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("Conjugate error %g", e)
	}
}

func TestMulByI(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(39))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	cti := s.eval.MulByI(ct)
	got := s.encoder.Decode(s.dec.DecryptNew(cti))
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = values[i] * 1i
	}
	if e := maxErr(got, want); e > 1e-6 {
		t.Fatalf("MulByI error %g", e)
	}
}

func TestAddConstMulConst(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(40))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	c := 0.75 - 1.25i
	added := s.eval.AddConst(ct, c)
	got := s.encoder.Decode(s.dec.DecryptNew(added))
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = values[i] + c
	}
	if e := maxErr(got, want); e > 1e-6 {
		t.Fatalf("AddConst error %g", e)
	}

	qTop := float64(s.params.Q[ct.Level])
	mult := s.eval.MulConst(ct, c, qTop)
	mult = s.eval.Rescale(mult)
	got = s.encoder.Decode(s.dec.DecryptNew(mult))
	for i := range want {
		want[i] = values[i] * c
	}
	if e := maxErr(got, want); e > 1e-5 {
		t.Fatalf("MulConst error %g", e)
	}
}

func TestMulPlain(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(41))
	values := randomComplex(rng, s.params.Slots(), 1)
	weights := randomComplex(rng, s.params.Slots(), 1)
	lvl := s.params.MaxLevel()
	pt, _ := s.encoder.Encode(values, lvl, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	wpt, _ := s.encoder.Encode(weights, lvl, float64(s.params.Q[lvl]))
	prod := s.eval.Rescale(s.eval.MulPlain(ct, wpt))
	got := s.encoder.Decode(s.dec.DecryptNew(prod))
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = values[i] * weights[i]
	}
	if e := maxErr(got, want); e > 1e-5 {
		t.Fatalf("MulPlain error %g", e)
	}
}

func TestAddPlain(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(42))
	values := randomComplex(rng, s.params.Slots(), 1)
	deltas := randomComplex(rng, s.params.Slots(), 1)
	lvl := s.params.MaxLevel()
	pt, _ := s.encoder.Encode(values, lvl, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	dpt, _ := s.encoder.Encode(deltas, lvl, s.params.Scale)
	sum := s.eval.AddPlain(ct, dpt)
	got := s.encoder.Decode(s.dec.DecryptNew(sum))
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = values[i] + deltas[i]
	}
	if e := maxErr(got, want); e > 1e-6 {
		t.Fatalf("AddPlain error %g", e)
	}
}

func TestDropLevel(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(43))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	ct.DropLevel(1)
	got := s.encoder.Decode(s.dec.DecryptNew(ct))
	if e := maxErr(got, values); e > 1e-6 {
		t.Fatalf("DropLevel changed the message: %g", e)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DropLevel upward should panic")
		}
	}()
	ct.DropLevel(5)
}

func TestScaleMismatchPanics(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	pt, _ := s.encoder.Encode([]complex128{1}, s.params.MaxLevel(), s.params.Scale)
	ct0, _ := s.enc.EncryptNew(pt)
	ct1 := ct0.CopyNew(s.ctx)
	ct1.Scale = ct0.Scale * 2
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched scales should panic")
		}
	}()
	s.eval.Add(ct0, ct1)
}

func TestSwitchingKeyBytes(t *testing.T) {
	s := newTestSetup(t, 2, nil)
	// 2·N·(k+L+1)·dnum·8 bytes (Section 2.5 item ii).
	p := s.params
	want := int64(2) * int64(p.N()) * int64(len(p.Q)+len(p.P)) * int64(p.Dnum) * 8
	if got := s.rlk.Bytes(); got != want {
		t.Fatalf("SwitchingKey.Bytes=%d want %d", got, want)
	}
}

func TestNoiseBudget(t *testing.T) {
	// The decryption error of a fresh sk-encryption must be far below the
	// scale: relative error under 2^-25 at Δ=2^40 with σ=3.2.
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(44))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	got := s.encoder.Decode(s.dec.DecryptNew(ct))
	if e := maxErr(got, values); e > math.Exp2(-25) {
		t.Fatalf("fresh encryption error %g exceeds 2^-25", e)
	}
}
