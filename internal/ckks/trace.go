package ckks

import "bts/internal/telemetry"

// Interned span names for the evaluator's instrumented regions. Interning
// happens once at package init; recording a span stores only the uint32
// handle.
var (
	spanKeySwitch  = telemetry.Name("ckks.keyswitch")
	spanMulRelin   = telemetry.Name("ckks.mulrelin")
	spanRotate     = telemetry.Name("ckks.rotate")
	spanRescale    = telemetry.Name("ckks.rescale")
	spanDecompose  = telemetry.Name("ckks.decompose")
	spanHoistedRot = telemetry.Name("ckks.rotate_hoisted")
	spanLinear     = telemetry.Name("ckks.linear_transform")
	spanStage      = telemetry.Name("ckks.transform_stage")
	spanChebyshev  = telemetry.Name("ckks.eval_chebyshev")

	spanBootModRaise    = telemetry.Name("bootstrap.modraise")
	spanBootCoeffToSlot = telemetry.Name("bootstrap.coeff_to_slot")
	spanBootEvalMod     = telemetry.Name("bootstrap.eval_mod")
	spanBootSlotToCoeff = telemetry.Name("bootstrap.slot_to_coeff")
)

// WithTrace returns a shallow copy of the evaluator that records spans into
// tr, parented under the given span ID (0 = trace root). The copy shares the
// context, keys, op counters and noise floor with the receiver, so its work
// still lands in the shared tallies.
//
// Unlike the shared receiver, the traced copy is NOT safe for concurrent use:
// nested spans thread a mutable current-parent field through the evaluator,
// so a traced evaluator must stay private to one goroutine (in practice, one
// served job). The untraced original never touches that field and remains
// freely shareable.
func (ev *Evaluator) WithTrace(tr telemetry.Trace, parent uint64) *Evaluator {
	cp := *ev
	cp.tr = tr
	cp.cur = parent
	return &cp
}

// WithNoiseFloor returns a shallow copy of the evaluator whose margin
// observations feed nf instead of the receiver's floor (nil disables
// observation). Composes with WithTrace; the same single-goroutine caveat
// applies to the combined copy only if it is also traced.
func (ev *Evaluator) WithNoiseFloor(nf *NoiseFloor) *Evaluator {
	cp := *ev
	cp.noise = nf
	return &cp
}

// SetTraceParent re-parents spans subsequently opened by this (traced,
// job-private) evaluator — the serving scheduler points the evaluator at each
// request op's own span before executing it.
func (ev *Evaluator) SetTraceParent(parent uint64) { ev.cur = parent }

// begin opens a span under the evaluator's current parent and makes it the
// parent of nested spans. On an untraced evaluator it returns an inert span
// and touches nothing — one nil check per instrumented op.
func (ev *Evaluator) begin(name uint32) telemetry.Span {
	sp := ev.tr.Span(name, ev.cur)
	if sp.Recording() {
		ev.cur = sp.ID()
	}
	return sp
}

// endSpan closes a span opened by begin, restoring the parent chain. When ct
// is non-nil the result's level and noise margin ride along as attributes.
func (ev *Evaluator) endSpan(sp *telemetry.Span, ct *Ciphertext) {
	if !sp.Recording() {
		return
	}
	if ct != nil {
		sp.SetLevel(ct.Level)
		sp.SetMarginBits(ev.ctx.NoiseMargin(ct))
	}
	ev.cur = sp.Parent()
	sp.End()
}
