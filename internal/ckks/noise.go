package ckks

import (
	"math"
	"sync/atomic"
)

// NoiseMargin returns the ciphertext's modulus headroom in bits:
// log2(q_0···q_level) − log2(scale). This is the budget CKKS actually spends —
// each multiply doubles the scale and each rescale burns one prime — so the
// margin falls monotonically along an op chain and a margin near zero means
// decryption is about to wrap modulo Q (the ciphertext must be bootstrapped
// or discarded). It is a deterministic scale-vs-modulus estimate, not a
// measurement of the (much smaller) LWE error term.
func (ctx *Context) NoiseMargin(ct *Ciphertext) float64 {
	return ctx.cumLogQ[ct.Level] - math.Log2(ct.Scale)
}

// NoiseFloor tracks the minimum noise margin observed across a stream of
// scale-changing ops (lock-free CAS-min over float bits). One floor is shared
// by every evaluator copy observing into it, so a server can keep one floor
// per session and read the worst headroom any of that session's jobs reached.
// The zero value is unusable — construct with NewNoiseFloor.
type NoiseFloor struct {
	bits atomic.Uint64 // float64 bits of the running minimum
}

// NewNoiseFloor returns a floor initialized to +Inf (no observations).
func NewNoiseFloor() *NoiseFloor {
	nf := &NoiseFloor{}
	nf.bits.Store(math.Float64bits(math.Inf(1)))
	return nf
}

// Observe folds one margin into the running minimum.
func (nf *NoiseFloor) Observe(margin float64) {
	for {
		old := nf.bits.Load()
		if math.Float64frombits(old) <= margin {
			return
		}
		if nf.bits.CompareAndSwap(old, math.Float64bits(margin)) {
			return
		}
	}
}

// MinBits returns the minimum observed margin (+Inf when nothing has been
// observed yet).
func (nf *NoiseFloor) MinBits() float64 { return math.Float64frombits(nf.bits.Load()) }

// Reset clears the floor back to +Inf.
func (nf *NoiseFloor) Reset() { nf.bits.Store(math.Float64bits(math.Inf(1))) }

// observeMargin feeds a scale-changing op's output into the evaluator's noise
// floor, if one is attached (one nil check otherwise).
func (ev *Evaluator) observeMargin(ct *Ciphertext) {
	if nf := ev.noise; nf != nil {
		nf.Observe(ev.ctx.NoiseMargin(ct))
	}
}
