package ckks

import (
	"fmt"

	"bts/internal/ring"
)

// This file implements hoisted key-switching for rotation-heavy workloads
// (the optimization FAB exploits for bootstrapping's linear-transform
// phases, and HS18 introduced for HElib): when many rotations of the *same*
// ciphertext are needed — every baby step of a BSGS linear transform, i.e.
// the bulk of CoeffToSlot/SlotToCoeff — the expensive decomposition pipeline
// (iNTT → ModUp/BConv → NTT per β slice, Fig. 3a) is run once and reused.
//
// The factorization is exact: the Galois automorphism is a signed
// coefficient permutation, ModUp is per-coefficient, and the centered BConv
// (ring.BasisExtender) is negation-equivariant, so permuting the decomposed
// slices in the NTT domain (a pure index permutation) is bit-identical to
// decomposing the permuted ciphertext. A hoisted rotation therefore costs
// one gather-MAC against the rotation key — the permutation is fused into
// the multiply-accumulate's read index, never materialized — and one
// ModDown; the NTT/iNTT/BConv work, which dominates, is paid once per
// ciphertext instead of once per rotation.
//
// Cost model (β = decomposition slices at the current level):
//
//	naive n rotations:   n·(iNTT + β·(BConv + 2 NTT) + β·MAC + 2 ModDown)
//	hoisted n rotations: 1·(iNTT + β·(BConv + 2 NTT)) + n·(β·gatherMAC + 2 ModDown)
//
// On top of single hoisted rotations, keySwitchHoistedLazy exposes the
// *double-hoisted* form used by LinearTransform: the MAC accumulators stay
// in the extended QP basis so baby-step products can be summed there, with
// one deferred ModDown per ciphertext component per giant step instead of
// one per rotation.

// HoistedDecomposition is the reusable key-switch decomposition of one
// ciphertext's a-polynomial: per decomposition slice j, the ModUp'd residues
// over the active q-basis and the special p-basis, both in the NTT domain.
// It is scratch borrowed from the ring pools — callers must Release it when
// every dependent rotation has been applied, and must not use it after the
// source ciphertext's level changes.
type HoistedDecomposition struct {
	ctx   *Context
	level int
	beta  int
	q     []*ring.Poly // per slice, NTT domain, q-basis rows 0..level
	p     []*ring.Poly // per slice, NTT domain, full p-basis
}

// Level returns the ciphertext level the decomposition was taken at.
func (hd *HoistedDecomposition) Level() int { return hd.level }

// Release returns the decomposition's scratch polynomials to the ring pools.
// The decomposition must not be used afterwards.
func (hd *HoistedDecomposition) Release() {
	for _, p := range hd.q {
		hd.ctx.RingQ.PutPoly(p)
	}
	for _, p := range hd.p {
		hd.ctx.RingP.PutPoly(p)
	}
	hd.q, hd.p = nil, nil
}

// DecomposeNTT runs the decomposition half of the key-switch pipeline on
// ct.C1 — per slice: iNTT, ModUp to the rest of the QP basis, NTT — and
// returns it for reuse across many rotations of ct. See RotateHoisted for
// the common wrapper; LinearTransform consumes the decomposition directly.
func (ev *Evaluator) DecomposeNTT(ct *Ciphertext) *HoistedDecomposition {
	return ev.decomposeNTT(ct.C1, ct.Level)
}

// decomposeNTT is DecomposeNTT on a bare polynomial (NTT domain, level lvl).
func (ev *Evaluator) decomposeNTT(d *ring.Poly, lvl int) *HoistedDecomposition {
	ev.counters.Decompose.Add(1)
	sp := ev.begin(spanDecompose)
	sp.SetLevel(lvl)
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lp := rp.MaxLevel()
	beta := ctx.Params.Beta(lvl)
	hd := &HoistedDecomposition{
		ctx:   ctx,
		level: lvl,
		beta:  beta,
		q:     make([]*ring.Poly, 0, beta),
		p:     make([]*ring.Poly, 0, beta),
	}

	dCoeff := rq.GetPolyNoZero()
	rq.CopyLevel(dCoeff, d, lvl)
	rq.INTT(dCoeff, lvl)

	// Each slice polynomial is fully overwritten by modUpSlice (copied group
	// rows + BConv output rows), so the slices skip the zeroing pass; dst is
	// the BConv target-row view, reused across slices. The per-slice body is
	// shared with the streaming keySwitch, which is what keeps hoisted and
	// naive outputs bit-identical.
	dst := make([][]uint64, 0, lvl+1+lp)
	for j := 0; j < beta; j++ {
		tmpQ := rq.GetPolyNoZero()
		tmpP := rp.GetPolyNoZero()
		dst = ev.modUpSlice(j, lvl, dCoeff, tmpQ, tmpP, dst)
		hd.q = append(hd.q, tmpQ)
		hd.p = append(hd.p, tmpP)
	}
	rq.PutPoly(dCoeff)
	ev.endSpan(&sp, nil)
	return hd
}

// keySwitchHoistedLazy applies the automorphism X→X^g to every decomposed
// slice and multiply-accumulates against the switching key, leaving the
// result in the extended QP basis: accQ0/accP0 and accQ1/accP1 are
// *overwritten* with the two key components' accumulators *before* the final
// division by P (callers may pass unzeroed scratch). Callers either hand
// them to modDown (single hoisted rotation) or keep summing baby-step
// products in the extended basis and ModDown once per giant step (double
// hoisting).
//
// The slice permutation is fused into the MAC gather
// (ring.MulGatherAndAddLazy reads each slice through the automorphism index
// table), so no permuted copy of the extended basis is ever materialized;
// and the per-slice products accumulate as unreduced 128-bit sums
// (ring.Acc128) with a single fused Barrett+REDC reduction per coefficient
// at the end (ring.ReduceAcc — the M-form product sums carry an R² factor
// the REDC strips), collapsing β modular-reduction passes into one. Both changes are exact —
// the congruence class of a sum does not depend on when reductions happen —
// so outputs remain bit-identical to the streaming keySwitch pipeline.
// Slice counts beyond the rings' lazy overflow budget (unreachable with
// supported dnum and ≤62-bit moduli, but guarded anyway) are folded in
// chunks. g = 1 skips the permutation (plain key-switching reuses this
// path).
func (ev *Evaluator) keySwitchHoistedLazy(g uint64, hd *HoistedDecomposition, swk *SwitchingKey, accQ0, accP0, accQ1, accP1 *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lvl, lp := hd.level, rp.MaxLevel()
	if g != 1 {
		ev.counters.HoistedRot.Add(1)
	}
	var tableQ, tableP []int
	if g != 1 {
		tableQ = rq.AutoIndexNTT(g)
		tableP = rp.AutoIndexNTT(g)
	}
	budget := rq.LazyMACBudget()
	if pb := rp.LazyMACBudget(); pb < budget {
		budget = pb
	}
	mergeQ := rq.GetPolyNoZero()
	mergeP := rp.GetPolyNoZero()
	for start := 0; start < hd.beta; start += budget {
		end := start + budget
		if end > hd.beta {
			end = hd.beta
		}
		a0Q := rq.GetAcc(lvl)
		a1Q := rq.GetAcc(lvl)
		a0P := rp.GetAcc(lp)
		a1P := rp.GetAcc(lp)
		for j := start; j < end; j++ {
			sq, sp := hd.q[j], hd.p[j]
			// Multiply-accumulate with the evk slice (element-wise, Fig. 3a),
			// gathering through the automorphism table.
			if g != 1 {
				rq.MulGatherAndAddLazy(sq, tableQ, swk.Value[j][0].Q, a0Q, lvl)
				rp.MulGatherAndAddLazy(sp, tableP, swk.Value[j][0].P, a0P, lp)
				rq.MulGatherAndAddLazy(sq, tableQ, swk.Value[j][1].Q, a1Q, lvl)
				rp.MulGatherAndAddLazy(sp, tableP, swk.Value[j][1].P, a1P, lp)
			} else {
				rq.MulCoeffsAndAddLazy(sq, swk.Value[j][0].Q, a0Q, lvl)
				rp.MulCoeffsAndAddLazy(sp, swk.Value[j][0].P, a0P, lp)
				rq.MulCoeffsAndAddLazy(sq, swk.Value[j][1].Q, a1Q, lvl)
				rp.MulCoeffsAndAddLazy(sp, swk.Value[j][1].P, a1P, lp)
			}
		}
		if start == 0 {
			rq.ReduceAcc(a0Q, accQ0, lvl)
			rq.ReduceAcc(a1Q, accQ1, lvl)
			rp.ReduceAcc(a0P, accP0, lp)
			rp.ReduceAcc(a1P, accP1, lp)
		} else {
			rq.ReduceAcc(a0Q, mergeQ, lvl)
			rq.Add(accQ0, mergeQ, accQ0, lvl)
			rq.ReduceAcc(a1Q, mergeQ, lvl)
			rq.Add(accQ1, mergeQ, accQ1, lvl)
			rp.ReduceAcc(a0P, mergeP, lp)
			rp.Add(accP0, mergeP, accP0, lp)
			rp.ReduceAcc(a1P, mergeP, lp)
			rp.Add(accP1, mergeP, accP1, lp)
		}
		rp.PutAcc(a1P)
		rp.PutAcc(a0P)
		rq.PutAcc(a1Q)
		rq.PutAcc(a0Q)
	}
	rp.PutPoly(mergeP)
	rq.PutPoly(mergeQ)
}

// keySwitchHoisted is the eager form: MAC against the key under the
// automorphism g, then ModDown both components into (ks0, ks1).
func (ev *Evaluator) keySwitchHoisted(g uint64, hd *HoistedDecomposition, swk *SwitchingKey, ks0, ks1 *ring.Poly) {
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lvl := hd.level
	// keySwitchHoistedLazy overwrites its accumulator outputs, so the
	// scratch skips the zeroing pass.
	accQ0 := rq.GetPolyNoZero()
	accQ1 := rq.GetPolyNoZero()
	accP0 := rp.GetPolyNoZero()
	accP1 := rp.GetPolyNoZero()
	ev.keySwitchHoistedLazy(g, hd, swk, accQ0, accP0, accQ1, accP1)
	ev.modDown(accQ0, accP0, lvl, ks0)
	ev.modDown(accQ1, accP1, lvl, ks1)
	rp.PutPoly(accP1)
	rp.PutPoly(accP0)
	rq.PutPoly(accQ1)
	rq.PutPoly(accQ0)
}

// rotationKey returns the switching key for the Galois element g, panicking
// with the same diagnostics as the naive rotation path.
func (ev *Evaluator) rotationKey(g uint64) *SwitchingKey {
	if ev.rtks == nil {
		panic("ckks: rotation without rotation keys")
	}
	swk, ok := ev.rtks.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: missing rotation key for Galois element %d", g))
	}
	return swk
}

// RotateHoisted returns HRot(ct, r) for every rotation amount in rotations,
// decomposing ct once and reusing the decomposition across all of them.
// Each output is bit-identical to the corresponding Rotate(ct, r) call;
// duplicate amounts map to a single result. Outputs are pooled ciphertexts —
// callers done with them may return each via Context.PutCiphertext.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rotations []int) map[int]*Ciphertext {
	sp := ev.begin(spanHoistedRot)
	defer ev.endSpan(&sp, nil)
	rq := ev.ctx.RingQ
	// Validate every key before borrowing any scratch, so a missing key
	// panics without leaking pool objects.
	for _, r := range rotations {
		if g := rq.GaloisElement(r); g != 1 {
			ev.rotationKey(g)
		}
	}
	hd := ev.DecomposeNTT(ct)
	defer hd.Release()
	out := make(map[int]*Ciphertext, len(rotations))
	for _, r := range rotations {
		if _, done := out[r]; done {
			continue
		}
		out[r] = ev.rotateHoisted(ct, r, hd)
	}
	return out
}

// RotateWithDecomposition applies a single rotation of ct through a prepared
// decomposition (DecomposeNTT of the same ciphertext, which must still be at
// the decomposition's level). The output is bit-identical to Rotate(ct, r).
// This is the entry point for callers that manage decomposition reuse
// themselves — the serving scheduler shares one decomposition across every
// rotation fan of a batch that reads the same ciphertext register, where
// RotateHoisted's one-call-per-fan shape would rebuild it per job. Missing
// rotation keys panic with the same diagnostics as Rotate.
func (ev *Evaluator) RotateWithDecomposition(ct *Ciphertext, r int, hd *HoistedDecomposition) *Ciphertext {
	if hd.level != ct.Level {
		panic(fmt.Sprintf("ckks: decomposition at level %d applied to ciphertext at level %d", hd.level, ct.Level))
	}
	if g := ev.ctx.RingQ.GaloisElement(r); g != 1 {
		ev.rotationKey(g)
	}
	return ev.rotateHoisted(ct, r, hd)
}

// rotateHoisted applies one rotation using a prepared decomposition of ct.
func (ev *Evaluator) rotateHoisted(ct *Ciphertext, r int, hd *HoistedDecomposition) *Ciphertext {
	rq := ev.ctx.RingQ
	g := rq.GaloisElement(r)
	if g == 1 {
		return ev.ctx.copyCiphertextPooled(ct)
	}
	swk := ev.rotationKey(g)
	lvl := hd.level
	ks0 := rq.GetPolyNoZero()
	ks1 := rq.GetPolyNoZero()
	ev.keySwitchHoisted(g, hd, swk, ks0, ks1)
	rb := rq.GetPolyNoZero()
	rq.AutomorphismNTT(ct.C0, g, rb, lvl)
	out := ev.ctx.getCiphertextNoZero(lvl, ct.Scale)
	rq.Add(rb, ks0, out.C0, lvl)
	rq.CopyLevel(out.C1, ks1, lvl)
	rq.PutPoly(rb)
	rq.PutPoly(ks1)
	rq.PutPoly(ks0)
	return out
}
