package ckks

import (
	"fmt"
	"math/rand"

	"bts/internal/ring"
)

// PolyQP is a polynomial with residues over both the q-chain (Q) and the
// special p-chain (P) — the representation of evaluation keys, which live in
// R_PQ (Section 2.3).
type PolyQP struct {
	Q *ring.Poly
	P *ring.Poly
}

// SecretKey is the sparse ternary secret s, stored in the NTT domain over
// the full q- and p-chains.
type SecretKey struct {
	Value PolyQP
}

// PublicKey is an encryption of zero under s: (b, a) = (-a·s + e, a) over the
// full q-chain, NTT domain.
type PublicKey struct {
	Value [2]*ring.Poly
}

// SwitchingKey is a generalized (dnum-decomposed) key-switching key from some
// secret s' to s: dnum pairs (b_j, a_j) over R_PQ where
// b_j = -a_j·s + e_j + P·s'·1_{group j} (Eq. 7 and Section 2.5).
// An evk for HMult has s' = s²; an evk for HRot(r) has s' = σ_{5^r}(s).
type SwitchingKey struct {
	Value [][2]PolyQP
}

// Bytes returns the storage size of the key in bytes: the paper's
// 2·N·(k+L+1)·dnum words of 8 bytes (Section 2.5, point ii).
func (swk *SwitchingKey) Bytes() int64 {
	if len(swk.Value) == 0 {
		return 0
	}
	rows := int64(len(swk.Value[0][0].Q.Coeffs) + len(swk.Value[0][0].P.Coeffs))
	n := int64(len(swk.Value[0][0].Q.Coeffs[0]))
	return int64(len(swk.Value)) * 2 * rows * n * 8
}

// RotationKeySet maps Galois elements to their switching keys.
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator produces all key material for a context. The randomness
// source is a deterministic PRNG: this library is a research reproduction of
// the BTS workload, not a hardened cryptographic implementation.
type KeyGenerator struct {
	ctx *Context
	rng *rand.Rand
}

// NewKeyGenerator returns a key generator seeded deterministically.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// GenSecretKey samples a sparse ternary secret of Hamming weight params.H.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	ctx := kg.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	coeffs := make([]int64, rq.N)
	for placed := 0; placed < ctx.Params.H; {
		idx := kg.rng.Intn(rq.N)
		if coeffs[idx] != 0 {
			continue
		}
		if kg.rng.Intn(2) == 0 {
			coeffs[idx] = 1
		} else {
			coeffs[idx] = -1
		}
		placed++
	}
	sk := &SecretKey{Value: PolyQP{
		Q: rq.NewPoly(len(rq.Moduli)),
		P: rp.NewPoly(len(rp.Moduli)),
	}}
	rq.SetInt64Coeffs(sk.Value.Q, coeffs, rq.MaxLevel())
	rp.SetInt64Coeffs(sk.Value.P, coeffs, rp.MaxLevel())
	rq.NTT(sk.Value.Q, rq.MaxLevel())
	rp.NTT(sk.Value.P, rp.MaxLevel())
	return sk
}

// GenPublicKey returns an encryption of zero (b, a) = (-a·s+e, a) over the
// full q-chain.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.ctx
	rq := ctx.RingQ
	lvl := rq.MaxLevel()
	a := rq.NewPolyLevel(lvl)
	rq.SampleUniform(kg.rng, a, lvl)
	e := rq.NewPolyLevel(lvl)
	rq.SampleGaussian(kg.rng, e, ctx.Params.Sigma, lvl)
	rq.NTT(e, lvl)
	b := rq.NewPolyLevel(lvl)
	rq.MulCoeffs(a, sk.Value.Q, b, lvl)
	rq.Neg(b, b, lvl)
	rq.Add(b, e, b, lvl)
	return &PublicKey{Value: [2]*ring.Poly{b, a}}
}

// GenRelinearizationKey returns the evk for HMult (s' = s²).
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *SwitchingKey {
	rq := kg.ctx.RingQ
	s2 := rq.NewPoly(len(rq.Moduli))
	rq.MulCoeffs(sk.Value.Q, sk.Value.Q, s2, rq.MaxLevel())
	return kg.genSwitchingKey(sk, s2)
}

// GenRotationKeys returns switching keys for the given rotation amounts.
// If conjugate is true a key for complex conjugation is included.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, conjugate bool) *RotationKeySet {
	rq := kg.ctx.RingQ
	set := &RotationKeySet{Keys: make(map[uint64]*SwitchingKey)}
	add := func(g uint64) {
		if _, ok := set.Keys[g]; ok {
			return
		}
		sG := rq.NewPoly(len(rq.Moduli))
		rq.AutomorphismNTT(sk.Value.Q, g, sG, rq.MaxLevel())
		set.Keys[g] = kg.genSwitchingKey(sk, sG)
	}
	for _, r := range rotations {
		add(rq.GaloisElement(r))
	}
	if conjugate {
		add(rq.GaloisConjugate())
	}
	return set
}

// genSwitchingKey produces a key switching from sPrime (NTT, full q-chain) to
// sk. For each decomposition group j, the Q-rows belonging to group j carry
// the extra term [P]_{q_i}·s', which is what makes the ModUp-multiply-
// accumulate-ModDown pipeline of Fig. 3(a) recover s'·d + small error.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sPrime *ring.Poly) *SwitchingKey {
	ctx := kg.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lq, lp := rq.MaxLevel(), rp.MaxLevel()
	dnum := ctx.Params.Dnum
	swk := &SwitchingKey{Value: make([][2]PolyQP, dnum)}
	eCoeffs := make([]int64, rq.N)
	for j := 0; j < dnum; j++ {
		aQ := rq.NewPoly(lq + 1)
		aP := rp.NewPoly(lp + 1)
		rq.SampleUniform(kg.rng, aQ, lq)
		rp.SampleUniform(kg.rng, aP, lp)

		// A single error polynomial must be consistent across both bases.
		eQ := rq.NewPoly(lq + 1)
		eP := rp.NewPoly(lp + 1)
		kg.sampleGaussianInt64(eCoeffs)
		rq.SetInt64Coeffs(eQ, eCoeffs, lq)
		rp.SetInt64Coeffs(eP, eCoeffs, lp)
		rq.NTT(eQ, lq)
		rp.NTT(eP, lp)

		bQ := rq.NewPoly(lq + 1)
		bP := rp.NewPoly(lp + 1)
		rq.MulCoeffs(aQ, sk.Value.Q, bQ, lq)
		rq.Neg(bQ, bQ, lq)
		rq.Add(bQ, eQ, bQ, lq)
		rp.MulCoeffs(aP, sk.Value.P, bP, lp)
		rp.Neg(bP, bP, lp)
		rp.Add(bP, eP, bP, lp)

		lo, hi := ctx.groupRange(j, lq)
		rq.ForEachLimbBlock(hi-lo, func(k, c0, c1 int) {
			i := lo + k
			q := rq.Moduli[i].Q
			br := rq.Moduli[i].BRed
			w := ctx.pModQ[i]
			dst, src := bQ.Coeffs[i], sPrime.Coeffs[i]
			for t := c0; t < c1; t++ {
				dst[t] = addMod(dst[t], br.Mul(w, src[t]), q)
			}
		})
		swk.Value[j] = [2]PolyQP{{Q: bQ, P: bP}, {Q: aQ, P: aP}}
	}
	return swk
}

func (kg *KeyGenerator) sampleGaussianInt64(out []int64) {
	sigma := kg.ctx.Params.Sigma
	for i := range out {
		for {
			v := kg.rng.NormFloat64() * sigma
			if v <= 6*sigma && v >= -6*sigma {
				out[i] = int64(v + 0.5*sign(v))
				break
			}
		}
	}
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func addMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

// Encryptor encrypts plaintexts under a public or secret key.
type Encryptor struct {
	ctx *Context
	rng *rand.Rand
	pk  *PublicKey
	sk  *SecretKey
}

// NewEncryptorPK returns a public-key encryptor.
func NewEncryptorPK(ctx *Context, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, rng: rand.New(rand.NewSource(seed)), pk: pk}
}

// NewEncryptorSK returns a secret-key encryptor (smaller noise, used by most
// tests and by bootstrapping experiments).
func NewEncryptorSK(ctx *Context, sk *SecretKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, rng: rand.New(rand.NewSource(seed)), sk: sk}
}

// EncryptNew encrypts pt at pt.Level.
func (enc *Encryptor) EncryptNew(pt *Plaintext) (*Ciphertext, error) {
	ctx := enc.ctx
	rq := ctx.RingQ
	lvl := pt.Level
	ct := ctx.NewCiphertext(lvl, pt.Scale)
	switch {
	case enc.sk != nil:
		a := rq.GetPolyNoZero()
		rq.SampleUniform(enc.rng, a, lvl)
		e := rq.GetPolyNoZero()
		rq.SampleGaussian(enc.rng, e, ctx.Params.Sigma, lvl)
		rq.NTT(e, lvl)
		rq.MulCoeffs(a, enc.sk.Value.Q, ct.C0, lvl)
		rq.Neg(ct.C0, ct.C0, lvl)
		rq.Add(ct.C0, e, ct.C0, lvl)
		rq.Add(ct.C0, pt.Value, ct.C0, lvl)
		rq.CopyLevel(ct.C1, a, lvl)
		rq.PutPoly(e)
		rq.PutPoly(a)
	case enc.pk != nil:
		u := rq.GetPolyNoZero()
		rq.SampleTernarySparse(enc.rng, u, ctx.Params.H, lvl)
		rq.NTT(u, lvl)
		e0 := rq.GetPolyNoZero()
		e1 := rq.GetPolyNoZero()
		rq.SampleGaussian(enc.rng, e0, ctx.Params.Sigma, lvl)
		rq.SampleGaussian(enc.rng, e1, ctx.Params.Sigma, lvl)
		rq.NTT(e0, lvl)
		rq.NTT(e1, lvl)
		rq.MulCoeffs(enc.pk.Value[0], u, ct.C0, lvl)
		rq.Add(ct.C0, e0, ct.C0, lvl)
		rq.Add(ct.C0, pt.Value, ct.C0, lvl)
		rq.MulCoeffs(enc.pk.Value[1], u, ct.C1, lvl)
		rq.Add(ct.C1, e1, ct.C1, lvl)
		rq.PutPoly(e1)
		rq.PutPoly(e0)
		rq.PutPoly(u)
	default:
		return nil, fmt.Errorf("ckks: encryptor has neither secret nor public key")
	}
	return ct, nil
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// DecryptNew computes m = c0 + c1·s at the ciphertext's level.
func (dec *Decryptor) DecryptNew(ct *Ciphertext) *Plaintext {
	rq := dec.ctx.RingQ
	p := rq.NewPolyLevel(ct.Level)
	rq.MulCoeffs(ct.C1, dec.sk.Value.Q, p, ct.Level)
	rq.Add(p, ct.C0, p, ct.Level)
	return &Plaintext{Value: p, Level: ct.Level, Scale: ct.Scale}
}
