package ckks

import (
	"fmt"
	"sort"
)

// TransformChain is an ordered list of linear-transform stages evaluated
// back to back with one rescale between stages — the factored-transform
// pipeline that replaces a single dense matrix in the bootstrapping
// CoeffToSlot/SlotToCoeff phases (see dft.go). The stages share one hoisted
// decomposition schedule: within every stage the baby-step rotations reuse a
// single decomposition of that stage's input through the double-hoisted
// LinearTransform pipeline, and across stages the rotation-key requirement
// is planned jointly (Rotations returns the union), which is what keeps the
// factored pipeline's key set a fraction of the dense transform's.
//
// Stage i must be encoded at level Level()-i with plaintext scale equal to
// the prime at that level, so the chain consumes exactly Depth() levels and
// leaves the ciphertext scale unchanged; NewTransformChain validates the
// level layout and EncodeDFTStages constructs chains that satisfy it.
type TransformChain struct {
	stages []*LinearTransform
}

// NewTransformChain assembles a chain, validating that stage levels descend
// by exactly one (each stage is followed by one rescale).
func NewTransformChain(stages ...*LinearTransform) (*TransformChain, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("ckks: transform chain with no stages")
	}
	for i, lt := range stages {
		if want := stages[0].Level - i; lt.Level != want {
			return nil, fmt.Errorf("ckks: transform chain stage %d at level %d, want %d (stage levels must descend by 1)",
				i, lt.Level, want)
		}
	}
	if stages[len(stages)-1].Level < 1 {
		return nil, fmt.Errorf("ckks: transform chain's last stage at level %d cannot be rescaled",
			stages[len(stages)-1].Level)
	}
	return &TransformChain{stages: stages}, nil
}

// Stages returns the chain's stages in application order (read-only).
func (tc *TransformChain) Stages() []*LinearTransform { return tc.stages }

// Depth returns the number of stages — the levels the chain consumes.
func (tc *TransformChain) Depth() int { return len(tc.stages) }

// Level returns the level the first stage is encoded at (the minimum input
// level).
func (tc *TransformChain) Level() int { return tc.stages[0].Level }

// OutputLevel returns the level a ciphertext entering at Level() leaves the
// chain at: Level() - Depth().
func (tc *TransformChain) OutputLevel() int { return tc.Level() - tc.Depth() }

// DiagCounts returns the per-stage diagonal counts (the sparsity profile the
// Table 2 cost model sums over).
func (tc *TransformChain) DiagCounts() []int {
	out := make([]int, len(tc.stages))
	for i, lt := range tc.stages {
		out[i] = len(lt.diags)
	}
	return out
}

// Rotations returns the union of the stages' rotation amounts — the key set
// a caller must generate to evaluate the chain.
func (tc *TransformChain) Rotations() []int {
	lists := make([][]int, len(tc.stages))
	for i, lt := range tc.stages {
		lists[i] = lt.Rotations()
	}
	out := dedupRotations(lists...)
	sort.Ints(out)
	return out
}

// TransformChain applies the chain to ct: each stage runs the double-hoisted
// BSGS evaluation (one decomposition shared by the stage's baby steps, lazy
// 128-bit diagonal folds, one deferred ModDown per component per giant step)
// followed by one rescale, so the output carries the input's scale at level
// ct.Level - Depth(). Errors if the ciphertext is too shallow for any stage
// (stage boundaries are where the bootstrap level budget bites — see
// BootstrapParams.MinLevels).
func (ev *Evaluator) TransformChain(ct *Ciphertext, tc *TransformChain) (*Ciphertext, error) {
	cur := ct
	for i, lt := range tc.stages {
		if cur.Level < lt.Level {
			if i > 0 {
				ev.ctx.PutCiphertext(cur)
			}
			return nil, fmt.Errorf("ckks: transform chain stage %d encoded at level %d, ciphertext at %d",
				i, lt.Level, cur.Level)
		}
		sp := ev.begin(spanStage)
		t := ev.LinearTransform(cur, lt)
		if i > 0 {
			ev.ctx.PutCiphertext(cur)
		}
		cur = ev.Rescale(t)
		ev.ctx.PutCiphertext(t)
		ev.endSpan(&sp, cur)
	}
	return cur, nil
}
