package ckks

import (
	"fmt"
	"math"
)

// This file factors the encoder's special FFT into sparse radix stages — the
// "factored linear transform" evaluation of CoeffToSlot/SlotToCoeff that the
// BTS paper's Table 2 assumes (and that FAB makes the centerpiece of
// practical bootstrapping): instead of one dense slots×slots matrix with one
// generalized diagonal per slot, the DFT is evaluated as a short chain of
// butterfly-group matrices with O(2^d) diagonals each, trading one level of
// depth per stage for a large drop in rotation count and key-switch work.
//
// Each radix-2 butterfly layer of fftSpecial/fftSpecialInv is itself a
// 3-diagonal matrix (diagonals {0, ±len/2}); merging d consecutive layers by
// matrix product yields a stage whose diagonal indices live on sums of
// {±2^a, ..., ±2^b} — at most 2^(d+1)-1 of them, collapsing further mod n.
// The bit-reversal permutation of the plain FFT is *omitted* from the
// factorization: a DFTInverse chain computes B·U^{-1} (slots come out in
// bit-reversed order) and a DFTForward chain computes U·B (slots go in
// bit-reversed), where B is the bit-reversal permutation matrix. B cancels
// exactly through any slot-wise pipeline — conjugation, scalar ops, EvalMod
// all commute with slot permutations — so a CoeffToSlot → EvalMod →
// SlotToCoeff composition is mathematically identical to the dense
// U^{-1}/U pair. This is why the factored bootstrap needs no repacking step.

// DFTKind selects the direction of a factored special-FFT chain.
type DFTKind int

const (
	// DFTInverse factors the encoding transform U^{-1} (slots ← coeffs:
	// the CoeffToSlot direction of bootstrapping).
	DFTInverse DFTKind = iota
	// DFTForward factors the decoding transform U (coeffs ← slots: the
	// SlotToCoeff direction).
	DFTForward
)

// dftButterflyDiags returns the 3-diagonal map of one radix-2 butterfly
// layer of the special FFT at the given block length, scaled by scale.
// Forward layers are the fftSpecial butterflies (u+wv, u-wv); inverse layers
// are the fftSpecialInv butterflies (u+v, (u-v)·w̄) — the twiddles follow the
// 5^j rotation group exactly as the plain encoder transforms do.
func (e *Encoder) dftButterflyDiags(kind DFTKind, length int, scale complex128) map[int][]complex128 {
	n := e.Slots()
	lenh, lenq := length>>1, length<<2
	gap := e.m / lenq
	d0 := make([]complex128, n)
	dPlus := make([]complex128, n)  // diagonal +lenh
	dMinus := make([]complex128, n) // diagonal -lenh ≡ n-lenh
	for i := 0; i < n; i += length {
		for j := 0; j < lenh; j++ {
			if kind == DFTForward {
				w := e.ksiPows[(e.rotGroup[j]%lenq)*gap] * scale
				d0[i+j] = scale
				dPlus[i+j] = w
				d0[i+j+lenh] = -w
				dMinus[i+j+lenh] = scale
			} else {
				w := e.ksiPows[(lenq-(e.rotGroup[j]%lenq))*gap] * scale
				d0[i+j] = scale
				dPlus[i+j] = scale
				d0[i+j+lenh] = -w
				dMinus[i+j+lenh] = w
			}
		}
	}
	diags := map[int][]complex128{0: d0}
	addDiagInto(diags, lenh%n, dPlus)
	addDiagInto(diags, (n-lenh)%n, dMinus)
	return diags
}

// addDiagInto accumulates vec onto diagonal k of diags (diagonals collide
// mod n: at length = n the ±n/2 butterfly diagonals are the same one).
func addDiagInto(diags map[int][]complex128, k int, vec []complex128) {
	if d, ok := diags[k]; ok {
		for j := range d {
			d[j] += vec[j]
		}
		return
	}
	diags[k] = vec
}

// composeDiags returns the diagonal representation of the matrix product a·b
// (a applied after b): out[k][j] = Σ_{ka+kb ≡ k (mod n)} a[ka][j] ·
// b[kb][(j+ka) mod n]. All-zero diagonals produced by index collisions are
// pruned.
func composeDiags(a, b map[int][]complex128, n int) map[int][]complex128 {
	out := map[int][]complex128{}
	for ka, da := range a {
		for kb, db := range b {
			k := ((ka+kb)%n + n) % n
			d := out[k]
			if d == nil {
				d = make([]complex128, n)
				out[k] = d
			}
			for j := 0; j < n; j++ {
				d[j] += da[j] * db[(j+ka)%n]
			}
		}
	}
	for k, d := range out {
		maxAbs := 0.0
		for _, v := range d {
			if a := cabs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < 1e-12 {
			delete(out, k)
		}
	}
	return out
}

// DFTStageDiags returns the numStages merged diagonal maps of the factored
// special FFT, in homomorphic application order. The stages' matrix product
// equals B·U^{-1} for DFTInverse (the 1/n normalization folded in as 1/2 per
// butterfly layer) and U·B for DFTForward. Layer grouping mirrors the
// radix-grouped FFT: group depths differ by at most one, with the larger
// groups placed where the classic factored bootstrap puts them (first for
// the inverse, last for the forward direction) so that a CoeffToSlot /
// SlotToCoeff pair produces mirrored stage shapes and shares most of its
// rotation keys.
func (e *Encoder) DFTStageDiags(kind DFTKind, numStages int) ([]map[int][]complex128, error) {
	n := e.Slots()
	logn := 0
	for 1<<logn < n {
		logn++
	}
	if numStages < 1 || numStages > logn {
		return nil, fmt.Errorf("ckks: %d DFT stages outside [1,log2(slots)=%d]", numStages, logn)
	}
	// Group depths: ceil-balanced, larger groups first (inverse) or last
	// (forward) — the lattigo-style merge order that minimizes the union of
	// stage diagonal sets across a CtS/StC pair.
	sizes := make([]int, numStages)
	rem := logn
	for i := 0; i < numStages; i++ {
		d := (rem + numStages - i - 1) / (numStages - i)
		if kind == DFTInverse {
			sizes[i] = d
		} else {
			sizes[numStages-1-i] = d
		}
		rem -= d
	}
	// Butterfly layer lengths in application order: the inverse runs blocks
	// n → 2 (then bit-reverses, omitted), the forward runs 2 → n (after the
	// omitted bit-reverse).
	lengths := make([]int, 0, logn)
	if kind == DFTInverse {
		for length := n; length >= 2; length >>= 1 {
			lengths = append(lengths, length)
		}
	} else {
		for length := 2; length <= n; length <<= 1 {
			lengths = append(lengths, length)
		}
	}
	stages := make([]map[int][]complex128, 0, numStages)
	idx := 0
	for _, sz := range sizes {
		var acc map[int][]complex128
		for f := 0; f < sz; f++ {
			scale := complex(1, 0)
			if kind == DFTInverse {
				scale = 0.5 // n layers of 1/2 make up the 1/n of U^{-1}
			}
			fac := e.dftButterflyDiags(kind, lengths[idx], scale)
			idx++
			if acc == nil {
				acc = fac
			} else {
				// This layer is applied after the accumulated ones.
				acc = composeDiags(fac, acc, n)
			}
		}
		stages = append(stages, acc)
	}
	return stages, nil
}

// EncodeDFTStages factors the encoding (DFTInverse, CoeffToSlot) or decoding
// (DFTForward, SlotToCoeff) matrix into numStages sparse radix stages and
// encodes them as a TransformChain starting at levelStart: stage i is
// encoded at level levelStart-i with plaintext scale Q[levelStart-i], so
// evaluating each stage followed by one rescale keeps the ciphertext scale
// invariant while consuming exactly numStages levels. factor is an extra
// real scalar distributed evenly (factor^(1/numStages) per stage) across the
// chain — the Δ/q0 and q0/Δ normalizations of the bootstrapping pipeline.
//
// See the package comment of this file for the bit-reversal convention: the
// chain's product is B·U^{-1} (inverse) or U·B (forward), which compose to
// the exact dense pair through any slot-wise pipeline.
func (e *Encoder) EncodeDFTStages(kind DFTKind, numStages, levelStart int, factor float64) (*TransformChain, error) {
	return e.EncodeDFTStagesShifted(kind, numStages, levelStart, factor, 1)
}

// EncodeDFTStagesShifted is EncodeDFTStages with an additional exact output
// scale shift: the last stage is encoded at plaintext scale Q[level]·shift
// instead of Q[level], so evaluating the chain multiplies the ciphertext
// scale by shift while the represented values are untouched. The staged
// bootstrapping pipeline uses shift = 1/scaleBoost on SlotToCoeff to fold
// its working-scale boost back out (see Bootstrapper); shift = 1 reproduces
// EncodeDFTStages exactly.
func (e *Encoder) EncodeDFTStagesShifted(kind DFTKind, numStages, levelStart int, factor, shift float64) (*TransformChain, error) {
	p := e.ctx.Params
	if levelStart > p.MaxLevel() {
		return nil, fmt.Errorf("ckks: DFT chain start level %d above max %d", levelStart, p.MaxLevel())
	}
	if levelStart-numStages+1 < 1 {
		return nil, fmt.Errorf("ckks: DFT chain of %d stages from level %d leaves stage %d unrescalable",
			numStages, levelStart, numStages-1)
	}
	stageDiags, err := e.DFTStageDiags(kind, numStages)
	if err != nil {
		return nil, err
	}
	perStage := complex(math.Pow(factor, 1/float64(numStages)), 0)
	stages := make([]*LinearTransform, 0, numStages)
	for i, diags := range stageDiags {
		for _, d := range diags {
			for j := range d {
				d[j] *= perStage
			}
		}
		level := levelStart - i
		scale := float64(p.Q[level])
		if i == numStages-1 {
			scale *= shift
		}
		lt, err := NewLinearTransform(e, diags, level, scale)
		if err != nil {
			return nil, err
		}
		stages = append(stages, lt)
	}
	return NewTransformChain(stages...)
}
