package ckks

import (
	"fmt"

	"bts/internal/ring"
)

// Plaintext is an encoded (unencrypted) message: a polynomial in R_Q at a
// given level, kept in the NTT domain, carrying its encoding scale Δ.
type Plaintext struct {
	Value *ring.Poly
	Level int
	Scale float64
}

// Ciphertext is a CKKS ciphertext ct = (b, a) ∈ R_Q^2 at a given level
// (Section 2.2). Both polynomials are kept in the NTT domain, the resident
// format of BTS (Section 4.1).
type Ciphertext struct {
	C0, C1 *ring.Poly // b(X), a(X)
	Level  int
	Scale  float64
}

// NewCiphertext allocates a zero ciphertext at the given level and scale.
func (ctx *Context) NewCiphertext(level int, scale float64) *Ciphertext {
	return &Ciphertext{
		C0:    ctx.RingQ.NewPolyLevel(level),
		C1:    ctx.RingQ.NewPolyLevel(level),
		Level: level,
		Scale: scale,
	}
}

// CopyNew returns a deep copy of ct.
func (ct *Ciphertext) CopyNew(ctx *Context) *Ciphertext {
	out := ctx.NewCiphertext(ct.Level, ct.Scale)
	ctx.RingQ.CopyLevel(out.C0, ct.C0, ct.Level)
	ctx.RingQ.CopyLevel(out.C1, ct.C1, ct.Level)
	return out
}

// DropLevel truncates ct to the given lower level without rescaling (the
// scale is unchanged; only residue rows are discarded).
func (ct *Ciphertext) DropLevel(to int) {
	if to > ct.Level {
		panic(fmt.Sprintf("ckks: DropLevel to %d above current level %d", to, ct.Level))
	}
	ct.Level = to
}

// String summarizes the ciphertext's level and scale for diagnostics.
func (ct *Ciphertext) String() string {
	return fmt.Sprintf("Ciphertext{level=%d, logScale=%.2f}", ct.Level, log2f(ct.Scale))
}
