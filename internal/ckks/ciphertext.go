package ckks

import (
	"fmt"

	"bts/internal/ring"
)

// Plaintext is an encoded (unencrypted) message: a polynomial in R_Q at a
// given level, kept in the NTT domain, carrying its encoding scale Δ.
type Plaintext struct {
	Value *ring.Poly
	Level int
	Scale float64
}

// Ciphertext is a CKKS ciphertext ct = (b, a) ∈ R_Q^2 at a given level
// (Section 2.2). Both polynomials are kept in the NTT domain, the resident
// format of BTS (Section 4.1).
//
// Ciphertexts come in two flavors with identical semantics:
//
//   - plain ciphertexts (NewCiphertext) back both polynomials with one
//     contiguous allocation each, and
//   - pooled ciphertexts (Context.GetCiphertext) assemble their residue rows
//     from the q-ring's row pool, so PutCiphertext and DropLevel can hand
//     memory back to the scratch allocators and steady-state serving
//     allocates nothing.
type Ciphertext struct {
	C0, C1 *ring.Poly // b(X), a(X)
	Level  int
	Scale  float64

	// owner is non-nil for pooled ciphertexts and names the context whose
	// row pool backs the residue rows.
	owner *Context
}

// NewCiphertext allocates a zero ciphertext at the given level and scale.
func (ctx *Context) NewCiphertext(level int, scale float64) *Ciphertext {
	return &Ciphertext{
		C0:    ctx.RingQ.NewPolyLevel(level),
		C1:    ctx.RingQ.NewPolyLevel(level),
		Level: level,
		Scale: scale,
	}
}

// GetCiphertext borrows a zeroed ciphertext usable up to the given level from
// the context's pool (the pooled-Ciphertext discipline mirroring the ring's
// GetPoly/PutPoly scratch pools). The caller must return it with
// PutCiphertext when done; a pooled ciphertext is otherwise a drop-in
// replacement for one built by NewCiphertext.
func (ctx *Context) GetCiphertext(level int, scale float64) *Ciphertext {
	ct := ctx.getCiphertextNoZero(level, scale)
	ctx.RingQ.Zero(ct.C0, level)
	ctx.RingQ.Zero(ct.C1, level)
	return ct
}

// GetCiphertextNoZero is GetCiphertext without the zeroing pass: row
// contents are undefined, so the caller must fully overwrite rows 0..level
// before reading them — the same contract as ring.GetPolyNoZero. The
// evaluator uses it for every *New op output, and the wire decoder for
// ciphertexts whose rows the decode loop overwrites.
func (ctx *Context) GetCiphertextNoZero(level int, scale float64) *Ciphertext {
	return ctx.getCiphertextNoZero(level, scale)
}

func (ctx *Context) getCiphertextNoZero(level int, scale float64) *Ciphertext {
	ct, _ := ctx.ctPool.Get().(*Ciphertext)
	if ct == nil {
		ct = &Ciphertext{C0: &ring.Poly{}, C1: &ring.Poly{}, owner: ctx}
	}
	ctx.growRows(ct.C0, level)
	ctx.growRows(ct.C1, level)
	ct.Level = level
	ct.Scale = scale
	return ct
}

// growRows extends p with rows from the q-ring's row pool until it can hold
// the given level. Rows beyond the requested level are left attached: they
// are scratch, exactly like the inactive rows of a full-chain pooled Poly.
func (ctx *Context) growRows(p *ring.Poly, level int) {
	for len(p.Coeffs) <= level {
		p.Coeffs = append(p.Coeffs, ctx.RingQ.GetRow())
	}
}

// PutCiphertext returns a ciphertext borrowed with GetCiphertext to the pool.
// The caller must not retain any reference to it (or to its polynomials).
// Putting nil or a non-pooled ciphertext is a no-op, so callers may release
// mixed provenance results unconditionally.
func (ctx *Context) PutCiphertext(ct *Ciphertext) {
	if ct == nil || ct.owner != ctx {
		return
	}
	ctx.ctPool.Put(ct)
}

// Pooled reports whether ct came from a context's ciphertext pool.
func (ct *Ciphertext) Pooled() bool { return ct.owner != nil }

// Bytes reports the ciphertext's live coefficient footprint: two R_Q
// polynomials of level+1 residue rows each, 8 bytes per coefficient. This is
// the accounting unit the serving layer charges against a tenant's quota for
// server-resident ciphertext registers — the dual of SwitchingKey.Bytes for
// key material.
func (ct *Ciphertext) Bytes() int64 {
	n := int64(len(ct.C0.Coeffs[0]))
	return 2 * int64(ct.Level+1) * n * 8
}

// CopyNew returns a deep copy of ct as a plain (non-pooled) ciphertext.
func (ct *Ciphertext) CopyNew(ctx *Context) *Ciphertext {
	out := ctx.NewCiphertext(ct.Level, ct.Scale)
	ctx.RingQ.CopyLevel(out.C0, ct.C0, ct.Level)
	ctx.RingQ.CopyLevel(out.C1, ct.C1, ct.Level)
	return out
}

// CopyCiphertext copies src into dst in place — the pooled-allocation dual of
// Ciphertext.CopyNew. A pooled dst grows rows on demand; a plain dst must
// already hold enough rows or the copy errors instead of corrupting memory.
func (ctx *Context) CopyCiphertext(dst, src *Ciphertext) error {
	if dst == src {
		return nil
	}
	if dst.owner != nil {
		ctx.growRows(dst.C0, src.Level)
		ctx.growRows(dst.C1, src.Level)
	} else if dst.C0.Levels() < src.Level || dst.C1.Levels() < src.Level {
		return fmt.Errorf("ckks: CopyCiphertext into a ciphertext with %d rows, need %d",
			dst.C0.Levels()+1, src.Level+1)
	}
	ctx.RingQ.CopyLevel(dst.C0, src.C0, src.Level)
	ctx.RingQ.CopyLevel(dst.C1, src.C1, src.Level)
	dst.Level = src.Level
	dst.Scale = src.Scale
	return nil
}

// copyCiphertextPooled returns a pooled deep copy of ct.
func (ctx *Context) copyCiphertextPooled(ct *Ciphertext) *Ciphertext {
	out := ctx.getCiphertextNoZero(ct.Level, ct.Scale)
	ctx.RingQ.CopyLevel(out.C0, ct.C0, ct.Level)
	ctx.RingQ.CopyLevel(out.C1, ct.C1, ct.Level)
	return out
}

// DropLevel truncates ct to the given lower level without rescaling (the
// scale is unchanged; only residue rows are discarded). On a pooled
// ciphertext the now-unused rows go straight back to the owning ring's
// scratch row pool; on a plain ciphertext they stay attached (they are slices
// of one contiguous allocation and cannot be freed independently).
func (ct *Ciphertext) DropLevel(to int) {
	if to > ct.Level {
		panic(fmt.Sprintf("ckks: DropLevel to %d above current level %d", to, ct.Level))
	}
	ct.Level = to
	if ct.owner != nil {
		releaseRowsAbove(ct.owner.RingQ, ct.C0, to)
		releaseRowsAbove(ct.owner.RingQ, ct.C1, to)
	}
}

func releaseRowsAbove(rq *ring.Ring, p *ring.Poly, level int) {
	for i := len(p.Coeffs) - 1; i > level; i-- {
		rq.PutRow(p.Coeffs[i])
		p.Coeffs[i] = nil
		p.Coeffs = p.Coeffs[:i]
	}
}

// String summarizes the ciphertext's level and scale for diagnostics.
func (ct *Ciphertext) String() string {
	return fmt.Sprintf("Ciphertext{level=%d, logScale=%.2f}", ct.Level, log2f(ct.Scale))
}
