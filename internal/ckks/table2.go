package ckks

// The paper-parameter instance: Table 2's INS-1 realized as a software
// parameter set. N = 2^17 with a 60-bit base prime, 27 further scale primes
// (L = 27) and dnum = 1, so key-switching uses a single decomposition slice
// over alpha = 28 60-bit special primes. The sparse secret has H = 192 as in
// the paper's bootstrappable instances.
//
// Modulus chain layout. Table 4's budget model sizes every scale prime at 50
// bits (log PQ ≈ 3090). A *functional* bootstrap cannot run its EvalMod at
// working scale 2^50, though: the Chebyshev power basis amplifies the value
// noise of its input by ~deg², and SlotToCoeff forwards that to the
// refreshed message with another ~√slots·(q0/Δ); at 2^16 slots, degree 255
// and q0/Δ = 2^10 a 2^50-scale EvalMod bottoms out near 2^-1 output error.
// Real CKKS bootstrap implementations (including the paper's software
// baseline) therefore allocate base-prime-sized moduli to the bootstrap
// section of the chain and run that span at the larger working scale. This
// instance does the same: levels 15..27 — EvalMod's 9 rescaling levels plus
// normalize and the 3 CoeffToSlot stages — use 60-bit primes, while levels
// 1..14 (the 3 SlotToCoeff stages and the 11 post-refresh multiplication
// levels) keep the model's 50-bit size, so the refreshed ciphertext and all
// downstream arithmetic run at Δ = 2^50 exactly as in Table 4. The
// Bootstrapper detects the section boundary and raises the working scale
// with an exact ×2^10 after ModRaise (see bootScaleBoost), which drops the
// bootstrap's noise floor by the same 2^10. Cost of the deviation:
// log Q = 1540 instead of 1410 (log PQ ≈ 3220 vs 3090); Section 3's
// security model still puts the instance at λ ≈ 128.3 ≥ 128
// (`btsparams -preset table2` prints the realized chain and margin).
//
// The bootstrap pipeline runs the factored transforms at S = 3 stages per
// direction: 2^16 slots split into radix-64/32/32 stage matrices
// (DFTStageDiags depths 6+5+5 = logSlots), trading 2 extra levels per
// transform against the dense matrix's 2^16 diagonals. Depth budget per
// MinLevels: 3 (CtS) + 1 (normalize) + 10 (EvalMod, degree-255 sine) +
// 3 (StC) + 1 (margin) = 18 ≤ L = 27, leaving a 9-level working budget
// after refresh. K = 25 covers the modulus-raise overflow of an H = 192
// secret with margin (|I| concentrates near sqrt(H) ≈ 14), and
// 2πK ≈ 157 < 255 keeps the Chebyshev sine approximation convergent.

// Table2Literal returns the paper-parameter CKKS instance of Table 2
// (INS-1): N = 2^17, L = 27, dnum = 1, with 60-bit primes on the bootstrap
// section (levels 15..27) and 50-bit primes elsewhere (see the chain-layout
// comment above).
func Table2Literal() ParametersLiteral {
	logQ := []int{60}
	for lvl := 1; lvl <= 27; lvl++ {
		if lvl >= 15 {
			// Bootstrap section: normalize + EvalMod + CoeffToSlot levels.
			// 15 = stcLevel+1 with stcLevel = L - CtSStages - 1 - chebDepth
			// = 27 - 3 - 1 - 9 (see Table2BootstrapParams).
			logQ = append(logQ, 60)
		} else {
			logQ = append(logQ, 50)
		}
	}
	return ParametersLiteral{
		LogN:     17,
		LogQ:     logQ,
		LogP:     60,
		Dnum:     1,
		LogScale: 50,
		H:        192,
	}
}

// Table2BootstrapParams returns the S = 3 factored bootstrap configuration
// for the Table 2 instance: radix-64/32/32 CoeffToSlot and SlotToCoeff
// chains around a degree-255 scaled-sine EvalMod on the range [-25, 25].
func Table2BootstrapParams() BootstrapParams {
	return BootstrapParams{K: 25, SineDegree: 255, CtSStages: 3, StCStages: 3}
}
