package ckks

import "sync/atomic"

// opCounters is the evaluator's internal atomic tally of the primitive-op
// mix. It exists for the software-vs-simulator calibration cross-check
// (internal/sim): the simulator's workload traces expand every rotation into
// the full key-switch pipeline, while the hoisted evaluator pays the full
// pipeline only for naive/giant-step rotations — baby steps are NTT-domain
// gather-MACs against a shared decomposition — so the measured mix must
// count the two classes separately to be comparable. Counting sites are the
// hot paths' entry points; the atomic adds are noise next to the polynomial
// arithmetic they count.
type opCounters struct {
	Mult       atomic.Int64 // relinearized tensor products (HMult)
	FullRot    atomic.Int64 // full-key-switch automorphisms: naive/giant rotations + conjugations
	HoistedRot atomic.Int64 // hoisted rotations: gather-MAC against a shared decomposition
	Decompose  atomic.Int64 // hoisted decompositions (iNTT + ModUp + NTT per slice)
	ModDown    atomic.Int64 // extended-basis ModDowns (2 per full key-switch, 2 per giant step)
	Rescale    atomic.Int64 // HRescale ops
	PMult      atomic.Int64 // plaintext products, incl. diagonal folds inside linear transforms
	ModRaise   atomic.Int64 // bootstrap modulus raisings
}

// OpCounters is a snapshot of the evaluator's measured op mix (see
// Evaluator.Counters). Subtracting two snapshots brackets a workload: reset,
// run, read.
type OpCounters struct {
	Mult       int64
	FullRot    int64
	HoistedRot int64
	Decompose  int64
	ModDown    int64
	Rescale    int64
	PMult      int64
	ModRaise   int64
}

// KeySwitchTotal returns the number of evk-consuming operations in the
// snapshot: full key-switch pipelines (multiplications and full rotations)
// plus hoisted rotations, which still pay the per-slice MAC against the
// rotation key even though they skip the decomposition. This is the metric
// the staged-vs-dense bootstrap gate compares (btsbench -experiment
// bootstrap).
func (c OpCounters) KeySwitchTotal() int64 {
	return c.Mult + c.FullRot + c.HoistedRot
}

// Sub returns the per-field difference c - prev, bracketing the ops executed
// between two snapshots.
func (c OpCounters) Sub(prev OpCounters) OpCounters {
	return OpCounters{
		Mult:       c.Mult - prev.Mult,
		FullRot:    c.FullRot - prev.FullRot,
		HoistedRot: c.HoistedRot - prev.HoistedRot,
		Decompose:  c.Decompose - prev.Decompose,
		ModDown:    c.ModDown - prev.ModDown,
		Rescale:    c.Rescale - prev.Rescale,
		PMult:      c.PMult - prev.PMult,
		ModRaise:   c.ModRaise - prev.ModRaise,
	}
}

// Add returns the per-field sum c + other. The serving layer uses it to
// keep a session's reported op mix monotonic across evaluator rebuilds:
// evicting a session's keys folds the old evaluator's tally into a base,
// and the evaluator rebuilt at rehydration starts counting from zero.
func (c OpCounters) Add(other OpCounters) OpCounters {
	return OpCounters{
		Mult:       c.Mult + other.Mult,
		FullRot:    c.FullRot + other.FullRot,
		HoistedRot: c.HoistedRot + other.HoistedRot,
		Decompose:  c.Decompose + other.Decompose,
		ModDown:    c.ModDown + other.ModDown,
		Rescale:    c.Rescale + other.Rescale,
		PMult:      c.PMult + other.PMult,
		ModRaise:   c.ModRaise + other.ModRaise,
	}
}

// Counters returns a snapshot of the op mix executed through this evaluator
// since construction (or the last ResetCounters). Safe for concurrent use.
func (ev *Evaluator) Counters() OpCounters {
	return OpCounters{
		Mult:       ev.counters.Mult.Load(),
		FullRot:    ev.counters.FullRot.Load(),
		HoistedRot: ev.counters.HoistedRot.Load(),
		Decompose:  ev.counters.Decompose.Load(),
		ModDown:    ev.counters.ModDown.Load(),
		Rescale:    ev.counters.Rescale.Load(),
		PMult:      ev.counters.PMult.Load(),
		ModRaise:   ev.counters.ModRaise.Load(),
	}
}

// ResetCounters zeroes the evaluator's op-mix counters. Not atomic across
// fields — don't race it against in-flight evaluation when exact brackets
// matter.
func (ev *Evaluator) ResetCounters() {
	ev.counters.Mult.Store(0)
	ev.counters.FullRot.Store(0)
	ev.counters.HoistedRot.Store(0)
	ev.counters.Decompose.Store(0)
	ev.counters.ModDown.Store(0)
	ev.counters.Rescale.Store(0)
	ev.counters.PMult.Store(0)
	ev.counters.ModRaise.Store(0)
}
