package ckks

import (
	"math/rand"
	"testing"
)

// TestRotateHoistedMatchesRotate is the central hoisting invariant: a
// hoisted rotation (permute the shared decomposition, then MAC) must be
// bit-identical to the naive per-rotation key-switch, at every worker count.
func TestRotateHoistedMatchesRotate(t *testing.T) {
	rotations := []int{1, 3, 7, 16, 100, -1, -5, 0}
	s := newTestSetup(t, 3, rotations)
	defer s.ctx.Close()
	rng := rand.New(rand.NewSource(42))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, err := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 1, 4} {
		s.ctx.SetWorkers(workers)
		// Duplicate amount exercises the dedup path.
		hoisted := s.eval.RotateHoisted(ct, append([]int{1}, rotations...))
		for _, r := range rotations {
			naive := s.eval.Rotate(ct, r)
			h := hoisted[r]
			if h.Level != naive.Level || h.Scale != naive.Scale {
				t.Fatalf("workers=%d rot=%d: level/scale mismatch", workers, r)
			}
			if !s.ctx.RingQ.Equal(h.C0, naive.C0, naive.Level) ||
				!s.ctx.RingQ.Equal(h.C1, naive.C1, naive.Level) {
				t.Fatalf("workers=%d rot=%d: hoisted rotation not bit-identical to Rotate", workers, r)
			}
			s.ctx.PutCiphertext(naive)
		}
		for _, h := range hoisted {
			s.ctx.PutCiphertext(h)
		}
	}
}

// TestRotateHoistedLowerLevel checks hoisting at a partial decomposition
// group (level not a multiple of alpha) where the last slice is clamped.
func TestRotateHoistedLowerLevel(t *testing.T) {
	rotations := []int{2, 9}
	s := newTestSetup(t, 3, rotations)
	defer s.ctx.Close()
	rng := rand.New(rand.NewSource(43))
	values := randomComplex(rng, s.params.Slots(), 1)
	for lvl := s.params.MaxLevel() - 1; lvl >= 0; lvl -= 2 {
		pt, err := s.encoder.Encode(values, lvl, s.params.Scale)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		hoisted := s.eval.RotateHoisted(ct, rotations)
		for _, r := range rotations {
			naive := s.eval.Rotate(ct, r)
			if !s.ctx.RingQ.Equal(hoisted[r].C0, naive.C0, naive.Level) ||
				!s.ctx.RingQ.Equal(hoisted[r].C1, naive.C1, naive.Level) {
				t.Fatalf("level=%d rot=%d: hoisted rotation not bit-identical", lvl, r)
			}
			s.ctx.PutCiphertext(naive)
			s.ctx.PutCiphertext(hoisted[r])
		}
	}
}

// TestLinearTransformHoistedPrecision compares the double-hoisted transform
// (lazy ModDown once per giant step) against the eager reference path on a
// dense random matrix: both must hit the plain result within the transform
// error budget, and the deferred ModDown — whose rounding enters once per
// giant step instead of once per diagonal, un-amplified by the plaintext
// scale — must not be worse than the eager path by more than noise jitter.
func TestLinearTransformHoistedPrecision(t *testing.T) {
	nDiags := 24
	s := newTestSetup(t, 2, allRotations(nDiags, 1<<9))
	defer s.ctx.Close()
	n := s.params.Slots()
	rng := rand.New(rand.NewSource(55))
	values := randomComplex(rng, n, 1)
	lvl := s.params.MaxLevel()
	pt, _ := s.encoder.Encode(values, lvl, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	diags := map[int][]complex128{}
	for k := 0; k < nDiags; k++ {
		diags[k] = randomComplex(rng, n, 1)
	}
	lt, err := NewLinearTransform(s.encoder, diags, lvl, float64(s.params.Q[lvl]))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for j := 0; j < n; j++ {
		for k := 0; k < nDiags; k++ {
			want[j] += diags[k][j] * values[(j+k)%n]
		}
	}

	hoisted := s.eval.Rescale(s.eval.LinearTransform(ct, lt))
	s.eval.SetEagerTransforms(true)
	eager := s.eval.Rescale(s.eval.LinearTransform(ct, lt))
	s.eval.SetEagerTransforms(false)

	errHoisted := maxErr(s.encoder.Decode(s.dec.DecryptNew(hoisted)), want)
	errEager := maxErr(s.encoder.Decode(s.dec.DecryptNew(eager)), want)
	t.Logf("dense transform: hoisted err %.3g, eager err %.3g", errHoisted, errEager)
	if errHoisted > 1e-3 {
		t.Fatalf("hoisted transform error %g above budget", errHoisted)
	}
	if errHoisted > 2*errEager+1e-9 {
		t.Fatalf("hoisted transform error %g worse than eager %g beyond jitter", errHoisted, errEager)
	}
}

// TestLinearTransformN1Override pins every power-of-two baby-step count and
// checks the transform result is split-invariant.
func TestLinearTransformN1Override(t *testing.T) {
	nDiags := 8
	s := newTestSetup(t, 2, allRotations(nDiags, 1<<9))
	defer s.ctx.Close()
	n := s.params.Slots()
	rng := rand.New(rand.NewSource(56))
	values := randomComplex(rng, n, 1)
	lvl := s.params.MaxLevel()
	pt, _ := s.encoder.Encode(values, lvl, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	diags := map[int][]complex128{}
	for k := 0; k < nDiags; k++ {
		diags[k] = randomComplex(rng, n, 1)
	}
	want := make([]complex128, n)
	for j := 0; j < n; j++ {
		for k := 0; k < nDiags; k++ {
			want[j] += diags[k][j] * values[(j+k)%n]
		}
	}
	for _, n1 := range []int{1, 2, 8, 16} {
		lt, err := NewLinearTransformN1(s.encoder, diags, lvl, float64(s.params.Q[lvl]), n1)
		if err != nil {
			t.Fatal(err)
		}
		out := s.eval.Rescale(s.eval.LinearTransform(ct, lt))
		if e := maxErr(s.encoder.Decode(s.dec.DecryptNew(out)), want); e > 1e-3 {
			t.Fatalf("n1=%d: transform error %g", n1, e)
		}
		s.ctx.PutCiphertext(out)
	}
	if _, err := NewLinearTransformN1(s.encoder, diags, lvl, float64(s.params.Q[lvl]), 3); err == nil {
		t.Fatal("expected error for non-power-of-two n1")
	}
}

// TestLinearTransformChunkedLazyMAC forces the Acc128 overflow guard: with
// ~61-bit primes the lazy MAC budget drops to ≤64 terms, so a dense
// transform evaluated as a single giant group must fold its diagonals in
// several chunks with intermediate reductions — and still match the eager
// path within the error budget.
func TestLinearTransformChunkedLazyMAC(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     []int{61, 61},
		LogP:     61,
		Dnum:     1,
		LogScale: 40,
		H:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	n := params.Slots()
	budget := ctx.RingQ.LazyMACBudget()
	if pb := ctx.RingP.LazyMACBudget(); pb < budget {
		budget = pb
	}
	if budget >= n {
		t.Fatalf("budget %d does not force chunking over %d diagonals", budget, n)
	}

	kg := NewKeyGenerator(ctx, 6001)
	sk := kg.GenSecretKey()
	encoder := NewEncoder(ctx)
	enc := NewEncryptorSK(ctx, sk, 6002)
	dec := NewDecryptor(ctx, sk)
	rng := rand.New(rand.NewSource(58))
	values := randomComplex(rng, n, 1)
	lvl := params.MaxLevel()
	pt, _ := encoder.Encode(values, lvl, params.Scale)
	ct, err := enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	diags := map[int][]complex128{}
	for k := 0; k < n; k++ {
		d := make([]complex128, n)
		for j := range d {
			d[j] = randomComplex(rng, 1, 1)[0] / complex(float64(n), 0)
		}
		diags[k] = d
	}
	// n1 = slots puts every diagonal in one giant group (> budget terms).
	lt, err := NewLinearTransformN1(encoder, diags, lvl, float64(params.Q[lvl]), n)
	if err != nil {
		t.Fatal(err)
	}
	rtks := kg.GenRotationKeys(sk, lt.Rotations(), false)
	eval := NewEvaluator(ctx, encoder, nil, rtks)

	want := make([]complex128, n)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			want[j] += diags[k][j] * values[(j+k)%n]
		}
	}
	hoisted := eval.Rescale(eval.LinearTransform(ct, lt))
	eval.SetEagerTransforms(true)
	eager := eval.Rescale(eval.LinearTransform(ct, lt))
	errHoisted := maxErr(encoder.Decode(dec.DecryptNew(hoisted)), want)
	errEager := maxErr(encoder.Decode(dec.DecryptNew(eager)), want)
	t.Logf("chunked transform (budget %d, %d diags): hoisted err %.3g, eager err %.3g", budget, n, errHoisted, errEager)
	if errHoisted > 1e-3 {
		t.Fatalf("chunked hoisted transform error %g above budget", errHoisted)
	}
	if errHoisted > 2*errEager+1e-9 {
		t.Fatalf("chunked hoisted error %g worse than eager %g beyond jitter", errHoisted, errEager)
	}
}

// TestBootstrapHoistedRegression runs the full small-N bootstrap through
// both transform paths: the hoisted pipeline must restore the same levels
// and be no less precise than the eager reference beyond noise jitter.
func TestBootstrapHoistedRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full bootstrap comparison is expensive; skipped with -short")
	}
	s, bt := bootSetup(t)
	defer s.ctx.Close()
	rng := rand.New(rand.NewSource(57))
	n := s.params.Slots()
	values := randomComplex(rng, n, 0.7)
	pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	hoisted, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	s.eval.SetEagerTransforms(true)
	eager, err := bt.Bootstrap(ct)
	s.eval.SetEagerTransforms(false)
	if err != nil {
		t.Fatal(err)
	}

	if hoisted.Level != eager.Level {
		t.Fatalf("hoisted bootstrap restored level %d, eager %d", hoisted.Level, eager.Level)
	}
	errHoisted := maxErr(s.encoder.Decode(s.dec.DecryptNew(hoisted)), values)
	errEager := maxErr(s.encoder.Decode(s.dec.DecryptNew(eager)), values)
	t.Logf("bootstrap: hoisted err %.3g, eager err %.3g", errHoisted, errEager)
	if errHoisted > 2e-2 {
		t.Fatalf("hoisted bootstrap error %g above budget 2e-2", errHoisted)
	}
	if errHoisted > 2*errEager+1e-9 {
		t.Fatalf("hoisted bootstrap error %g worse than eager %g beyond jitter", errHoisted, errEager)
	}
}

func TestRotateHoistedMissingKeyPanics(t *testing.T) {
	s := newTestSetup(t, 2, []int{1})
	defer s.ctx.Close()
	rng := rand.New(rand.NewSource(44))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, 2, s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing rotation key")
		}
	}()
	s.eval.RotateHoisted(ct, []int{1, 2})
}
