package ckks

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPooledCiphertextRoundTrip checks that pooled ciphertexts are drop-in
// replacements for plain ones through a full encrypt→evaluate→decrypt chain,
// and that recycling through PutCiphertext reuses the object.
func TestPooledCiphertextRoundTrip(t *testing.T) {
	s := newTestSetup(t, 2, []int{1})
	rng := rand.New(rand.NewSource(77))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	got := s.ctx.GetCiphertext(ct.Level, ct.Scale)
	if !got.Pooled() {
		t.Fatal("GetCiphertext did not mark the ciphertext pooled")
	}
	if err := s.ctx.CopyCiphertext(got, ct); err != nil {
		t.Fatal(err)
	}
	dec := s.encoder.Decode(s.dec.DecryptNew(got))
	if e := maxErr(dec, values); e > 1e-6 {
		t.Fatalf("pooled copy decrypts wrong: %g", e)
	}

	// Evaluator outputs are pooled and behave identically.
	sum := s.eval.Add(got, ct)
	if !sum.Pooled() {
		t.Fatal("evaluator output is not pooled")
	}
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = 2 * values[i]
	}
	dec = s.encoder.Decode(s.dec.DecryptNew(sum))
	if e := maxErr(dec, want); e > 1e-6 {
		t.Fatalf("pooled Add wrong: %g", e)
	}

	s.ctx.PutCiphertext(sum)
	s.ctx.PutCiphertext(got)
	reused := s.ctx.GetCiphertext(2, s.params.Scale)
	if reused != sum && reused != got {
		t.Fatal("pool did not recycle a returned ciphertext")
	}
	// A recycled ciphertext must come back zeroed.
	for lvl := 0; lvl <= 2; lvl++ {
		for j := 0; j < s.ctx.RingQ.N; j++ {
			if reused.C0.Coeffs[lvl][j] != 0 || reused.C1.Coeffs[lvl][j] != 0 {
				t.Fatal("GetCiphertext returned non-zero rows")
			}
		}
	}
}

// TestCopyCiphertextPlainTooSmall checks the error path: copying into a plain
// ciphertext with too few rows must fail instead of corrupting memory.
func TestCopyCiphertextPlainTooSmall(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	small := s.ctx.NewCiphertext(0, s.params.Scale)
	big := s.ctx.NewCiphertext(s.params.MaxLevel(), s.params.Scale)
	if err := s.ctx.CopyCiphertext(small, big); err == nil {
		t.Fatal("CopyCiphertext into an undersized plain ciphertext should error")
	}
	// A pooled destination grows instead.
	pooled := s.ctx.GetCiphertext(0, s.params.Scale)
	if err := s.ctx.CopyCiphertext(pooled, big); err != nil {
		t.Fatal(err)
	}
	if pooled.Level != big.Level {
		t.Fatalf("pooled dst level %d, want %d", pooled.Level, big.Level)
	}
	s.ctx.PutCiphertext(pooled)
}

// TestDropLevelReleasesPooledRows checks that DropLevel on a pooled
// ciphertext returns the discarded limb rows to the scratch pool and keeps
// the message intact, while a plain ciphertext keeps its rows attached.
func TestDropLevelReleasesPooledRows(t *testing.T) {
	s := newTestSetup(t, 1, nil)
	rng := rand.New(rand.NewSource(78))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	pooled := s.ctx.GetCiphertext(ct.Level, ct.Scale)
	if err := s.ctx.CopyCiphertext(pooled, ct); err != nil {
		t.Fatal(err)
	}
	pooled.DropLevel(1)
	if len(pooled.C0.Coeffs) != 2 || len(pooled.C1.Coeffs) != 2 {
		t.Fatalf("pooled DropLevel kept %d rows, want 2", len(pooled.C0.Coeffs))
	}
	dec := s.encoder.Decode(s.dec.DecryptNew(pooled))
	if e := maxErr(dec, values); e > 1e-6 {
		t.Fatalf("pooled DropLevel changed the message: %g", e)
	}
	// Growing back via CopyCiphertext reacquires rows.
	if err := s.ctx.CopyCiphertext(pooled, ct); err != nil {
		t.Fatal(err)
	}
	dec = s.encoder.Decode(s.dec.DecryptNew(pooled))
	if e := maxErr(dec, values); e > 1e-6 {
		t.Fatalf("regrown pooled ciphertext wrong: %g", e)
	}
	s.ctx.PutCiphertext(pooled)

	plain := ct.CopyNew(s.ctx)
	plain.DropLevel(1)
	if len(plain.C0.Coeffs) != s.params.MaxLevel()+1 {
		t.Fatal("plain DropLevel must not detach rows")
	}
}

// TestConcurrentEvaluation runs many goroutines through one evaluator —
// the in-flight pattern of the serving runtime — and checks every result.
// Run with -race to exercise the cache guards (automorphism tables, modUp/
// modDown extenders, ciphertext pool).
func TestConcurrentEvaluation(t *testing.T) {
	s := newTestSetup(t, 2, []int{1, 2})
	rng := rand.New(rand.NewSource(79))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)

	const flights = 8
	results := make([]*Ciphertext, flights)
	var wg sync.WaitGroup
	for f := 0; f < flights; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rot := s.eval.Rotate(ct, 1+f%2)
			prod := s.eval.Rescale(s.eval.MulRelin(rot, ct))
			results[f] = s.eval.Add(prod, prod)
			s.ctx.PutCiphertext(rot)
			s.ctx.PutCiphertext(prod)
		}(f)
	}
	wg.Wait()

	slots := s.params.Slots()
	for f := 0; f < flights; f++ {
		r := 1 + f%2
		want := make([]complex128, slots)
		for i := range want {
			want[i] = 2 * values[(i+r)%slots] * values[i]
		}
		dec := s.encoder.Decode(s.dec.DecryptNew(results[f]))
		if e := maxErr(dec, want); e > 1e-4 {
			t.Fatalf("flight %d (rot %d) wrong: %g", f, r, e)
		}
		s.ctx.PutCiphertext(results[f])
	}
}
