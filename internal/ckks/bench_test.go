package ckks

import (
	"math/rand"
	"testing"
)

// Benchmarks of the primitive HE ops the accelerator targets, measured on
// the real library at a reduced degree (N=2^12). These are the operations
// whose N=2^17 hardware costs internal/sim models.

func benchSetup(b *testing.B) (*testSetup, *Ciphertext, *Ciphertext) {
	b.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     12,
		LogQ:     []int{50, 40, 40, 40, 40, 40, 40, 40},
		LogP:     51,
		Dnum:     3,
		LogScale: 40,
		H:        64,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := NewContext(params)
	if err != nil {
		b.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, []int{1}, true)
	encoder := NewEncoder(ctx)
	s := &testSetup{
		params: params, ctx: ctx, encoder: encoder, kg: kg, sk: sk, rlk: rlk,
		enc: NewEncryptorSK(ctx, sk, 2), dec: NewDecryptor(ctx, sk),
		eval: NewEvaluator(ctx, encoder, rlk, rtks),
	}
	rng := rand.New(rand.NewSource(3))
	v0 := randomComplex(rng, params.Slots(), 1)
	v1 := randomComplex(rng, params.Slots(), 1)
	pt0, _ := encoder.Encode(v0, params.MaxLevel(), params.Scale)
	pt1, _ := encoder.Encode(v1, params.MaxLevel(), params.Scale)
	ct0, _ := s.enc.EncryptNew(pt0)
	ct1, _ := s.enc.EncryptNew(pt1)
	return s, ct0, ct1
}

func BenchmarkEncode(b *testing.B) {
	s, _, _ := benchSetup(b)
	rng := rand.New(rand.NewSource(4))
	v := randomComplex(rng, s.params.Slots(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.encoder.Encode(v, s.params.MaxLevel(), s.params.Scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHAdd(b *testing.B) {
	s, ct0, ct1 := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.eval.Add(ct0, ct1)
	}
}

func BenchmarkHMultRelin(b *testing.B) {
	s, ct0, ct1 := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.eval.MulRelin(ct0, ct1)
	}
}

func BenchmarkHRot(b *testing.B) {
	s, ct0, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.eval.Rotate(ct0, 1)
	}
}

func BenchmarkHRescale(b *testing.B) {
	s, ct0, ct1 := benchSetup(b)
	prod := s.eval.MulRelin(ct0, ct1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.eval.Rescale(prod)
	}
}

func BenchmarkBootstrap(b *testing.B) {
	if testing.Short() {
		b.Skip("bootstrapping bench skipped with -short")
	}
	s, bt := bootSetup(b)
	pt, _ := s.encoder.Encode([]complex128{0.25, -0.5}, 0, s.params.Scale)
	ct, _ := s.enc.EncryptNew(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Bootstrap(ct); err != nil {
			b.Fatal(err)
		}
	}
}
