package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"bts/internal/ring"
)

// Encoder maps complex message vectors to plaintext polynomials and back via
// the canonical embedding (the "special FFT" over the 5^j rotation group,
// Section 2.2). Encoding at scales larger than a machine word (needed for
// the bootstrapping matrix constants) transparently switches to a
// multi-precision path.
type Encoder struct {
	ctx      *Context
	m        int          // 2N, the cyclotomic index
	ksiPows  []complex128 // ksiPows[k] = exp(2πi·k/M), k ∈ [0, M]
	rotGroup []int        // 5^i mod M, i ∈ [0, N/2)
}

// NewEncoder builds the FFT tables for the context's ring degree.
func NewEncoder(ctx *Context) *Encoder {
	n := ctx.Params.N()
	m := 2 * n
	e := &Encoder{
		ctx:      ctx,
		m:        m,
		ksiPows:  make([]complex128, m+1),
		rotGroup: make([]int, n/2),
	}
	for k := 0; k <= m; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m)
		e.ksiPows[k] = cmplx.Exp(complex(0, angle))
	}
	g := 1
	for i := 0; i < n/2; i++ {
		e.rotGroup[i] = g
		g = (g * 5) % m
	}
	return e
}

// Slots returns the number of message slots N/2.
func (e *Encoder) Slots() int { return e.ctx.Params.Slots() }

// Encode embeds values (length must divide Slots(); shorter vectors are
// replicated to fill all slots) into a plaintext at the given level and
// scale, returned in the NTT domain.
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*Plaintext, error) {
	pt, _, err := e.encode(values, level, scale, false)
	return pt, err
}

// EncodeQP is Encode plus the same integer polynomial reduced over the
// special p-chain (full chain, NTT domain). The P-side residues are what the
// double-hoisted linear transform multiplies against key-switch accumulators
// that are still in the extended QP basis (the deferred-ModDown path).
func (e *Encoder) EncodeQP(values []complex128, level int, scale float64) (*Plaintext, *ring.Poly, error) {
	return e.encode(values, level, scale, true)
}

func (e *Encoder) encode(values []complex128, level int, scale float64, withP bool) (*Plaintext, *ring.Poly, error) {
	n := e.Slots()
	if len(values) == 0 || n%len(values) != 0 {
		return nil, nil, fmt.Errorf("ckks: %d values cannot fill %d slots", len(values), n)
	}
	vals := make([]complex128, n)
	for i := range vals {
		vals[i] = values[i%len(values)]
	}
	e.fftSpecialInv(vals)

	rq, rp := e.ctx.RingQ, e.ctx.RingP
	p := rq.NewPolyLevel(level)
	var pP *ring.Poly
	if withP {
		pP = rp.NewPoly(len(rp.Moduli))
	}
	// Use the int64 fast path while |coeff·scale| stays well below 2^62;
	// bootstrapping matrices encoded at multi-prime scales take the
	// big.Int path.
	maxAbs := 0.0
	for _, v := range vals {
		if a := math.Abs(real(v)); a > maxAbs {
			maxAbs = a
		}
		if a := math.Abs(imag(v)); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs*scale < math.Exp2(61) {
		coeffs := make([]int64, rq.N)
		for j := 0; j < n; j++ {
			coeffs[j] = int64(math.Round(real(vals[j]) * scale))
			coeffs[j+n] = int64(math.Round(imag(vals[j]) * scale))
		}
		rq.SetInt64Coeffs(p, coeffs, level)
		if withP {
			rp.SetInt64Coeffs(pP, coeffs, rp.MaxLevel())
		}
	} else {
		coeffs := make([]*big.Int, rq.N)
		sc := new(big.Float).SetPrec(256).SetFloat64(scale)
		for j := 0; j < n; j++ {
			coeffs[j] = bigRound(new(big.Float).SetPrec(256).SetFloat64(real(vals[j])), sc)
			coeffs[j+n] = bigRound(new(big.Float).SetPrec(256).SetFloat64(imag(vals[j])), sc)
		}
		rq.SetBigCoeffs(p, coeffs, level)
		if withP {
			rp.SetBigCoeffs(pP, coeffs, rp.MaxLevel())
		}
	}
	rq.NTT(p, level)
	if withP {
		rp.NTT(pP, rp.MaxLevel())
	}
	return &Plaintext{Value: p, Level: level, Scale: scale}, pP, nil
}

// bigRound returns round(v*scale) as a big integer.
func bigRound(v, scale *big.Float) *big.Int {
	v.Mul(v, scale)
	half := big.NewFloat(0.5)
	if v.Sign() >= 0 {
		v.Add(v, half)
	} else {
		v.Sub(v, half)
	}
	out, _ := v.Int(nil)
	return out
}

// Decode recovers the complex message vector from a plaintext.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	return e.decodePoly(pt.Value, pt.Level, pt.Scale)
}

func (e *Encoder) decodePoly(p *ring.Poly, level int, scale float64) []complex128 {
	rq := e.ctx.RingQ
	tmp := rq.CopyNew(p, level)
	rq.INTT(tmp, level)
	coeffs := rq.PolyToBigCentered(tmp, level)
	n := e.Slots()
	vals := make([]complex128, n)
	scInv := new(big.Float).SetPrec(256).SetFloat64(scale)
	for j := 0; j < n; j++ {
		re := bigToFloat(coeffs[j], scInv)
		im := bigToFloat(coeffs[j+n], scInv)
		vals[j] = complex(re, im)
	}
	e.fftSpecial(vals)
	return vals
}

func bigToFloat(v *big.Int, scale *big.Float) float64 {
	f := new(big.Float).SetPrec(256).SetInt(v)
	f.Quo(f, scale)
	out, _ := f.Float64()
	return out
}

// fftSpecial is the forward transform (coefficients → slots, used by Decode
// and by the SlotToCoeff matrix construction).
func (e *Encoder) fftSpecial(vals []complex128) {
	n := len(vals)
	bitReverseInPlace(vals)
	for length := 2; length <= n; length <<= 1 {
		lenh, lenq := length>>1, length<<2
		gap := e.m / lenq
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * gap
				u := vals[i+j]
				v := vals[i+j+lenh] * e.ksiPows[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// fftSpecialInv is the inverse transform (slots → coefficients, used by
// Encode and by the CoeffToSlot matrix construction).
func (e *Encoder) fftSpecialInv(vals []complex128) {
	n := len(vals)
	for length := n; length >= 2; length >>= 1 {
		lenh, lenq := length>>1, length<<2
		gap := e.m / lenq
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * gap
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.ksiPows[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseInPlace(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

func bitReverseInPlace(vals []complex128) {
	n := len(vals)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

func log2f(x float64) float64 { return math.Log2(x) }
