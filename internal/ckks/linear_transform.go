package ckks

import (
	"fmt"
	"math"
	"sort"

	"bts/internal/ring"
)

// LinearTransform is a plaintext matrix in diagonal representation, evaluated
// homomorphically with the baby-step/giant-step (BSGS) algorithm: the
// workhorse of the homomorphic linear transformations inside bootstrapping
// (Section 2.4: "bootstrapping mainly consists of homomorphic linear
// transforms and approximate sine evaluation").
type LinearTransform struct {
	// diags maps the diagonal index k to the encoded diagonal, pre-rotated
	// by -(k/n1)*n1 slots as BSGS requires.
	diags map[int]*Plaintext
	// diagsP carries the same diagonals reduced over the special p-chain
	// (full chain, NTT domain), consumed by the double-hoisted evaluation
	// path which multiplies them against key-switch accumulators still in
	// the extended QP basis.
	diagsP map[int]*ring.Poly
	n1     int
	// Level and Scale are where/how the diagonals were encoded.
	Level int
	Scale float64
	slots int
}

// NewLinearTransform encodes the matrix given by its generalized diagonals
// (diags[k][j] = M[j][(j+k) mod slots]) at the given level and plaintext
// scale. Slots must equal the parameter slot count; zero diagonals may be
// omitted from the map. The baby-step count n1 is chosen by the hoisted
// cost model (see bsgsSplit); use NewLinearTransformN1 to pin it explicitly.
func NewLinearTransform(enc *Encoder, diags map[int][]complex128, level int, scale float64) (*LinearTransform, error) {
	return NewLinearTransformN1(enc, diags, level, scale, 0)
}

// NewLinearTransformN1 is NewLinearTransform with an explicit baby-step
// count n1 (a power of two ≤ slots); n1 = 0 selects the cost-model split.
// Pinning n1 is the experimentation knob for the hoisting cost model — see
// `btsbench -experiment hoisting`.
func NewLinearTransformN1(enc *Encoder, diags map[int][]complex128, level int, scale float64, n1 int) (*LinearTransform, error) {
	n := enc.Slots()
	if len(diags) == 0 {
		return nil, fmt.Errorf("ckks: linear transform with no diagonals")
	}
	if n1 == 0 {
		keys := make([]int, 0, len(diags))
		for k := range diags {
			keys = append(keys, k)
		}
		n1 = bsgsSplit(keys, n)
	} else if n1 < 1 || n1 > n || n1&(n1-1) != 0 {
		return nil, fmt.Errorf("ckks: baby-step count %d is not a power of two in [1,%d]", n1, n)
	}
	lt := &LinearTransform{
		diags:  make(map[int]*Plaintext, len(diags)),
		diagsP: make(map[int]*ring.Poly, len(diags)),
		n1:     n1,
		Level:  level,
		Scale:  scale,
		slots:  n,
	}
	for k, d := range diags {
		if len(d) != n {
			return nil, fmt.Errorf("ckks: diagonal %d has %d entries, want %d", k, len(d), n)
		}
		k = ((k % n) + n) % n
		g := k / n1
		rot := make([]complex128, n)
		// Pre-rotate by -(g*n1): rot[j] = d[(j - g*n1) mod n].
		for j := 0; j < n; j++ {
			rot[j] = d[((j-g*n1)%n+n)%n]
		}
		pt, ptP, err := enc.EncodeQP(rot, level, scale)
		if err != nil {
			return nil, err
		}
		lt.diags[k] = pt
		lt.diagsP[k] = ptP
	}
	return lt, nil
}

// giantStepCost is the cost of a giant-step rotation (a full key-switch:
// iNTT + β·(BConv + NTT) + MAC + ModDown) relative to a hoisted baby step
// (an NTT-domain permutation + MAC against the shared decomposition). The
// value is a host-measured round figure — `btsbench -experiment hoisting`
// reports the live ratio — and only steers the BSGS split, so being off by
// 2× shifts n1 by at most one power of two. Pin n1 per transform with
// NewLinearTransformN1 to experiment with other splits.
const giantStepCost = 8.0

// bsgsSplit picks the baby-step count n1 (a power of two) minimizing the
// hoisted-evaluation cost over the transform's *actual* diagonal indices:
// (#distinct nonzero baby rotations) + giantStepCost·(#giant-step groups).
// Baby steps reuse one hoisted decomposition and are therefore much cheaper
// than the full key-switch a giant-step rotation pays, which biases the
// split toward more baby steps than the classic n1 + #diags/n1 model.
//
// Counting distinct babies from the index set (instead of assuming all n1
// residues occur) is what makes the factored DFT stages cheap: their
// diagonals live on a stride-2^k lattice, so only #diags·n1/slots baby
// residues inside each giant group actually appear and the optimum shifts to
// much larger n1 than a dense transform of equal diagonal count would pick.
// For dense contiguous index sets this degrades exactly to the weighted
// n1 + giantStepCost·ceil(#diags/n1) model (minus the free 0-baby).
func bsgsSplit(diagIndices []int, slots int) int {
	best, bestCost := 1, math.Inf(1)
	for n1 := 1; n1 <= slots; n1 <<= 1 {
		babies := map[int]bool{}
		giants := map[int]bool{}
		for _, k := range diagIndices {
			k = ((k % slots) + slots) % slots
			if b := k % n1; b != 0 {
				babies[b] = true
			}
			giants[k/n1] = true
		}
		cost := float64(len(babies)) + giantStepCost*float64(len(giants))
		if cost < bestCost {
			best, bestCost = n1, cost
		}
	}
	return best
}

// BSGSRotations reports the cost-model baby-step split and the rotation set
// a transform over the given diagonal index set would require, without
// encoding any plaintexts — the static planning entry point btsparams uses
// to size the Table 2 rotation-key set before paying for a real context.
func BSGSRotations(diagIndices []int, slots int) (n1 int, rotations []int) {
	n1 = bsgsSplit(diagIndices, slots)
	set := map[int]bool{}
	for _, k := range diagIndices {
		k = ((k % slots) + slots) % slots
		if b := k % n1; b != 0 {
			set[b] = true
		}
		if g := k / n1; g != 0 {
			set[g*n1] = true
		}
	}
	rotations = make([]int, 0, len(set))
	for r := range set {
		rotations = append(rotations, r)
	}
	sort.Ints(rotations)
	return n1, rotations
}

// N1 reports the baby-step count the transform was encoded for.
func (lt *LinearTransform) N1() int { return lt.n1 }

// Diagonals reports the number of stored (nonzero) generalized diagonals.
func (lt *LinearTransform) Diagonals() int { return len(lt.diags) }

// Rotations returns the rotation amounts required to evaluate the transform
// (keys the caller must generate).
func (lt *LinearTransform) Rotations() []int {
	set := map[int]bool{}
	for k := range lt.diags {
		b := k % lt.n1
		g := k / lt.n1
		if b != 0 {
			set[b] = true
		}
		if g != 0 {
			set[g*lt.n1] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// byGiantStep groups the stored diagonal indices by giant step and returns
// the sorted giant indices alongside the set of needed baby rotations.
func (lt *LinearTransform) byGiantStep() (byGiant map[int][]int, giants []int, babies map[int]bool) {
	byGiant = map[int][]int{}
	babies = map[int]bool{}
	for k := range lt.diags {
		byGiant[k/lt.n1] = append(byGiant[k/lt.n1], k)
		babies[k%lt.n1] = true
	}
	giants = make([]int, 0, len(byGiant))
	for g := range byGiant {
		giants = append(giants, g)
		sort.Ints(byGiant[g])
	}
	sort.Ints(giants)
	return byGiant, giants, babies
}

// LinearTransform applies lt to ct: out = M · slots(ct), not rescaled (the
// output scale is ct.Scale·lt.Scale). It evaluates the BSGS sum with hoisted
// baby steps and double-hoisted (lazy-ModDown) giant accumulation: ct is
// decomposed once, each baby step costs a slice permutation + MAC kept in
// the extended QP basis, every diagonal is folded in with an element-wise
// plaintext product there, and each giant step pays a single deferred
// ModDown per ciphertext component plus one full rotation. The eager
// reference path (one key-switch per baby step, one ModDown per diagonal
// group) remains available via LinearTransformEager and the
// SetEagerTransforms toggle.
func (ev *Evaluator) LinearTransform(ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	if ev.eagerTransforms || lt.diagsP == nil {
		return ev.LinearTransformEager(ct, lt)
	}
	sp := ev.begin(spanLinear)
	ctx := ev.ctx
	rq, rp := ctx.RingQ, ctx.RingP
	lvl := ct.Level
	if lt.Level < lvl {
		lvl = lt.Level
	}
	lp := rp.MaxLevel()
	scale := ct.Scale * lt.Scale

	byGiant, giants, need := lt.byGiantStep()

	// Validate every rotation key up front so a missing key panics before
	// any scratch is borrowed.
	for b := range need {
		if b != 0 {
			ev.rotationKey(rq.GaloisElement(b))
		}
	}
	for _, g := range giants {
		if g != 0 {
			ev.rotationKey(rq.GaloisElement(g * lt.n1))
		}
	}

	// Hoisted baby steps: decompose ct once, then per baby rotation keep the
	// rotated C0 (q-basis) and the key-switch MAC accumulators in the
	// extended QP basis — no ModDown yet (double hoisting). A transform
	// whose diagonals all sit on giant-step boundaries has no nonzero baby
	// step and skips the decomposition entirely.
	type babyExt struct {
		c0     *ring.Poly // σ_b(ct.C0), q-basis
		q0, q1 *ring.Poly // key-switch accumulators, q part
		p0, p1 *ring.Poly // key-switch accumulators, p part
	}
	babies := make(map[int]*babyExt, len(need))
	var hd *HoistedDecomposition
	for b := range need {
		if b == 0 {
			continue
		}
		if hd == nil {
			hd = ev.decomposeNTT(ct.C1, lvl)
		}
		g := rq.GaloisElement(b)
		be := &babyExt{
			c0: rq.GetPolyNoZero(),
			q0: rq.GetPolyNoZero(), // keySwitchHoistedLazy overwrites
			q1: rq.GetPolyNoZero(),
			p0: rp.GetPolyNoZero(),
			p1: rp.GetPolyNoZero(),
		}
		rq.AutomorphismNTT(ct.C0, g, be.c0, lvl)
		ev.keySwitchHoistedLazy(g, hd, ev.rotationKey(g), be.q0, be.p0, be.q1, be.p1)
		babies[b] = be
	}
	if hd != nil {
		hd.Release()
	}

	// Giant-step accumulators: the group's diagonal products are folded in
	// lazily as unreduced 128-bit sums (ring.Acc128) — the plain q-basis
	// sums of diagonal × rotated-C0 products, and the extended QP sums of
	// diagonal × key-switch-accumulator products — then reduced once per
	// coefficient before the deferred ModDown. Groups larger than the
	// rings' lazy overflow budget (only reachable with very wide moduli)
	// are folded in chunks: chunk 0 reduces straight into the destination
	// polynomials, later chunks reduce into scratch and modular-add on top.
	plain0 := rq.GetPolyNoZero()
	plain1 := rq.GetPolyNoZero()
	ext0 := rq.GetPolyNoZero()
	ext1 := rq.GetPolyNoZero()
	extP0 := rp.GetPolyNoZero()
	extP1 := rp.GetPolyNoZero()
	merge := rq.GetPolyNoZero()
	mergeP := rp.GetPolyNoZero()
	budget := rq.LazyMACBudget()
	if pb := rp.LazyMACBudget(); pb < budget {
		budget = pb
	}

	var out *Ciphertext
	for _, g := range giants {
		group := byGiant[g]
		hasExt := false
		for start := 0; start < len(group); start += budget {
			end := start + budget
			if end > len(group) {
				end = len(group)
			}
			a0Q := rq.GetAcc(lvl)
			a1Q := rq.GetAcc(lvl)
			a0q := rq.GetAcc(lvl)
			a1q := rq.GetAcc(lvl)
			a0p := rp.GetAcc(lp)
			a1p := rp.GetAcc(lp)
			ev.counters.PMult.Add(int64(end - start)) // diagonal folds (lazy PMults)
			for _, k := range group[start:end] {
				pt, ptP := lt.diags[k].Value, lt.diagsP[k]
				if b := k % lt.n1; b == 0 {
					// The un-rotated operand has no extended part.
					rq.MulCoeffsAndAddLazy(pt, ct.C0, a0Q, lvl)
					rq.MulCoeffsAndAddLazy(pt, ct.C1, a1Q, lvl)
				} else {
					be := babies[b]
					rq.MulCoeffsAndAddLazy(pt, be.c0, a0Q, lvl)
					rq.MulCoeffsAndAddLazy(pt, be.q0, a0q, lvl)
					rp.MulCoeffsAndAddLazy(ptP, be.p0, a0p, lp)
					rq.MulCoeffsAndAddLazy(pt, be.q1, a1q, lvl)
					rp.MulCoeffsAndAddLazy(ptP, be.p1, a1p, lp)
					hasExt = true
				}
			}
			if start == 0 {
				rq.ReduceAcc(a0Q, plain0, lvl)
				rq.ReduceAcc(a1Q, plain1, lvl)
				if hasExt || end < len(group) {
					rq.ReduceAcc(a0q, ext0, lvl)
					rq.ReduceAcc(a1q, ext1, lvl)
					rp.ReduceAcc(a0p, extP0, lp)
					rp.ReduceAcc(a1p, extP1, lp)
				}
			} else {
				rq.ReduceAcc(a0Q, merge, lvl)
				rq.Add(plain0, merge, plain0, lvl)
				rq.ReduceAcc(a1Q, merge, lvl)
				rq.Add(plain1, merge, plain1, lvl)
				rq.ReduceAcc(a0q, merge, lvl)
				rq.Add(ext0, merge, ext0, lvl)
				rq.ReduceAcc(a1q, merge, lvl)
				rq.Add(ext1, merge, ext1, lvl)
				rp.ReduceAcc(a0p, mergeP, lp)
				rp.Add(extP0, mergeP, extP0, lp)
				rp.ReduceAcc(a1p, mergeP, lp)
				rp.Add(extP1, mergeP, extP1, lp)
			}
			rp.PutAcc(a1p)
			rp.PutAcc(a0p)
			rq.PutAcc(a1q)
			rq.PutAcc(a0q)
			rq.PutAcc(a1Q)
			rq.PutAcc(a0Q)
		}

		// One deferred ModDown per component folds the whole giant step's
		// baby products out of the extended basis at once.
		inner := ctx.getCiphertextNoZero(lvl, scale)
		if hasExt {
			ev.modDown(ext0, extP0, lvl, inner.C0)
			ev.modDown(ext1, extP1, lvl, inner.C1)
			rq.Add(inner.C0, plain0, inner.C0, lvl)
			rq.Add(inner.C1, plain1, inner.C1, lvl)
		} else {
			rq.CopyLevel(inner.C0, plain0, lvl)
			rq.CopyLevel(inner.C1, plain1, lvl)
		}
		if g != 0 {
			rot := ev.Rotate(inner, g*lt.n1)
			ctx.PutCiphertext(inner)
			inner = rot
		}
		if out == nil {
			out = inner
		} else {
			ev.AddInPlace(out, inner)
			ctx.PutCiphertext(inner)
		}
	}

	rp.PutPoly(mergeP)
	rq.PutPoly(merge)
	rp.PutPoly(extP1)
	rp.PutPoly(extP0)
	rq.PutPoly(ext1)
	rq.PutPoly(ext0)
	rq.PutPoly(plain1)
	rq.PutPoly(plain0)
	for _, be := range babies {
		rp.PutPoly(be.p1)
		rp.PutPoly(be.p0)
		rq.PutPoly(be.q1)
		rq.PutPoly(be.q0)
		rq.PutPoly(be.c0)
	}
	ev.endSpan(&sp, out)
	return out
}

// LinearTransformEager is the reference BSGS evaluation: every baby step is
// a full naive rotation (its own decomposition) and every diagonal product
// goes through a ModDown'd ciphertext. It exists for benchmarking and
// error-budget comparison against the hoisted path; results agree with
// LinearTransform up to the (smaller) deferred-ModDown rounding noise.
func (ev *Evaluator) LinearTransformEager(ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	ctx := ev.ctx
	byGiant, giants, need := lt.byGiantStep()
	// Baby-step rotations of the input.
	babies := map[int]*Ciphertext{}
	for b := range need {
		if b == 0 {
			babies[0] = ct
		} else {
			babies[b] = ev.Rotate(ct, b)
		}
	}

	var out *Ciphertext
	for _, g := range giants {
		var inner *Ciphertext
		for _, k := range byGiant[g] {
			term := ev.MulPlain(babies[k%lt.n1], lt.diags[k])
			if inner == nil {
				inner = term
			} else {
				ev.AddInPlace(inner, term)
				ctx.PutCiphertext(term)
			}
		}
		if g != 0 {
			rot := ev.Rotate(inner, g*lt.n1)
			ctx.PutCiphertext(inner)
			inner = rot
		}
		if out == nil {
			out = inner
		} else {
			ev.AddInPlace(out, inner)
			ctx.PutCiphertext(inner)
		}
	}
	for b, baby := range babies {
		if b != 0 {
			ctx.PutCiphertext(baby)
		}
	}
	return out
}

// MatrixFromFunc builds the diagonal representation of an arbitrary n×n
// complex matrix given entry-wise, dropping diagonals whose largest entry is
// below dropTol (0 keeps everything).
func MatrixFromFunc(n int, entry func(row, col int) complex128, dropTol float64) map[int][]complex128 {
	diags := map[int][]complex128{}
	for k := 0; k < n; k++ {
		d := make([]complex128, n)
		maxAbs := 0.0
		for j := 0; j < n; j++ {
			d[j] = entry(j, (j+k)%n)
			if a := cabs(d[j]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > dropTol {
			diags[k] = d
		}
	}
	return diags
}

func cabs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
