package ckks

import (
	"fmt"
	"math"
	"sort"
)

// LinearTransform is a plaintext matrix in diagonal representation, evaluated
// homomorphically with the baby-step/giant-step (BSGS) algorithm: the
// workhorse of the homomorphic linear transformations inside bootstrapping
// (Section 2.4: "bootstrapping mainly consists of homomorphic linear
// transforms and approximate sine evaluation").
type LinearTransform struct {
	// diags maps the diagonal index k to the encoded diagonal, pre-rotated
	// by -(k/n1)*n1 slots as BSGS requires.
	diags map[int]*Plaintext
	n1    int
	// Level and Scale are where/how the diagonals were encoded.
	Level int
	Scale float64
	slots int
}

// NewLinearTransform encodes the matrix given by its generalized diagonals
// (diags[k][j] = M[j][(j+k) mod slots]) at the given level and plaintext
// scale. Slots must equal the parameter slot count; zero diagonals may be
// omitted from the map.
func NewLinearTransform(enc *Encoder, diags map[int][]complex128, level int, scale float64) (*LinearTransform, error) {
	n := enc.Slots()
	if len(diags) == 0 {
		return nil, fmt.Errorf("ckks: linear transform with no diagonals")
	}
	n1 := bsgsSplit(len(diags), n)
	lt := &LinearTransform{
		diags: make(map[int]*Plaintext, len(diags)),
		n1:    n1,
		Level: level,
		Scale: scale,
		slots: n,
	}
	for k, d := range diags {
		if len(d) != n {
			return nil, fmt.Errorf("ckks: diagonal %d has %d entries, want %d", k, len(d), n)
		}
		k = ((k % n) + n) % n
		g := k / n1
		rot := make([]complex128, n)
		// Pre-rotate by -(g*n1): rot[j] = d[(j - g*n1) mod n].
		for j := 0; j < n; j++ {
			rot[j] = d[((j-g*n1)%n+n)%n]
		}
		pt, err := enc.Encode(rot, level, scale)
		if err != nil {
			return nil, err
		}
		lt.diags[k] = pt
	}
	return lt, nil
}

// bsgsSplit picks the baby-step count n1 (a power of two) minimizing
// n1 + #diags/n1, the number of HRot ops the transform performs.
func bsgsSplit(nDiags, slots int) int {
	best, bestCost := 1, math.MaxInt
	for n1 := 1; n1 <= slots; n1 <<= 1 {
		cost := n1 + (nDiags+n1-1)/n1
		if cost < bestCost {
			best, bestCost = n1, cost
		}
	}
	return best
}

// Rotations returns the rotation amounts required to evaluate the transform
// (keys the caller must generate).
func (lt *LinearTransform) Rotations() []int {
	set := map[int]bool{}
	for k := range lt.diags {
		b := k % lt.n1
		g := k / lt.n1
		if b != 0 {
			set[b] = true
		}
		if g != 0 {
			set[g*lt.n1] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// LinearTransform applies lt to ct: out = M · slots(ct), not rescaled (the
// output scale is ct.Scale·lt.Scale). It performs #babysteps + #giantsteps
// HRot ops and one PMult+HAdd per stored diagonal — exactly the op mix the
// bootstrapping trace generator (internal/workload) accounts for.
func (ev *Evaluator) LinearTransform(ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	// Group diagonals by giant step.
	byGiant := map[int][]int{}
	for k := range lt.diags {
		byGiant[k/lt.n1] = append(byGiant[k/lt.n1], k)
	}
	// Baby-step rotations of the input.
	babies := map[int]*Ciphertext{}
	need := map[int]bool{}
	for _, ks := range byGiant {
		for _, k := range ks {
			need[k%lt.n1] = true
		}
	}
	for b := range need {
		if b == 0 {
			babies[0] = ct
		} else {
			babies[b] = ev.Rotate(ct, b)
		}
	}
	giants := make([]int, 0, len(byGiant))
	for g := range byGiant {
		giants = append(giants, g)
	}
	sort.Ints(giants)

	var out *Ciphertext
	for _, g := range giants {
		var inner *Ciphertext
		ks := byGiant[g]
		sort.Ints(ks)
		for _, k := range ks {
			term := ev.MulPlain(babies[k%lt.n1], lt.diags[k])
			if inner == nil {
				inner = term
			} else {
				// term is freshly allocated by MulPlain, so the accumulation
				// can fold in place instead of allocating per diagonal.
				ev.AddInPlace(inner, term)
			}
		}
		if g != 0 {
			inner = ev.Rotate(inner, g*lt.n1)
		}
		if out == nil {
			out = inner
		} else {
			ev.AddInPlace(out, inner)
		}
	}
	return out
}

// MatrixFromFunc builds the diagonal representation of an arbitrary n×n
// complex matrix given entry-wise, dropping diagonals whose largest entry is
// below dropTol (0 keeps everything).
func MatrixFromFunc(n int, entry func(row, col int) complex128, dropTol float64) map[int][]complex128 {
	diags := map[int][]complex128{}
	for k := 0; k < n; k++ {
		d := make([]complex128, n)
		maxAbs := 0.0
		for j := 0; j < n; j++ {
			d[j] = entry(j, (j+k)%n)
			if a := cabs(d[j]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > dropTol {
			diags[k] = d
		}
	}
	return diags
}

func cabs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
