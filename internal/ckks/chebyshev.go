package ckks

import (
	"fmt"
	"math"
)

// ChebyshevCoeffs returns the degree-`degree` Chebyshev interpolation of f
// over [a,b]: coefficients c such that f(x) ≈ Σ c_k T_k(t) with
// t = (2x-(a+b))/(b-a) ∈ [-1,1]. This is how bootstrapping approximates the
// scaled sine that homomorphically realizes the modular reduction
// (Section 2.4: "approximate sine evaluation").
func ChebyshevCoeffs(f func(float64) float64, a, b float64, degree int) []float64 {
	n := degree + 1
	// Chebyshev nodes and function samples.
	fx := make([]float64, n)
	for j := 0; j < n; j++ {
		t := math.Cos(math.Pi * (float64(j) + 0.5) / float64(n))
		x := t*(b-a)/2 + (a+b)/2
		fx[j] = f(x)
	}
	coeffs := make([]float64, n)
	for k := 0; k < n; k++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += fx[j] * math.Cos(math.Pi*float64(k)*(float64(j)+0.5)/float64(n))
		}
		coeffs[k] = 2 * s / float64(n)
	}
	coeffs[0] /= 2
	return coeffs
}

// EvalChebyshevDirect evaluates the Chebyshev expansion at a plain float
// (Clenshaw recurrence) — the reference against which the homomorphic
// evaluation is tested.
func EvalChebyshevDirect(coeffs []float64, t float64) float64 {
	var b1, b2 float64
	for k := len(coeffs) - 1; k >= 1; k-- {
		b1, b2 = coeffs[k]+2*t*b1-b2, b1
	}
	return coeffs[0] + t*b1 - b2
}

// chebDivide divides the Chebyshev-basis polynomial p by T_g:
// p = q·T_g + r, using T_i = 2·T_g·T_{i-g} - T_{|i-2g|}.
func chebDivide(p []float64, g int) (q, r []float64) {
	work := append([]float64(nil), p...)
	d := len(work) - 1
	q = make([]float64, d-g+1)
	for i := d; i >= g; i-- {
		c := work[i]
		if c == 0 {
			continue
		}
		if i == g {
			q[0] += c
		} else {
			q[i-g] += 2 * c
			k := i - 2*g
			if k < 0 {
				k = -k
			}
			work[k] -= c
		}
		work[i] = 0
	}
	r = work[:g]
	return q, r
}

// trimCheb removes trailing (near-)zero coefficients.
func trimCheb(p []float64) []float64 {
	d := len(p)
	for d > 0 && math.Abs(p[d-1]) < 1e-14 {
		d--
	}
	return p[:d]
}

// EvalChebyshev homomorphically evaluates Σ c_k T_k(t) on a ciphertext
// encoding t ∈ [-1,1], with the Paterson–Stockmeyer strategy: a baby-step
// basis T_1..T_bs, giant powers T_{2^j·bs}, and recursive Chebyshev division.
// Multiplicative depth ≈ ceil(log2(degree))+1. The result keeps scale ≈ Δ.
func (ev *Evaluator) EvalChebyshev(ct *Ciphertext, coeffs []float64) (*Ciphertext, error) {
	coeffs = trimCheb(append([]float64(nil), coeffs...))
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("ckks: empty Chebyshev polynomial")
	}
	degree := len(coeffs) - 1
	if degree == 0 {
		out := ev.MulConst(ct, 0, float64(ev.params().Q[ct.Level]))
		out = ev.Rescale(out)
		return ev.AddConst(out, complex(coeffs[0], 0)), nil
	}
	sp := ev.begin(spanChebyshev)
	// Baby-step count: 2^ceil(m/2) for degree < 2^m.
	m := bitsFor(degree + 1)
	bs := 1 << ((m + 1) / 2)
	basis := map[int]*Ciphertext{1: ct}
	// T_1..T_bs.
	for k := 2; k <= bs; k++ {
		ev.chebPower(basis, k)
	}
	// Giant powers T_{2bs}, T_{4bs}, ... up to degree.
	for g := 2 * bs; g <= degree; g *= 2 {
		ev.chebPower(basis, g)
	}
	out := ev.evalChebPS(coeffs, basis, bs)
	ev.endSpan(&sp, out)
	return out, nil
}

func bitsFor(v int) int {
	b := 0
	for 1<<b < v {
		b++
	}
	return b
}

// chebPower inserts T_k into the basis using T_{a+b} = 2·T_a·T_b - T_{|a-b|}.
func (ev *Evaluator) chebPower(basis map[int]*Ciphertext, k int) {
	if _, ok := basis[k]; ok {
		return
	}
	a := k / 2
	b := k - a
	ev.chebPower(basis, a)
	ev.chebPower(basis, b)
	ta, tb := basis[a], basis[b]
	prod := ev.Rescale(ev.MulRelin(ta, tb))
	dbl := ev.Add(prod, prod)
	var out *Ciphertext
	if a == b {
		out = ev.AddConst(dbl, -1) // T_{2a} = 2T_a² - 1
	} else {
		d := a - b
		if d < 0 {
			d = -d
		}
		ev.chebPower(basis, d)
		out = ev.Sub(dbl, basis[d])
	}
	basis[k] = out
}

// evalChebPS is the recursive Paterson–Stockmeyer evaluation.
func (ev *Evaluator) evalChebPS(coeffs []float64, basis map[int]*Ciphertext, bs int) *Ciphertext {
	coeffs = trimCheb(coeffs)
	if len(coeffs) <= bs {
		return ev.chebLinearCombo(coeffs, basis)
	}
	d := len(coeffs) - 1
	g := bs
	for g*2 <= d {
		g *= 2
	}
	qc, rc := chebDivide(coeffs, g)
	q := ev.evalChebPS(qc, basis, bs)
	r := ev.evalChebPS(rc, basis, bs)
	prod := ev.Rescale(ev.MulRelin(q, basis[g]))
	return ev.Add(prod, r)
}

// chebLinearCombo computes Σ_{k≤deg<bs} c_k·T_k + c_0 in one level.
func (ev *Evaluator) chebLinearCombo(coeffs []float64, basis map[int]*Ciphertext) *Ciphertext {
	// Find the lowest level among the basis elements we need.
	lvl := basis[1].Level
	for k := 1; k < len(coeffs); k++ {
		if math.Abs(coeffs[k]) > 1e-14 && basis[k].Level < lvl {
			lvl = basis[k].Level
		}
	}
	cScale := float64(ev.params().Q[lvl])
	var acc *Ciphertext
	for k := 1; k < len(coeffs); k++ {
		if math.Abs(coeffs[k]) <= 1e-14 {
			continue
		}
		t := basis[k].CopyNew(ev.ctx)
		if t.Level > lvl {
			t.DropLevel(lvl)
		}
		term := ev.MulConst(t, complex(coeffs[k], 0), cScale)
		if acc == nil {
			acc = term
		} else {
			ev.AddInPlace(acc, term)
		}
	}
	if acc == nil {
		// Constant polynomial: build an encryption of c_0 at the basis scale.
		z := ev.MulConst(basis[1], 0, cScale)
		acc = z
	}
	out := ev.Rescale(acc)
	c0 := 0.0
	if len(coeffs) > 0 {
		c0 = coeffs[0]
	}
	if c0 != 0 {
		out = ev.AddConst(out, complex(c0, 0))
	}
	return out
}
