package ckks

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bts/internal/ring"
)

// BootstrapParams configures the bootstrapping pipeline (the [40]-style
// algorithm of Section 2.4: ModRaise → CoeffToSlot → EvalMod → SlotToCoeff).
type BootstrapParams struct {
	// K is the half-range of the scaled-sine approximation; it must bound
	// ||I||∞ + 1 for the modulus-raising overflow polynomial I (which grows
	// with the secret Hamming weight H).
	K float64
	// SineDegree is the Chebyshev degree approximating sin(2πy)/(2π) over
	// [-K, K]. Depth consumed by EvalMod is ceil(log2(deg+1))+1.
	SineDegree int
	// CtSStages and StCStages factor CoeffToSlot and SlotToCoeff into that
	// many radix stages (the paper's Table 2 evaluates the linear transforms
	// in exactly this grouped-FFT form; see dft.go). Each stage consumes one
	// level but touches only O(2^(logSlots/stages)) diagonals, so raising the
	// stage count trades depth for a multiplicative drop in rotations and
	// key-switch work. Both zero selects the dense single-stage matrices
	// only; otherwise both must be in [1, log2(slots)].
	CtSStages int
	StCStages int
}

// DefaultBootstrapParams works for very sparse secrets (H ≤ 8, the toy
// regime of this reproduction) with ~2^-15 output precision: ||I||∞ is
// bounded by (1+H)/2 = 4.5 < K, and degree 63 > 2πK guarantees exponential
// Chebyshev convergence of the scaled sine. CoeffToSlot and SlotToCoeff run
// as two-stage radix pipelines (Table 2's factored form).
func DefaultBootstrapParams() BootstrapParams {
	return BootstrapParams{K: 6, SineDegree: 63, CtSStages: 2, StCStages: 2}
}

// Staged reports whether the factored (radix-stage) transform pipeline is
// configured.
func (bp BootstrapParams) Staged() bool { return bp.CtSStages > 0 || bp.StCStages > 0 }

// MinLevels returns the number of levels the pipeline requires (L_boot).
//
// Depth accounting, per phase:
//
//   - CoeffToSlot: the dense reference encodes U^{-1}·(Δ/q0) at a two-prime
//     scale (the Δ/q0 factor would otherwise starve the plaintext of
//     precision) and so consumes 2 levels; the staged pipeline consumes one
//     level per radix stage (CtSStages), each stage at single-prime scale
//     with the Δ/q0 factor spread evenly across stages.
//   - Normalization into the Chebyshev domain: 1 level.
//   - EvalMod: ceil(log2(SineDegree+1))+1 levels per conjugate half (both
//     halves run at the same levels).
//   - SlotToCoeff: 1 level dense, StCStages levels staged.
//   - 1 level of margin so the refreshed ciphertext supports at least one
//     multiplication.
//
// The trade-off dial (Table 2): stage count S splits logSlots butterfly
// layers into S groups of ~2^(logSlots/S) diagonals each, so rotations per
// transform fall roughly geometrically in S while depth grows by S-1 over
// the dense matrix's fixed cost. S=2 at 2^9 slots turns a 512-diagonal
// dense transform into 32+31-diagonal stages — ~4× fewer rotations for one
// extra level per transform. When the staged pipeline is enabled the dense
// reference matrices remain available on demand (the equivalence oracle), so
// the budget is the maximum of the two accountings.
func (bp BootstrapParams) MinLevels() int {
	chebDepth := bitsFor(bp.SineDegree+1) + 1
	dense := 2 + 1 + chebDepth + 1 + 1
	if !bp.Staged() {
		return dense
	}
	staged := bp.CtSStages + 1 + chebDepth + bp.StCStages + 1
	if staged > dense {
		return staged
	}
	return dense
}

// Bootstrapper refreshes exhausted ciphertexts: it takes a level-0 ct and
// returns an encryption of the same message with levels restored — the op
// that makes CKKS fully homomorphic and the focus of the BTS accelerator.
//
// Its linear-transform phases evaluate *factored*: CoeffToSlot is a chain of
// CtSStages sparse radix matrices (a grouped inverse FFT, slots left in
// bit-reversed order) and SlotToCoeff the mirrored forward chain (consuming
// bit-reversed slots), with the bit-reversals cancelling through the
// slot-wise EvalMod between them — see dft.go. Every stage runs on the
// hoisted key-switching pipeline (hoisting.go): one decomposition per stage
// input, a gather-MAC per baby rotation, one deferred ModDown per giant
// step. The dense single-stage matrices are kept as the reference oracle —
// SetDenseTransforms(true) routes Bootstrap through them for
// equivalence-within-precision and cost comparisons (btsbench -experiment
// bootstrap).
type Bootstrapper struct {
	ctx     *Context
	encoder *Encoder
	eval    *Evaluator
	bp      BootstrapParams

	// Factored pipeline (nil when bp.Staged() is false).
	ctsChain *TransformChain
	stcChain *TransformChain

	// Dense single-stage reference.
	cts *LinearTransform // CoeffToSlot: U^-1 · (Δ/q0), two-prime scale
	stc *LinearTransform // SlotToCoeff: U · (q0/Δ), one-prime scale

	// dense routes Bootstrap through the reference matrices.
	dense bool

	sineCoeffs     []float64
	stcLevelDense  int
	stcLevelStaged int

	// scaleBoost is the exact power-of-two working-scale boost of the staged
	// pipeline (1 on uniform chains; see bootScaleBoost).
	scaleBoost float64

	// Phase-timing accumulators (see LastPhases/PhaseTotals). Guarded by a
	// mutex rather than atomics: one update per bootstrap, and a bootstrap is
	// seconds of work.
	phaseMu    sync.Mutex
	lastPhases BootstrapPhases
	cumPhases  BootstrapPhases
	bootCount  int64
}

// BootstrapPhases is the wall-time breakdown of one bootstrap (or, from
// PhaseTotals, a running sum) across the pipeline's four phases. EvalMod
// covers everything between the transforms: conjugate split, normalization,
// both Chebyshev sine evaluations, and recombination.
type BootstrapPhases struct {
	ModRaise    time.Duration
	CoeffToSlot time.Duration
	EvalMod     time.Duration
	SlotToCoeff time.Duration
}

// Total returns the summed phase time.
func (p BootstrapPhases) Total() time.Duration {
	return p.ModRaise + p.CoeffToSlot + p.EvalMod + p.SlotToCoeff
}

func (p BootstrapPhases) add(q BootstrapPhases) BootstrapPhases {
	return BootstrapPhases{
		ModRaise:    p.ModRaise + q.ModRaise,
		CoeffToSlot: p.CoeffToSlot + q.CoeffToSlot,
		EvalMod:     p.EvalMod + q.EvalMod,
		SlotToCoeff: p.SlotToCoeff + q.SlotToCoeff,
	}
}

// LastPhases returns the phase breakdown of the most recent successful
// bootstrap (zero value before the first). Safe for concurrent use.
func (bt *Bootstrapper) LastPhases() BootstrapPhases {
	bt.phaseMu.Lock()
	defer bt.phaseMu.Unlock()
	return bt.lastPhases
}

// PhaseTotals returns the cumulative phase breakdown and the number of
// successful bootstraps it sums. Safe for concurrent use.
func (bt *Bootstrapper) PhaseTotals() (BootstrapPhases, int64) {
	bt.phaseMu.Lock()
	defer bt.phaseMu.Unlock()
	return bt.cumPhases, bt.bootCount
}

func (bt *Bootstrapper) recordPhases(p BootstrapPhases) {
	bt.phaseMu.Lock()
	bt.lastPhases = p
	bt.cumPhases = bt.cumPhases.add(p)
	bt.bootCount++
	bt.phaseMu.Unlock()
}

// NewBootstrapper precomputes the staged CoeffToSlot/SlotToCoeff chains, the
// dense reference matrices, and the sine approximation. The evaluator must
// hold a relinearization key and rotation keys covering Rotations() (plus
// conjugation).
func NewBootstrapper(ctx *Context, encoder *Encoder, eval *Evaluator, bp BootstrapParams) (*Bootstrapper, error) {
	p := ctx.Params
	L := p.MaxLevel()
	if L < bp.MinLevels() {
		return nil, fmt.Errorf("ckks: L=%d below bootstrapping budget %d", L, bp.MinLevels())
	}
	if bp.Staged() && (bp.CtSStages < 1 || bp.StCStages < 1) {
		return nil, fmt.Errorf("ckks: staged bootstrap requires both stage counts (got CtS=%d, StC=%d)",
			bp.CtSStages, bp.StCStages)
	}
	q0 := float64(p.Q[0])
	delta := p.Scale
	chebDepth := bitsFor(bp.SineDegree+1) + 1

	bt := &Bootstrapper{ctx: ctx, encoder: encoder, eval: eval, bp: bp}

	// The dense single-stage reference matrices are built lazily (see
	// ensureDense): probing the special FFT column by column costs
	// O(n²·log n) float work and O(n²) complex storage, which is fine at the
	// test slot counts but prohibitive at the paper instance's 2^16 slots —
	// a staged bootstrapper must stay constructible there without ever
	// paying for the oracle it doesn't use. The non-staged configuration is
	// the dense path, so it builds the matrices up front.
	if !bp.Staged() {
		if err := bt.ensureDense(); err != nil {
			return nil, err
		}
	}

	// Factored chains: CoeffToSlot = CtSStages-stage inverse DFT with the
	// Δ/q0 normalization spread across stages; SlotToCoeff = StCStages-stage
	// forward DFT carrying q0/Δ, starting where EvalMod leaves off. The
	// SlotToCoeff chain also sheds the bootstrap working-scale boost (see
	// scaleBoost below): its last stage is encoded at 1/boost times the
	// prime's scale, so the refreshed ciphertext leaves at the input scale.
	if bp.Staged() {
		var err error
		bt.ctsChain, err = encoder.EncodeDFTStages(DFTInverse, bp.CtSStages, L, delta/q0)
		if err != nil {
			return nil, fmt.Errorf("ckks: staged CoeffToSlot: %w", err)
		}
		bt.stcLevelStaged = L - bp.CtSStages - 1 - chebDepth
		bt.scaleBoost = bootScaleBoost(p, bt.stcLevelStaged)
		bt.stcChain, err = encoder.EncodeDFTStagesShifted(DFTForward, bp.StCStages, bt.stcLevelStaged, q0/delta, 1/bt.scaleBoost)
		if err != nil {
			return nil, fmt.Errorf("ckks: staged SlotToCoeff: %w", err)
		}
	}

	k := bp.K
	bt.sineCoeffs = ChebyshevCoeffs(func(t float64) float64 {
		return math.Sin(2*math.Pi*k*t) / (2 * math.Pi)
	}, -1, 1, bp.SineDegree)
	return bt, nil
}

// bootScaleBoost returns the exact power-of-two factor by which the staged
// pipeline raises the ciphertext scale between ModRaise and SlotToCoeff.
//
// EvalMod's precision is bounded by noise relative to the working scale: the
// Chebyshev power basis amplifies its input's value noise by ~deg², and the
// SlotToCoeff matrix carries that to the refreshed message with another
// ~√slots·(q0/Δ). At the paper instance (2^16 slots, deg 255, q0/Δ = 2^10)
// an EvalMod running at Δ = 2^50 therefore bottoms out around 2^-1 — far
// from a working bootstrap. The cure, standard across real CKKS bootstrap
// implementations, is to run the ModRaise→EvalMod span at the *bootstrap
// section's* prime size: when the chain allocates larger primes to the
// EvalMod levels (stcLevel+1 and up), an exact, noise-free scalar multiply
// by 2^(primeBits-scaleBits) after ModRaise raises the working scale to
// match, every rounding and key-switch noise in between lands relative to
// that larger scale, and the last SlotToCoeff stage folds the boost back
// out. Uniform chains (prime size == scale) get boost 1 and are untouched.
func bootScaleBoost(p Parameters, stcLevel int) float64 {
	// Primes are generated alternating around 2^bits, so round; Scale is an
	// exact power of two.
	scaleBits := int(math.Round(math.Log2(p.Scale)))
	primeBits := int(math.Round(math.Log2(float64(p.Q[stcLevel+1]))))
	if primeBits <= scaleBits {
		return 1
	}
	return float64(uint64(1) << (primeBits - scaleBits))
}

// Evaluator returns the evaluator the bootstrapper runs on (the one passed
// to NewBootstrapper) — benchmarks use it to toggle the transform path.
func (bt *Bootstrapper) Evaluator() *Evaluator { return bt.eval }

// SetDenseTransforms routes Bootstrap through the dense single-stage
// reference matrices (true) or the factored stage chains (false, the
// default when BootstrapParams configures stages). The dense path needs
// rotation keys covering DenseRotations(); tests and benchmarks that toggle
// should generate AllRotations(). Enabling the dense path builds the
// reference matrices on first use (they are lazy, see NewBootstrapper) and
// panics if that construction fails — at large slot counts prefer never
// enabling it. Must not be toggled concurrently with Bootstrap.
func (bt *Bootstrapper) SetDenseTransforms(dense bool) {
	if dense {
		if err := bt.ensureDense(); err != nil {
			panic(fmt.Sprintf("ckks: SetDenseTransforms: %v", err))
		}
	}
	bt.dense = dense
}

// ensureDense builds the dense single-stage reference matrices on first use:
// matrix columns are obtained by probing the special FFT with basis vectors —
// the homomorphic linear transform of the paper's bootstrapping in
// single-stage (full-radix) form.
func (bt *Bootstrapper) ensureDense() error {
	if bt.cts != nil {
		return nil
	}
	p := bt.ctx.Params
	L := p.MaxLevel()
	n := p.Slots()
	q0 := float64(p.Q[0])
	delta := p.Scale
	chebDepth := bitsFor(bt.bp.SineDegree+1) + 1
	encoder := bt.encoder

	ctsCols := probeColumns(n, func(v []complex128) { encoder.fftSpecialInv(v) })
	stcCols := probeColumns(n, func(v []complex128) { encoder.fftSpecial(v) })

	ctsFactor := complex(delta/q0, 0)
	ctsDiags := MatrixFromFunc(n, func(r, c int) complex128 { return ctsCols[c][r] * ctsFactor }, 0)
	stcFactor := complex(q0/delta, 0)
	stcDiags := MatrixFromFunc(n, func(r, c int) complex128 { return stcCols[c][r] * stcFactor }, 0)

	ctsScale := float64(p.Q[L]) * float64(p.Q[L-1])
	cts, err := NewLinearTransform(encoder, ctsDiags, L, ctsScale)
	if err != nil {
		return err
	}

	bt.stcLevelDense = L - 3 - chebDepth
	if bt.stcLevelDense < 1 {
		return fmt.Errorf("ckks: dense SlotToCoeff level %d too low", bt.stcLevelDense)
	}
	stc, err := NewLinearTransform(encoder, stcDiags, bt.stcLevelDense, float64(p.Q[bt.stcLevelDense]))
	if err != nil {
		return err
	}
	bt.cts = cts
	bt.stc = stc
	return nil
}

// useDense reports whether Bootstrap currently routes through the dense
// reference matrices.
func (bt *Bootstrapper) useDense() bool { return bt.dense || !bt.bp.Staged() }

// Chains returns the factored CoeffToSlot and SlotToCoeff chains (nil, nil
// when the staged pipeline is disabled) — benchmarks read their stage
// shapes.
func (bt *Bootstrapper) Chains() (cts, stc *TransformChain) { return bt.ctsChain, bt.stcChain }

// probeColumns applies transform to each basis vector, returning columns.
func probeColumns(n int, transform func([]complex128)) [][]complex128 {
	cols := make([][]complex128, n)
	for k := 0; k < n; k++ {
		v := make([]complex128, n)
		v[k] = 1
		transform(v)
		cols[k] = v
	}
	return cols
}

// Rotations returns the rotation amounts the *default* transform path needs
// (conjugation is requested separately via GenRotationKeys(..., true)): the
// union of the stage chains' rotations when the factored pipeline is
// configured, the dense matrices' otherwise. Serving deployments advertise
// exactly this set — with the factored pipeline it is a fraction of the
// dense requirement, which shrinks every tenant's key upload.
func (bt *Bootstrapper) Rotations() []int {
	if bt.bp.Staged() {
		return dedupRotations(bt.ctsChain.Rotations(), bt.stcChain.Rotations())
	}
	return bt.DenseRotations()
}

// DenseRotations returns the rotation amounts of the dense reference path,
// building the lazy dense matrices if needed (it panics if that fails, like
// SetDenseTransforms).
func (bt *Bootstrapper) DenseRotations() []int {
	if err := bt.ensureDense(); err != nil {
		panic(fmt.Sprintf("ckks: DenseRotations: %v", err))
	}
	return dedupRotations(bt.cts.Rotations(), bt.stc.Rotations())
}

// AllRotations returns the union of the staged and dense paths' rotation
// amounts — the key set needed to toggle SetDenseTransforms at runtime.
func (bt *Bootstrapper) AllRotations() []int {
	if !bt.bp.Staged() {
		return bt.DenseRotations()
	}
	return dedupRotations(bt.Rotations(), bt.DenseRotations())
}

func dedupRotations(lists ...[]int) []int {
	seen := map[int]bool{}
	var out []int
	for _, l := range lists {
		for _, r := range l {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// Bootstrap refreshes ct (which must be at level 0) and returns an
// equivalent ciphertext with levels restored: L - (CtSStages + 1 + EvalMod +
// StCStages) on the staged path, L - 11 on the dense reference. The message
// must satisfy |m_coeff| ≪ q0 (true whenever Scale·|z| ≪ q0).
//
// On the staged path the CoeffToSlot chain leaves the slots bit-reversed;
// steps 3-6 (conjugate split, normalization, EvalMod, recombination) are all
// slot-wise and therefore commute with that permutation, and the SlotToCoeff
// chain consumes it — no repacking step exists anywhere.
func (bt *Bootstrapper) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	return bt.BootstrapWith(bt.eval, ct)
}

// BootstrapWith is Bootstrap running on the given evaluator instead of the
// one captured at construction — the serving runtime passes its job-private
// traced evaluator here so the bootstrap's span tree lands in the job's
// trace. ev must share the construction evaluator's context and keys (in
// practice: be a WithTrace/WithNoiseFloor copy of it). Phase timings are
// recorded on the bootstrapper either way (see LastPhases).
func (bt *Bootstrapper) BootstrapWith(ev *Evaluator, ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level != 0 {
		return nil, fmt.Errorf("ckks: Bootstrap expects a level-0 ciphertext, got level %d", ct.Level)
	}
	var ph BootstrapPhases
	t0 := time.Now()

	// 1. ModRaise: re-interpret the mod-q0 residues over the whole chain;
	// the plaintext becomes m + q0·I with small I (Section 2.4).
	sp := ev.begin(spanBootModRaise)
	raised := bt.modRaise(ev, ct)
	if !bt.useDense() && bt.scaleBoost > 1 {
		// Raise the working scale to the bootstrap section's prime size: an
		// exact, noise-free integer scalar multiply (no level consumed).
		// Every rounding and key-switch noise between here and SlotToCoeff
		// now lands relative to the boosted scale; the last SlotToCoeff
		// stage is encoded 1/boost low and sheds it (see bootScaleBoost).
		raised = ev.MulConst(raised, 1, bt.scaleBoost)
	}
	ev.endSpan(&sp, raised)
	ph.ModRaise = time.Since(t0)
	t0 = time.Now()

	// 2. CoeffToSlot: slots now hold (c_j + i·c_{j+n})/q0·(1/Δ-normalized),
	// in bit-reversed slot order on the staged path.
	sp = ev.begin(spanBootCoeffToSlot)
	var ctv *Ciphertext
	var stcLevel int
	if bt.useDense() {
		ctv = ev.Rescale(ev.Rescale(ev.LinearTransform(raised, bt.cts)))
		stcLevel = bt.stcLevelDense
	} else {
		var err error
		ctv, err = ev.TransformChain(raised, bt.ctsChain)
		if err != nil {
			return nil, err
		}
		stcLevel = bt.stcLevelStaged
	}
	ev.endSpan(&sp, ctv)
	ph.CoeffToSlot = time.Since(t0)
	t0 = time.Now()

	sp = ev.begin(spanBootEvalMod)
	// 3. Conjugate split into two real-valued ciphertexts holding 2·Re(v)
	// and 2·Im(v); the factor 2 is folded into the normalization constant
	// so that every Chebyshev basis element keeps scale ≈ Δ.
	conj := ev.Conjugate(ctv)
	ctR := ev.Add(ctv, conj)
	ctI := ev.MulByI(ev.Sub(conj, ctv))

	// 4. Normalize to the Chebyshev domain t = y/K (and divide by 2).
	ctR = bt.normalize(ev, ctR)
	ctI = bt.normalize(ev, ctI)

	// 5. EvalMod: the scaled sine realizes y ↦ y mod 1 = m_j/q0 per slot.
	sR, err := ev.EvalChebyshev(ctR, bt.sineCoeffs)
	if err != nil {
		return nil, err
	}
	sI, err := ev.EvalChebyshev(ctI, bt.sineCoeffs)
	if err != nil {
		return nil, err
	}

	// 6. Recombine the real and imaginary halves.
	comb := ev.Add(sR, ev.MulByI(sI))
	if comb.Level < stcLevel {
		return nil, fmt.Errorf("ckks: level budget error: EvalMod output %d below SlotToCoeff level %d", comb.Level, stcLevel)
	}
	if comb.Level > stcLevel {
		comb.DropLevel(stcLevel)
	}
	ev.endSpan(&sp, comb)
	ph.EvalMod = time.Since(t0)
	t0 = time.Now()

	// 7. SlotToCoeff back to the coefficient embedding.
	sp = ev.begin(spanBootSlotToCoeff)
	var out *Ciphertext
	if bt.useDense() {
		out = ev.Rescale(ev.LinearTransform(comb, bt.stc))
	} else {
		out, err = ev.TransformChain(comb, bt.stcChain)
		if err != nil {
			return nil, err
		}
	}
	ev.endSpan(&sp, out)
	ph.SlotToCoeff = time.Since(t0)
	bt.recordPhases(ph)
	return out, nil
}

func (bt *Bootstrapper) normalize(ev *Evaluator, ct *Ciphertext) *Ciphertext {
	q := float64(bt.ctx.Params.Q[ct.Level])
	return ev.Rescale(ev.MulConst(ct, complex(1/(2*bt.bp.K), 0), q))
}

// modRaise lifts a level-0 ciphertext to the full modulus chain by centering
// each coefficient modulo q0 and re-reducing modulo every q_i. The centered
// lift starts from a single residue row, the engine's worst case for
// limb-only dispatch, so every phase shards: the q0-row iNTT runs
// stage-sharded (INTTRow dispatches through the engine), the re-reduction
// fans out limb × coefficient-block, and the forward NTT of all L+1 rows
// goes through the ring's 2-D NTT dispatch.
func (bt *Bootstrapper) modRaise(ev *Evaluator, ct *Ciphertext) *Ciphertext {
	ev.counters.ModRaise.Add(1)
	rq := bt.ctx.RingQ
	L := rq.MaxLevel()
	out := bt.ctx.NewCiphertext(L, ct.Scale)
	tmp := rq.GetRow()
	defer rq.PutRow(tmp)
	for _, pair := range [][2]*ring.Poly{{ct.C0, out.C0}, {ct.C1, out.C1}} {
		src, dst := pair[0], pair[1]
		copy(tmp, src.Coeffs[0])
		rq.INTTRow(tmp, 0)
		q0 := rq.Moduli[0].Q
		half := q0 >> 1
		// The centered lift needs the true mod-q0 coefficients, and its
		// outputs re-enter the M-form world: strip the Montgomery factor
		// once off the q0 row, and lift each re-reduced residue back.
		mr0 := rq.Moduli[0].MRed
		rq.ForEachLimbBlock(0, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				tmp[j] = mr0.IForm(tmp[j])
			}
		})
		rq.ForEachLimbBlock(L, func(i, lo, hi int) {
			qi := rq.Moduli[i].Q
			mri := rq.Moduli[i].MRed
			row := dst.Coeffs[i]
			for j := lo; j < hi; j++ {
				v := tmp[j]
				var u uint64
				if v > half { // negative representative
					neg := q0 - v
					u = qi - neg%qi
					if u == qi {
						u = 0
					}
				} else {
					u = v % qi
				}
				row[j] = mri.MForm(u)
			}
		})
		rq.NTT(dst, L)
	}
	return out
}
