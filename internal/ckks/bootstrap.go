package ckks

import (
	"fmt"
	"math"

	"bts/internal/ring"
)

// BootstrapParams configures the bootstrapping pipeline (the [40]-style
// algorithm of Section 2.4: ModRaise → CoeffToSlot → EvalMod → SlotToCoeff).
type BootstrapParams struct {
	// K is the half-range of the scaled-sine approximation; it must bound
	// ||I||∞ + 1 for the modulus-raising overflow polynomial I (which grows
	// with the secret Hamming weight H).
	K float64
	// SineDegree is the Chebyshev degree approximating sin(2πy)/(2π) over
	// [-K, K]. Depth consumed by EvalMod is ceil(log2(deg+1))+1.
	SineDegree int
}

// DefaultBootstrapParams works for very sparse secrets (H ≤ 8, the toy
// regime of this reproduction) with ~2^-15 output precision: ||I||∞ is
// bounded by (1+H)/2 = 4.5 < K, and degree 63 > 2πK guarantees exponential
// Chebyshev convergence of the scaled sine.
func DefaultBootstrapParams() BootstrapParams {
	return BootstrapParams{K: 6, SineDegree: 63}
}

// MinLevels returns the number of levels the pipeline consumes (L_boot):
// 2 for CoeffToSlot, 1 for normalization, the EvalMod depth, 1 for
// SlotToCoeff and 1 for the final rescale.
func (bp BootstrapParams) MinLevels() int {
	return 2 + 1 + (bitsFor(bp.SineDegree+1) + 1) + 1 + 1
}

// Bootstrapper refreshes exhausted ciphertexts: it takes a level-0 ct and
// returns an encryption of the same message with levels restored — the op
// that makes CKKS fully homomorphic and the focus of the BTS accelerator.
// Its linear-transform phases (CoeffToSlot/SlotToCoeff) run on the hoisted
// key-switching pipeline (see hoisting.go): one decomposition per input
// ciphertext, permutation+MAC per baby rotation, and one deferred ModDown
// per giant step, which is where the bulk of the bootstrap speedup over the
// naive per-rotation path comes from.
type Bootstrapper struct {
	ctx     *Context
	encoder *Encoder
	eval    *Evaluator
	bp      BootstrapParams

	cts *LinearTransform // CoeffToSlot: U^-1 · (Δ/q0), two-prime scale
	stc *LinearTransform // SlotToCoeff: U · (q0/Δ), one-prime scale

	sineCoeffs []float64
	stcLevel   int
}

// NewBootstrapper precomputes the CoeffToSlot/SlotToCoeff matrices and the
// sine approximation. The evaluator must hold a relinearization key and
// rotation keys covering Rotations() (plus conjugation).
func NewBootstrapper(ctx *Context, encoder *Encoder, eval *Evaluator, bp BootstrapParams) (*Bootstrapper, error) {
	p := ctx.Params
	L := p.MaxLevel()
	if L < bp.MinLevels() {
		return nil, fmt.Errorf("ckks: L=%d below bootstrapping budget %d", L, bp.MinLevels())
	}
	n := p.Slots()
	q0 := float64(p.Q[0])
	delta := p.Scale

	bt := &Bootstrapper{ctx: ctx, encoder: encoder, eval: eval, bp: bp}

	// Matrix columns are obtained by probing the special FFT with basis
	// vectors; this *is* the homomorphic linear transform of the paper's
	// bootstrapping, in single-stage (full-radix) form.
	ctsCols := probeColumns(n, func(v []complex128) { encoder.fftSpecialInv(v) })
	stcCols := probeColumns(n, func(v []complex128) { encoder.fftSpecial(v) })

	ctsFactor := complex(delta/q0, 0)
	ctsDiags := MatrixFromFunc(n, func(r, c int) complex128 { return ctsCols[c][r] * ctsFactor }, 0)
	stcFactor := complex(q0/delta, 0)
	stcDiags := MatrixFromFunc(n, func(r, c int) complex128 { return stcCols[c][r] * stcFactor }, 0)

	ctsScale := float64(p.Q[L]) * float64(p.Q[L-1])
	cts, err := NewLinearTransform(encoder, ctsDiags, L, ctsScale)
	if err != nil {
		return nil, err
	}
	bt.cts = cts

	chebDepth := bitsFor(bp.SineDegree+1) + 1
	bt.stcLevel = L - 3 - chebDepth
	if bt.stcLevel < 1 {
		return nil, fmt.Errorf("ckks: SlotToCoeff level %d too low", bt.stcLevel)
	}
	stc, err := NewLinearTransform(encoder, stcDiags, bt.stcLevel, float64(p.Q[bt.stcLevel]))
	if err != nil {
		return nil, err
	}
	bt.stc = stc

	k := bp.K
	bt.sineCoeffs = ChebyshevCoeffs(func(t float64) float64 {
		return math.Sin(2*math.Pi*k*t) / (2 * math.Pi)
	}, -1, 1, bp.SineDegree)
	return bt, nil
}

// Evaluator returns the evaluator the bootstrapper runs on (the one passed
// to NewBootstrapper) — benchmarks use it to toggle the transform path.
func (bt *Bootstrapper) Evaluator() *Evaluator { return bt.eval }

// probeColumns applies transform to each basis vector, returning columns.
func probeColumns(n int, transform func([]complex128)) [][]complex128 {
	cols := make([][]complex128, n)
	for k := 0; k < n; k++ {
		v := make([]complex128, n)
		v[k] = 1
		transform(v)
		cols[k] = v
	}
	return cols
}

// Rotations returns all rotation amounts the pipeline needs (conjugation key
// is requested separately via GenRotationKeys(..., true)).
func (bt *Bootstrapper) Rotations() []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range append(bt.cts.Rotations(), bt.stc.Rotations()...) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Bootstrap refreshes ct (which must be at level 0) and returns an
// equivalent ciphertext at level MaxLevel - MinLevels. The message must
// satisfy |m_coeff| ≪ q0 (true whenever Scale·|z| ≪ q0).
func (bt *Bootstrapper) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level != 0 {
		return nil, fmt.Errorf("ckks: Bootstrap expects a level-0 ciphertext, got level %d", ct.Level)
	}
	ev := bt.eval

	// 1. ModRaise: re-interpret the mod-q0 residues over the whole chain;
	// the plaintext becomes m + q0·I with small I (Section 2.4).
	raised := bt.modRaise(ct)

	// 2. CoeffToSlot: slots now hold (c_j + i·c_{j+n})/q0·(1/Δ-normalized).
	ctv := ev.LinearTransform(raised, bt.cts)
	ctv = ev.Rescale(ev.Rescale(ctv))

	// 3. Conjugate split into two real-valued ciphertexts holding 2·Re(v)
	// and 2·Im(v); the factor 2 is folded into the normalization constant
	// so that every Chebyshev basis element keeps scale ≈ Δ.
	conj := ev.Conjugate(ctv)
	ctR := ev.Add(ctv, conj)
	ctI := ev.MulByI(ev.Sub(conj, ctv))

	// 4. Normalize to the Chebyshev domain t = y/K (and divide by 2).
	ctR = bt.normalize(ctR)
	ctI = bt.normalize(ctI)

	// 5. EvalMod: the scaled sine realizes y ↦ y mod 1 (frac part = m/q0).
	sR, err := ev.EvalChebyshev(ctR, bt.sineCoeffs)
	if err != nil {
		return nil, err
	}
	sI, err := ev.EvalChebyshev(ctI, bt.sineCoeffs)
	if err != nil {
		return nil, err
	}

	// 6. Recombine the real and imaginary halves.
	comb := ev.Add(sR, ev.MulByI(sI))
	if comb.Level < bt.stcLevel {
		return nil, fmt.Errorf("ckks: level budget error: EvalMod output %d below SlotToCoeff level %d", comb.Level, bt.stcLevel)
	}
	if comb.Level > bt.stcLevel {
		comb.DropLevel(bt.stcLevel)
	}

	// 7. SlotToCoeff back to the coefficient embedding.
	out := ev.Rescale(ev.LinearTransform(comb, bt.stc))
	return out, nil
}

func (bt *Bootstrapper) normalize(ct *Ciphertext) *Ciphertext {
	q := float64(bt.ctx.Params.Q[ct.Level])
	return bt.eval.Rescale(bt.eval.MulConst(ct, complex(1/(2*bt.bp.K), 0), q))
}

// modRaise lifts a level-0 ciphertext to the full modulus chain by centering
// each coefficient modulo q0 and re-reducing modulo every q_i. The centered
// lift starts from a single residue row, the engine's worst case for
// limb-only dispatch, so every phase shards: the q0-row iNTT runs
// stage-sharded (INTTRow dispatches through the engine), the re-reduction
// fans out limb × coefficient-block, and the forward NTT of all L+1 rows
// goes through the ring's 2-D NTT dispatch.
func (bt *Bootstrapper) modRaise(ct *Ciphertext) *Ciphertext {
	rq := bt.ctx.RingQ
	L := rq.MaxLevel()
	out := bt.ctx.NewCiphertext(L, ct.Scale)
	tmp := rq.GetRow()
	defer rq.PutRow(tmp)
	for _, pair := range [][2]*ring.Poly{{ct.C0, out.C0}, {ct.C1, out.C1}} {
		src, dst := pair[0], pair[1]
		copy(tmp, src.Coeffs[0])
		rq.INTTRow(tmp, 0)
		q0 := rq.Moduli[0].Q
		half := q0 >> 1
		rq.ForEachLimbBlock(L, func(i, lo, hi int) {
			qi := rq.Moduli[i].Q
			row := dst.Coeffs[i]
			for j := lo; j < hi; j++ {
				v := tmp[j]
				if v > half { // negative representative
					neg := q0 - v
					row[j] = qi - neg%qi
					if row[j] == qi {
						row[j] = 0
					}
				} else {
					row[j] = v % qi
				}
			}
		})
		rq.NTT(dst, L)
	}
	return out
}
