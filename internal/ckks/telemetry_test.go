package ckks

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bts/internal/telemetry"
)

func TestNoiseMarginFormula(t *testing.T) {
	s := newTestSetup(t, 2, nil)
	rng := rand.New(rand.NewSource(31))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	logQ := 0.0
	for l := 0; l <= ct.Level; l++ {
		logQ += math.Log2(float64(s.params.Q[l]))
	}
	want := logQ - math.Log2(ct.Scale)
	if got := s.ctx.NoiseMargin(ct); math.Abs(got-want) > 1e-9 {
		t.Fatalf("NoiseMargin = %.6f, want %.6f", got, want)
	}

	// A multiply (scale squares) then rescale (one prime burned, scale
	// divided back) must strictly shrink the margin each step.
	m0 := s.ctx.NoiseMargin(ct)
	prod := s.eval.MulRelin(ct, ct)
	m1 := s.ctx.NoiseMargin(prod)
	if m1 >= m0 {
		t.Fatalf("margin did not drop across MulRelin: %.2f -> %.2f", m0, m1)
	}
	res := s.eval.Rescale(prod)
	m2 := s.ctx.NoiseMargin(res)
	if m2 >= m0 {
		t.Fatalf("rescaled margin %.2f not below the fresh margin %.2f", m2, m0)
	}
}

func TestNoiseFloorTracksMinimum(t *testing.T) {
	s := newTestSetup(t, 2, nil)
	nf := NewNoiseFloor()
	ev := s.eval.WithNoiseFloor(nf)
	if !math.IsInf(nf.MinBits(), 1) {
		t.Fatalf("fresh floor = %v, want +Inf", nf.MinBits())
	}

	rng := rand.New(rand.NewSource(32))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	cur := ct
	for cur.Level > 1 {
		cur = ev.Rescale(ev.MulRelin(cur, cur))
	}
	want := s.ctx.NoiseMargin(cur)
	if got := nf.MinBits(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("floor = %.6f, want the deepest op's margin %.6f", got, want)
	}

	// The base evaluator has no floor attached and must not observe.
	nf.Reset()
	_ = s.eval.Rescale(s.eval.MulRelin(ct, ct))
	if !math.IsInf(nf.MinBits(), 1) {
		t.Fatalf("detached evaluator moved the floor to %v", nf.MinBits())
	}
}

func TestTracedEvaluationBitIdentical(t *testing.T) {
	rotations := []int{1, 3}
	s := newTestSetup(t, 2, rotations)
	rng := rand.New(rand.NewSource(33))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	run := func(ev *Evaluator) *Ciphertext {
		r := ev.Rotate(ct, 3)
		m := ev.Rescale(ev.MulRelin(r, ct))
		return ev.Add(m, r)
	}
	plain := run(s.eval)

	tracer := telemetry.NewTracer(1 << 10)
	tr := tracer.NewTrace()
	traced := run(s.eval.WithTrace(tr, 0))

	if plain.Level != traced.Level || plain.Scale != traced.Scale {
		t.Fatalf("traced result shape differs: level %d/%d scale %g/%g",
			plain.Level, traced.Level, plain.Scale, traced.Scale)
	}
	for r := 0; r <= plain.Level; r++ {
		for j, v := range plain.C0.Coeffs[r] {
			if traced.C0.Coeffs[r][j] != v {
				t.Fatalf("C0 residue (%d,%d) differs under tracing", r, j)
			}
		}
		for j, v := range plain.C1.Coeffs[r] {
			if traced.C1.Coeffs[r][j] != v {
				t.Fatalf("C1 residue (%d,%d) differs under tracing", r, j)
			}
		}
	}

	recs := tracer.Collect(tr.ID())
	if len(recs) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	byName := map[string]int{}
	for _, r := range recs {
		byName[r.Name]++
	}
	for _, name := range []string{"ckks.rotate", "ckks.mulrelin", "ckks.rescale", "ckks.keyswitch"} {
		if byName[name] == 0 {
			t.Fatalf("no %q span recorded (got %v)", name, byName)
		}
	}
	// keySwitch spans must be children of the ops that ran them.
	parents := map[uint64]string{}
	for _, r := range recs {
		parents[r.ID] = r.Name
	}
	for _, r := range recs {
		if r.Name == "ckks.keyswitch" {
			p := parents[r.Parent]
			if p != "ckks.rotate" && p != "ckks.mulrelin" {
				t.Fatalf("keyswitch span parented under %q", p)
			}
		}
	}
}

func TestBootstrapPhaseTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping is expensive; skipped with -short")
	}
	s, bt := bootSetup(t)
	rng := rand.New(rand.NewSource(34))
	values := randomComplex(rng, s.params.Slots(), 0.7)
	pt, _ := s.encoder.Encode(values, 0, s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	tracer := telemetry.NewTracer(1 << 12)
	tr := tracer.NewTrace()
	out, err := bt.BootstrapWith(s.eval.WithTrace(tr, 0), ct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level == 0 {
		t.Fatal("bootstrap did not restore levels")
	}

	ph := bt.LastPhases()
	for name, d := range map[string]float64{
		"ModRaise":    ph.ModRaise.Seconds(),
		"CoeffToSlot": ph.CoeffToSlot.Seconds(),
		"EvalMod":     ph.EvalMod.Seconds(),
		"SlotToCoeff": ph.SlotToCoeff.Seconds(),
	} {
		if d <= 0 {
			t.Fatalf("phase %s not timed", name)
		}
	}
	cum, n := bt.PhaseTotals()
	if n != 1 || cum.Total() != ph.Total() {
		t.Fatalf("PhaseTotals = (%v, %d), want (%v, 1)", cum.Total(), n, ph.Total())
	}

	tree := tracer.RenderTree(tr.ID())
	for _, phase := range []string{"bootstrap.modraise", "bootstrap.coeff_to_slot", "bootstrap.eval_mod", "bootstrap.slot_to_coeff"} {
		if !strings.Contains(tree, phase) {
			t.Fatalf("span tree missing %s:\n%s", phase, tree)
		}
	}
}

func TestContextSetStats(t *testing.T) {
	s := newTestSetup(t, 2, nil)
	var st telemetry.ContextStats
	s.ctx.SetStats(&st)
	defer s.ctx.Close()

	rng := rand.New(rand.NewSource(35))
	values := randomComplex(rng, s.params.Slots(), 1)
	pt, _ := s.encoder.Encode(values, s.params.MaxLevel(), s.params.Scale)
	ct, err := s.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.eval.Rescale(s.eval.MulRelin(ct, ct))

	if st.Engine.Runs.Load()+st.Engine.InlineRuns.Load() == 0 {
		t.Fatal("engine dispatches not counted after SetStats")
	}
	if st.PoolQ.PolyGets.Load() == 0 {
		t.Fatal("q-ring pool traffic not counted after SetStats")
	}

	// SetWorkers swaps the engine; counting must survive the swap.
	before := st.Engine.Tasks.Load()
	s.ctx.SetWorkers(2)
	_ = s.eval.MulRelin(ct, ct)
	if st.Engine.Tasks.Load() == before {
		t.Fatal("engine counters detached by SetWorkers")
	}
}
