package serve

import (
	"errors"
	"fmt"
	"net/http"

	"bts/internal/faultinject"
)

// ErrCode classifies a serving failure. Codes travel in the JSON error
// body (errorResponse) together with a retryable flag, so clients retry on
// taxonomy, not on string matching. The taxonomy is deliberately small:
//
//	invalid        the request itself is wrong (bad program, unknown
//	               session, malformed wire bytes) — retrying is useless
//	bad_job        a register-addressed DAG program failed validation
//	               (dangling register reference, cycle, bad register name,
//	               cross-session reference) — terminal like invalid, but
//	               distinguishable so clients can surface program bugs
//	               separately from transport-shaped mistakes
//	unavailable    the server is closed or draining; a restarted or
//	               rebalanced daemon will accept the same request
//	queue_full     admission control rejected the job; backoff and retry
//	deadline       the job's deadline expired (queued or between ops)
//	canceled       the submitter canceled the job before it ran
//	quota          the upload exceeds the tenant's key-memory quota
//	quarantined    the session was quarantined after repeated faults;
//	               reopen it (re-upload keys) to clear
//	store          the durable session store failed (I/O, checksum,
//	               fingerprint); transient by assumption, retryable
//	internal       a job panicked or an injected fault fired; the op
//	               never produced a result, so retrying is safe
type ErrCode string

const (
	CodeInvalid     ErrCode = "invalid"
	CodeBadJob      ErrCode = "bad_job"
	CodeUnavailable ErrCode = "unavailable"
	CodeQueueFull   ErrCode = "queue_full"
	CodeDeadline    ErrCode = "deadline"
	CodeCanceled    ErrCode = "canceled"
	CodeQuota       ErrCode = "quota"
	CodeQuarantined ErrCode = "quarantined"
	CodeStore       ErrCode = "store"
	CodeInternal    ErrCode = "internal"
)

// Error is the serving layer's typed error: a code, whether the failure is
// safe and useful to retry, and a message. Every error a job or session
// operation can return is (or wraps) one of these; the HTTP layer renders
// code and retryability into the JSON error body and the client rebuilds
// the same value on the far side, so retry policy survives the socket.
//
// Retryability is decided where the error is raised: jobs are pure
// functions of their inputs (the server mutates only statistics), so any
// failure that happened before a result was produced — a drained queue, a
// panicked op, a store read, an injected fault — is safe to retry; only
// failures that would repeat deterministically (invalid programs, quota
// overruns, quarantine) are marked terminal.
type Error struct {
	Code      ErrCode
	Retryable bool
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("serve: %s (%s)", e.Msg, e.Code)
}

// errf builds a typed error. Retryability defaults per code (see Error);
// use errfRetry to override.
func errf(code ErrCode, format string, args ...any) *Error {
	return &Error{Code: code, Retryable: defaultRetryable(code), Msg: fmt.Sprintf(format, args...)}
}

func defaultRetryable(code ErrCode) bool {
	switch code {
	case CodeUnavailable, CodeQueueFull, CodeStore, CodeInternal:
		return true
	}
	return false
}

// Code extracts the ErrCode of err ("" when err is not a serving error).
func Code(err error) ErrCode {
	var se *Error
	if errors.As(err, &se) {
		return se.Code
	}
	return ""
}

// IsRetryable reports whether err is a typed serving error marked safe to
// retry. Transport-level failures are classified by the client, not here.
func IsRetryable(err error) bool {
	var se *Error
	return errors.As(err, &se) && se.Retryable
}

// httpStatus maps a serving error onto an HTTP status for the JSON error
// body. The client reconstructs the typed error from the body, so the
// status is advisory (and keeps curl/load-balancer semantics sensible).
func httpStatus(err error) int {
	switch Code(err) {
	case CodeInvalid, CodeBadJob:
		return http.StatusBadRequest
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return http.StatusRequestTimeout
	case CodeQuota:
		return http.StatusRequestEntityTooLarge
	case CodeQuarantined:
		return http.StatusLocked
	case CodeStore, CodeInternal:
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// injectedFaultError converts a fired failpoint into the serving taxonomy:
// injected faults are transient by construction, so they are retryable —
// surviving them via retry is exactly what the chaos tests assert.
func injectedFaultError(err error) *Error {
	var fe *faultinject.Error
	if errors.As(err, &fe) {
		return &Error{Code: CodeInternal, Retryable: true, Msg: fe.Error()}
	}
	return &Error{Code: CodeInternal, Retryable: true, Msg: err.Error()}
}
