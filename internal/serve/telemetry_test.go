package serve

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bts/internal/ckks"
)

// httpGet fetches a URL and returns the body text and status code.
func httpGet(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// TestMetricsEndToEnd drives the full HTTP path with metrics on (the
// default) and checks the scrape exposes non-zero engine, scheduler, wire,
// per-op latency, op-mix, and noise-floor series, and that /v1/stats carries
// the op mix and reservoir metadata.
func TestMetricsEndToEnd(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := newClientSide(t, params, 500, []int{1})
	api := NewClient(ts.URL, cl.ctx)
	if err := api.OpenSession("metered", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	slots := params.Slots()
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 0)
	}
	pt, _ := cl.encoder.Encode(values, params.MaxLevel(), params.Scale)
	ops := []Op{
		{Kind: OpRotate, A: 0, By: 1},
		{Kind: OpMul, A: 1, B: 0},
		{Kind: OpRescale, A: 2},
	}
	for i := 0; i < 3; i++ {
		ct, err := cl.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := api.Do("metered", ops, ct); err != nil {
			t.Fatal(err)
		}
	}

	body, code := httpGet(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		"bts_engine_runs_total",
		"bts_engine_tasks_total",
		"bts_pool_gets_total",
		`bts_wire_bytes_total{dir="in"}`,
		`bts_wire_bytes_total{dir="out"}`,
		`bts_jobs_total{result="ok"}`,
		"bts_batches_total",
		"bts_batch_size_count",
		"bts_linger_wait_seconds_count",
		"bts_job_latency_seconds_count",
		`bts_op_latency_seconds_count{op="mul"`,
		`bts_op_latency_seconds_count{op="rot"`,
		`bts_session_ops_total{session="metered",kind="mult"}`,
		`bts_session_ops_total{session="metered",kind="key_switch"}`,
		`bts_session_jobs_total{session="metered"}`,
		`bts_noise_floor_bits{session="metered"}`,
		"bts_queue_depth",
		"bts_sessions_open",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("scrape missing series %s", series)
		}
	}
	// The load-bearing counters must be non-zero, not merely present.
	for _, series := range []string{
		"bts_engine_tasks_total",
		`bts_jobs_total{result="ok"}`,
		`bts_session_ops_total{session="metered",kind="mult"}`,
	} {
		v, ok := metricValue(body, series)
		if !ok {
			t.Fatalf("cannot parse %s from scrape", series)
		}
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", series, v)
		}
	}

	// /v1/stats: op mix, reservoir metadata, and the noise floor ride along.
	st := srv.Stats()
	if len(st.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(st.Sessions))
	}
	ss := st.Sessions[0]
	if ss.OpMix.Mult == 0 || ss.OpMix.Rescale == 0 || ss.OpMix.KeySwitchTotal == 0 {
		t.Fatalf("op mix not populated: %+v", ss.OpMix)
	}
	if ss.LatWindow != latSamples || ss.LatSamples != 3 {
		t.Fatalf("reservoir metadata lat_window=%d lat_samples=%d, want %d/3", ss.LatWindow, ss.LatSamples, latSamples)
	}
	if ss.NoiseFloorBits == nil || *ss.NoiseFloorBits <= 0 {
		t.Fatalf("noise floor not populated: %v", ss.NoiseFloorBits)
	}

	// /debug/vars responds with expvar JSON when metrics are on.
	if _, code := httpGet(t, ts.URL+"/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
}

// TestMetricsDisabled checks the opt-out: no /metrics, no /debug/vars, no
// noise floor in stats, and serving still works.
func TestMetricsDisabled(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, code := httpGet(t, ts.URL+"/metrics"); code != 404 {
		t.Fatalf("/metrics status %d with metrics disabled, want 404", code)
	}
	if _, code := httpGet(t, ts.URL+"/debug/vars"); code != 404 {
		t.Fatalf("/debug/vars status %d with metrics disabled, want 404", code)
	}
	if srv.MetricsRegistry() != nil {
		t.Fatal("MetricsRegistry non-nil with metrics disabled")
	}

	cl := newClientSide(t, params, 510, []int{1})
	if err := srv.OpenSession("dark", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	pt, _ := cl.encoder.Encode([]complex128{1}, params.MaxLevel(), params.Scale)
	ct, _ := cl.enc.EncryptNew(pt)
	out, err := srv.Submit("dark", []Op{{Kind: OpAdd, A: 0, B: 0}}, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	srv.Context().PutCiphertext(out)
	if st := srv.Stats(); st.Sessions[0].NoiseFloorBits != nil {
		t.Fatal("noise floor reported with telemetry disabled")
	}
}

// TestConcurrentScrapes is the satellite-(c) race test: Server.Stats() and
// /metrics scrapes run concurrently with in-flight jobs (run with -race).
func TestConcurrentScrapes(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, SlowJob: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := newClientSide(t, params, 520, []int{1})
	if err := srv.OpenSession("racy", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	pt, _ := cl.encoder.Encode([]complex128{0.5}, params.MaxLevel(), params.Scale)

	const jobs = 16
	cts := make([]*ckks.Ciphertext, jobs)
	for i := range cts {
		ct, err := cl.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = srv.Stats()
				if body, code := httpGet(t, ts.URL+"/metrics"); code != 200 || body == "" {
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops := []Op{
				{Kind: OpRotate, A: 0, By: 1},
				{Kind: OpMul, A: 1, B: 0},
				{Kind: OpRescale, A: 2},
			}
			out, err := srv.Submit("racy", ops, []*ckks.Ciphertext{cts[i]})
			errs[i] = err
			if err == nil {
				srv.Context().PutCiphertext(out)
			}
		}(i)
	}
	wg.Wait()
	close(done)
	scrapers.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

// TestSlowJobTraceDump sets a threshold every job exceeds and checks the
// retained dump reconstructs the span hierarchy: serve.job at the root,
// serve.queue and op spans under it, evaluator spans under the ops.
func TestSlowJobTraceDump(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, SlowJob: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := newClientSide(t, params, 530, []int{1})
	if err := srv.OpenSession("slow", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	pt, _ := cl.encoder.Encode([]complex128{0.25}, params.MaxLevel(), params.Scale)
	ct, _ := cl.enc.EncryptNew(pt)
	ops := []Op{
		{Kind: OpRotate, A: 0, By: 1},
		{Kind: OpMul, A: 1, B: 0},
		{Kind: OpRescale, A: 2},
	}
	out, err := srv.Submit("slow", ops, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	srv.Context().PutCiphertext(out)

	dumps := srv.SlowJobDumps()
	if len(dumps) != 1 {
		t.Fatalf("retained dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Session != "slow" || d.Ops != 3 || d.LatencyMs <= 0 {
		t.Fatalf("dump metadata: %+v", d)
	}
	for _, span := range []string{"serve.job", "serve.queue", "op.rot", "op.mul", "op.rescale", "ckks.keyswitch"} {
		if !strings.Contains(d.Tree, span) {
			t.Fatalf("dump tree missing %s:\n%s", span, d.Tree)
		}
	}
	// Op spans are indented under the root; evaluator spans deeper still.
	if !strings.Contains(d.Tree, "\n  op.mul") || !strings.Contains(d.Tree, "\n    ckks.mulrelin") {
		t.Fatalf("dump tree not hierarchical:\n%s", d.Tree)
	}
	// The op spans carry level and noise-margin attributes.
	if !strings.Contains(d.Tree, "level=") || !strings.Contains(d.Tree, "margin=") {
		t.Fatalf("dump tree missing level/margin attributes:\n%s", d.Tree)
	}

	// The HTTP view agrees.
	body, code := httpGet(t, ts.URL+"/v1/traces")
	if code != 200 || !strings.Contains(body, "serve.job") {
		t.Fatalf("/v1/traces status %d body %q", code, body)
	}
	// And the scrape counts the slow job.
	metrics, _ := httpGet(t, ts.URL+"/metrics")
	if v, ok := metricValue(metrics, "bts_slow_jobs_total"); !ok || v != 1 {
		t.Fatalf("bts_slow_jobs_total = %g (ok=%v), want 1", v, ok)
	}
}

// TestReservoirWrap is the satellite-(b) regression test: percentile
// reporting once latN exceeds the window, including counter values that
// would overflow a naive uint64→int conversion.
func TestReservoirWrap(t *testing.T) {
	sess := &session{name: "wrap"}
	// NewEvaluator is needed only for Counters(); build a bare one via the
	// snapshot path's requirements.
	params := testParams(t)
	ctx, err := ckks.NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	sess.eval = ckks.NewEvaluator(ctx, ckks.NewEncoder(ctx), nil, nil)

	st := &sess.stats
	for i := 0; i < latSamples+100; i++ {
		st.enqueued()
		st.completed(time.Duration(i+1)*time.Millisecond, 1, nil)
	}
	ss := sess.snapshot()
	if ss.LatSamples != latSamples || ss.LatWindow != latSamples {
		t.Fatalf("wrapped reservoir lat_samples=%d lat_window=%d, want %d/%d",
			ss.LatSamples, ss.LatWindow, latSamples, latSamples)
	}
	// The window holds samples 101..latSamples+100 ms; the max must be the
	// newest, and p50 must sit inside the window, not at the lifetime median.
	if ss.MaxMs != float64(latSamples+100) {
		t.Fatalf("max %.0fms, want %dms", ss.MaxMs, latSamples+100)
	}
	if ss.P50Ms <= 100 {
		t.Fatalf("p50 %.0fms references evicted samples", ss.P50Ms)
	}

	// A counter value past the int32 (and int63) range must clamp, not slice
	// out of bounds.
	st.mu.Lock()
	st.latN = 1<<63 + 42
	st.mu.Unlock()
	ss = sess.snapshot()
	if ss.LatSamples != latSamples {
		t.Fatalf("huge latN: lat_samples=%d, want %d", ss.LatSamples, latSamples)
	}
}

// metricValue extracts the sample value of an exact series (name plus label
// block) from exposition text.
func metricValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || len(rest) == 0 || rest[0] != ' ' {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
