package serve

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/wire"
)

func encryptConst(t testing.TB, cl *clientSide, params ckks.Parameters, v complex128) *ckks.Ciphertext {
	t.Helper()
	values := make([]complex128, params.Slots())
	for i := range values {
		values[i] = v
	}
	pt, _ := cl.encoder.Encode(values, params.MaxLevel(), params.Scale)
	ct, err := cl.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestCancelledQueuedJobNeverExecutes cancels a job while its undersized
// batch is still lingering: SubmitContext must return immediately with a
// typed canceled error, and the job must never execute an op.
func TestCancelledQueuedJobNeverExecutes(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, BatchSize: 8, BatchWindow: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 600, []int{1})
	if err := srv.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	ct := encryptConst(t, cl, params, 0.5)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = srv.SubmitContext(ctx, "t", []Op{{Kind: OpMul, A: 0, B: 0}}, []*ckks.Ciphertext{ct})
	elapsed := time.Since(start)
	if Code(err) != CodeCanceled {
		t.Fatalf("got %v, want canceled", err)
	}
	if IsRetryable(err) {
		t.Fatal("a submitter-canceled job must not be marked retryable")
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("cancellation took %v: waited out the linger window", elapsed)
	}

	// Let the linger window pass: if the canceled job were still dispatchable
	// it would execute now and bump the session's op counters.
	time.Sleep(500 * time.Millisecond)
	ss := srv.Stats().Sessions[0]
	if ss.Jobs != 1 || ss.Errors != 1 || ss.QueueDepth != 0 {
		t.Fatalf("stats jobs=%d errors=%d depth=%d, want 1/1/0", ss.Jobs, ss.Errors, ss.QueueDepth)
	}
	if ss.OpMix.Mult != 0 || ss.OpMix.KeySwitchTotal != 0 {
		t.Fatalf("canceled job executed ops: %+v", ss.OpMix)
	}
	if n := srv.tel.jobsCancelled.Load(); n != 1 {
		t.Fatalf("jobsCancelled=%d, want 1", n)
	}
}

// TestDeadlineWhileQueued covers Config.DefaultJobTimeout: a job whose
// deadline expires before its batch dispatches fails with a typed deadline
// error without executing.
func TestDeadlineWhileQueued(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{
		Params:            params,
		BatchSize:         8,
		BatchWindow:       400 * time.Millisecond,
		DefaultJobTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 610, []int{1})
	if err := srv.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	ct := encryptConst(t, cl, params, 0.5)
	_, err = srv.Submit("t", []Op{{Kind: OpMul, A: 0, B: 0}}, []*ckks.Ciphertext{ct})
	if Code(err) != CodeDeadline {
		t.Fatalf("got %v, want deadline", err)
	}
	time.Sleep(500 * time.Millisecond)
	if mix := srv.Stats().Sessions[0].OpMix; mix.Mult != 0 {
		t.Fatalf("deadline-expired job executed ops: %+v", mix)
	}
}

// TestCancelDoesNotStallOtherTenants extends TestLingerIsPerSession with
// cancellation: tenant A's job is canceled mid-linger, and tenant B's full
// batch — queued behind it — must still dispatch promptly.
func TestCancelDoesNotStallOtherTenants(t *testing.T) {
	params := testParams(t)
	const window = 1200 * time.Millisecond
	srv, err := New(Config{Params: params, BatchSize: 4, BatchWindow: window, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clA := newClientSide(t, params, 620, []int{1})
	clB := newClientSide(t, params, 630, []int{1})
	if err := srv.OpenSession("a", clA.rlk, clA.rtks); err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenSession("b", clB.rlk, clB.rtks); err != nil {
		t.Fatal(err)
	}
	ops := []Op{{Kind: OpAdd, A: 0, B: 0}}

	ctx, cancel := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := srv.SubmitContext(ctx, "a", ops, []*ckks.Ciphertext{encryptConst(t, clA, params, 0.1)})
		aDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let A's linger start
	cancel()

	start := time.Now()
	var wg sync.WaitGroup
	bErrs := make([]error, 4)
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			ct, err := srv.Submit("b", ops, []*ckks.Ciphertext{encryptConst(t, clB, params, 0.2)})
			if ct != nil {
				srv.Context().PutCiphertext(ct)
			}
			bErrs[f] = err
		}(f)
	}
	wg.Wait()
	if el := time.Since(start); el >= window/2 {
		t.Fatalf("tenant-b's batch took %v behind a canceled tenant-a job", el)
	}
	for f, err := range bErrs {
		if err != nil {
			t.Fatalf("tenant-b job %d: %v", f, err)
		}
	}
	if err := <-aDone; Code(err) != CodeCanceled {
		t.Fatalf("tenant-a: got %v, want canceled", err)
	}
}

// TestQuotaRejectsOversizedUpload covers Config.SessionQuotaBytes and its
// HTTP mapping (413 with a terminal typed error).
func TestQuotaRejectsOversizedUpload(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, SessionQuotaBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 640, []int{1})

	err = srv.OpenSession("fat", cl.rlk, cl.rtks)
	if Code(err) != CodeQuota {
		t.Fatalf("got %v, want quota", err)
	}
	if IsRetryable(err) {
		t.Fatal("quota overrun must be terminal")
	}
	if n := srv.tel.quotaRejections.Load(); n != 1 {
		t.Fatalf("quotaRejections=%d, want 1", n)
	}
	// A keyless session has zero key bytes and passes any quota.
	if err := srv.OpenSession("thin", nil, nil); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	api := NewClientWithConfig(ts.URL, cl.ctx, ClientConfig{MaxRetries: -1})
	err = api.OpenSession("fat2", cl.rlk, cl.rtks)
	if Code(err) != CodeQuota || IsRetryable(err) {
		t.Fatalf("HTTP quota error came back as %v", err)
	}
}

// TestKeyCacheEviction bounds resident decoded keys to roughly one session
// and checks the LRU evicts the cold tenant to disk, rehydrates it on its
// next job, and exports the governance metrics.
func TestKeyCacheEviction(t *testing.T) {
	params := testParams(t)
	cl1 := newClientSide(t, params, 650, []int{1})
	cl2 := newClientSide(t, params, 660, []int{1})
	kb := keySetBytes(cl1.rlk, cl1.rtks)
	srv, err := New(Config{
		Params:        params,
		StoreDir:      t.TempDir(),
		KeyCacheBytes: kb + kb/2, // one session fits, two do not
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.OpenSession("a", cl1.rlk, cl1.rtks); err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenSession("b", cl2.rlk, cl2.rtks); err != nil {
		t.Fatal(err)
	}

	resident := make(map[string]bool)
	var keyBytesA int64
	for _, ss := range srv.Stats().Sessions {
		resident[ss.Session] = ss.Resident
		if ss.Session == "a" {
			keyBytesA = ss.KeyBytes
		}
	}
	if resident["a"] || !resident["b"] {
		t.Fatalf("after opening b, residency = %v, want a evicted, b resident", resident)
	}
	if keyBytesA != kb {
		t.Fatalf("session a key bytes %d, want %d", keyBytesA, kb)
	}

	// A job on the evicted session rehydrates from disk and still computes.
	ct := encryptConst(t, cl1, params, 0.25)
	out, err := srv.Submit("a", []Op{{Kind: OpAdd, A: 0, B: 0}}, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	got := cl1.encoder.Decode(cl1.dec.DecryptNew(out))
	if r := real(got[0]); r < 0.49 || r > 0.51 {
		t.Fatalf("rehydrated session computed %g, want 0.5", r)
	}
	srv.Context().PutCiphertext(out)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"bts_key_resident_bytes", "bts_key_evictions_total", "bts_key_reloads_total"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
	if srv.keys.evictions.Load() < 1 || srv.keys.reloads.Load() < 1 {
		t.Fatalf("evictions=%d reloads=%d, want >=1 each", srv.keys.evictions.Load(), srv.keys.reloads.Load())
	}
}

// TestQuarantineAfterRepeatedPanics arms a panicking op failpoint and
// checks the session quarantines after the configured number of
// consecutive faults, that submits then fail terminally, and that
// reopening the session clears it.
func TestQuarantineAfterRepeatedPanics(t *testing.T) {
	defer faultinject.Reset()
	params := testParams(t)
	srv, err := New(Config{Params: params, QuarantineAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 670, []int{1})
	if err := srv.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	ct := encryptConst(t, cl, params, 0.5)
	ops := []Op{{Kind: OpAdd, A: 0, B: 0}}

	faultinject.Arm("serve.op.exec", faultinject.Spec{Mode: faultinject.ModePanic})
	for i := 0; i < 2; i++ {
		_, err := srv.Submit("t", ops, []*ckks.Ciphertext{ct})
		if Code(err) != CodeInternal || !IsRetryable(err) {
			t.Fatalf("panicking job %d: got %v, want retryable internal", i, err)
		}
	}
	_, err = srv.Submit("t", ops, []*ckks.Ciphertext{ct})
	if Code(err) != CodeQuarantined || IsRetryable(err) {
		t.Fatalf("after %d faults: got %v, want terminal quarantined", 2, err)
	}
	if n := srv.tel.quarantines.Load(); n != 1 {
		t.Fatalf("quarantines=%d, want 1", n)
	}
	srv.tel.panicMu.Lock()
	panicked := srv.tel.panics["(pre-op)"]
	srv.tel.panicMu.Unlock()
	if panicked != 2 {
		t.Fatalf("panic counter %d, want 2", panicked)
	}

	// Reopening the session (fresh key upload) clears the quarantine.
	faultinject.Reset()
	if err := srv.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	out, err := srv.Submit("t", ops, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatalf("after reopen: %v", err)
	}
	srv.Context().PutCiphertext(out)
}

// TestFailpointsFailJobsCleanly exercises the error-mode failpoints at the
// dispatch and store boundaries: jobs fail with retryable typed errors and
// the server keeps serving.
func TestFailpointsFailJobsCleanly(t *testing.T) {
	defer faultinject.Reset()
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 680, []int{1})
	if err := srv.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	ct := encryptConst(t, cl, params, 0.5)
	ops := []Op{{Kind: OpAdd, A: 0, B: 0}}

	faultinject.Arm("serve.sched.dispatch", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})
	_, err = srv.Submit("t", ops, []*ckks.Ciphertext{ct})
	if Code(err) != CodeInternal || !IsRetryable(err) {
		t.Fatalf("dispatch failpoint: got %v, want retryable internal", err)
	}
	// Count=1: the retry succeeds.
	out, err := srv.Submit("t", ops, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatalf("retry after dispatch fault: %v", err)
	}
	srv.Context().PutCiphertext(out)
}

// TestDrainCompletesInFlight checks Drain: queued jobs complete, subsequent
// submits fail with a retryable unavailable error, and Drain returns once
// idle.
func TestDrainCompletesInFlight(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, BatchWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cl := newClientSide(t, params, 690, []int{1})
	if err := srv.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	ops := []Op{{Kind: OpMul, A: 0, B: 0}, {Kind: OpRescale, A: 1}}
	const flights = 4
	errs := make([]error, flights)
	var wg sync.WaitGroup
	for f := 0; f < flights; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			ct, err := srv.Submit("t", ops, []*ckks.Ciphertext{encryptConst(t, cl, params, 0.3)})
			if ct != nil {
				srv.Context().PutCiphertext(ct)
			}
			errs[f] = err
		}(f)
	}
	time.Sleep(10 * time.Millisecond) // let some jobs enqueue
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for f, err := range errs {
		// A job either completed or was refused at admission (unavailable) —
		// never anything else.
		if err != nil && Code(err) != CodeUnavailable {
			t.Fatalf("flight %d: %v", f, err)
		}
	}
	if _, err := srv.Submit("t", ops, []*ckks.Ciphertext{encryptConst(t, cl, params, 0.3)}); Code(err) != CodeUnavailable || !IsRetryable(err) {
		t.Fatalf("submit after drain: got %v, want retryable unavailable", err)
	}
}

// TestChaosKillRestart is the fault-tolerance invariant test: a daemon is
// killed abruptly mid-workload (listener and server torn down, in-flight
// HTTP connections severed) and restarted on the same address and store.
// Clients retry through it; every job must eventually complete with a
// result bit-identical to the pre-chaos golden bytes — transient failures
// along the way must all be typed retryable errors or transport errors,
// never a wrong ciphertext.
func TestChaosKillRestart(t *testing.T) {
	defer faultinject.Reset()
	params := testParams(t)
	dir := t.TempDir()
	cfg := Config{Params: params, StoreDir: dir, BatchWindow: time.Millisecond}

	start := func(addr string) (*Server, *http.Server, string) {
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ln net.Listener
		deadline := time.Now().Add(5 * time.Second)
		for {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebinding %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return srv, hs, ln.Addr().String()
	}

	srv1, hs1, addr := start("127.0.0.1:0")
	base := "http://" + addr

	cl := newClientSide(t, params, 700, []int{1})
	api := NewClientWithConfig(base, cl.ctx, ClientConfig{
		RequestTimeout: 5 * time.Second,
		JobTimeout:     10 * time.Second,
		MaxRetries:     10,
		RetryBase:      20 * time.Millisecond,
		RetryMax:       250 * time.Millisecond,
	})
	if err := api.OpenSession("chaos", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	input := encryptConst(t, cl, params, 0.5)
	ops := []Op{{Kind: OpRotate, A: 0, By: 1}, {Kind: OpMul, A: 1, B: 0}, {Kind: OpRescale, A: 2}}

	// Jobs are deterministic functions of (input, keys), so the first
	// result's wire bytes are the golden answer every later run must match
	// bit-for-bit.
	codec := wire.NewCodec(cl.ctx)
	marshal := func(ct *ckks.Ciphertext) []byte {
		var buf bytes.Buffer
		if err := codec.WriteCiphertext(&buf, ct); err != nil {
			t.Error(err)
		}
		return buf.Bytes()
	}
	first, err := api.Do("chaos", ops, input)
	if err != nil {
		t.Fatal(err)
	}
	golden := marshal(first)

	// Workers hammer the same job; each submission retries (on top of the
	// client's own retry loop) until it succeeds or the test deadline hits.
	const workers, jobsPerWorker = 3, 4
	var wg sync.WaitGroup
	testDeadline := time.Now().Add(60 * time.Second)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for jb := 0; jb < jobsPerWorker; jb++ {
				for {
					res, err := api.Do("chaos", ops, input)
					if err == nil {
						if !bytes.Equal(marshal(res), golden) {
							t.Errorf("worker %d job %d: result differs from golden bytes", w, jb)
						}
						break
					}
					// The invariant: every failure is retryable-typed or a
					// transport error (no typed code at all).
					if code := Code(err); code != "" && !IsRetryable(err) {
						t.Errorf("worker %d job %d: terminal error during chaos: %v", w, jb, err)
						return
					}
					if time.Now().After(testDeadline) {
						t.Errorf("worker %d job %d: never completed: last error %v", w, jb, err)
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
		}(w)
	}

	// Kill the daemon abruptly mid-workload: sever every connection, fail
	// every queued job, close the store handle.
	time.Sleep(150 * time.Millisecond)
	_ = hs1.Close()
	srv1.Close()

	// While it's down, also arm a one-shot store fault for the restart: the
	// first rehydration attempt fails (retryably) and the retry succeeds.
	faultinject.Arm("serve.store.load", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})

	time.Sleep(100 * time.Millisecond)
	srv2, hs2, _ := start(addr)
	defer func() {
		_ = hs2.Close()
		srv2.Close()
	}()

	// Whatever the worker timing (on a fast host all 12 jobs can finish
	// before the kill), run one job against the restarted daemon from here:
	// it must rehydrate the session from disk — through the armed one-shot
	// store fault — and still match the golden bytes.
	for {
		res, err := api.Do("chaos", ops, input)
		if err == nil {
			if !bytes.Equal(marshal(res), golden) {
				t.Error("post-restart result differs from golden bytes")
			}
			break
		}
		if code := Code(err); code != "" && !IsRetryable(err) {
			t.Fatalf("terminal error after restart: %v", err)
		}
		if time.Now().After(testDeadline) {
			t.Fatalf("post-restart job never completed: last error %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	wg.Wait()
	if t.Failed() {
		return
	}
	// The restarted daemon rehydrated the session from disk (≥1 reload) and
	// the armed store failpoint actually fired.
	if srv2.keys.reloads.Load() < 1 {
		t.Fatal("restarted server never rehydrated the session from the store")
	}
	if faultinject.Hits("serve.store.load") < 1 {
		t.Fatal("store failpoint never evaluated")
	}
}
