package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/wire"
)

// The durable session store persists every tenant's uploaded evaluation
// keys so a daemon restart (rolling deploy, crash, OOM kill) no longer
// drops sessions — the serving-layer analogue of the paper's key-residency
// argument: the multi-GiB evk set is the expensive thing to re-acquire, so
// it must outlive the process that holds it decoded.
//
// On-disk layout, under the configured root:
//
//	sessions/<hex(name)>/manifest.json   decode-validated JSON manifest
//	sessions/<hex(name)>/rlk.bin         wire SwitchingKey envelope
//	sessions/<hex(name)>/rtks.bin        wire RotationKeySet envelope
//
// Key blobs are the same envelopes the tenant uploaded (canonical
// residues; the Montgomery representation never reaches disk), each
// checksummed (CRC-32C) and size-pinned by the manifest. Writes are
// crash-safe by construction: a session saves into a fresh temporary
// directory (blobs first, each fsynced, manifest last) which is then
// renamed over the final path, so a crash at any point leaves either the
// old complete session or none — never a torn one. A manifest that fails
// decoding, a checksum mismatch, or a fingerprint from a different
// parameter set all surface as typed store errors, never as a panic or a
// wrongly-decoded key.
const (
	manifestVersion = 1
	manifestFile    = "manifest.json"
	rlkFile         = "rlk.bin"
	rtksFile        = "rtks.bin"
	// maxSessionName bounds session names (they become directory names and
	// metric labels).
	maxSessionName = 128
	// maxManifestBytes bounds a manifest file read; real manifests are <1 KiB.
	maxManifestBytes = 1 << 20
)

// crcTable is the Castagnoli polynomial table shared by all checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BlobRef pins one key blob: file name (always a bare basename), exact
// byte length, and CRC-32C of the contents.
type BlobRef struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the per-session metadata record committed last during a
// save; its presence (and validity) is what makes a stored session real.
type Manifest struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	CreatedUnix int64  `json:"created_unix"`
	// ParamsFP fingerprints the CKKS parameter set the keys were encoded
	// under; a store carried across a parameter change is rejected instead
	// of mis-decoded.
	ParamsFP string `json:"params_fp"`
	// KeyBytes is the decoded in-memory footprint of the session's key set
	// (the paper's 2·N·(k+L+1)·dnum words per switching key), used for
	// quota and LRU accounting without decoding anything.
	KeyBytes int64    `json:"key_bytes"`
	Rlk      *BlobRef `json:"rlk,omitempty"`
	Rtks     *BlobRef `json:"rtks,omitempty"`
}

// DecodeManifest strictly decodes and validates a manifest. It never
// panics on corrupt or truncated input (fuzzed: FuzzDecodeManifest) and
// rejects anything that could escape the session directory or lie about
// blob sizes.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("serve: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("serve: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Name == "" || len(m.Name) > maxSessionName {
		return nil, fmt.Errorf("serve: manifest session name of %d bytes outside (0,%d]", len(m.Name), maxSessionName)
	}
	if m.KeyBytes < 0 {
		return nil, fmt.Errorf("serve: manifest key_bytes %d negative", m.KeyBytes)
	}
	if len(m.ParamsFP) != 2*sha256.Size {
		return nil, fmt.Errorf("serve: manifest params fingerprint of %d chars, want %d", len(m.ParamsFP), 2*sha256.Size)
	}
	for _, ref := range []*BlobRef{m.Rlk, m.Rtks} {
		if ref == nil {
			continue
		}
		if ref.File != filepath.Base(ref.File) || ref.File == "." || ref.File == ".." || ref.File == "" {
			return nil, fmt.Errorf("serve: manifest blob file %q is not a bare name", ref.File)
		}
		if ref.Bytes <= 0 || ref.Bytes > 1<<40 {
			return nil, fmt.Errorf("serve: manifest blob of %d bytes outside (0,2^40]", ref.Bytes)
		}
	}
	return &m, nil
}

// paramsFingerprint hashes the fields that determine wire compatibility.
func paramsFingerprint(p ckks.Parameters) string {
	h := sha256.New()
	fmt.Fprintf(h, "logn=%d dnum=%d scale=%v h=%d sigma=%v q=%v p=%v wire=%d",
		p.LogN, p.Dnum, p.Scale, p.H, p.Sigma, p.Q, p.P, wire.Version)
	return hex.EncodeToString(h.Sum(nil))
}

// Store is the durable session store bound to one parameter set. All
// methods are safe for concurrent use on distinct sessions; concurrent
// saves of the same session serialize on the final rename (last writer
// wins with a complete session either way).
type Store struct {
	root  string
	codec *wire.Codec
	fp    string
}

// OpenStore opens (creating if needed) a session store rooted at dir.
func OpenStore(dir string, ctx *ckks.Context) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, errf(CodeStore, "creating session store: %v", err)
	}
	return &Store{root: dir, codec: wire.NewCodec(ctx), fp: paramsFingerprint(ctx.Params)}, nil
}

func (st *Store) sessionDir(name string) string {
	return filepath.Join(st.root, "sessions", hex.EncodeToString([]byte(name)))
}

// Save persists a session's key set: blobs first (fsynced), manifest
// last, all in a temporary directory renamed over the final path.
func (st *Store) Save(name string, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet, keyBytes int64) error {
	if err := faultinject.Eval("serve.store.save"); err != nil {
		return injectedFaultError(err)
	}
	final := st.sessionDir(name)
	tmp, err := os.MkdirTemp(filepath.Dir(final), ".tmp-*")
	if err != nil {
		return errf(CodeStore, "saving session %q: %v", name, err)
	}
	defer os.RemoveAll(tmp) // no-op after the rename commits

	m := &Manifest{
		Version:     manifestVersion,
		Name:        name,
		CreatedUnix: time.Now().Unix(),
		ParamsFP:    st.fp,
		KeyBytes:    keyBytes,
	}
	if rlk != nil {
		blob, err := st.codec.MarshalSwitchingKey(rlk)
		if err != nil {
			return errf(CodeStore, "encoding relinearization key of %q: %v", name, err)
		}
		if m.Rlk, err = writeBlob(tmp, rlkFile, blob); err != nil {
			return errf(CodeStore, "saving session %q: %v", name, err)
		}
	}
	if rtks != nil {
		blob, err := st.codec.MarshalRotationKeySet(rtks)
		if err != nil {
			return errf(CodeStore, "encoding rotation keys of %q: %v", name, err)
		}
		if m.Rtks, err = writeBlob(tmp, rtksFile, blob); err != nil {
			return errf(CodeStore, "saving session %q: %v", name, err)
		}
	}
	mb, err := json.Marshal(m)
	if err != nil {
		return errf(CodeStore, "encoding manifest of %q: %v", name, err)
	}
	if _, err := writeBlob(tmp, manifestFile, mb); err != nil {
		return errf(CodeStore, "saving session %q: %v", name, err)
	}
	// Commit: replace any previous version of the session, then move the
	// complete temporary directory into place.
	if err := os.RemoveAll(final); err != nil {
		return errf(CodeStore, "replacing session %q: %v", name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return errf(CodeStore, "committing session %q: %v", name, err)
	}
	return nil
}

// writeBlob writes name under dir, fsyncs it, and returns its BlobRef.
func writeBlob(dir, name string, b []byte) (*BlobRef, error) {
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &BlobRef{File: name, Bytes: int64(len(b)), CRC32C: crc32.Checksum(b, crcTable)}, nil
}

// readBlob reads and checksum-verifies one manifest-pinned blob.
func (st *Store) readBlob(dir string, ref *BlobRef) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(dir, ref.File))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) != ref.Bytes {
		return nil, fmt.Errorf("blob %s is %d bytes, manifest says %d", ref.File, len(b), ref.Bytes)
	}
	if sum := crc32.Checksum(b, crcTable); sum != ref.CRC32C {
		return nil, fmt.Errorf("blob %s checksum %08x, manifest says %08x", ref.File, sum, ref.CRC32C)
	}
	return b, nil
}

// Load reads, verifies and decodes a stored session's key set. The
// returned keyBytes is the manifest's decoded-footprint accounting value.
func (st *Store) Load(name string) (rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet, keyBytes int64, err error) {
	if err := faultinject.Eval("serve.store.load"); err != nil {
		return nil, nil, 0, injectedFaultError(err)
	}
	dir := st.sessionDir(name)
	m, err := st.loadManifest(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	if m.Name != name {
		return nil, nil, 0, errf(CodeStore, "session %q: manifest names %q", name, m.Name)
	}
	if m.ParamsFP != st.fp {
		return nil, nil, 0, errf(CodeStore, "session %q: key blobs were written under a different parameter set", name)
	}
	if m.Rlk != nil {
		b, err := st.readBlob(dir, m.Rlk)
		if err != nil {
			return nil, nil, 0, errf(CodeStore, "session %q: %v", name, err)
		}
		if rlk, err = st.codec.UnmarshalSwitchingKey(b); err != nil {
			return nil, nil, 0, errf(CodeStore, "session %q: decoding relinearization key: %v", name, err)
		}
	}
	if m.Rtks != nil {
		b, err := st.readBlob(dir, m.Rtks)
		if err != nil {
			return nil, nil, 0, errf(CodeStore, "session %q: %v", name, err)
		}
		if rtks, err = st.codec.UnmarshalRotationKeySet(b); err != nil {
			return nil, nil, 0, errf(CodeStore, "session %q: decoding rotation keys: %v", name, err)
		}
	}
	return rlk, rtks, m.KeyBytes, nil
}

func (st *Store) loadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, errf(CodeStore, "reading manifest: %v", err)
	}
	if len(b) > maxManifestBytes {
		return nil, errf(CodeStore, "manifest of %d bytes over the %d limit", len(b), maxManifestBytes)
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, errf(CodeStore, "%v", err)
	}
	return m, nil
}

// List scans the store and returns the manifest of every decodable stored
// session (sorted by name) without touching any key blob — the lazy
// restart path reads ~1 KiB per tenant, deferring the multi-MiB key
// decode until a session's first use. Sessions with corrupt manifests or
// foreign fingerprints are skipped and reported in skipped.
func (st *Store) List() (manifests []*Manifest, skipped []string) {
	entries, err := os.ReadDir(filepath.Join(st.root, "sessions"))
	if err != nil {
		return nil, nil
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		dir := filepath.Join(st.root, "sessions", e.Name())
		m, err := st.loadManifest(dir)
		if err != nil || m.ParamsFP != st.fp || hex.EncodeToString([]byte(m.Name)) != e.Name() {
			skipped = append(skipped, e.Name())
			continue
		}
		manifests = append(manifests, m)
	}
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].Name < manifests[j].Name })
	return manifests, skipped
}

// Delete removes a stored session (a no-op when it does not exist).
func (st *Store) Delete(name string) error {
	if err := os.RemoveAll(st.sessionDir(name)); err != nil {
		return errf(CodeStore, "deleting session %q: %v", name, err)
	}
	return nil
}

// Ciphertext registers spill to a single registers.bin inside the session
// directory, so Save (which replaces the whole directory) atomically drops
// stale registers when a session reopens with new keys. The format is
// self-checking like the key blobs but self-contained (no manifest entry —
// registers change far more often than keys, and rewriting the manifest on
// every spill would double the rename traffic):
//
//	"BTSREGS1" | u32 count | count × (u16 len(name) | name |
//	    u32 len(blob) | wire ciphertext envelope) | u32 CRC-32C
//
// all little-endian, CRC over every preceding byte. The file is written to
// a temporary name in the session directory, fsynced, then renamed — a
// crash leaves the previous spill (or none), never a torn one.
const regsFile = "registers.bin"

var regsMagic = []byte("BTSREGS1")

// maxRegsFileBytes bounds a register file read (a corrupt count cannot
// make the loader allocate unboundedly past it).
const maxRegsFileBytes = 1 << 32

// SaveRegisters persists a session's register set, replacing any previous
// spill. The session must already have a stored manifest — registers are
// an adjunct to a durable session, not a session themselves.
func (st *Store) SaveRegisters(name string, regs map[string]*ckks.Ciphertext) error {
	if err := faultinject.Eval("serve.store.save_regs"); err != nil {
		return injectedFaultError(err)
	}
	dir := st.sessionDir(name)
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err != nil {
		return errf(CodeStore, "spilling registers of %q: no stored session: %v", name, err)
	}
	names := make([]string, 0, len(regs))
	for n := range regs {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = append(buf, regsMagic...)
	buf = le32(buf, uint32(len(names)))
	for _, n := range names {
		blob, err := st.codec.MarshalCiphertext(regs[n])
		if err != nil {
			return errf(CodeStore, "encoding register %q of %q: %v", n, name, err)
		}
		buf = append(buf, byte(len(n)), byte(len(n)>>8))
		buf = append(buf, n...)
		buf = le32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	buf = le32(buf, crc32.Checksum(buf, crcTable))
	f, err := os.CreateTemp(dir, ".regs-*")
	if err != nil {
		return errf(CodeStore, "spilling registers of %q: %v", name, err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, regsFile))
	}
	if err != nil {
		os.Remove(tmp)
		return errf(CodeStore, "spilling registers of %q: %v", name, err)
	}
	return nil
}

// LoadRegisters reads a session's spilled register set; a session that
// never spilled returns (nil, nil). Corruption (bad magic, checksum, torn
// lengths) is a typed store error, never a panic.
func (st *Store) LoadRegisters(name string) (map[string]*ckks.Ciphertext, error) {
	if err := faultinject.Eval("serve.store.load_regs"); err != nil {
		return nil, injectedFaultError(err)
	}
	b, err := os.ReadFile(filepath.Join(st.sessionDir(name), regsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, errf(CodeStore, "reading registers of %q: %v", name, err)
	}
	if int64(len(b)) > maxRegsFileBytes {
		return nil, errf(CodeStore, "registers of %q: file of %d bytes over the limit", name, len(b))
	}
	if len(b) < len(regsMagic)+8 || string(b[:len(regsMagic)]) != string(regsMagic) {
		return nil, errf(CodeStore, "registers of %q: bad magic or truncated file", name)
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != rd32(trailer) {
		return nil, errf(CodeStore, "registers of %q: checksum mismatch", name)
	}
	p := body[len(regsMagic):]
	if len(p) < 4 {
		return nil, errf(CodeStore, "registers of %q: truncated count", name)
	}
	count := rd32(p)
	p = p[4:]
	regs := make(map[string]*ckks.Ciphertext, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 2 {
			return nil, errf(CodeStore, "registers of %q: truncated name length", name)
		}
		nl := int(p[0]) | int(p[1])<<8
		p = p[2:]
		if len(p) < nl+4 {
			return nil, errf(CodeStore, "registers of %q: truncated entry", name)
		}
		rn := string(p[:nl])
		p = p[nl:]
		bl := int(rd32(p))
		p = p[4:]
		if bl < 0 || len(p) < bl {
			return nil, errf(CodeStore, "registers of %q: truncated ciphertext blob", name)
		}
		// st.codec is non-pooled, so loaded ciphertexts are plain heap
		// allocations — exactly what registers.go needs: values that never
		// pass through the context's pool.
		ct, err := st.codec.UnmarshalCiphertext(p[:bl])
		if err != nil {
			return nil, errf(CodeStore, "registers of %q: decoding %q: %v", name, rn, err)
		}
		p = p[bl:]
		regs[rn] = ct
	}
	if len(p) != 0 {
		return nil, errf(CodeStore, "registers of %q: %d trailing bytes", name, len(p))
	}
	return regs, nil
}

func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func rd32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
