package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// keyCache governs the memory spent on decoded evaluation-key sets: an LRU
// over resident sessions' keys, bounded by Config.KeyCacheBytes. Sessions
// touch the cache on every batch dispatch; when the resident total exceeds
// the budget, the coldest evictable sessions' keys are dropped (their
// wire blobs stay on disk) and reloaded on demand by the scheduler's
// rehydration path. The cache only tracks sessions that hold keys and are
// backed by the durable store — a keyless session has nothing to evict,
// and a RAM-only session's keys would be unrecoverable.
//
// Counters are plain atomics read by the /metrics collector:
// bts_key_resident_bytes, bts_key_evictions_total, bts_key_reloads_total.
type keyCache struct {
	limit int64 // 0 = unbounded (no eviction)

	mu    sync.Mutex
	order *list.List // front = most recently used
	elems map[*session]*list.Element
	bytes int64

	evictions atomic.Int64
	reloads   atomic.Int64
}

func newKeyCache(limit int64) *keyCache {
	return &keyCache{
		limit: limit,
		order: list.New(),
		elems: make(map[*session]*list.Element),
	}
}

// residentBytes reports the tracked decoded-key total.
func (kc *keyCache) residentBytes() int64 {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	return kc.bytes
}

// touch marks sess most-recently-used (inserting it with its key
// footprint if absent) and returns the victims to evict to get back under
// budget: coldest first, never the just-touched session, and never a
// session with jobs submitted-but-not-completed (its keys are about to be
// needed again, and skipping it keeps eviction from racing dispatch).
// The caller drops the victims' decoded keys outside the cache lock.
func (kc *keyCache) touch(sess *session, bytes int64) []*session {
	if bytes <= 0 {
		return nil
	}
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if el, ok := kc.elems[sess]; ok {
		kc.order.MoveToFront(el)
	} else {
		kc.elems[sess] = kc.order.PushFront(sess)
		kc.bytes += bytes
	}
	if kc.limit <= 0 || kc.bytes <= kc.limit {
		return nil
	}
	var victims []*session
	for el := kc.order.Back(); el != nil && kc.bytes > kc.limit; {
		prev := el.Prev()
		cand := el.Value.(*session)
		if cand != sess && cand.idle() {
			kc.order.Remove(el)
			delete(kc.elems, cand)
			kc.bytes -= cand.keyFootprint()
			kc.evictions.Add(1)
			victims = append(victims, cand)
		}
		el = prev
	}
	return victims
}

// drop removes sess from the cache (session closed or replaced).
func (kc *keyCache) drop(sess *session) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if el, ok := kc.elems[sess]; ok {
		kc.order.Remove(el)
		delete(kc.elems, sess)
		kc.bytes -= sess.keyFootprint()
	}
}
