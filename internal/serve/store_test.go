package serve

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bts/internal/ckks"
)

func testStore(t *testing.T) (*Store, *ckks.Context) {
	t.Helper()
	params := testParams(t)
	ctx, err := ckks.NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	return st, ctx
}

// TestStoreRoundTrip saves a session's key set and loads it back, checking
// the keys decode to working material and the accounting value survives.
func TestStoreRoundTrip(t *testing.T) {
	st, ctx := testStore(t)
	kg := ckks.NewKeyGenerator(ctx, 42)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, []int{1, 2}, true)
	keyBytes := keySetBytes(rlk, rtks)

	if err := st.Save("tenant", rlk, rtks, keyBytes); err != nil {
		t.Fatal(err)
	}
	gotRlk, gotRtks, gotBytes, err := st.Load("tenant")
	if err != nil {
		t.Fatal(err)
	}
	if gotRlk == nil || gotRtks == nil {
		t.Fatal("loaded session lost a key")
	}
	if gotBytes != keyBytes {
		t.Fatalf("key bytes %d, want %d", gotBytes, keyBytes)
	}
	if len(gotRtks.Keys) != len(rtks.Keys) {
		t.Fatalf("rotation keys %d, want %d", len(gotRtks.Keys), len(rtks.Keys))
	}

	// List sees the session without touching blobs.
	manifests, skipped := st.List()
	if len(manifests) != 1 || manifests[0].Name != "tenant" {
		t.Fatalf("list = %v (skipped %v), want [tenant]", manifests, skipped)
	}

	// A keyless save (rotation-only tenant) round-trips nils.
	if err := st.Save("rot-only", nil, rtks, keySetBytes(nil, rtks)); err != nil {
		t.Fatal(err)
	}
	r2, k2, _, err := st.Load("rot-only")
	if err != nil {
		t.Fatal(err)
	}
	if r2 != nil || k2 == nil {
		t.Fatal("rotation-only session round-trip wrong")
	}

	// Delete removes it; a second delete is a no-op.
	if err := st.Delete("tenant"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Load("tenant"); err == nil {
		t.Fatal("load after delete should fail")
	}
	if err := st.Delete("tenant"); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRejectsCorruption flips bytes in each stored artifact and checks
// every corruption surfaces as a typed store error, never a bad key.
func TestStoreRejectsCorruption(t *testing.T) {
	st, ctx := testStore(t)
	kg := ckks.NewKeyGenerator(ctx, 43)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	if err := st.Save("t", rlk, nil, keySetBytes(rlk, nil)); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(st.root, "sessions", hex.EncodeToString([]byte("t")))

	corrupt := func(file string, mutate func([]byte) []byte) {
		t.Helper()
		path := filepath.Join(dir, file)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, lerr := st.Load("t")
		if lerr == nil {
			t.Fatalf("%s corruption not detected", file)
		}
		if Code(lerr) != CodeStore {
			t.Fatalf("%s corruption: code %q, want store", file, Code(lerr))
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Blob bit flip → checksum mismatch.
	corrupt(rlkFile, func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b })
	// Blob truncation → size mismatch.
	corrupt(rlkFile, func(b []byte) []byte { return b[:len(b)-7] })
	// Manifest garbage → decode error.
	corrupt(manifestFile, func(b []byte) []byte { return []byte("{not json") })
	// Manifest naming another session.
	corrupt(manifestFile, func(b []byte) []byte {
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		m.Name = "other"
		out, _ := json.Marshal(m)
		return out
	})
	// Foreign parameter fingerprint.
	corrupt(manifestFile, func(b []byte) []byte {
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		m.ParamsFP = m.ParamsFP[1:] + "0"
		out, _ := json.Marshal(m)
		return out
	})

	// After restoring everything, the session loads again.
	if _, _, _, err := st.Load("t"); err != nil {
		t.Fatalf("restored session fails to load: %v", err)
	}
}

// TestStoreAtomicReplace re-saves a session and checks the new content wins
// completely (no mix of old and new files).
func TestStoreAtomicReplace(t *testing.T) {
	st, ctx := testStore(t)
	kg := ckks.NewKeyGenerator(ctx, 44)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, []int{1}, true)

	// v1: both keys. v2: rotation keys only — rlk.bin must be gone.
	if err := st.Save("t", rlk, rtks, keySetBytes(rlk, rtks)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("t", nil, rtks, keySetBytes(nil, rtks)); err != nil {
		t.Fatal(err)
	}
	gotRlk, gotRtks, _, err := st.Load("t")
	if err != nil {
		t.Fatal(err)
	}
	if gotRlk != nil || gotRtks == nil {
		t.Fatal("replace left stale key material")
	}
	dir := filepath.Join(st.root, "sessions", hex.EncodeToString([]byte("t")))
	if _, err := os.Stat(filepath.Join(dir, rlkFile)); !os.IsNotExist(err) {
		t.Fatal("stale rlk.bin survived the atomic replace")
	}
	// No temp dirs left behind.
	entries, err := os.ReadDir(filepath.Join(st.root, "sessions"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != hex.EncodeToString([]byte("t")) {
			t.Fatalf("unexpected leftover %q in store", e.Name())
		}
	}
}

// TestServerRestartRehydrates is the durability integration test: sessions
// opened on one Server instance are served — with identical results — by a
// second instance pointed at the same store, without re-uploading keys.
func TestServerRestartRehydrates(t *testing.T) {
	params := testParams(t)
	dir := t.TempDir()
	cl := newClientSide(t, params, 900, []int{1})

	srv1, err := New(Config{Params: params, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.OpenSession("durable", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	values := make([]complex128, params.Slots())
	for i := range values {
		values[i] = complex(float64(i%7)/7, 0)
	}
	pt, _ := cl.encoder.Encode(values, params.MaxLevel(), params.Scale)
	ct1, _ := cl.enc.EncryptNew(pt)
	ops := []Op{{Kind: OpRotate, A: 0, By: 1}, {Kind: OpMul, A: 1, B: 0}, {Kind: OpRescale, A: 2}}
	res1, err := srv1.Submit("durable", ops, []*ckks.Ciphertext{ct1})
	if err != nil {
		t.Fatal(err)
	}
	want := cl.encoder.Decode(cl.dec.DecryptNew(res1))
	srv1.Close()

	// "Restart": a fresh server on the same store. The session must be
	// addressable immediately and produce a bit-compatible result.
	srv2, err := New(Config{Params: params, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	st := srv2.Stats()
	if len(st.Sessions) != 1 || st.Sessions[0].Session != "durable" {
		t.Fatalf("restarted server lost the session: %+v", st.Sessions)
	}
	if st.Sessions[0].Resident {
		t.Fatal("restarted session should be cold until first use")
	}
	if !st.Sessions[0].Durable {
		t.Fatal("restarted session not marked durable")
	}
	ct2, _ := cl.enc.EncryptNew(pt)
	res2, err := srv2.Submit("durable", ops, []*ckks.Ciphertext{ct2})
	if err != nil {
		t.Fatal(err)
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(res2))
	if e := maxAbsErr(got, want); e > 1e-9 {
		t.Fatalf("restarted session result diverges by %g", e)
	}
	if !srv2.Stats().Sessions[0].Resident {
		t.Fatal("session not resident after first use")
	}

	// CloseSession removes the durable state too: a third server sees nothing.
	srv2.CloseSession("durable")
	srv3, err := New(Config{Params: params, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if n := len(srv3.Stats().Sessions); n != 0 {
		t.Fatalf("closed session resurrected: %d sessions", n)
	}
}

// FuzzDecodeManifest asserts the manifest decoder never panics and never
// accepts a manifest whose blob references could escape the session
// directory.
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"t","params_fp":"00"}`))
	f.Add([]byte(`{"version":1,"name":"t","created_unix":1,"params_fp":"` +
		"0000000000000000000000000000000000000000000000000000000000000000" +
		`","key_bytes":8,"rlk":{"file":"rlk.bin","bytes":8,"crc32c":1}}`))
	f.Add([]byte(`{"version":1,"name":"t","params_fp":"` +
		"0000000000000000000000000000000000000000000000000000000000000000" +
		`","rlk":{"file":"../../etc/passwd","bytes":1,"crc32c":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Version != manifestVersion {
			t.Fatalf("accepted manifest version %d", m.Version)
		}
		if m.Name == "" || len(m.Name) > maxSessionName {
			t.Fatalf("accepted bad name %q", m.Name)
		}
		for _, ref := range []*BlobRef{m.Rlk, m.Rtks} {
			if ref == nil {
				continue
			}
			if ref.File != filepath.Base(ref.File) || ref.File == "" || ref.File == "." || ref.File == ".." {
				t.Fatalf("accepted escaping blob file %q", ref.File)
			}
			if ref.Bytes <= 0 {
				t.Fatalf("accepted blob size %d", ref.Bytes)
			}
		}
	})
}
