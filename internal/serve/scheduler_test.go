package serve

import (
	"sync"
	"testing"
	"time"

	"bts/internal/ckks"
)

// TestLingerIsPerSession is the regression test for the scheduler's linger
// scope: with the old server-wide linger flag, session A's half-full batch
// at the head of the queue made the dispatcher sleep a full BatchWindow
// before even looking at session B's ready batch queued behind it. The
// linger deadline is now per head-session, so B's full batch must dispatch
// immediately while A's batch is still waiting out its window.
func TestLingerIsPerSession(t *testing.T) {
	params := testParams(t)
	const window = 1200 * time.Millisecond
	srv, err := New(Config{
		Params:      params,
		BatchSize:   4,
		BatchWindow: window,
		Parallel:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clA := newClientSide(t, params, 400, []int{1})
	clB := newClientSide(t, params, 500, []int{1})
	if err := srv.OpenSession("tenant-a", clA.rlk, clA.rtks); err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenSession("tenant-b", clB.rlk, clB.rtks); err != nil {
		t.Fatal(err)
	}

	encrypt := func(cl *clientSide) *ckks.Ciphertext {
		pt, _ := cl.encoder.Encode([]complex128{0.5}, params.MaxLevel(), params.Scale)
		ct, err := cl.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	ops := []Op{{Kind: OpAdd, A: 0, B: 0}}

	// One job for A: undersized (1 < BatchSize), so A's batch lingers.
	aDone := make(chan error, 1)
	go func() {
		ct, err := srv.Submit("tenant-a", ops, []*ckks.Ciphertext{encrypt(clA)})
		if ct != nil {
			srv.Context().PutCiphertext(ct)
		}
		aDone <- err
	}()

	// Give the dispatcher time to see A's lone job and start its linger.
	deadlineStart := time.Now()
	time.Sleep(50 * time.Millisecond)

	// A full batch for B arrives behind A's lingering job.
	var wg sync.WaitGroup
	bErrs := make([]error, 4)
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			ct, err := srv.Submit("tenant-b", ops, []*ckks.Ciphertext{encrypt(clB)})
			if ct != nil {
				srv.Context().PutCiphertext(ct)
			}
			bErrs[f] = err
		}(f)
	}
	wg.Wait()
	bElapsed := time.Since(deadlineStart)
	for f, err := range bErrs {
		if err != nil {
			t.Fatalf("tenant-b job %d: %v", f, err)
		}
	}
	// The old server-wide linger made B wait out A's full window; the
	// per-session linger must dispatch B's ready batch right away. Half the
	// window leaves a wide margin over scheduling and encryption cost.
	if bElapsed >= window/2 {
		t.Fatalf("tenant-b's full batch took %v behind a lingering tenant-a batch (window %v): linger is not per-session", bElapsed, window)
	}

	// A's job must still complete (after its linger expires at the latest).
	select {
	case err := <-aDone:
		if err != nil {
			t.Fatalf("tenant-a job: %v", err)
		}
	case <-time.After(5 * window):
		t.Fatal("tenant-a's lingering job never completed")
	}
}
