package serve

import (
	"fmt"
	"time"

	"bts/internal/ckks"
)

// OpKind names a primitive HE operation a job may request — the op set of
// Section 2.3 of the paper plus bootstrapping and plaintext products.
type OpKind string

const (
	OpAdd           OpKind = "add"       // a + b
	OpSub           OpKind = "sub"       // a - b
	OpMul           OpKind = "mul"       // a ⊗ b, relinearized
	OpRotate        OpKind = "rot"       // a rotated left by `by`
	OpRotateHoisted OpKind = "roth"      // a rotated by each amount in `bys` (one slot per amount)
	OpConjugate     OpKind = "conj"      // slot-wise complex conjugate of a
	OpRescale       OpKind = "rescale"   // a divided by its last prime
	OpBootstrap     OpKind = "bootstrap" // a refreshed to full levels
	OpMulPlain      OpKind = "pmul"      // a ⊙ encode(vals) — register-addressed jobs only
)

// Op is one step of a job program. It comes in two addressing forms:
//
// Slot form (the original wire format): operands A/B address a slot vector
// that starts with the job's input ciphertexts (slot 0..k-1 for k inputs);
// each executed op appends its result as the next slot — except "roth", which
// appends one slot per entry of Bys, in Bys order — and the final slot is the
// job's result. A/B below -1 or beyond the last produced slot are rejected
// before the job is queued. "roth" survives as wire-compatible sugar: it
// compiles into one "rot" node per amount, all reading the same operand, and
// the scheduler's rotation-fan detector hoists them through a single shared
// key-switch decomposition — the same execution the bespoke roth fast path
// used to hand-roll, with bit-identical outputs.
//
// Register form (DAG jobs): operands name per-session ciphertext registers
// ("$x", "$tmp0") via Ra/Rb, and every op commits its result to the register
// named by Out. Register values persist server-side across requests within a
// session, so multi-request pipelines upload and download ciphertexts only
// at the DAG boundary. Ops in register form are unordered — the scheduler
// derives the dependency graph from the names — and "pmul" (multiply by a
// freshly encoded plaintext vector, served from the session's encoding
// cache) is available in this form only. "roth" is not: ask for one "rot"
// per amount and the fan detector hoists them automatically.
type Op struct {
	Kind OpKind `json:"kind"`
	A    int    `json:"a,omitempty"`
	B    int    `json:"b,omitempty"`   // second operand (add/sub/mul), slot form
	By   int    `json:"by,omitempty"`  // rotation amount (rot)
	Bys  []int  `json:"bys,omitempty"` // rotation amounts (roth), no duplicates

	Ra   string    `json:"ra,omitempty"`   // first operand register (register form)
	Rb   string    `json:"rb,omitempty"`   // second operand register (add/sub/mul, register form)
	Out  string    `json:"out,omitempty"`  // result register (register form; required there)
	Vals []float64 `json:"vals,omitempty"` // plaintext vector (pmul)
}

// binary reports whether the op consumes two ciphertext operands.
func (o Op) binary() bool {
	return o.Kind == OpAdd || o.Kind == OpSub || o.Kind == OpMul
}

// registerForm reports whether the op uses register addressing.
func (o Op) registerForm() bool {
	return o.Ra != "" || o.Rb != "" || o.Out != "" || len(o.Vals) > 0
}

// validateOps checks a slot-form job program against the slot-addressing
// rules before it is queued: operand indices must reference inputs or earlier
// results. Toward the op budget, a hoisted multi-rotation counts one unit per
// rotation it performs (it is one decomposition but len(Bys) key-switch
// MACs, so a single "roth" must not smuggle an unbounded batch past
// MaxOpsPerJob).
func validateOps(ops []Op, inputs, maxOps int) error {
	if len(ops) == 0 {
		return errf(CodeInvalid, "job has no ops")
	}
	cost := 0
	avail := inputs // slots visible to the next op
	for i, op := range ops {
		produced := 1
		switch op.Kind {
		case OpAdd, OpSub, OpMul, OpRotate, OpConjugate, OpRescale, OpBootstrap:
			cost++
		case OpMulPlain:
			return errf(CodeInvalid, "op %d: pmul requires the register-addressed job form", i)
		case OpRotateHoisted:
			if len(op.Bys) == 0 {
				return errf(CodeInvalid, "op %d: roth with no rotation amounts", i)
			}
			// Enforce the budget before the per-amount work below, so a
			// huge Bys list is rejected in O(1) rather than validated.
			if cost+len(op.Bys) > maxOps {
				return errf(CodeInvalid, "job has over %d ops, limit is %d", maxOps, maxOps)
			}
			seen := make(map[int]bool, len(op.Bys))
			for _, by := range op.Bys {
				if seen[by] {
					return errf(CodeInvalid, "op %d: duplicate rotation amount %d in roth", i, by)
				}
				seen[by] = true
			}
			produced = len(op.Bys)
			cost += len(op.Bys)
		default:
			return errf(CodeInvalid, "op %d: unknown kind %q", i, op.Kind)
		}
		if cost > maxOps {
			return errf(CodeInvalid, "job has over %d ops, limit is %d", maxOps, maxOps)
		}
		if op.A < 0 || op.A >= avail {
			return errf(CodeInvalid, "op %d: operand a=%d outside [0,%d)", i, op.A, avail)
		}
		if op.binary() && (op.B < 0 || op.B >= avail) {
			return errf(CodeInvalid, "op %d: operand b=%d outside [0,%d)", i, op.B, avail)
		}
		avail += produced
	}
	return nil
}

// execNode runs one compiled DAG node's primitive on the given evaluator.
// Rotation nodes that belong to a detected fan arrive with a prepared
// decomposition (hd non-nil) and ride the hoisted gather-MAC path —
// bit-identical to the naive rotation. Evaluator primitives panic on
// programmer error (missing keys, scale mismatch, rescale at level 0); the
// executor's per-node recovery converts those into typed job errors.
func (s *Server) execNode(ev *ckks.Evaluator, bt *ckks.Bootstrapper, j *job, n *node, a, b *ckks.Ciphertext, hd *ckks.HoistedDecomposition) (*ckks.Ciphertext, error) {
	switch n.kind {
	case OpAdd:
		return ev.Add(a, b), nil
	case OpSub:
		return ev.Sub(a, b), nil
	case OpMul:
		return ev.MulRelin(a, b), nil
	case OpRotate:
		if hd != nil {
			return ev.RotateWithDecomposition(a, n.by, hd), nil
		}
		return ev.Rotate(a, n.by), nil
	case OpConjugate:
		return ev.Conjugate(a), nil
	case OpRescale:
		return ev.Rescale(a), nil
	case OpMulPlain:
		// The vector is encoded at the canonical scale Δ (not the operand's
		// current scale), so a pmul followed by rescale lands back near Δ —
		// and so the encoding cache key is stable across operand scales.
		pt, err := s.sessionPlaintext(j.sess, n.vals, a.Level, s.ctx.Params.Scale)
		if err != nil {
			return nil, errf(CodeInvalid, "op %d: encoding pmul vector: %v", n.opIdx, err)
		}
		return ev.MulPlain(a, pt), nil
	case OpBootstrap:
		if bt == nil {
			return nil, errf(CodeInvalid, "op %d: session %q has no bootstrapper (disabled or rotation keys missing)", n.opIdx, j.sess.name)
		}
		// BootstrapWith runs the pipeline on this node's evaluator, so a
		// traced job records the phase spans under its own op span.
		out, berr := bt.BootstrapWith(ev, a)
		if berr != nil {
			return nil, errf(CodeInvalid, "op %d: bootstrap: %v", n.opIdx, berr)
		}
		return out, nil
	}
	return nil, errf(CodeInternal, "op %d: unhandled compiled kind %q", n.opIdx, n.kind)
}

// jobPanicked converts a recovered op panic into the job's typed error:
// counted per op kind (bts_job_panics_total), dumped to /v1/traces when the
// job is traced, and scored against the session's quarantine ledger. The
// error is retryable — the op produced no result, and a panic may be
// load- or fault-injection-induced — but once the session quarantines,
// further submits fail terminally until the tenant reopens it. Safe to call
// from concurrent DAG node goroutines.
func (s *Server) jobPanicked(j *job, kind OpKind, r any) error {
	if kind == "" {
		kind = "(pre-op)"
	}
	if s.tel != nil {
		s.tel.observePanic(kind)
	}
	err := &Error{Code: CodeInternal, Retryable: true,
		Msg: fmt.Sprintf("op %s panicked: %v", kind, r)}
	if j.tr.Active() && s.tel != nil && s.tel.tracer != nil {
		s.tel.retainDump(j, time.Since(j.enqueued), "panic", err)
	}
	if j.sess.noteFault(s.cfg.QuarantineAfter) && s.tel != nil {
		s.tel.quarantines.Add(1)
	}
	return err
}
