package serve

import (
	"fmt"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/telemetry"
)

// OpKind names a primitive HE operation a job may request — the op set of
// Section 2.3 of the paper plus bootstrapping.
type OpKind string

const (
	OpAdd           OpKind = "add"       // slot[a] + slot[b]
	OpSub           OpKind = "sub"       // slot[a] - slot[b]
	OpMul           OpKind = "mul"       // slot[a] ⊗ slot[b], relinearized
	OpRotate        OpKind = "rot"       // slot[a] rotated left by `by`
	OpRotateHoisted OpKind = "roth"      // slot[a] rotated by each amount in `bys` (one slot per amount)
	OpConjugate     OpKind = "conj"      // slot-wise complex conjugate of slot[a]
	OpRescale       OpKind = "rescale"   // slot[a] divided by its last prime
	OpBootstrap     OpKind = "bootstrap" // slot[a] refreshed to full levels
)

// Op is one step of a job program. Operands address a slot vector that
// starts with the job's input ciphertexts (slot 0..k-1 for k inputs); each
// executed op appends its result as the next slot — except "roth", which
// appends one slot per entry of Bys, in Bys order — and the final slot is
// the job's result. A/B below -1 or beyond the last produced slot are
// rejected before the job is queued.
//
// "roth" is the hoisted multi-rotation: the ciphertext is decomposed for
// key-switching once and every rotation reuses the decomposition, so a job
// needing many rotations of one operand should ask for them in a single
// "roth" instead of a chain of "rot" steps. Each produced slot is
// bit-identical to the corresponding single "rot".
type Op struct {
	Kind OpKind `json:"kind"`
	A    int    `json:"a"`
	B    int    `json:"b,omitempty"`   // second operand (add/sub/mul)
	By   int    `json:"by,omitempty"`  // rotation amount (rot)
	Bys  []int  `json:"bys,omitempty"` // rotation amounts (roth), no duplicates
}

// binary reports whether the op consumes two ciphertext operands.
func (o Op) binary() bool {
	return o.Kind == OpAdd || o.Kind == OpSub || o.Kind == OpMul
}

// validateOps checks a job program against the slot-addressing rules before
// it is queued: operand indices must reference inputs or earlier results.
// Toward the op budget, a hoisted multi-rotation counts one unit per
// rotation it performs (it is one decomposition but len(Bys) key-switch
// MACs, so a single "roth" must not smuggle an unbounded batch past
// MaxOpsPerJob).
func validateOps(ops []Op, inputs, maxOps int) error {
	if len(ops) == 0 {
		return errf(CodeInvalid, "job has no ops")
	}
	cost := 0
	avail := inputs // slots visible to the next op
	for i, op := range ops {
		produced := 1
		switch op.Kind {
		case OpAdd, OpSub, OpMul, OpRotate, OpConjugate, OpRescale, OpBootstrap:
			cost++
		case OpRotateHoisted:
			if len(op.Bys) == 0 {
				return errf(CodeInvalid, "op %d: roth with no rotation amounts", i)
			}
			// Enforce the budget before the per-amount work below, so a
			// huge Bys list is rejected in O(1) rather than validated.
			if cost+len(op.Bys) > maxOps {
				return errf(CodeInvalid, "job has over %d ops, limit is %d", maxOps, maxOps)
			}
			seen := make(map[int]bool, len(op.Bys))
			for _, by := range op.Bys {
				if seen[by] {
					return errf(CodeInvalid, "op %d: duplicate rotation amount %d in roth", i, by)
				}
				seen[by] = true
			}
			produced = len(op.Bys)
			cost += len(op.Bys)
		default:
			return errf(CodeInvalid, "op %d: unknown kind %q", i, op.Kind)
		}
		if cost > maxOps {
			return errf(CodeInvalid, "job has over %d ops, limit is %d", maxOps, maxOps)
		}
		if op.A < 0 || op.A >= avail {
			return errf(CodeInvalid, "op %d: operand a=%d outside [0,%d)", i, op.A, avail)
		}
		if op.binary() && (op.B < 0 || op.B >= avail) {
			return errf(CodeInvalid, "op %d: operand b=%d outside [0,%d)", i, op.B, avail)
		}
		avail += produced
	}
	return nil
}

// run interprets the job program on the given evaluator (the session's
// shared evaluator, or a job-private traced copy — see runBatch) and
// bootstrapper (nil when the session's keys do not cover one). Evaluator
// primitives panic on programmer error (missing keys, scale mismatch,
// rescale at level 0); a job must never take the server down, so the
// interpreter converts panics into typed job errors — recording a
// bts_job_panics_total sample labeled with the op kind, retaining the
// failed job's span tree on /v1/traces (when traced), and advancing the
// session's quarantine ledger. The job's context is checked between ops, so
// an expired deadline aborts the program without executing the remainder.
// Intermediate results are returned to the context's ciphertext pool; the
// final result is handed to the caller (pooled).
//
// Each executed op is bracketed by an "op.<kind>" span (when the job is
// traced) carrying the result's level and noise margin, and by a latency
// observation into the per-(kind, level) histogram (when metrics are on).
func (j *job) run(s *Server, ev *ckks.Evaluator, bt *ckks.Bootstrapper) (result *ckks.Ciphertext, err error) {
	ctx := s.ctx
	slots := make([]*ckks.Ciphertext, len(j.inputs), len(j.inputs)+len(j.ops))
	copy(slots, j.inputs)
	var curKind OpKind // op being executed, for the panic report
	defer func() {
		if r := recover(); r != nil {
			err = s.jobPanicked(j, curKind, r)
			result = nil
		}
		// Release every produced intermediate except the result; inputs stay
		// owned by the submitter.
		for _, ct := range slots[len(j.inputs):] {
			if ct != result {
				ctx.PutCiphertext(ct)
			}
		}
		if err == nil {
			j.sess.noteSuccess()
		}
	}()
	for i, op := range j.ops {
		if cerr := j.ctx.Err(); cerr != nil {
			return nil, contextError(cerr)
		}
		if ferr := faultinject.Eval("serve.op.exec"); ferr != nil {
			return nil, injectedFaultError(ferr)
		}
		curKind = op.Kind
		var (
			out   *ckks.Ciphertext
			sp    telemetry.Span
			start time.Time
		)
		if s.tel != nil {
			start = time.Now()
		}
		if j.tr.Active() {
			sp = j.tr.Span(opSpanNames[op.Kind], j.root.ID())
			ev.SetTraceParent(sp.ID())
		}
		switch op.Kind {
		case OpAdd:
			out = ev.Add(slots[op.A], slots[op.B])
		case OpSub:
			out = ev.Sub(slots[op.A], slots[op.B])
		case OpMul:
			out = ev.MulRelin(slots[op.A], slots[op.B])
		case OpRotate:
			out = ev.Rotate(slots[op.A], op.By)
		case OpRotateHoisted:
			// One shared decomposition for the whole batch; validation
			// rejected duplicate amounts, so each produced slot is a
			// distinct pooled ciphertext and the release loop below stays
			// single-Put. All but the last append here; the last falls
			// through to the shared append.
			rotated := ev.RotateHoisted(slots[op.A], op.Bys)
			for _, by := range op.Bys[:len(op.Bys)-1] {
				slots = append(slots, rotated[by])
			}
			out = rotated[op.Bys[len(op.Bys)-1]]
		case OpConjugate:
			out = ev.Conjugate(slots[op.A])
		case OpRescale:
			out = ev.Rescale(slots[op.A])
		case OpBootstrap:
			if bt == nil {
				return nil, errf(CodeInvalid, "op %d: session %q has no bootstrapper (disabled or rotation keys missing)", i, j.sess.name)
			}
			// BootstrapWith runs the pipeline on this job's evaluator, so a
			// traced job records the phase spans under its own op span.
			var berr error
			out, berr = bt.BootstrapWith(ev, slots[op.A])
			if berr != nil {
				return nil, errf(CodeInvalid, "op %d: bootstrap: %v", i, berr)
			}
		}
		if sp.Recording() {
			ev.SetTraceParent(j.root.ID())
			sp.SetLevel(out.Level)
			sp.SetMarginBits(ctx.NoiseMargin(out))
			sp.End()
		}
		if s.tel != nil {
			s.tel.observeOp(op.Kind, out.Level, time.Since(start))
		}
		slots = append(slots, out)
	}
	return slots[len(slots)-1], nil
}

// jobPanicked converts a recovered op panic into the job's typed error:
// counted per op kind (bts_job_panics_total), dumped to /v1/traces when the
// job is traced, and scored against the session's quarantine ledger. The
// error is retryable — the op produced no result, and a panic may be
// load- or fault-injection-induced — but once the session quarantines,
// further submits fail terminally until the tenant reopens it.
func (s *Server) jobPanicked(j *job, kind OpKind, r any) error {
	if kind == "" {
		kind = "(pre-op)"
	}
	if s.tel != nil {
		s.tel.observePanic(kind)
	}
	err := &Error{Code: CodeInternal, Retryable: true,
		Msg: fmt.Sprintf("op %s panicked: %v", kind, r)}
	if j.tr.Active() && s.tel != nil && s.tel.tracer != nil {
		s.tel.retainDump(j, time.Since(j.enqueued), "panic", err)
	}
	if j.sess.noteFault(s.cfg.QuarantineAfter) && s.tel != nil {
		s.tel.quarantines.Add(1)
	}
	return err
}
