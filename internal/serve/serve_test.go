package serve

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bts/internal/ckks"
)

func testParams(t testing.TB) ckks.Parameters {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{45, 38, 38, 38},
		LogP:     46,
		Dnum:     2,
		LogScale: 38,
		H:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// clientSide bundles the key material a tenant keeps local plus the
// evaluation keys it uploads.
type clientSide struct {
	ctx     *ckks.Context
	encoder *ckks.Encoder
	enc     *ckks.Encryptor
	dec     *ckks.Decryptor
	rlk     *ckks.SwitchingKey
	rtks    *ckks.RotationKeySet
}

func newClientSide(t testing.TB, params ckks.Parameters, seed int64, rotations []int) *clientSide {
	t.Helper()
	ctx, err := ckks.NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	return &clientSide{
		ctx:     ctx,
		encoder: ckks.NewEncoder(ctx),
		enc:     ckks.NewEncryptorSK(ctx, sk, seed+1),
		dec:     ckks.NewDecryptor(ctx, sk),
		rlk:     kg.GenRelinearizationKey(sk),
		rtks:    kg.GenRotationKeys(sk, rotations, true),
	}
}

func maxAbsErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		re, im := real(a[i])-real(b[i]), imag(a[i])-imag(b[i])
		if re < 0 {
			re = -re
		}
		if im < 0 {
			im = -im
		}
		if re > m {
			m = re
		}
		if im > m {
			m = im
		}
	}
	return m
}

func TestValidateOps(t *testing.T) {
	cases := []struct {
		name   string
		ops    []Op
		inputs int
		ok     bool
	}{
		{"empty", nil, 1, false},
		{"simple add", []Op{{Kind: OpAdd, A: 0, B: 1}}, 2, true},
		{"unknown kind", []Op{{Kind: "frobnicate", A: 0}}, 1, false},
		{"forward reference", []Op{{Kind: OpAdd, A: 0, B: 1}}, 1, false},
		{"chained", []Op{{Kind: OpRotate, A: 0, By: 1}, {Kind: OpMul, A: 1, B: 0}, {Kind: OpRescale, A: 2}}, 1, true},
		{"negative operand", []Op{{Kind: OpRescale, A: -1}}, 1, false},
		{"result reference", []Op{{Kind: OpMul, A: 0, B: 0}, {Kind: OpAdd, A: 1, B: 1}}, 1, true},
		{"hoisted rotations", []Op{{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2, -1}}}, 1, true},
		{"hoisted empty", []Op{{Kind: OpRotateHoisted, A: 0}}, 1, false},
		{"hoisted duplicate", []Op{{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2, 1}}}, 1, false},
		{"hoisted slots addressable", []Op{
			{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2}},
			{Kind: OpAdd, A: 1, B: 2},
		}, 1, true},
		{"hoisted slot bound", []Op{
			{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2}},
			{Kind: OpAdd, A: 1, B: 3},
		}, 1, false},
	}
	for _, tc := range cases {
		err := validateOps(tc.ops, tc.inputs, 64)
		if (err == nil) != tc.ok {
			t.Errorf("%s: got err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if err := validateOps(make([]Op, 65), 1, 64); err == nil {
		t.Error("over-long program should be rejected")
	}
	// Each hoisted rotation counts toward the op budget individually.
	if err := validateOps([]Op{{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2, 3}}}, 1, 2); err == nil {
		t.Error("roth batch exceeding the op budget should be rejected")
	}
}

// TestRotateHoistedJob submits a program whose rotations ride one hoisted
// decomposition and checks the combined result decrypts correctly.
func TestRotateHoistedJob(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := newClientSide(t, params, 300, []int{1, 2, 3})
	if err := srv.OpenSession("tenant-h", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	slots := params.Slots()
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 0)
	}
	pt, _ := cl.encoder.Encode(values, params.MaxLevel(), params.Scale)
	ct, err := cl.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	// slot1..3 = rotations by 1,2,3; then sum them.
	ops := []Op{
		{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2, 3}},
		{Kind: OpAdd, A: 1, B: 2},
		{Kind: OpAdd, A: 4, B: 3},
	}
	result, err := srv.Submit("tenant-h", ops, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = values[(i+1)%slots] + values[(i+2)%slots] + values[(i+3)%slots]
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(result))
	if e := maxAbsErr(got, want); e > 1e-4 {
		t.Fatalf("hoisted rotation job error %g", e)
	}
	srv.Context().PutCiphertext(result)

	// A missing rotation key inside the hoisted batch must fail the job,
	// not the server.
	if _, err := srv.Submit("tenant-h", []Op{{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 7}}}, []*ckks.Ciphertext{ct}); err == nil {
		t.Fatal("expected job error for missing rotation key in roth batch")
	}
}

// TestServerDirect exercises the scheduler without HTTP: concurrent
// submitters on one session must batch (≥2 ciphertexts in flight) and every
// result must decrypt correctly.
func TestServerDirect(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, BatchSize: 8, BatchWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := newClientSide(t, params, 100, []int{1})
	if err := srv.OpenSession("tenant-a", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	slots := params.Slots()
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 0)
	}
	pt, _ := cl.encoder.Encode(values, params.MaxLevel(), params.Scale)

	// The server accepts ciphertexts decoded via its own codec in HTTP mode;
	// in direct mode any ciphertext over the same parameters works.
	// The encryptor's PRNG is stateful, so inputs are encrypted serially;
	// only the submission (and the scheduler behind it) is concurrent.
	const flights = 6
	cts := make([]*ckks.Ciphertext, flights)
	for f := range cts {
		ct, err := cl.enc.EncryptNew(pt)
		if err != nil {
			t.Fatal(err)
		}
		cts[f] = ct
	}
	var wg sync.WaitGroup
	errs := make([]error, flights)
	results := make([]*ckks.Ciphertext, flights)
	for f := 0; f < flights; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			ops := []Op{
				{Kind: OpRotate, A: 0, By: 1},
				{Kind: OpMul, A: 1, B: 0},
				{Kind: OpRescale, A: 2},
			}
			results[f], errs[f] = srv.Submit("tenant-a", ops, []*ckks.Ciphertext{cts[f]})
		}(f)
	}
	wg.Wait()

	want := make([]complex128, slots)
	for i := range want {
		want[i] = values[(i+1)%slots] * values[i]
	}
	for f := 0; f < flights; f++ {
		if errs[f] != nil {
			t.Fatalf("flight %d: %v", f, errs[f])
		}
		got := cl.encoder.Decode(cl.dec.DecryptNew(results[f]))
		if e := maxAbsErr(got, want); e > 1e-4 {
			t.Fatalf("flight %d: error %g", f, e)
		}
		srv.Context().PutCiphertext(results[f])
	}

	st := srv.Stats()
	if len(st.Sessions) != 1 {
		t.Fatalf("stats sessions = %d, want 1", len(st.Sessions))
	}
	ss := st.Sessions[0]
	if ss.Jobs != flights || ss.Errors != 0 || ss.Ops != 3*flights {
		t.Fatalf("stats jobs=%d errors=%d ops=%d, want %d/0/%d", ss.Jobs, ss.Errors, ss.Ops, flights, 3*flights)
	}
	if ss.MaxBatch < 2 {
		t.Fatalf("max batch %d: scheduler never had 2 ciphertexts in flight", ss.MaxBatch)
	}
	if ss.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", ss.QueueDepth)
	}
	if ss.P50Ms <= 0 || ss.P99Ms < ss.P50Ms {
		t.Fatalf("implausible latency percentiles: p50=%g p99=%g", ss.P50Ms, ss.P99Ms)
	}
}

// TestJobErrorsDoNotCrash checks that evaluator panics (missing keys,
// rescale at level 0) surface as job errors while the server keeps serving.
func TestJobErrorsDoNotCrash(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := newClientSide(t, params, 200, []int{1})
	// Keyless session: rotation and multiplication must fail gracefully.
	if err := srv.OpenSession("bare", nil, nil); err != nil {
		t.Fatal(err)
	}
	pt, _ := cl.encoder.Encode([]complex128{1}, 0, params.Scale)
	ct, _ := cl.enc.EncryptNew(pt)
	if _, err := srv.Submit("bare", []Op{{Kind: OpRotate, A: 0, By: 1}}, []*ckks.Ciphertext{ct}); err == nil {
		t.Fatal("rotation without keys should fail")
	}
	// Rescale at level 0 panics inside the evaluator; must come back as error.
	if _, err := srv.Submit("bare", []Op{{Kind: OpRescale, A: 0}}, []*ckks.Ciphertext{ct}); err == nil {
		t.Fatal("rescale at level 0 should fail")
	}
	// Bootstrap on a server without bootstrapping must fail, not panic.
	if _, err := srv.Submit("bare", []Op{{Kind: OpBootstrap, A: 0}}, []*ckks.Ciphertext{ct}); err == nil {
		t.Fatal("bootstrap without a bootstrapper should fail")
	}
	// Unknown session.
	if _, err := srv.Submit("ghost", []Op{{Kind: OpAdd, A: 0, B: 0}}, []*ckks.Ciphertext{ct}); err == nil {
		t.Fatal("unknown session should fail")
	}
	// The server is still alive: a valid job succeeds.
	out, err := srv.Submit("bare", []Op{{Kind: OpAdd, A: 0, B: 0}}, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(out))
	if r := real(got[0]); r < 1.99 || r > 2.01 {
		t.Fatalf("add after errors: got %g, want 2", r)
	}
	st := srv.Stats()
	if st.Sessions[0].Errors != 3 {
		t.Fatalf("errors=%d, want 3", st.Sessions[0].Errors)
	}
}

// TestEndToEndHTTP is the full serving demo over loopback HTTP: clients
// fetch parameters, mirror the context, upload evaluation keys, send
// wire-format ciphertexts, and the scheduler executes multi-op jobs
// (rotation + multiply + rescale) from several concurrent tenants.
func TestEndToEndHTTP(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params, BatchSize: 8, BatchWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Each tenant fetches params and mirrors the context bit-exactly.
	fetched, bootRots, err := FetchParams(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if bootRots != nil {
		t.Fatal("bootstrap rotations advertised by a non-bootstrapping server")
	}
	for i, q := range params.Q {
		if fetched.Q[i] != q {
			t.Fatal("fetched parameters do not match server primes")
		}
	}

	const tenants = 3
	const jobsPerTenant = 4
	var wg sync.WaitGroup
	failures := make(chan error, tenants*jobsPerTenant)
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			name := string(rune('a' + tn))
			cl := newClientSide(t, fetched, int64(1000*(tn+1)), []int{1})
			api := NewClient(ts.URL, cl.ctx)
			if err := api.Healthz(); err != nil {
				failures <- err
				return
			}
			if err := api.OpenSession(name, cl.rlk, cl.rtks); err != nil {
				failures <- err
				return
			}
			slots := fetched.Slots()
			rng := rand.New(rand.NewSource(int64(tn)))
			a := make([]complex128, slots)
			b := make([]complex128, slots)
			for i := range a {
				a[i] = complex(2*rng.Float64()-1, 0)
				b[i] = complex(2*rng.Float64()-1, 0)
			}
			ptA, _ := cl.encoder.Encode(a, fetched.MaxLevel(), fetched.Scale)
			ptB, _ := cl.encoder.Encode(b, fetched.MaxLevel(), fetched.Scale)
			for job := 0; job < jobsPerTenant; job++ {
				ctA, err := cl.enc.EncryptNew(ptA)
				if err != nil {
					failures <- err
					return
				}
				ctB, err := cl.enc.EncryptNew(ptB)
				if err != nil {
					failures <- err
					return
				}
				// rot(a,1) ⊗ b, rescaled, plus a: slots 0=a 1=b, 2=rot,
				// 3=mul, 4=rescale, 5=add.
				ops := []Op{
					{Kind: OpRotate, A: 0, By: 1},
					{Kind: OpMul, A: 2, B: 1},
					{Kind: OpRescale, A: 3},
					{Kind: OpAdd, A: 4, B: 0},
				}
				res, err := api.Do(name, ops, ctA, ctB)
				if err != nil {
					failures <- err
					return
				}
				got := cl.encoder.Decode(cl.dec.DecryptNew(res))
				want := make([]complex128, slots)
				for i := range want {
					want[i] = a[(i+1)%slots]*b[i] + a[i]
				}
				if e := maxAbsErr(got, want); e > 1e-4 {
					failures <- errTest{tn, job, e}
					return
				}
			}
		}(tn)
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}

	st := srv.Stats()
	if len(st.Sessions) != tenants {
		t.Fatalf("sessions=%d, want %d", len(st.Sessions), tenants)
	}
	totalJobs := uint64(0)
	for _, ss := range st.Sessions {
		totalJobs += ss.Jobs
		if ss.Errors != 0 {
			t.Fatalf("session %s: %d errors", ss.Session, ss.Errors)
		}
	}
	if totalJobs != tenants*jobsPerTenant {
		t.Fatalf("jobs=%d, want %d", totalJobs, tenants*jobsPerTenant)
	}
}

type errTest struct {
	tenant, job int
	err         float64
}

func (e errTest) Error() string {
	return "tenant result error too large"
}

// TestHTTPRejectsMalformed drives the job endpoint with garbage.
func TestHTTPRejectsMalformed(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body []byte) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/x-bts-wire", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(nil); code != 400 {
		t.Fatalf("empty body: %d, want 400", code)
	}
	if code := post([]byte{0xff, 0xff, 0xff, 0xff}); code != 400 {
		t.Fatalf("oversized header: %d, want 400", code)
	}
	if code := post([]byte{5, 0, 0, 0, 'h', 'e', 'l', 'l', 'o'}); code != 400 {
		t.Fatalf("non-JSON header: %d, want 400", code)
	}
}

// TestBootstrapJob runs the full serving path for the "bootstrap" op: a
// bootstrappable chain, a session whose rotation keys cover the advertised
// set, and a job that refreshes a level-0 ciphertext server-side.
func TestBootstrapJob(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap serving test is slow")
	}
	logQ := []int{55}
	for i := 0; i < 14; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 10, LogQ: logQ, LogP: 55, Dnum: 2, LogScale: 45, H: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	bp := ckks.DefaultBootstrapParams()
	// A nanosecond slow-job threshold makes every job "slow", so the test
	// also covers the acceptance path: the retained dump of a bootstrap job
	// must show the full span tree down to the bootstrap phases.
	srv, err := New(Config{Params: params, Bootstrap: &bp, SlowJob: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rots := srv.BootstrapRotations()
	if len(rots) == 0 {
		t.Fatal("bootstrap-enabled server advertises no rotations")
	}

	ctx, err := ckks.NewContext(params)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 7001)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rots, true)
	encoder := ckks.NewEncoder(ctx)
	enc := ckks.NewEncryptorSK(ctx, sk, 7002)
	dec := ckks.NewDecryptor(ctx, sk)
	if err := srv.OpenSession("boot", rlk, rtks); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if len(st.Sessions) != 1 || !st.Sessions[0].Bootstrappable {
		t.Fatal("session with covering keys is not bootstrappable")
	}

	want := []complex128{0.25, -0.5}
	pt, _ := encoder.Encode(want, 0, params.Scale)
	ct, _ := enc.EncryptNew(pt)
	out, err := srv.Submit("boot", []Op{{Kind: OpBootstrap, A: 0}}, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatal(err)
	}
	if out.Level <= 0 {
		t.Fatalf("bootstrap did not restore levels: level=%d", out.Level)
	}
	got := encoder.Decode(dec.DecryptNew(out))
	for i := range want {
		d := real(got[i]) - real(want[i])
		if d > 1e-2 || d < -1e-2 {
			t.Fatalf("slot %d: got %g want %g", i, real(got[i]), real(want[i]))
		}
	}

	// The slow-job dump of the bootstrap job must reconstruct the whole
	// hierarchy: op.bootstrap under serve.job, the four bootstrap phases
	// under the op, evaluator primitives under the phases.
	dumps := srv.SlowJobDumps()
	if len(dumps) == 0 {
		t.Fatal("no slow-job dump retained for the bootstrap job")
	}
	tree := dumps[0].Tree
	for _, span := range []string{
		"serve.job", "op.bootstrap",
		"bootstrap.modraise", "bootstrap.coeff_to_slot", "bootstrap.eval_mod", "bootstrap.slot_to_coeff",
		"ckks.keyswitch",
	} {
		if !strings.Contains(tree, span) {
			t.Fatalf("bootstrap dump missing %s:\n%s", span, tree)
		}
	}
	if !strings.Contains(tree, "\n    bootstrap.eval_mod") {
		t.Fatalf("bootstrap phases not nested under the op span:\n%s", tree)
	}
}

// TestRotationOnlySession covers the session-upload protocol fix: a tenant
// with rotation keys but no relinearization key must get working rot jobs.
func TestRotationOnlySession(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := newClientSide(t, params, 300, []int{1})
	api := NewClient(ts.URL, cl.ctx)
	if err := api.OpenSession("rot-only", nil, cl.rtks); err != nil {
		t.Fatal(err)
	}
	values := make([]complex128, params.Slots())
	for i := range values {
		values[i] = complex(float64(i%5)/5, 0)
	}
	pt, _ := cl.encoder.Encode(values, params.MaxLevel(), params.Scale)
	ct, _ := cl.enc.EncryptNew(pt)
	res, err := api.Do("rot-only", []Op{{Kind: OpRotate, A: 0, By: 1}}, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(res))
	want := make([]complex128, len(values))
	for i := range want {
		want[i] = values[(i+1)%len(values)]
	}
	if e := maxAbsErr(got, want); e > 1e-4 {
		t.Fatalf("rotation-only session result error %g", e)
	}
	// Multiplication must still fail cleanly on this session.
	if _, err := api.Do("rot-only", []Op{{Kind: OpMul, A: 0, B: 0}}, ct); err == nil {
		t.Fatal("mul without relinearization key should fail")
	}
}
