// Package serve is the multi-tenant FHE serving runtime of the repository:
// the software analogue of the BTS paper's framing of bootstrappable CKKS as
// a service whose throughput comes from keeping many client ciphertexts in
// flight, not only from fast kernels (Section 1; FAB makes the same point
// for FPGA hosts).
//
// Clients open named sessions by uploading evaluation keys (relinearization
// and rotation keys — never the secret key), then submit jobs: programs of
// primitive HE ops (Add/Sub/Mult/Rotate/Conjugate/Rescale/Bootstrap, plus
// plaintext products) over wire-format ciphertexts. A dispatcher batches
// compatible jobs (same session: they share key material, keeping
// key-switching tables hot) and executes each batch with one goroutine per
// job, so several ciphertexts are in flight across the context's shared
// limb-parallel ring.Engine at once. Results come from the context's
// ciphertext pool and every intermediate returns to it, so steady-state
// serving allocates nothing per job.
//
// # DAG jobs and ciphertext registers
//
// Jobs come in two addressing forms (see Op). The original slot form is a
// flat list over the job's uploaded inputs, returning one result. The
// register form is a DAG over named per-session ciphertext registers
// ("$x", "$tmp0"): ops are unordered, each reads registers and commits its
// result to a fresh one, and register values persist server-side across
// requests within the session — so a multi-request pipeline uploads inputs
// once, chains jobs over the registers, and downloads only the final
// outputs at the DAG boundary (SubmitDAG / Client.DoDAG). The scheduler
// compiles both forms into one dependency graph, executes it in
// topologically ordered stages with the independent ops of a stage running
// concurrently, and applies two operand-reuse optimizations the flat
// interpreter could not see:
//
//   - Auto-hoisting: two or more rotations of the same value in one stage
//     share a single key-switch decomposition (internal/ckks hoisting) —
//     and when the value is a resident register, the decomposition is
//     reused across all jobs of the batch. The old explicit "roth" op
//     survives as wire-compatible sugar compiled onto this path,
//     bit-identical to before.
//   - Encoding cache: "pmul" plaintext vectors are encoded once per
//     session (LRU, Config.EncodingCacheEntries) instead of per job.
//
// Register bytes are charged against the same Config.SessionQuotaBytes as
// key uploads (commit fails with CodeQuota when keys + registers would
// exceed it). Under key-memory pressure — and on drain — a session's
// registers spill to the durable store alongside its keys and rehydrate on
// its next DAG job, so eviction and clean restarts lose no register;
// a crash loses registers committed since the last spill, and jobs naming
// them fail with a terminal CodeBadJob. Program errors (dangling register
// reference, dependency cycle, malformed names) are rejected with
// CodeBadJob; a mid-DAG fault or cancellation skips every dependent op
// while results already committed to registers stay committed.
//
// # Fault tolerance
//
// The runtime is built to lose neither tenants nor correctness across
// restarts and faults:
//
//   - Durability: with Config.StoreDir set, every session's uploaded keys
//     persist to an on-disk store (wire blobs + checksummed manifest,
//     committed by atomic rename — see store.go). A restarted daemon lists
//     the manifests (~1 KiB each) and rehydrates a session's keys lazily on
//     its first batch, so a rolling restart drops no tenant.
//   - Key-memory governance: Config.SessionQuotaBytes rejects uploads whose
//     decoded key footprint exceeds the per-tenant budget, and
//     Config.KeyCacheBytes bounds the total decoded-key memory with an LRU
//     that evicts cold sessions' keys back to their disk blobs (see
//     keycache.go). /metrics exports resident bytes, evictions and reloads.
//   - Lifecycle: SubmitContext threads a context from HTTP ingress through
//     the scheduler; a job canceled while queued never executes, and an
//     expired deadline aborts between ops. A panicking op fails only its
//     job (typed retryable error, bts_job_panics_total, trace dump on
//     /v1/traces) and quarantines the session after
//     Config.QuarantineAfter consecutive faults. Drain stops admission and
//     waits for in-flight work, backing graceful SIGTERM shutdown.
//   - Every failure carries a typed *Error whose Retryable flag the client
//     honors with exponential backoff + jitter (see errors.go, client.go);
//     internal/faultinject failpoints are compiled into the store,
//     scheduler and op paths to chaos-test all of the above.
//
// The package exposes the runtime three ways: the embeddable Server type,
// an http.Handler speaking the internal/wire format (cmd/btsserve wraps it
// in a daemon), and a Client for the other side of the socket (used by
// `btsbench -experiment serve` and the end-to-end tests).
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bts/internal/ckks"
	"bts/internal/wire"
)

// Config parameterizes a Server. The zero value of every tuning knob picks a
// sensible default; Params is mandatory.
type Config struct {
	// Params is the CKKS parameter set every session shares. Clients must
	// build the identical set (GET /v1/params serves it) or their wire
	// objects will fail validation.
	Params ckks.Parameters
	// Workers sets the execution engine's worker count; 0 keeps the shared
	// GOMAXPROCS-sized default pool.
	Workers int
	// BatchSize caps the number of jobs the dispatcher runs concurrently in
	// one batch (default 8).
	BatchSize int
	// Parallel caps the number of batches in flight at once (default 4).
	// Batches group jobs of one session; running several batches
	// concurrently is what lets distinct tenants overlap on the shared
	// engine, so total ciphertexts in flight ≤ BatchSize × Parallel.
	Parallel int
	// BatchWindow is how long the dispatcher lingers for additional
	// compatible jobs when a session's pending batch is smaller than
	// BatchSize. The linger is tracked per session: while one session's
	// undersized batch waits out its window, ready batches of other sessions
	// dispatch immediately. 0 selects the 200µs default; a negative value
	// disables lingering.
	BatchWindow time.Duration
	// MaxQueue bounds the number of queued jobs before Submit fails fast
	// (default 1024).
	MaxQueue int
	// MaxOpsPerJob bounds the program length of a single job (default 64).
	MaxOpsPerJob int
	// Bootstrap, when non-nil, builds a bootstrapper for every session whose
	// rotation keys cover the required rotations, enabling the "bootstrap"
	// op. The parameter chain must afford BootstrapParams.MinLevels().
	Bootstrap *ckks.BootstrapParams

	// StoreDir, when non-empty, enables the durable session store rooted
	// there: sessions and their uploaded key sets survive restarts (see the
	// Fault tolerance section of the package docs).
	StoreDir string
	// SessionQuotaBytes caps one session's decoded evaluation-key footprint
	// at upload time (0 = unlimited). Oversized uploads fail with a typed
	// CodeQuota error, HTTP 413.
	SessionQuotaBytes int64
	// KeyCacheBytes bounds the total decoded evaluation-key bytes resident
	// in memory across sessions (0 = unlimited). Requires StoreDir: evicted
	// keys reload from disk on the session's next batch.
	KeyCacheBytes int64
	// DefaultJobTimeout is the per-job deadline applied when a request does
	// not carry its own (0 = none). Expiry fails the job with CodeDeadline:
	// while queued it never executes, mid-job it aborts between ops.
	DefaultJobTimeout time.Duration
	// QuarantineAfter is how many consecutive panicking jobs quarantine a
	// session (further submits fail with CodeQuarantined until the tenant
	// reopens it). 0 selects the default of 3; negative disables.
	QuarantineAfter int
	// EncodingCacheEntries caps the per-session LRU of pmul plaintext
	// encodings (0 selects the default of 32; negative disables caching).
	EncodingCacheEntries int

	// DisableMetrics turns off the Prometheus registry (GET /metrics and
	// /debug/vars disappear from the handler) and detaches the engine, pool,
	// and wire counters. The zero value keeps metrics on: the counters are
	// atomic adds next to millisecond-scale FHE ops, so serving pays nothing
	// measurable for them.
	DisableMetrics bool
	// SlowJob, when positive, traces every job and retains the reconstructed
	// span tree of any job whose submit-to-completion latency meets the
	// threshold (GET /v1/traces, newest first). Zero disables tracing: the
	// instrumented paths then reduce to nil checks.
	SlowJob time.Duration
	// TraceBuffer overrides the tracer's span ring capacity (rounded up to a
	// power of two; 0 selects telemetry.DefaultTraceCapacity). Only
	// meaningful with SlowJob set.
	TraceBuffer int
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ on the
	// server's HTTP API. Off by default: profiling endpoints on a serving
	// port are opt-in.
	Pprof bool
}

func (cfg *Config) applyDefaults() {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	if cfg.BatchWindow < 0 {
		cfg.BatchWindow = 0
	} else if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 200 * time.Microsecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.MaxOpsPerJob <= 0 {
		cfg.MaxOpsPerJob = 64
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = 3
	}
}

// Server is the serving runtime: a session registry plus a batching
// dispatcher over one shared ckks.Context. All methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	ctx     *ckks.Context
	codec   *wire.Codec // pooled: decoded ciphertexts recycle through the ctx pool
	encoder *ckks.Encoder
	started time.Time

	// store is the durable session store (nil without Config.StoreDir) and
	// keys the decoded-key LRU governor (always non-nil; unbounded when
	// KeyCacheBytes is 0).
	store *Store
	keys  *keyCache

	// tel is the observability bundle (metrics registry, counters, job
	// tracer); nil when both metrics and tracing are disabled, and every
	// instrumentation site nil-checks it.
	tel *telemetryState

	// bootRotations caches the rotation set bootstrapping needs (probed once
	// with a keyless evaluator), so /v1/params can tell clients what keys to
	// generate. With the factored (radix-stage) CoeffToSlot/SlotToCoeff
	// pipeline this is the stage chains' union — a fraction of the dense
	// matrices' requirement, which shrinks every tenant's key upload
	// accordingly (rotation keys dominate session-open traffic). Empty when
	// bootstrapping is disabled or unavailable.
	bootRotations []int

	mu       sync.Mutex
	sessions map[string]*session
	pending  []*job
	closed   bool
	draining bool
	// linger holds, per session with an undersized pending batch, the
	// deadline until which the dispatcher waits for more of that session's
	// jobs before dispatching the batch anyway. Tracking it per session —
	// not server-wide — is what lets a ready (full or expired) batch of one
	// tenant dispatch immediately while another tenant's half-full batch at
	// the head of the queue is still lingering.
	linger map[*session]time.Time
	wakeAt time.Time  // earliest armed linger wakeup (zero = none armed)
	cond   *sync.Cond // signals the dispatcher that pending/closed changed

	// batches tracks in-flight batch executions; Drain waits on it after
	// the queue empties.
	batches sync.WaitGroup

	dispatcherDone chan struct{}
}

// New builds a Server and starts its dispatcher. With Config.StoreDir set,
// stored sessions are listed (manifests only) and registered for lazy
// rehydration, so tenants persisted by a previous process are immediately
// addressable.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if cfg.KeyCacheBytes > 0 && cfg.StoreDir == "" {
		return nil, fmt.Errorf("serve: KeyCacheBytes without StoreDir: evicted keys would be unrecoverable")
	}
	ctx, err := ckks.NewContext(cfg.Params)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		ctx.SetWorkers(cfg.Workers)
	}
	s := &Server{
		cfg:      cfg,
		ctx:      ctx,
		codec:    wire.NewPooledCodec(ctx),
		encoder:  ckks.NewEncoder(ctx),
		started:  time.Now(),
		keys:     newKeyCache(cfg.KeyCacheBytes),
		sessions: make(map[string]*session),
		linger:   make(map[*session]time.Time),

		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if !cfg.DisableMetrics || cfg.SlowJob > 0 {
		s.tel = newTelemetryState(&s.cfg)
		if s.tel.reg != nil {
			// SetStats instruments a context-private engine (installing one if
			// the context still shares ring.DefaultEngine), so scrapes never
			// see other tenants of the process-wide pool.
			ctx.SetStats(&s.tel.ctxStats)
			s.codec.SetStats(&s.tel.wire)
			s.registerCollectors()
		}
	}
	if cfg.Bootstrap != nil {
		// Probe the rotation requirements with a keyless evaluator; sessions
		// whose key sets cover them get a working bootstrapper.
		probe := ckks.NewEvaluator(ctx, s.encoder, nil, nil)
		bt, err := ckks.NewBootstrapper(ctx, s.encoder, probe, *cfg.Bootstrap)
		if err != nil {
			return nil, fmt.Errorf("serve: bootstrap enabled but unavailable: %w", err)
		}
		s.bootRotations = bt.Rotations()
	}
	if cfg.StoreDir != "" {
		store, err := OpenStore(cfg.StoreDir, ctx)
		if err != nil {
			return nil, err
		}
		s.store = store
		manifests, _ := store.List()
		for _, m := range manifests {
			sess := s.newSession(m.Name)
			sess.onDisk = true
			sess.keyBytes = m.KeyBytes
			sess.created = time.Unix(m.CreatedUnix, 0)
			// The previous process may have spilled registers; load them
			// lazily on the session's first DAG job.
			sess.regsLoaded = false
			s.sessions[m.Name] = sess
		}
	}
	go s.dispatch()
	return s, nil
}

// newSession builds a session shell (no evaluator yet). A fresh session's
// register set is trivially complete; the restart path flips regsLoaded
// off to defer to the store.
func (s *Server) newSession(name string) *session {
	sess := &session{name: name, created: time.Now(), regsLoaded: true}
	if s.tel != nil {
		// Attach the session's running noise floor once, at open time, so
		// steady-state jobs keep allocating nothing: evaluator copies share
		// the floor (and the op counters) by pointer.
		sess.noise = ckks.NewNoiseFloor()
	}
	return sess
}

// Context returns the shared evaluation context (useful for embedding the
// server in-process, e.g. the load generator's verification path).
func (s *Server) Context() *ckks.Context { return s.ctx }

// Codec returns the server's pooled wire codec.
func (s *Server) Codec() *wire.Codec { return s.codec }

// BootstrapRotations returns the rotation amounts a session's key set must
// cover for the "bootstrap" op, or nil when bootstrapping is disabled.
func (s *Server) BootstrapRotations() []int {
	return append([]int(nil), s.bootRotations...)
}

// keySetBytes is the decoded in-memory footprint of an uploaded key set —
// the quota and LRU accounting unit.
func keySetBytes(rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) int64 {
	var n int64
	if rlk != nil {
		n += rlk.Bytes()
	}
	if rtks != nil {
		for _, k := range rtks.Keys {
			n += k.Bytes()
		}
	}
	return n
}

// buildRuntime constructs the evaluator (sharing the session's noise floor)
// and, when covered, the bootstrapper for a key set.
func (s *Server) buildRuntime(sess *session, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) (*ckks.Evaluator, *ckks.Bootstrapper, error) {
	eval := ckks.NewEvaluator(s.ctx, s.encoder, rlk, rtks)
	if sess.noise != nil {
		eval = eval.WithNoiseFloor(sess.noise)
	}
	var bt *ckks.Bootstrapper
	if s.cfg.Bootstrap != nil && rlk != nil && rtks != nil && coversRotations(s.ctx, rtks, s.bootRotations) {
		var err error
		bt, err = ckks.NewBootstrapper(s.ctx, s.encoder, eval, *s.cfg.Bootstrap)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: building bootstrapper for session %q: %w", sess.name, err)
		}
	}
	return eval, bt, nil
}

// OpenSession registers (or replaces) a named session with the given
// evaluation keys. rlk may be nil (jobs using "mul" will fail); rtks may be
// nil (jobs using "rot"/"conj" will fail). When the server was built with
// bootstrapping enabled and the rotation keys cover the required set, the
// session also gets a bootstrapper.
//
// The upload is checked against Config.SessionQuotaBytes and, when the
// durable store is configured, persisted before the session goes live —
// write-through, so a session that was ever open survives a crash.
// Reopening a session clears its quarantine, resets its fault ledger, and
// discards its ciphertext registers (in memory and on disk): new keys mean
// the old registers may not even decrypt under the tenant's secret key.
func (s *Server) OpenSession(name string, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) error {
	if name == "" {
		return errf(CodeInvalid, "empty session name")
	}
	if len(name) > maxSessionName {
		return errf(CodeInvalid, "session name of %d bytes over the %d limit", len(name), maxSessionName)
	}
	keyBytes := keySetBytes(rlk, rtks)
	if q := s.cfg.SessionQuotaBytes; q > 0 && keyBytes > q {
		if s.tel != nil {
			s.tel.quotaRejections.Add(1)
		}
		return errf(CodeQuota, "session %q key set of %d bytes exceeds the %d-byte tenant quota", name, keyBytes, q)
	}
	sess := s.newSession(name)
	eval, bt, err := s.buildRuntime(sess, rlk, rtks)
	if err != nil {
		return err
	}
	sess.eval = eval
	sess.bt = bt
	sess.bootstrappable = bt != nil
	sess.keyBytes = keyBytes
	if s.store != nil {
		if err := s.store.Save(name, rlk, rtks, keyBytes); err != nil {
			return err
		}
		sess.onDisk = true
	}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return errServerClosed
	}
	old := s.sessions[name]
	s.sessions[name] = sess
	s.mu.Unlock()
	if old != nil {
		s.keys.drop(old)
	}
	s.evictVictims(s.keys.touch(sess, keyBytes))
	return nil
}

// coversRotations reports whether rtks holds a key for every rotation amount
// in rots plus conjugation.
func coversRotations(ctx *ckks.Context, rtks *ckks.RotationKeySet, rots []int) bool {
	for _, r := range rots {
		if _, ok := rtks.Keys[ctx.RingQ.GaloisElement(r)]; !ok {
			return false
		}
	}
	_, ok := rtks.Keys[ctx.RingQ.GaloisConjugate()]
	return ok
}

// CloseSession removes a session, in memory and (when the store is
// configured) on disk. In-flight jobs finish; queued jobs for the session
// fail when dispatched.
func (s *Server) CloseSession(name string) {
	s.mu.Lock()
	sess := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if sess != nil {
		s.keys.drop(sess)
	}
	if s.store != nil {
		_ = s.store.Delete(name)
	}
}

// session lookup helper.
func (s *Server) session(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[name]
	if !ok {
		return nil, errf(CodeInvalid, "unknown session %q", name)
	}
	return sess, nil
}

// sessionRuntime returns the session's evaluator and bootstrapper,
// rehydrating the decoded keys from the durable store when the session is
// cold (restart, or evicted under key-memory pressure), and touches the
// key-cache LRU. Called by the dispatcher once per batch.
func (s *Server) sessionRuntime(sess *session) (*ckks.Evaluator, *ckks.Bootstrapper, error) {
	if ev, bt := sess.runtime(); ev != nil {
		s.evictVictims(s.keys.touch(sess, sess.keyFootprint()))
		return ev, bt, nil
	}
	sess.hydMu.Lock()
	defer sess.hydMu.Unlock()
	if ev, bt := sess.runtime(); ev != nil { // hydrated while we waited
		return ev, bt, nil
	}
	if s.store == nil {
		return nil, nil, errf(CodeInternal, "session %q has no resident keys and no durable store", sess.name)
	}
	rlk, rtks, keyBytes, err := s.store.Load(sess.name)
	if err != nil {
		return nil, nil, err
	}
	eval, bt, err := s.buildRuntime(sess, rlk, rtks)
	if err != nil {
		return nil, nil, errf(CodeStore, "rehydrating session %q: %v", sess.name, err)
	}
	sess.mu.Lock()
	sess.eval = eval
	sess.bt = bt
	sess.bootstrappable = bt != nil
	sess.keyBytes = keyBytes
	sess.onDisk = true
	sess.mu.Unlock()
	s.keys.reloads.Add(1)
	s.evictVictims(s.keys.touch(sess, keyBytes))
	return eval, bt, nil
}

// evictVictims drops the decoded keys of sessions the LRU selected,
// spilling their resident registers to the durable store first — the LRU
// only nominates idle sessions, so the spill races no commit, and the
// session's next DAG job rehydrates both keys and registers.
func (s *Server) evictVictims(victims []*session) {
	for _, v := range victims {
		s.spillRegisters(v)
		v.evict()
	}
}

// Submit enqueues a job and blocks until its result, with no deadline
// beyond Config.DefaultJobTimeout. See SubmitContext.
func (s *Server) Submit(sessionName string, ops []Op, inputs []*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	return s.SubmitContext(context.Background(), sessionName, ops, inputs)
}

// SubmitContext enqueues a job and blocks until its result, the context's
// cancellation, or its deadline. The inputs remain owned by the caller (the
// HTTP layer returns pooled inputs to the context pool after the response is
// written); the returned ciphertext is pooled and the caller should
// PutCiphertext it once serialized.
//
// Cancellation semantics: a job canceled while still queued never executes
// (it is unlinked from the queue, or skipped at dispatch) and SubmitContext
// returns immediately with CodeCanceled/CodeDeadline. Once the job is
// executing, SubmitContext waits for it to finish — the inputs are in use —
// then discards the result and reports the context error.
func (s *Server) SubmitContext(ctx context.Context, sessionName string, ops []Op, inputs []*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	sess, err := s.session(sessionName)
	if err != nil {
		return nil, err
	}
	if sess.isQuarantined() {
		return nil, errf(CodeQuarantined, "session %q is quarantined after repeated faults; reopen it to clear", sessionName)
	}
	for i, op := range ops {
		if op.registerForm() {
			return nil, errf(CodeBadJob, "op %d uses register addressing; submit it as a DAG job (SubmitDAG, or inputs/outputs on the wire)", i)
		}
	}
	if err := validateOps(ops, len(inputs), s.cfg.MaxOpsPerJob); err != nil {
		return nil, err
	}
	if len(inputs) == 0 {
		return nil, errf(CodeInvalid, "job carries no input ciphertexts")
	}
	cts, err := s.submitJob(ctx, sess, ops, compileLegacy(ops, len(inputs)), inputs)
	if err != nil {
		return nil, err
	}
	return cts[0], nil
}

// SubmitDAG enqueues a register-form DAG job and blocks like SubmitContext.
// inputs are uploaded ciphertexts bound (in order) to the registers named
// by inputNames before any op runs; outputs names the registers whose
// values are returned, resolved after the DAG completes — each returned
// ciphertext is a pooled copy the caller should PutCiphertext once
// serialized, while the session keeps owning the register values. A job
// with no ops is a pure upload; one with no outputs returns nothing and
// leaves its results resident for later jobs.
//
// Validation failures — malformed register names, an op set with a
// dependency cycle, a read of a register the session does not hold
// (including one another session owns: registers are strictly
// session-scoped) — are terminal CodeBadJob errors. Mid-DAG faults and
// cancellation skip every dependent op; results already committed to
// registers stay committed, so a retry can resume from them.
func (s *Server) SubmitDAG(ctx context.Context, sessionName string, ops []Op, inputNames, outputs []string, inputs []*ckks.Ciphertext) ([]*ckks.Ciphertext, error) {
	sess, err := s.session(sessionName)
	if err != nil {
		return nil, err
	}
	if sess.isQuarantined() {
		return nil, errf(CodeQuarantined, "session %q is quarantined after repeated faults; reopen it to clear", sessionName)
	}
	if len(inputs) != len(inputNames) {
		return nil, errf(CodeBadJob, "job uploads %d ciphertexts for %d input bindings", len(inputs), len(inputNames))
	}
	prog, err := compileRegisters(ops, inputNames, outputs, s.cfg.MaxOpsPerJob)
	if err != nil {
		return nil, err
	}
	// Reject dangling register reads at submit time when the in-memory set
	// is complete; after a restart or spill the check defers to execution,
	// once the store has been consulted. Reads resolve against registers
	// committed before the job runs — a concurrently queued writer does not
	// count, so submitters chaining jobs should submit them sequentially.
	if len(prog.reads) > 0 && sess.registersKnown() {
		for _, name := range prog.reads {
			if sess.getRegister(name) == nil {
				return nil, errf(CodeBadJob, "job reads register %q, which does not exist in session %q", name, sessionName)
			}
		}
	}
	return s.submitJob(ctx, sess, ops, prog, inputs)
}

// submitJob is the shared enqueue-and-wait path behind SubmitContext and
// SubmitDAG: admission control, tracing, the queue handshake, and the
// cancellation race.
func (s *Server) submitJob(ctx context.Context, sess *session, ops []Op, prog *program, inputs []*ckks.Ciphertext) ([]*ckks.Ciphertext, error) {
	if t := s.cfg.DefaultJobTimeout; t > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
	}
	j := &job{
		ctx:      ctx,
		sess:     sess,
		ops:      ops,
		prog:     prog,
		inputs:   inputs,
		enqueued: time.Now(),
		done:     make(chan jobResult, 1),
	}
	if s.tel != nil && s.tel.tracer != nil {
		// Every job gets a trace when a slow-job threshold is set; the spans
		// live in the tracer's fixed ring, so tracing a fast job costs atomic
		// stores, not retention. The root span covers submit-to-completion,
		// the queue span submit-to-dispatch.
		j.tr = s.tel.tracer.NewTrace()
		j.root = j.tr.Span(spanJob, 0)
		j.queue = j.tr.Span(spanQueue, j.root.ID())
	}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, errServerClosed
	}
	if len(s.pending) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, errf(CodeQueueFull, "queue full (%d jobs)", s.cfg.MaxQueue)
	}
	s.pending = append(s.pending, j)
	sess.stats.enqueued()
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case r := <-j.done:
		return r.cts, r.err
	case <-ctx.Done():
		return s.cancelJob(j)
	}
}

// cancelJob handles a submitter's context expiring while its job is in the
// system. Queued jobs are unlinked (or, if already claimed into a batch,
// marked so the batch worker skips execution); a job already executing runs
// to completion — its inputs are in use — and the result is discarded.
func (s *Server) cancelJob(j *job) ([]*ckks.Ciphertext, error) {
	ctxErr := contextError(j.ctx.Err())
	// Fast path: still in the pending queue — unlink it so it never
	// dispatches (and frees its queue slot immediately).
	s.mu.Lock()
	for i, q := range s.pending {
		if q == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.mu.Unlock()
			s.finishJob(j, nil, ctxErr, false)
			r := <-j.done
			return r.cts, r.err
		}
	}
	s.mu.Unlock()
	// Already claimed by a batch: if the worker has not started executing,
	// flag it to skip; either way the worker delivers, so wait for it.
	j.cancelled.Store(true)
	r := <-j.done
	if r.err == nil {
		// The job finished under us; the caller is gone, so recycle the
		// results and surface the context error. Register commits the job
		// made are kept — they are session state, not response payload.
		for _, ct := range r.cts {
			s.ctx.PutCiphertext(ct)
		}
		return nil, ctxErr
	}
	return nil, r.err
}

// contextError maps a context error onto the serving taxonomy.
func contextError(err error) *Error {
	if err == context.DeadlineExceeded {
		return errf(CodeDeadline, "job deadline exceeded")
	}
	return errf(CodeCanceled, "job canceled by submitter")
}

// Drain stops admission (submits and session opens fail with a retryable
// CodeUnavailable error) and waits until the queue is empty and every
// in-flight batch has completed, or until ctx expires — then closes the
// server either way. A fully drained shutdown returns nil; an expired ctx
// returns its error with the abandoned jobs failed cleanly by Close.
//
// There is nothing to flush: the session store is write-through (sessions
// persist at open), so a drained daemon can be killed the moment Drain
// returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.Close()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			s.mu.Lock()
			empty := len(s.pending) == 0
			s.mu.Unlock()
			if empty {
				s.batches.Wait()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	var err error
	select {
	case <-drained:
		// Fully drained: every session is idle, so spill resident registers
		// while the store is still reachable. The next process rehydrates
		// them lazily, making clean restarts lossless for register state.
		// (On an expired ctx jobs may still be running, so no spill — a
		// concurrent commit could be lost mid-write.)
		s.mu.Lock()
		sessions := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			sessions = append(sessions, sess)
		}
		s.mu.Unlock()
		for _, sess := range sessions {
			s.spillRegisters(sess)
		}
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.Close()
	return err
}

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops the dispatcher, failing queued jobs. Open sessions are
// discarded from memory (their durable state, if any, remains on disk).
// Close blocks until the dispatcher has drained.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispatcherDone
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.dispatcherDone
	s.ctx.Close()
}

// Uptime reports how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }
