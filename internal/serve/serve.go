// Package serve is the multi-tenant FHE serving runtime of the repository:
// the software analogue of the BTS paper's framing of bootstrappable CKKS as
// a service whose throughput comes from keeping many client ciphertexts in
// flight, not only from fast kernels (Section 1; FAB makes the same point
// for FPGA hosts).
//
// Clients open named sessions by uploading evaluation keys (relinearization
// and rotation keys — never the secret key), then submit jobs: small
// programs of primitive HE ops (Add/Sub/Mult/Rotate/RotateHoisted/
// Conjugate/Rescale/Bootstrap) over wire-format ciphertexts. Rotation-heavy
// jobs should batch rotations of one operand into a single hoisted "roth"
// step, which decomposes the ciphertext for key-switching once and reuses
// it across all requested amounts (see internal/ckks hoisting). A dispatcher batches compatible
// jobs (same session: they share key material, keeping key-switching tables
// hot) and executes each batch with one goroutine per job, so several
// ciphertexts are in flight across the context's shared limb-parallel
// ring.Engine at once. Results come from the context's ciphertext pool and
// every intermediate returns to it, so steady-state serving allocates
// nothing per job.
//
// The package exposes the runtime three ways: the embeddable Server type,
// an http.Handler speaking the internal/wire format (cmd/btsserve wraps it
// in a daemon), and a Client for the other side of the socket (used by
// `btsbench -experiment serve` and the end-to-end tests).
package serve

import (
	"fmt"
	"sync"
	"time"

	"bts/internal/ckks"
	"bts/internal/wire"
)

// Config parameterizes a Server. The zero value of every tuning knob picks a
// sensible default; Params is mandatory.
type Config struct {
	// Params is the CKKS parameter set every session shares. Clients must
	// build the identical set (GET /v1/params serves it) or their wire
	// objects will fail validation.
	Params ckks.Parameters
	// Workers sets the execution engine's worker count; 0 keeps the shared
	// GOMAXPROCS-sized default pool.
	Workers int
	// BatchSize caps the number of jobs the dispatcher runs concurrently in
	// one batch (default 8).
	BatchSize int
	// Parallel caps the number of batches in flight at once (default 4).
	// Batches group jobs of one session; running several batches
	// concurrently is what lets distinct tenants overlap on the shared
	// engine, so total ciphertexts in flight ≤ BatchSize × Parallel.
	Parallel int
	// BatchWindow is how long the dispatcher lingers for additional
	// compatible jobs when a session's pending batch is smaller than
	// BatchSize. The linger is tracked per session: while one session's
	// undersized batch waits out its window, ready batches of other sessions
	// dispatch immediately. 0 selects the 200µs default; a negative value
	// disables lingering.
	BatchWindow time.Duration
	// MaxQueue bounds the number of queued jobs before Submit fails fast
	// (default 1024).
	MaxQueue int
	// MaxOpsPerJob bounds the program length of a single job (default 64).
	MaxOpsPerJob int
	// Bootstrap, when non-nil, builds a bootstrapper for every session whose
	// rotation keys cover the required rotations, enabling the "bootstrap"
	// op. The parameter chain must afford BootstrapParams.MinLevels().
	Bootstrap *ckks.BootstrapParams

	// DisableMetrics turns off the Prometheus registry (GET /metrics and
	// /debug/vars disappear from the handler) and detaches the engine, pool,
	// and wire counters. The zero value keeps metrics on: the counters are
	// atomic adds next to millisecond-scale FHE ops, so serving pays nothing
	// measurable for them.
	DisableMetrics bool
	// SlowJob, when positive, traces every job and retains the reconstructed
	// span tree of any job whose submit-to-completion latency meets the
	// threshold (GET /v1/traces, newest first). Zero disables tracing: the
	// instrumented paths then reduce to nil checks.
	SlowJob time.Duration
	// TraceBuffer overrides the tracer's span ring capacity (rounded up to a
	// power of two; 0 selects telemetry.DefaultTraceCapacity). Only
	// meaningful with SlowJob set.
	TraceBuffer int
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ on the
	// server's HTTP API. Off by default: profiling endpoints on a serving
	// port are opt-in.
	Pprof bool
}

func (cfg *Config) applyDefaults() {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	if cfg.BatchWindow < 0 {
		cfg.BatchWindow = 0
	} else if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 200 * time.Microsecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.MaxOpsPerJob <= 0 {
		cfg.MaxOpsPerJob = 64
	}
}

// Server is the serving runtime: a session registry plus a batching
// dispatcher over one shared ckks.Context. All methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	ctx     *ckks.Context
	codec   *wire.Codec // pooled: decoded ciphertexts recycle through the ctx pool
	encoder *ckks.Encoder
	started time.Time

	// tel is the observability bundle (metrics registry, counters, job
	// tracer); nil when both metrics and tracing are disabled, and every
	// instrumentation site nil-checks it.
	tel *telemetryState

	// bootRotations caches the rotation set bootstrapping needs (probed once
	// with a keyless evaluator), so /v1/params can tell clients what keys to
	// generate. With the factored (radix-stage) CoeffToSlot/SlotToCoeff
	// pipeline this is the stage chains' union — a fraction of the dense
	// matrices' requirement, which shrinks every tenant's key upload
	// accordingly (rotation keys dominate session-open traffic). Empty when
	// bootstrapping is disabled or unavailable.
	bootRotations []int

	mu       sync.Mutex
	sessions map[string]*session
	pending  []*job
	closed   bool
	// linger holds, per session with an undersized pending batch, the
	// deadline until which the dispatcher waits for more of that session's
	// jobs before dispatching the batch anyway. Tracking it per session —
	// not server-wide — is what lets a ready (full or expired) batch of one
	// tenant dispatch immediately while another tenant's half-full batch at
	// the head of the queue is still lingering.
	linger map[*session]time.Time
	wakeAt time.Time  // earliest armed linger wakeup (zero = none armed)
	cond   *sync.Cond // signals the dispatcher that pending/closed changed

	dispatcherDone chan struct{}
}

// New builds a Server and starts its dispatcher.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	ctx, err := ckks.NewContext(cfg.Params)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		ctx.SetWorkers(cfg.Workers)
	}
	s := &Server{
		cfg:      cfg,
		ctx:      ctx,
		codec:    wire.NewPooledCodec(ctx),
		encoder:  ckks.NewEncoder(ctx),
		started:  time.Now(),
		sessions: make(map[string]*session),
		linger:   make(map[*session]time.Time),

		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if !cfg.DisableMetrics || cfg.SlowJob > 0 {
		s.tel = newTelemetryState(&s.cfg)
		if s.tel.reg != nil {
			// SetStats instruments a context-private engine (installing one if
			// the context still shares ring.DefaultEngine), so scrapes never
			// see other tenants of the process-wide pool.
			ctx.SetStats(&s.tel.ctxStats)
			s.codec.SetStats(&s.tel.wire)
			s.registerCollectors()
		}
	}
	if cfg.Bootstrap != nil {
		// Probe the rotation requirements with a keyless evaluator; sessions
		// whose key sets cover them get a working bootstrapper.
		probe := ckks.NewEvaluator(ctx, s.encoder, nil, nil)
		bt, err := ckks.NewBootstrapper(ctx, s.encoder, probe, *cfg.Bootstrap)
		if err != nil {
			return nil, fmt.Errorf("serve: bootstrap enabled but unavailable: %w", err)
		}
		s.bootRotations = bt.Rotations()
	}
	go s.dispatch()
	return s, nil
}

// Context returns the shared evaluation context (useful for embedding the
// server in-process, e.g. the load generator's verification path).
func (s *Server) Context() *ckks.Context { return s.ctx }

// Codec returns the server's pooled wire codec.
func (s *Server) Codec() *wire.Codec { return s.codec }

// BootstrapRotations returns the rotation amounts a session's key set must
// cover for the "bootstrap" op, or nil when bootstrapping is disabled.
func (s *Server) BootstrapRotations() []int {
	return append([]int(nil), s.bootRotations...)
}

// OpenSession registers (or replaces) a named session with the given
// evaluation keys. rlk may be nil (jobs using "mul" will fail); rtks may be
// nil (jobs using "rot"/"conj" will fail). When the server was built with
// bootstrapping enabled and the rotation keys cover the required set, the
// session also gets a bootstrapper.
func (s *Server) OpenSession(name string, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) error {
	if name == "" {
		return fmt.Errorf("serve: empty session name")
	}
	eval := ckks.NewEvaluator(s.ctx, s.encoder, rlk, rtks)
	sess := &session{
		name:    name,
		eval:    eval,
		created: time.Now(),
	}
	if s.tel != nil {
		// Attach the session's running noise floor once, at open time, so
		// steady-state jobs keep allocating nothing: evaluator copies share
		// the floor (and the op counters) by pointer.
		sess.noise = ckks.NewNoiseFloor()
		sess.eval = eval.WithNoiseFloor(sess.noise)
	}
	if s.cfg.Bootstrap != nil && rlk != nil && rtks != nil && coversRotations(s.ctx, rtks, s.bootRotations) {
		bt, err := ckks.NewBootstrapper(s.ctx, s.encoder, sess.eval, *s.cfg.Bootstrap)
		if err != nil {
			return fmt.Errorf("serve: building bootstrapper for session %q: %w", name, err)
		}
		sess.bt = bt
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: server closed")
	}
	s.sessions[name] = sess
	return nil
}

// coversRotations reports whether rtks holds a key for every rotation amount
// in rots plus conjugation.
func coversRotations(ctx *ckks.Context, rtks *ckks.RotationKeySet, rots []int) bool {
	for _, r := range rots {
		if _, ok := rtks.Keys[ctx.RingQ.GaloisElement(r)]; !ok {
			return false
		}
	}
	_, ok := rtks.Keys[ctx.RingQ.GaloisConjugate()]
	return ok
}

// CloseSession removes a session. In-flight jobs finish; queued jobs for the
// session fail when dispatched.
func (s *Server) CloseSession(name string) {
	s.mu.Lock()
	delete(s.sessions, name)
	s.mu.Unlock()
}

// session lookup helper.
func (s *Server) session(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown session %q", name)
	}
	return sess, nil
}

// Submit enqueues a job and blocks until its result. The inputs remain owned
// by the caller (the HTTP layer returns pooled inputs to the context pool
// after the response is written); the returned ciphertext is pooled and the
// caller should PutCiphertext it once serialized.
func (s *Server) Submit(sessionName string, ops []Op, inputs []*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	sess, err := s.session(sessionName)
	if err != nil {
		return nil, err
	}
	if err := validateOps(ops, len(inputs), s.cfg.MaxOpsPerJob); err != nil {
		return nil, err
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("serve: job carries no input ciphertexts")
	}
	j := &job{
		sess:     sess,
		ops:      ops,
		inputs:   inputs,
		enqueued: time.Now(),
		done:     make(chan jobResult, 1),
	}
	if s.tel != nil && s.tel.tracer != nil {
		// Every job gets a trace when a slow-job threshold is set; the spans
		// live in the tracer's fixed ring, so tracing a fast job costs atomic
		// stores, not retention. The root span covers submit-to-completion,
		// the queue span submit-to-dispatch.
		j.tr = s.tel.tracer.NewTrace()
		j.root = j.tr.Span(spanJob, 0)
		j.queue = j.tr.Span(spanQueue, j.root.ID())
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server closed")
	}
	if len(s.pending) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: queue full (%d jobs)", s.cfg.MaxQueue)
	}
	s.pending = append(s.pending, j)
	sess.stats.enqueued()
	s.cond.Signal()
	s.mu.Unlock()

	r := <-j.done
	return r.ct, r.err
}

// Close stops the dispatcher, failing queued jobs. Open sessions are
// discarded. Close blocks until the dispatcher has drained.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispatcherDone
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.dispatcherDone
	s.ctx.Close()
}

// Uptime reports how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }
