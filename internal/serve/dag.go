package serve

import (
	"sync"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/telemetry"
)

// This file is the DAG job pipeline: both addressing forms of the wire
// schema (see Op) compile into one internal representation — a program of
// nodes over operands — which the scheduler partitions into topologically
// ordered stages and executes with the paper's operand-reuse optimizations
// (Section 5's scheduler-owned dataflow): independent nodes of a stage run
// concurrently, rotation fans over one source share a single key-switch
// decomposition, and pmul constants come from a per-session encoding cache.

// maxRegisterName bounds register names; they live in session maps and
// travel in JSON programs.
const maxRegisterName = 64

// operand is a compiled reference to one value a node reads: the result of
// an earlier node, one of the job's uploaded input ciphertexts, or a
// session register that existed before the job.
type operand struct {
	node  int    // producing node index, or -1
	input int    // job input index, or -1
	reg   string // pre-existing session register name, or ""
}

var noOperand = operand{node: -1, input: -1}

func nodeOperand(i int) operand      { return operand{node: i, input: -1} }
func inputOperand(i int) operand     { return operand{node: -1, input: i} }
func regOperand(name string) operand { return operand{node: -1, input: -1, reg: name} }

func (o operand) valid() bool { return o.node >= 0 || o.input >= 0 || o.reg != "" }

// node is one compiled primitive of a program.
type node struct {
	kind  OpKind
	a, b  operand
	by    int       // rotation amount (rot)
	vals  []float64 // plaintext vector (pmul)
	out   string    // register the result commits to ("" for legacy nodes)
	opIdx int       // originating index in the request's op list, for diagnostics
}

// program is a compiled job: nodes partitioned into stages such that every
// node's operands are produced by earlier stages, so the members of one
// stage are mutually independent and may run concurrently.
type program struct {
	nodes  []node
	stages [][]int

	// legacy marks a slot-form job: no registers are touched and the last
	// node's value is the job's single result.
	legacy bool

	// Register form only: inputs names the registers bound to the uploaded
	// ciphertexts (in upload order), outputs the registers returned to the
	// client, outOps their compiled resolutions, and reads the pre-existing
	// session registers the job depends on (outputs included when they
	// resolve to neither an input binding nor an op result).
	inputs  []string
	outputs []string
	outOps  []operand
	reads   []string
}

// validRegName reports whether name is a well-formed register name:
// "$" followed by 1..maxRegisterName-1 word characters.
func validRegName(name string) bool {
	if len(name) < 2 || len(name) > maxRegisterName || name[0] != '$' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if c != '_' && (c < '0' || c > '9') && (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') {
			return false
		}
	}
	return true
}

// compileLegacy lowers a validated slot-form program (validateOps has
// passed) into nodes. Slot k < numInputs is the k-th uploaded ciphertext;
// every node appends one slot. "roth" desugars into one rot node per
// amount, in Bys order — all reading the same operand, so the stage
// builder puts them in one stage and the fan detector hoists them through
// a shared decomposition, reproducing the retired bespoke fast path
// bit-for-bit.
func compileLegacy(ops []Op, numInputs int) *program {
	p := &program{legacy: true}
	slots := make([]operand, 0, numInputs+len(ops))
	for i := 0; i < numInputs; i++ {
		slots = append(slots, inputOperand(i))
	}
	for i, op := range ops {
		if op.Kind == OpRotateHoisted {
			src := slots[op.A]
			for _, by := range op.Bys {
				p.nodes = append(p.nodes, node{kind: OpRotate, a: src, b: noOperand, by: by, opIdx: i})
				slots = append(slots, nodeOperand(len(p.nodes)-1))
			}
			continue
		}
		n := node{kind: op.Kind, a: slots[op.A], b: noOperand, by: op.By, opIdx: i}
		if op.binary() {
			n.b = slots[op.B]
		}
		p.nodes = append(p.nodes, n)
		slots = append(slots, nodeOperand(len(p.nodes)-1))
	}
	// Slot programs only reference earlier slots, so the graph is acyclic by
	// construction and staging cannot fail.
	if err := p.buildStages(); err != nil {
		panic(err)
	}
	return p
}

// compileRegisters validates and lowers a register-form program. Every
// failure is a terminal CodeBadJob: the program itself is wrong and
// retrying cannot help. Rules: ops are unordered single-assignment (each op
// names a fresh Out register; the dependency graph comes from the names),
// operand names resolve input binding → op result → session register, and
// the slot-form fields (A/B/Bys) must be unused — an op mixing the two
// addressing forms is rejected rather than guessed at.
func compileRegisters(ops []Op, inputNames, outputs []string, maxOps int) (*program, error) {
	if len(ops) > maxOps {
		return nil, errf(CodeBadJob, "job has %d ops, limit is %d", len(ops), maxOps)
	}
	if len(ops) == 0 && len(inputNames) == 0 {
		return nil, errf(CodeBadJob, "empty DAG job: no ops and no input bindings")
	}
	p := &program{inputs: inputNames, outputs: outputs}
	inputIdx := make(map[string]int, len(inputNames))
	for i, name := range inputNames {
		if !validRegName(name) {
			return nil, errf(CodeBadJob, "input binding %d: invalid register name %q (want $word of at most %d chars)", i, name, maxRegisterName)
		}
		if _, dup := inputIdx[name]; dup {
			return nil, errf(CodeBadJob, "input binding %q repeated", name)
		}
		inputIdx[name] = i
	}
	writer := make(map[string]int, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpAdd, OpSub, OpMul, OpRotate, OpConjugate, OpRescale, OpBootstrap, OpMulPlain:
		case OpRotateHoisted:
			return nil, errf(CodeBadJob, "op %d: roth has no register form; ask for one rot per amount — same-register fans hoist automatically", i)
		default:
			return nil, errf(CodeBadJob, "op %d: unknown kind %q", i, op.Kind)
		}
		if op.A != 0 || op.B != 0 || len(op.Bys) != 0 {
			return nil, errf(CodeBadJob, "op %d: slot-form operand fields on a register-addressed op", i)
		}
		if op.By != 0 && op.Kind != OpRotate {
			return nil, errf(CodeBadJob, "op %d: rotation amount on non-rot op %q", i, op.Kind)
		}
		if !validRegName(op.Out) {
			return nil, errf(CodeBadJob, "op %d: invalid result register %q (want $word of at most %d chars)", i, op.Out, maxRegisterName)
		}
		if _, dup := writer[op.Out]; dup {
			return nil, errf(CodeBadJob, "register %q written by two ops (single assignment)", op.Out)
		}
		if _, shadow := inputIdx[op.Out]; shadow {
			return nil, errf(CodeBadJob, "register %q is both an input binding and an op result", op.Out)
		}
		writer[op.Out] = i
		if op.Kind == OpMulPlain {
			if len(op.Vals) == 0 {
				return nil, errf(CodeBadJob, "op %d: pmul without a plaintext vector", i)
			}
		} else if len(op.Vals) > 0 {
			return nil, errf(CodeBadJob, "op %d: plaintext vector on non-pmul op %q", i, op.Kind)
		}
		if op.Ra == "" {
			return nil, errf(CodeBadJob, "op %d: missing operand register ra", i)
		}
		if op.binary() != (op.Rb != "") {
			if op.binary() {
				return nil, errf(CodeBadJob, "op %d: %q needs a second operand register rb", i, op.Kind)
			}
			return nil, errf(CodeBadJob, "op %d: %q takes no second operand", i, op.Kind)
		}
	}
	seenReads := make(map[string]bool)
	resolve := func(name string, where string, i int) (operand, error) {
		if !validRegName(name) {
			return noOperand, errf(CodeBadJob, "%s %d: invalid register name %q", where, i, name)
		}
		if idx, ok := inputIdx[name]; ok {
			return inputOperand(idx), nil
		}
		if w, ok := writer[name]; ok {
			return nodeOperand(w), nil
		}
		if !seenReads[name] {
			seenReads[name] = true
			p.reads = append(p.reads, name)
		}
		return regOperand(name), nil
	}
	for i, op := range ops {
		n := node{kind: op.Kind, b: noOperand, by: op.By, vals: op.Vals, out: op.Out, opIdx: i}
		var err error
		if n.a, err = resolve(op.Ra, "op", i); err != nil {
			return nil, err
		}
		if op.binary() {
			if n.b, err = resolve(op.Rb, "op", i); err != nil {
				return nil, err
			}
		}
		p.nodes = append(p.nodes, n)
	}
	seenOuts := make(map[string]bool, len(outputs))
	for i, name := range outputs {
		if seenOuts[name] {
			return nil, errf(CodeBadJob, "output %q requested twice", name)
		}
		seenOuts[name] = true
		o, err := resolve(name, "output", i)
		if err != nil {
			return nil, err
		}
		p.outOps = append(p.outOps, o)
	}
	if err := p.buildStages(); err != nil {
		return nil, err
	}
	return p, nil
}

// buildStages partitions the nodes into longest-path-depth stages via
// Kahn's algorithm; a cycle (possible only in register form, where op order
// carries no meaning) leaves nodes unprocessed and is reported as a typed
// CodeBadJob error.
func (p *program) buildStages() error {
	n := len(p.nodes)
	if n == 0 {
		return nil
	}
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i := range p.nodes {
		for _, o := range [2]operand{p.nodes[i].a, p.nodes[i].b} {
			if o.node >= 0 {
				indeg[i]++
				succ[o.node] = append(succ[o.node], i)
			}
		}
	}
	depth := make([]int, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen, maxDepth := 0, 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
		for _, s := range succ[i] {
			if d := depth[i] + 1; d > depth[s] {
				depth[s] = d
			}
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return errf(CodeBadJob, "register dependency cycle among the job's ops")
	}
	p.stages = make([][]int, maxDepth+1)
	for i := 0; i < n; i++ {
		p.stages[depth[i]] = append(p.stages[depth[i]], i)
	}
	return nil
}

// hoistCache shares key-switch decompositions across the jobs of one batch:
// rotation fans reading the same resident register reuse one DecomposeNTT.
// Keys are ciphertext pointers — sound because committed register values
// are never returned to the ciphertext pool (an overwritten value is
// dropped to the GC), so for the cache's lifetime a pointer names exactly
// one value, and a register value's level never changes once committed.
// Job inputs and intermediates do recycle through the pool and must NOT be
// cached here; their fans use stage-local decompositions instead.
type hoistCache struct {
	mu      sync.Mutex
	entries map[*ckks.Ciphertext]*ckks.HoistedDecomposition
}

func newHoistCache() *hoistCache {
	return &hoistCache{entries: make(map[*ckks.Ciphertext]*ckks.HoistedDecomposition)}
}

// get returns the cached decomposition of ct, building it on first use.
// The decomposition stays owned by the cache; callers must not Release it.
func (hc *hoistCache) get(ev *ckks.Evaluator, ct *ckks.Ciphertext, tel *telemetryState) *ckks.HoistedDecomposition {
	hc.mu.Lock()
	if hd := hc.entries[ct]; hd != nil {
		hc.mu.Unlock()
		if tel != nil {
			tel.hoistCacheHits.Add(1)
		}
		return hd
	}
	hc.mu.Unlock()
	// Decompose outside the lock: it is milliseconds of NTT work and other
	// jobs of the batch may need decompositions of other registers meanwhile.
	hd := ev.DecomposeNTT(ct)
	hc.mu.Lock()
	if prior := hc.entries[ct]; prior != nil {
		hc.mu.Unlock()
		hd.Release() // lost the race; the first build wins
		if tel != nil {
			tel.hoistCacheHits.Add(1)
		}
		return prior
	}
	hc.entries[ct] = hd
	hc.mu.Unlock()
	return hd
}

// release returns every cached decomposition's scratch to the ring pools.
// Called by the batch worker after all of the batch's jobs completed.
func (hc *hoistCache) release() {
	for _, hd := range hc.entries {
		hd.Release()
	}
	hc.entries = nil
}

// stageHoists maps rotation nodes of one stage to their shared
// decomposition. Decompositions of register-backed fans live in the batch's
// hoistCache; fans over job inputs or intermediates (whose ciphertexts
// recycle through the pool, so pointer-keyed caching would be unsound) are
// stage-local and released when the stage ends.
type stageHoists struct {
	byNode map[int]*ckks.HoistedDecomposition
	local  []*ckks.HoistedDecomposition
}

func (sh *stageHoists) release() {
	for _, hd := range sh.local {
		hd.Release()
	}
	sh.local = nil
}

// prepareFans detects rotation fans in a stage — two or more rot nodes
// reading the same operand — and prepares one decomposition per fan. This
// is the scheduler-level automatic hoisting the explicit "roth" op used to
// hand-roll: a fan of n rotations costs 1 Decompose + n hoisted gather-MACs
// instead of n full key-switch pipelines, and the outputs stay bit-identical
// to naive rotation (see internal/ckks/hoisting.go).
func (j *job) prepareFans(s *Server, ev *ckks.Evaluator, stage []int, resolve func(operand) *ckks.Ciphertext, hc *hoistCache) *stageHoists {
	var groups map[operand][]int
	for _, idx := range stage {
		if n := &j.prog.nodes[idx]; n.kind == OpRotate {
			if groups == nil {
				groups = make(map[operand][]int)
			}
			groups[n.a] = append(groups[n.a], idx)
		}
	}
	sh := &stageHoists{}
	for o, members := range groups {
		if len(members) < 2 {
			continue
		}
		src := resolve(o)
		if src == nil {
			continue // the nodes will fail with a typed error at execution
		}
		var hd *ckks.HoistedDecomposition
		if o.reg != "" && hc != nil {
			hd = hc.get(ev, src, s.tel)
		} else {
			hd = ev.DecomposeNTT(src)
			sh.local = append(sh.local, hd)
		}
		if sh.byNode == nil {
			sh.byNode = make(map[int]*ckks.HoistedDecomposition)
		}
		for _, idx := range members {
			sh.byNode[idx] = hd
		}
		if s.tel != nil {
			s.tel.hoistShared.Add(1)
		}
	}
	return sh
}

// run executes the job's compiled program stage by stage on the given
// evaluator (the session's shared one, or a traced job-private copy) and
// bootstrapper. Within a stage, nodes are independent by construction and
// run concurrently — each under its own panic recovery, so one node's
// programmer error (missing key, scale mismatch) fails only this job. The
// job's context is checked at every stage boundary and before every node,
// so cancellation and deadlines abort without executing downstream nodes
// while results already committed to registers stay committed — partial
// progress is real progress for a multi-request pipeline.
//
// Register-form jobs first rehydrate the session's spilled registers (see
// hydrateRegisters), snapshot the pre-existing registers they read, and
// commit the uploaded input bindings; every node then commits its result
// register as it completes, under the tenant's byte quota. Outputs are
// returned as fresh pooled copies — the session keeps owning the register
// values. Legacy jobs touch no registers: the last node's value is the
// single result, exactly the old flat-interpreter contract.
func (j *job) run(s *Server, ev *ckks.Evaluator, bt *ckks.Bootstrapper, hc *hoistCache) (outs []*ckks.Ciphertext, err error) {
	prog := j.prog
	ctx := s.ctx
	vals := make([]*ckks.Ciphertext, len(prog.nodes))
	committed := make([]bool, len(prog.nodes))
	resultIdx := -1
	defer func() {
		// Release every produced value that was neither committed to a
		// register nor returned as the legacy result; inputs stay owned by
		// the submitter.
		for i, ct := range vals {
			if ct != nil && !committed[i] && i != resultIdx {
				ctx.PutCiphertext(ct)
			}
		}
		if err == nil {
			j.sess.noteSuccess()
		}
	}()

	var snapshot map[string]*ckks.Ciphertext
	if !prog.legacy {
		if herr := s.hydrateRegisters(j.sess); herr != nil {
			return nil, herr
		}
		if len(prog.reads) > 0 {
			snapshot = make(map[string]*ckks.Ciphertext, len(prog.reads))
			for _, name := range prog.reads {
				ct := j.sess.getRegister(name)
				if ct == nil {
					return nil, errf(CodeBadJob, "job reads register %q, which does not exist in session %q", name, j.sess.name)
				}
				snapshot[name] = ct
			}
		}
		// Commit the uploaded input bindings before any stage runs. The
		// session takes ownership of quota-checked copies: the originals are
		// recycled by the transport once the submit returns.
		for i, name := range prog.inputs {
			cp := ctx.GetCiphertextNoZero(j.inputs[i].Level, j.inputs[i].Scale)
			if cerr := ctx.CopyCiphertext(cp, j.inputs[i]); cerr != nil {
				ctx.PutCiphertext(cp)
				return nil, errf(CodeInternal, "copying input binding %q: %v", name, cerr)
			}
			if qerr := s.commitRegister(j.sess, name, cp); qerr != nil {
				return nil, qerr
			}
		}
	}

	resolveOperand := func(o operand) *ckks.Ciphertext {
		switch {
		case o.node >= 0:
			return vals[o.node]
		case o.input >= 0:
			return j.inputs[o.input]
		default:
			return snapshot[o.reg]
		}
	}

	for _, stage := range prog.stages {
		if cerr := j.ctx.Err(); cerr != nil {
			return nil, contextError(cerr)
		}
		// Register-form stages get a "dag.stage" span grouping their op
		// spans; legacy op spans stay parented at the job root, preserving
		// the flat span-tree shape clients of /v1/traces already parse.
		stageParent := uint64(0)
		var stageSpan telemetry.Span
		if j.tr.Active() {
			stageParent = j.root.ID()
			if !prog.legacy {
				stageSpan = j.tr.Span(spanStage, j.root.ID())
				stageParent = stageSpan.ID()
			}
		}
		hds := j.prepareFans(s, ev, stage, resolveOperand, hc)

		runNode := func(idx int) (nerr error) {
			n := &j.prog.nodes[idx]
			// A panic before the node's primitive starts (e.g. an armed
			// ModePanic failpoint) is attributed to "(pre-op)", not the kind.
			kind := OpKind("")
			defer func() {
				if r := recover(); r != nil {
					nerr = s.jobPanicked(j, kind, r)
				}
			}()
			// The failpoint fires before the context check: an armed delay
			// makes "cancel lands between these two ops" deterministic for
			// the mid-DAG cancellation tests.
			if ferr := faultinject.Eval("serve.op.exec"); ferr != nil {
				return injectedFaultError(ferr)
			}
			if cerr := j.ctx.Err(); cerr != nil {
				return contextError(cerr)
			}
			kind = n.kind
			a := resolveOperand(n.a)
			var b *ckks.Ciphertext
			if n.b.valid() {
				b = resolveOperand(n.b)
			}
			nev := ev
			var sp telemetry.Span
			var start time.Time
			if s.tel != nil {
				start = time.Now()
			}
			if j.tr.Active() {
				// A private evaluator copy per node (sharing counters and the
				// noise floor by pointer) carries the span parent; concurrent
				// nodes mutating one evaluator's parent field would race.
				sp = j.tr.Span(opSpanNames[n.kind], stageParent)
				nev = ev.WithTrace(j.tr, sp.ID())
			}
			out, xerr := s.execNode(nev, bt, j, n, a, b, hds.byNode[idx])
			if xerr != nil {
				return xerr
			}
			if sp.Recording() {
				sp.SetLevel(out.Level)
				sp.SetMarginBits(ctx.NoiseMargin(out))
				sp.End()
			}
			if s.tel != nil {
				s.tel.observeOp(n.kind, out.Level, time.Since(start))
			}
			vals[idx] = out
			if n.out != "" {
				if qerr := s.commitRegister(j.sess, n.out, out); qerr != nil {
					return qerr
				}
				committed[idx] = true
			}
			return nil
		}

		var stageErr error
		if len(stage) == 1 {
			stageErr = runNode(stage[0])
		} else {
			errs := make([]error, len(stage))
			var wg sync.WaitGroup
			for k, idx := range stage {
				wg.Add(1)
				go func(k, idx int) {
					defer wg.Done()
					errs[k] = runNode(idx)
				}(k, idx)
			}
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					stageErr = e
					break
				}
			}
		}
		hds.release()
		if stageSpan.Recording() {
			stageSpan.End()
		}
		if stageErr != nil {
			// Downstream stages never execute; results already committed to
			// registers stay committed.
			return nil, stageErr
		}
	}

	if prog.legacy {
		resultIdx = len(prog.nodes) - 1
		return []*ckks.Ciphertext{vals[resultIdx]}, nil
	}
	outs = make([]*ckks.Ciphertext, 0, len(prog.outputs))
	for oi := range prog.outputs {
		src := resolveOperand(prog.outOps[oi])
		if src == nil {
			for _, ct := range outs {
				ctx.PutCiphertext(ct)
			}
			return nil, errf(CodeInternal, "output %q resolved to no value", prog.outputs[oi])
		}
		cp := ctx.GetCiphertextNoZero(src.Level, src.Scale)
		if cerr := ctx.CopyCiphertext(cp, src); cerr != nil {
			ctx.PutCiphertext(cp)
			for _, ct := range outs {
				ctx.PutCiphertext(ct)
			}
			return nil, errf(CodeInternal, "copying output %q: %v", prog.outputs[oi], cerr)
		}
		outs = append(outs, cp)
	}
	return outs, nil
}
