package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bts/internal/telemetry"
)

// Span names of the serving layer. The per-job span tree is rooted at
// "serve.job" (submit to completion); "serve.queue" covers submit to
// dispatch; each executed op gets an "op.<kind>" span under the root, and the
// evaluator's own spans (ckks.*, bootstrap.*) nest under the op that ran
// them.
// Register-form (DAG) jobs additionally group each stage's op spans under a
// "dag.stage" span, so a trace shows the stage structure the scheduler ran.
var (
	spanJob   = telemetry.Name("serve.job")
	spanQueue = telemetry.Name("serve.queue")
	spanStage = telemetry.Name("dag.stage")

	opSpanNames = map[OpKind]uint32{
		OpAdd:           telemetry.Name("op.add"),
		OpSub:           telemetry.Name("op.sub"),
		OpMul:           telemetry.Name("op.mul"),
		OpRotate:        telemetry.Name("op.rot"),
		OpRotateHoisted: telemetry.Name("op.roth"),
		OpConjugate:     telemetry.Name("op.conj"),
		OpRescale:       telemetry.Name("op.rescale"),
		OpBootstrap:     telemetry.Name("op.bootstrap"),
		OpMulPlain:      telemetry.Name("op.pmul"),
	}
)

// maxRetainedDumps bounds the job trace dumps the server keeps (newest
// first); older dumps fall off.
const maxRetainedDumps = 16

// telemetryState is the server's observability bundle: the metrics registry
// and every counter the scheduler and job runner bump, plus the job tracer
// and its retained job dumps. It exists (s.tel != nil) whenever metrics
// or tracing is enabled; reg is nil when metrics are disabled, tracer is nil
// when no slow-job threshold is set.
type telemetryState struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer

	// ctxStats and wire are handed to ckks.Context.SetStats and
	// wire.Codec.SetStats; the layers below bump them through nil-guarded
	// pointers.
	ctxStats telemetry.ContextStats
	wire     telemetry.WireStats

	jobsOK, jobsErr atomic.Int64
	jobsCancelled   atomic.Int64 // canceled or deadline-expired before producing a result
	batchesRun      atomic.Int64
	batchesInflight atomic.Int64
	slowJobs        atomic.Int64
	quotaRejections atomic.Int64 // uploads rejected by SessionQuotaBytes
	quarantines     atomic.Int64 // sessions quarantined after repeated faults

	hoistShared    atomic.Int64 // rotation fans served by one shared decomposition
	hoistCacheHits atomic.Int64 // fans that reused a batch-cached decomposition
	encHits        atomic.Int64 // pmul encodings served from a session cache
	encMisses      atomic.Int64 // pmul encodings computed (cache miss or disabled-cache path skips both)
	regSpills      atomic.Int64 // registers spilled to the durable store
	regReloads     atomic.Int64 // registers rehydrated from the durable store

	batchSize  *telemetry.Histogram // jobs per dispatched batch
	lingerWait *telemetry.Histogram // seconds undersized batches lingered
	jobLatency *telemetry.Histogram // submit-to-completion seconds

	// opLat holds one latency histogram per (op kind, result level) pair,
	// created on first observation. The map is tiny (kinds × levels) and
	// mutex cost is noise next to the millisecond-scale FHE ops it brackets.
	opMu  sync.Mutex
	opLat map[opLatKey]*telemetry.Histogram

	// panics counts recovered job panics per op kind
	// (bts_job_panics_total{op=...}); panics are rare, so a mutex-guarded
	// map beats pre-sizing a histogram per kind.
	panicMu sync.Mutex
	panics  map[OpKind]int64

	dumpMu sync.Mutex
	dumps  []SlowJobDump
}

type opLatKey struct {
	kind  OpKind
	level int
}

// SlowJobDump is one retained job trace: the job's identity, why it was
// retained ("slow" for jobs over the slow-job threshold, "panic" for jobs
// whose op panicked), and its reconstructed span tree
// (telemetry.Tracer.RenderTree), served by GET /v1/traces.
type SlowJobDump struct {
	Session   string  `json:"session"`
	Ops       int     `json:"ops"`
	LatencyMs float64 `json:"latency_ms"`
	Reason    string  `json:"reason"`
	Error     string  `json:"error,omitempty"`
	Tree      string  `json:"tree"`
}

func newTelemetryState(cfg *Config) *telemetryState {
	ts := &telemetryState{
		batchSize: telemetry.NewHistogram(telemetry.LinearBuckets(1, 1, 16)),
		lingerWait: telemetry.NewHistogram([]float64{
			50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 50e-3, 100e-3,
		}),
		jobLatency: telemetry.NewHistogram(telemetry.LatencyBuckets()),
		opLat:      make(map[opLatKey]*telemetry.Histogram),
		panics:     make(map[OpKind]int64),
	}
	if cfg.SlowJob > 0 {
		ts.tracer = telemetry.NewTracer(cfg.TraceBuffer)
	}
	if !cfg.DisableMetrics {
		ts.reg = telemetry.NewRegistry()
	}
	return ts
}

// registerCollectors wires every metric source into the registry, in a fixed
// order so scrapes render stably: context (engine + pools), wire codec,
// scheduler, key cache, per-session series, per-op latency histograms.
func (s *Server) registerCollectors() {
	reg := s.tel.reg
	reg.Register(s.tel.ctxStats.Collect)
	reg.Register(s.tel.wire.Collect)
	reg.Register(s.tel.collectScheduler)
	reg.Register(s.collectKeyCache)
	reg.Register(s.collectSessions)
	reg.Register(s.tel.collectOpLatency)
}

func (ts *telemetryState) collectScheduler(w *telemetry.Writer) {
	w.Counter("bts_jobs_total", "Jobs completed.",
		[]telemetry.Label{{Name: "result", Value: "ok"}}, float64(ts.jobsOK.Load()))
	w.Counter("bts_jobs_total", "Jobs completed.",
		[]telemetry.Label{{Name: "result", Value: "error"}}, float64(ts.jobsErr.Load()))
	w.Counter("bts_jobs_total", "Jobs completed.",
		[]telemetry.Label{{Name: "result", Value: "canceled"}}, float64(ts.jobsCancelled.Load()))
	w.Counter("bts_batches_total", "Batches dispatched.", nil, float64(ts.batchesRun.Load()))
	w.Gauge("bts_batches_inflight", "Batches currently executing.", nil, float64(ts.batchesInflight.Load()))
	w.Counter("bts_slow_jobs_total", "Jobs that exceeded the slow-job threshold.", nil, float64(ts.slowJobs.Load()))
	w.Counter("bts_quota_rejections_total", "Key uploads rejected by the per-tenant quota.", nil, float64(ts.quotaRejections.Load()))
	w.Counter("bts_session_quarantines_total", "Sessions quarantined after repeated job faults.", nil, float64(ts.quarantines.Load()))
	w.Counter("bts_hoist_shared_decompositions_total", "Rotation fans served by one shared key-switch decomposition (scheduler auto-hoisting).", nil, float64(ts.hoistShared.Load()))
	w.Counter("bts_hoist_cache_hits_total", "Rotation fans that reused a batch-cached register decomposition.", nil, float64(ts.hoistCacheHits.Load()))
	w.Counter("bts_encoding_cache_hits_total", "Plaintext (pmul) encodings served from a session's encoding cache.", nil, float64(ts.encHits.Load()))
	w.Counter("bts_encoding_cache_misses_total", "Plaintext (pmul) encodings computed on cache miss.", nil, float64(ts.encMisses.Load()))
	w.Counter("bts_register_spills_total", "Ciphertext registers spilled to the durable store.", nil, float64(ts.regSpills.Load()))
	w.Counter("bts_register_reloads_total", "Ciphertext registers rehydrated from the durable store.", nil, float64(ts.regReloads.Load()))
	ts.panicMu.Lock()
	kinds := make([]OpKind, 0, len(ts.panics))
	counts := make(map[OpKind]int64, len(ts.panics))
	for k, n := range ts.panics {
		kinds = append(kinds, k)
		counts[k] = n
	}
	ts.panicMu.Unlock()
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		w.Counter("bts_job_panics_total", "Job op panics recovered, per op kind.",
			[]telemetry.Label{{Name: "op", Value: string(k)}}, float64(counts[k]))
	}
	w.Histogram("bts_batch_size", "Jobs per dispatched batch.", nil, ts.batchSize)
	w.Histogram("bts_linger_wait_seconds", "Time undersized batches lingered for company before dispatch.", nil, ts.lingerWait)
	w.Histogram("bts_job_latency_seconds", "Submit-to-completion job latency (queueing included).", nil, ts.jobLatency)
	if ts.tracer != nil {
		w.Counter("bts_trace_spans_total", "Spans recorded by the job tracer.", nil, float64(ts.tracer.Spans()))
	}
}

// collectKeyCache renders the decoded-key governance series: resident bytes
// under LRU control, evictions to disk, and reloads from it.
func (s *Server) collectKeyCache(w *telemetry.Writer) {
	w.Gauge("bts_key_resident_bytes", "Decoded evaluation-key bytes resident under LRU control.", nil, float64(s.keys.residentBytes()))
	w.Counter("bts_key_evictions_total", "Session key sets evicted to disk under key-memory pressure.", nil, float64(s.keys.evictions.Load()))
	w.Counter("bts_key_reloads_total", "Session key sets rehydrated from the durable store.", nil, float64(s.keys.reloads.Load()))
}

// collectSessions renders the queue gauge plus the per-session series:
// serving counters, the evaluator's op mix (the same counters /v1/stats
// reports as op_mix, monotonic across evictions), residency, and the
// running noise floor.
func (s *Server) collectSessions(w *telemetry.Writer) {
	s.mu.Lock()
	depth := len(s.pending)
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].name < sessions[j].name })

	w.Gauge("bts_queue_depth", "Jobs queued and not yet dispatched.", nil, float64(depth))
	w.Gauge("bts_sessions_open", "Open sessions.", nil, float64(len(sessions)))
	var regCount int
	var regBytes int64
	for _, sess := range sessions {
		c, b := sess.registerStats()
		regCount += c
		regBytes += b
	}
	w.Gauge("bts_registers", "Ciphertext registers resident in memory across sessions.", nil, float64(regCount))
	w.Gauge("bts_register_bytes", "Resident ciphertext-register bytes across sessions.", nil, float64(regBytes))
	for _, sess := range sessions {
		sl := []telemetry.Label{{Name: "session", Value: sess.name}}
		sess.stats.mu.Lock()
		jobs, errs, qd := sess.stats.jobs, sess.stats.errors, sess.stats.queueDepth
		sess.stats.mu.Unlock()
		w.Counter("bts_session_jobs_total", "Jobs completed per session.", sl, float64(jobs))
		w.Counter("bts_session_errors_total", "Failed jobs per session.", sl, float64(errs))
		w.Gauge("bts_session_queue_depth", "Jobs submitted but not completed, per session.", sl, float64(qd))

		sess.mu.Lock()
		resident := sess.eval != nil
		mix := sess.opsBase
		if sess.eval != nil {
			mix = mix.Add(sess.eval.Counters())
		}
		sess.mu.Unlock()
		w.Gauge("bts_session_keys_resident", "Whether the session's decoded keys are in memory (1) or evicted/cold (0).",
			sl, boolGauge(resident))
		_, sessRegBytes := sess.registerStats()
		w.Gauge("bts_session_register_bytes", "Resident ciphertext-register bytes per session.", sl, float64(sessRegBytes))
		for _, kv := range []struct {
			kind string
			v    int64
		}{
			{"mult", mix.Mult}, {"full_rot", mix.FullRot}, {"hoisted_rot", mix.HoistedRot},
			{"decompose", mix.Decompose}, {"mod_down", mix.ModDown}, {"rescale", mix.Rescale},
			{"pmult", mix.PMult}, {"mod_raise", mix.ModRaise}, {"key_switch", mix.KeySwitchTotal()},
		} {
			w.Counter("bts_session_ops_total", "Primitive-op mix executed per session (evaluator counters).",
				[]telemetry.Label{{Name: "session", Value: sess.name}, {Name: "kind", Value: kv.kind}}, float64(kv.v))
		}
		if sess.noise != nil {
			// The gauge is the minimum noise margin (bits of modulus headroom)
			// ever observed on this session; +Inf (nothing observed yet) is
			// skipped by the writer.
			w.Gauge("bts_noise_floor_bits", "Minimum noise margin observed per session (bits of modulus headroom).",
				sl, sess.noise.MinBits())
		}
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (ts *telemetryState) collectOpLatency(w *telemetry.Writer) {
	ts.opMu.Lock()
	keys := make([]opLatKey, 0, len(ts.opLat))
	hists := make(map[opLatKey]*telemetry.Histogram, len(ts.opLat))
	for k, h := range ts.opLat {
		keys = append(keys, k)
		hists[k] = h
	}
	ts.opMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].level < keys[j].level
	})
	for _, k := range keys {
		labels := []telemetry.Label{
			{Name: "op", Value: string(k.kind)},
			{Name: "level", Value: itoa(k.level)},
		}
		w.Histogram("bts_op_latency_seconds", "Per-op execution latency, keyed by op kind and result level.", labels, hists[k])
	}
}

// itoa avoids importing strconv for the one small non-negative int we format.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func (ts *telemetryState) observeOp(kind OpKind, level int, d time.Duration) {
	k := opLatKey{kind: kind, level: level}
	ts.opMu.Lock()
	h := ts.opLat[k]
	if h == nil {
		h = telemetry.NewHistogram(telemetry.LatencyBuckets())
		ts.opLat[k] = h
	}
	ts.opMu.Unlock()
	h.Observe(d.Seconds())
}

// observePanic counts a recovered job panic against its op kind.
func (ts *telemetryState) observePanic(kind OpKind) {
	ts.panicMu.Lock()
	ts.panics[kind]++
	ts.panicMu.Unlock()
}

// retainDump renders and retains the span tree of a job worth keeping: one
// that exceeded the slow-job threshold (reason "slow") or whose op panicked
// (reason "panic", with the typed error attached). Caller must have checked
// ts.tracer != nil.
func (ts *telemetryState) retainDump(j *job, lat time.Duration, reason string, err error) {
	dump := SlowJobDump{
		Session:   j.sess.name,
		Ops:       len(j.ops),
		LatencyMs: lat.Seconds() * 1e3,
		Reason:    reason,
		Tree:      ts.tracer.RenderTree(j.tr.ID()),
	}
	if err != nil {
		dump.Error = err.Error()
	}
	if reason == "slow" {
		ts.slowJobs.Add(1)
	}
	ts.dumpMu.Lock()
	ts.dumps = append(ts.dumps, SlowJobDump{})
	copy(ts.dumps[1:], ts.dumps)
	ts.dumps[0] = dump
	if len(ts.dumps) > maxRetainedDumps {
		ts.dumps = ts.dumps[:maxRetainedDumps]
	}
	ts.dumpMu.Unlock()
}

// SlowJobDumps returns the retained job trace dumps, newest first
// (empty slice — never nil — when tracing is disabled or nothing was
// retained).
func (s *Server) SlowJobDumps() []SlowJobDump {
	out := []SlowJobDump{}
	if s.tel == nil {
		return out
	}
	s.tel.dumpMu.Lock()
	out = append(out, s.tel.dumps...)
	s.tel.dumpMu.Unlock()
	return out
}

// MetricsRegistry returns the server's metrics registry (nil when metrics
// are disabled); cmd/btsserve mounts its Handler and embedders can add their
// own collectors.
func (s *Server) MetricsRegistry() *telemetry.Registry {
	if s.tel == nil {
		return nil
	}
	return s.tel.reg
}
