package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/telemetry"
)

// job is one queued unit of work: a program over input ciphertexts bound to
// a session, plus the submitter's context.
type job struct {
	ctx      context.Context
	sess     *session
	ops      []Op
	prog     *program
	inputs   []*ckks.Ciphertext
	enqueued time.Time
	done     chan jobResult

	// cancelled is set by the submitter when its context expires after the
	// job was claimed into a batch; the batch worker checks it before
	// executing and skips the job entirely.
	cancelled atomic.Bool
	// delivered guards the one-shot completion bookkeeping (stats, metrics,
	// the done send), so the normal path, the cancel path and the
	// batch-boundary panic recovery cannot double-complete a job.
	delivered atomic.Bool

	// tr is the job's trace (inert zero value unless the server traces
	// jobs); root spans submit-to-completion and parents every op span,
	// queue spans submit-to-dispatch.
	tr    telemetry.Trace
	root  telemetry.Span
	queue telemetry.Span
}

type jobResult struct {
	cts []*ckks.Ciphertext
	err error
}

// finishJob is the single completion point of every job: it records
// latency, per-session statistics and result counters exactly once, then
// delivers on the job's buffered done channel. cts is the legacy job's
// single result or a DAG job's outputs (possibly empty: a pure-upload DAG
// requests none). executed reports whether the job actually ran ops
// (cancelled/skipped jobs keep their latency out of the percentile
// reservoirs' op accounting only via ops=0).
func (s *Server) finishJob(j *job, cts []*ckks.Ciphertext, err error, executed bool) {
	if !j.delivered.CompareAndSwap(false, true) {
		// Someone already completed this job (e.g. the cancel path raced the
		// batch worker). Produced results must not leak out of the pool.
		for _, ct := range cts {
			s.ctx.PutCiphertext(ct)
		}
		return
	}
	lat := time.Since(j.enqueued)
	if ts := s.tel; ts != nil {
		ts.jobLatency.Observe(lat.Seconds())
		switch {
		case err == nil:
			ts.jobsOK.Add(1)
		case Code(err) == CodeCanceled || Code(err) == CodeDeadline:
			ts.jobsCancelled.Add(1)
		default:
			ts.jobsErr.Add(1)
		}
	}
	if j.tr.Active() {
		j.root.End()
		if err == nil && s.cfg.SlowJob > 0 && lat >= s.cfg.SlowJob {
			s.tel.retainDump(j, lat, "slow", nil)
		}
	}
	ops := 0
	if executed && err == nil {
		ops = len(j.ops)
	}
	j.sess.stats.completed(lat, ops, err)
	j.done <- jobResult{cts: cts, err: err}
}

// dispatch is the scheduler loop. It repeatedly forms a batch — up to
// BatchSize pending jobs of one session, taken in queue order — and executes
// the batch with one goroutine per job, so the batch's ciphertexts are
// simultaneously in flight across the context's limb-parallel engine. Jobs
// are compatible when they target the same session: they share the evaluator
// and key material, so batching them keeps the key-switching working set
// hot, exactly the cross-ciphertext batching the paper credits for
// accelerator throughput.
//
// Up to Parallel batches execute concurrently (a semaphore bounds them), so
// distinct tenants overlap on the shared engine instead of taking turns.
//
// A session whose pending batch is smaller than BatchSize lingers for up to
// BatchWindow (a per-session deadline, see takeBatchLocked) to let
// concurrent submitters fill it; the dispatcher sleeps on the condition
// variable with a timer wakeup armed for the earliest deadline, so new
// submissions — for the lingering session or any other — are examined
// immediately.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	sem := make(chan struct{}, s.cfg.Parallel)
	defer s.batches.Wait()
	for {
		s.mu.Lock()
		var batch []*job
		for {
			if s.closed {
				pending := s.pending
				s.pending = nil
				s.mu.Unlock()
				for _, j := range pending {
					s.finishJob(j, nil, errServerClosed, false)
				}
				return
			}
			if len(s.pending) > 0 {
				var wait time.Duration
				if batch, wait = s.takeBatchLocked(time.Now()); batch != nil {
					break
				}
				s.armWakeupLocked(wait)
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		sem <- struct{}{}
		s.batches.Add(1)
		go func(batch []*job) {
			defer s.batches.Done()
			defer func() { <-sem }()
			s.runBatch(batch)
		}(batch)
	}
}

// armWakeupLocked schedules a dispatcher broadcast wait from now (caller
// holds s.mu), unless an earlier wakeup is already armed. A wakeup that
// turns out stale is harmless: the dispatcher re-evaluates the queue on
// every pass.
func (s *Server) armWakeupLocked(wait time.Duration) {
	at := time.Now().Add(wait)
	if !s.wakeAt.IsZero() && !s.wakeAt.After(at) {
		return
	}
	s.wakeAt = at
	time.AfterFunc(wait, func() {
		s.mu.Lock()
		s.wakeAt = time.Time{}
		s.cond.Broadcast()
		s.mu.Unlock()
	})
}

// takeBatchLocked forms the next dispatchable batch from the pending queue
// (caller holds s.mu). Sessions are considered in order of their oldest
// pending job; a session's batch is dispatchable when it is full (BatchSize
// jobs), when lingering is disabled, or when the session's linger deadline —
// started the first time its undersized batch is seen — has passed. The
// linger is per session, so one tenant's half-full batch waiting out its
// window never delays a different tenant's ready batch queued behind it.
//
// When no session is dispatchable yet, takeBatchLocked returns nil and the
// time until the earliest linger deadline, for the caller to arm a wakeup.
func (s *Server) takeBatchLocked(now time.Time) ([]*job, time.Duration) {
	counts := make(map[*session]int, len(s.linger)+1)
	order := make([]*session, 0, len(s.linger)+1)
	for _, j := range s.pending {
		if counts[j.sess] == 0 {
			order = append(order, j.sess)
		}
		counts[j.sess]++
	}
	// Drop linger deadlines of sessions with nothing queued anymore, so the
	// map cannot accumulate entries for departed tenants.
	for sess := range s.linger {
		if counts[sess] == 0 {
			delete(s.linger, sess)
		}
	}
	var take *session
	wait := time.Duration(-1)
	for _, sess := range order {
		if counts[sess] >= s.cfg.BatchSize || s.cfg.BatchWindow <= 0 {
			take = sess
			break
		}
		dl, lingering := s.linger[sess]
		if !lingering {
			dl = now.Add(s.cfg.BatchWindow)
			s.linger[sess] = dl
		}
		if !now.Before(dl) {
			take = sess
			break
		}
		if w := dl.Sub(now); wait < 0 || w < wait {
			wait = w
		}
	}
	if take == nil {
		return nil, wait
	}
	// How long the winning session's batch actually lingered: its deadline
	// was set window-length ahead of the first look, so the elapsed linger is
	// the window minus what remains. A batch dispatched on first sight (full,
	// or lingering disabled) lingered for zero.
	lingered := time.Duration(0)
	if dl, ok := s.linger[take]; ok {
		if lingered = s.cfg.BatchWindow - dl.Sub(now); lingered < 0 {
			lingered = 0
		}
	}
	delete(s.linger, take)
	size := counts[take]
	if size > s.cfg.BatchSize {
		size = s.cfg.BatchSize
	}
	batch := make([]*job, 0, size)
	rest := s.pending[:0]
	for _, j := range s.pending {
		if j.sess == take && len(batch) < size {
			batch = append(batch, j)
		} else {
			rest = append(rest, j)
		}
	}
	// Zero the tail so released jobs do not leak through the backing array.
	for i := len(rest); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = rest
	take.stats.batchFormed(len(batch))
	if ts := s.tel; ts != nil {
		ts.batchSize.Observe(float64(len(batch)))
		ts.lingerWait.Observe(lingered.Seconds())
	}
	return batch, 0
}

// runBatch executes every job of a batch concurrently and replies through
// finishJob. A traced job runs on a job-private evaluator copy carrying the
// trace (evaluator spans nest under the job's op spans); an untraced job
// runs on the session's shared evaluator, allocating nothing.
//
// runBatch is also a fault boundary: the session's keys are rehydrated here
// when cold (restart or eviction), the "serve.sched.dispatch" failpoint
// fires here, and a panic anywhere in the batch machinery (as opposed to
// inside one job's ops, which job.run recovers itself) fails the batch's
// jobs cleanly instead of killing the daemon.
func (s *Server) runBatch(batch []*job) {
	defer func() {
		if r := recover(); r != nil {
			err := errf(CodeInternal, "batch dispatch panicked: %v", r)
			for _, j := range batch {
				s.finishJob(j, nil, err, false)
			}
		}
	}()
	if ts := s.tel; ts != nil {
		ts.batchesRun.Add(1)
		ts.batchesInflight.Add(1)
		defer ts.batchesInflight.Add(-1)
	}
	if err := faultinject.Eval("serve.sched.dispatch"); err != nil {
		for _, j := range batch {
			s.finishJob(j, nil, injectedFaultError(err), false)
		}
		return
	}
	// All jobs of a batch share a session; hydrate its keys once.
	ev, bt, err := s.sessionRuntime(batch[0].sess)
	if err != nil {
		for _, j := range batch {
			s.finishJob(j, nil, err, false)
		}
		return
	}
	// The batch's jobs share one hoist cache: rotation fans over the same
	// resident register reuse a single key-switch decomposition across jobs.
	hc := newHoistCache()
	defer hc.release()
	var wg sync.WaitGroup
	for _, j := range batch {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			// A job cancelled after it was claimed into this batch (or whose
			// deadline expired while queued) never executes.
			if j.cancelled.Load() || j.ctx.Err() != nil {
				s.finishJob(j, nil, contextError(ctxErrOrCanceled(j.ctx)), false)
				return
			}
			jev := ev
			if j.tr.Active() {
				j.queue.End()
				jev = jev.WithTrace(j.tr, j.root.ID())
			}
			cts, err := j.run(s, jev, bt, hc)
			s.finishJob(j, cts, err, true)
		}(j)
	}
	wg.Wait()
}

// ctxErrOrCanceled returns the context's error, or context.Canceled when
// the job was flagged cancelled before its context reported one.
func ctxErrOrCanceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}
