package serve

import (
	"sync"
	"time"

	"bts/internal/ckks"
)

// job is one queued unit of work: a program over input ciphertexts bound to
// a session.
type job struct {
	sess     *session
	ops      []Op
	inputs   []*ckks.Ciphertext
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	ct  *ckks.Ciphertext
	err error
}

// dispatch is the scheduler loop. It repeatedly forms a batch — the oldest
// pending job plus every other pending job compatible with it, up to
// BatchSize — and executes the batch with one goroutine per job, so the
// batch's ciphertexts are simultaneously in flight across the context's
// limb-parallel engine. Jobs are compatible when they target the same
// session: they share the evaluator and key material, so batching them keeps
// the key-switching working set hot, exactly the cross-ciphertext batching
// the paper credits for accelerator throughput.
//
// Up to Parallel batches execute concurrently (a semaphore bounds them), so
// distinct tenants overlap on the shared engine instead of taking turns.
//
// When taking the oldest job would yield a batch smaller than BatchSize and
// a BatchWindow is configured, the dispatcher lingers once for up to the
// window to let concurrent submitters fill the batch.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	sem := make(chan struct{}, s.cfg.Parallel)
	var batches sync.WaitGroup
	defer batches.Wait()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			pending := s.pending
			s.pending = nil
			s.mu.Unlock()
			for _, j := range pending {
				j.sess.stats.dequeued()
				j.done <- jobResult{err: errServerClosed}
			}
			return
		}
		batch := s.takeBatchLocked()
		if batch == nil {
			// Linger: drop the lock so submitters can extend the queue, then
			// re-collect. takeBatchLocked never returns nil twice in a row.
			s.mu.Unlock()
			time.Sleep(s.cfg.BatchWindow)
			continue
		}
		s.mu.Unlock()
		sem <- struct{}{}
		batches.Add(1)
		go func(batch []*job) {
			defer batches.Done()
			defer func() { <-sem }()
			s.runBatch(batch)
		}(batch)
	}
}

// takeBatchLocked forms a batch from the pending queue (caller holds s.mu).
// It returns nil at most once per batch to request a linger pass when the
// batch would be undersized; the linger flag resets once a batch is taken.
func (s *Server) takeBatchLocked() []*job {
	head := s.pending[0]
	// Count the batch first — the queue must stay intact if we linger.
	size := 1
	for _, j := range s.pending[1:] {
		if size < s.cfg.BatchSize && j.sess == head.sess {
			size++
		}
	}
	if size < s.cfg.BatchSize && s.cfg.BatchWindow > 0 && !s.lingered {
		s.lingered = true
		return nil
	}
	s.lingered = false
	batch := make([]*job, 0, size)
	batch = append(batch, head)
	rest := s.pending[:0]
	for _, j := range s.pending[1:] {
		if len(batch) < size && j.sess == head.sess {
			batch = append(batch, j)
		} else {
			rest = append(rest, j)
		}
	}
	// Zero the tail so released jobs do not leak through the backing array.
	for i := len(rest); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = rest
	head.sess.stats.batchFormed(len(batch))
	return batch
}

// runBatch executes every job of a batch concurrently and replies on each
// job's done channel.
func (s *Server) runBatch(batch []*job) {
	var wg sync.WaitGroup
	for _, j := range batch {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			ct, err := j.run(s.ctx)
			j.sess.stats.completed(time.Since(j.enqueued), len(j.ops), err)
			j.done <- jobResult{ct: ct, err: err}
		}(j)
	}
	wg.Wait()
}
