package serve

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"bts/internal/ckks"
)

// Ciphertext registers are the session-resident half of the DAG job model:
// named values ("$x") that DAG ops read and write, persisting server-side
// across requests so a multi-request pipeline moves wire bytes only at its
// boundary. This file holds their lifecycle — commit under the tenant
// quota, spill to the durable store when the key cache evicts the session,
// rehydrate on next use — plus the per-session cache of hot pmul plaintext
// encodings.

// register is one committed session value. The ciphertext is immutable once
// committed and is never returned to the pool: in-flight jobs may still
// hold snapshots of it after an overwrite, so replaced values are dropped
// to the garbage collector instead.
type register struct {
	ct    *ckks.Ciphertext
	bytes int64
}

// getRegister returns the current value of a register, or nil.
func (sess *session) getRegister(name string) *ckks.Ciphertext {
	sess.regMu.Lock()
	defer sess.regMu.Unlock()
	if r := sess.regs[name]; r != nil {
		return r.ct
	}
	return nil
}

// registersKnown reports whether the in-memory register set is complete —
// false after a restart or a spill, when some registers may exist only in
// the durable store. Submit-time dangling-reference checks only run when it
// is true; otherwise they defer to execution, after rehydration.
func (sess *session) registersKnown() bool {
	sess.regMu.Lock()
	defer sess.regMu.Unlock()
	return sess.regsLoaded
}

// registerStats returns the resident register count and byte footprint.
func (sess *session) registerStats() (count int, bytes int64) {
	sess.regMu.Lock()
	defer sess.regMu.Unlock()
	return len(sess.regs), sess.regBytes
}

// commitRegister installs ct as the session's value for name, charging the
// session's combined footprint (eval keys + registers) against the tenant
// quota. On success the session owns ct — the caller must not Put or mutate
// it. A quota overrun is terminal (CodeQuota): re-running the same commit
// deterministically fails until the tenant frees space.
func (s *Server) commitRegister(sess *session, name string, ct *ckks.Ciphertext) error {
	bytes := ct.Bytes()
	keyBytes := sess.keyFootprint() // sess.mu; taken before regMu, never nested inside it
	sess.regMu.Lock()
	newTotal := sess.regBytes + bytes
	if old := sess.regs[name]; old != nil {
		newTotal -= old.bytes
	}
	if q := s.cfg.SessionQuotaBytes; q > 0 && keyBytes+newTotal > q {
		sess.regMu.Unlock()
		if s.tel != nil {
			s.tel.quotaRejections.Add(1)
		}
		return errf(CodeQuota,
			"register %q (%d bytes) would put session %q at %d bytes (keys %d + registers %d), over the %d-byte quota",
			name, bytes, sess.name, keyBytes+newTotal, keyBytes, newTotal, q)
	}
	if sess.regs == nil {
		sess.regs = make(map[string]*register)
	}
	sess.regs[name] = &register{ct: ct, bytes: bytes}
	sess.regBytes = newTotal
	sess.regMu.Unlock()
	return nil
}

// hydrateRegisters merges the session's spilled registers back from the
// durable store. Runs under the same single-flight mutex as key rehydration
// (hydMu), so concurrent jobs of a freshly rehydrated session trigger one
// store read. Memory wins on conflict: a register committed since the spill
// is newer than its on-disk copy by construction (spills only happen while
// the session is idle). Loaded values passed the quota when first
// committed, so they are not re-charged here.
func (s *Server) hydrateRegisters(sess *session) error {
	sess.regMu.Lock()
	loaded := sess.regsLoaded
	sess.regMu.Unlock()
	if loaded {
		return nil
	}
	sess.hydMu.Lock()
	defer sess.hydMu.Unlock()
	sess.regMu.Lock()
	if sess.regsLoaded {
		sess.regMu.Unlock()
		return nil
	}
	sess.regMu.Unlock()
	var fromDisk map[string]*ckks.Ciphertext
	if s.store != nil {
		sess.mu.Lock()
		onDisk := sess.onDisk
		sess.mu.Unlock()
		if onDisk {
			var err error
			if fromDisk, err = s.store.LoadRegisters(sess.name); err != nil {
				return err
			}
		}
	}
	sess.regMu.Lock()
	if sess.regs == nil && len(fromDisk) > 0 {
		sess.regs = make(map[string]*register, len(fromDisk))
	}
	restored := 0
	for name, ct := range fromDisk {
		if _, exists := sess.regs[name]; exists {
			continue
		}
		sess.regs[name] = &register{ct: ct, bytes: ct.Bytes()}
		sess.regBytes += ct.Bytes()
		restored++
	}
	sess.regsLoaded = true
	sess.regMu.Unlock()
	if s.tel != nil && restored > 0 {
		s.tel.regReloads.Add(int64(restored))
	}
	return nil
}

// spillRegisters persists the session's resident registers to the durable
// store and drops them from memory. Callers must ensure the session is idle
// (no queued or in-flight jobs): the key cache only nominates idle victims,
// and Drain spills after the queue is empty. If the store write fails the
// registers stay resident — correctness over memory; dropping values
// without a durable copy would lose tenant state. Sessions not yet written
// through to the store (store disabled, or OpenSession's write-through
// failed) keep their registers resident for the same reason.
func (s *Server) spillRegisters(sess *session) {
	if s.store == nil {
		return
	}
	sess.mu.Lock()
	onDisk := sess.onDisk
	sess.mu.Unlock()
	if !onDisk {
		return
	}
	sess.regMu.Lock()
	if !sess.regsLoaded || len(sess.regs) == 0 {
		sess.regMu.Unlock()
		return
	}
	snap := make(map[string]*ckks.Ciphertext, len(sess.regs))
	for name, r := range sess.regs {
		snap[name] = r.ct
	}
	sess.regMu.Unlock()
	// The store write runs outside regMu: registers are immutable once
	// committed, and the idleness contract means no commit races the spill.
	if err := s.store.SaveRegisters(sess.name, snap); err != nil {
		return
	}
	sess.regMu.Lock()
	sess.regs = nil
	sess.regBytes = 0
	sess.regsLoaded = false
	sess.regMu.Unlock()
	if s.tel != nil {
		s.tel.regSpills.Add(int64(len(snap)))
	}
}

// defaultEncodingCacheEntries is the per-session encoding cache capacity
// when Config.EncodingCacheEntries is zero.
const defaultEncodingCacheEntries = 32

// encodingCache is a per-session LRU of pmul plaintext encodings, keyed by
// (vector, level, scale). Encoding is a full slot-permutation FFT plus NTT
// per residue — milliseconds at serving ring sizes — and pipelines reuse a
// handful of constant vectors (masks, diagonal weights) across many jobs,
// so hot entries short-circuit that work. Cached plaintexts are immutable
// and shared by reference; the cache is safe for concurrent DAG nodes.
type encodingCache struct {
	mu     sync.Mutex
	cap    int
	order  *list.List               // front = most recent
	byHash map[uint64]*list.Element // collision-checked against the full key
}

type encEntry struct {
	hash  uint64
	vals  []float64
	level int
	scale float64
	pt    *ckks.Plaintext
}

func newEncodingCache(capacity int) *encodingCache {
	return &encodingCache{cap: capacity, order: list.New(), byHash: make(map[uint64]*list.Element)}
}

// encKey hashes the full (vals, level, scale) encoding key with FNV-1a.
// Hits re-verify against the stored key, so a collision costs a re-encode,
// never a wrong plaintext.
func encKey(vals []float64, level int, scale float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(level))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(scale))
	h.Write(buf[:])
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (e *encEntry) matches(vals []float64, level int, scale float64) bool {
	if e.level != level || e.scale != scale || len(e.vals) != len(vals) {
		return false
	}
	for i, v := range vals {
		if math.Float64bits(e.vals[i]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

func (ec *encodingCache) lookup(key uint64, vals []float64, level int, scale float64) *ckks.Plaintext {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if el, ok := ec.byHash[key]; ok {
		if e := el.Value.(*encEntry); e.matches(vals, level, scale) {
			ec.order.MoveToFront(el)
			return e.pt
		}
	}
	return nil
}

func (ec *encodingCache) insert(key uint64, vals []float64, level int, scale float64, pt *ckks.Plaintext) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if el, ok := ec.byHash[key]; ok {
		// Same hash: either a concurrent encode of the same vector (keep
		// either) or a collision (newest wins). Replace in place.
		ec.order.Remove(el)
		delete(ec.byHash, key)
	}
	ec.byHash[key] = ec.order.PushFront(&encEntry{hash: key, vals: vals, level: level, scale: scale, pt: pt})
	for ec.order.Len() > ec.cap {
		back := ec.order.Back()
		delete(ec.byHash, back.Value.(*encEntry).hash)
		ec.order.Remove(back)
	}
}

// encodingCacheFor returns the session's encoding cache, creating it
// lazily; nil when caching is disabled (EncodingCacheEntries < 0).
func (s *Server) encodingCacheFor(sess *session) *encodingCache {
	capacity := s.cfg.EncodingCacheEntries
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = defaultEncodingCacheEntries
	}
	sess.regMu.Lock()
	defer sess.regMu.Unlock()
	if sess.enc == nil {
		sess.enc = newEncodingCache(capacity)
	}
	return sess.enc
}

// sessionPlaintext encodes a pmul vector at the given level and scale,
// serving repeats from the session's encoding cache. The encoder is
// stateless (read-only FFT tables), so cache misses encode outside any
// lock and concurrent misses at worst duplicate work, never corrupt.
func (s *Server) sessionPlaintext(sess *session, vals []float64, level int, scale float64) (*ckks.Plaintext, error) {
	ec := s.encodingCacheFor(sess)
	if ec == nil {
		return s.encodeVals(vals, level, scale)
	}
	key := encKey(vals, level, scale)
	if pt := ec.lookup(key, vals, level, scale); pt != nil {
		if s.tel != nil {
			s.tel.encHits.Add(1)
		}
		return pt, nil
	}
	pt, err := s.encodeVals(vals, level, scale)
	if err != nil {
		return nil, err
	}
	if s.tel != nil {
		s.tel.encMisses.Add(1)
	}
	ec.insert(key, vals, level, scale, pt)
	return pt, nil
}

func (s *Server) encodeVals(vals []float64, level int, scale float64) (*ckks.Plaintext, error) {
	cv := make([]complex128, len(vals))
	for i, v := range vals {
		cv[i] = complex(v, 0)
	}
	return s.encoder.Encode(cv, level, scale)
}
