package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"bts/internal/ckks"
	"bts/internal/wire"
)

// Client talks to a btsserve daemon. It owns a context mirroring the
// server's parameters (so its wire objects validate on the far side) but
// never sends secret material: only evaluation keys and ciphertexts leave
// the process.
type Client struct {
	base  string
	hc    *http.Client
	ctx   *ckks.Context
	codec *wire.Codec
}

// FetchParams asks the daemon at base (e.g. "http://127.0.0.1:8631") for its
// parameter set and returns the mirrored ckks.Parameters plus the rotation
// amounts bootstrapping requires (nil when the server has it disabled).
func FetchParams(base string) (ckks.Parameters, []int, error) {
	resp, err := http.Get(base + "/v1/params")
	if err != nil {
		return ckks.Parameters{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ckks.Parameters{}, nil, httpError(resp)
	}
	var pr ParamsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return ckks.Parameters{}, nil, fmt.Errorf("serve: decoding params: %w", err)
	}
	p := ckks.Parameters{
		LogN:  pr.LogN,
		Q:     pr.Q,
		P:     pr.P,
		Dnum:  pr.Dnum,
		Scale: pr.Scale,
		H:     pr.H,
		Sigma: pr.Sigma,
	}
	if err := p.Validate(); err != nil {
		return ckks.Parameters{}, nil, fmt.Errorf("serve: server sent invalid parameters: %w", err)
	}
	return p, pr.BootstrapRotations, nil
}

// NewClient returns a client for the daemon at base. ctx must mirror the
// server's parameters (build it from FetchParams).
func NewClient(base string, ctx *ckks.Context) *Client {
	return &Client{
		base:  base,
		hc:    &http.Client{Timeout: 5 * time.Minute},
		ctx:   ctx,
		codec: wire.NewCodec(ctx),
	}
}

// Context returns the client-side context.
func (c *Client) Context() *ckks.Context { return c.ctx }

// httpError turns a non-200 response into an error carrying the server's
// JSON error message when present.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("serve: server returned %s: %s", resp.Status, er.Error)
	}
	return fmt.Errorf("serve: server returned %s", resp.Status)
}

// OpenSession registers a named session with the given evaluation keys; nil
// keys are simply omitted from the upload, independently of each other (a
// rotation-only tenant may pass rlk == nil with a non-nil rtks).
func (c *Client) OpenSession(name string, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) error {
	var body bytes.Buffer
	if rlk != nil {
		if err := c.codec.WriteSwitchingKey(&body, rlk); err != nil {
			return err
		}
	}
	if rtks != nil {
		if err := c.codec.WriteRotationKeySet(&body, rtks); err != nil {
			return err
		}
	}
	resp, err := c.hc.Post(c.base+"/v1/sessions?name="+name, "application/x-bts-wire", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return nil
}

// Do submits a job — a program of ops over the input ciphertexts — to the
// named session and returns the result ciphertext.
func (c *Client) Do(session string, ops []Op, inputs ...*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	header, err := json.Marshal(JobRequest{Session: session, Ops: ops})
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(header)))
	body.Write(lenBuf[:])
	body.Write(header)
	for _, ct := range inputs {
		if err := c.codec.WriteCiphertext(&body, ct); err != nil {
			return nil, err
		}
	}
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/x-bts-wire", &body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return c.codec.ReadCiphertext(resp.Body)
}

// Stats fetches the server's serving statistics.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, httpError(resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Healthz probes the daemon's liveness endpoint.
func (c *Client) Healthz() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return nil
}
