package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"bts/internal/ckks"
	"bts/internal/wire"
)

// ClientConfig tunes the client's per-request deadlines and retry policy.
// The zero value of every field selects the default noted on it.
type ClientConfig struct {
	// RequestTimeout bounds one HTTP attempt of a non-job request (session
	// open, stats, health). Default 1 minute; negative disables.
	RequestTimeout time.Duration
	// JobTimeout bounds one attempt of a job submission, end to end — it is
	// also sent to the server as the job's deadline, so a timed-out attempt
	// releases its server-side queue slot instead of computing into the
	// void. Default 5 minutes (FHE jobs are slow); negative disables.
	JobTimeout time.Duration
	// MaxRetries is how many times a retryable failure is reattempted after
	// the first try (so MaxRetries=3 means up to 4 attempts). Retried are
	// transport errors and typed serving errors whose Retryable flag is set
	// (unavailable, queue_full, store, internal); invalid programs, quota
	// overruns and quarantined sessions fail immediately. Default 3;
	// negative disables retries.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: sleep ~ uniform(0, min(RetryMax, RetryBase<<attempt)) —
	// "full jitter", so a thundering herd of retries decorrelates.
	// Defaults 50ms and 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
}

func (cc *ClientConfig) applyDefaults() {
	if cc.RequestTimeout == 0 {
		cc.RequestTimeout = time.Minute
	}
	if cc.JobTimeout == 0 {
		cc.JobTimeout = 5 * time.Minute
	}
	if cc.MaxRetries == 0 {
		cc.MaxRetries = 3
	} else if cc.MaxRetries < 0 {
		cc.MaxRetries = 0
	}
	if cc.RetryBase <= 0 {
		cc.RetryBase = 50 * time.Millisecond
	}
	if cc.RetryMax <= 0 {
		cc.RetryMax = 2 * time.Second
	}
}

// Client talks to a btsserve daemon. It owns a context mirroring the
// server's parameters (so its wire objects validate on the far side) but
// never sends secret material: only evaluation keys and ciphertexts leave
// the process.
//
// Every request carries a per-attempt context deadline (no blanket
// http.Client.Timeout), and failures the server marks retryable — plus
// transport errors, which mean the response never arrived — are retried
// with exponential backoff and full jitter. Jobs are pure functions of
// their inputs, so a retried job is safe: it either never ran or its result
// was discarded.
type Client struct {
	base  string
	cfg   ClientConfig
	hc    *http.Client
	ctx   *ckks.Context
	codec *wire.Codec

	// wireOut counts POST request payload bytes (per attempt — a retried
	// upload is paid twice on the wire and counted twice); wireIn counts job
	// result envelope bytes. Together they measure the ciphertext traffic a
	// workload moves, the numerator/denominator of the DAG bench's
	// flat-vs-DAG comparison.
	wireOut atomic.Int64
	wireIn  atomic.Int64
}

// WireBytes reports the bytes received in job results and sent in request
// payloads since construction (or the last ResetWireBytes).
func (c *Client) WireBytes() (in, out int64) {
	return c.wireIn.Load(), c.wireOut.Load()
}

// ResetWireBytes zeroes the wire-byte counters.
func (c *Client) ResetWireBytes() {
	c.wireIn.Store(0)
	c.wireOut.Store(0)
}

// countingReader counts bytes read through it into n.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// FetchParams asks the daemon at base (e.g. "http://127.0.0.1:8631") for its
// parameter set and returns the mirrored ckks.Parameters plus the rotation
// amounts bootstrapping requires (nil when the server has it disabled).
func FetchParams(base string) (ckks.Parameters, []int, error) {
	resp, err := http.Get(base + "/v1/params")
	if err != nil {
		return ckks.Parameters{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ckks.Parameters{}, nil, httpError(resp)
	}
	var pr ParamsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return ckks.Parameters{}, nil, fmt.Errorf("serve: decoding params: %w", err)
	}
	p := ckks.Parameters{
		LogN:  pr.LogN,
		Q:     pr.Q,
		P:     pr.P,
		Dnum:  pr.Dnum,
		Scale: pr.Scale,
		H:     pr.H,
		Sigma: pr.Sigma,
	}
	if err := p.Validate(); err != nil {
		return ckks.Parameters{}, nil, fmt.Errorf("serve: server sent invalid parameters: %w", err)
	}
	return p, pr.BootstrapRotations, nil
}

// NewClient returns a client for the daemon at base with the default
// deadlines and retry policy. ctx must mirror the server's parameters
// (build it from FetchParams).
func NewClient(base string, ctx *ckks.Context) *Client {
	return NewClientWithConfig(base, ctx, ClientConfig{})
}

// NewClientWithConfig returns a client with an explicit deadline/retry
// policy.
func NewClientWithConfig(base string, ctx *ckks.Context, cfg ClientConfig) *Client {
	cfg.applyDefaults()
	return &Client{
		base:  base,
		cfg:   cfg,
		hc:    &http.Client{},
		ctx:   ctx,
		codec: wire.NewCodec(ctx),
	}
}

// Context returns the client-side context.
func (c *Client) Context() *ckks.Context { return c.ctx }

// httpError turns a non-200 response into an error. When the body carries
// the server's JSON error envelope, the typed *Error is reconstructed —
// code, retryability and message — so the caller's (and the client's own)
// retry policy sees exactly what the server decided.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		if er.Code != "" {
			return &Error{Code: er.Code, Retryable: er.Retryable,
				Msg: fmt.Sprintf("server returned %s: %s", resp.Status, er.Error)}
		}
		return fmt.Errorf("serve: server returned %s: %s", resp.Status, er.Error)
	}
	return fmt.Errorf("serve: server returned %s", resp.Status)
}

// retryable reports whether an attempt's failure is worth reattempting:
// typed serving errors say so themselves; transport errors (no HTTP
// response at all: connection refused mid-restart, socket killed by a
// daemon crash) are retryable by nature. The caller's own context expiring
// is not — retrying against a spent deadline only burns attempts.
func retryable(err error, transport bool) bool {
	if transport {
		return true
	}
	return IsRetryable(err)
}

// do runs op up to 1+MaxRetries times with full-jitter exponential backoff,
// stopping early on success, a terminal error, or ctx expiring. op reports
// (transportFailure, err); buildBody rebuilds the request body for each
// attempt (bodies are consumed by transmission).
func (c *Client) do(ctx context.Context, attempt func(ctx context.Context) (bool, error)) error {
	var err error
	for try := 0; ; try++ {
		var transport bool
		transport, err = attempt(ctx)
		if err == nil || try >= c.cfg.MaxRetries || !retryable(err, transport) {
			return err
		}
		if ctx != nil && ctx.Err() != nil {
			return err
		}
		backoff := c.cfg.RetryBase << uint(try)
		if backoff > c.cfg.RetryMax || backoff <= 0 {
			backoff = c.cfg.RetryMax
		}
		sleep := time.Duration(rand.Int63n(int64(backoff) + 1))
		if ctx == nil {
			time.Sleep(sleep)
			continue
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return err
		}
	}
}

// attemptCtx derives one attempt's context from the caller's, bounded by
// timeout (<= 0: no per-attempt bound).
func attemptCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, timeout)
}

// post issues one POST attempt with a per-attempt deadline and decodes
// non-200 responses into typed errors. onOK consumes the successful
// response body before it is closed.
func (c *Client) post(ctx context.Context, url, contentType string, body []byte, timeout time.Duration, onOK func(*http.Response) error) (bool, error) {
	actx, cancel := attemptCtx(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", contentType)
	c.wireOut.Add(int64(len(body)))
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, httpError(resp)
	}
	if onOK != nil {
		return false, onOK(resp)
	}
	return false, nil
}

// get issues one GET attempt with a per-attempt deadline.
func (c *Client) get(ctx context.Context, url string, onOK func(*http.Response) error) (bool, error) {
	actx, cancel := attemptCtx(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, httpError(resp)
	}
	if onOK != nil {
		return false, onOK(resp)
	}
	return false, nil
}

// OpenSession registers a named session with the given evaluation keys; nil
// keys are simply omitted from the upload, independently of each other (a
// rotation-only tenant may pass rlk == nil with a non-nil rtks).
func (c *Client) OpenSession(name string, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) error {
	return c.OpenSessionContext(context.Background(), name, rlk, rtks)
}

// OpenSessionContext is OpenSession bounded by the caller's context.
// Retryable failures (a draining daemon, a store hiccup) are retried; the
// upload body is rebuilt per attempt.
func (c *Client) OpenSessionContext(ctx context.Context, name string, rlk *ckks.SwitchingKey, rtks *ckks.RotationKeySet) error {
	var body bytes.Buffer
	if rlk != nil {
		if err := c.codec.WriteSwitchingKey(&body, rlk); err != nil {
			return err
		}
	}
	if rtks != nil {
		if err := c.codec.WriteRotationKeySet(&body, rtks); err != nil {
			return err
		}
	}
	payload := body.Bytes()
	return c.do(ctx, func(ctx context.Context) (bool, error) {
		return c.post(ctx, c.base+"/v1/sessions?name="+name, "application/x-bts-wire", payload, c.cfg.RequestTimeout, nil)
	})
}

// Do submits a job — a program of ops over the input ciphertexts — to the
// named session and returns the result ciphertext. Equivalent to DoContext
// with a background context: the per-attempt JobTimeout still applies.
func (c *Client) Do(session string, ops []Op, inputs ...*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	return c.DoContext(context.Background(), session, ops, inputs...)
}

// DoContext submits a job bounded by the caller's context. Each attempt
// carries its own JobTimeout deadline — also shipped to the server as the
// job's deadline, so a timed-out attempt is cancelled server-side rather
// than computing into the void — and failures the server marks retryable
// (plus transport errors: the daemon restarted mid-request) are retried
// with backoff. The serialized request is built once and replayed per
// attempt.
func (c *Client) DoContext(ctx context.Context, session string, ops []Op, inputs ...*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	jr := JobRequest{Session: session, Ops: ops}
	if c.cfg.JobTimeout > 0 {
		jr.TimeoutMs = c.cfg.JobTimeout.Milliseconds()
	}
	header, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(header)))
	body.Write(lenBuf[:])
	body.Write(header)
	for _, ct := range inputs {
		if err := c.codec.WriteCiphertext(&body, ct); err != nil {
			return nil, err
		}
	}
	payload := body.Bytes()
	var result *ckks.Ciphertext
	err = c.do(ctx, func(ctx context.Context) (bool, error) {
		return c.post(ctx, c.base+"/v1/jobs", "application/x-bts-wire", payload, c.cfg.JobTimeout, func(resp *http.Response) error {
			ct, err := c.codec.ReadCiphertext(&countingReader{r: resp.Body, n: &c.wireIn})
			if err != nil {
				return err
			}
			result = ct
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// DoDAG submits a register-form DAG job: inputs are bound, in order, to the
// registers named by inputNames before any op runs, and the values of the
// outputs registers come back as the result slice (len(outputs)
// ciphertexts, in order — possibly none: a job may leave everything
// resident server-side for later jobs). Ops address per-session registers
// via Ra/Rb/Out; see the Op and Server.SubmitDAG docs for the model. The
// request is replayed per retryable attempt like DoContext; commits a
// partially-failed attempt made are overwritten idempotently by the retry
// (single-assignment programs write each register to the same value).
func (c *Client) DoDAG(ctx context.Context, session string, inputNames []string, ops []Op, outputs []string, inputs ...*ckks.Ciphertext) ([]*ckks.Ciphertext, error) {
	jr := JobRequest{Session: session, Ops: ops, Inputs: inputNames, Outputs: outputs}
	if c.cfg.JobTimeout > 0 {
		jr.TimeoutMs = c.cfg.JobTimeout.Milliseconds()
	}
	header, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(header)))
	body.Write(lenBuf[:])
	body.Write(header)
	for _, ct := range inputs {
		if err := c.codec.WriteCiphertext(&body, ct); err != nil {
			return nil, err
		}
	}
	payload := body.Bytes()
	var results []*ckks.Ciphertext
	err = c.do(ctx, func(ctx context.Context) (bool, error) {
		results = nil
		return c.post(ctx, c.base+"/v1/jobs", "application/x-bts-wire", payload, c.cfg.JobTimeout, func(resp *http.Response) error {
			cr := &countingReader{r: resp.Body, n: &c.wireIn}
			for range outputs {
				ct, err := c.codec.ReadCiphertext(cr)
				if err != nil {
					return err
				}
				results = append(results, ct)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Stats fetches the server's serving statistics.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do(context.Background(), func(ctx context.Context) (bool, error) {
		return c.get(ctx, c.base+"/v1/stats", func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&st)
		})
	})
	return st, err
}

// Healthz probes the daemon's liveness endpoint, without retries — health
// checks sample, they don't persist.
func (c *Client) Healthz() error {
	_, err := c.get(context.Background(), c.base+"/healthz", nil)
	return err
}
