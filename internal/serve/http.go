package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"time"

	"bts/internal/ckks"
	"bts/internal/wire"
)

// The HTTP API. Ciphertexts and keys travel in the internal/wire envelope
// format; job programs and statistics travel as JSON.
//
//	GET  /healthz             liveness probe
//	GET  /v1/params           the server's CKKS parameter set (JSON), so a
//	                          client can mirror the context bit-exactly
//	POST /v1/sessions?name=N  open a session; body is an optional wire
//	                          SwitchingKey (relinearization key) followed by
//	                          an optional wire RotationKeySet
//	POST /v1/jobs             run a job; body is a length-prefixed JSON
//	                          JobRequest followed by the input ciphertext
//	                          envelopes; the response body is the result
//	                          ciphertext envelope
//	GET  /v1/stats            per-session serving statistics (JSON)
//	GET  /v1/traces           retained slow-job trace dumps, newest first
//	                          (JSON; only with Config.SlowJob set)
//	GET  /metrics             Prometheus text exposition (unless
//	                          Config.DisableMetrics)
//	GET  /debug/vars          expvar JSON (unless Config.DisableMetrics)
//	GET  /debug/pprof/...     net/http/pprof (only with Config.Pprof)
const (
	// maxJobHeaderBytes bounds the length-prefixed JSON program block of a
	// job request.
	maxJobHeaderBytes = 1 << 20
	// maxJobInputs bounds the ciphertext count of one job request.
	maxJobInputs = 64
)

// ParamsResponse mirrors ckks.Parameters plus serving metadata; it is
// everything a client needs to build a bit-identical context.
type ParamsResponse struct {
	LogN               int      `json:"log_n"`
	Q                  []uint64 `json:"q"`
	P                  []uint64 `json:"p"`
	Dnum               int      `json:"dnum"`
	Scale              float64  `json:"scale"`
	H                  int      `json:"h"`
	Sigma              float64  `json:"sigma"`
	WireVersion        int      `json:"wire_version"`
	BootstrapRotations []int    `json:"bootstrap_rotations,omitempty"`
}

// JobRequest is the JSON program block preceding the input ciphertexts in a
// job request body. TimeoutMs, when positive, sets the job's deadline
// (overriding Config.DefaultJobTimeout); expiry fails the job with a typed
// "deadline" error without executing the remaining ops.
//
// Inputs and Outputs select the register-form DAG route (see SubmitDAG):
// Inputs names the registers bound, in order, to the uploaded ciphertext
// envelopes; Outputs the registers whose values come back in the response
// (one envelope each, in order, with X-BTS-Outputs carrying the count).
// Their absence — and the absence of register addressing in every op —
// selects the legacy single-result route.
type JobRequest struct {
	Session   string   `json:"session"`
	Ops       []Op     `json:"ops"`
	TimeoutMs int64    `json:"timeout_ms,omitempty"`
	Inputs    []string `json:"inputs,omitempty"`
	Outputs   []string `json:"outputs,omitempty"`
}

// errorResponse is the JSON error body. Code and Retryable carry the typed
// serving error across the socket, so the client retries on taxonomy
// instead of parsing messages or guessing from HTTP statuses.
type errorResponse struct {
	Error     string  `json:"error"`
	Code      ErrCode `json:"code,omitempty"`
	Retryable bool    `json:"retryable,omitempty"`
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/params", s.handleParams)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/stats", s.handleStats)
	if s.tel != nil {
		if s.tel.reg != nil {
			mux.Handle("/metrics", s.tel.reg.Handler())
			mux.Handle("/debug/vars", expvar.Handler())
		}
		if s.tel.tracer != nil {
			mux.HandleFunc("/v1/traces", s.handleTraces)
		}
	}
	if s.cfg.Pprof {
		// Mount the handlers explicitly instead of relying on the package's
		// DefaultServeMux side effect, so profiling is exposed only when
		// asked for.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, s.SlowJobDumps())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	if code := Code(err); code != "" {
		resp.Code = code
		resp.Retryable = IsRetryable(err)
	} else if status == http.StatusServiceUnavailable {
		resp.Code, resp.Retryable = CodeUnavailable, true
	} else {
		resp.Code = CodeInvalid
	}
	writeJSON(w, status, resp)
}

// writeServeError renders a typed serving error with its canonical HTTP
// status (see httpStatus).
func writeServeError(w http.ResponseWriter, err error) {
	writeError(w, httpStatus(err), err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s not allowed", r.Method))
		return
	}
	p := s.ctx.Params
	writeJSON(w, http.StatusOK, ParamsResponse{
		LogN:               p.LogN,
		Q:                  p.Q,
		P:                  p.P,
		Dnum:               p.Dnum,
		Scale:              p.Scale,
		H:                  p.H,
		Sigma:              p.Sigma,
		WireVersion:        1,
		BootstrapRotations: s.bootRotations,
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s not allowed", r.Method))
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: missing ?name="))
		return
	}
	// The body is a stream of key envelopes in any order, each kind at most
	// once; an empty body opens a keyless (Add/Sub-only) session.
	var (
		rlk  *ckks.SwitchingKey
		rtks *ckks.RotationKeySet
	)
	body := bufio.NewReader(r.Body)
	for {
		t, err := wire.PeekType(body)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		switch t {
		case wire.TypeSwitchingKey:
			if rlk != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("serve: duplicate relinearization key"))
				return
			}
			if rlk, err = s.codec.ReadSwitchingKey(body); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		case wire.TypeRotationKeySet:
			if rtks != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("serve: duplicate rotation key set"))
				return
			}
			if rtks, err = s.codec.ReadRotationKeySet(body); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unexpected %s envelope in session upload", t))
			return
		}
	}
	if err := s.OpenSession(name, rlk, rtks); err != nil {
		writeServeError(w, err)
		return
	}
	sess, _ := s.session(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"session":        name,
		"relinearizable": rlk != nil,
		"rotations":      rtks != nil,
		"bootstrappable": sess != nil && sess.bt != nil,
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s not allowed", r.Method))
		return
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.Body, lenBuf[:]); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading job header length: %w", err))
		return
	}
	headerLen := binary.LittleEndian.Uint32(lenBuf[:])
	if headerLen == 0 || headerLen > maxJobHeaderBytes {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: job header of %d bytes outside (0,%d]", headerLen, maxJobHeaderBytes))
		return
	}
	headerBytes := make([]byte, headerLen)
	if _, err := io.ReadFull(r.Body, headerBytes); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading job header: %w", err))
		return
	}
	var req JobRequest
	if err := json.Unmarshal(headerBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding job header: %w", err))
		return
	}

	// Decode the input ciphertexts (pooled) until EOF.
	var inputs []*ckks.Ciphertext
	release := func() {
		for _, ct := range inputs {
			s.ctx.PutCiphertext(ct)
		}
	}
	for {
		ct, err := s.codec.ReadCiphertext(r.Body)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			release()
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(inputs) >= maxJobInputs {
			release()
			s.ctx.PutCiphertext(ct)
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: more than %d input ciphertexts", maxJobInputs))
			return
		}
		inputs = append(inputs, ct)
	}

	// The request context rides into the scheduler: a client disconnect
	// cancels the job (never executed if still queued), and a request-scoped
	// timeout becomes the job's deadline.
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	dag := len(req.Inputs) > 0 || len(req.Outputs) > 0
	if !dag {
		for _, op := range req.Ops {
			if op.registerForm() {
				dag = true
				break
			}
		}
	}
	if dag {
		outs, err := s.SubmitDAG(ctx, req.Session, req.Ops, req.Inputs, req.Outputs, inputs)
		release()
		if err != nil {
			writeServeError(w, err)
			return
		}
		defer func() {
			for _, ct := range outs {
				s.ctx.PutCiphertext(ct)
			}
		}()
		w.Header().Set("Content-Type", "application/x-bts-wire")
		w.Header().Set("X-BTS-Latency-Us", fmt.Sprintf("%d", time.Since(start).Microseconds()))
		w.Header().Set("X-BTS-Outputs", fmt.Sprintf("%d", len(outs)))
		for _, ct := range outs {
			if err := s.codec.WriteCiphertext(w, ct); err != nil {
				// Headers are gone; nothing to do but drop the connection.
				return
			}
		}
		return
	}
	result, err := s.SubmitContext(ctx, req.Session, req.Ops, inputs)
	release()
	if err != nil {
		writeServeError(w, err)
		return
	}
	defer s.ctx.PutCiphertext(result)

	w.Header().Set("Content-Type", "application/x-bts-wire")
	w.Header().Set("X-BTS-Latency-Us", fmt.Sprintf("%d", time.Since(start).Microseconds()))
	w.Header().Set("X-BTS-Level", fmt.Sprintf("%d", result.Level))
	w.Header().Set("X-BTS-Log-Scale", fmt.Sprintf("%.3f", math.Log2(result.Scale)))
	if err := s.codec.WriteCiphertext(w, result); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
