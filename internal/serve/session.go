package serve

import (
	"math"
	"sort"
	"sync"
	"time"

	"bts/internal/ckks"
)

var errServerClosed = &Error{Code: CodeUnavailable, Retryable: true, Msg: "server closed"}

// session is one tenant: a name, the evaluator built from the tenant's
// uploaded evaluation keys, an optional bootstrapper, a running noise floor
// (when telemetry is on), and statistics.
//
// With the durable store configured, the evaluator and bootstrapper are
// rebuildable state: eviction under key-memory pressure drops them (the
// decoded keys are what costs gigabytes; the wire blobs stay on disk) and
// the scheduler rehydrates them on the session's next batch. A session
// reloaded after a daemon restart starts in the evicted state and hydrates
// lazily the same way. Everything else — statistics, the noise floor, the
// quarantine state — is cheap and lives for the session's whole life.
type session struct {
	name    string
	created time.Time
	noise   *ckks.NoiseFloor // nil when telemetry is disabled
	stats   sessionStats

	// hydMu serializes rehydration (store read + key decode, and the
	// register reload of hydrateRegisters) so concurrent batches of an
	// evicted session load its state exactly once. Never held together
	// with mu.
	hydMu sync.Mutex

	// regMu guards the ciphertext registers — the DAG job model's
	// session-resident values (see registers.go) — and the lazily built
	// encoding cache. Leaf lock: nothing else is acquired under it.
	regMu      sync.Mutex
	regs       map[string]*register
	regBytes   int64
	regsLoaded bool // the in-memory set is complete (nothing spilled-only)
	enc        *encodingCache

	// mu guards the rebuildable runtime state and the fault ledger. It is
	// held only for quick field access, never across I/O or key decoding.
	mu             sync.Mutex
	eval           *ckks.Evaluator // nil while evicted or not yet hydrated
	bt             *ckks.Bootstrapper
	keyBytes       int64           // decoded key-set footprint (0 = keyless session)
	onDisk         bool            // a durable manifest backs this session
	bootstrappable bool            // sticky across eviction
	opsBase        ckks.OpCounters // op mix accumulated before the last eviction
	quarantined    bool
	faults         int // consecutive panicking jobs
}

// runtime returns the session's evaluator and bootstrapper (nil, nil while
// evicted).
func (sess *session) runtime() (*ckks.Evaluator, *ckks.Bootstrapper) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.eval, sess.bt
}

// counters returns the session's lifetime op mix: the tally folded in at
// evictions plus the current evaluator's live counters.
func (sess *session) counters() ckks.OpCounters {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	c := sess.opsBase
	if sess.eval != nil {
		c = c.Add(sess.eval.Counters())
	}
	return c
}

// keyFootprint reports the decoded key-set byte footprint.
func (sess *session) keyFootprint() int64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.keyBytes
}

// idle reports whether no job of the session is queued or in flight — the
// eviction-safety predicate.
func (sess *session) idle() bool {
	sess.stats.mu.Lock()
	defer sess.stats.mu.Unlock()
	return sess.stats.queueDepth == 0
}

// evict drops the decoded keys (evaluator + bootstrapper), folding the
// evaluator's op tally into the base so counters stay monotonic. Jobs that
// already captured the evaluator pointer keep using it safely — the key
// material is immutable — but new batches will rehydrate from disk.
func (sess *session) evict() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.eval == nil {
		return
	}
	sess.opsBase = sess.opsBase.Add(sess.eval.Counters())
	sess.eval = nil
	sess.bt = nil
}

// noteFault records a panicking job; after limit consecutive faults the
// session is quarantined (limit <= 0 disables). Reports whether the
// session is now quarantined.
func (sess *session) noteFault(limit int) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.faults++
	if limit > 0 && sess.faults >= limit {
		sess.quarantined = true
	}
	return sess.quarantined
}

// noteSuccess resets the consecutive-fault counter.
func (sess *session) noteSuccess() {
	sess.mu.Lock()
	sess.faults = 0
	sess.mu.Unlock()
}

// isQuarantined reports the quarantine flag.
func (sess *session) isQuarantined() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.quarantined
}

// latSamples is the size of the per-session latency reservoir: a ring buffer
// of the most recent latSamples job latencies. Until the buffer wraps
// (latN < latSamples) percentiles cover every job ever completed; after
// wrapping they cover a sliding window of the last latSamples jobs, so a
// long-lived session reports recent behavior, not its lifetime average. The
// snapshot exposes both the window capacity (lat_window) and how many
// samples currently back the percentiles (lat_samples).
const latSamples = 4096

// sessionStats tracks per-tenant serving statistics. queueDepth counts jobs
// submitted but not yet completed (queued + in flight).
type sessionStats struct {
	mu         sync.Mutex
	jobs       uint64
	ops        uint64
	errors     uint64
	batches    uint64
	maxBatch   int
	queueDepth int
	lat        [latSamples]float64 // milliseconds, ring buffer
	latN       uint64              // total samples ever recorded
}

func (st *sessionStats) enqueued() {
	st.mu.Lock()
	st.queueDepth++
	st.mu.Unlock()
}

func (st *sessionStats) dequeued() {
	st.mu.Lock()
	st.queueDepth--
	st.mu.Unlock()
}

func (st *sessionStats) batchFormed(size int) {
	st.mu.Lock()
	st.batches++
	if size > st.maxBatch {
		st.maxBatch = size
	}
	st.mu.Unlock()
}

func (st *sessionStats) completed(latency time.Duration, ops int, err error) {
	st.mu.Lock()
	st.queueDepth--
	st.jobs++
	if err != nil {
		st.errors++
	} else {
		st.ops += uint64(ops)
	}
	st.lat[st.latN%latSamples] = latency.Seconds() * 1e3
	st.latN++
	st.mu.Unlock()
}

// SessionStats is the JSON snapshot of one session's counters. Latency
// percentiles cover the most recent jobs — LatSamples of them, within a
// sliding window of capacity LatWindow — and are measured
// submit-to-completion, so they include queueing delay. OpMix is the
// evaluator's primitive-op tally (the same counters /metrics exports as
// bts_session_ops_total); NoiseFloorBits is the minimum noise margin
// observed on the session, omitted until a job has run (or when telemetry
// is disabled). Resident reports whether the session's decoded keys are in
// memory right now (false after eviction or before a restarted daemon's
// first use); Durable whether the session survives a restart.
type SessionStats struct {
	Session        string   `json:"session"`
	Jobs           uint64   `json:"jobs"`
	Ops            uint64   `json:"ops"`
	Errors         uint64   `json:"errors"`
	QueueDepth     int      `json:"queue_depth"`
	Batches        uint64   `json:"batches"`
	MaxBatch       int      `json:"max_batch"`
	Bootstrappable bool     `json:"bootstrappable"`
	Resident       bool     `json:"resident"`
	Durable        bool     `json:"durable"`
	Quarantined    bool     `json:"quarantined"`
	KeyBytes       int64    `json:"key_bytes"`
	Registers      int      `json:"registers"`
	RegisterBytes  int64    `json:"register_bytes"`
	LatWindow      int      `json:"lat_window"`
	LatSamples     int      `json:"lat_samples"`
	P50Ms          float64  `json:"p50_ms"`
	P90Ms          float64  `json:"p90_ms"`
	P99Ms          float64  `json:"p99_ms"`
	MaxMs          float64  `json:"max_ms"`
	OpMix          OpMix    `json:"op_mix"`
	NoiseFloorBits *float64 `json:"noise_floor_bits,omitempty"`
}

// OpMix is the session evaluator's measured primitive-op mix
// (ckks.OpCounters) plus the derived evk-consuming total.
type OpMix struct {
	Mult           int64 `json:"mult"`
	FullRot        int64 `json:"full_rot"`
	HoistedRot     int64 `json:"hoisted_rot"`
	Decompose      int64 `json:"decompose"`
	ModDown        int64 `json:"mod_down"`
	Rescale        int64 `json:"rescale"`
	PMult          int64 `json:"pmult"`
	ModRaise       int64 `json:"mod_raise"`
	KeySwitchTotal int64 `json:"key_switch_total"`
}

func opMixOf(c ckks.OpCounters) OpMix {
	return OpMix{
		Mult:           c.Mult,
		FullRot:        c.FullRot,
		HoistedRot:     c.HoistedRot,
		Decompose:      c.Decompose,
		ModDown:        c.ModDown,
		Rescale:        c.Rescale,
		PMult:          c.PMult,
		ModRaise:       c.ModRaise,
		KeySwitchTotal: c.KeySwitchTotal(),
	}
}

// Stats is the JSON snapshot of the whole server.
type Stats struct {
	UptimeSec float64        `json:"uptime_sec"`
	Workers   int            `json:"workers"`
	Draining  bool           `json:"draining"`
	Sessions  []SessionStats `json:"sessions"`
}

// snapshot captures the session's counters and computes percentiles.
func (sess *session) snapshot() SessionStats {
	st := &sess.stats
	st.mu.Lock()
	out := SessionStats{
		Session:    sess.name,
		Jobs:       st.jobs,
		Ops:        st.ops,
		Errors:     st.errors,
		QueueDepth: st.queueDepth,
		Batches:    st.batches,
		MaxBatch:   st.maxBatch,
		LatWindow:  latSamples,
	}
	// Clamp on the uint64 side: converting latN to int first would go
	// negative once the counter passes the int range (and on 32-bit hosts a
	// wrapped buffer already overflows int32), slicing st.lat out of bounds.
	n := latSamples
	if st.latN < latSamples {
		n = int(st.latN)
	}
	out.LatSamples = n
	samples := append([]float64(nil), st.lat[:n]...)
	st.mu.Unlock()

	sess.mu.Lock()
	out.Bootstrappable = sess.bootstrappable
	out.Resident = sess.eval != nil
	out.Durable = sess.onDisk
	out.Quarantined = sess.quarantined
	out.KeyBytes = sess.keyBytes
	mix := sess.opsBase
	if sess.eval != nil {
		mix = mix.Add(sess.eval.Counters())
	}
	sess.mu.Unlock()

	out.Registers, out.RegisterBytes = sess.registerStats()

	out.OpMix = opMixOf(mix)
	if sess.noise != nil {
		if bits := sess.noise.MinBits(); !math.IsInf(bits, 1) {
			out.NoiseFloorBits = &bits
		}
	}

	if len(samples) > 0 {
		sort.Float64s(samples)
		out.P50Ms = Percentile(samples, 50)
		out.P90Ms = Percentile(samples, 90)
		out.P99Ms = Percentile(samples, 99)
		out.MaxMs = samples[len(samples)-1]
	}
	return out
}

// Percentile reads the p-th percentile (nearest-rank) from sorted samples —
// the single definition shared by server stats and the load generator, so
// their reported percentiles stay comparable.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Stats snapshots every session, sorted by name for stable output.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].name < sessions[j].name })
	out := Stats{
		UptimeSec: s.Uptime().Seconds(),
		Workers:   s.ctx.Workers(),
		Draining:  draining,
	}
	for _, sess := range sessions {
		out.Sessions = append(out.Sessions, sess.snapshot())
	}
	return out
}
