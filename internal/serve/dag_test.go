package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/wire"
)

// dagRot is shorthand for a register-form rotation op.
func dagRot(ra, out string, by int) Op {
	return Op{Kind: OpRotate, Ra: ra, Out: out, By: by}
}

// dagAdd is shorthand for a register-form addition op.
func dagAdd(ra, rb, out string) Op {
	return Op{Kind: OpAdd, Ra: ra, Rb: rb, Out: out}
}

// TestDAGValidation drives SubmitDAG with malformed programs: every case
// must be rejected before execution with a terminal CodeBadJob, and the
// message must name the offending construct.
func TestDAGValidation(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 700, []int{1, 2})
	if err := srv.OpenSession("a", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	cl2 := newClientSide(t, params, 710, []int{1})
	if err := srv.OpenSession("b", cl2.rlk, cl2.rtks); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	x := encryptConst(t, cl, params, 0.5)

	// Seed $x in session a so operand resolution has something real to hit.
	if _, err := srv.SubmitDAG(ctx, "a", nil, []string{"$x"}, nil, []*ckks.Ciphertext{x}); err != nil {
		t.Fatalf("upload-only DAG job: %v", err)
	}

	cases := []struct {
		name       string
		ops        []Op
		inputNames []string
		outputs    []string
		inputs     []*ckks.Ciphertext
		want       string
	}{
		{"cycle", []Op{dagRot("$q", "$p", 1), dagRot("$p", "$q", 1)}, nil, nil, nil, "cycle"},
		{"dangling read", []Op{dagRot("$ghost", "$o", 1)}, nil, nil, nil, "does not exist"},
		{"invalid out name", []Op{dagRot("$x", "nodollar", 1)}, nil, nil, nil, "invalid result register"},
		{"roth rejected", []Op{{Kind: OpRotateHoisted, Ra: "$x", Out: "$o"}}, nil, nil, nil, "no register form"},
		{"mixed addressing", []Op{{Kind: OpRotate, Ra: "$x", Out: "$o", By: 1, A: 1}}, nil, nil, nil, "slot-form"},
		{"double write", []Op{dagRot("$x", "$o", 1), dagRot("$x", "$o", 2)}, nil, nil, nil, "single assignment"},
		{"shadowed input", []Op{dagRot("$in", "$in", 1)}, []string{"$in"}, nil, []*ckks.Ciphertext{x}, "both an input binding and an op result"},
		{"pmul without vals", []Op{{Kind: OpMulPlain, Ra: "$x", Out: "$o"}}, nil, nil, nil, "without a plaintext vector"},
		{"vals on rot", []Op{{Kind: OpRotate, Ra: "$x", Out: "$o", By: 1, Vals: []float64{1}}}, nil, nil, nil, "non-pmul"},
		{"missing ra", []Op{{Kind: OpRotate, Out: "$o", By: 1}}, nil, nil, nil, "missing operand register"},
		{"missing rb", []Op{{Kind: OpAdd, Ra: "$x", Out: "$o"}}, nil, nil, nil, "second operand register"},
		{"rb on unary", []Op{{Kind: OpRotate, Ra: "$x", Rb: "$x", Out: "$o", By: 1}}, nil, nil, nil, "no second operand"},
		{"empty job", nil, nil, nil, nil, "empty DAG"},
		{"binding count mismatch", nil, []string{"$a1", "$a2"}, nil, []*ckks.Ciphertext{x}, "input bindings"},
		{"dangling output", []Op{dagRot("$x", "$o", 1)}, nil, []string{"$nope"}, nil, "does not exist"},
		{"duplicate output", []Op{dagRot("$x", "$o", 1)}, nil, []string{"$o", "$o"}, nil, "requested twice"},
	}
	for _, tc := range cases {
		_, err := srv.SubmitDAG(ctx, "a", tc.ops, tc.inputNames, tc.outputs, tc.inputs)
		if err == nil {
			t.Fatalf("%s: accepted, want CodeBadJob", tc.name)
		}
		if Code(err) != CodeBadJob {
			t.Fatalf("%s: code %q, want %q (%v)", tc.name, Code(err), CodeBadJob, err)
		}
		if IsRetryable(err) {
			t.Fatalf("%s: bad job marked retryable: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Registers are session-scoped: session b cannot read a's $x.
	if _, err := srv.SubmitDAG(ctx, "b", []Op{dagRot("$x", "$o", 1)}, nil, nil, nil); Code(err) != CodeBadJob {
		t.Fatalf("cross-session register read: %v, want CodeBadJob", err)
	}

	// The legacy slot path refuses register-form ops instead of guessing.
	_, err = srv.Submit("a", []Op{{Kind: OpAdd, Ra: "$x", Rb: "$x", Out: "$o"}}, []*ckks.Ciphertext{x})
	if Code(err) != CodeBadJob || !strings.Contains(err.Error(), "register addressing") {
		t.Fatalf("register op via Submit: %v, want CodeBadJob about register addressing", err)
	}
}

// TestDAGComputeAndPersist runs the full HTTP round trip: one request
// uploads $x, a later request computes over the persisted register without
// re-uploading it, and the hot pmul encoding is served from the session
// cache on repeat.
func TestDAGComputeAndPersist(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := newClientSide(t, params, 720, []int{1, 2})
	api := NewClient(ts.URL, cl.ctx)
	if err := api.OpenSession("t", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}

	slots := params.Slots()
	a := make([]complex128, slots)
	for i := range a {
		a[i] = complex(float64(i%5)/10, 0)
	}
	pt, _ := cl.encoder.Encode(a, params.MaxLevel(), params.Scale)
	ct, err := cl.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	outs, err := api.DoDAG(ctx, "t", []string{"$x"}, nil, nil, ct)
	if err != nil {
		t.Fatalf("upload DAG job: %v", err)
	}
	if len(outs) != 0 {
		t.Fatalf("upload-only job returned %d outputs, want 0", len(outs))
	}

	// The compute request carries no ciphertexts at all: it reads the
	// persisted $x, fans two rotations (auto-hoisted), adds, and scales by a
	// plaintext half.
	ops := []Op{
		dagRot("$x", "$r1", 1),
		dagRot("$x", "$r2", 2),
		dagAdd("$r1", "$r2", "$s"),
		{Kind: OpMulPlain, Ra: "$s", Out: "$y", Vals: []float64{0.5}},
	}
	hoistBefore := srv.tel.hoistShared.Load()
	outs, err = api.DoDAG(ctx, "t", nil, ops, []string{"$y"})
	if err != nil {
		t.Fatalf("compute DAG job: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("compute job returned %d outputs, want 1", len(outs))
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(outs[0]))
	want := make([]complex128, slots)
	for i := range want {
		want[i] = (a[(i+1)%slots] + a[(i+2)%slots]) * 0.5
	}
	if e := maxAbsErr(got, want); e > 1e-4 {
		t.Fatalf("DAG result error %g", e)
	}
	if srv.tel.hoistShared.Load() <= hoistBefore {
		t.Fatal("same-register rotation fan did not share a decomposition")
	}

	// All five registers stay resident server-side.
	ss := srv.Stats().Sessions[0]
	if ss.Registers != 5 || ss.RegisterBytes <= 0 {
		t.Fatalf("session holds %d registers (%d bytes), want 5 resident", ss.Registers, ss.RegisterBytes)
	}

	// Re-running the same program hits the session's encoding cache for the
	// pmul plaintext and overwrites the registers in place.
	encHitsBefore := srv.tel.encHits.Load()
	outs, err = api.DoDAG(ctx, "t", nil, ops, []string{"$y"})
	if err != nil {
		t.Fatalf("repeat DAG job: %v", err)
	}
	got = cl.encoder.Decode(cl.dec.DecryptNew(outs[0]))
	if e := maxAbsErr(got, want); e > 1e-4 {
		t.Fatalf("repeat DAG result error %g", e)
	}
	if srv.tel.encHits.Load() <= encHitsBefore {
		t.Fatal("repeated pmul did not hit the encoding cache")
	}
	if ss := srv.Stats().Sessions[0]; ss.Registers != 5 {
		t.Fatalf("register overwrite grew the set to %d, want 5", ss.Registers)
	}

	in, out := api.WireBytes()
	if in <= 0 || out <= 0 {
		t.Fatalf("wire byte counters in=%d out=%d, want both positive", in, out)
	}
}

// TestDAGFlatEquivalence pins the hoisting refactor's core promise: a
// register-form rotation fan and the legacy roth sugar produce bit-identical
// ciphertexts, because both lower to the same shared-decomposition plan.
func TestDAGFlatEquivalence(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 730, []int{1, 2})
	if err := srv.OpenSession("a", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}

	slots := params.Slots()
	a := make([]complex128, slots)
	for i := range a {
		a[i] = complex(float64(i%9)/9-0.5, 0)
	}
	pt, _ := cl.encoder.Encode(a, params.MaxLevel(), params.Scale)
	ct, err := cl.enc.EncryptNew(pt)
	if err != nil {
		t.Fatal(err)
	}

	// Legacy wire form: roth fans slots 1,2 off the input, then adds them.
	flat, err := srv.Submit("a", []Op{
		{Kind: OpRotateHoisted, A: 0, Bys: []int{1, 2}},
		{Kind: OpAdd, A: 1, B: 2},
	}, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatalf("flat job: %v", err)
	}

	// Register form of the same computation, same input ciphertext.
	dagOuts, err := srv.SubmitDAG(context.Background(), "a", []Op{
		dagRot("$x", "$r1", 1),
		dagRot("$x", "$r2", 2),
		dagAdd("$r1", "$r2", "$y"),
	}, []string{"$x"}, []string{"$y"}, []*ckks.Ciphertext{ct})
	if err != nil {
		t.Fatalf("DAG job: %v", err)
	}

	codec := wire.NewCodec(cl.ctx)
	fb, err := codec.MarshalCiphertext(flat)
	if err != nil {
		t.Fatal(err)
	}
	db, err := codec.MarshalCiphertext(dagOuts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, db) {
		t.Fatal("hoisted DAG output differs from the flat roth reference")
	}
}

// TestDAGCancelMidJob cancels a three-stage chain while its middle node is
// stalled on an armed delay: downstream nodes never execute, but the stage
// that already committed stays committed — partial progress a retry can
// resume from.
func TestDAGCancelMidJob(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 740, []int{1})
	if err := srv.OpenSession("a", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	x := encryptConst(t, cl, params, 0.25)

	defer faultinject.Reset()
	// Skip the first node ($a commits), stall the second for 300ms — the
	// cancel below lands squarely inside that window.
	faultinject.Arm("serve.op.exec", faultinject.Spec{
		Mode: faultinject.ModeDelay, Delay: 300 * time.Millisecond, Skip: 1, Count: 1,
	})
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	_, err = srv.SubmitDAG(cctx, "a", []Op{
		dagRot("$x", "$a", 1),
		dagRot("$a", "$b", 1),
		dagAdd("$b", "$b", "$c"),
	}, []string{"$x"}, []string{"$c"}, []*ckks.Ciphertext{x})
	if Code(err) != CodeCanceled {
		t.Fatalf("canceled DAG job: %v, want CodeCanceled", err)
	}
	faultinject.Reset()

	// $a committed before the stall and survives the cancellation.
	ctx := context.Background()
	outs, err := srv.SubmitDAG(ctx, "a", []Op{dagAdd("$a", "$a", "$chk")}, nil, []string{"$chk"}, nil)
	if err != nil {
		t.Fatalf("reading committed upstream register: %v", err)
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(outs[0]))
	if r := real(got[0]); r < 0.49 || r > 0.51 {
		t.Fatalf("$a + $a = %g, want 0.5", r)
	}
	// The stalled node and its dependent never committed.
	for _, reg := range []string{"$b", "$c"} {
		_, err := srv.SubmitDAG(ctx, "a", []Op{dagAdd(reg, reg, "$chk2")}, nil, nil, nil)
		if Code(err) != CodeBadJob {
			t.Fatalf("read of uncommitted %s: %v, want CodeBadJob", reg, err)
		}
	}
}

// TestDAGFaultPropagation injects a one-shot execution fault into the middle
// of a chain: the job fails with a retryable internal error, the faulted
// node's dependents are skipped, and upstream commits are kept.
func TestDAGFaultPropagation(t *testing.T) {
	params := testParams(t)
	srv, err := New(Config{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientSide(t, params, 750, []int{1})
	if err := srv.OpenSession("a", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	x := encryptConst(t, cl, params, 0.25)

	defer faultinject.Reset()
	faultinject.Arm("serve.op.exec", faultinject.Spec{
		Mode: faultinject.ModeError, Skip: 1, Count: 1,
	})
	_, err = srv.SubmitDAG(context.Background(), "a", []Op{
		dagRot("$x", "$a", 1),
		dagRot("$a", "$b", 1),
		dagAdd("$b", "$a", "$c"),
	}, []string{"$x"}, []string{"$c"}, []*ckks.Ciphertext{x})
	if Code(err) != CodeInternal {
		t.Fatalf("faulted DAG job: %v, want CodeInternal", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("injected fault not retryable: %v", err)
	}
	faultinject.Reset()

	ctx := context.Background()
	outs, err := srv.SubmitDAG(ctx, "a", []Op{dagAdd("$a", "$a", "$chk")}, nil, []string{"$chk"}, nil)
	if err != nil {
		t.Fatalf("reading committed upstream register: %v", err)
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(outs[0]))
	if r := real(got[0]); r < 0.49 || r > 0.51 {
		t.Fatalf("$a + $a = %g, want 0.5", r)
	}
	for _, reg := range []string{"$b", "$c"} {
		_, err := srv.SubmitDAG(ctx, "a", []Op{dagAdd(reg, reg, "$chk2")}, nil, nil, nil)
		if Code(err) != CodeBadJob {
			t.Fatalf("read of skipped %s: %v, want CodeBadJob", reg, err)
		}
	}
}

// TestDAGEvictionSpill evicts a session with live registers from the key
// cache: the registers spill to the durable store and the next DAG job
// rehydrates them transparently — the companion to TestChaosKillRestart for
// the new session state.
func TestDAGEvictionSpill(t *testing.T) {
	params := testParams(t)
	cl1 := newClientSide(t, params, 760, []int{1})
	cl2 := newClientSide(t, params, 770, []int{1})
	kb := keySetBytes(cl1.rlk, cl1.rtks)
	srv, err := New(Config{
		Params:        params,
		StoreDir:      t.TempDir(),
		KeyCacheBytes: kb + kb/2, // one session fits, two do not
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.OpenSession("a", cl1.rlk, cl1.rtks); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	x := encryptConst(t, cl1, params, 0.25)
	if _, err := srv.SubmitDAG(ctx, "a", nil, []string{"$x"}, nil, []*ckks.Ciphertext{x}); err != nil {
		t.Fatal(err)
	}

	spillsBefore := srv.tel.regSpills.Load()
	if err := srv.OpenSession("b", cl2.rlk, cl2.rtks); err != nil {
		t.Fatal(err)
	}
	if got := srv.tel.regSpills.Load(); got != spillsBefore+1 {
		t.Fatalf("register spills %d, want %d after eviction", got, spillsBefore+1)
	}
	for _, ss := range srv.Stats().Sessions {
		if ss.Session == "a" {
			if ss.Resident {
				t.Fatal("session a still resident after opening b")
			}
			if ss.Registers != 0 {
				t.Fatalf("evicted session holds %d resident registers, want 0", ss.Registers)
			}
		}
	}

	// The next DAG job reloads $x from disk before its first stage runs.
	reloadsBefore := srv.tel.regReloads.Load()
	outs, err := srv.SubmitDAG(ctx, "a", []Op{dagAdd("$x", "$x", "$y")}, nil, []string{"$y"}, nil)
	if err != nil {
		t.Fatalf("DAG job on evicted session: %v", err)
	}
	got := cl1.encoder.Decode(cl1.dec.DecryptNew(outs[0]))
	if r := real(got[0]); r < 0.49 || r > 0.51 {
		t.Fatalf("rehydrated $x + $x = %g, want 0.5", r)
	}
	if got := srv.tel.regReloads.Load(); got != reloadsBefore+1 {
		t.Fatalf("register reloads %d, want %d", got, reloadsBefore+1)
	}
	for _, ss := range srv.Stats().Sessions {
		if ss.Session == "a" && ss.Registers != 2 {
			t.Fatalf("session a holds %d registers after rehydration, want 2", ss.Registers)
		}
	}
}

// TestDAGServerRestart drains a server (spilling registers) and boots a new
// one on the same store: the registers survive the restart and are readable
// by the first DAG job of the new process.
func TestDAGServerRestart(t *testing.T) {
	params := testParams(t)
	dir := t.TempDir()
	cl := newClientSide(t, params, 780, []int{1})

	srv1, err := New(Config{Params: params, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.OpenSession("durable", cl.rlk, cl.rtks); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	x := encryptConst(t, cl, params, 0.25)
	outs, err := srv1.SubmitDAG(ctx, "durable",
		[]Op{dagAdd("$x", "$x", "$y")}, []string{"$x"}, []string{"$y"},
		[]*ckks.Ciphertext{x})
	if err != nil {
		t.Fatal(err)
	}
	srv1.ctx.PutCiphertext(outs[0])

	dctx, dcancel := context.WithTimeout(ctx, 10*time.Second)
	defer dcancel()
	if err := srv1.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := srv1.tel.regSpills.Load(); got != 2 {
		t.Fatalf("drain spilled %d registers, want 2", got)
	}
	srv1.Close()

	srv2, err := New(Config{Params: params, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	outs, err = srv2.SubmitDAG(ctx, "durable",
		[]Op{dagAdd("$x", "$y", "$z")}, nil, []string{"$z"}, nil)
	if err != nil {
		t.Fatalf("DAG job after restart: %v", err)
	}
	got := cl.encoder.Decode(cl.dec.DecryptNew(outs[0]))
	if r := real(got[0]); r < 0.74 || r > 0.76 {
		t.Fatalf("$x + $y after restart = %g, want 0.75", r)
	}
}
