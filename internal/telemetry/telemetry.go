// Package telemetry is the observability substrate of the serving runtime:
// a zero-allocation hierarchical span tracer and a dependency-free
// Prometheus-text metrics registry, shared by every layer of the hot path
// (HTTP ingress → scheduler → evaluator → ring engine).
//
// The package is deliberately tiny and stdlib-only so the ring and ckks
// layers can import it without cycles or new dependencies. Its two halves:
//
//   - Tracer/Trace/Span (tracer.go): spans are plain values recorded into a
//     fixed-size lock-free ring buffer of all-atomic slots. Recording a span
//     is a handful of atomic stores — no allocation, no locks — and a
//     disabled trace (the zero Trace value) reduces every call to a nil
//     check, so instrumentation sites cost nothing when tracing is off. The
//     serving layer keeps one Trace per job and dumps the reconstructed span
//     tree for jobs exceeding its slow-job threshold.
//
//   - Registry/Writer/Histogram (metrics.go) and the shared counter structs
//     (stats.go): collectors render directly from atomic counters into the
//     Prometheus text exposition format on every scrape; between scrapes the
//     only state is the counters themselves. EngineStats, PoolStats and
//     WireStats are owned here so ring and wire can bump them through a
//     nil-guarded pointer without knowing anything about serving.
//
// Span names are interned once (Name) into small integer handles; recording
// sites hold the handle in a package-level var, so the per-span cost never
// includes a map lookup or a string copy.
package telemetry

import "sync"

// names interns span names. Interning happens at package init time in the
// instrumented packages (a handful of names); lookups during rendering take
// the read lock only.
var names struct {
	mu     sync.RWMutex
	byName map[string]uint32
	list   []string
}

// Name interns a span name and returns its handle. Call it once per name
// (package-level var); handles are process-global and never recycled.
func Name(s string) uint32 {
	names.mu.Lock()
	defer names.mu.Unlock()
	if names.byName == nil {
		names.byName = make(map[string]uint32)
	}
	if id, ok := names.byName[s]; ok {
		return id
	}
	names.list = append(names.list, s)
	id := uint32(len(names.list) - 1)
	names.byName[s] = id
	return id
}

// nameOf resolves a handle back to its string ("?" for an unknown handle —
// possible only for a torn slot read, see tracer.go).
func nameOf(id uint32) string {
	names.mu.RLock()
	defer names.mu.RUnlock()
	if int(id) < len(names.list) {
		return names.list[id]
	}
	return "?"
}
