package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func(w *Writer) {
		w.Counter("bts_test_total", "A test counter.", nil, 42)
		w.Counter("bts_test_total", "A test counter.", []Label{{"op", "mul"}}, 7)
		w.Gauge("bts_test_depth", "A test gauge.", []Label{{"q", `a"b\c`}}, 3)
	})
	out := string(reg.Render())
	for _, want := range []string{
		"# HELP bts_test_total A test counter.",
		"# TYPE bts_test_total counter",
		"bts_test_total 42",
		`bts_test_total{op="mul"} 7`,
		`bts_test_depth{q="a\"b\\c"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE for a family must appear exactly once even with two samples.
	if n := strings.Count(out, "# TYPE bts_test_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
}

func TestHistogramRendering(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("Sum = %v, want 56.05", got)
	}
	reg := NewRegistry()
	reg.Register(func(w *Writer) {
		w.Histogram("bts_test_seconds", "A test histogram.", []Label{{"op", "add"}}, h)
	})
	out := string(reg.Render())
	for _, want := range []string{
		"# TYPE bts_test_seconds histogram",
		`bts_test_seconds_bucket{op="add",le="0.1"} 1`,
		`bts_test_seconds_bucket{op="add",le="1"} 3`,
		`bts_test_seconds_bucket{op="add",le="10"} 4`,
		`bts_test_seconds_bucket{op="add",le="+Inf"} 5`,
		`bts_test_seconds_sum{op="add"} 56.05`,
		`bts_test_seconds_count{op="add"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g+1) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestStatsCollectors(t *testing.T) {
	var cs ContextStats
	cs.Engine.Runs.Add(3)
	cs.Engine.Tasks.Add(17)
	cs.Engine.StolenTasks.Add(5)
	cs.PoolQ.PolyGets.Add(9)
	cs.PoolQ.PolyMisses.Add(2)
	var ws WireStats
	ws.BytesIn.Add(1000)
	ws.EnvelopesOut.Add(4)

	reg := NewRegistry()
	reg.Register(cs.Collect)
	reg.Register(ws.Collect)
	out := string(reg.Render())
	for _, want := range []string{
		"bts_engine_runs_total 3",
		"bts_engine_tasks_total 17",
		"bts_engine_stolen_tasks_total 5",
		`bts_pool_gets_total{ring="q",kind="poly"} 9`,
		`bts_pool_misses_total{ring="q",kind="poly"} 2`,
		`bts_pool_gets_total{ring="p",kind="row"} 0`,
		`bts_wire_bytes_total{dir="in"} 1000`,
		`bts_wire_envelopes_total{dir="out"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
