package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry renders registered collectors into the Prometheus text exposition
// format (version 0.0.4). There is no sample state inside the registry —
// collectors read their own atomic counters on every scrape — so registering
// is the only mutating operation.
type Registry struct {
	mu         sync.Mutex
	collectors []func(w *Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector; collectors run in registration order on
// every scrape. Safe for concurrent use with Render.
func (r *Registry) Register(c func(w *Writer)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Render runs every collector and returns the exposition text.
func (r *Registry) Render() []byte {
	r.mu.Lock()
	collectors := make([]func(w *Writer), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	w := &Writer{typed: make(map[string]bool)}
	for _, c := range collectors {
		c(w)
	}
	return w.buf.Bytes()
}

// Handler serves Render as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(r.Render())
	})
}

// Label is one name="value" pair; samples carry them in the given order.
type Label struct{ Name, Value string }

// Writer accumulates exposition text during one scrape. HELP/TYPE headers are
// emitted once per metric name, on its first sample, so a metric family split
// across label sets (e.g. one histogram per op kind) renders legally.
type Writer struct {
	buf   bytes.Buffer
	typed map[string]bool
}

func (w *Writer) header(name, help, typ string) {
	if w.typed[name] {
		return
	}
	w.typed[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func (w *Writer) sample(name, labels string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	fmt.Fprintf(&w.buf, "%s%s %g\n", name, labels, v)
}

// Counter emits one monotonically-increasing sample.
func (w *Writer) Counter(name, help string, labels []Label, v float64) {
	w.header(name, help, "counter")
	w.sample(name, formatLabels(labels), v)
}

// Gauge emits one point-in-time sample.
func (w *Writer) Gauge(name, help string, labels []Label, v float64) {
	w.header(name, help, "gauge")
	w.sample(name, formatLabels(labels), v)
}

// Histogram is a fixed-bucket histogram with atomic counters: Observe is a
// binary search plus two atomic adds (no locks), so it is safe on the
// serving hot path. Buckets are cumulative only at render time.
type Histogram struct {
	bounds []float64       // upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-add
	total  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// LatencyBuckets is the default log-spaced latency bucket set (seconds),
// spanning sub-millisecond primitive ops through multi-minute full-instance
// bootstraps.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
	}
}

// LinearBuckets returns count evenly spaced upper bounds starting at start.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports how many values have been observed.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Histogram emits the histogram in exposition form (cumulative le buckets,
// _sum and _count).
func (w *Writer) Histogram(name, help string, labels []Label, h *Histogram) {
	w.header(name, help, "histogram")
	base := append([]Label(nil), labels...)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := formatLabels(append(base, Label{"le", formatBound(b)}))
		fmt.Fprintf(&w.buf, "%s_bucket%s %d\n", name, le, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	le := formatLabels(append(base, Label{"le", "+Inf"}))
	fmt.Fprintf(&w.buf, "%s_bucket%s %d\n", name, le, cum)
	ls := formatLabels(labels)
	fmt.Fprintf(&w.buf, "%s_sum%s %g\n", name, ls, h.Sum())
	fmt.Fprintf(&w.buf, "%s_count%s %d\n", name, ls, cum)
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}
