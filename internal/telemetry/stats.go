package telemetry

import "sync/atomic"

// EngineStats counts ring.Engine activity. The engine bumps these through a
// nil-guarded pointer (ring.Engine.SetStats): a detached engine pays a single
// predictable branch per dispatch, an attached one a few atomic adds per Run
// — noise next to the polynomial arithmetic a Run fans out.
type EngineStats struct {
	// Runs counts parallel dispatches; InlineRuns counts dispatches executed
	// serially on the caller (serial engine, or n <= 1).
	Runs, InlineRuns atomic.Int64
	// Tasks counts every task across both paths; StolenTasks counts the
	// subset executed by recruited helper workers rather than the caller —
	// StolenTasks/Tasks is the pool's effective work-sharing ratio.
	Tasks, StolenTasks atomic.Int64
	// HelpersBusy is a point-in-time gauge of helper workers currently
	// executing tasks (worker occupancy; the caller's own goroutine is not
	// counted).
	HelpersBusy atomic.Int64
	// BlockRuns counts RunBlocks dispatches; ShardedRuns the subset that
	// actually split rows into >1 coefficient blocks. ShardLastRows and
	// ShardLastBlocks record the shape (rows × blocks) of the most recent
	// sharded dispatch.
	BlockRuns, ShardedRuns         atomic.Int64
	ShardLastRows, ShardLastBlocks atomic.Int64
}

// Collect renders the engine series.
func (es *EngineStats) Collect(w *Writer) {
	w.Counter("bts_engine_runs_total", "Parallel Engine.Run dispatches.", nil, float64(es.Runs.Load()))
	w.Counter("bts_engine_inline_runs_total", "Engine dispatches executed serially on the caller.", nil, float64(es.InlineRuns.Load()))
	w.Counter("bts_engine_tasks_total", "Tasks executed across all dispatches.", nil, float64(es.Tasks.Load()))
	w.Counter("bts_engine_stolen_tasks_total", "Tasks executed by recruited helper workers.", nil, float64(es.StolenTasks.Load()))
	w.Gauge("bts_engine_helpers_busy", "Helper workers currently executing tasks.", nil, float64(es.HelpersBusy.Load()))
	w.Counter("bts_engine_block_runs_total", "RunBlocks (2-D) dispatches.", nil, float64(es.BlockRuns.Load()))
	w.Counter("bts_engine_sharded_runs_total", "RunBlocks dispatches that split rows into coefficient blocks.", nil, float64(es.ShardedRuns.Load()))
	w.Gauge("bts_engine_shard_last_rows", "Row count of the most recent sharded dispatch.", nil, float64(es.ShardLastRows.Load()))
	w.Gauge("bts_engine_shard_last_blocks", "Blocks per row of the most recent sharded dispatch.", nil, float64(es.ShardLastBlocks.Load()))
}

// PoolStats counts a ring's scratch-pool traffic (sync.Pool hit/miss). A miss
// is a Get that had to allocate fresh memory.
type PoolStats struct {
	PolyGets, PolyMisses atomic.Int64
	RowGets, RowMisses   atomic.Int64
}

// Collect renders the pool series for one ring (label ring="q"|"p").
func (ps *PoolStats) Collect(w *Writer, ringLabel string) {
	for _, s := range []struct {
		kind         string
		gets, misses *atomic.Int64
	}{
		{"poly", &ps.PolyGets, &ps.PolyMisses},
		{"row", &ps.RowGets, &ps.RowMisses},
	} {
		labels := []Label{{"ring", ringLabel}, {"kind", s.kind}}
		w.Counter("bts_pool_gets_total", "Scratch-pool borrows.", labels, float64(s.gets.Load()))
		w.Counter("bts_pool_misses_total", "Scratch-pool borrows that allocated fresh memory.", labels, float64(s.misses.Load()))
	}
}

// WireStats counts codec traffic at the envelope choke points: bytes and
// envelopes encoded (out) and decoded (in), headers included.
type WireStats struct {
	BytesIn, BytesOut         atomic.Int64
	EnvelopesIn, EnvelopesOut atomic.Int64
}

// Collect renders the wire series.
func (ws *WireStats) Collect(w *Writer) {
	w.Counter("bts_wire_bytes_total", "Envelope bytes through the codec.", []Label{{"dir", "in"}}, float64(ws.BytesIn.Load()))
	w.Counter("bts_wire_bytes_total", "Envelope bytes through the codec.", []Label{{"dir", "out"}}, float64(ws.BytesOut.Load()))
	w.Counter("bts_wire_envelopes_total", "Envelopes through the codec.", []Label{{"dir", "in"}}, float64(ws.EnvelopesIn.Load()))
	w.Counter("bts_wire_envelopes_total", "Envelopes through the codec.", []Label{{"dir", "out"}}, float64(ws.EnvelopesOut.Load()))
}

// ContextStats bundles one ckks.Context's engine and per-ring pool stats, so
// a server attaches everything with one call (ckks.Context.SetStats).
type ContextStats struct {
	Engine EngineStats
	PoolQ  PoolStats
	PoolP  PoolStats
}

// Collect renders every series of the bundle.
func (cs *ContextStats) Collect(w *Writer) {
	cs.Engine.Collect(w)
	cs.PoolQ.Collect(w, "q")
	cs.PoolP.Collect(w, "p")
}
