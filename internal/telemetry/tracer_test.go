package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

var (
	testSpanJob   = Name("job")
	testSpanOp    = Name("op")
	testSpanInner = Name("inner")
)

func TestSpanTreeReconstruction(t *testing.T) {
	tc := NewTracer(256)
	tr := tc.NewTrace()

	root := tr.Span(testSpanJob, 0)
	op := tr.Span(testSpanOp, root.ID())
	inner := tr.Span(testSpanInner, op.ID())
	inner.SetLevel(3)
	inner.SetMarginBits(21.5)
	inner.End()
	op.End()
	root.End()

	recs := tc.Collect(tr.ID())
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["op"].Parent != byName["job"].ID {
		t.Errorf("op's parent = %d, want job's id %d", byName["op"].Parent, byName["job"].ID)
	}
	if byName["inner"].Parent != byName["op"].ID {
		t.Errorf("inner's parent = %d, want op's id %d", byName["inner"].Parent, byName["op"].ID)
	}
	if byName["inner"].Level != 3 {
		t.Errorf("inner level = %d, want 3", byName["inner"].Level)
	}
	if byName["inner"].MarginBits != 21.5 {
		t.Errorf("inner margin = %v, want 21.5", byName["inner"].MarginBits)
	}
	if !math.IsNaN(byName["op"].MarginBits) {
		t.Errorf("op margin = %v, want NaN (unset)", byName["op"].MarginBits)
	}

	tree := tc.RenderTree(tr.ID())
	for _, want := range []string{"job ", "  op ", "    inner ", "level=3", "margin=21.5b"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestTraceIsolation(t *testing.T) {
	tc := NewTracer(256)
	trA, trB := tc.NewTrace(), tc.NewTrace()
	a := trA.Span(testSpanJob, 0)
	b := trB.Span(testSpanJob, 0)
	a.End()
	b.End()
	if got := len(tc.Collect(trA.ID())); got != 1 {
		t.Fatalf("trace A holds %d spans, want 1", got)
	}
}

func TestInertTrace(t *testing.T) {
	var tr Trace // zero value: tracing disabled
	if tr.Active() {
		t.Fatal("zero Trace is active")
	}
	sp := tr.Span(testSpanJob, 0)
	sp.SetLevel(1)
	sp.SetMarginBits(2)
	sp.End() // must not panic
	var nilTracer *Tracer
	if nilTracer.NewTrace().Active() {
		t.Fatal("nil tracer yields an active trace")
	}
	if nilTracer.Spans() != 0 {
		t.Fatal("nil tracer reports spans")
	}
}

func TestRingWraparound(t *testing.T) {
	tc := NewTracer(8)
	tr := tc.NewTrace()
	root := tr.Span(testSpanJob, 0)
	for i := 0; i < 64; i++ {
		sp := tr.Span(testSpanOp, root.ID())
		sp.End()
	}
	root.End()
	recs := tc.Collect(tr.ID())
	if len(recs) == 0 || len(recs) > tc.Capacity() {
		t.Fatalf("got %d spans, want (0, %d]", len(recs), tc.Capacity())
	}
	// The orphaned tail must still render (as extra roots), not vanish.
	if tree := tc.RenderTree(tr.ID()); !strings.Contains(tree, "op") {
		t.Fatalf("wrapped trace lost all spans:\n%s", tree)
	}
	if tc.Spans() != 65 {
		t.Fatalf("Spans() = %d, want 65", tc.Spans())
	}
}

// TestConcurrentRecordAndCollect exercises writers wrapping the ring while a
// reader scans it; run under -race this is the lock-freedom proof.
func TestConcurrentRecordAndCollect(t *testing.T) {
	tc := NewTracer(64)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			tr := tc.NewTrace()
			for i := 0; i < 2000; i++ {
				sp := tr.Span(testSpanOp, 0)
				sp.SetLevel(i & 15)
				sp.End()
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tc.Collect(1)
				_ = tc.RenderTree(2)
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestSpanRecordingAllocsNothing(t *testing.T) {
	tc := NewTracer(1024)
	tr := tc.NewTrace()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span(testSpanOp, 7)
		sp.SetLevel(3)
		sp.SetMarginBits(12.5)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("span record allocates %v objects per op, want 0", allocs)
	}
}

func TestNameInterning(t *testing.T) {
	a := Name("telemetry-test-unique-name")
	b := Name("telemetry-test-unique-name")
	if a != b {
		t.Fatalf("interning returned %d then %d for the same name", a, b)
	}
	if nameOf(a) != "telemetry-test-unique-name" {
		t.Fatalf("nameOf(%d) = %q", a, nameOf(a))
	}
	if nameOf(1<<31) != "?" {
		t.Fatal("unknown handle should render as ?")
	}
}
