package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Tracer records spans into a fixed-size ring buffer. Every slot field is an
// atomic word: writers claim a slot by bumping the head counter, invalidate
// the slot's sequence word, store the fields, and publish the new sequence
// last; readers snapshot the sequence, load the fields, and re-check the
// sequence, discarding the slot if it changed underneath them. Recording
// therefore never locks, never blocks, and never allocates, and readers can
// scan concurrently with writers under -race. The buffer simply wraps: a
// trace older than capacity spans loses its oldest spans, which a dump
// reports as a partial tree rather than an error.
//
// The one sacrifice for locklessness: two writers that land on the same slot
// a full buffer-lap apart can interleave their field stores, and a reader
// racing both can observe a mixed record whose sequence nonetheless reads
// stable. That requires capacity spans to be recorded during one slot read —
// vanishingly rare at any sane capacity — and at worst garbles one line of a
// diagnostic dump, so it is accepted by design.
type Tracer struct {
	slots   []slot
	mask    uint64
	head    atomic.Uint64 // next slot claim (slot seq = claim+1, so 0 means empty)
	spanIDs atomic.Uint64
	traces  atomic.Uint64
	epoch   time.Time // all span times are monotonic offsets from this
}

type slot struct {
	seq    atomic.Uint64
	trace  atomic.Uint64
	span   atomic.Uint64
	parent atomic.Uint64
	name   atomic.Uint32
	start  atomic.Int64 // ns since epoch
	dur    atomic.Int64 // ns
	a1     atomic.Uint64
	a2     atomic.Uint64
}

// DefaultTraceCapacity is the span capacity NewTracer(0) selects: enough for
// several concurrent bootstrap jobs' full span trees (~10 MiB higher bound of
// slot memory is ~1.5 MiB at this capacity).
const DefaultTraceCapacity = 1 << 14

// NewTracer builds a tracer with the given span capacity, rounded up to a
// power of two (0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1), epoch: time.Now()}
}

// Capacity reports the ring's span capacity.
func (t *Tracer) Capacity() int { return len(t.slots) }

// Spans reports how many spans have ever been recorded (monotonic; the ring
// retains the most recent Capacity of them).
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

func (t *Tracer) record(trace, span, parent uint64, name uint32, start, dur int64, a1, a2 uint64) {
	idx := t.head.Add(1) - 1
	s := &t.slots[idx&t.mask]
	s.seq.Store(0)
	s.trace.Store(trace)
	s.span.Store(span)
	s.parent.Store(parent)
	s.name.Store(name)
	s.start.Store(start)
	s.dur.Store(dur)
	s.a1.Store(a1)
	s.a2.Store(a2)
	s.seq.Store(idx + 1)
}

// Trace is one recording context (one served job): a handle pairing a tracer
// with a trace ID. The zero Trace is inert — every method is a cheap no-op —
// which is how instrumented code paths run when tracing is disabled.
type Trace struct {
	t  *Tracer
	id uint64
}

// NewTrace allocates a fresh trace handle. Calling it on a nil tracer yields
// the inert zero Trace.
func (t *Tracer) NewTrace() Trace {
	if t == nil {
		return Trace{}
	}
	return Trace{t: t, id: t.traces.Add(1)}
}

// Active reports whether the trace records anything.
func (tr Trace) Active() bool { return tr.t != nil }

// ID returns the trace ID (0 for the inert trace).
func (tr Trace) ID() uint64 { return tr.id }

// Span opens a span under the given parent span ID (0 = root). The returned
// Span is a plain value; nothing is recorded until End. On an inert trace the
// result is itself inert.
func (tr Trace) Span(name uint32, parent uint64) Span {
	if tr.t == nil {
		return Span{}
	}
	return Span{
		t:      tr.t,
		trace:  tr.id,
		id:     tr.t.spanIDs.Add(1),
		parent: parent,
		name:   name,
		start:  tr.t.now(),
	}
}

// Span is one timed region. It is passed by value and records itself into
// the tracer's ring on End; an inert span (from an inert Trace) ignores every
// call.
type Span struct {
	t      *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   uint32
	start  int64
	a1     uint64 // level+1 (0 = unset)
	a2     uint64 // float64 bits of the noise margin (0 = unset)
}

// Recording reports whether the span will be recorded.
func (s *Span) Recording() bool { return s.t != nil }

// ID returns the span's ID (0 when inert), used as the parent of child spans.
func (s *Span) ID() uint64 { return s.id }

// Parent returns the parent span ID this span was opened under (0 for roots
// and inert spans) — callers that thread a mutable "current parent" through
// nested instrumentation restore it from here on End.
func (s *Span) Parent() uint64 { return s.parent }

// SetLevel attaches a ciphertext level to the span.
func (s *Span) SetLevel(level int) {
	if s.t != nil {
		s.a1 = uint64(level) + 1
	}
}

// SetMarginBits attaches a noise-margin estimate (bits of modulus headroom,
// see ckks.Context.NoiseMargin) to the span.
func (s *Span) SetMarginBits(bits float64) {
	if s.t != nil {
		s.a2 = math.Float64bits(bits)
	}
}

// End records the span. Safe to call on an inert span (no-op); calling End
// twice records the span twice.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.record(s.trace, s.id, s.parent, s.name, s.start, s.t.now()-s.start, s.a1, s.a2)
}

// SpanRecord is one collected span, decoded from the ring.
type SpanRecord struct {
	Trace, ID, Parent uint64
	Name              string
	Start, Dur        time.Duration // offsets from the tracer epoch / wall time
	Level             int           // -1 when unset
	MarginBits        float64       // NaN when unset
}

// Collect returns every retained span of the given trace, ordered by start
// time. Spans overwritten by the ring (or mid-write during the scan) are
// skipped.
func (t *Tracer) Collect(traceID uint64) []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for i := range t.slots {
		s := &t.slots[i]
		seq := s.seq.Load()
		if seq == 0 || s.trace.Load() != traceID {
			continue
		}
		rec := SpanRecord{
			Trace:  s.trace.Load(),
			ID:     s.span.Load(),
			Parent: s.parent.Load(),
			Name:   nameOf(s.name.Load()),
			Start:  time.Duration(s.start.Load()),
			Dur:    time.Duration(s.dur.Load()),
			Level:  int(s.a1.Load()) - 1,
		}
		if bits := s.a2.Load(); bits != 0 {
			rec.MarginBits = math.Float64frombits(bits)
		} else {
			rec.MarginBits = math.NaN()
		}
		if s.seq.Load() != seq || rec.Trace != traceID {
			continue // overwritten while reading
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RenderTree formats the trace's retained spans as an indented tree, one
// span per line: name, wall time, and the level/noise-margin attributes when
// set. Orphaned spans (parent overwritten by the ring) render as extra roots,
// so a partially-evicted trace still dumps usefully.
func (t *Tracer) RenderTree(traceID uint64) string {
	recs := t.Collect(traceID)
	if len(recs) == 0 {
		return "(no spans retained)\n"
	}
	children := make(map[uint64][]SpanRecord, len(recs))
	have := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		have[r.ID] = true
	}
	var roots []SpanRecord
	for _, r := range recs {
		if r.Parent == 0 || !have[r.Parent] {
			roots = append(roots, r)
		} else {
			children[r.Parent] = append(children[r.Parent], r)
		}
	}
	var b strings.Builder
	var walk func(r SpanRecord, depth int)
	walk = func(r SpanRecord, depth int) {
		if depth > 32 { // torn reads cannot build real cycles, but stay safe
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %.3fms", r.Name, float64(r.Dur)/1e6)
		if r.Level >= 0 {
			fmt.Fprintf(&b, " level=%d", r.Level)
		}
		if !math.IsNaN(r.MarginBits) {
			fmt.Fprintf(&b, " margin=%.1fb", r.MarginBits)
		}
		b.WriteByte('\n')
		for _, c := range children[r.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
