package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() true with nothing armed")
	}
	if err := Eval("serve.store.load"); err != nil {
		t.Fatalf("disarmed Eval returned %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p.err", Spec{Mode: ModeError})
	err := Eval("p.err")
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "p.err" {
		t.Fatalf("got %v, want *Error for p.err", err)
	}
	if err := Eval("p.other"); err != nil {
		t.Fatalf("unarmed sibling point fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p.panic", Spec{Mode: ModePanic})
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Point != "p.panic" || fe.Mode != ModePanic {
			t.Fatalf("recovered %v, want *Error{p.panic, panic}", r)
		}
	}()
	_ = Eval("p.panic")
	t.Fatal("Eval did not panic")
}

func TestDelayMode(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p.delay", Spec{Mode: ModeDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Eval("p.delay"); err != nil {
		t.Fatalf("delay mode returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay point slept only %v", d)
	}
}

func TestSkipAndCount(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p.window", Spec{Mode: ModeError, Skip: 2, Count: 3})
	var fired int
	for i := 0; i < 10; i++ {
		if Eval("p.window") != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired during skip window at hit %d", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if Hits("p.window") != 10 {
		t.Fatalf("Hits = %d, want 10", Hits("p.window"))
	}
}

func TestDisarmRestoresFastPath(t *testing.T) {
	Reset()
	Arm("a", Spec{Mode: ModeError})
	Arm("b", Spec{Mode: ModeError})
	Disarm("a")
	if Eval("a") != nil {
		t.Fatal("disarmed point still fires")
	}
	if Eval("b") == nil {
		t.Fatal("surviving point stopped firing")
	}
	Disarm("b")
	if Enabled() {
		t.Fatal("registry not nil after last Disarm")
	}
}

func TestArmFromSpec(t *testing.T) {
	Reset()
	defer Reset()
	err := ArmFromSpec("serve.store.load=error; serve.op.exec=panic,skip=5,count=2 ;x=delay,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	got := Armed()
	want := []string{"serve.op.exec", "serve.store.load", "x"}
	if len(got) != len(want) {
		t.Fatalf("Armed() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Armed() = %v, want %v", got, want)
		}
	}
	if Eval("serve.store.load") == nil {
		t.Fatal("env-armed error point did not fire")
	}

	for _, bad := range []string{
		"noequals", "p=frobnicate", "p=error,delay=zzz", "p=error,skip=-1",
		"p=error,count=x", "p=error,bogus=1", "=error",
	} {
		if err := ArmFromSpec(bad); err == nil {
			t.Errorf("spec %q parsed, want error", bad)
		}
	}
}

func TestConcurrentArmEval(t *testing.T) {
	Reset()
	defer Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Eval("p.race")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		Arm("p.race", Spec{Mode: ModeDelay, Delay: time.Microsecond})
		Disarm("p.race")
	}
	close(stop)
	wg.Wait()
}
