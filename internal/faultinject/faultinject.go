// Package faultinject is the repository's failpoint harness: named
// injection sites compiled into the serving runtime's store I/O, scheduler
// dispatch and evaluator-op paths, armed only by tests or an explicit
// environment variable. The chaos tests use it to prove the fault-tolerance
// invariant — a job either completes bit-identically or fails with a typed
// retryable error, never a wrong ciphertext — by forcing errors, panics and
// delays at the exact boundaries the recovery code guards.
//
// Disarmed (the production state) a failpoint costs one atomic pointer load
// and a nil check; no map lookup, no allocation, no lock. Arming installs a
// registry behind an atomic pointer, so tests can arm and disarm points
// concurrently with traffic (-race clean).
//
// Arming from the environment uses BTS_FAILPOINTS, a semicolon-separated
// list of point specs:
//
//	BTS_FAILPOINTS="serve.store.load=error;serve.op.exec=panic,skip=100,count=1;serve.sched.dispatch=delay,delay=50ms"
//
// Each spec is name=mode with optional comma-separated options:
//
//	mode    error | panic | delay
//	delay=D sleep duration for mode delay (default 10ms)
//	skip=N  let the first N hits pass before firing (default 0)
//	count=N fire at most N times, then go inert (default unlimited)
//
// Failpoint names follow <package>.<subsystem>.<site>, e.g.
// "serve.store.save"; see the serve package docs for the wired sites.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed failpoint does when it fires.
type Mode uint8

const (
	// ModeError makes Eval return an *Error naming the point.
	ModeError Mode = iota
	// ModePanic makes Eval panic with an *Error value; the surrounding
	// recovery boundary (job runner, batch worker) must convert it into a
	// clean job failure.
	ModePanic
	// ModeDelay makes Eval sleep for Spec.Delay and return nil — the
	// slow-path injection for deadline and linger testing.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Spec is one armed failpoint's behavior.
type Spec struct {
	Mode Mode
	// Delay is the sleep for ModeDelay (default 10ms when zero).
	Delay time.Duration
	// Skip lets the first Skip evaluations pass before the point fires.
	Skip int64
	// Count bounds how many times the point fires; 0 means unlimited.
	Count int64
}

// Error is the failure Eval returns (ModeError) or panics with (ModePanic).
// The serving layer maps it to its retryable error taxonomy: an injected
// fault is by construction transient, so surviving a retry is exactly the
// invariant under test.
type Error struct {
	Point string
	Mode  Mode
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: point %q fired (%s)", e.Point, e.Mode)
}

// point is the armed state of one failpoint.
type point struct {
	spec Spec
	hits atomic.Int64 // evaluations seen
}

// registry is an immutable map snapshot; arming/disarming builds a new one
// and swaps the pointer, so Eval never takes a lock. The per-point hit
// counters are shared across snapshots by pointer, surviving unrelated
// Arm/Disarm calls.
type registry struct {
	points map[string]*point
}

var (
	active atomic.Pointer[registry]
	armMu  sync.Mutex // serializes Arm/Disarm/Reset snapshot swaps
)

// Enabled reports whether any failpoint is armed — the cheap guard callers
// may use to skip building failure context. Eval itself performs the same
// check, so calling Eval unconditionally is equally correct.
func Enabled() bool { return active.Load() != nil }

// Eval evaluates the named failpoint: nil when nothing is armed (the
// common case, one atomic load), otherwise the armed behavior — an error,
// a panic, or a delay. Call it at the top of the guarded operation.
func Eval(name string) error {
	reg := active.Load()
	if reg == nil {
		return nil
	}
	p, ok := reg.points[name]
	if !ok {
		return nil
	}
	hit := p.hits.Add(1)
	if hit <= p.spec.Skip {
		return nil
	}
	if p.spec.Count > 0 && hit > p.spec.Skip+p.spec.Count {
		return nil
	}
	switch p.spec.Mode {
	case ModePanic:
		panic(&Error{Point: name, Mode: ModePanic})
	case ModeDelay:
		d := p.spec.Delay
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		time.Sleep(d)
		return nil
	default:
		return &Error{Point: name, Mode: ModeError}
	}
}

// Arm installs (or replaces) the named failpoint. The hit counter starts at
// zero even when replacing an existing spec.
func Arm(name string, spec Spec) {
	armMu.Lock()
	defer armMu.Unlock()
	next := clone(active.Load())
	next.points[name] = &point{spec: spec}
	active.Store(next)
}

// Disarm removes the named failpoint; removing the last one restores the
// nil registry (and the one-atomic-load fast path).
func Disarm(name string) {
	armMu.Lock()
	defer armMu.Unlock()
	reg := active.Load()
	if reg == nil {
		return
	}
	if _, ok := reg.points[name]; !ok {
		return
	}
	next := clone(reg)
	delete(next.points, name)
	if len(next.points) == 0 {
		active.Store(nil)
		return
	}
	active.Store(next)
}

// Reset disarms every failpoint.
func Reset() {
	armMu.Lock()
	defer armMu.Unlock()
	active.Store(nil)
}

// Hits reports how many times the named failpoint has been evaluated since
// it was armed (fired or not), 0 when it is not armed.
func Hits(name string) int64 {
	reg := active.Load()
	if reg == nil {
		return 0
	}
	p, ok := reg.points[name]
	if !ok {
		return 0
	}
	return p.hits.Load()
}

// Armed lists the armed failpoint names, sorted (for logs and tests).
func Armed() []string {
	reg := active.Load()
	if reg == nil {
		return nil
	}
	names := make([]string, 0, len(reg.points))
	for name := range reg.points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func clone(reg *registry) *registry {
	next := &registry{points: make(map[string]*point)}
	if reg != nil {
		for name, p := range reg.points {
			next.points[name] = p
		}
	}
	return next
}

// ArmFromSpec parses and arms a BTS_FAILPOINTS-style spec string (see the
// package docs for the grammar). An empty string is a no-op. Points arm
// atomically: on a parse error nothing is armed.
func ArmFromSpec(env string) error {
	env = strings.TrimSpace(env)
	if env == "" {
		return nil
	}
	parsed := make(map[string]Spec)
	for _, entry := range strings.Split(env, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("faultinject: bad spec %q (want name=mode[,opt=v...])", entry)
		}
		var spec Spec
		for i, field := range strings.Split(rest, ",") {
			field = strings.TrimSpace(field)
			if i == 0 {
				switch field {
				case "error":
					spec.Mode = ModeError
				case "panic":
					spec.Mode = ModePanic
				case "delay":
					spec.Mode = ModeDelay
				default:
					return fmt.Errorf("faultinject: point %q: unknown mode %q", name, field)
				}
				continue
			}
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return fmt.Errorf("faultinject: point %q: bad option %q", name, field)
			}
			switch k {
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return fmt.Errorf("faultinject: point %q: bad delay %q", name, v)
				}
				spec.Delay = d
			case "skip":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: point %q: bad skip %q", name, v)
				}
				spec.Skip = n
			case "count":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: point %q: bad count %q", name, v)
				}
				spec.Count = n
			default:
				return fmt.Errorf("faultinject: point %q: unknown option %q", name, k)
			}
		}
		parsed[name] = spec
	}
	for name, spec := range parsed {
		Arm(name, spec)
	}
	return nil
}
