package sim

import "bts/internal/workload"

// This file is the software-vs-simulator calibration cross-check the package
// doc's caveats call for: the workload traces replayed by the Simulator
// expand *every* rotation into the full key-switch pipeline of Fig. 3(a),
// while the software library (internal/ckks) hoists — a BSGS linear
// transform pays the decomposition once and its baby-step rotations are
// NTT-domain gather-MACs with no (i)NTT/BConv at all. A naive count
// comparison would therefore misattribute the gap to modeling error.
// CrossCheckBootstrap takes the software's measured op mix (the ckks
// evaluator's counters) with hoisted rotations counted separately from full
// HRots, re-expresses it in full-key-switch equivalents, and reports how far
// the trace's op mix over- or under-states the software pipeline.

// MeasuredOpMix is the software-measured op mix of one workload run,
// bracketted by internal/ckks Evaluator counter snapshots. Hoisted
// rotations are counted separately from full rotations — the distinction
// the package-doc calibration caveat turns on.
type MeasuredOpMix struct {
	// Mult counts relinearized multiplications (full key-switch each).
	Mult int64
	// FullRot counts full-key-switch rotations: naive rotations, BSGS giant
	// steps, and conjugations.
	FullRot int64
	// HoistedRot counts hoisted baby rotations (gather-MAC against a shared
	// decomposition; no per-rotation (i)NTT/BConv).
	HoistedRot int64
	// Decompose counts shared hoisted decompositions (the iNTT + ModUp +
	// NTT half of the pipeline, paid once per transform stage input).
	Decompose int64
	// Rescale, PMult and ModRaise are the non-key-switching ops the traces
	// also emit (PMult includes the lazy diagonal folds of the hoisted
	// linear transform).
	Rescale  int64
	PMult    int64
	ModRaise int64
}

// CalibrationReport compares a workload trace's op mix against a measured
// software mix.
type CalibrationReport struct {
	// Trace-side counts (every HRot a full pipeline).
	TraceMults     int `json:"trace_mults"`
	TraceRots      int `json:"trace_rots"`
	TraceKeySwitch int `json:"trace_key_switch"` // TraceMults + TraceRots
	TraceRescales  int `json:"trace_rescales"`
	TracePMults    int `json:"trace_pmults"`

	// Measured software counts.
	MeasuredFullKS    int64 `json:"measured_full_ks"` // Mult + FullRot
	MeasuredHoisted   int64 `json:"measured_hoisted"`
	MeasuredDecompose int64 `json:"measured_decompose"`
	MeasuredKeySwitch int64 `json:"measured_key_switch"` // full + hoisted: every evk-consuming op

	// FullEquivalentKS re-expresses the measured mix in full-key-switch
	// units under the hoisting cost model (babyCostRatio = cost of a full
	// key-switch over a hoisted baby rotation): a hoisted rotation is
	// 1/ratio of a full pipeline, and a shared decomposition is the
	// complement 1 - 1/ratio that the hoisted rotations skipped.
	FullEquivalentKS float64 `json:"full_equivalent_ks"`
	// TraceOverFullEquivalent is TraceKeySwitch / FullEquivalentKS: how much
	// the trace — which charges the full pipeline per rotation — overstates
	// the software's key-switch work. 1.0 means the accelerator model and
	// the software pipeline agree op for op; values well above 1 quantify
	// the hoisting advantage the traces do not model.
	TraceOverFullEquivalent float64 `json:"trace_over_full_equivalent"`
	// RotCountRatio compares raw rotation counts (trace HRots vs measured
	// full + hoisted rotations) — a shape check that the trace's BSGS
	// factorization matches the software's.
	RotCountRatio float64 `json:"rot_count_ratio"`
}

// DefaultBabyCostRatio is the fallback full-over-hoisted rotation cost ratio
// used when no measured value is supplied — the same host-measured round
// figure internal/ckks's BSGS split model uses (`btsbench -experiment
// hoisting` reports the live value as baby_giant_cost_ratio).
const DefaultBabyCostRatio = 8.0

// CrossCheckBootstrap compares the op mix of tr (typically
// workload.BootstrapTrace for a shape mirroring the software pipeline's
// stage diagonal counts) against the measured software mix m.
// babyCostRatio ≤ 0 selects DefaultBabyCostRatio.
func CrossCheckBootstrap(tr workload.Trace, m MeasuredOpMix, babyCostRatio float64) CalibrationReport {
	if babyCostRatio <= 0 {
		babyCostRatio = DefaultBabyCostRatio
	}
	counts := tr.Counts()
	rep := CalibrationReport{
		TraceMults:        counts[workload.HMult],
		TraceRots:         counts[workload.HRot],
		TraceKeySwitch:    tr.KeySwitchOps(),
		TraceRescales:     counts[workload.HRescale],
		TracePMults:       counts[workload.PMult],
		MeasuredFullKS:    m.Mult + m.FullRot,
		MeasuredHoisted:   m.HoistedRot,
		MeasuredDecompose: m.Decompose,
		MeasuredKeySwitch: m.Mult + m.FullRot + m.HoistedRot,
	}
	rep.FullEquivalentKS = float64(rep.MeasuredFullKS) +
		float64(m.HoistedRot)/babyCostRatio +
		float64(m.Decompose)*(1-1/babyCostRatio)
	if rep.FullEquivalentKS > 0 {
		rep.TraceOverFullEquivalent = float64(rep.TraceKeySwitch) / rep.FullEquivalentKS
	}
	if measured := m.FullRot + m.HoistedRot; measured > 0 {
		rep.RotCountRatio = float64(rep.TraceRots) / float64(measured)
	}
	return rep
}
