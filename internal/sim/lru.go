package sim

import "container/list"

// lru is the software-managed ciphertext cache occupying the scratchpad
// space left after temporary data and the prefetched evk (Section 6.2:
// "the scratchpad space is prioritized in the order of the temporary data,
// prefetched evk, and finally ct caching with an LRU policy").
type lru struct {
	capacity int64
	used     int64
	entries  map[int64]*list.Element
	order    *list.List // front = most recently used

	hits, misses int64
}

type lruEntry struct {
	key  int64
	size int64
}

func newLRU(capacity int64) *lru {
	return &lru{
		capacity: capacity,
		entries:  make(map[int64]*list.Element),
		order:    list.New(),
	}
}

// touch records an access to key with the given size. It returns true on a
// hit. On a miss the object is inserted (evicting LRU entries as needed);
// objects larger than the whole cache are bypassed.
func (c *lru) touch(key, size int64) bool {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		// Sizes can change as ciphertexts move levels; adjust.
		e := el.Value.(*lruEntry)
		c.used += size - e.size
		e.size = size
		c.evict()
		c.hits++
		return true
	}
	c.misses++
	if size > c.capacity {
		return false
	}
	el := c.order.PushFront(&lruEntry{key: key, size: size})
	c.entries[key] = el
	c.used += size
	c.evict()
	return false
}

func (c *lru) evict() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
	}
}

// Len returns the number of resident objects.
func (c *lru) Len() int { return c.order.Len() }
