// Package sim is the cycle-level performance and energy simulator of the BTS
// accelerator (Section 6.2 methodology): each primitive HE op of a workload
// trace is expanded into the computational pipeline of Fig. 3(a) — (i)NTT on
// the NTTU pool, BConv on the BConvUs' MMAUs, element-wise work, NoC
// exchanges — and overlapped against the off-chip streaming of evaluation
// keys, with a software-managed scratchpad caching ciphertexts (LRU) under
// the priority order temp data > prefetched evk > ct cache.
//
// Calibration caveat: the software library's bootstrap op mix changed when
// internal/ckks gained hoisted key-switching — its linear transforms now
// perform one decomposition per input plus per-rotation gather-MAC and one
// deferred ModDown per giant step, instead of a full HRot key-switch per
// baby step. The workload traces here still expand HRot into the full
// per-rotation pipeline, so the software-vs-simulator calibration
// cross-check (CrossCheckBootstrap, calibrate.go) counts hoisted rotations
// separately: the ckks evaluator's op counters report full rotations
// (giants, conjugations) apart from hoisted babies, and the report
// re-expresses the measured mix in full-key-switch equivalents before
// comparing against the trace. `btsbench -experiment bootstrap` runs this
// cross-check against the real LogN=10 software bootstrap and archives it in
// BENCH_bootstrap.json.
//
// A second calibration caveat arrived with coefficient-block sharding
// (ring.Engine.RunBlocks): software timings of *low-level* ops (active
// limbs < cores) no longer degrade toward serial as the limb count shrinks,
// because each residue row is additionally sharded into coefficient blocks —
// including within each NTT butterfly stage. A software-vs-simulator
// cross-check must therefore not model the host as "limb-parallel only":
// per-op wall times at level ≤ 3 are now roughly level-independent up to
// the block-size floor (1024 coefficients), whereas traces replayed here
// assume the accelerator's fixed lane mapping throughout.
// `btsbench -experiment sharding` reports the measured low-level timings
// (BENCH_sharding.json) to calibrate against.
package sim

import (
	"fmt"
	"math"

	"bts/internal/arch"
	"bts/internal/params"
	"bts/internal/workload"
)

// Simulator executes workload traces on one hardware configuration and one
// CKKS instance.
type Simulator struct {
	HW   arch.Config
	Inst params.Instance
	PW   arch.PowerModel

	cache *lru

	// RecordTimeline enables Fig. 8-style per-phase event capture.
	RecordTimeline bool
	Timeline       []TimelineEvent
}

// TimelineEvent is one phase of one op (for the Fig. 8 reproduction).
type TimelineEvent struct {
	Op         string
	Phase      string // "evk-load", "ct-load", "NTT", "BConv", "elementwise", "NoC"
	Start, End float64
	// ScratchpadBytes is the occupancy after the op (Fig. 8 bottom panel).
	ScratchpadBytes int64
}

// Stats aggregates a trace execution.
type Stats struct {
	Time     float64 // seconds
	BootTime float64 // portion inside bootstrapping sub-traces (Fig. 7b)

	PerKind map[workload.OpKind]float64

	HBMBytes    int64
	CacheHits   int64
	CacheMiss   int64
	BusyHBM     float64
	BusyNTTU    float64
	BusyBConv   float64
	BusyElt     float64
	BusyNoC     float64
	ScratchBusy float64 // scratchpad-bandwidth busy-equivalent seconds

	EnergyJ float64
}

// Utilization returns busy/total for the named resource.
func (s Stats) Utilization(resource string) float64 {
	if s.Time == 0 {
		return 0
	}
	switch resource {
	case "HBM":
		return s.BusyHBM / s.Time
	case "NTTU":
		return s.BusyNTTU / s.Time
	case "BConvU":
		return s.BusyBConv / s.Time
	case "NoC":
		return s.BusyNoC / s.Time
	case "Scratchpad":
		return s.ScratchBusy / s.Time
	}
	return 0
}

// EDAP returns the energy-delay-area product (J·s·mm², Fig. 10).
func (s Stats) EDAP() float64 { return s.EnergyJ * s.Time * arch.TotalArea() }

// New builds a simulator. It panics on invalid configurations (programming
// error in experiment setup).
func New(hw arch.Config, inst params.Instance) *Simulator {
	if err := hw.Validate(); err != nil {
		panic(err)
	}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	s := &Simulator{HW: hw, Inst: inst, PW: arch.DefaultPower()}
	s.resetCache()
	return s
}

func (s *Simulator) resetCache() {
	// Scratchpad partitioning (Section 6.2): temporary data and the evk
	// staging buffer are pinned; the remainder is the SW-managed ct cache.
	// The evk is consumed in streaming fashion, so only one decomposition
	// slice needs to be staged at a time (double buffering).
	avail := s.HW.ScratchpadBytes - s.pinnedBytes()
	if avail < 0 {
		avail = 0
	}
	s.cache = newLRU(avail)
}

// pinnedBytes is the scratchpad space unavailable to the ct cache.
func (s *Simulator) pinnedBytes() int64 {
	return s.Inst.TempDataBytes() + s.Inst.EvkBytesMax()/int64(s.Inst.Dnum)
}

// opCost is the expanded hardware work of one op.
type opCost struct {
	hbm     float64 // off-chip streaming time (evk + misses)
	ntt     float64
	bconv   float64
	elt     float64
	noc     float64
	hbmByte int64
	spByte  int64
}

// costOf expands one op into hardware work following Fig. 3(a).
func (s *Simulator) costOf(op workload.Op) opCost {
	in := s.Inst
	hw := s.HW
	n := float64(in.N())
	logN := float64(in.LogN)
	nPE := float64(hw.PEs())
	freq := hw.FreqHz
	l := op.Level
	k := in.K()
	beta := in.Beta(l)
	rows := float64(k + l + 1)
	lrows := float64(l + 1)

	// One residue-polynomial NTT occupies the NTTU pool for an epoch of
	// N·logN/(2·nPE) cycles (Section 5.1).
	epoch := n * logN / (2 * nPE * freq)
	// MMAU MACs run lsub lanes per PE per cycle (Eq. 11).
	macTime := func(macs float64) float64 { return macs / (nPE * float64(hw.LSub) * freq) }
	eltTime := func(ops float64) float64 { return ops / (nPE * freq) }

	var c opCost
	switch op.Kind {
	case workload.HMult, workload.HRot:
		// evk streaming dominates off-chip traffic (Section 3.3).
		c.hbmByte += in.EvkBytes(l)
		// (i)NTT: the (β+2)·(k+ℓ+1) residue-polynomial transforms of the
		// key-switching pipeline plus the tensor/automorphism input iNTT.
		nPolyNTT := float64(beta+2)*rows + lrows
		c.ntt = nPolyNTT * epoch * s.rplpPenalty(nPolyNTT)
		// BConv: ModUp of β slices (α rows → k+ℓ+1-α rows each) and two
		// ModDowns (k rows → ℓ+1 rows).
		alpha := float64(in.Alpha())
		modUp := float64(beta) * alpha * (rows - alpha) * n
		modDown := 2 * float64(k) * lrows * n
		c.bconv = macTime((modUp + modDown) * 1.1) // +10% for the ModMult first stage
		// Element-wise: tensor product (HMult) and evk multiply-accumulate.
		elt := 2 * float64(beta) * rows * n * 2
		if op.Kind == workload.HMult {
			elt += 4 * lrows * n
		}
		c.elt = eltTime(elt)
		// NoC: two exchange rounds per residue-poly NTT, plus the
		// automorphism permutation for HRot (Section 5.5).
		nocBytes := nPolyNTT * 2 * n * 8
		if op.Kind == workload.HRot {
			nocBytes += 2 * lrows * n * 8
		}
		if hw.RPLP {
			// Coefficient-wise BConv crosses PE boundaries under rPLP.
			nocBytes += float64(beta)*rows*n*8 + 2*float64(k)*n*8
		}
		c.noc = nocBytes / hw.NoCBisectionBytesPerSec
	case workload.HRescale:
		c.ntt = lrows * epoch
		c.elt = eltTime(2 * lrows * n)
		c.noc = lrows * 2 * n * 8 / hw.NoCBisectionBytesPerSec
	case workload.PMult, workload.PAdd:
		// Plaintext operands are stored compressed (one coefficient row)
		// and expanded on-chip by the NTTUs; see DESIGN.md.
		c.ntt = lrows * epoch
		c.elt = eltTime(2 * lrows * n)
	case workload.HAdd, workload.CMult, workload.CAdd:
		c.elt = eltTime(2 * lrows * n)
	case workload.ModRaise:
		L := float64(in.L + 1)
		c.ntt = (2 + 2*L) * epoch
		c.elt = eltTime(2 * L * n)
	}

	// SW cache: operand ciphertexts and plaintext diagonals.
	for _, id := range op.CtIn {
		key := ctKey(id)
		size := in.CtBytes(l)
		if s.cache.touch(key, size) {
			c.spByte += size
		} else {
			c.hbmByte += size
		}
	}
	if op.PtID != 0 {
		key := ptKey(op.PtID)
		size := int64(in.N()) * 8 // compressed single-row plaintext
		if !s.cache.touch(key, size) {
			c.hbmByte += size
		}
	}
	if op.CtOut != 0 {
		s.cache.touch(ctKey(op.CtOut), in.CtBytes(l))
	}

	c.hbm = float64(c.hbmByte) / hw.HBMBytesPerSec
	// Scratchpad traffic: every compute word read+written once.
	c.spByte += int64((c.ntt + c.bconv + c.elt) * nPE * freq * 8 * 2)
	return c
}

// rplpPenalty models the load imbalance of residue-polynomial-level
// parallelism (Section 4.3): with work quantized to whole residue
// polynomials across RPLPClusters vector clusters, the last wave runs
// partially idle; BTS's CLP keeps all PEs busy regardless of ℓ.
func (s *Simulator) rplpPenalty(nPoly float64) float64 {
	if !s.HW.RPLP || nPoly <= 0 {
		return 1
	}
	g := float64(s.HW.RPLPClusters)
	if g <= 0 {
		g = 16
	}
	waves := math.Ceil(nPoly / g)
	return waves * g / nPoly
}

func ctKey(id int) int64 { return int64(id) }
func ptKey(id int) int64 { return -int64(id) }

// computeTime composes the on-chip phases of one op: the NTTU stream either
// overlaps BConv with iNTT in l_sub batches (Eq. 11) or serializes them (the
// Fig. 9 ablation); element-wise units and the NoC run in parallel pools.
func (s *Simulator) computeTime(c opCost) float64 {
	var nttStream float64
	if s.HW.BConvOverlap {
		nttStream = math.Max(c.ntt+0.25*c.bconv, c.bconv)
	} else {
		nttStream = c.ntt + c.bconv
	}
	return math.Max(math.Max(nttStream, c.elt), c.noc)
}

// RunTrace executes a trace and returns its statistics. The SW cache
// persists across ops (and is reset between RunTrace calls).
func (s *Simulator) RunTrace(tr workload.Trace) Stats {
	s.resetCache()
	s.Timeline = s.Timeline[:0]
	st := Stats{PerKind: map[workload.OpKind]float64{}}
	// Two pipelined timelines: the scheduler prefetches evks and operand
	// ciphertexts ahead of compute (Section 6.2), so memory streaming and
	// on-chip compute advance as independent clocks; an op completes when
	// both have caught up.
	var hbmClock, computeClock, prevEnd float64
	for _, op := range tr.Ops {
		hits0, miss0 := s.cache.hits, s.cache.misses
		c := s.costOf(op)
		hbmClock += c.hbm
		computeClock += s.computeTime(c)
		end := math.Max(hbmClock, computeClock)
		total := end - prevEnd
		start := prevEnd
		prevEnd = end
		st.Time = end
		st.PerKind[op.Kind] += total
		if op.Boot {
			st.BootTime += total
		}
		st.HBMBytes += c.hbmByte
		st.CacheHits += s.cache.hits - hits0
		st.CacheMiss += s.cache.misses - miss0
		st.BusyHBM += c.hbm
		st.BusyNTTU += c.ntt
		st.BusyBConv += c.bconv
		st.BusyElt += c.elt
		st.BusyNoC += c.noc
		st.ScratchBusy += float64(c.spByte) / s.HW.ScratchpadBytesPerSec

		if s.RecordTimeline {
			s.recordOp(op, c, start)
		}
	}
	st.EnergyJ = s.energy(st)
	return st
}

// OpBreakdown returns the raw cost of a single op with all ciphertext
// operands resident (used by the Fig. 8 single-HMult study).
func (s *Simulator) OpBreakdown(op workload.Op) (hbm, ntt, bconv, elt, noc, total float64) {
	s.resetCache()
	for _, id := range op.CtIn {
		s.cache.touch(ctKey(id), s.Inst.CtBytes(op.Level))
	}
	c := s.costOf(op)
	total = math.Max(c.hbm, s.computeTime(c))
	return c.hbm, c.ntt, c.bconv, c.elt, c.noc, total
}

func (s *Simulator) recordOp(op workload.Op, c opCost, start float64) {
	occ := s.Inst.TempDataBytes() + s.Inst.EvkBytesMax() + s.cache.used
	if occ > s.HW.ScratchpadBytes {
		occ = s.HW.ScratchpadBytes
	}
	name := op.Kind.String()
	add := func(phase string, d float64, at float64) float64 {
		if d <= 0 {
			return at
		}
		s.Timeline = append(s.Timeline, TimelineEvent{
			Op: name, Phase: phase, Start: at, End: at + d, ScratchpadBytes: occ,
		})
		return at + d
	}
	add("evk-load", c.hbm, start)
	t := add("NTT", c.ntt, start)
	t = add("BConv", c.bconv, t)
	add("elementwise", c.elt, t)
	add("NoC", c.noc, start)
}

// energy charges component power while busy, HBM energy per byte, and a
// static floor (Table 3 constants via arch.DefaultPower).
func (s *Simulator) energy(st Stats) float64 {
	p := s.PW
	e := st.BusyNTTU*p.NTTUW +
		st.BusyBConv*p.BConvW +
		st.BusyElt*p.EltW +
		st.BusyNoC*p.NoCW +
		st.ScratchBusy*p.ScratchW +
		float64(st.HBMBytes)*p.HBMPJPerByte*1e-12 +
		st.Time*p.StaticW
	return e
}

// AmortizedMultPerSlot runs the Eq. 8 microbenchmark and returns
// T_mult,a/slot in seconds.
func (s *Simulator) AmortizedMultPerSlot(shape workload.BootstrapShape) (float64, error) {
	usable := workload.UsableLevels(s.Inst, shape)
	if usable < 1 {
		return 0, fmt.Errorf("sim: instance %s cannot bootstrap (L=%d < L_boot=%d)",
			s.Inst.Name, s.Inst.L, shape.Levels())
	}
	tr := workload.AmortizedMultTrace(s.Inst, shape)
	st := s.RunTrace(tr)
	return st.Time / float64(usable) * 2 / float64(s.Inst.N()), nil
}

// MinBoundMultPerSlot evaluates the Section 3.4 minimum-bound model: all
// compute hidden under evk streaming, all cts on-chip — only key-switching
// traffic is charged (the assumptions behind Fig. 2).
func MinBoundMultPerSlot(inst params.Instance, shape workload.BootstrapShape, hbmBytesPerSec float64) (float64, error) {
	usable := inst.L - shape.Levels()
	if usable < 1 {
		return 0, fmt.Errorf("sim: instance %s cannot bootstrap", inst.Name)
	}
	tr := workload.BootstrapTrace(inst, shape)
	tboot := 0.0
	for _, op := range tr.Ops {
		if op.Kind.UsesEvk() {
			tboot += float64(inst.EvkBytes(op.Level)) / hbmBytesPerSec
		}
	}
	sum := tboot
	for l := 1; l <= usable; l++ {
		sum += float64(inst.EvkBytes(l)) / hbmBytesPerSec
	}
	return sum / float64(usable) * 2 / float64(inst.N()), nil
}
