package sim

import (
	"math"
	"testing"
	"testing/quick"

	"bts/internal/arch"
	"bts/internal/params"
	"bts/internal/workload"
)

func TestHMultLatencyMatchesFig8(t *testing.T) {
	// Fig. 8: a top-level HMult on INS-1 takes ≈ the evk load time
	// (~112 MiB at 1 TB/s ≈ 117 µs; the paper's axis reads ≈ 128 µs).
	s := New(arch.Default(), params.INS1)
	op := workload.Op{Kind: workload.HMult, Level: params.INS1.L, CtIn: []int{1, 2}, CtOut: 3}
	hbm, ntt, bconv, _, _, total := s.OpBreakdown(op)
	if total < 100e-6 || total > 140e-6 {
		t.Fatalf("HMult total %.1f µs outside [100,140]", total*1e6)
	}
	if hbm/total < 0.95 {
		t.Fatalf("HMult must be memory-bound: HBM %.0f%%", 100*hbm/total)
	}
	// NTTU ≈ 76% and BConvU ≈ 33% busy in the paper.
	if r := ntt / total; r < 0.6 || r > 0.9 {
		t.Fatalf("NTTU busy fraction %.2f outside [0.6,0.9]", r)
	}
	if r := bconv / total; r < 0.15 || r > 0.45 {
		t.Fatalf("BConvU busy fraction %.2f outside [0.15,0.45]", r)
	}
}

func TestMinBoundMatchesPaper(t *testing.T) {
	// Section 3.4: minimum-bound T_mult,a/slot of 27.7/19.9/22.1 ns for
	// INS-1/2/3. The reproduction must land within 25%.
	want := [3]float64{27.7, 19.9, 22.1}
	shape := workload.PaperBootstrapShape()
	for i, inst := range params.PaperInstances() {
		got, err := MinBoundMultPerSlot(inst, shape, 1e12)
		if err != nil {
			t.Fatal(err)
		}
		gotNs := got * 1e9
		if math.Abs(gotNs-want[i])/want[i] > 0.25 {
			t.Fatalf("%s: min bound %.1f ns, paper %.1f (>25%% off)", inst.Name, gotNs, want[i])
		}
	}
}

func TestAmortizedAboveMinBound(t *testing.T) {
	// The simulated Tmult can never beat the minimum bound (Fig. 7a).
	shape := workload.PaperBootstrapShape()
	for _, inst := range params.PaperInstances() {
		mb, _ := MinBoundMultPerSlot(inst, shape, 1e12)
		s := New(arch.Default(), inst)
		got, err := s.AmortizedMultPerSlot(shape)
		if err != nil {
			t.Fatal(err)
		}
		if got < mb {
			t.Fatalf("%s: simulated %.1f ns below bound %.1f ns", inst.Name, got*1e9, mb*1e9)
		}
	}
}

func TestLargerScratchpadNeverSlower(t *testing.T) {
	shape := workload.PaperBootstrapShape()
	for _, inst := range params.PaperInstances() {
		var prev float64 = math.Inf(1)
		for _, mb := range []int64{256, 512, 1024, 2048} {
			hw := arch.Default()
			hw.ScratchpadBytes = mb << 20
			s := New(hw, inst)
			got, err := s.AmortizedMultPerSlot(shape)
			if err != nil {
				t.Fatal(err)
			}
			if got > prev*1.0001 {
				t.Fatalf("%s: Tmult increased when growing scratchpad to %d MB", inst.Name, mb)
			}
			prev = got
		}
	}
}

func TestBandwidthScaling(t *testing.T) {
	// Fig. 9: 2 TB/s HBM helps, but by much less than 2× (compute-bound
	// fraction grows).
	shape := workload.PaperBootstrapShape()
	base := New(arch.Default(), params.INS1)
	t1, _ := base.AmortizedMultPerSlot(shape)
	fast := arch.Default()
	fast.HBMBytesPerSec = 2e12
	s2 := New(fast, params.INS1)
	t2, _ := s2.AmortizedMultPerSlot(shape)
	speedup := t1 / t2
	if speedup < 1.05 || speedup > 1.9 {
		t.Fatalf("2 TB/s speedup %.2fx outside (1.05, 1.9)", speedup)
	}
}

func TestBConvOverlapHelpsWhenComputeBound(t *testing.T) {
	// With abundant bandwidth the op becomes compute-bound and the Eq. 11
	// overlap must shorten HMult.
	hw := arch.Default()
	hw.HBMBytesPerSec = 10e12
	on := New(hw, params.INS1)
	hwOff := hw
	hwOff.BConvOverlap = false
	off := New(hwOff, params.INS1)
	op := workload.Op{Kind: workload.HMult, Level: params.INS1.L, CtIn: []int{1, 2}, CtOut: 3}
	_, _, _, _, _, tOn := on.OpBreakdown(op)
	_, _, _, _, _, tOff := off.OpBreakdown(op)
	if tOn >= tOff {
		t.Fatalf("overlap on %.1fµs not faster than off %.1fµs", tOn*1e6, tOff*1e6)
	}
}

func TestBootTimeFractionTracked(t *testing.T) {
	shape := workload.PaperBootstrapShape()
	tr := workload.AmortizedMultTrace(params.INS1, shape)
	s := New(arch.Default(), params.INS1)
	st := s.RunTrace(tr)
	if st.BootTime <= 0 || st.BootTime > st.Time {
		t.Fatalf("boot time %.3g outside (0, total=%.3g]", st.BootTime, st.Time)
	}
	if st.BootTime/st.Time < 0.5 {
		t.Fatalf("bootstrapping should dominate the amortized trace, got %.0f%%",
			100*st.BootTime/st.Time)
	}
}

func TestEnergyAndEDAPPositive(t *testing.T) {
	shape := workload.PaperBootstrapShape()
	tr := workload.BootstrapTrace(params.INS1, shape)
	s := New(arch.Default(), params.INS1)
	st := s.RunTrace(tr)
	if st.EnergyJ <= 0 || st.EDAP() <= 0 {
		t.Fatalf("non-positive energy %.3g / EDAP %.3g", st.EnergyJ, st.EDAP())
	}
	// Average power must stay below the chip's 163.2 W peak.
	if avgP := st.EnergyJ / st.Time; avgP > arch.TotalPower() {
		t.Fatalf("average power %.1f W exceeds peak %.1f W", avgP, arch.TotalPower())
	}
}

func TestUtilizationBounds(t *testing.T) {
	shape := workload.PaperBootstrapShape()
	tr := workload.BootstrapTrace(params.INS2, shape)
	s := New(arch.Default(), params.INS2)
	st := s.RunTrace(tr)
	for _, r := range []string{"HBM", "NTTU", "BConvU", "NoC", "Scratchpad"} {
		u := st.Utilization(r)
		if u < 0 || u > 1.0001 {
			t.Fatalf("%s utilization %.3f outside [0,1]", r, u)
		}
	}
}

func TestTimelineRecording(t *testing.T) {
	shape := workload.PaperBootstrapShape()
	tr := workload.BootstrapTrace(params.INS1, shape)
	s := New(arch.Default(), params.INS1)
	s.RecordTimeline = true
	s.RunTrace(tr)
	if len(s.Timeline) == 0 {
		t.Fatal("no timeline events recorded")
	}
	for _, ev := range s.Timeline {
		if ev.End < ev.Start {
			t.Fatalf("event %s/%s ends before it starts", ev.Op, ev.Phase)
		}
	}
}

func TestCacheConservationProperty(t *testing.T) {
	// LRU invariant: used ≤ capacity, hits+misses equals touches.
	f := func(keys []uint16) bool {
		c := newLRU(1 << 20)
		touches := 0
		for _, k := range keys {
			c.touch(int64(k%64), int64(k%7+1)*(1<<16))
			touches++
		}
		if c.used > c.capacity {
			return false
		}
		return int(c.hits+c.misses) == touches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheOversizeBypass(t *testing.T) {
	c := newLRU(100)
	if c.touch(1, 1000) {
		t.Fatal("first touch cannot hit")
	}
	if c.Len() != 0 {
		t.Fatal("oversize object must bypass the cache")
	}
	c.touch(2, 60)
	c.touch(3, 60) // evicts 2
	if c.used > 100 {
		t.Fatalf("capacity violated: %d", c.used)
	}
	if c.touch(2, 60) {
		t.Fatal("evicted entry must miss")
	}
}

func TestStatsDeterminism(t *testing.T) {
	shape := workload.PaperBootstrapShape()
	tr := workload.BootstrapTrace(params.INS3, shape)
	a := New(arch.Default(), params.INS3).RunTrace(tr)
	b := New(arch.Default(), params.INS3).RunTrace(tr)
	if a.Time != b.Time || a.HBMBytes != b.HBMBytes || a.EnergyJ != b.EnergyJ {
		t.Fatal("simulation is not deterministic")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid config")
		}
	}()
	bad := arch.Default()
	bad.FreqHz = 0
	New(bad, params.INS1)
}

func TestRPLPSlowerThanCLP(t *testing.T) {
	// Section 4.3: rPLP's per-polynomial work quantization leaves PEs idle
	// when the live residue count is not a multiple of the cluster count,
	// so CLP (BTS) must never lose and must win at awkward levels.
	shape := workload.PaperBootstrapShape()
	clp := New(arch.Default(), params.INS1)
	tCLP, _ := clp.AmortizedMultPerSlot(shape)
	hw := arch.Default()
	hw.RPLP = true
	hw.RPLPClusters = 16
	rplp := New(hw, params.INS1)
	tRPLP, _ := rplp.AmortizedMultPerSlot(shape)
	if tRPLP < tCLP {
		t.Fatalf("rPLP (%.1f ns) beat CLP (%.1f ns)", tRPLP*1e9, tCLP*1e9)
	}
	// Per-op: at a level where nPoly mod clusters is small, the penalty is
	// pronounced (last wave nearly idle).
	op := workload.Op{Kind: workload.HMult, Level: 4, CtIn: []int{1, 2}, CtOut: 3} // 108 polys: not a multiple of 16 clusters
	_, nttCLP, _, _, _, _ := clp.OpBreakdown(op)
	_, nttRPLP, _, _, _, _ := rplp.OpBreakdown(op)
	if nttRPLP <= nttCLP {
		t.Fatalf("rPLP NTT time %.2g not above CLP %.2g at a low level", nttRPLP, nttCLP)
	}
}

func TestCrossCheckBootstrap(t *testing.T) {
	inst := params.Instance{Name: "boot-sw", LogN: 10, L: 14, Dnum: 2, LogQ0: 55, LogQi: 45, LogP: 55}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	shape := workload.BootstrapShape{
		CtSStages:    []int{32, 31},
		StCStages:    []int{31, 32},
		SineDegree:   63,
		EvalModDepth: 7,
	}
	tr := workload.BootstrapTrace(inst, shape)

	// A measured mix that matches the trace op for op (every rotation a full
	// pipeline, nothing hoisted) must cross-check at exactly 1.0.
	counts := tr.Counts()
	flat := MeasuredOpMix{
		Mult:    int64(counts[workload.HMult]),
		FullRot: int64(counts[workload.HRot]),
	}
	rep := CrossCheckBootstrap(tr, flat, 0)
	if rep.TraceKeySwitch != counts[workload.HMult]+counts[workload.HRot] {
		t.Fatalf("trace key-switch count %d inconsistent", rep.TraceKeySwitch)
	}
	if math.Abs(rep.TraceOverFullEquivalent-1) > 1e-12 || math.Abs(rep.RotCountRatio-1) > 1e-12 {
		t.Fatalf("flat mix should cross-check at 1.0, got %.3f / %.3f",
			rep.TraceOverFullEquivalent, rep.RotCountRatio)
	}

	// Hoisting the same rotation count (babies become gather-MACs sharing a
	// few decompositions) must show the trace overstating key-switch work:
	// the whole point of counting hoisted rotations separately.
	rots := int64(counts[workload.HRot])
	hoisted := MeasuredOpMix{
		Mult:       int64(counts[workload.HMult]),
		FullRot:    rots / 4,
		HoistedRot: rots - rots/4,
		Decompose:  4,
	}
	rep = CrossCheckBootstrap(tr, hoisted, 8)
	if rep.MeasuredKeySwitch != int64(counts[workload.HMult])+rots {
		t.Fatalf("measured key-switch total %d lost rotations", rep.MeasuredKeySwitch)
	}
	if rep.TraceOverFullEquivalent <= 1.2 {
		t.Fatalf("hoisted mix should show the trace overstating key-switch work, got %.3f",
			rep.TraceOverFullEquivalent)
	}
	if math.Abs(rep.RotCountRatio-1) > 1e-12 {
		t.Fatalf("rotation count ratio %.3f should stay 1.0 when only the split changes", rep.RotCountRatio)
	}
}
