package ring

import (
	"math"
	"math/rand"

	"bts/internal/mod"
)

// Every element-wise kernel below operates on independent (limb,
// coefficient) pairs, so each dispatches through the ring's two-dimensional
// execution engine (RunBlocks, see exec.go): one task per residue row while
// the active limbs fill the pool, with each row further split into
// contiguous coefficient blocks when they don't — the software analogue of
// the paper's element-wise functions running across the full PE grid at any
// level.

// Add sets out = a + b element-wise on rows [0..level].
func (r *Ring) Add(a, b, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		q := r.Moduli[i].Q
		ra := a.Coeffs[i][lo:hi:hi]
		rb := b.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		rb, ro = rb[:len(ra)], ro[:len(ra)]
		for j := range ra {
			ro[j] = mod.Add(ra[j], rb[j], q)
		}
	})
}

// Sub sets out = a - b element-wise on rows [0..level].
func (r *Ring) Sub(a, b, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		q := r.Moduli[i].Q
		ra := a.Coeffs[i][lo:hi:hi]
		rb := b.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		rb, ro = rb[:len(ra)], ro[:len(ra)]
		for j := range ra {
			ro[j] = mod.Sub(ra[j], rb[j], q)
		}
	})
}

// Neg sets out = -a element-wise on rows [0..level].
func (r *Ring) Neg(a, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		q := r.Moduli[i].Q
		ra := a.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		ro = ro[:len(ra)]
		for j := range ra {
			ro[j] = mod.Neg(ra[j], q)
		}
	})
}

// MulCoeffs sets out = a ⊙ b element-wise on rows [0..level]. In the NTT
// domain this is polynomial multiplication. Both operands are in Montgomery
// form, so the fused REDC multiply lands the product back in Montgomery form
// — one 3-multiply reduction where the Barrett path paid roughly twice that.
func (r *Ring) MulCoeffs(a, b, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		mr := r.Moduli[i].MRed
		ra := a.Coeffs[i][lo:hi:hi]
		rb := b.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		rb, ro = rb[:len(ra)], ro[:len(ra)]
		for j := range ra {
			ro[j] = mr.Mul(ra[j], rb[j])
		}
	})
}

// MulCoeffsAndAdd sets out += a ⊙ b element-wise on rows [0..level]; this is
// the modular multiply-accumulate the paper's MMAU performs.
func (r *Ring) MulCoeffsAndAdd(a, b, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		mr := r.Moduli[i].MRed
		q := r.Moduli[i].Q
		ra := a.Coeffs[i][lo:hi:hi]
		rb := b.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		rb, ro = rb[:len(ra)], ro[:len(ra)]
		for j := range ra {
			ro[j] = mod.Add(ro[j], mr.Mul(ra[j], rb[j]), q)
		}
	})
}

// MulScalar sets out = a * s element-wise on rows [0..level] for a uint64
// scalar s (reduced per prime). Multiplying by a plain constant is
// form-preserving (a = xR gives a·s = x·s·R), so the kernel uses the cheaper
// Shoup discipline rather than lifting the scalar into Montgomery form —
// both yield the canonical residue of a·s, bit-identically.
func (r *Ring) MulScalar(a *Poly, s uint64, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		m := r.Moduli[i]
		q := m.Q
		w := m.BRed.Reduce(s)
		ws := mod.ShoupPrecomp(w, q)
		ra := a.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		ro = ro[:len(ra)]
		for j := range ra {
			ro[j] = mod.MulShoup(ra[j], w, ws, q)
		}
	})
}

// MulScalarInt64 multiplies rows [0..level] by a signed scalar given as
// int64 (used to fold plaintext constants into polynomials). Like MulScalar
// it is form-preserving and runs on the Shoup discipline.
func (r *Ring) MulScalarInt64(a *Poly, s int64, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		m := r.Moduli[i]
		q := m.Q
		var w uint64
		if s >= 0 {
			w = m.BRed.Reduce(uint64(s))
		} else {
			w = mod.Neg(m.BRed.Reduce(uint64(-s)), q)
		}
		ws := mod.ShoupPrecomp(w, q)
		ra := a.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		ro = ro[:len(ra)]
		for j := range ra {
			ro[j] = mod.MulShoup(ra[j], w, ws, q)
		}
	})
}

// GaloisElement returns 5^r mod 2N, the automorphism exponent implementing a
// rotation by r slots (Eq. 5 of the paper). Negative r rotates the other way.
// The power is computed by square-and-multiply (2N is a power of two, so the
// reduction is a mask), keeping large rotations O(log r) instead of O(r).
func (r *Ring) GaloisElement(rot int) uint64 {
	mask := uint64(2*r.N) - 1
	rot %= r.N / 2
	if rot < 0 {
		rot += r.N / 2
	}
	g := uint64(1)
	base := uint64(5)
	for e := uint64(rot); e > 0; e >>= 1 {
		if e&1 == 1 {
			g = (g * base) & mask
		}
		base = (base * base) & mask
	}
	return g
}

// GaloisConjugate is the automorphism exponent 2N-1 implementing complex
// conjugation of the slots.
func (r *Ring) GaloisConjugate() uint64 { return uint64(2*r.N - 1) }

// AutomorphismCoeff applies X -> X^g to rows [0..level] of p in the
// coefficient domain: coefficient i moves to i·g mod 2N, with a sign flip
// when the destination exponent exceeds N (since X^N = -1).
func (r *Ring) AutomorphismCoeff(p *Poly, g uint64, out *Poly, level int) {
	n := uint64(r.N)
	mask := 2*n - 1
	// Sharded over the *source* index: j ↦ j·g mod 2N is a bijection on
	// [0,N) up to sign, so tasks write disjoint destinations.
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		q := r.Moduli[i].Q
		src, dst := p.Coeffs[i], out.Coeffs[i]
		for j := uint64(lo); j < uint64(hi); j++ {
			e := (j * g) & mask
			if e < n {
				dst[e] = src[j]
			} else {
				dst[e-n] = mod.Neg(src[j], q)
			}
		}
	})
}

// autoIndexNTT returns (and caches) the permutation table for applying the
// automorphism X -> X^g directly in the NTT domain. Row index i of the output
// takes its value from row index table[i] of the input: in evaluation order,
// σ_g(A) evaluated at ψ^e equals A evaluated at ψ^(e·g mod 2N), and no signs
// change — which is why BTS can realize automorphism as a pure NoC
// permutation (Section 5.5). The cache is guarded by a read-write lock so
// several ciphertexts may be rotated concurrently (the serving runtime keeps
// many in flight on one ring); workers inside the limb fan-out only ever read
// the fully-built table.
func (r *Ring) autoIndexNTT(g uint64) []int {
	r.autoMu.RLock()
	t, ok := r.autoCache[g]
	r.autoMu.RUnlock()
	if ok {
		return t
	}
	n := r.N
	mask := uint64(2*n - 1)
	table := make([]int, n)
	for i := 0; i < n; i++ {
		e := uint64(r.evalOrderExponent(i))
		eg := (e * g) & mask      // odd, since e odd and g odd
		j := int((eg - 1) / 2)    // evaluation slot with exponent eg
		table[i] = r.brv[j&(n-1)] // back to storage order
	}
	r.autoMu.Lock()
	r.autoCache[g] = table
	r.autoMu.Unlock()
	return table
}

// AutomorphismNTT applies X -> X^g to rows [0..level] of p in the NTT domain.
func (r *Ring) AutomorphismNTT(p *Poly, g uint64, out *Poly, level int) {
	table := r.autoIndexNTT(g)
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		src, dst := p.Coeffs[i], out.Coeffs[i]
		for j := lo; j < hi; j++ {
			dst[j] = src[table[j]]
		}
	})
}

// AutoIndexNTT returns the cached NTT-domain permutation table of the
// automorphism X -> X^g: output slot j takes its value from input slot
// table[j], with no sign changes (see autoIndexNTT). The returned slice is
// shared and must be treated as read-only; it depends only on the ring degree
// and g, so rings of equal N produce identical tables. Callers feed it to
// MulGatherAndAddLazy to fuse the permutation into a multiply-accumulate
// instead of materializing the permuted polynomial.
func (r *Ring) AutoIndexNTT(g uint64) []int { return r.autoIndexNTT(g) }

// --- Samplers ---------------------------------------------------------------
//
// The samplers stay serial on purpose: they consume a deterministic PRNG
// stream whose draw order is part of the test vectors, so their output must
// not depend on the worker count.

// SampleUniform fills rows [0..level] with independent uniform residues.
func (r *Ring) SampleUniform(rng *rand.Rand, p *Poly, level int) {
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		row := p.Coeffs[i]
		for j := range row {
			row[j] = uniformUint64(rng, q)
		}
	}
}

// uniformUint64 draws a uniform value in [0,q) with rejection sampling.
func uniformUint64(rng *rand.Rand, q uint64) uint64 {
	max := ^uint64(0) - (^uint64(0) % q)
	for {
		v := rng.Uint64()
		if v < max {
			return v % q
		}
	}
}

// SampleTernarySparse fills coeffs with a ternary secret of exact Hamming
// weight h (±1 entries, the rest zero), the sparse-secret distribution used
// for bootstrappable CKKS instances, and writes it into rows [0..level].
func (r *Ring) SampleTernarySparse(rng *rand.Rand, p *Poly, h, level int) {
	coeffs := make([]int64, r.N)
	for placed := 0; placed < h; {
		idx := rng.Intn(r.N)
		if coeffs[idx] != 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			coeffs[idx] = 1
		} else {
			coeffs[idx] = -1
		}
		placed++
	}
	r.SetInt64Coeffs(p, coeffs, level)
}

// SampleGaussian fills rows [0..level] with a discrete Gaussian of standard
// deviation sigma truncated at 6σ (the LWE error distribution, Section 2.2).
func (r *Ring) SampleGaussian(rng *rand.Rand, p *Poly, sigma float64, level int) {
	bound := 6 * sigma
	coeffs := make([]int64, r.N)
	for j := range coeffs {
		for {
			v := rng.NormFloat64() * sigma
			if math.Abs(v) <= bound {
				coeffs[j] = int64(math.Round(v))
				break
			}
		}
	}
	r.SetInt64Coeffs(p, coeffs, level)
}

// MulByMonomialNTT multiplies rows [0..level] of p (NTT domain) by the
// monomial X^k, k taken mod 2N. Because NTT row j holds the evaluation at
// ψ^e(j), this is an exact element-wise multiplication by ψ^(e(j)·k) — no
// level or scale cost. CKKS uses X^(N/2), which acts as multiplication by i
// on every message slot (all slot exponents are ≡ 1 mod 4).
func (r *Ring) MulByMonomialNTT(p *Poly, k int, out *Poly, level int) {
	twoN := 2 * r.N
	k %= twoN
	if k < 0 {
		k += twoN
	}
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		m := r.Moduli[i]
		src, dst := p.Coeffs[i], out.Coeffs[i]
		for j := lo; j < hi; j++ {
			e := (r.evalOrderExponent(j) * k) % twoN
			var w uint64
			neg := false
			if e < r.N {
				w = m.psiRev[r.brv[e]]
			} else {
				w = m.psiRev[r.brv[e-r.N]]
				neg = true
			}
			// psiRev is in Montgomery form, so the REDC product is the true
			// ψ^e multiple in the operand's own form.
			v := m.MRed.Mul(src[j], w)
			if neg {
				v = mod.Neg(v, m.Q)
			}
			dst[j] = v
		}
	})
}
