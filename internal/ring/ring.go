// Package ring implements arithmetic in cyclotomic polynomial rings
// R_Q = Z_Q[X]/(X^N+1) represented in the residue number system (RNS), the
// polynomial substrate of Full-RNS CKKS (Section 2.2 of the BTS paper).
//
// A polynomial is stored as an N×(level+1) matrix of 64-bit residues, one row
// per prime modulus, exactly the layout the paper's Figure 4 assumes. The
// package provides the three access-pattern families the paper analyzes:
// residue-polynomial-wise functions (NTT, iNTT, automorphism), coefficient-wise
// functions (base conversion), and element-wise functions (modular add/mult).
//
// # Montgomery-form invariant
//
// Every residue this package stores in a Poly is kept in Montgomery form
// (M-form): the word held for a coefficient with true residue x is x·R mod q,
// R = 2^64 (mod.Montgomery). All compute kernels preserve the invariant —
// operand×operand multiplies (MulCoeffs, the Acc128 MAC path) REDC a product
// of two M-form words straight back to M-form, constant multiplies (twiddle
// factors, scalars, rescale and base-conversion tables) either carry M-form
// tables or exploit that a plain-constant product (aR)·w ≡ (aw)R preserves
// the operand's form, and Add/Sub/Neg/permutations are form-agnostic.
// Conversions happen only at the boundaries: SetInt64Coeffs/SetBigCoeffs
// convert in (MForm), PolyToBigCentered converts out (IForm), and the few
// kernels that need a true integer internally — base-conversion stage 1,
// whose centered digits cross moduli, and the rescale rounding lift — fold a
// single REDC into the pass that needs it. Uniformly random rows
// (SampleUniform) need no conversion at all: x ↦ x·R is a bijection on Z_q.
// Serialization converts at the wire boundary, so encoded bytes carry true
// canonical residues.
//
// # Kernel hierarchy
//
// The negacyclic transforms come in three tiers, each pinned bit-identical
// to the next by the test suite:
//
//   - Barrett reference (reference.go): plain-residue radix-2 loops with no
//     lazy reduction — the slow, obviously-correct oracle every production
//     kernel is compared against.
//   - Scalar Montgomery radix-2 (NTTRadix2/INTTRadix2 and the
//     nttStageRange/inttStageRange per-stage bodies): one REDC-lazy twiddle
//     multiply per butterfly, values held < 2q, one normalization pass at
//     the end. The per-stage form is what the sharded schedule dispatches.
//   - Fused radix-4 (nttRowRadix4/inttRowRadix4): two consecutive radix-2
//     layers merged into one pass over the row, four coefficients per
//     butterfly, twiddle triples interleaved per group
//     (mod.FusedNTTTwiddles), intermediates on a widened [0, 4q) lazy
//     window. This is the production row kernel.
//
// All kernels dispatch through a two-dimensional execution engine (Engine,
// see exec.go) that parallelizes across RNS limbs and, when the active limbs
// alone cannot occupy every worker, across contiguous coefficient blocks
// within each residue row — so speedup does not saturate at the limb count
// (level+1): low-level ciphertexts keep the whole pool busy, exactly as the
// paper's PE grid distributes both limbs and coefficients. Full rows take
// the fused radix-4 kernel; sharded rows run the per-stage radix-2 schedule
// with barriers between stages. Outputs are bit-identical to serial
// execution at every (worker, block) configuration.
package ring

import (
	"fmt"
	"math/big"
	"sync"

	"bts/internal/mod"
	"bts/internal/telemetry"
)

// Modulus bundles one RNS prime with every precomputed table needed for the
// negacyclic NTT in Montgomery form, plus the Barrett constant kept for the
// 128-bit accumulator reductions and true-residue scalar folds.
type Modulus struct {
	Q    uint64
	BRed mod.Barrett    // arbitrary 128-bit reduction (Acc128, BConv stage 2, scalar folds)
	MRed mod.Montgomery // fused REDC multiply, the hot-path reduction

	Psi    uint64 // primitive 2N-th root of unity (true residue)
	PsiInv uint64 // ψ^-1 mod q (true residue)
	NInv   uint64 // N^-1 mod q (true residue)

	// Twiddle tables in bit-reversed order (Longa–Naehrig layout), stored in
	// Montgomery form: psiRev[i] = [ψ^brv(i)]·R, psiInvRev[i] = [ψ^-brv(i)]·R.
	// A REDC butterfly multiply by an M-form twiddle maps x ↦ x·ψ^e mod q in
	// whichever form x is in, so the tables serve M-form operands without the
	// Shoup companion word per twiddle the Barrett-era layout carried.
	psiRev    []uint64
	psiInvRev []uint64
	nInvM     uint64 // N^-1 in Montgomery form, the iNTT scaling constant

	// Fused radix-4 twiddle triples (mod.FusedNTTTwiddles layout): entry k
	// interleaves the one first-layer and two second-layer twiddles of
	// merged butterfly group k, so the radix-4 row kernels stream one table
	// instead of gathering from two halves of psiRev/psiInvRev per group.
	psiFused    []uint64
	psiInvFused []uint64

	// refOnce lazily builds the plain-form Barrett reference twiddles used
	// only by the reference kernels (bit-identity tests, bench baselines).
	refOnce sync.Once
	ref     *refTables
}

// Ring is R_Q for a fixed degree N and a chain of prime moduli. CKKS uses two
// rings: one over the q-chain and one over the special p-chain (Section 2.5).
type Ring struct {
	N    int
	LogN int
	// Moduli is the full prime chain; operations accept a level parameter
	// selecting the active prefix Moduli[0..level].
	Moduli []*Modulus

	brv []int // bit-reversal permutation of [0,N)

	// Rescale tables, indexed [level][i] for i < level: the per-limb
	// constants of DivRoundByLastModulusNTT, precomputed once so the
	// sharded passes don't recompute modular inverses per coefficient
	// block. rescaleQInv[L][i] = (q_L mod q_i)^-1 mod q_i (with Shoup
	// companions) and rescaleHalf[L][i] = [q_L/2] mod q_i.
	rescaleQInv      [][]uint64
	rescaleQInvShoup [][]uint64
	rescaleHalf      [][]uint64

	autoCache map[uint64][]int // NTT-domain automorphism index tables
	autoMu    sync.RWMutex     // guards autoCache for concurrent evaluation

	// exec fans limb-indexed kernels out across worker goroutines; it
	// defaults to the shared DefaultEngine (see exec.go) and can be swapped
	// with SetEngine/SetWorkers. polyPool and rowPool back the
	// GetPoly/PutPoly zero-allocation scratch discipline; accPool holds the
	// 128-bit lazy MAC accumulators (see acc.go).
	exec     *Engine
	ownsExec bool // exec was created by SetWorkers and is closed on replace
	polyPool sync.Pool
	rowPool  sync.Pool
	accPool  sync.Pool

	// poolStats, when non-nil, counts scratch-pool traffic (hit/miss); every
	// hook is nil-guarded, see SetPoolStats.
	poolStats *telemetry.PoolStats
}

// NewRing constructs a ring of degree N=2^logN over the given prime chain.
// Every prime must satisfy q ≡ 1 (mod 2N) so that the negacyclic NTT exists.
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("ring: logN=%d outside supported range [2,17]", logN)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: empty prime chain")
	}
	n := 1 << logN
	r := &Ring{
		N:         n,
		LogN:      logN,
		Moduli:    make([]*Modulus, len(primes)),
		brv:       bitReversalPermutation(logN),
		autoCache: make(map[uint64][]int),
		exec:      DefaultEngine(),
	}
	seen := make(map[uint64]bool, len(primes))
	for i, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		m, err := newModulus(q, logN, r.brv)
		if err != nil {
			return nil, err
		}
		r.Moduli[i] = m
	}
	r.rescaleQInv = make([][]uint64, len(primes))
	r.rescaleQInvShoup = make([][]uint64, len(primes))
	r.rescaleHalf = make([][]uint64, len(primes))
	for lvl := 1; lvl < len(primes); lvl++ {
		qL := r.Moduli[lvl].Q
		r.rescaleQInv[lvl] = make([]uint64, lvl)
		r.rescaleQInvShoup[lvl] = make([]uint64, lvl)
		r.rescaleHalf[lvl] = make([]uint64, lvl)
		for i := 0; i < lvl; i++ {
			qi := r.Moduli[i].Q
			inv := mod.Inv(qL%qi, qi)
			r.rescaleQInv[lvl][i] = inv
			r.rescaleQInvShoup[lvl][i] = mod.ShoupPrecomp(inv, qi)
			r.rescaleHalf[lvl][i] = r.Moduli[i].BRed.Reduce(qL >> 1)
		}
	}
	return r, nil
}

func newModulus(q uint64, logN int, brv []int) (*Modulus, error) {
	if !mod.IsPrime(q) {
		return nil, fmt.Errorf("ring: modulus %d is not prime", q)
	}
	psi, err := mod.PrimitiveRootOfUnity(q, logN)
	if err != nil {
		return nil, err
	}
	n := 1 << logN
	m := &Modulus{
		Q:      q,
		BRed:   mod.NewBarrett(q),
		MRed:   mod.NewMontgomery(q),
		Psi:    psi,
		PsiInv: mod.Inv(psi, q),
		NInv:   mod.Inv(uint64(n), q),
	}
	m.nInvM = m.MRed.MForm(m.NInv)
	m.psiRev = make([]uint64, n)
	m.psiInvRev = make([]uint64, n)
	powPsi := uint64(1)
	powPsiInv := uint64(1)
	for i := 0; i < n; i++ {
		j := brv[i]
		m.psiRev[j] = m.MRed.MForm(powPsi)
		m.psiInvRev[j] = m.MRed.MForm(powPsiInv)
		powPsi = m.BRed.Mul(powPsi, m.Psi)
		powPsiInv = m.BRed.Mul(powPsiInv, m.PsiInv)
	}
	m.psiFused = mod.FusedNTTTwiddles(m.psiRev)
	m.psiInvFused = mod.FusedINTTTwiddles(m.psiInvRev)
	return m, nil
}

func bitReversalPermutation(logN int) []int {
	n := 1 << logN
	brv := make([]int, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < logN; b++ {
			r |= ((i >> b) & 1) << (logN - 1 - b)
		}
		brv[i] = r
	}
	return brv
}

// MaxLevel is the highest level (index of the last prime) this ring supports.
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// ModulusProduct returns Π_{i=0..level} q_i as a big integer.
func (r *Ring) ModulusProduct(level int) *big.Int {
	p := big.NewInt(1)
	for i := 0; i <= level; i++ {
		p.Mul(p, new(big.Int).SetUint64(r.Moduli[i].Q))
	}
	return p
}

// Poly is an RNS polynomial: Coeffs[i][j] is the j-th coefficient's residue
// modulo Moduli[i]. Rows beyond the active level are scratch space.
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial with nPrimes residue rows backed by a
// single contiguous buffer (the layout the paper's PE grid distributes).
func (r *Ring) NewPoly(nPrimes int) *Poly {
	backing := make([]uint64, nPrimes*r.N)
	p := &Poly{Coeffs: make([][]uint64, nPrimes)}
	for i := range p.Coeffs {
		p.Coeffs[i] = backing[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return p
}

// NewPolyLevel allocates a zero polynomial usable up to the given level.
func (r *Ring) NewPolyLevel(level int) *Poly { return r.NewPoly(level + 1) }

// Levels returns the number of residue rows minus one.
func (p *Poly) Levels() int { return len(p.Coeffs) - 1 }

// CopyLevel copies src rows [0..level] into dst.
func (r *Ring) CopyLevel(dst, src *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		copy(dst.Coeffs[i][lo:hi], src.Coeffs[i][lo:hi])
	})
}

// CopyNew returns a deep copy of p truncated/extended to level+1 rows.
func (r *Ring) CopyNew(p *Poly, level int) *Poly {
	out := r.NewPolyLevel(level)
	r.CopyLevel(out, p, level)
	return out
}

// Zero clears rows [0..level].
func (r *Ring) Zero(p *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		row := p.Coeffs[i][lo:hi:hi]
		for j := range row {
			row[j] = 0
		}
	})
}

// Equal reports whether a and b agree on rows [0..level].
func (r *Ring) Equal(a, b *Poly, level int) bool {
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// PolyToBigCentered reconstructs the coefficients of p (rows 0..level, coefficient
// domain) as centered big integers in (-Q/2, Q/2] via the CRT (Eq. 1).
func (r *Ring) PolyToBigCentered(p *Poly, level int) []*big.Int {
	q := r.ModulusProduct(level)
	half := new(big.Int).Rsh(q, 1)
	// CRT basis: e_i = (Q/q_i) * [(Q/q_i)^-1 mod q_i]
	basis := make([]*big.Int, level+1)
	for i := 0; i <= level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		qhat := new(big.Int).Quo(q, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qhat, qi), qi)
		basis[i] = new(big.Int).Mul(qhat, inv)
	}
	out := make([]*big.Int, r.N)
	tmp := new(big.Int)
	for j := 0; j < r.N; j++ {
		acc := new(big.Int)
		for i := 0; i <= level; i++ {
			tmp.SetUint64(r.Moduli[i].MRed.IForm(p.Coeffs[i][j]))
			tmp.Mul(tmp, basis[i])
			acc.Add(acc, tmp)
		}
		acc.Mod(acc, q)
		if acc.Cmp(half) > 0 {
			acc.Sub(acc, q)
		}
		out[j] = acc
	}
	return out
}

// SetBigCoeffs writes centered (or any) big-integer coefficients into p's
// rows [0..level], reducing each modulo the corresponding prime and
// converting into Montgomery form (the in-boundary of the M-form invariant).
func (r *Ring) SetBigCoeffs(p *Poly, coeffs []*big.Int, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		tmp := new(big.Int)
		mr := r.Moduli[i].MRed
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		for j := lo; j < hi; j++ {
			tmp.Mod(coeffs[j], qi)
			p.Coeffs[i][j] = mr.MForm(tmp.Uint64())
		}
	})
}

// SetInt64Coeffs writes signed 64-bit coefficients into rows [0..level] in
// Montgomery form.
func (r *Ring) SetInt64Coeffs(p *Poly, coeffs []int64, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		q := r.Moduli[i].Q
		mr := r.Moduli[i].MRed
		row := p.Coeffs[i]
		for j := lo; j < hi; j++ {
			c := coeffs[j]
			var v uint64
			if c >= 0 {
				v = uint64(c) % q
			} else {
				v = q - (uint64(-c) % q)
				if v == q {
					v = 0
				}
			}
			row[j] = mr.MForm(v)
		}
	})
}

// MForm converts rows [0..level] of a true-residue polynomial into Montgomery
// form. Compute kernels assume their operands are already in M-form; this is
// for the wire/test boundaries, where true canonical residues enter the ring.
func (r *Ring) MForm(a, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		mr := r.Moduli[i].MRed
		ra := a.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		ro = ro[:len(ra)]
		for j := range ra {
			ro[j] = mr.MForm(ra[j])
		}
	})
}

// IForm converts rows [0..level] of a Montgomery-form polynomial back to true
// canonical residues (the out-boundary of the M-form invariant).
func (r *Ring) IForm(a, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		mr := r.Moduli[i].MRed
		ra := a.Coeffs[i][lo:hi:hi]
		ro := out.Coeffs[i][lo:hi:hi]
		ro = ro[:len(ra)]
		for j := range ra {
			ro[j] = mr.IForm(ra[j])
		}
	})
}
