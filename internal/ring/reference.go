package ring

import "bts/internal/mod"

// Barrett reference kernels.
//
// These are the pre-Montgomery implementations of the ring's multiplicative
// hot paths, kept as the plain-form reference the Montgomery kernels are
// measured and verified against: the bit-identity tests check that
// IForm(kernel_M(MForm(x))) reproduces kernel_Barrett(x) exactly, and the
// table2 bench reports the Montgomery speedup relative to these loops. They
// operate on true-residue (non-Montgomery) polynomials and use per-multiply
// Barrett reduction throughout; nothing on the serving path calls them.

// refTables holds the plain-form twiddle tables the reference transforms
// need, derived lazily from the Montgomery tables on first use so the memory
// is only paid by tests and benchmarks.
type refTables struct {
	psiRev    []uint64
	psiInvRev []uint64
}

func (m *Modulus) refTwiddles() *refTables {
	m.refOnce.Do(func() {
		rt := &refTables{
			psiRev:    make([]uint64, len(m.psiRev)),
			psiInvRev: make([]uint64, len(m.psiInvRev)),
		}
		for i := range m.psiRev {
			rt.psiRev[i] = m.MRed.IForm(m.psiRev[i])
			rt.psiInvRev[i] = m.MRed.IForm(m.psiInvRev[i])
		}
		m.ref = rt
	})
	return m.ref
}

// NTTBarrett is the Barrett-reduction reference forward transform on plain
// (true-residue) rows [0..level] of p, fully reduced at every butterfly.
func (r *Ring) NTTBarrett(p *Poly, level int) {
	r.exec.Run(level+1, func(i int) {
		m := r.Moduli[i]
		rt := m.refTwiddles()
		a := p.Coeffs[i]
		n := r.N
		q := m.Q
		br := m.BRed
		t := n
		for mLen := 1; mLen < n; mLen <<= 1 {
			t >>= 1
			for g := 0; g < mLen; g++ {
				w := rt.psiRev[mLen+g]
				base := 2 * g * t
				for j := base; j < base+t; j++ {
					u := a[j]
					v := br.Mul(a[j+t], w)
					a[j] = mod.Add(u, v, q)
					a[j+t] = mod.Sub(u, v, q)
				}
			}
		}
	})
}

// INTTBarrett is the Barrett-reduction reference inverse transform on plain
// rows [0..level] of p.
func (r *Ring) INTTBarrett(p *Poly, level int) {
	r.exec.Run(level+1, func(i int) {
		m := r.Moduli[i]
		rt := m.refTwiddles()
		a := p.Coeffs[i]
		n := r.N
		q := m.Q
		br := m.BRed
		t := 1
		for mLen := n; mLen > 1; mLen >>= 1 {
			j1 := 0
			h := mLen >> 1
			for g := 0; g < h; g++ {
				w := rt.psiInvRev[h+g]
				for j := j1; j < j1+t; j++ {
					u := a[j]
					v := a[j+t]
					a[j] = mod.Add(u, v, q)
					a[j+t] = br.Mul(mod.Sub(u, v, q), w)
				}
				j1 += 2 * t
			}
			t <<= 1
		}
		for j := 0; j < n; j++ {
			a[j] = br.Mul(a[j], m.NInv)
		}
	})
}

// MulCoeffsBarrett is the Barrett reference for MulCoeffs on plain operands.
func (r *Ring) MulCoeffsBarrett(a, b, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		br := r.Moduli[i].BRed
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := lo; j < hi; j++ {
			ro[j] = br.Mul(ra[j], rb[j])
		}
	})
}

// MulCoeffsAndAddBarrett is the Barrett reference for MulCoeffsAndAdd on
// plain operands.
func (r *Ring) MulCoeffsAndAddBarrett(a, b, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		br := r.Moduli[i].BRed
		q := r.Moduli[i].Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := lo; j < hi; j++ {
			ro[j] = mod.Add(ro[j], br.Mul(ra[j], rb[j]), q)
		}
	})
}

// MulScalarBarrett is the Barrett+Shoup reference for MulScalar on plain
// operands (the constant-multiply discipline the ring used before the
// Montgomery refactor).
func (r *Ring) MulScalarBarrett(a *Poly, s uint64, out *Poly, level int) {
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		m := r.Moduli[i]
		w := m.BRed.Reduce(s)
		ws := mod.ShoupPrecomp(w, m.Q)
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := lo; j < hi; j++ {
			ro[j] = mod.MulShoup(ra[j], w, ws, m.Q)
		}
	})
}
