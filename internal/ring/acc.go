package ring

import (
	"math/big"
	"math/bits"
)

// Acc128 is an extended-precision element-wise accumulator: one row per RNS
// limb, each coefficient held as an unreduced 128-bit sum. A row is 2N words
// stored planar — low words in [0,N), high words in [N,2N) — so the MAC
// kernels index three equal-length views with the same induction variable and
// the compiler eliminates every bounds check in the inner loops (the
// interleaved (lo,hi) pair layout defeated the prove pass on the 2j/2j+1
// accesses). It implements the lazy multiply-accumulate
// discipline of the hottest inner loops — sum many residue products without
// intermediate modular reduction, then reduce once per coefficient with a
// single Barrett pass (mod.Reduce128 accepts arbitrary 128-bit inputs).
//
// Overflow bound: a sum of T products of residues below q stays under 2^128
// while T·(q-1)² < 2^128 — 2^18 terms for 55-bit moduli, 2^38 for 45-bit.
// Callers accumulating an input-dependent number of terms must chunk at
// LazyMACBudget, which evaluates this bound for the ring's widest modulus.
//
// Like Poly scratch, accumulators come from a per-ring pool: borrow with
// GetAcc, return with PutAcc.
type Acc128 struct {
	Rows [][]uint64
}

// LazyMACBudget returns the largest number of unreduced residue products
// (each below the ring's widest modulus) that can be summed into an Acc128
// without overflowing 128 bits, capped at 2^30. It is at least 16 for any
// supported modulus (q < 2^62).
func (r *Ring) LazyMACBudget() int {
	maxQ := uint64(0)
	for _, m := range r.Moduli {
		if m.Q > maxQ {
			maxQ = m.Q
		}
	}
	sq := new(big.Int).SetUint64(maxQ - 1)
	sq.Mul(sq, sq)
	budget := new(big.Int).Lsh(big.NewInt(1), 128)
	budget.Sub(budget, big.NewInt(1))
	budget.Quo(budget, sq)
	if budget.BitLen() > 30 {
		return 1 << 30
	}
	return int(budget.Int64())
}

// GetAcc borrows a zeroed accumulator usable up to the given level from the
// ring's pool. Return it with PutAcc.
func (r *Ring) GetAcc(level int) *Acc128 {
	a, _ := r.accPool.Get().(*Acc128)
	if a == nil {
		backing := make([]uint64, len(r.Moduli)*2*r.N)
		a = &Acc128{Rows: make([][]uint64, len(r.Moduli))}
		for i := range a.Rows {
			a.Rows[i] = backing[i*2*r.N : (i+1)*2*r.N : (i+1)*2*r.N]
		}
	}
	r.exec.RunBlocks(level+1, 2*r.N, func(i, lo, hi int) {
		row := a.Rows[i][lo:hi:hi]
		for j := range row {
			row[j] = 0
		}
	})
	return a
}

// PutAcc returns an accumulator borrowed with GetAcc to the pool.
func (r *Ring) PutAcc(a *Acc128) {
	if a == nil {
		return
	}
	if len(a.Rows) != len(r.Moduli) {
		panic("ring: PutAcc of an accumulator not sized to the full chain")
	}
	r.accPool.Put(a)
}

// MulCoeffsAndAddLazy sets acc += a ⊙ b element-wise on rows [0..level]
// without modular reduction: each 128-bit product is added into the
// accumulator with carry. This is the MAC kernel of the double-hoisted
// linear transform, where one giant step folds every diagonal product into
// extended-basis accumulators before a single reduction + ModDown.
func (r *Ring) MulCoeffsAndAddLazy(a, b *Poly, acc *Acc128, level int) {
	n := r.N
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		ra := a.Coeffs[i][lo:hi:hi]
		rb := b.Coeffs[i][lo:hi:hi]
		rlo := acc.Rows[i][lo:hi:hi]
		rhi := acc.Rows[i][n+lo : n+hi : n+hi]
		rb, rlo, rhi = rb[:len(ra)], rlo[:len(ra)], rhi[:len(ra)]
		for j := range ra {
			pHi, pLo := bits.Mul64(ra[j], rb[j])
			var c uint64
			rlo[j], c = bits.Add64(rlo[j], pLo, 0)
			rhi[j], _ = bits.Add64(rhi[j], pHi, c)
		}
	})
}

// MulGatherAndAddLazy sets acc += σ(a) ⊙ b element-wise on rows [0..level]
// without modular reduction, where σ(a)[j] = a[table[j]] is the NTT-domain
// automorphism given by its index table (AutoIndexNTT). Fusing the gather
// into the MAC saves the full read-modify-write pass over the operand that a
// separate AutomorphismNTT would cost — the hoisted baby-step optimization of
// the double-hoisted linear transform, where every decomposition slice would
// otherwise be permuted into scratch before each accumulation.
func (r *Ring) MulGatherAndAddLazy(a *Poly, table []int, b *Poly, acc *Acc128, level int) {
	n := r.N
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		ra := a.Coeffs[i]
		rb := b.Coeffs[i][lo:hi:hi]
		tb := table[lo:hi:hi]
		rlo := acc.Rows[i][lo:hi:hi]
		rhi := acc.Rows[i][n+lo : n+hi : n+hi]
		tb, rlo, rhi = tb[:len(rb)], rlo[:len(rb)], rhi[:len(rb)]
		for j := range rb {
			pHi, pLo := bits.Mul64(ra[tb[j]], rb[j])
			var c uint64
			rlo[j], c = bits.Add64(rlo[j], pLo, 0)
			rhi[j], _ = bits.Add64(rhi[j], pHi, c)
		}
	})
}

// ReduceAcc reduces acc into out on rows [0..level]: one Barrett reduction
// plus one REDC per coefficient, yielding exactly the canonical residues the
// equivalent chain of reduced multiply-accumulates would have produced (the
// congruence class of a sum does not depend on when reductions happen). The
// accumulated products of two Montgomery-form operands each carry R², so
// after the Barrett pass folds the 128-bit sum to (Σ aᵢbᵢ)·R² mod q, a
// single REDC strips one R and lands the result in Montgomery form — the
// whole conversion cost amortized over every product summed into the
// accumulator.
func (r *Ring) ReduceAcc(acc *Acc128, out *Poly, level int) {
	n := r.N
	r.exec.RunBlocks(level+1, r.N, func(i, lo, hi int) {
		br := r.Moduli[i].BRed
		mr := r.Moduli[i].MRed
		rlo := acc.Rows[i][lo:hi:hi]
		rhi := acc.Rows[i][n+lo : n+hi : n+hi]
		ro := out.Coeffs[i][lo:hi:hi]
		rhi, ro = rhi[:len(rlo)], ro[:len(rlo)]
		for j := range rlo {
			ro[j] = mr.IForm(br.Reduce128(rhi[j], rlo[j]))
		}
	})
}
