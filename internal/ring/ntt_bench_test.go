package ring

import (
	"fmt"
	"math/rand"
	"testing"

	"bts/internal/mod"
)

// Kernel-level NTT benchmarks at the Table 2 instance's shape: single rows of
// N=2^17 coefficients under the chain's two prime widths (50-bit working
// primes, 60-bit bootstrap-section primes). They time the scalar Montgomery
// radix-2 kernel against the fused radix-4 kernel directly — serial engine,
// one row, no dispatch — so a fused-kernel regression shows up in
// `go test -bench NTTKernel ./internal/ring` without a full btsbench table2
// run. b.SetBytes reports the algorithmic stream rate (one load + one store
// per coefficient per radix-2 stage equivalent), making the fused kernels'
// traffic savings visible as a higher MB/s at equal algorithmic bytes.

func benchNTTKernel(b *testing.B, logN, logQ int, fn func(r *Ring, p *Poly)) {
	primes, err := mod.GenerateNTTPrimes(logQ, logN, 1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		b.Fatal(err)
	}
	r.SetEngine(nil) // serial: time the kernel, not the dispatch
	rng := rand.New(rand.NewSource(42))
	p := r.NewPolyLevel(0)
	r.SampleUniform(rng, p, 0)
	b.SetBytes(int64(16 * r.N * logN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(r, p)
	}
}

func BenchmarkNTTKernel(b *testing.B) {
	for _, logQ := range []int{50, 60} {
		for _, k := range []struct {
			name string
			fwd  func(r *Ring, p *Poly)
			inv  func(r *Ring, p *Poly)
		}{
			{"radix2",
				func(r *Ring, p *Poly) { r.NTTRadix2(p, 0) },
				func(r *Ring, p *Poly) { r.INTTRadix2(p, 0) }},
			{"radix4",
				func(r *Ring, p *Poly) { r.NTT(p, 0) },
				func(r *Ring, p *Poly) { r.INTT(p, 0) }},
		} {
			b.Run(fmt.Sprintf("NTT/%s/logN=17/q=%d", k.name, logQ), func(b *testing.B) {
				benchNTTKernel(b, 17, logQ, k.fwd)
			})
			b.Run(fmt.Sprintf("INTT/%s/logN=17/q=%d", k.name, logQ), func(b *testing.B) {
				benchNTTKernel(b, 17, logQ, k.inv)
			})
		}
	}
}
