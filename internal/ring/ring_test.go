package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"bts/internal/mod"
)

func testRing(t testing.TB, logN, nPrimes int) *Ring {
	t.Helper()
	primes, err := mod.GenerateNTTPrimes(45, logN, nPrimes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(1, []uint64{97}); err == nil {
		t.Fatal("expected error for logN=1")
	}
	if _, err := NewRing(4, nil); err == nil {
		t.Fatal("expected error for empty chain")
	}
	if _, err := NewRing(4, []uint64{97, 97}); err == nil {
		t.Fatal("expected error for duplicate modulus")
	}
	if _, err := NewRing(4, []uint64{96}); err == nil {
		t.Fatal("expected error for composite modulus")
	}
	// 65537 ≡ 1 mod 32 holds; but a prime not ≡ 1 mod 2N must fail.
	if _, err := NewRing(4, []uint64{91393*0 + 23}); err == nil {
		t.Fatal("expected error for prime without 2N-th root of unity")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	for _, logN := range []int{4, 8, 11} {
		r := testRing(t, logN, 3)
		rng := rand.New(rand.NewSource(7))
		p := r.NewPolyLevel(2)
		r.SampleUniform(rng, p, 2)
		orig := r.CopyNew(p, 2)
		r.NTT(p, 2)
		if r.Equal(p, orig, 2) {
			t.Fatal("NTT left polynomial unchanged (degenerate transform)")
		}
		r.INTT(p, 2)
		if !r.Equal(p, orig, 2) {
			t.Fatalf("logN=%d: INTT(NTT(p)) != p", logN)
		}
	}
}

func TestNTTLinearityProperty(t *testing.T) {
	r := testRing(t, 8, 1)
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		localRng := rand.New(rand.NewSource(seed ^ rng.Int63()))
		a := r.NewPolyLevel(0)
		b := r.NewPolyLevel(0)
		r.SampleUniform(localRng, a, 0)
		r.SampleUniform(localRng, b, 0)
		// NTT(a+b) == NTT(a)+NTT(b)
		sum := r.NewPolyLevel(0)
		r.Add(a, b, sum, 0)
		r.NTT(sum, 0)
		r.NTT(a, 0)
		r.NTT(b, 0)
		sum2 := r.NewPolyLevel(0)
		r.Add(a, b, sum2, 0)
		return r.Equal(sum, sum2, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// schoolbookNegacyclic computes a*b mod (X^N+1, q) in O(N^2).
func schoolbookNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := mod.Mul(a[i], b[j], q)
			k := i + j
			if k < n {
				out[k] = mod.Add(out[k], p, q)
			} else {
				out[k-n] = mod.Sub(out[k-n], p, q)
			}
		}
	}
	return out
}

func TestNTTMultiplicationMatchesSchoolbook(t *testing.T) {
	r := testRing(t, 6, 2)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		a := r.NewPolyLevel(1)
		b := r.NewPolyLevel(1)
		r.SampleUniform(rng, a, 1)
		r.SampleUniform(rng, b, 1)
		// The schoolbook reference multiplies true residues, so compare in
		// the true domain: strip the Montgomery form off the inputs for the
		// oracle and off the product for the check.
		aT := r.CopyNew(a, 1)
		bT := r.CopyNew(b, 1)
		r.IForm(aT, aT, 1)
		r.IForm(bT, bT, 1)
		var want [][]uint64
		for i := 0; i <= 1; i++ {
			want = append(want, schoolbookNegacyclic(aT.Coeffs[i], bT.Coeffs[i], r.Moduli[i].Q))
		}
		r.NTT(a, 1)
		r.NTT(b, 1)
		c := r.NewPolyLevel(1)
		r.MulCoeffs(a, b, c, 1)
		r.INTT(c, 1)
		r.IForm(c, c, 1)
		for i := 0; i <= 1; i++ {
			for j := 0; j < r.N; j++ {
				if c.Coeffs[i][j] != want[i][j] {
					t.Fatalf("prime %d coeff %d: got %d want %d", i, j, c.Coeffs[i][j], want[i][j])
				}
			}
		}
	}
}

func TestNTTEvaluationOrder(t *testing.T) {
	// Verifies the invariant evalOrderExponent documents: after NTT, row
	// index i holds A(ψ^(2·brv(i)+1)). The automorphism permutation tables
	// depend on this.
	r := testRing(t, 5, 1)
	m := r.Moduli[0]
	rng := rand.New(rand.NewSource(10))
	p := r.NewPolyLevel(0)
	r.SampleUniform(rng, p, 0)
	coeffs := append([]uint64(nil), p.Coeffs[0]...)
	r.NTT(p, 0)
	for i := 0; i < r.N; i++ {
		e := uint64(r.evalOrderExponent(i))
		x := mod.Pow(m.Psi, e, m.Q)
		// Horner evaluation of the original polynomial at ψ^e.
		acc := uint64(0)
		for j := r.N - 1; j >= 0; j-- {
			acc = mod.Add(mod.Mul(acc, x, m.Q), coeffs[j], m.Q)
		}
		if p.Coeffs[0][i] != acc {
			t.Fatalf("NTT output order mismatch at index %d: got %d want %d", i, p.Coeffs[0][i], acc)
		}
	}
}

func TestAutomorphismNTTMatchesCoeff(t *testing.T) {
	r := testRing(t, 7, 2)
	rng := rand.New(rand.NewSource(11))
	for _, g := range []uint64{5, 25, r.GaloisElement(3), r.GaloisElement(-1), r.GaloisConjugate()} {
		p := r.NewPolyLevel(1)
		r.SampleUniform(rng, p, 1)

		// Path 1: coefficient-domain automorphism, then NTT.
		want := r.NewPolyLevel(1)
		r.AutomorphismCoeff(p, g, want, 1)
		r.NTT(want, 1)

		// Path 2: NTT, then NTT-domain permutation.
		got := r.NewPolyLevel(1)
		pn := r.CopyNew(p, 1)
		r.NTT(pn, 1)
		r.AutomorphismNTT(pn, g, got, 1)

		if !r.Equal(got, want, 1) {
			t.Fatalf("automorphism mismatch for galois element %d", g)
		}
	}
}

func TestAutomorphismComposition(t *testing.T) {
	// σ_g1 ∘ σ_g2 = σ_{g1·g2 mod 2N} in the coefficient domain.
	r := testRing(t, 6, 1)
	rng := rand.New(rand.NewSource(12))
	p := r.NewPolyLevel(0)
	r.SampleUniform(rng, p, 0)
	g1, g2 := r.GaloisElement(2), r.GaloisElement(5)
	g12 := (g1 * g2) & uint64(2*r.N-1)

	t1 := r.NewPolyLevel(0)
	t2 := r.NewPolyLevel(0)
	r.AutomorphismCoeff(p, g2, t1, 0)
	r.AutomorphismCoeff(t1, g1, t2, 0)

	want := r.NewPolyLevel(0)
	r.AutomorphismCoeff(p, g12, want, 0)
	if !r.Equal(t2, want, 0) {
		t.Fatal("automorphism composition failed")
	}
}

func TestGaloisElement(t *testing.T) {
	r := testRing(t, 6, 1)
	if g := r.GaloisElement(0); g != 1 {
		t.Fatalf("GaloisElement(0)=%d want 1", g)
	}
	if g := r.GaloisElement(1); g != 5 {
		t.Fatalf("GaloisElement(1)=%d want 5", g)
	}
	// Rotation by r then by -r must compose to identity.
	g1, g2 := r.GaloisElement(7), r.GaloisElement(-7)
	if (g1*g2)&(uint64(2*r.N)-1) != 1 {
		t.Fatal("GaloisElement(7)*GaloisElement(-7) != 1 mod 2N")
	}
}

func TestPolyBigRoundTrip(t *testing.T) {
	r := testRing(t, 5, 3)
	rng := rand.New(rand.NewSource(13))
	coeffs := make([]*big.Int, r.N)
	q := r.ModulusProduct(2)
	half := new(big.Int).Rsh(q, 1)
	for j := range coeffs {
		v := new(big.Int).Rand(rng, q)
		v.Sub(v, half)
		coeffs[j] = v
	}
	p := r.NewPolyLevel(2)
	r.SetBigCoeffs(p, coeffs, 2)
	back := r.PolyToBigCentered(p, 2)
	for j := range coeffs {
		if coeffs[j].Cmp(back[j]) != 0 {
			t.Fatalf("coeff %d: got %v want %v", j, back[j], coeffs[j])
		}
	}
}

func TestSetInt64Coeffs(t *testing.T) {
	r := testRing(t, 4, 2)
	coeffs := make([]int64, r.N)
	coeffs[0] = -3
	coeffs[1] = 7
	coeffs[2] = -1 << 40
	p := r.NewPolyLevel(1)
	r.SetInt64Coeffs(p, coeffs, 1)
	back := r.PolyToBigCentered(p, 1)
	for j, c := range coeffs {
		if back[j].Int64() != c {
			t.Fatalf("coeff %d: got %v want %d", j, back[j], c)
		}
	}
}

func TestBasisExtenderCongruenceAndOverflow(t *testing.T) {
	// The fast BConv of Eq. 9 with centered stage-2 representatives returns
	// a value congruent to x mod Q with magnitude below nf·Q/2 (each of the
	// nf terms is at most q_j/2·(Q/q_j) = Q/2 in magnitude); key-switching
	// is designed to absorb the α·Q overflow (Section 4.1). The target base
	// must dominate the source base for the result to be representable, as
	// in ModUp (P ≥ Q_j).
	rQ := testRing(t, 5, 2) // Q ≈ 2^90
	primesP, err := mod.GenerateNTTPrimes(55, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := NewRing(5, primesP) // P ≈ 2^220 ≫ nf·Q
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBasisExtender(rQ.Moduli, rP.Moduli)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	in := rQ.NewPolyLevel(1)
	rQ.SampleUniform(rng, in, 1)
	q := rQ.ModulusProduct(1)
	vals := rQ.PolyToBigCentered(in, 1)
	out := rP.NewPolyLevel(3)
	be.Convert(in.Coeffs, out.Coeffs)
	back := rP.PolyToBigCentered(out, 3)
	nf := int64(len(rQ.Moduli))
	diff := new(big.Int)
	for j := range vals {
		diff.Sub(back[j], vals[j])
		diff.Mod(diff, q)
		if diff.Sign() != 0 {
			t.Fatalf("coeff %d: BConv result not congruent mod Q", j)
		}
		// |back| ≤ nf·Q/2 with the centered representatives.
		bound := new(big.Int).Mul(q, big.NewInt(nf))
		bound.Rsh(bound, 1)
		if new(big.Int).Abs(back[j]).Cmp(bound) > 0 {
			t.Fatalf("coeff %d: BConv overflow too large: %v", j, back[j])
		}
	}
}

func TestAcc128MatchesEagerMAC(t *testing.T) {
	// A chain of lazy 128-bit multiply-accumulates reduced once must equal
	// the same chain of reduced MACs: the congruence class of the sum does
	// not depend on when reductions happen, and both paths end on the
	// canonical representative.
	r := testRing(t, 6, 4)
	lvl := r.MaxLevel()
	rng := rand.New(rand.NewSource(38))
	const terms = 9
	as := make([]*Poly, terms)
	bs := make([]*Poly, terms)
	for i := range as {
		as[i] = r.NewPolyLevel(lvl)
		bs[i] = r.NewPolyLevel(lvl)
		r.SampleUniform(rng, as[i], lvl)
		r.SampleUniform(rng, bs[i], lvl)
	}
	want := r.NewPolyLevel(lvl)
	for i := range as {
		r.MulCoeffsAndAdd(as[i], bs[i], want, lvl)
	}
	acc := r.GetAcc(lvl)
	for i := range as {
		r.MulCoeffsAndAddLazy(as[i], bs[i], acc, lvl)
	}
	got := r.NewPolyLevel(lvl)
	r.ReduceAcc(acc, got, lvl)
	r.PutAcc(acc)
	if !r.Equal(got, want, lvl) {
		t.Fatal("lazy 128-bit MAC chain disagrees with eager modular MACs")
	}
}

func TestMulGatherAndAddLazyMatchesPermuteThenMAC(t *testing.T) {
	// The fused gather-MAC must equal materializing the NTT-domain
	// automorphism first and then lazily accumulating — at several worker
	// counts, since the gather reads non-contiguous source indices across
	// coefficient-block boundaries.
	for _, workers := range []int{0, 3} {
		r := testRing(t, 6, 4)
		r.SetEngine(NewEngine(workers))
		lvl := r.MaxLevel()
		rng := rand.New(rand.NewSource(39))
		a := r.NewPolyLevel(lvl)
		b := r.NewPolyLevel(lvl)
		r.SampleUniform(rng, a, lvl)
		r.SampleUniform(rng, b, lvl)
		for _, g := range []uint64{r.GaloisElement(3), r.GaloisElement(-1), r.GaloisConjugate()} {
			perm := r.NewPolyLevel(lvl)
			r.AutomorphismNTT(a, g, perm, lvl)
			accWant := r.GetAcc(lvl)
			r.MulCoeffsAndAddLazy(perm, b, accWant, lvl)
			want := r.NewPolyLevel(lvl)
			r.ReduceAcc(accWant, want, lvl)
			r.PutAcc(accWant)

			accGot := r.GetAcc(lvl)
			r.MulGatherAndAddLazy(a, r.AutoIndexNTT(g), b, accGot, lvl)
			got := r.NewPolyLevel(lvl)
			r.ReduceAcc(accGot, got, lvl)
			r.PutAcc(accGot)
			if !r.Equal(got, want, lvl) {
				t.Fatalf("workers=%d g=%d: fused gather-MAC disagrees with permute-then-MAC", workers, g)
			}
		}
	}
}

func TestBasisExtenderNegationEquivariance(t *testing.T) {
	// The hoisted key-switch permutes decomposed slices with the signed
	// automorphism permutation instead of re-decomposing the permuted
	// ciphertext; the two orders agree bit for bit only because the centered
	// BConv satisfies Convert(-x) = -Convert(x) residue for residue.
	rQ := testRing(t, 6, 3)
	primesP, err := mod.GenerateNTTPrimes(55, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := NewRing(6, primesP)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBasisExtender(rQ.Moduli, rP.Moduli)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	lvl := rQ.MaxLevel()
	in := rQ.NewPolyLevel(lvl)
	rQ.SampleUniform(rng, in, lvl)
	// Force a few exact-zero residue columns to hit the f(0)=0 edge case.
	for i := 0; i <= lvl; i++ {
		in.Coeffs[i][3] = 0
		in.Coeffs[i][7] = 0
	}
	neg := rQ.NewPolyLevel(lvl)
	rQ.Neg(in, neg, lvl)
	lp := rP.MaxLevel()
	out := rP.NewPolyLevel(lp)
	outNeg := rP.NewPolyLevel(lp)
	be.Convert(in.Coeffs, out.Coeffs)
	be.Convert(neg.Coeffs, outNeg.Coeffs)
	rP.Neg(outNeg, outNeg, lp)
	if !rP.Equal(out, outNeg, lp) {
		t.Fatal("Convert(-x) != -Convert(x): centered BConv is not negation-equivariant")
	}
}

func TestBasisExtenderErrors(t *testing.T) {
	r := testRing(t, 4, 2)
	if _, err := NewBasisExtender(nil, r.Moduli); err == nil {
		t.Fatal("expected error for empty source basis")
	}
	if _, err := NewBasisExtender(r.Moduli, r.Moduli); err == nil {
		t.Fatal("expected error for overlapping bases")
	}
}

func TestDivRoundByLastModulusNTT(t *testing.T) {
	r := testRing(t, 5, 3)
	rng := rand.New(rand.NewSource(16))
	level := 2
	p := r.NewPolyLevel(level)
	r.SampleUniform(rng, p, level)
	vals := r.PolyToBigCentered(p, level)
	qL := new(big.Int).SetUint64(r.Moduli[level].Q)

	r.NTT(p, level)
	r.DivRoundByLastModulusNTT(p, level)
	r.INTT(p, level-1)
	got := r.PolyToBigCentered(p, level-1)

	half := new(big.Int).Rsh(qL, 1)
	for j := range got {
		// want = round(vals[j]/qL): (v - centered remainder)/qL
		rem := new(big.Int).Mod(vals[j], qL)
		if rem.Cmp(half) > 0 {
			rem.Sub(rem, qL)
		}
		want := new(big.Int).Sub(vals[j], rem)
		want.Quo(want, qL)
		diff := new(big.Int).Sub(got[j], want)
		if diff.CmpAbs(big.NewInt(1)) > 0 {
			t.Fatalf("coeff %d: rescale got %v want %v", j, got[j], want)
		}
	}
}

func TestSamplers(t *testing.T) {
	r := testRing(t, 8, 2)
	rng := rand.New(rand.NewSource(17))

	s := r.NewPolyLevel(1)
	r.SampleTernarySparse(rng, s, 32, 1)
	back := r.PolyToBigCentered(s, 1)
	nonzero := 0
	for _, v := range back {
		switch v.Int64() {
		case 0:
		case 1, -1:
			nonzero++
		default:
			t.Fatalf("ternary sample produced %v", v)
		}
	}
	if nonzero != 32 {
		t.Fatalf("ternary Hamming weight = %d, want 32", nonzero)
	}

	e := r.NewPolyLevel(1)
	r.SampleGaussian(rng, e, 3.2, 1)
	eb := r.PolyToBigCentered(e, 1)
	for _, v := range eb {
		if v.CmpAbs(big.NewInt(20)) > 0 {
			t.Fatalf("gaussian sample out of 6σ bound: %v", v)
		}
	}

	u := r.NewPolyLevel(1)
	r.SampleUniform(rng, u, 1)
	// crude uniformity check: mean should be near q/2
	var sum float64
	for _, v := range u.Coeffs[0] {
		sum += float64(v)
	}
	mean := sum / float64(r.N)
	q := float64(r.Moduli[0].Q)
	if mean < 0.4*q || mean > 0.6*q {
		t.Fatalf("uniform sample mean %f suspicious (q=%f)", mean, q)
	}
}

func TestElementWiseOpsProperty(t *testing.T) {
	r := testRing(t, 6, 2)
	rng := rand.New(rand.NewSource(18))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a, b := r.NewPolyLevel(1), r.NewPolyLevel(1)
		r.SampleUniform(lr, a, 1)
		r.SampleUniform(lr, b, 1)
		_ = rng
		// (a+b)-b == a
		s, d := r.NewPolyLevel(1), r.NewPolyLevel(1)
		r.Add(a, b, s, 1)
		r.Sub(s, b, d, 1)
		if !r.Equal(d, a, 1) {
			return false
		}
		// a + (-a) == 0
		neg, z := r.NewPolyLevel(1), r.NewPolyLevel(1)
		r.Neg(a, neg, 1)
		r.Add(a, neg, z, 1)
		zero := r.NewPolyLevel(1)
		return r.Equal(z, zero, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t, 4, 2)
	rng := rand.New(rand.NewSource(19))
	a := r.NewPolyLevel(1)
	r.SampleUniform(rng, a, 1)
	out := r.NewPolyLevel(1)
	r.MulScalar(a, 3, out, 1)
	// 3a == a+a+a
	want := r.NewPolyLevel(1)
	r.Add(a, a, want, 1)
	r.Add(want, a, want, 1)
	if !r.Equal(out, want, 1) {
		t.Fatal("MulScalar(3) != a+a+a")
	}
	r.MulScalarInt64(a, -1, out, 1)
	r.Neg(a, want, 1)
	if !r.Equal(out, want, 1) {
		t.Fatal("MulScalarInt64(-1) != Neg")
	}
}

func TestMulCoeffsAndAdd(t *testing.T) {
	r := testRing(t, 4, 1)
	rng := rand.New(rand.NewSource(20))
	a, b := r.NewPolyLevel(0), r.NewPolyLevel(0)
	r.SampleUniform(rng, a, 0)
	r.SampleUniform(rng, b, 0)
	acc := r.NewPolyLevel(0)
	r.MulCoeffs(a, b, acc, 0)
	want := r.CopyNew(acc, 0)
	r.Add(want, want, want, 0) // 2ab
	r.MulCoeffsAndAdd(a, b, acc, 0)
	if !r.Equal(acc, want, 0) {
		t.Fatal("MulCoeffsAndAdd mismatch")
	}
}

func BenchmarkNTT(b *testing.B) {
	for _, logN := range []int{12, 13, 14} {
		r := testRing(b, logN, 1)
		rng := rand.New(rand.NewSource(21))
		p := r.NewPolyLevel(0)
		r.SampleUniform(rng, p, 0)
		b.Run("logN="+itoa(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.NTT(p, 0)
			}
		})
	}
}

func BenchmarkBConv(b *testing.B) {
	rQ := testRing(b, 13, 8)
	primesP, _ := mod.GenerateNTTPrimes(50, 13, 4)
	rP, _ := NewRing(13, primesP)
	be, _ := NewBasisExtender(rQ.Moduli, rP.Moduli)
	rng := rand.New(rand.NewSource(22))
	in := rQ.NewPolyLevel(7)
	rQ.SampleUniform(rng, in, 7)
	out := rP.NewPolyLevel(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.Convert(in.Coeffs, out.Coeffs)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
