package ring

import (
	"sync/atomic"
	"testing"

	"bts/internal/mod"
	"bts/internal/telemetry"
)

func TestEngineStatsCounts(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	var st telemetry.EngineStats
	e.SetStats(&st)

	const n, reps = 64, 5
	var hits atomic.Int64
	for r := 0; r < reps; r++ {
		e.Run(n, func(i int) { hits.Add(1) })
	}
	if got := hits.Load(); got != n*reps {
		t.Fatalf("executed %d tasks, want %d", got, n*reps)
	}
	if got := st.Runs.Load(); got != reps {
		t.Fatalf("Runs = %d, want %d", got, reps)
	}
	if got := st.Tasks.Load(); got != n*reps {
		t.Fatalf("Tasks = %d, want %d", got, n*reps)
	}
	if stolen := st.StolenTasks.Load(); stolen < 0 || stolen > n*reps {
		t.Fatalf("StolenTasks = %d, outside [0, %d]", stolen, n*reps)
	}
	if busy := st.HelpersBusy.Load(); busy != 0 {
		t.Fatalf("HelpersBusy = %d after all Runs returned, want 0", busy)
	}

	// RunBlocks with few rows on a wide pool must record a sharded dispatch.
	e.SetBlockSize(256)
	var cells atomic.Int64
	e.RunBlocks(2, 4096, func(i, lo, hi int) { cells.Add(int64(hi - lo)) })
	if got := cells.Load(); got != 2*4096 {
		t.Fatalf("RunBlocks covered %d cells, want %d", got, 2*4096)
	}
	if st.BlockRuns.Load() == 0 {
		t.Fatal("BlockRuns not counted")
	}
	if st.ShardedRuns.Load() == 0 {
		t.Fatal("ShardedRuns not counted for 2×4096 on a 4-worker pool")
	}
	if rows := st.ShardLastRows.Load(); rows != 2 {
		t.Fatalf("ShardLastRows = %d, want 2", rows)
	}
	if blocks := st.ShardLastBlocks.Load(); blocks < 2 {
		t.Fatalf("ShardLastBlocks = %d, want >= 2", blocks)
	}
}

func TestEngineStatsInlinePath(t *testing.T) {
	e := NewEngine(0) // serial engine: everything runs inline
	var st telemetry.EngineStats
	e.SetStats(&st)
	e.Run(8, func(i int) {})
	e.Run(0, func(i int) {}) // n == 0 must not count
	if got := st.InlineRuns.Load(); got != 1 {
		t.Fatalf("InlineRuns = %d, want 1", got)
	}
	if got := st.Tasks.Load(); got != 8 {
		t.Fatalf("Tasks = %d, want 8", got)
	}
	if got := st.Runs.Load(); got != 0 {
		t.Fatalf("Runs = %d on serial engine, want 0", got)
	}
}

func TestPoolStatsCountsHitsAndMisses(t *testing.T) {
	primes, err := mod.GenerateNTTPrimes(45, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(8, primes)
	if err != nil {
		t.Fatal(err)
	}
	var st telemetry.PoolStats
	r.SetPoolStats(&st)

	// First borrow misses (empty pool); after returning, the next hits.
	p := r.GetPoly(2)
	r.PutPoly(p)
	p = r.GetPolyNoZero()
	r.PutPoly(p)
	if got := st.PolyGets.Load(); got != 2 {
		t.Fatalf("PolyGets = %d, want 2", got)
	}
	if miss := st.PolyMisses.Load(); miss < 1 || miss > 2 {
		t.Fatalf("PolyMisses = %d, want 1 (first borrow) allowing 2 (GC-cleared pool)", miss)
	}

	row := r.GetRow()
	r.PutRow(row)
	row = r.GetRow()
	r.PutRow(row)
	if got := st.RowGets.Load(); got != 2 {
		t.Fatalf("RowGets = %d, want 2", got)
	}
	if miss := st.RowMisses.Load(); miss < 1 || miss > 2 {
		t.Fatalf("RowMisses = %d, want 1 allowing 2", miss)
	}
}
