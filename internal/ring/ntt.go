package ring

// NTT transforms rows [0..level] of p in place from coefficient domain to the
// NTT (evaluation) domain. The transform is the negacyclic number-theoretic
// transform: polynomial multiplication in R_q becomes element-wise
// multiplication of transformed rows (Section 4.1 of the paper).
//
// The implementation is the standard in-place Cooley–Tukey decimation-in-time
// network with twiddle factors stored in bit-reversed order, i.e. the exact
// butterfly the paper's NTTU executes (Butterfly_NTT: X' = X+W·Y, Y' = X-W·Y).
// Twiddles live in Montgomery form and every butterfly multiply is one lazy
// REDC (mod.Montgomery.MulLazy); because a REDC multiply by an M-form
// constant maps x ↦ x·w mod q regardless of x's own form, the network
// preserves the package's Montgomery-form invariant without any conversion.
//
// Three kernels implement the network, forming the ring's kernel hierarchy
// (slowest/simplest first):
//
//   - NTTBarrett (reference.go): plain-form, fully reduced at every
//     butterfly. The bit-identity oracle; never on the serving path.
//   - nttRowRadix2: scalar Montgomery radix-2 rows, intermediates lazy in
//     [0, 2q). Retained as NTTRadix2 for benchmarks and the identity sweep,
//     and — as nttStageRange, its per-stage form — as the building block of
//     the sharded schedule below.
//   - nttRowRadix4 (the production row kernel): merged two-layer (radix-4)
//     butterflies. Each fused pass loads one interleaved twiddle triple per
//     group (Modulus.psiFused), processes 4 coefficients per butterfly
//     through re-sliced bounds-check-free views, and lets intermediates ride
//     a widened [0, 4q) lazy window across the two merged layers — one REDC
//     per multiply, conditional corrections only where a following sum
//     could exceed 4q and at pass end — halving the passes over the row
//     (and with them the loads, stores and loop overhead) relative to
//     radix-2. An odd log2(N) is handled by one leading radix-2 stage.
//
// Dispatch is two-dimensional (Engine.RunBlocks): when the active rows alone
// can occupy the pool, each row runs the fused radix-4 kernel as one task
// (the paper's limb-level parallelism — full rows at high levels always take
// the fused path). When they cannot — low-level ciphertexts on a many-core
// host — the rows are transformed stage by stage with every stage's n/2
// radix-2 butterflies sharded into contiguous index blocks across all rows
// (the coefficient dimension of the PE grid): butterflies within one stage
// touch disjoint (j, j+t) pairs, so they are order-independent, and a
// barrier between stages preserves the network's data dependencies. All
// three kernels and both schedules produce bit-identical outputs: lazy
// representatives may differ mid-network, but every path ends with the same
// normalization to canonical residues.
func (r *Ring) NTT(p *Poly, level int) {
	r.nttRows(p.Coeffs[:level+1], r.Moduli[:level+1])
}

// INTT transforms rows [0..level] of p in place from the NTT domain back to
// the coefficient domain (Butterfly_iNTT: X' = X+Y, Y' = (X-Y)·W^-1, followed
// by scaling with N^-1), with the same kernel hierarchy and dispatch as NTT
// (the fused Gentleman–Sande kernel trails its radix-2 stage, mirroring the
// forward network). The N^-1 scaling pass doubles as the normalization pass:
// its REDC multiply reduces the lazy values to canonical residues.
func (r *Ring) INTT(p *Poly, level int) {
	r.inttRows(p.Coeffs[:level+1], r.Moduli[:level+1])
}

// NTTRow transforms a single residue polynomial at prime index i. The
// transform is sharded across the engine like NTT (a one-row call is the
// worst case for limb-only dispatch).
func (r *Ring) NTTRow(row []uint64, i int) {
	r.nttRows([][]uint64{row}, r.Moduli[i:i+1])
}

// INTTRow inverse-transforms a single residue polynomial at prime index i,
// sharded like NTTRow.
func (r *Ring) INTTRow(row []uint64, i int) {
	r.inttRows([][]uint64{row}, r.Moduli[i:i+1])
}

// NTTRadix2 is the scalar Montgomery radix-2 forward transform on rows
// [0..level] of p, one engine task per row. It is the PR 6 production kernel
// kept as the fused kernels' in-family baseline: the identity sweep pins
// radix-4 to it (and both to the Barrett oracle), and the table2 bench
// reports the fused speedup against it. Production dispatch (NTT) never
// picks it — full rows go radix-4, sharded rows go through nttStageRange.
func (r *Ring) NTTRadix2(p *Poly, level int) {
	r.exec.Run(level+1, func(i int) { r.nttRowRadix2(p.Coeffs[i], r.Moduli[i]) })
}

// INTTRadix2 is the scalar Montgomery radix-2 inverse counterpart of
// NTTRadix2.
func (r *Ring) INTTRadix2(p *Poly, level int) {
	r.exec.Run(level+1, func(i int) { r.inttRowRadix2(p.Coeffs[i], r.Moduli[i]) })
}

// nttRows forward-transforms rows[i] under moduli ms[i], picking between the
// two schedules: one fused radix-4 task per row when the rows can fill the
// pool, or the stage-sharded radix-2 schedule when they cannot. Both finish
// with the lazy→canonical normalization pass.
func (r *Ring) nttRows(rows [][]uint64, ms []*Modulus) {
	if r.exec.blockCount(len(rows), r.N/2) <= 1 {
		r.exec.Run(len(rows), func(i int) { r.nttRowRadix4(rows[i], ms[i]) })
		return
	}
	n := r.N
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		r.exec.RunBlocks(len(rows), n/2, func(i, lo, hi int) {
			nttStageRange(rows[i], ms[i], mLen, t, lo, hi)
		})
	}
	r.exec.RunBlocks(len(rows), n, func(i, lo, hi int) {
		q := ms[i].Q
		a := rows[i][lo:hi:hi]
		for j := range a {
			if a[j] >= q {
				a[j] -= q
			}
		}
	})
}

// inttRows is the inverse counterpart of nttRows; the trailing N^-1 scaling
// pass is element-wise, sharded over coefficients directly, and normalizes
// the lazy values to canonical residues via its full REDC.
func (r *Ring) inttRows(rows [][]uint64, ms []*Modulus) {
	if r.exec.blockCount(len(rows), r.N/2) <= 1 {
		r.exec.Run(len(rows), func(i int) { r.inttRowRadix4(rows[i], ms[i]) })
		return
	}
	n := r.N
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		h := mLen >> 1
		tt := t
		r.exec.RunBlocks(len(rows), n/2, func(i, lo, hi int) {
			inttStageRange(rows[i], ms[i], h, tt, lo, hi)
		})
		t <<= 1
	}
	r.exec.RunBlocks(len(rows), n, func(i, lo, hi int) {
		m := ms[i]
		nInvM := m.nInvM
		mr := m.MRed
		a := rows[i][lo:hi:hi]
		for j := range a {
			a[j] = mr.Mul(a[j], nInvM)
		}
	})
}

// nttStageRange executes butterflies [lo, hi) of one Cooley–Tukey stage on
// row a: the stage has mLen groups of t butterflies each, and butterfly b
// belongs to group g = b/t at offset j = b mod t, touching a[2·g·t+j] and
// a[2·g·t+j+t]. Distinct butterflies of one stage touch disjoint pairs, so
// any partition of [0, n/2) is race-free and order-independent. Values stay
// in [0, 2q): the REDC-lazy twiddle product of a value < 2q is < 2q (q has
// two headroom bits below 2^64), and each output pays one conditional
// subtraction of 2q.
func nttStageRange(a []uint64, m *Modulus, mLen, t, lo, hi int) {
	twoQ := 2 * m.Q
	mr := m.MRed
	for b := lo; b < hi; {
		g := b / t
		j := b - g*t
		end := hi - g*t
		if end > t {
			end = t
		}
		w := m.psiRev[mLen+g]
		base := 2 * g * t
		// Re-slice so the compiler can drop the bounds checks: both views
		// cover exactly the butterflies [j, end) of this group.
		x := a[base+j : base+end : base+end]
		y := a[base+t+j : base+t+end : base+t+end]
		y = y[:len(x)]
		for k := range x {
			u := x[k]
			v := mr.MulLazy(y[k], w)
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			d := u + twoQ - v
			if d >= twoQ {
				d -= twoQ
			}
			x[k] = s
			y[k] = d
		}
		b = g*t + end
	}
}

// inttStageRange is the Gentleman–Sande counterpart: the stage has h groups
// of t butterflies, butterfly b in group g = b/t at offset j touches
// a[2·g·t+j] and a[2·g·t+j+t] with twiddle ψ^-1 index h+g. The difference
// path feeds u-v+2q < 4q into the lazy REDC (still inside its input bound,
// 4q < 2^64) and comes out < 2q with no conditional at all; only the sum
// path pays one.
func inttStageRange(a []uint64, m *Modulus, h, t, lo, hi int) {
	twoQ := 2 * m.Q
	mr := m.MRed
	for b := lo; b < hi; {
		g := b / t
		j := b - g*t
		end := hi - g*t
		if end > t {
			end = t
		}
		w := m.psiInvRev[h+g]
		base := 2 * g * t
		x := a[base+j : base+end : base+end]
		y := a[base+t+j : base+t+end : base+t+end]
		y = y[:len(x)]
		for k := range x {
			u := x[k]
			v := y[k]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			x[k] = s
			y[k] = mr.MulLazy(u+twoQ-v, w)
		}
		b = g*t + end
	}
}

// nttRowRadix4 is the fused forward row kernel: each pass merges two
// consecutive Cooley–Tukey stages into one sweep of radix-4 butterflies. The
// group k = mLen+g loads its interleaved twiddle triple {w1, w2, w3} =
// psiFused[3k..3k+2] (first-layer twiddle, then the two child twiddles of
// the second layer) and transforms quartets (c0, c1, c2, c3) at strides h =
// t/2:
//
//	layer 1:  u0 = c0 + w1·c2   u2 = c0 − w1·c2   (and likewise u1, u3 from c1, c3)
//	layer 2:  v0 = u0 + w2·u1   v1 = u0 − w2·u1   v2 = u2 + w3·u3   v3 = u2 − w3·u3
//
// Intermediates ride a widened [0, 4q) lazy window that extends across pass
// boundaries: quartet outputs are stored uncorrected (< 4q) and the next
// pass corrects only the two values a following sum could push past 4q —
// the additive inputs c0, c1 on load and the additive halves u0, u2 between
// the layers (their uncorrected sums would reach 6q and 8q, past the two
// headroom bits a 62-bit modulus leaves). The multiplicative halves never
// pay a correction at all: any 64-bit value times a canonical twiddle is a
// valid REDC input, so c2, c3, u1, u3 feed their multiplies unreduced. Per
// 4 coefficients a fused pass spends the same 4 REDC multiplies as two
// radix-2 stages but 4 conditional corrections instead of 8 and — the
// actual win on paper-sized rows — half the loads and stores. The trailing
// normalization folds the window back down (two conditional subtractions
// from < 4q), yielding residues bit-identical to the radix-2 kernels.
func (r *Ring) nttRowRadix4(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	twoQ := 2 * q
	mr := m.MRed
	fw := m.psiFused
	mLen := 1
	t := n
	if r.LogN&1 == 1 {
		// Odd log2(N): one leading radix-2 stage (mLen=1, the single group
		// with twiddle ψ^brv(1)) leaves an even number of stages for the
		// fused passes.
		t >>= 1
		w := m.psiRev[1]
		x := a[0:t:t]
		y := a[t : 2*t : 2*t]
		y = y[:len(x)]
		for j := range x {
			u := x[j]
			v := mr.MulLazy(y[j], w)
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			d := u + twoQ - v
			if d >= twoQ {
				d -= twoQ
			}
			x[j] = s
			y[j] = d
		}
		mLen = 2
	}
	for ; mLen <= n>>2; mLen <<= 2 {
		t >>= 1     // first-layer half size
		h := t >> 1 // second-layer half size, the quartet stride
		for g := 0; g < mLen; g++ {
			k := mLen + g
			w1 := fw[3*k]
			w2 := fw[3*k+1]
			w3 := fw[3*k+2]
			base := 2 * g * t
			x0 := a[base : base+h : base+h]
			x1 := a[base+h : base+t : base+t]
			x2 := a[base+t : base+t+h : base+t+h]
			x3 := a[base+t+h : base+2*t : base+2*t]
			x1 = x1[:len(x0)]
			x2 = x2[:len(x0)]
			x3 = x3[:len(x0)]
			for j := range x0 {
				c0 := x0[j]
				c1 := x1[j]
				c2 := x2[j]
				c3 := x3[j]
				if c0 >= twoQ {
					c0 -= twoQ
				}
				if c1 >= twoQ {
					c1 -= twoQ
				}
				p2 := mr.MulLazy(c2, w1)
				p3 := mr.MulLazy(c3, w1)
				u0 := c0 + p2
				u2 := c0 + twoQ - p2
				u1 := c1 + p3
				u3 := c1 + twoQ - p3
				if u0 >= twoQ {
					u0 -= twoQ
				}
				if u2 >= twoQ {
					u2 -= twoQ
				}
				s1 := mr.MulLazy(u1, w2)
				s3 := mr.MulLazy(u3, w3)
				x0[j] = u0 + s1
				x1[j] = u0 + twoQ - s1
				x2[j] = u2 + s3
				x3[j] = u2 + twoQ - s3
			}
		}
		t >>= 1
	}
	for j := range a {
		v := a[j]
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}

// inttRowRadix4 is the fused inverse row kernel, merging two consecutive
// Gentleman–Sande stages. The fused group k = mLen/4+g loads its triple
// {wA0, wA1, wB} = psiInvFused[3k..3k+2] (the two first-layer child twiddles,
// then the second-layer parent twiddle) and transforms quartets at stride t:
//
//	layer 1:  u0 = c0 + c1   u1 = (c0 − c1)·wA0   (and u2, u3 from c2, c3)
//	layer 2:  v0 = u0 + u2   v2 = (u0 − u2)·wB    v1 = u1 + u3   v3 = (u1 − u3)·wB
//
// The window discipline mirrors the forward kernel: inputs < 2q, the sums
// u0, u2 reach 4q and pay one conditional each before layer 2 (their sum
// would reach 8q otherwise), the REDC difference paths take their < 4q
// arguments unreduced and emit < 2q, and the remaining sums v0, v1 pay the
// pass-end corrections — 4 conditionals per 4 coefficients, equal to two
// radix-2 stages, with half the memory traffic. Outputs stay < 2q for the
// next pass; the N^-1 scaling pass normalizes exactly as for radix-2.
func (r *Ring) inttRowRadix4(a []uint64, m *Modulus) {
	n := r.N
	twoQ := 2 * m.Q
	mr := m.MRed
	fw := m.psiInvFused
	t := 1
	mLen := n
	for ; mLen >= 4; mLen >>= 2 {
		h2 := mLen >> 2 // fused group count (second-layer groups)
		for g := 0; g < h2; g++ {
			k := h2 + g
			wA0 := fw[3*k]
			wA1 := fw[3*k+1]
			wB := fw[3*k+2]
			base := 4 * g * t
			x0 := a[base : base+t : base+t]
			x1 := a[base+t : base+2*t : base+2*t]
			x2 := a[base+2*t : base+3*t : base+3*t]
			x3 := a[base+3*t : base+4*t : base+4*t]
			x1 = x1[:len(x0)]
			x2 = x2[:len(x0)]
			x3 = x3[:len(x0)]
			for j := range x0 {
				c0 := x0[j]
				c1 := x1[j]
				c2 := x2[j]
				c3 := x3[j]
				u0 := c0 + c1
				u1 := mr.MulLazy(c0+twoQ-c1, wA0)
				u2 := c2 + c3
				u3 := mr.MulLazy(c2+twoQ-c3, wA1)
				if u0 >= twoQ {
					u0 -= twoQ
				}
				if u2 >= twoQ {
					u2 -= twoQ
				}
				v0 := u0 + u2
				if v0 >= twoQ {
					v0 -= twoQ
				}
				v2 := mr.MulLazy(u0+twoQ-u2, wB)
				v1 := u1 + u3
				if v1 >= twoQ {
					v1 -= twoQ
				}
				v3 := mr.MulLazy(u1+twoQ-u3, wB)
				x0[j] = v0
				x1[j] = v1
				x2[j] = v2
				x3[j] = v3
			}
		}
		t <<= 2
	}
	if mLen == 2 {
		// Odd log2(N): the trailing radix-2 stage (the single group with
		// twiddle ψ^-brv(1)), mirroring the forward kernel's leading stage.
		w := m.psiInvRev[1]
		ht := n >> 1
		x := a[0:ht:ht]
		y := a[ht:n:n]
		y = y[:len(x)]
		for j := range x {
			u := x[j]
			v := y[j]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			x[j] = s
			y[j] = mr.MulLazy(u+twoQ-v, w)
		}
	}
	nInvM := m.nInvM
	for j := range a {
		a[j] = mr.Mul(a[j], nInvM)
	}
}

func (r *Ring) nttRowRadix2(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	twoQ := 2 * q
	mr := m.MRed
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		for i := 0; i < mLen; i++ {
			w := m.psiRev[mLen+i]
			base := 2 * i * t
			x := a[base : base+t : base+t]
			y := a[base+t : base+2*t : base+2*t]
			y = y[:len(x)]
			for j := range x {
				u := x[j]
				v := mr.MulLazy(y[j], w)
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				d := u + twoQ - v
				if d >= twoQ {
					d -= twoQ
				}
				x[j] = s
				y[j] = d
			}
		}
	}
	for j := range a {
		if a[j] >= q {
			a[j] -= q
		}
	}
}

func (r *Ring) inttRowRadix2(a []uint64, m *Modulus) {
	n := r.N
	twoQ := 2 * m.Q
	mr := m.MRed
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		j1 := 0
		h := mLen >> 1
		for i := 0; i < h; i++ {
			w := m.psiInvRev[h+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			y = y[:len(x)]
			for j := range x {
				u := x[j]
				v := y[j]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				x[j] = s
				y[j] = mr.MulLazy(u+twoQ-v, w)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	nInvM := m.nInvM
	for j := range a {
		a[j] = mr.Mul(a[j], nInvM)
	}
}

// evalOrderExponent returns e(i) such that, after r.NTT, row index i holds the
// evaluation of the polynomial at ψ^e(i). For the Cooley–Tukey network above,
// e(i) = 2·brv(i)+1 (the odd powers of ψ in bit-reversed order). Automorphism
// permutation tables (Section 5.5) are derived from this indexing.
func (r *Ring) evalOrderExponent(i int) int { return 2*r.brv[i] + 1 }
