package ring

import "bts/internal/mod"

// NTT transforms rows [0..level] of p in place from coefficient domain to the
// NTT (evaluation) domain. The transform is the negacyclic number-theoretic
// transform: polynomial multiplication in R_q becomes element-wise
// multiplication of transformed rows (Section 4.1 of the paper).
//
// The implementation is the standard in-place Cooley–Tukey decimation-in-time
// network with twiddle factors stored in bit-reversed order, i.e. the exact
// butterfly the paper's NTTU executes (Butterfly_NTT: X' = X+W·Y, Y' = X-W·Y).
// Each residue row is an independent transform, so the rows are fanned out
// across the ring's execution engine (the paper's limb-level parallelism).
func (r *Ring) NTT(p *Poly, level int) {
	r.exec.Run(level+1, func(i int) {
		r.nttRow(p.Coeffs[i], r.Moduli[i])
	})
}

// INTT transforms rows [0..level] of p in place from the NTT domain back to
// the coefficient domain (Butterfly_iNTT: X' = X+Y, Y' = (X-Y)·W^-1, followed
// by scaling with N^-1), limb-parallel like NTT.
func (r *Ring) INTT(p *Poly, level int) {
	r.exec.Run(level+1, func(i int) {
		r.inttRow(p.Coeffs[i], r.Moduli[i])
	})
}

// NTTRow transforms a single residue polynomial at prime index i.
func (r *Ring) NTTRow(row []uint64, i int) { r.nttRow(row, r.Moduli[i]) }

// INTTRow inverse-transforms a single residue polynomial at prime index i.
func (r *Ring) INTTRow(row []uint64, i int) { r.inttRow(row, r.Moduli[i]) }

func (r *Ring) nttRow(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		for i := 0; i < mLen; i++ {
			w := m.psiRev[mLen+i]
			ws := m.psiRevShoup[mLen+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := mod.MulShoup(a[j+t], w, ws, q)
				a[j] = mod.Add(u, v, q)
				a[j+t] = mod.Sub(u, v, q)
			}
		}
	}
}

func (r *Ring) inttRow(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		j1 := 0
		h := mLen >> 1
		for i := 0; i < h; i++ {
			w := m.psiInvRev[h+i]
			ws := m.psiInvRevShoup[h+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = mod.Add(u, v, q)
				a[j+t] = mod.MulShoup(mod.Sub(u, v, q), w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = mod.MulShoup(a[j], m.NInv, m.nInvShoup, q)
	}
}

// evalOrderExponent returns e(i) such that, after r.NTT, row index i holds the
// evaluation of the polynomial at ψ^e(i). For the Cooley–Tukey network above,
// e(i) = 2·brv(i)+1 (the odd powers of ψ in bit-reversed order). Automorphism
// permutation tables (Section 5.5) are derived from this indexing.
func (r *Ring) evalOrderExponent(i int) int { return 2*r.brv[i] + 1 }
