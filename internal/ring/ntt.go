package ring

import "bts/internal/mod"

// NTT transforms rows [0..level] of p in place from coefficient domain to the
// NTT (evaluation) domain. The transform is the negacyclic number-theoretic
// transform: polynomial multiplication in R_q becomes element-wise
// multiplication of transformed rows (Section 4.1 of the paper).
//
// The implementation is the standard in-place Cooley–Tukey decimation-in-time
// network with twiddle factors stored in bit-reversed order, i.e. the exact
// butterfly the paper's NTTU executes (Butterfly_NTT: X' = X+W·Y, Y' = X-W·Y).
// Each residue row is an independent transform; when the active rows alone
// can occupy the pool they are fanned out one task per limb (the paper's
// limb-level parallelism). When they cannot — low-level ciphertexts on a
// many-core host — the rows are transformed stage by stage with every
// stage's n/2 butterflies sharded into contiguous index blocks across all
// rows (the coefficient dimension of the PE grid): butterflies within one
// stage touch disjoint (j, j+t) pairs, so they are order-independent, and a
// barrier between stages preserves the network's data dependencies, keeping
// the output bit-identical to the serial transform.
func (r *Ring) NTT(p *Poly, level int) {
	r.nttRows(p.Coeffs[:level+1], r.Moduli[:level+1])
}

// INTT transforms rows [0..level] of p in place from the NTT domain back to
// the coefficient domain (Butterfly_iNTT: X' = X+Y, Y' = (X-Y)·W^-1, followed
// by scaling with N^-1), sharded exactly like NTT.
func (r *Ring) INTT(p *Poly, level int) {
	r.inttRows(p.Coeffs[:level+1], r.Moduli[:level+1])
}

// NTTRow transforms a single residue polynomial at prime index i. The
// transform is sharded across the engine like NTT (a one-row call is the
// worst case for limb-only dispatch).
func (r *Ring) NTTRow(row []uint64, i int) {
	r.nttRows([][]uint64{row}, r.Moduli[i:i+1])
}

// INTTRow inverse-transforms a single residue polynomial at prime index i,
// sharded like NTTRow.
func (r *Ring) INTTRow(row []uint64, i int) {
	r.inttRows([][]uint64{row}, r.Moduli[i:i+1])
}

// nttRows forward-transforms rows[i] under moduli ms[i], picking between the
// two schedules: one task per row when the rows can fill the pool, or the
// stage-sharded schedule when they cannot.
func (r *Ring) nttRows(rows [][]uint64, ms []*Modulus) {
	if r.exec.blockCount(len(rows), r.N/2) <= 1 {
		r.exec.Run(len(rows), func(i int) { r.nttRow(rows[i], ms[i]) })
		return
	}
	n := r.N
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		r.exec.RunBlocks(len(rows), n/2, func(i, lo, hi int) {
			nttStageRange(rows[i], ms[i], mLen, t, lo, hi)
		})
	}
}

// inttRows is the inverse counterpart of nttRows; the trailing N^-1 scaling
// pass is element-wise and sharded over coefficients directly.
func (r *Ring) inttRows(rows [][]uint64, ms []*Modulus) {
	if r.exec.blockCount(len(rows), r.N/2) <= 1 {
		r.exec.Run(len(rows), func(i int) { r.inttRow(rows[i], ms[i]) })
		return
	}
	n := r.N
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		h := mLen >> 1
		tt := t
		r.exec.RunBlocks(len(rows), n/2, func(i, lo, hi int) {
			inttStageRange(rows[i], ms[i], h, tt, lo, hi)
		})
		t <<= 1
	}
	r.exec.RunBlocks(len(rows), n, func(i, lo, hi int) {
		m := ms[i]
		a := rows[i]
		for j := lo; j < hi; j++ {
			a[j] = mod.MulShoup(a[j], m.NInv, m.nInvShoup, m.Q)
		}
	})
}

// nttStageRange executes butterflies [lo, hi) of one Cooley–Tukey stage on
// row a: the stage has mLen groups of t butterflies each, and butterfly b
// belongs to group g = b/t at offset j = b mod t, touching a[2·g·t+j] and
// a[2·g·t+j+t]. Distinct butterflies of one stage touch disjoint pairs, so
// any partition of [0, n/2) is race-free and order-independent.
func nttStageRange(a []uint64, m *Modulus, mLen, t, lo, hi int) {
	q := m.Q
	for b := lo; b < hi; {
		g := b / t
		j := b - g*t
		end := hi - g*t
		if end > t {
			end = t
		}
		w := m.psiRev[mLen+g]
		ws := m.psiRevShoup[mLen+g]
		base := 2 * g * t
		for ; j < end; j++ {
			u := a[base+j]
			v := mod.MulShoup(a[base+j+t], w, ws, q)
			a[base+j] = mod.Add(u, v, q)
			a[base+j+t] = mod.Sub(u, v, q)
		}
		b = g*t + end
	}
}

// inttStageRange is the Gentleman–Sande counterpart: the stage has h groups
// of t butterflies, butterfly b in group g = b/t at offset j touches
// a[2·g·t+j] and a[2·g·t+j+t] with twiddle ψ^-1 index h+g.
func inttStageRange(a []uint64, m *Modulus, h, t, lo, hi int) {
	q := m.Q
	for b := lo; b < hi; {
		g := b / t
		j := b - g*t
		end := hi - g*t
		if end > t {
			end = t
		}
		w := m.psiInvRev[h+g]
		ws := m.psiInvRevShoup[h+g]
		base := 2 * g * t
		for ; j < end; j++ {
			u := a[base+j]
			v := a[base+j+t]
			a[base+j] = mod.Add(u, v, q)
			a[base+j+t] = mod.MulShoup(mod.Sub(u, v, q), w, ws, q)
		}
		b = g*t + end
	}
}

func (r *Ring) nttRow(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		for i := 0; i < mLen; i++ {
			w := m.psiRev[mLen+i]
			ws := m.psiRevShoup[mLen+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := mod.MulShoup(a[j+t], w, ws, q)
				a[j] = mod.Add(u, v, q)
				a[j+t] = mod.Sub(u, v, q)
			}
		}
	}
}

func (r *Ring) inttRow(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		j1 := 0
		h := mLen >> 1
		for i := 0; i < h; i++ {
			w := m.psiInvRev[h+i]
			ws := m.psiInvRevShoup[h+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = mod.Add(u, v, q)
				a[j+t] = mod.MulShoup(mod.Sub(u, v, q), w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = mod.MulShoup(a[j], m.NInv, m.nInvShoup, q)
	}
}

// evalOrderExponent returns e(i) such that, after r.NTT, row index i holds the
// evaluation of the polynomial at ψ^e(i). For the Cooley–Tukey network above,
// e(i) = 2·brv(i)+1 (the odd powers of ψ in bit-reversed order). Automorphism
// permutation tables (Section 5.5) are derived from this indexing.
func (r *Ring) evalOrderExponent(i int) int { return 2*r.brv[i] + 1 }
