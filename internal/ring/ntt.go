package ring

// NTT transforms rows [0..level] of p in place from coefficient domain to the
// NTT (evaluation) domain. The transform is the negacyclic number-theoretic
// transform: polynomial multiplication in R_q becomes element-wise
// multiplication of transformed rows (Section 4.1 of the paper).
//
// The implementation is the standard in-place Cooley–Tukey decimation-in-time
// network with twiddle factors stored in bit-reversed order, i.e. the exact
// butterfly the paper's NTTU executes (Butterfly_NTT: X' = X+W·Y, Y' = X-W·Y).
// Twiddles live in Montgomery form and every butterfly multiply is one lazy
// REDC (mod.Montgomery.MulLazy): intermediate values ride in [0, 2q) through
// all log N stages — the additive halves pay one conditional subtraction of
// 2q instead of a canonical reduction — and a single final pass normalizes to
// canonical residues, so the output is bit-identical to a fully reduced
// transform. Because a REDC multiply by an M-form constant maps x ↦ x·w mod q
// regardless of x's own form, the network preserves the package's
// Montgomery-form invariant without any conversion.
//
// Each residue row is an independent transform; when the active rows alone
// can occupy the pool they are fanned out one task per limb (the paper's
// limb-level parallelism). When they cannot — low-level ciphertexts on a
// many-core host — the rows are transformed stage by stage with every
// stage's n/2 butterflies sharded into contiguous index blocks across all
// rows (the coefficient dimension of the PE grid): butterflies within one
// stage touch disjoint (j, j+t) pairs, so they are order-independent, and a
// barrier between stages preserves the network's data dependencies, keeping
// the output bit-identical to the serial transform.
func (r *Ring) NTT(p *Poly, level int) {
	r.nttRows(p.Coeffs[:level+1], r.Moduli[:level+1])
}

// INTT transforms rows [0..level] of p in place from the NTT domain back to
// the coefficient domain (Butterfly_iNTT: X' = X+Y, Y' = (X-Y)·W^-1, followed
// by scaling with N^-1), sharded exactly like NTT. The N^-1 scaling pass
// doubles as the normalization pass: its REDC multiply reduces the lazy
// [0, 2q) values to canonical residues.
func (r *Ring) INTT(p *Poly, level int) {
	r.inttRows(p.Coeffs[:level+1], r.Moduli[:level+1])
}

// NTTRow transforms a single residue polynomial at prime index i. The
// transform is sharded across the engine like NTT (a one-row call is the
// worst case for limb-only dispatch).
func (r *Ring) NTTRow(row []uint64, i int) {
	r.nttRows([][]uint64{row}, r.Moduli[i:i+1])
}

// INTTRow inverse-transforms a single residue polynomial at prime index i,
// sharded like NTTRow.
func (r *Ring) INTTRow(row []uint64, i int) {
	r.inttRows([][]uint64{row}, r.Moduli[i:i+1])
}

// nttRows forward-transforms rows[i] under moduli ms[i], picking between the
// two schedules: one task per row when the rows can fill the pool, or the
// stage-sharded schedule when they cannot. Both finish with the lazy→canonical
// normalization pass.
func (r *Ring) nttRows(rows [][]uint64, ms []*Modulus) {
	if r.exec.blockCount(len(rows), r.N/2) <= 1 {
		r.exec.Run(len(rows), func(i int) { r.nttRow(rows[i], ms[i]) })
		return
	}
	n := r.N
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		r.exec.RunBlocks(len(rows), n/2, func(i, lo, hi int) {
			nttStageRange(rows[i], ms[i], mLen, t, lo, hi)
		})
	}
	r.exec.RunBlocks(len(rows), n, func(i, lo, hi int) {
		q := ms[i].Q
		a := rows[i][lo:hi:hi]
		for j := range a {
			if a[j] >= q {
				a[j] -= q
			}
		}
	})
}

// inttRows is the inverse counterpart of nttRows; the trailing N^-1 scaling
// pass is element-wise, sharded over coefficients directly, and normalizes
// the lazy values to canonical residues via its full REDC.
func (r *Ring) inttRows(rows [][]uint64, ms []*Modulus) {
	if r.exec.blockCount(len(rows), r.N/2) <= 1 {
		r.exec.Run(len(rows), func(i int) { r.inttRow(rows[i], ms[i]) })
		return
	}
	n := r.N
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		h := mLen >> 1
		tt := t
		r.exec.RunBlocks(len(rows), n/2, func(i, lo, hi int) {
			inttStageRange(rows[i], ms[i], h, tt, lo, hi)
		})
		t <<= 1
	}
	r.exec.RunBlocks(len(rows), n, func(i, lo, hi int) {
		m := ms[i]
		nInvM := m.nInvM
		mr := m.MRed
		a := rows[i][lo:hi:hi]
		for j := range a {
			a[j] = mr.Mul(a[j], nInvM)
		}
	})
}

// nttStageRange executes butterflies [lo, hi) of one Cooley–Tukey stage on
// row a: the stage has mLen groups of t butterflies each, and butterfly b
// belongs to group g = b/t at offset j = b mod t, touching a[2·g·t+j] and
// a[2·g·t+j+t]. Distinct butterflies of one stage touch disjoint pairs, so
// any partition of [0, n/2) is race-free and order-independent. Values stay
// in [0, 2q): the REDC-lazy twiddle product of a value < 2q is < 2q (q has
// two headroom bits below 2^64), and each output pays one conditional
// subtraction of 2q.
func nttStageRange(a []uint64, m *Modulus, mLen, t, lo, hi int) {
	twoQ := 2 * m.Q
	mr := m.MRed
	for b := lo; b < hi; {
		g := b / t
		j := b - g*t
		end := hi - g*t
		if end > t {
			end = t
		}
		w := m.psiRev[mLen+g]
		base := 2 * g * t
		// Re-slice so the compiler can drop the bounds checks: both views
		// cover exactly the butterflies [j, end) of this group.
		x := a[base+j : base+end : base+end]
		y := a[base+t+j : base+t+end : base+t+end]
		y = y[:len(x)]
		for k := range x {
			u := x[k]
			v := mr.MulLazy(y[k], w)
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			d := u + twoQ - v
			if d >= twoQ {
				d -= twoQ
			}
			x[k] = s
			y[k] = d
		}
		b = g*t + end
	}
}

// inttStageRange is the Gentleman–Sande counterpart: the stage has h groups
// of t butterflies, butterfly b in group g = b/t at offset j touches
// a[2·g·t+j] and a[2·g·t+j+t] with twiddle ψ^-1 index h+g. The difference
// path feeds u-v+2q < 4q into the lazy REDC (still inside its input bound,
// 4q < 2^64) and comes out < 2q with no conditional at all; only the sum
// path pays one.
func inttStageRange(a []uint64, m *Modulus, h, t, lo, hi int) {
	twoQ := 2 * m.Q
	mr := m.MRed
	for b := lo; b < hi; {
		g := b / t
		j := b - g*t
		end := hi - g*t
		if end > t {
			end = t
		}
		w := m.psiInvRev[h+g]
		base := 2 * g * t
		x := a[base+j : base+end : base+end]
		y := a[base+t+j : base+t+end : base+t+end]
		y = y[:len(x)]
		for k := range x {
			u := x[k]
			v := y[k]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			x[k] = s
			y[k] = mr.MulLazy(u+twoQ-v, w)
		}
		b = g*t + end
	}
}

func (r *Ring) nttRow(a []uint64, m *Modulus) {
	n := r.N
	q := m.Q
	twoQ := 2 * q
	mr := m.MRed
	t := n
	for mLen := 1; mLen < n; mLen <<= 1 {
		t >>= 1
		for i := 0; i < mLen; i++ {
			w := m.psiRev[mLen+i]
			base := 2 * i * t
			x := a[base : base+t : base+t]
			y := a[base+t : base+2*t : base+2*t]
			y = y[:len(x)]
			for j := range x {
				u := x[j]
				v := mr.MulLazy(y[j], w)
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				d := u + twoQ - v
				if d >= twoQ {
					d -= twoQ
				}
				x[j] = s
				y[j] = d
			}
		}
	}
	for j := range a {
		if a[j] >= q {
			a[j] -= q
		}
	}
}

func (r *Ring) inttRow(a []uint64, m *Modulus) {
	n := r.N
	twoQ := 2 * m.Q
	mr := m.MRed
	t := 1
	for mLen := n; mLen > 1; mLen >>= 1 {
		j1 := 0
		h := mLen >> 1
		for i := 0; i < h; i++ {
			w := m.psiInvRev[h+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			y = y[:len(x)]
			for j := range x {
				u := x[j]
				v := y[j]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				x[j] = s
				y[j] = mr.MulLazy(u+twoQ-v, w)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	nInvM := m.nInvM
	for j := range a {
		a[j] = mr.Mul(a[j], nInvM)
	}
}

// evalOrderExponent returns e(i) such that, after r.NTT, row index i holds the
// evaluation of the polynomial at ψ^e(i). For the Cooley–Tukey network above,
// e(i) = 2·brv(i)+1 (the odd powers of ψ in bit-reversed order). Automorphism
// permutation tables (Section 5.5) are derived from this indexing.
func (r *Ring) evalOrderExponent(i int) int { return 2*r.brv[i] + 1 }
