package ring

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bts/internal/telemetry"
)

// Engine is the two-dimensional execution engine of the software
// reproduction: a fixed pool of worker goroutines that fans polynomial
// kernels out across cores. It is the CPU analogue of the BTS PE grid, which
// distributes *both* limbs and coefficients over lanes (Section 4.1) so the
// grid stays busy regardless of a ciphertext's remaining level.
//
// Kernels dispatch through two primitives:
//
//   - Run(n, fn): one independent task per RNS limb (the original 1-D
//     limb-parallel form);
//   - RunBlocks(rows, n, fn): limb × coefficient-block sharding — when fewer
//     limbs than workers are active, each residue row is additionally split
//     into contiguous coefficient blocks so rows×blocks ≈ workers, keeping
//     the whole pool busy on low-level ciphertexts (bootstrapping's tail).
//
// An Engine with fewer than two workers executes everything inline on the
// calling goroutine (the serial fallback); the zero value of *Engine (nil) is
// likewise serial. Engines are safe for concurrent use and may be shared by
// several Rings — the ckks Context shares one Engine between its q- and
// p-chain rings and all of its BasisExtenders.
type Engine struct {
	workers   int
	blockSize int // minimum coefficient-block width; 0 = DefaultBlockSize
	jobs      chan func()
	close     sync.Once

	// stats, when non-nil, receives dispatch counters (runs, tasks, steals,
	// shard shapes). Every hook is behind this nil check, so a detached
	// engine pays one predictable branch per dispatch — the compiled-out-
	// cheap discipline that keeps kernel benchmarks honest.
	stats *telemetry.EngineStats
}

// SetStats attaches a dispatch-counter sink to the engine (nil detaches).
// Like SetBlockSize it must not be called concurrently with dispatch; attach
// before serving traffic. The caller keeps ownership of st — typically a
// serving process registers it with its metrics registry.
func (e *Engine) SetStats(st *telemetry.EngineStats) {
	if e == nil {
		return
	}
	e.stats = st
}

// DefaultBlockSize is the minimum width (in coefficients) of a block handed
// out by RunBlocks. Blocks narrower than this lose more to dispatch overhead
// and cache-line sharing than they gain in parallelism, so rows are never
// split finer; SetBlockSize overrides the floor (tests sweep odd widths, and
// benchmarks disable sharding entirely by setting it to N).
const DefaultBlockSize = 1024

// NewEngine returns an engine with the given worker count. workers <= 1
// yields a serial engine with no goroutines; NewEngine never defaults the
// count — use DefaultEngine for the shared instance.
func NewEngine(workers int) *Engine {
	e := &Engine{workers: workers}
	if workers > 1 {
		// The jobs channel is buffered: a dispatch *offers* helper tasks to
		// the pool without ever blocking (offers beyond the buffer are
		// dropped), and the calling goroutine always works through the task
		// counter itself, so nested dispatches cannot deadlock the pool.
		e.jobs = make(chan func(), workers)
		for i := 0; i < workers; i++ {
			go func() {
				for f := range e.jobs {
					f()
				}
			}()
		}
	}
	return e
}

var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// DefaultEngine returns the process-wide shared engine. It snapshots
// runtime.GOMAXPROCS(0) at first use: the pool is sized once, on the first
// call, and later changes to GOMAXPROCS do not resize it (restart the
// process, or install a private engine via SetWorkers, to pick up a new
// value). NewRing attaches it by default, so all rings share one worker pool
// unless given a private engine via SetWorkers.
func DefaultEngine() *Engine {
	defaultEngine.once.Do(func() {
		defaultEngine.e = NewEngine(runtime.GOMAXPROCS(0))
	})
	return defaultEngine.e
}

// Workers reports the engine's worker count (0 for a nil/serial engine).
func (e *Engine) Workers() int {
	if e == nil || e.workers <= 1 {
		return 0
	}
	return e.workers
}

// Close terminates the worker goroutines. The engine must not be dispatched
// to afterwards. Closing a serial engine (or the same engine twice) is a
// no-op; the shared DefaultEngine should never be closed.
func (e *Engine) Close() {
	if e == nil || e.jobs == nil {
		return
	}
	e.close.Do(func() { close(e.jobs) })
}

// Run executes fn(0) .. fn(n-1), fanning the calls out across the worker
// pool. The calls must be independent (every ring kernel dispatched this way
// touches disjoint output words per index, so results are bit-identical to
// serial execution regardless of schedule). Run returns when all n calls have
// completed. With a serial engine it is a plain loop.
//
// Work distribution goes through a shared index counter rather than one
// channel send per task: the caller and every helper it recruits pull the
// next unclaimed index until the counter is exhausted. A worker that is busy
// at dispatch time but frees up mid-loop still steals the remaining indices
// the moment it picks a pending helper off the queue; and because the caller
// keeps re-offering helpers between its own tasks until the full complement
// is queued, a momentarily full queue (e.g. stale helpers left by earlier
// Runs on a shared engine) only delays recruitment — it cannot degrade the
// whole Run to the caller. Helper recruitment is always a non-blocking offer
// into the buffered jobs channel and the caller always drains the counter
// itself, so a nested Run issued from inside a task can never deadlock the
// pool: every claimed index is being executed by a live goroutine, and the
// nesting only ever waits downward.
func (e *Engine) Run(n int, fn func(i int)) {
	if e == nil || e.workers <= 1 || n <= 1 {
		if e != nil && e.stats != nil && n > 0 {
			e.stats.InlineRuns.Add(1)
			e.stats.Tasks.Add(int64(n))
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	st := e.stats
	if st != nil {
		st.Runs.Add(1)
		st.Tasks.Add(int64(n))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	pull := func() {
		// Steal and occupancy accounting is batched per helper activation —
		// one add on entry/exit, not per task — so the attached-stats cost
		// stays off the per-index path.
		if st != nil {
			st.HelpersBusy.Add(1)
		}
		var stolen int64
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				break
			}
			fn(i)
			wg.Done()
			stolen++
		}
		if st != nil {
			st.StolenTasks.Add(stolen)
			st.HelpersBusy.Add(-1)
		}
	}
	// Recruit up to min(workers, n-1) helpers; a stale helper that fires
	// after the counter is exhausted returns immediately, so
	// over-recruiting is harmless. offered is touched only by the caller.
	helpers := e.workers
	if n-1 < helpers {
		helpers = n - 1
	}
	offered := 0
	tryOffer := func() {
		for offered < helpers {
			select {
			case e.jobs <- pull:
				offered++
			default:
				return // queue momentarily full; retry before the next task
			}
		}
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		tryOffer()
		fn(i)
		wg.Done()
	}
	wg.Wait()
}

// blockSizeFloor returns the engine's effective minimum block width.
func (e *Engine) blockSizeFloor() int {
	if e == nil || e.blockSize <= 0 {
		return DefaultBlockSize
	}
	return e.blockSize
}

// SetBlockSize overrides the minimum coefficient-block width used by
// RunBlocks (0 restores DefaultBlockSize). Setting it to the ring degree N
// (or anything ≥ N) disables coefficient sharding, reverting to pure
// limb-parallel dispatch — the baseline the sharding benchmark compares
// against. Must not be called concurrently with dispatch.
func (e *Engine) SetBlockSize(n int) {
	if e == nil {
		return
	}
	e.blockSize = n
}

// BlockSize reports the engine's effective minimum block width.
func (e *Engine) BlockSize() int { return e.blockSizeFloor() }

// blockCount returns how many coefficient blocks RunBlocks splits each of
// the given rows of n coefficients into: 1 when the rows alone can occupy
// every worker (or the engine is serial), otherwise the smallest count with
// rows×blocks ≥ workers, capped so no block is narrower than the engine's
// block-size floor.
func (e *Engine) blockCount(rows, n int) int {
	if e == nil || e.workers <= 1 || rows >= e.workers || rows <= 0 {
		return 1
	}
	maxBlocks := n / e.blockSizeFloor()
	if maxBlocks <= 1 {
		return 1
	}
	b := (e.workers + rows - 1) / rows
	if b > maxBlocks {
		b = maxBlocks
	}
	return b
}

// RunBlocks executes fn(i, lo, hi) for every row index i in [0, rows) and
// every coefficient block [lo, hi) of a partition of [0, n), fanning the
// rows×blocks tasks out across the pool. It is the 2-D sharded counterpart
// of Run: when rows (active limbs) < workers, each row is split into
// contiguous blocks chosen by blockCount so the whole pool stays busy even
// at low ciphertext levels; when rows alone fill the pool it degenerates to
// exactly Run with full-width blocks. fn must treat every (row, coefficient)
// pair independently — all sharded kernels write disjoint words per task, so
// outputs are bit-identical to serial execution at every (worker, block)
// configuration.
func (e *Engine) RunBlocks(rows, n int, fn func(i, lo, hi int)) {
	b := e.blockCount(rows, n)
	if e != nil && e.stats != nil {
		e.stats.BlockRuns.Add(1)
		if b > 1 {
			e.stats.ShardedRuns.Add(1)
			e.stats.ShardLastRows.Store(int64(rows))
			e.stats.ShardLastBlocks.Store(int64(b))
		}
	}
	if b <= 1 {
		e.Run(rows, func(i int) { fn(i, 0, n) })
		return
	}
	e.Run(rows*b, func(t int) {
		i, k := t/b, t%b
		fn(i, k*n/b, (k+1)*n/b)
	})
}

// SetEngine attaches an execution engine to the ring (nil reverts to serial).
// The caller keeps ownership of e; a private engine previously installed by
// SetWorkers is closed so its goroutines don't leak.
func (r *Ring) SetEngine(e *Engine) {
	r.dropOwnedEngine()
	r.exec = e
}

// Exec returns the engine the ring currently dispatches through.
func (r *Ring) Exec() *Engine { return r.exec }

// SetWorkers gives the ring a private engine with the given worker count
// (<= 1 means serial), closing any previous private one. Prefer sharing one
// Engine across rings via SetEngine when several rings are in play;
// ckks.Context does this automatically.
func (r *Ring) SetWorkers(n int) {
	r.dropOwnedEngine()
	r.exec = NewEngine(n)
	r.ownsExec = true
}

func (r *Ring) dropOwnedEngine() {
	if r.ownsExec {
		r.exec.Close()
		r.ownsExec = false
	}
}

// Workers reports the ring's effective worker count (0 = serial).
func (r *Ring) Workers() int { return r.exec.Workers() }

// ForEachLimb runs fn once per active limb index 0..level through the ring's
// engine. fn must treat each limb independently; higher layers (ckks) use
// this to parallelize their own custom limb loops with the same pool.
// Prefer ForEachLimbBlock for coefficient loops: it additionally shards each
// limb when fewer limbs than workers are active.
func (r *Ring) ForEachLimb(level int, fn func(i int)) { r.exec.Run(level+1, fn) }

// ForEachLimbBlock runs fn(i, lo, hi) for every active limb i in 0..level
// and every coefficient block [lo, hi) partitioning [0, N), through the
// ring's engine (see Engine.RunBlocks). fn must treat every (limb,
// coefficient) pair independently. This is the primitive higher layers use
// to keep their custom coefficient loops parallel on low-level ciphertexts.
func (r *Ring) ForEachLimbBlock(level int, fn func(i, lo, hi int)) {
	r.exec.RunBlocks(level+1, r.N, fn)
}

// --- Scratch pools ----------------------------------------------------------
//
// Hot operations must not allocate: a single HMult at paper scale touches
// dozens of temporary polynomials, and per-call make() both thrashes the
// allocator and defeats cache residency (the scratchpad discipline of
// Section 4.2). Each ring owns a sync.Pool of full-chain polynomials and a
// pool of single residue rows; operations borrow with GetPoly/getRow and
// return with PutPoly/putRow.

// SetPoolStats attaches a scratch-pool counter sink to the ring (nil
// detaches): every GetPoly/GetRow counts a borrow, and a borrow that found
// the pool empty (allocating fresh memory) counts a miss. Attach before
// serving traffic; must not race Get/Put calls.
func (r *Ring) SetPoolStats(st *telemetry.PoolStats) { r.poolStats = st }

// GetPoly borrows a polynomial usable up to the given level from the ring's
// scratch pool. Rows 0..level are zeroed, so the result can serve directly as
// an accumulator. The polynomial always carries len(r.Moduli) rows; callers
// must only touch rows 0..level and must return it with PutPoly when done.
func (r *Ring) GetPoly(level int) *Poly {
	p, _ := r.polyPool.Get().(*Poly)
	if st := r.poolStats; st != nil {
		st.PolyGets.Add(1)
		if p == nil {
			st.PolyMisses.Add(1)
		}
	}
	if p == nil {
		return r.NewPoly(len(r.Moduli)) // fresh memory is already zero
	}
	r.Zero(p, level)
	return p
}

// GetPolyNoZero is GetPoly without the zeroing pass: row contents are
// undefined. Use it when every active row is fully overwritten before being
// read (the common case — transforms, permutations, element-wise outputs);
// reserve GetPoly for accumulators. Return with PutPoly.
func (r *Ring) GetPolyNoZero() *Poly {
	p, _ := r.polyPool.Get().(*Poly)
	if st := r.poolStats; st != nil {
		st.PolyGets.Add(1)
		if p == nil {
			st.PolyMisses.Add(1)
		}
	}
	if p == nil {
		return r.NewPoly(len(r.Moduli))
	}
	return p
}

// PutPoly returns a polynomial borrowed with GetPoly to the pool. The caller
// must not retain any reference to it. Putting a polynomial not sized to the
// full modulus chain (e.g. one from NewPolyLevel) is a programming error and
// panics, since a later GetPoly would hand out too few rows.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil {
		return
	}
	if len(p.Coeffs) != len(r.Moduli) {
		panic("ring: PutPoly of a polynomial not sized to the full chain")
	}
	r.polyPool.Put(p)
}

// GetRow borrows one length-N coefficient row (contents undefined) from the
// ring's row pool. Return it with PutRow.
func (r *Ring) GetRow() []uint64 {
	v, _ := r.rowPool.Get().(*[]uint64)
	if st := r.poolStats; st != nil {
		st.RowGets.Add(1)
		if v == nil {
			st.RowMisses.Add(1)
		}
	}
	if v != nil {
		return *v
	}
	return make([]uint64, r.N)
}

// PutRow returns a row borrowed with GetRow.
func (r *Ring) PutRow(row []uint64) {
	if len(row) != r.N {
		panic("ring: PutRow of a row with the wrong length")
	}
	r.rowPool.Put(&row)
}
