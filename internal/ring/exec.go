package ring

import (
	"runtime"
	"sync"
)

// Engine is the limb-parallel execution engine of the software reproduction:
// a fixed pool of worker goroutines that fans residue-polynomial-indexed tasks
// out across cores. It is the CPU analogue of the BTS PE grid distributing
// limbs over lanes (Section 4.1): every kernel in this package is expressed as
// an independent job per RNS limb and dispatched through an Engine.
//
// An Engine with fewer than two workers executes everything inline on the
// calling goroutine (the serial fallback); the zero value of *Engine (nil) is
// likewise serial. Engines are safe for concurrent use and may be shared by
// several Rings — the ckks Context shares one Engine between its q- and
// p-chain rings and all of its BasisExtenders.
type Engine struct {
	workers int
	jobs    chan func()
	close   sync.Once
}

// NewEngine returns an engine with the given worker count. workers <= 1
// yields a serial engine with no goroutines; NewEngine never defaults the
// count — use DefaultEngine for the GOMAXPROCS-sized shared instance.
func NewEngine(workers int) *Engine {
	e := &Engine{workers: workers}
	if workers > 1 {
		// The jobs channel is deliberately unbuffered: a dispatch hands a
		// task to a worker only if one is parked in receive, and otherwise
		// runs the task inline. This keeps the calling goroutine always
		// making progress, so nested dispatches cannot deadlock the pool.
		e.jobs = make(chan func())
		for i := 0; i < workers; i++ {
			go func() {
				for f := range e.jobs {
					f()
				}
			}()
		}
	}
	return e
}

var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// DefaultEngine returns the process-wide shared engine, created on first use
// with runtime.GOMAXPROCS(0) workers. NewRing attaches it by default, so all
// rings share one worker pool unless given a private engine via SetWorkers.
func DefaultEngine() *Engine {
	defaultEngine.once.Do(func() {
		defaultEngine.e = NewEngine(runtime.GOMAXPROCS(0))
	})
	return defaultEngine.e
}

// Workers reports the engine's worker count (0 for a nil/serial engine).
func (e *Engine) Workers() int {
	if e == nil || e.workers <= 1 {
		return 0
	}
	return e.workers
}

// Close terminates the worker goroutines. The engine must not be dispatched
// to afterwards. Closing a serial engine (or the same engine twice) is a
// no-op; the shared DefaultEngine should never be closed.
func (e *Engine) Close() {
	if e == nil || e.jobs == nil {
		return
	}
	e.close.Do(func() { close(e.jobs) })
}

// Run executes fn(0) .. fn(n-1), fanning the calls out across the worker
// pool. The calls must be independent (every ring kernel dispatched this way
// touches a disjoint residue row per index, so results are bit-identical to
// serial execution regardless of schedule). Run returns when all n calls have
// completed. With a serial engine it is a plain loop.
func (e *Engine) Run(n int, fn func(i int)) {
	if e == nil || e.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		task := func() {
			defer wg.Done()
			fn(i)
		}
		select {
		case e.jobs <- task:
		default:
			// No worker free right now: run the limb on the caller.
			task()
		}
	}
	wg.Wait()
}

// SetEngine attaches an execution engine to the ring (nil reverts to serial).
// The caller keeps ownership of e; a private engine previously installed by
// SetWorkers is closed so its goroutines don't leak.
func (r *Ring) SetEngine(e *Engine) {
	r.dropOwnedEngine()
	r.exec = e
}

// Exec returns the engine the ring currently dispatches through.
func (r *Ring) Exec() *Engine { return r.exec }

// SetWorkers gives the ring a private engine with the given worker count
// (<= 1 means serial), closing any previous private one. Prefer sharing one
// Engine across rings via SetEngine when several rings are in play;
// ckks.Context does this automatically.
func (r *Ring) SetWorkers(n int) {
	r.dropOwnedEngine()
	r.exec = NewEngine(n)
	r.ownsExec = true
}

func (r *Ring) dropOwnedEngine() {
	if r.ownsExec {
		r.exec.Close()
		r.ownsExec = false
	}
}

// Workers reports the ring's effective worker count (0 = serial).
func (r *Ring) Workers() int { return r.exec.Workers() }

// ForEachLimb runs fn once per active limb index 0..level through the ring's
// engine. fn must treat each limb independently; higher layers (ckks) use
// this to parallelize their own custom limb loops with the same pool.
func (r *Ring) ForEachLimb(level int, fn func(i int)) { r.exec.Run(level+1, fn) }

// --- Scratch pools ----------------------------------------------------------
//
// Hot operations must not allocate: a single HMult at paper scale touches
// dozens of temporary polynomials, and per-call make() both thrashes the
// allocator and defeats cache residency (the scratchpad discipline of
// Section 4.2). Each ring owns a sync.Pool of full-chain polynomials and a
// pool of single residue rows; operations borrow with GetPoly/getRow and
// return with PutPoly/putRow.

// GetPoly borrows a polynomial usable up to the given level from the ring's
// scratch pool. Rows 0..level are zeroed, so the result can serve directly as
// an accumulator. The polynomial always carries len(r.Moduli) rows; callers
// must only touch rows 0..level and must return it with PutPoly when done.
func (r *Ring) GetPoly(level int) *Poly {
	p, _ := r.polyPool.Get().(*Poly)
	if p == nil {
		return r.NewPoly(len(r.Moduli)) // fresh memory is already zero
	}
	r.Zero(p, level)
	return p
}

// GetPolyNoZero is GetPoly without the zeroing pass: row contents are
// undefined. Use it when every active row is fully overwritten before being
// read (the common case — transforms, permutations, element-wise outputs);
// reserve GetPoly for accumulators. Return with PutPoly.
func (r *Ring) GetPolyNoZero() *Poly {
	if p, _ := r.polyPool.Get().(*Poly); p != nil {
		return p
	}
	return r.NewPoly(len(r.Moduli))
}

// PutPoly returns a polynomial borrowed with GetPoly to the pool. The caller
// must not retain any reference to it. Putting a polynomial not sized to the
// full modulus chain (e.g. one from NewPolyLevel) is a programming error and
// panics, since a later GetPoly would hand out too few rows.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil {
		return
	}
	if len(p.Coeffs) != len(r.Moduli) {
		panic("ring: PutPoly of a polynomial not sized to the full chain")
	}
	r.polyPool.Put(p)
}

// GetRow borrows one length-N coefficient row (contents undefined) from the
// ring's row pool. Return it with PutRow.
func (r *Ring) GetRow() []uint64 {
	if v, _ := r.rowPool.Get().(*[]uint64); v != nil {
		return *v
	}
	return make([]uint64, r.N)
}

// PutRow returns a row borrowed with GetRow.
func (r *Ring) PutRow(row []uint64) {
	if len(row) != r.N {
		panic("ring: PutRow of a row with the wrong length")
	}
	r.rowPool.Put(&row)
}
