package ring

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bts/internal/mod"
)

// TestRunBlocksCoversAllCells checks that RunBlocks visits every (row,
// coefficient) cell exactly once at several (workers, blockSize, rows, n)
// configurations, including ragged partitions from odd block sizes.
func TestRunBlocksCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		for _, blockSize := range []int{1, 3, 16, 64, 1 << 20} {
			e := NewEngine(workers)
			e.SetBlockSize(blockSize)
			for _, shape := range []struct{ rows, n int }{{1, 257}, {3, 64}, {5, 100}, {8, 8}} {
				hits := make([][]int64, shape.rows)
				for i := range hits {
					hits[i] = make([]int64, shape.n)
				}
				e.RunBlocks(shape.rows, shape.n, func(i, lo, hi int) {
					if lo < 0 || hi > shape.n || lo > hi {
						t.Errorf("workers=%d block=%d rows=%d n=%d: bad range [%d,%d)",
							workers, blockSize, shape.rows, shape.n, lo, hi)
						return
					}
					for j := lo; j < hi; j++ {
						atomic.AddInt64(&hits[i][j], 1)
					}
				})
				for i := range hits {
					for j, h := range hits[i] {
						if h != 1 {
							t.Fatalf("workers=%d block=%d rows=%d n=%d: cell (%d,%d) executed %d times",
								workers, blockSize, shape.rows, shape.n, i, j, h)
						}
					}
				}
			}
			e.Close()
		}
	}
}

// TestBlockCount pins the sharding heuristic: no splitting when the rows
// alone fill the pool or the engine is serial, rows×blocks ≈ workers
// otherwise, and blocks never narrower than the block-size floor.
func TestBlockCount(t *testing.T) {
	serial := NewEngine(0)
	if b := serial.blockCount(1, 1<<20); b != 1 {
		t.Fatalf("serial engine splits into %d blocks", b)
	}
	var nilEngine *Engine
	if b := nilEngine.blockCount(1, 1<<20); b != 1 {
		t.Fatalf("nil engine splits into %d blocks", b)
	}
	e := NewEngine(8)
	defer e.Close()
	if b := e.blockCount(8, 1<<20); b != 1 {
		t.Fatalf("rows=workers split into %d blocks, want 1", b)
	}
	if b := e.blockCount(12, 1<<20); b != 1 {
		t.Fatalf("rows>workers split into %d blocks, want 1", b)
	}
	if b := e.blockCount(2, 1<<20); b != 4 {
		t.Fatalf("rows=2, workers=8: %d blocks, want 4 (rows×blocks = workers)", b)
	}
	if b := e.blockCount(3, 1<<20); b != 3 {
		t.Fatalf("rows=3, workers=8: %d blocks, want ceil(8/3)=3", b)
	}
	// The floor caps the split: n/DefaultBlockSize = 2 blocks at most.
	if b := e.blockCount(1, 2*DefaultBlockSize); b != 2 {
		t.Fatalf("floor cap: %d blocks, want 2", b)
	}
	// Rows shorter than two blocks never split.
	if b := e.blockCount(1, DefaultBlockSize+1); b != 1 {
		t.Fatalf("sub-2-block row split into %d blocks", b)
	}
	e.SetBlockSize(1 << 20)
	if b := e.blockCount(1, 1<<20); b != 1 {
		t.Fatalf("blockSize=n must disable sharding, got %d blocks", b)
	}
	e.SetBlockSize(0)
	if got := e.BlockSize(); got != DefaultBlockSize {
		t.Fatalf("SetBlockSize(0) left floor at %d, want default %d", got, DefaultBlockSize)
	}
}

// TestEngineRunStealsLateFreeingWorkers pins the shared-counter dispatch
// property that fixed the select-default fallback: a Run dispatched while
// every worker is momentarily busy must still hand remaining indices to
// workers that free up mid-loop, instead of degrading to the caller alone.
// The second Run's index 0 blocks until index 1 has executed: under the old
// inline fallback the caller ran index 0 first and nothing could ever run
// index 1 (deadlock); with counter-based stealing, a worker released from
// the first Run claims index 1 and unblocks the whole dispatch.
func TestEngineRunStealsLateFreeingWorkers(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	release := make(chan struct{})
	var occupied atomic.Int64
	firstDone := make(chan struct{})
	go func() {
		// 5 blocking tasks: the caller claims one, the 4 workers one each.
		e.Run(5, func(int) {
			occupied.Add(1)
			<-release
		})
		close(firstDone)
	}()
	for occupied.Load() < 5 {
		runtime.Gosched()
	}

	// Every worker is busy. Issue a second Run whose index 0 waits on
	// index 1, then free the pool mid-run.
	oneRan := make(chan struct{})
	secondDone := make(chan struct{})
	go func() {
		e.Run(2, func(i int) {
			if i == 0 {
				<-oneRan
			} else {
				close(oneRan)
			}
		})
		close(secondDone)
	}()
	time.Sleep(10 * time.Millisecond) // let the second Run park on index 0
	close(release)
	<-firstDone
	select {
	case <-secondDone:
	case <-time.After(10 * time.Second):
		t.Fatal("late-freeing workers never stole the second Run's work")
	}
}

// TestShardedKernelsMatchSerial is the -race equivalence sweep of the
// coefficient-block sharded kernels: every kernel, at every level 0..L,
// across worker counts {0, 1, 3, GOMAXPROCS} and block sizes {small, odd,
// N (sharding disabled)}, must be bit-identical to the serial engine.
func TestShardedKernelsMatchSerial(t *testing.T) {
	const logN, nPrimes = 9, 6
	n := 1 << logN
	primes, err := mod.GenerateNTTPrimes(45, logN, nPrimes)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetWorkers(0)

	workerCounts := []int{0, 1, 3, runtime.GOMAXPROCS(0)}
	blockSizes := []int{16, 33, n} // minimum-ish, odd (ragged blocks), sharding off

	type kernel struct {
		name     string
		minLevel int
		run      func(r *Ring, x, y, out *Poly, lvl int)
	}
	kernels := []kernel{
		{"NTT", 0, func(r *Ring, x, _, _ *Poly, lvl int) { r.NTT(x, lvl) }},
		{"INTT", 0, func(r *Ring, x, _, _ *Poly, lvl int) { r.INTT(x, lvl) }},
		{"Add", 0, func(r *Ring, x, y, out *Poly, lvl int) { r.Add(x, y, out, lvl) }},
		{"Sub", 0, func(r *Ring, x, y, out *Poly, lvl int) { r.Sub(x, y, out, lvl) }},
		{"Neg", 0, func(r *Ring, x, _, out *Poly, lvl int) { r.Neg(x, out, lvl) }},
		{"MulCoeffs", 0, func(r *Ring, x, y, out *Poly, lvl int) { r.MulCoeffs(x, y, out, lvl) }},
		{"MulCoeffsAndAdd", 0, func(r *Ring, x, y, out *Poly, lvl int) { r.MulCoeffsAndAdd(x, y, out, lvl) }},
		{"MulScalar", 0, func(r *Ring, x, _, out *Poly, lvl int) { r.MulScalar(x, 0xdeadbeef, out, lvl) }},
		{"MulScalarInt64", 0, func(r *Ring, x, _, out *Poly, lvl int) { r.MulScalarInt64(x, -123456789, out, lvl) }},
		{"AutomorphismNTT", 0, func(r *Ring, x, _, out *Poly, lvl int) {
			r.AutomorphismNTT(x, r.GaloisElement(3), out, lvl)
		}},
		{"AutomorphismCoeff", 0, func(r *Ring, x, _, out *Poly, lvl int) {
			r.AutomorphismCoeff(x, r.GaloisElement(3), out, lvl)
		}},
		{"MulByMonomialNTT", 0, func(r *Ring, x, _, out *Poly, lvl int) { r.MulByMonomialNTT(x, r.N/2, out, lvl) }},
		{"Rescale", 1, func(r *Ring, x, _, _ *Poly, lvl int) { r.DivRoundByLastModulusNTT(x, lvl) }},
		{"LazyMACReduce", 0, func(r *Ring, x, y, out *Poly, lvl int) {
			acc := r.GetAcc(lvl)
			r.MulCoeffsAndAddLazy(x, y, acc, lvl)
			r.MulCoeffsAndAddLazy(y, x, acc, lvl)
			r.ReduceAcc(acc, out, lvl)
			r.PutAcc(acc)
		}},
	}

	for _, workers := range workerCounts {
		for _, bs := range blockSizes {
			r, err := NewRing(logN, primes)
			if err != nil {
				t.Fatal(err)
			}
			r.SetWorkers(workers)
			r.Exec().SetBlockSize(bs)
			cfg := fmt.Sprintf("workers=%d block=%d", workers, bs)
			for lvl := 0; lvl <= nPrimes-1; lvl++ {
				for _, k := range kernels {
					if lvl < k.minLevel {
						continue
					}
					seed := int64(1000*lvl + len(k.name))
					xS := ref.NewPolyLevel(nPrimes - 1)
					yS := ref.NewPolyLevel(nPrimes - 1)
					outS := ref.NewPolyLevel(nPrimes - 1)
					ref.SampleUniform(rand.New(rand.NewSource(seed)), xS, nPrimes-1)
					ref.SampleUniform(rand.New(rand.NewSource(seed+1)), yS, nPrimes-1)
					ref.SampleUniform(rand.New(rand.NewSource(seed+2)), outS, nPrimes-1)
					xP := ref.CopyNew(xS, nPrimes-1)
					yP := ref.CopyNew(yS, nPrimes-1)
					outP := ref.CopyNew(outS, nPrimes-1)
					k.run(ref, xS, yS, outS, lvl)
					k.run(r, xP, yP, outP, lvl)
					if !ref.Equal(xS, xP, lvl) || !ref.Equal(outS, outP, lvl) {
						t.Fatalf("%s: %s at level %d differs from serial", cfg, k.name, lvl)
					}
				}
			}
			r.SetEngine(nil) // close the private engine
		}
	}
}

// TestShardedBasisConvertMatchesSerial sweeps the 2-D sharded BConv across
// source-base lengths (short bases are where coefficient sharding engages),
// block sizes, and worker counts.
func TestShardedBasisConvertMatchesSerial(t *testing.T) {
	const logN = 9
	n := 1 << logN
	primes, err := mod.GenerateNTTPrimes(45, logN, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for _, nf := range []int{1, 2, 4} {
		from, to := r.Moduli[:nf], r.Moduli[nf:]
		beS, err := NewBasisExtender(from, to)
		if err != nil {
			t.Fatal(err)
		}
		beS.SetEngine(nil)
		in := make([][]uint64, nf)
		for j := range in {
			in[j] = make([]uint64, n)
			for k := range in[j] {
				in[j][k] = uniformUint64(rng, from[j].Q)
			}
		}
		outS := make([][]uint64, len(to))
		outP := make([][]uint64, len(to))
		for i := range outS {
			outS[i] = make([]uint64, n)
			outP[i] = make([]uint64, n)
		}
		beS.Convert(in, outS)
		for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
			for _, bs := range []int{16, 33, n} {
				e := NewEngine(workers)
				e.SetBlockSize(bs)
				beP, err := NewBasisExtender(from, to)
				if err != nil {
					t.Fatal(err)
				}
				beP.SetEngine(e)
				for rep := 0; rep < 2; rep++ { // reuse pooled scratch
					beP.Convert(in, outP)
					for i := range outS {
						for k := range outS[i] {
							if outS[i][k] != outP[i][k] {
								t.Fatalf("nf=%d workers=%d block=%d rep %d: Convert differs at row %d, coeff %d",
									nf, workers, bs, rep, i, k)
							}
						}
					}
				}
				e.Close()
			}
		}
	}
}
