package ring

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"bts/internal/mod"
)

// This file pins the Montgomery refactor to the Barrett ground truth: for
// every ring kernel, IForm(kernel_M(MForm(x))) must be bit-identical to
// kernel_Barrett(x), at every level of the chain and under every engine
// shape (serial, limb-parallel, coefficient-block sharded with odd blocks).
// Run with -race to also certify the sharded dispatch.

// identityConfigs enumerates the (workers, blockSize) engine shapes the
// identity checks run under.
var identityConfigs = []struct{ workers, block int }{
	{0, 0},       // serial, default blocks
	{1, 64},      // single worker, forced small blocks
	{3, 48},      // odd worker count, ragged blocks
	{7, 1 << 20}, // wide pool, limb-only dispatch
}

// assertPlainEqual compares the IForm of an M-form polynomial against a plain
// reference, word for word.
func assertPlainEqual(t *testing.T, r *Ring, label string, mform, plain *Poly, level int) {
	t.Helper()
	got := r.CopyNew(mform, level)
	r.IForm(got, got, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if got.Coeffs[i][j] != plain.Coeffs[i][j] {
				t.Fatalf("%s: limb %d coeff %d: M-form path %d, Barrett path %d",
					label, i, j, got.Coeffs[i][j], plain.Coeffs[i][j])
			}
		}
	}
}

func TestMontgomeryKernelsBitIdenticalToBarrett(t *testing.T) {
	const logN = 6
	const nPrimes = 4
	primes, err := mod.GenerateNTTPrimes(45, logN, nPrimes)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range identityConfigs {
		cfg := cfg
		t.Run(fmt.Sprintf("workers=%d_block=%d", cfg.workers, cfg.block), func(t *testing.T) {
			r, err := NewRing(logN, primes)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(cfg.workers)
			defer e.Close()
			if cfg.block > 0 {
				e.SetBlockSize(cfg.block)
			}
			r.SetEngine(e)
			rng := rand.New(rand.NewSource(99))
			for level := 0; level < nPrimes; level++ {
				// Plain ground-truth operands and their M-form images
				// (uniform words serve as true residues directly; x ↦ xR is
				// a bijection, so the M-form copies are uniform too).
				a := r.NewPolyLevel(level)
				b := r.NewPolyLevel(level)
				r.SampleUniform(rng, a, level)
				r.SampleUniform(rng, b, level)
				aM := r.CopyNew(a, level)
				bM := r.CopyNew(b, level)
				r.MForm(aM, aM, level)
				r.MForm(bM, bM, level)

				// Forward and inverse NTT.
				pM, pB := r.CopyNew(aM, level), r.CopyNew(a, level)
				r.NTT(pM, level)
				r.NTTBarrett(pB, level)
				assertPlainEqual(t, r, fmt.Sprintf("NTT level %d", level), pM, pB, level)
				r.INTT(pM, level)
				r.INTTBarrett(pB, level)
				assertPlainEqual(t, r, fmt.Sprintf("INTT level %d", level), pM, pB, level)

				// Element-wise products.
				outM, outB := r.NewPolyLevel(level), r.NewPolyLevel(level)
				r.MulCoeffs(aM, bM, outM, level)
				r.MulCoeffsBarrett(a, b, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("MulCoeffs level %d", level), outM, outB, level)

				r.MulCoeffsAndAdd(aM, bM, outM, level)
				r.MulCoeffsAndAddBarrett(a, b, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("MulCoeffsAndAdd level %d", level), outM, outB, level)

				// Scalar multiply, including an unreduced scalar.
				for _, s := range []uint64{0, 1, 12345, ^uint64(0) - 17} {
					r.MulScalar(aM, s, outM, level)
					r.MulScalarBarrett(a, s, outB, level)
					assertPlainEqual(t, r, fmt.Sprintf("MulScalar(%d) level %d", s, level), outM, outB, level)
				}

				// Form-agnostic kernels: the same function is its own
				// reference on plain operands.
				r.Add(aM, bM, outM, level)
				r.Add(a, b, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("Add level %d", level), outM, outB, level)
				r.Sub(aM, bM, outM, level)
				r.Sub(a, b, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("Sub level %d", level), outM, outB, level)
				r.Neg(aM, outM, level)
				r.Neg(a, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("Neg level %d", level), outM, outB, level)

				// MulByMonomialNTT multiplies by an M-form twiddle with a
				// fused REDC, so it preserves the operand's form: running it
				// on the plain copy yields the plain reference.
				r.MulByMonomialNTT(aM, r.N/2, outM, level)
				r.MulByMonomialNTT(a, r.N/2, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("MulByMonomialNTT level %d", level), outM, outB, level)

				// Lazy 128-bit MAC chain: two accumulations then one fused
				// Barrett+REDC reduction, against two reduced Barrett MACs.
				acc := r.GetAcc(level)
				r.MulCoeffsAndAddLazy(aM, bM, acc, level)
				r.MulCoeffsAndAddLazy(bM, bM, acc, level)
				r.ReduceAcc(acc, outM, level)
				r.PutAcc(acc)
				r.Zero(outB, level)
				r.MulCoeffsAndAddBarrett(a, b, outB, level)
				r.MulCoeffsAndAddBarrett(b, b, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("Acc128 MAC level %d", level), outM, outB, level)

				// Fused gather-MAC against permute-then-MAC.
				g := r.GaloisElement(1)
				table := r.AutoIndexNTT(g)
				acc = r.GetAcc(level)
				r.MulCoeffsAndAddLazy(aM, bM, acc, level)
				r.MulGatherAndAddLazy(bM, table, aM, acc, level)
				r.ReduceAcc(acc, outM, level)
				r.PutAcc(acc)
				perm := r.NewPolyLevel(level)
				r.AutomorphismNTT(b, g, perm, level)
				r.Zero(outB, level)
				r.MulCoeffsAndAddBarrett(a, b, outB, level)
				r.MulCoeffsAndAddBarrett(perm, a, outB, level)
				assertPlainEqual(t, r, fmt.Sprintf("gather MAC level %d", level), outM, outB, level)
			}
		})
	}
}

// TestBasisExtenderBitIdenticalAcrossEngines pins BConv to a serial big.Int
// implementation of the exact centered formula, for M-form inputs and
// outputs, under every engine shape.
func TestBasisExtenderBitIdenticalAcrossEngines(t *testing.T) {
	const logN = 5
	primesQ, err := mod.GenerateNTTPrimes(45, logN, 3)
	if err != nil {
		t.Fatal(err)
	}
	primesP, err := mod.GenerateNTTPrimes(46, logN, 2)
	if err != nil {
		t.Fatal(err)
	}
	rQ, err := NewRing(logN, primesQ)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := NewRing(logN, primesP)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << logN

	// True-residue inputs.
	rng := rand.New(rand.NewSource(5))
	xTrue := make([][]uint64, len(primesQ))
	for j, q := range primesQ {
		xTrue[j] = make([]uint64, n)
		for k := range xTrue[j] {
			xTrue[j][k] = rng.Uint64() % q
		}
	}

	// Reference: y_j = x_j·(Q/q_j)^-1 mod q_j, out_i = Σ_j f(y_j)·(Q/q_j)
	// mod p_i with the centered f.
	bigQ := big.NewInt(1)
	for _, q := range primesQ {
		bigQ.Mul(bigQ, new(big.Int).SetUint64(q))
	}
	want := make([][]uint64, len(primesP))
	for i, p := range primesP {
		want[i] = make([]uint64, n)
		pb := new(big.Int).SetUint64(p)
		for k := 0; k < n; k++ {
			acc := new(big.Int)
			for j, q := range primesQ {
				qb := new(big.Int).SetUint64(q)
				qhat := new(big.Int).Quo(bigQ, qb)
				inv := new(big.Int).ModInverse(new(big.Int).Mod(qhat, qb), qb)
				y := new(big.Int).Mul(new(big.Int).SetUint64(xTrue[j][k]), inv)
				y.Mod(y, qb)
				if y.Uint64() > q>>1 {
					y.Sub(y, qb) // centered representative
				}
				acc.Add(acc, y.Mul(y, qhat))
			}
			want[i][k] = new(big.Int).Mod(acc, pb).Uint64()
		}
	}

	for _, cfg := range identityConfigs {
		e := NewEngine(cfg.workers)
		if cfg.block > 0 {
			e.SetBlockSize(cfg.block)
		}
		be, err := NewBasisExtender(rQ.Moduli, rP.Moduli)
		if err != nil {
			t.Fatal(err)
		}
		be.SetEngine(e)

		// M-form inputs, as ModUp presents them.
		in := make([][]uint64, len(primesQ))
		for j := range in {
			mr := rQ.Moduli[j].MRed
			in[j] = make([]uint64, n)
			for k := range in[j] {
				in[j][k] = mr.MForm(xTrue[j][k])
			}
		}
		out := make([][]uint64, len(primesP))
		for i := range out {
			out[i] = make([]uint64, n)
		}
		be.Convert(in, out)
		for i := range out {
			mr := rP.Moduli[i].MRed
			for k := range out[i] {
				if got := mr.IForm(out[i][k]); got != want[i][k] {
					t.Fatalf("workers=%d block=%d: target limb %d coeff %d: got %d want %d",
						cfg.workers, cfg.block, i, k, got, want[i][k])
				}
			}
		}
		e.Close()
	}
}

// TestDivRoundBitIdenticalAcrossEngines checks the four-pass rescale produces
// identical words under every engine shape (the serial result is the
// reference).
func TestDivRoundBitIdenticalAcrossEngines(t *testing.T) {
	const logN = 6
	primes, err := mod.GenerateNTTPrimes(45, logN, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Poly
	for _, cfg := range identityConfigs {
		r, err := NewRing(logN, primes)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(cfg.workers)
		if cfg.block > 0 {
			e.SetBlockSize(cfg.block)
		}
		r.SetEngine(e)
		rng := rand.New(rand.NewSource(11))
		p := r.NewPolyLevel(3)
		r.SampleUniform(rng, p, 3)
		r.NTT(p, 3)
		r.DivRoundByLastModulusNTT(p, 3)
		if ref == nil {
			ref = p
		} else {
			for i := 0; i < 3; i++ {
				for j := 0; j < r.N; j++ {
					if p.Coeffs[i][j] != ref.Coeffs[i][j] {
						t.Fatalf("workers=%d block=%d: limb %d coeff %d diverges from serial rescale",
							cfg.workers, cfg.block, i, j)
					}
				}
			}
		}
		e.Close()
	}
}
