package ring

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"bts/internal/mod"
)

// This file pins the fused radix-4 row kernels to the rest of the kernel
// hierarchy: at every (logN parity, level, workers, block) configuration the
// production NTT/INTT dispatch, the forced radix-4 row kernels, the scalar
// Montgomery radix-2 kernels and the Barrett reference must produce
// bit-identical residues, and a forward/inverse round trip must be exact.
// Run with -race to also certify the sharded schedules the dispatch falls
// back to at low levels.

// fusedSweepConfigs enumerates the engine shapes of the sweep. NumCPU rides
// along so many-core hosts exercise their real fan-out (on small hosts it
// duplicates an existing shape, which is harmless).
func fusedSweepConfigs() []struct{ workers, block int } {
	return []struct{ workers, block int }{
		{0, 0},                    // serial: every row takes the radix-4 path
		{1, 64},                   // single worker, forced small blocks
		{3, 48},                   // odd worker count, ragged odd blocks
		{7, 1 << 20},              // wide pool, limb-only dispatch
		{runtime.NumCPU(), 33},    // host parallelism, odd blocks
		{runtime.NumCPU() + 2, 0}, // oversubscribed, default blocks
	}
}

func TestFusedRadix4BitIdentity(t *testing.T) {
	// Both log2(N) parities: even logN runs pure fused passes, odd logN
	// additionally exercises the radix-2 head (NTT) and tail (iNTT) stages.
	for _, logN := range []int{5, 6} {
		const nPrimes = 4
		// 60-bit primes sit at the top of the lazy window's headroom (the
		// fused kernels' 4q bound is tightest there); a 45-bit chain rides
		// along as the common case.
		primes60, err := mod.GenerateNTTPrimes(60, logN, 2)
		if err != nil {
			t.Fatal(err)
		}
		primes45, err := mod.GenerateNTTPrimes(45, logN, 2)
		if err != nil {
			t.Fatal(err)
		}
		primes := append(append([]uint64{}, primes60...), primes45...)
		for _, cfg := range fusedSweepConfigs() {
			cfg := cfg
			t.Run(fmt.Sprintf("logN=%d_workers=%d_block=%d", logN, cfg.workers, cfg.block), func(t *testing.T) {
				r, err := NewRing(logN, primes)
				if err != nil {
					t.Fatal(err)
				}
				e := NewEngine(cfg.workers)
				defer e.Close()
				if cfg.block > 0 {
					e.SetBlockSize(cfg.block)
				}
				r.SetEngine(e)
				rng := rand.New(rand.NewSource(1234))
				for level := 0; level < nPrimes; level++ {
					a := r.NewPolyLevel(level)
					r.SampleUniform(rng, a, level)
					aM := r.CopyNew(a, level)
					r.MForm(aM, aM, level)

					// Forward: production dispatch vs radix-2 vs Barrett.
					pAuto, pR2, pB := r.CopyNew(aM, level), r.CopyNew(aM, level), r.CopyNew(a, level)
					r.NTT(pAuto, level)
					r.NTTRadix2(pR2, level)
					r.NTTBarrett(pB, level)
					if !r.Equal(pAuto, pR2, level) {
						t.Fatalf("NTT level %d: dispatch and radix-2 kernels diverge", level)
					}
					assertPlainEqual(t, r, fmt.Sprintf("NTT level %d", level), pAuto, pB, level)
					fwd := r.CopyNew(pAuto, level)

					// Inverse: same triangle, then an exact round trip.
					r.INTT(pAuto, level)
					r.INTTRadix2(pR2, level)
					r.INTTBarrett(pB, level)
					if !r.Equal(pAuto, pR2, level) {
						t.Fatalf("INTT level %d: dispatch and radix-2 kernels diverge", level)
					}
					assertPlainEqual(t, r, fmt.Sprintf("INTT level %d", level), pAuto, pB, level)
					if !r.Equal(pAuto, aM, level) {
						t.Fatalf("level %d: NTT/INTT round trip not exact", level)
					}

					// Single-row entry points (the staged-rescale path).
					for i := 0; i <= level; i++ {
						rowAuto := append([]uint64{}, aM.Coeffs[i]...)
						r.NTTRow(rowAuto, i)
						for j := range rowAuto {
							if rowAuto[j] != fwd.Coeffs[i][j] {
								t.Fatalf("NTTRow limb %d: diverges from full transform at coeff %d", i, j)
							}
						}
						r.INTTRow(rowAuto, i)
						for j := range rowAuto {
							if rowAuto[j] != aM.Coeffs[i][j] {
								t.Fatalf("INTTRow limb %d: round trip not exact at coeff %d", i, j)
							}
						}
					}
				}
			})
		}
	}
}

// TestFusedRadix4LazyWindowWorstCase drives the fused kernels with
// adversarial rows — all coefficients at q-1, the largest canonical residue —
// under the widest supported modulus, so any overflow of the [0, 4q) window
// (which uniform sampling would hit only with vanishing probability at every
// butterfly simultaneously) breaks the round trip deterministically.
func TestFusedRadix4LazyWindowWorstCase(t *testing.T) {
	for _, logN := range []int{5, 6} {
		primes, err := mod.GenerateNTTPrimes(61, logN, 2) // the generator's widest tier
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRing(logN, primes)
		if err != nil {
			t.Fatal(err)
		}
		level := len(primes) - 1
		a := r.NewPolyLevel(level)
		for i := 0; i <= level; i++ {
			for j := 0; j < r.N; j++ {
				a.Coeffs[i][j] = r.Moduli[i].Q - 1
			}
		}
		ref := r.CopyNew(a, level)
		r.NTT(a, level)
		r.NTTRadix2(ref, level)
		if !r.Equal(a, ref, level) {
			t.Fatalf("logN=%d: fused NTT diverges from radix-2 on all-(q-1) rows", logN)
		}
		r.INTT(a, level)
		r.INTTRadix2(ref, level)
		if !r.Equal(a, ref, level) {
			t.Fatalf("logN=%d: fused INTT diverges from radix-2 on all-(q-1) rows", logN)
		}
	}
}
