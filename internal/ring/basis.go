package ring

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"bts/internal/mod"
)

// BasisExtender implements the fast RNS base conversion BConv (Eq. 9 of the
// paper): given the residues of x over a source base {q_j}, it produces the
// residues over a target base {p_i} of a value congruent to x plus a small
// multiple of Q (the classic approximate conversion, whose overflow is
// absorbed by key-switching noise).
//
// The first stage multiplies each source residue by (Q/q_j)^-1 mod q_j (the
// BConvU's ModMult in Section 5.2); the second stage is the coefficient-wise
// multiply-accumulate Σ_j f(y_j)·(Q/q_j) mod p_i (the MMAU), where f takes
// the *centered* representative f(y) = y - q_j·[y > q_j/2]. The centered
// form keeps the conversion overflow in (-nf/2·Q, nf/2·Q) instead of
// [0, nf·Q) and — crucially for hoisted key-switching — makes the conversion
// exactly negation-equivariant: Convert(-x) = -Convert(x) residue for
// residue, so the Galois automorphism (a signed coefficient permutation)
// commutes bit-exactly with ModUp. Both stages fan out across the attached
// execution engine — stage 1 over source limbs × coefficient blocks, stage 2
// over target limbs × coefficient blocks (the 2-D sharding keeps short bases
// parallel, see Engine.RunBlocks) — and the stage-1 intermediates live in a
// sync.Pool so repeated conversions allocate nothing.
type BasisExtender struct {
	from, to []*Modulus

	// qhatInv is stored as a plain (non-Montgomery) constant on purpose: the
	// stage-1 input is in M-form, so the fused REDC product
	// REDC(x·R · (Q/q_j)^-1) is the *true* digit y_j — exactly what stage 2
	// needs, since the centered y_j crosses moduli as an integer. The stage-2
	// tables are the opposite: qhatTo and negQTo carry the target-modulus
	// M-form, so the Barrett fold of the 128-bit sum Σ y_j·[Q/q_j]·R lands
	// directly in Montgomery form over the target base.
	qhatInv  []uint64   // [(Q/q_j)^-1]_{q_j}, plain form
	qhatTo   [][]uint64 // qhatTo[j][i] = [Q/q_j]·R mod to[i].Q (M-form)
	halfFrom []uint64   // (q_j-1)/2, the centering threshold per source limb
	negQTo   []uint64   // [-Q]·R mod to[i].Q (M-form), the centering correction

	// lazyStage2 selects the 128-bit lazy accumulation in stage 2; it is
	// cleared at construction when nf unreduced products could overflow
	// 128 bits (very wide moduli × very long source bases), falling back
	// to per-term modular reduction.
	lazyStage2 bool

	exec    *Engine
	scratch sync.Pool // *convScratch, the stage-1 rows
	accPool sync.Pool // *[]uint64, per-task stage-2 accumulator blocks
}

// convScratch is a pooled block of len(from) stage-1 rows backed by one
// contiguous buffer.
type convScratch struct {
	backing []uint64
	rows    [][]uint64
}

// NewBasisExtender precomputes the conversion tables from the source to the
// target base. The bases must be disjoint prime sets. The extender starts on
// the shared DefaultEngine; use SetEngine to attach a specific pool.
func NewBasisExtender(from, to []*Modulus) (*BasisExtender, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("ring: empty basis in BasisExtender")
	}
	seen := map[uint64]bool{}
	for _, m := range from {
		seen[m.Q] = true
	}
	for _, m := range to {
		if seen[m.Q] {
			return nil, fmt.Errorf("ring: bases overlap at modulus %d", m.Q)
		}
	}
	q := big.NewInt(1)
	for _, m := range from {
		q.Mul(q, new(big.Int).SetUint64(m.Q))
	}
	be := &BasisExtender{
		from:     from,
		to:       to,
		qhatInv:  make([]uint64, len(from)),
		qhatTo:   make([][]uint64, len(from)),
		halfFrom: make([]uint64, len(from)),
		negQTo:   make([]uint64, len(to)),
		exec:     DefaultEngine(),
	}
	tmp := new(big.Int)
	for j, m := range from {
		qj := new(big.Int).SetUint64(m.Q)
		qhat := new(big.Int).Quo(q, qj)
		inv := new(big.Int).ModInverse(tmp.Mod(qhat, qj), qj)
		be.qhatInv[j] = inv.Uint64()
		be.qhatTo[j] = make([]uint64, len(to))
		for i, mt := range to {
			be.qhatTo[j][i] = mt.MRed.MForm(tmp.Mod(qhat, new(big.Int).SetUint64(mt.Q)).Uint64())
		}
		be.halfFrom[j] = m.Q >> 1
	}
	maxFrom, maxTo := uint64(0), uint64(0)
	for _, m := range from {
		if m.Q > maxFrom {
			maxFrom = m.Q
		}
	}
	for i, mt := range to {
		qmod := tmp.Mod(q, new(big.Int).SetUint64(mt.Q)).Uint64()
		be.negQTo[i] = mt.MRed.MForm(mod.Neg(qmod, mt.Q))
		if mt.Q > maxTo {
			maxTo = mt.Q
		}
	}
	// Lazy stage 2 sums nf terms, each below q_src·q_tgt (product plus the
	// conditional centering correction); verify the worst case fits 128
	// bits, else keep the per-term reduced loop.
	bound := new(big.Int).SetUint64(maxFrom)
	bound.Mul(bound, new(big.Int).SetUint64(maxTo))
	bound.Mul(bound, big.NewInt(int64(len(from))))
	limit := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	be.lazyStage2 = bound.Cmp(limit) <= 0
	return be, nil
}

// SetEngine attaches an execution engine (nil reverts to serial). Ownership
// stays with the caller, exactly as for Ring.SetEngine.
func (be *BasisExtender) SetEngine(e *Engine) { be.exec = e }

// getScratch borrows a stage-1 block with nf rows of length n.
func (be *BasisExtender) getScratch(nf, n int) *convScratch {
	s, _ := be.scratch.Get().(*convScratch)
	if s == nil || cap(s.backing) < nf*n {
		s = &convScratch{backing: make([]uint64, nf*n), rows: make([][]uint64, nf)}
	}
	for j := 0; j < nf; j++ {
		s.rows[j] = s.backing[j*n : (j+1)*n : (j+1)*n]
	}
	return s
}

// Convert performs the base conversion on coefficient-domain rows. in must
// hold len(from) rows; out receives len(to) rows. Rows are length-N slices.
//
// Stage 2 uses the centered representative of each stage-1 residue: when
// y_j > q_j/2 the term contributes (y_j - q_j)·(Q/q_j) = y_j·(Q/q_j) - Q, so
// the running sum gets the precomputed correction [-Q]_{p_i}. This makes
// Convert(-x) bit-identical to -Convert(x) (f(q_j - y) = -f(y) exactly for
// odd q_j), the property the hoisted key-switch relies on to permute
// decomposed slices instead of re-decomposing permuted ciphertexts.
func (be *BasisExtender) Convert(in, out [][]uint64) {
	nf, nt := len(be.from), len(be.to)
	if len(in) < nf || len(out) < nt {
		panic("ring: BasisExtender.Convert: row count mismatch")
	}
	n := len(in[0])
	scratch := be.getScratch(nf, n)
	stage1 := scratch.rows[:nf]
	// Stage 1: y_j = [x_j * (Q/q_j)^-1]_{q_j}, sharded over source limbs ×
	// coefficient blocks (each task writes a disjoint segment of one row).
	// The input residues are in M-form and qhatInv is plain, so the fused
	// REDC strips the R factor and the digits come out as true residues.
	be.exec.RunBlocks(nf, n, func(j, lo, hi int) {
		mr := be.from[j].MRed
		w := be.qhatInv[j]
		row := stage1[j][lo:hi:hi]
		src := in[j][lo:hi:hi]
		src = src[:len(row)]
		for k := range row {
			row[k] = mr.Mul(src[k], w)
		}
	})
	// Stage 2: out_i = Σ_j f(y_j) * [Q/q_j]_{p_i} (coefficient-wise MAC),
	// sharded over target limbs × coefficient blocks; every task reads the
	// same coefficient range of all stage-1 rows, and the barrier between
	// the two RunBlocks calls is the stage-1/stage-2 dependency. The MAC
	// iterates source limb outer, coefficient inner, folding each stage-1
	// row into a pooled per-task accumulator block: every slice is walked
	// contiguously with a shared induction variable, so the inner loops
	// carry no bounds checks (the coefficient-outer form paid five per
	// term). Normally the sum is accumulated lazily in 128 bits per
	// coefficient (planar: low words then high words) and reduced once
	// (mod.Reduce128 takes arbitrary 128-bit inputs; lazyStage2 certifies
	// the worst case cannot overflow), which produces the same canonical
	// residues as a chain of reduced adds at a fraction of the cost —
	// 128-bit accumulation is exact, so the summation order is immaterial;
	// pathologically wide bases take the reduced per-term path.
	be.exec.RunBlocks(nt, n, func(i, lo, hi int) {
		br := be.to[i].BRed
		qi := be.to[i].Q
		negQ := be.negQTo[i]
		w := hi - lo
		bp, _ := be.accPool.Get().(*[]uint64)
		if bp == nil || cap(*bp) < 2*w {
			b := make([]uint64, 2*w)
			bp = &b
		}
		buf := (*bp)[:cap(*bp)]
		if be.lazyStage2 {
			aLo := buf[0:w:w]
			aHi := buf[w : 2*w : 2*w]
			aHi = aHi[:len(aLo)]
			for k := range aLo {
				aLo[k], aHi[k] = 0, 0
			}
			for j := 0; j < nf; j++ {
				y := stage1[j][lo:hi:hi]
				qh := be.qhatTo[j][i]
				halfJ := be.halfFrom[j]
				y = y[:len(aLo)]
				for k := range y {
					pHi, pLo := bits.Mul64(y[k], qh)
					var c uint64
					if y[k] > halfJ {
						pLo, c = bits.Add64(pLo, negQ, 0)
						pHi += c
					}
					aLo[k], c = bits.Add64(aLo[k], pLo, 0)
					aHi[k] += pHi + c
				}
			}
			dst := out[i][lo:hi:hi]
			dst = dst[:len(aLo)]
			for k := range dst {
				dst[k] = br.Reduce128(aHi[k], aLo[k])
			}
			be.accPool.Put(bp)
			return
		}
		acc := buf[0:w:w]
		for k := range acc {
			acc[k] = 0
		}
		for j := 0; j < nf; j++ {
			y := stage1[j][lo:hi:hi]
			qh := be.qhatTo[j][i]
			halfJ := be.halfFrom[j]
			y = y[:len(acc)]
			for k := range y {
				v := br.Mul(y[k], qh)
				if y[k] > halfJ {
					v = mod.Add(v, negQ, qi)
				}
				acc[k] = mod.Add(acc[k], v, qi)
			}
		}
		dst := out[i][lo:hi:hi]
		dst = dst[:len(acc)]
		for k := range dst {
			dst[k] = acc[k]
		}
		be.accPool.Put(bp)
	})
	be.scratch.Put(scratch)
}

// DivRoundByLastModulusNTT divides p (rows [0..level], NTT domain) by the
// last prime q_level with rounding and drops that row: the HRescale
// operation of Section 2.4. On return, rows [0..level-1] hold the rescaled
// polynomial in the NTT domain.
//
// The operation runs as four engine passes so every phase stays parallel
// even at the lowest levels, where limb-only dispatch would leave most of
// the pool idle: (1) the dropped limb's iNTT (stage-sharded when one row
// cannot fill the pool), (2) the centered-lift reduction of every remaining
// limb (limb × coefficient-block sharded), (3) the forward NTT of the
// correction rows (limb- or stage-sharded), and (4) the fused
// subtract-scale by q_level^-1 (limb × coefficient-block sharded).
func (r *Ring) DivRoundByLastModulusNTT(p *Poly, level int) {
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	mL := r.Moduli[level]
	qL := mL.Q
	half := qL >> 1

	// Bring the dropped residue to the coefficient domain.
	last := r.GetRow()
	defer r.PutRow(last)
	copy(last, p.Coeffs[level])
	r.inttRows([][]uint64{last}, []*Modulus{mL})

	// Strip the Montgomery factor off the dropped residue — the rounding
	// lift below reduces it modulo every *other* prime, which is only
	// meaningful for the true integer — and pre-add q_L/2 so the subsequent
	// per-prime reduction realizes a centered (rounding) lift, not a floor.
	mrL := mL.MRed
	r.exec.RunBlocks(1, r.N, func(_, lo, hi int) {
		seg := last[lo:hi:hi]
		for j := range seg {
			seg[j] = mod.Add(mrL.IForm(seg[j]), half, qL)
		}
	})

	tmp := r.GetPolyNoZero()
	r.exec.RunBlocks(level, r.N, func(i, lo, hi int) {
		mi := r.Moduli[i]
		halfModQi := r.rescaleHalf[level][i]
		row := tmp.Coeffs[i][lo:hi:hi]
		src := last[lo:hi:hi]
		src = src[:len(row)]
		// The correction rows re-enter the M-form world here, so the fused
		// subtract-scale pass below stays a pure M-form kernel.
		for j := range row {
			row[j] = mi.MRed.MForm(mod.Sub(mi.BRed.Reduce(src[j]), halfModQi, mi.Q))
		}
	})
	r.nttRows(tmp.Coeffs[:level], r.Moduli[:level])
	r.exec.RunBlocks(level, r.N, func(i, lo, hi int) {
		qi := r.Moduli[i].Q
		qInv := r.rescaleQInv[level][i]
		qInvShoup := r.rescaleQInvShoup[level][i]
		row := p.Coeffs[i][lo:hi:hi]
		t := tmp.Coeffs[i][lo:hi:hi]
		t = t[:len(row)]
		for j := range row {
			row[j] = mod.MulShoup(mod.Sub(row[j], t[j], qi), qInv, qInvShoup, qi)
		}
	})
	r.PutPoly(tmp)
}
