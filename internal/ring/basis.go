package ring

import (
	"fmt"
	"math/big"
	"sync"

	"bts/internal/mod"
)

// BasisExtender implements the fast RNS base conversion BConv (Eq. 9 of the
// paper): given the residues of x over a source base {q_j}, it produces the
// residues over a target base {p_i} of a value congruent to x plus a small
// multiple of Q (the classic approximate conversion, whose overflow is
// absorbed by key-switching noise).
//
// The first stage multiplies each source residue by (Q/q_j)^-1 mod q_j (the
// BConvU's ModMult in Section 5.2); the second stage is the coefficient-wise
// multiply-accumulate Σ_j [..]·(Q/q_j) mod p_i (the MMAU). Both stages fan
// out across the attached execution engine — stage 1 over source limbs,
// stage 2 over target limbs — and the stage-1 intermediates live in a
// sync.Pool so repeated conversions allocate nothing.
type BasisExtender struct {
	from, to []*Modulus

	qhatInv      []uint64   // [(Q/q_j)^-1]_{q_j}
	qhatInvShoup []uint64   // Shoup companions for the first stage
	qhatTo       [][]uint64 // qhatTo[j][i] = [Q/q_j] mod to[i].Q

	exec    *Engine
	scratch sync.Pool // *convScratch, the stage-1 rows
}

// convScratch is a pooled block of len(from) stage-1 rows backed by one
// contiguous buffer.
type convScratch struct {
	backing []uint64
	rows    [][]uint64
}

// NewBasisExtender precomputes the conversion tables from the source to the
// target base. The bases must be disjoint prime sets. The extender starts on
// the shared DefaultEngine; use SetEngine to attach a specific pool.
func NewBasisExtender(from, to []*Modulus) (*BasisExtender, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("ring: empty basis in BasisExtender")
	}
	seen := map[uint64]bool{}
	for _, m := range from {
		seen[m.Q] = true
	}
	for _, m := range to {
		if seen[m.Q] {
			return nil, fmt.Errorf("ring: bases overlap at modulus %d", m.Q)
		}
	}
	q := big.NewInt(1)
	for _, m := range from {
		q.Mul(q, new(big.Int).SetUint64(m.Q))
	}
	be := &BasisExtender{
		from:         from,
		to:           to,
		qhatInv:      make([]uint64, len(from)),
		qhatInvShoup: make([]uint64, len(from)),
		qhatTo:       make([][]uint64, len(from)),
		exec:         DefaultEngine(),
	}
	tmp := new(big.Int)
	for j, m := range from {
		qj := new(big.Int).SetUint64(m.Q)
		qhat := new(big.Int).Quo(q, qj)
		inv := new(big.Int).ModInverse(tmp.Mod(qhat, qj), qj)
		be.qhatInv[j] = inv.Uint64()
		be.qhatInvShoup[j] = mod.ShoupPrecomp(be.qhatInv[j], m.Q)
		be.qhatTo[j] = make([]uint64, len(to))
		for i, mt := range to {
			be.qhatTo[j][i] = tmp.Mod(qhat, new(big.Int).SetUint64(mt.Q)).Uint64()
		}
	}
	return be, nil
}

// SetEngine attaches an execution engine (nil reverts to serial). Ownership
// stays with the caller, exactly as for Ring.SetEngine.
func (be *BasisExtender) SetEngine(e *Engine) { be.exec = e }

// getScratch borrows a stage-1 block with nf rows of length n.
func (be *BasisExtender) getScratch(nf, n int) *convScratch {
	s, _ := be.scratch.Get().(*convScratch)
	if s == nil || cap(s.backing) < nf*n {
		s = &convScratch{backing: make([]uint64, nf*n), rows: make([][]uint64, nf)}
	}
	for j := 0; j < nf; j++ {
		s.rows[j] = s.backing[j*n : (j+1)*n : (j+1)*n]
	}
	return s
}

// Convert performs the base conversion on coefficient-domain rows. in must
// hold len(from) rows; out receives len(to) rows. Rows are length-N slices.
func (be *BasisExtender) Convert(in, out [][]uint64) {
	nf, nt := len(be.from), len(be.to)
	if len(in) < nf || len(out) < nt {
		panic("ring: BasisExtender.Convert: row count mismatch")
	}
	n := len(in[0])
	scratch := be.getScratch(nf, n)
	stage1 := scratch.rows[:nf]
	// Stage 1: y_j = [x_j * (Q/q_j)^-1]_{q_j}, one source limb per task.
	be.exec.Run(nf, func(j int) {
		q := be.from[j].Q
		w, ws := be.qhatInv[j], be.qhatInvShoup[j]
		row, src := stage1[j], in[j]
		for k := 0; k < n; k++ {
			row[k] = mod.MulShoup(src[k], w, ws, q)
		}
	})
	// Stage 2: out_i = Σ_j y_j * [Q/q_j]_{p_i} (coefficient-wise MAC), one
	// target limb per task; every task reads all stage-1 rows.
	be.exec.Run(nt, func(i int) {
		br := be.to[i].BRed
		qi := be.to[i].Q
		dst := out[i]
		first := be.qhatTo[0][i]
		src := stage1[0]
		for k := 0; k < n; k++ {
			dst[k] = br.Mul(src[k], first)
		}
		for j := 1; j < nf; j++ {
			w := be.qhatTo[j][i]
			src := stage1[j]
			for k := 0; k < n; k++ {
				dst[k] = mod.Add(dst[k], br.Mul(src[k], w), qi)
			}
		}
	})
	be.scratch.Put(scratch)
}

// DivRoundByLastModulusNTT divides p (rows [0..level], NTT domain) by the
// last prime q_level with rounding and drops that row: the HRescale
// operation of Section 2.4. On return, rows [0..level-1] hold the rescaled
// polynomial in the NTT domain. The shared centered lift of the dropped limb
// is computed once; the per-limb correction then fans out across the engine
// with pooled per-worker scratch rows.
func (r *Ring) DivRoundByLastModulusNTT(p *Poly, level int) {
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	mL := r.Moduli[level]
	qL := mL.Q
	half := qL >> 1

	// Bring the dropped residue to the coefficient domain.
	last := r.GetRow()
	defer r.PutRow(last)
	copy(last, p.Coeffs[level])
	r.inttRow(last, mL)

	// Pre-add q_L/2 so the subsequent per-prime reduction realizes a
	// centered (rounding) lift rather than a floor.
	for j := range last {
		last[j] = mod.Add(last[j], half, qL)
	}

	r.exec.Run(level, func(i int) {
		tmp := r.GetRow()
		defer r.PutRow(tmp)
		mi := r.Moduli[i]
		qi := mi.Q
		halfModQi := mi.BRed.Reduce(half)
		qInv := mod.Inv(qL%qi, qi)
		qInvShoup := mod.ShoupPrecomp(qInv, qi)
		for j := 0; j < r.N; j++ {
			tmp[j] = mod.Sub(mi.BRed.Reduce(last[j]), halfModQi, qi)
		}
		r.nttRow(tmp, mi)
		row := p.Coeffs[i]
		for j := 0; j < r.N; j++ {
			row[j] = mod.MulShoup(mod.Sub(row[j], tmp[j], qi), qInv, qInvShoup, qi)
		}
	})
}
