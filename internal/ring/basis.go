package ring

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"bts/internal/mod"
)

// BasisExtender implements the fast RNS base conversion BConv (Eq. 9 of the
// paper): given the residues of x over a source base {q_j}, it produces the
// residues over a target base {p_i} of a value congruent to x plus a small
// multiple of Q (the classic approximate conversion, whose overflow is
// absorbed by key-switching noise).
//
// The first stage multiplies each source residue by (Q/q_j)^-1 mod q_j (the
// BConvU's ModMult in Section 5.2); the second stage is the coefficient-wise
// multiply-accumulate Σ_j f(y_j)·(Q/q_j) mod p_i (the MMAU), where f takes
// the *centered* representative f(y) = y - q_j·[y > q_j/2]. The centered
// form keeps the conversion overflow in (-nf/2·Q, nf/2·Q) instead of
// [0, nf·Q) and — crucially for hoisted key-switching — makes the conversion
// exactly negation-equivariant: Convert(-x) = -Convert(x) residue for
// residue, so the Galois automorphism (a signed coefficient permutation)
// commutes bit-exactly with ModUp. Both stages fan out across the attached
// execution engine — stage 1 over source limbs × coefficient blocks, stage 2
// over target limbs × coefficient blocks (the 2-D sharding keeps short bases
// parallel, see Engine.RunBlocks) — and the stage-1 intermediates live in a
// sync.Pool so repeated conversions allocate nothing.
type BasisExtender struct {
	from, to []*Modulus

	qhatInv      []uint64   // [(Q/q_j)^-1]_{q_j}
	qhatInvShoup []uint64   // Shoup companions for the first stage
	qhatTo       [][]uint64 // qhatTo[j][i] = [Q/q_j] mod to[i].Q
	halfFrom     []uint64   // (q_j-1)/2, the centering threshold per source limb
	negQTo       []uint64   // [-Q] mod to[i].Q, the centering correction

	// lazyStage2 selects the 128-bit lazy accumulation in stage 2; it is
	// cleared at construction when nf unreduced products could overflow
	// 128 bits (very wide moduli × very long source bases), falling back
	// to per-term modular reduction.
	lazyStage2 bool

	exec    *Engine
	scratch sync.Pool // *convScratch, the stage-1 rows
}

// convScratch is a pooled block of len(from) stage-1 rows backed by one
// contiguous buffer.
type convScratch struct {
	backing []uint64
	rows    [][]uint64
}

// NewBasisExtender precomputes the conversion tables from the source to the
// target base. The bases must be disjoint prime sets. The extender starts on
// the shared DefaultEngine; use SetEngine to attach a specific pool.
func NewBasisExtender(from, to []*Modulus) (*BasisExtender, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("ring: empty basis in BasisExtender")
	}
	seen := map[uint64]bool{}
	for _, m := range from {
		seen[m.Q] = true
	}
	for _, m := range to {
		if seen[m.Q] {
			return nil, fmt.Errorf("ring: bases overlap at modulus %d", m.Q)
		}
	}
	q := big.NewInt(1)
	for _, m := range from {
		q.Mul(q, new(big.Int).SetUint64(m.Q))
	}
	be := &BasisExtender{
		from:         from,
		to:           to,
		qhatInv:      make([]uint64, len(from)),
		qhatInvShoup: make([]uint64, len(from)),
		qhatTo:       make([][]uint64, len(from)),
		halfFrom:     make([]uint64, len(from)),
		negQTo:       make([]uint64, len(to)),
		exec:         DefaultEngine(),
	}
	tmp := new(big.Int)
	for j, m := range from {
		qj := new(big.Int).SetUint64(m.Q)
		qhat := new(big.Int).Quo(q, qj)
		inv := new(big.Int).ModInverse(tmp.Mod(qhat, qj), qj)
		be.qhatInv[j] = inv.Uint64()
		be.qhatInvShoup[j] = mod.ShoupPrecomp(be.qhatInv[j], m.Q)
		be.qhatTo[j] = make([]uint64, len(to))
		for i, mt := range to {
			be.qhatTo[j][i] = tmp.Mod(qhat, new(big.Int).SetUint64(mt.Q)).Uint64()
		}
		be.halfFrom[j] = m.Q >> 1
	}
	maxFrom, maxTo := uint64(0), uint64(0)
	for _, m := range from {
		if m.Q > maxFrom {
			maxFrom = m.Q
		}
	}
	for i, mt := range to {
		qmod := tmp.Mod(q, new(big.Int).SetUint64(mt.Q)).Uint64()
		be.negQTo[i] = mod.Neg(qmod, mt.Q)
		if mt.Q > maxTo {
			maxTo = mt.Q
		}
	}
	// Lazy stage 2 sums nf terms, each below q_src·q_tgt (product plus the
	// conditional centering correction); verify the worst case fits 128
	// bits, else keep the per-term reduced loop.
	bound := new(big.Int).SetUint64(maxFrom)
	bound.Mul(bound, new(big.Int).SetUint64(maxTo))
	bound.Mul(bound, big.NewInt(int64(len(from))))
	limit := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	be.lazyStage2 = bound.Cmp(limit) <= 0
	return be, nil
}

// SetEngine attaches an execution engine (nil reverts to serial). Ownership
// stays with the caller, exactly as for Ring.SetEngine.
func (be *BasisExtender) SetEngine(e *Engine) { be.exec = e }

// getScratch borrows a stage-1 block with nf rows of length n.
func (be *BasisExtender) getScratch(nf, n int) *convScratch {
	s, _ := be.scratch.Get().(*convScratch)
	if s == nil || cap(s.backing) < nf*n {
		s = &convScratch{backing: make([]uint64, nf*n), rows: make([][]uint64, nf)}
	}
	for j := 0; j < nf; j++ {
		s.rows[j] = s.backing[j*n : (j+1)*n : (j+1)*n]
	}
	return s
}

// Convert performs the base conversion on coefficient-domain rows. in must
// hold len(from) rows; out receives len(to) rows. Rows are length-N slices.
//
// Stage 2 uses the centered representative of each stage-1 residue: when
// y_j > q_j/2 the term contributes (y_j - q_j)·(Q/q_j) = y_j·(Q/q_j) - Q, so
// the running sum gets the precomputed correction [-Q]_{p_i}. This makes
// Convert(-x) bit-identical to -Convert(x) (f(q_j - y) = -f(y) exactly for
// odd q_j), the property the hoisted key-switch relies on to permute
// decomposed slices instead of re-decomposing permuted ciphertexts.
func (be *BasisExtender) Convert(in, out [][]uint64) {
	nf, nt := len(be.from), len(be.to)
	if len(in) < nf || len(out) < nt {
		panic("ring: BasisExtender.Convert: row count mismatch")
	}
	n := len(in[0])
	scratch := be.getScratch(nf, n)
	stage1 := scratch.rows[:nf]
	// Stage 1: y_j = [x_j * (Q/q_j)^-1]_{q_j}, sharded over source limbs ×
	// coefficient blocks (each task writes a disjoint segment of one row).
	be.exec.RunBlocks(nf, n, func(j, lo, hi int) {
		q := be.from[j].Q
		w, ws := be.qhatInv[j], be.qhatInvShoup[j]
		row, src := stage1[j], in[j]
		for k := lo; k < hi; k++ {
			row[k] = mod.MulShoup(src[k], w, ws, q)
		}
	})
	// Stage 2: out_i = Σ_j f(y_j) * [Q/q_j]_{p_i} (coefficient-wise MAC),
	// sharded over target limbs × coefficient blocks; every task reads the
	// same coefficient range of all stage-1 rows, and the barrier between
	// the two RunBlocks calls is the stage-1/stage-2 dependency. Normally
	// the sum is accumulated lazily in 128 bits per coefficient and reduced
	// once (mod.Reduce128 takes arbitrary 128-bit inputs; lazyStage2
	// certifies the worst case cannot overflow), which produces the same
	// canonical residues as a chain of reduced adds at a fraction of the
	// cost; pathologically wide bases take the reduced per-term loop.
	be.exec.RunBlocks(nt, n, func(i, lo, hi int) {
		br := be.to[i].BRed
		qi := be.to[i].Q
		negQ := be.negQTo[i]
		dst := out[i]
		if be.lazyStage2 {
			for k := lo; k < hi; k++ {
				var accHi, accLo, c uint64
				for j := 0; j < nf; j++ {
					y := stage1[j][k]
					hi, lo := bits.Mul64(y, be.qhatTo[j][i])
					if y > be.halfFrom[j] {
						lo, c = bits.Add64(lo, negQ, 0)
						hi += c
					}
					accLo, c = bits.Add64(accLo, lo, 0)
					accHi += hi + c
				}
				dst[k] = br.Reduce128(accHi, accLo)
			}
			return
		}
		for k := lo; k < hi; k++ {
			var acc uint64
			for j := 0; j < nf; j++ {
				y := stage1[j][k]
				v := br.Mul(y, be.qhatTo[j][i])
				if y > be.halfFrom[j] {
					v = mod.Add(v, negQ, qi)
				}
				acc = mod.Add(acc, v, qi)
			}
			dst[k] = acc
		}
	})
	be.scratch.Put(scratch)
}

// DivRoundByLastModulusNTT divides p (rows [0..level], NTT domain) by the
// last prime q_level with rounding and drops that row: the HRescale
// operation of Section 2.4. On return, rows [0..level-1] hold the rescaled
// polynomial in the NTT domain.
//
// The operation runs as four engine passes so every phase stays parallel
// even at the lowest levels, where limb-only dispatch would leave most of
// the pool idle: (1) the dropped limb's iNTT (stage-sharded when one row
// cannot fill the pool), (2) the centered-lift reduction of every remaining
// limb (limb × coefficient-block sharded), (3) the forward NTT of the
// correction rows (limb- or stage-sharded), and (4) the fused
// subtract-scale by q_level^-1 (limb × coefficient-block sharded).
func (r *Ring) DivRoundByLastModulusNTT(p *Poly, level int) {
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	mL := r.Moduli[level]
	qL := mL.Q
	half := qL >> 1

	// Bring the dropped residue to the coefficient domain.
	last := r.GetRow()
	defer r.PutRow(last)
	copy(last, p.Coeffs[level])
	r.inttRows([][]uint64{last}, []*Modulus{mL})

	// Pre-add q_L/2 so the subsequent per-prime reduction realizes a
	// centered (rounding) lift rather than a floor.
	r.exec.RunBlocks(1, r.N, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			last[j] = mod.Add(last[j], half, qL)
		}
	})

	tmp := r.GetPolyNoZero()
	r.exec.RunBlocks(level, r.N, func(i, lo, hi int) {
		mi := r.Moduli[i]
		halfModQi := r.rescaleHalf[level][i]
		row := tmp.Coeffs[i]
		for j := lo; j < hi; j++ {
			row[j] = mod.Sub(mi.BRed.Reduce(last[j]), halfModQi, mi.Q)
		}
	})
	r.nttRows(tmp.Coeffs[:level], r.Moduli[:level])
	r.exec.RunBlocks(level, r.N, func(i, lo, hi int) {
		qi := r.Moduli[i].Q
		qInv := r.rescaleQInv[level][i]
		qInvShoup := r.rescaleQInvShoup[level][i]
		row, t := p.Coeffs[i], tmp.Coeffs[i]
		for j := lo; j < hi; j++ {
			row[j] = mod.MulShoup(mod.Sub(row[j], t[j], qi), qInv, qInvShoup, qi)
		}
	})
	r.PutPoly(tmp)
}
