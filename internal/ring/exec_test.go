package ring

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"bts/internal/mod"
)

// twoRings builds two rings over the same prime chain, one serial and one
// with the given worker count, for bit-identical equivalence checks.
func twoRings(t testing.TB, logN, nPrimes, workers int) (serial, parallel *Ring) {
	t.Helper()
	primes, err := mod.GenerateNTTPrimes(45, logN, nPrimes)
	if err != nil {
		t.Fatal(err)
	}
	serial, err = NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(0)
	parallel, err = NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(workers)
	return serial, parallel
}

func TestEngineRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		e := NewEngine(workers)
		var hits [257]int64
		e.Run(len(hits), func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
		e.Close()
		e.Close() // double close must be a no-op
	}
}

func TestEngineNestedRunDoesNotDeadlock(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	var total int64
	e.Run(8, func(i int) {
		e.Run(8, func(j int) { atomic.AddInt64(&total, 1) })
	})
	if total != 64 {
		t.Fatalf("nested Run executed %d inner tasks, want 64", total)
	}
}

func TestEngineWorkers(t *testing.T) {
	if w := NewEngine(0).Workers(); w != 0 {
		t.Fatalf("serial engine reports %d workers", w)
	}
	if w := NewEngine(1).Workers(); w != 0 {
		t.Fatalf("1-worker engine should be serial, reports %d", w)
	}
	e := NewEngine(3)
	defer e.Close()
	if w := e.Workers(); w != 3 {
		t.Fatalf("engine reports %d workers, want 3", w)
	}
	var nilEngine *Engine
	if w := nilEngine.Workers(); w != 0 {
		t.Fatalf("nil engine reports %d workers", w)
	}
	nilEngine.Run(3, func(int) {}) // must not panic
	nilEngine.Close()              // must not panic
}

// TestParallelMatchesSerial drives every limb-dispatched kernel with workers
// well above the limb count and demands bit-identical results vs serial.
func TestParallelMatchesSerial(t *testing.T) {
	const logN, nPrimes = 8, 6
	lvl := nPrimes - 1
	rs, rp := twoRings(t, logN, nPrimes, 4)

	newPair := func(seed int64) (a, b *Poly) {
		a = rs.NewPolyLevel(lvl)
		rs.SampleUniform(rand.New(rand.NewSource(seed)), a, lvl)
		b = rs.CopyNew(a, lvl)
		return a, b
	}

	type kernel struct {
		name string
		run  func(r *Ring, x, y, out *Poly)
	}
	x0, x1 := newPair(11)
	y0, y1 := newPair(12)
	g := rs.GaloisElement(3)
	kernels := []kernel{
		{"NTT", func(r *Ring, x, _, _ *Poly) { r.NTT(x, lvl) }},
		{"INTT", func(r *Ring, x, _, _ *Poly) { r.INTT(x, lvl) }},
		{"Add", func(r *Ring, x, y, out *Poly) { r.Add(x, y, out, lvl) }},
		{"Sub", func(r *Ring, x, y, out *Poly) { r.Sub(x, y, out, lvl) }},
		{"Neg", func(r *Ring, x, _, out *Poly) { r.Neg(x, out, lvl) }},
		{"MulCoeffs", func(r *Ring, x, y, out *Poly) { r.MulCoeffs(x, y, out, lvl) }},
		{"MulCoeffsAndAdd", func(r *Ring, x, y, out *Poly) { r.MulCoeffsAndAdd(x, y, out, lvl) }},
		{"MulScalar", func(r *Ring, x, _, out *Poly) { r.MulScalar(x, 0xdeadbeef, out, lvl) }},
		{"MulScalarInt64", func(r *Ring, x, _, out *Poly) { r.MulScalarInt64(x, -123456789, out, lvl) }},
		{"AutomorphismNTT", func(r *Ring, x, _, out *Poly) { r.AutomorphismNTT(x, g, out, lvl) }},
		{"AutomorphismCoeff", func(r *Ring, x, _, out *Poly) { r.AutomorphismCoeff(x, g, out, lvl) }},
		{"MulByMonomialNTT", func(r *Ring, x, _, out *Poly) { r.MulByMonomialNTT(x, r.N/2, out, lvl) }},
		{"DivRoundByLastModulusNTT", func(r *Ring, x, _, _ *Poly) { r.DivRoundByLastModulusNTT(x, lvl) }},
	}
	for _, k := range kernels {
		outS := rs.NewPolyLevel(lvl)
		outP := rp.NewPolyLevel(lvl)
		// MulCoeffsAndAdd accumulates: seed both outputs identically.
		rs.SampleUniform(rand.New(rand.NewSource(13)), outS, lvl)
		rs.CopyLevel(outP, outS, lvl)
		k.run(rs, x0, y0, outS)
		k.run(rp, x1, y1, outP)
		if !rs.Equal(x0, x1, lvl) || !rs.Equal(outS, outP, lvl) {
			t.Fatalf("%s: parallel result differs from serial", k.name)
		}
	}
}

func TestBasisExtenderParallelMatchesSerial(t *testing.T) {
	const logN = 8
	primes, err := mod.GenerateNTTPrimes(45, logN, 7)
	if err != nil {
		t.Fatal(err)
	}
	from, to := primes[:3], primes[3:]
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	beS, err := NewBasisExtender(r.Moduli[:3], r.Moduli[3:])
	if err != nil {
		t.Fatal(err)
	}
	beS.SetEngine(nil)
	beP, err := NewBasisExtender(r.Moduli[:3], r.Moduli[3:])
	if err != nil {
		t.Fatal(err)
	}
	beP.SetEngine(NewEngine(4))

	rng := rand.New(rand.NewSource(21))
	n := 1 << logN
	in := make([][]uint64, len(from))
	for j := range in {
		in[j] = make([]uint64, n)
		for k := range in[j] {
			in[j][k] = uniformUint64(rng, from[j])
		}
	}
	outS := make([][]uint64, len(to))
	outP := make([][]uint64, len(to))
	for i := range outS {
		outS[i] = make([]uint64, n)
		outP[i] = make([]uint64, n)
	}
	// Run repeatedly so the pooled stage-1 scratch gets reused.
	for rep := 0; rep < 3; rep++ {
		beS.Convert(in, outS)
		beP.Convert(in, outP)
		for i := range outS {
			for k := range outS[i] {
				if outS[i][k] != outP[i][k] {
					t.Fatalf("rep %d: Convert differs at row %d, coeff %d", rep, i, k)
				}
			}
		}
	}
}

func TestGaloisElementSquareAndMultiply(t *testing.T) {
	r := testRing(t, 10, 1)
	mask := uint64(2*r.N) - 1
	naive := func(rot int) uint64 {
		rot %= r.N / 2
		if rot < 0 {
			rot += r.N / 2
		}
		g := uint64(1)
		for i := 0; i < rot; i++ {
			g = (g * 5) & mask
		}
		return g
	}
	for _, rot := range []int{0, 1, 2, 3, 7, 64, 255, r.N/2 - 1, r.N / 2, r.N, -1, -5, -r.N / 2, 123456789} {
		if got, want := r.GaloisElement(rot), naive(rot); got != want {
			t.Fatalf("GaloisElement(%d) = %d, want %d", rot, got, want)
		}
	}
}

func TestGetPutPoly(t *testing.T) {
	r := testRing(t, 6, 4)
	p := r.GetPoly(3)
	if len(p.Coeffs) != 4 {
		t.Fatalf("GetPoly returned %d rows, want full chain 4", len(p.Coeffs))
	}
	for i := 0; i <= 3; i++ {
		for j, v := range p.Coeffs[i] {
			if v != 0 {
				t.Fatalf("GetPoly row %d coeff %d not zeroed: %d", i, j, v)
			}
		}
	}
	// Dirty it, return it, and borrow again: rows must come back zeroed.
	rng := rand.New(rand.NewSource(5))
	r.SampleUniform(rng, p, 3)
	r.PutPoly(p)
	q := r.GetPoly(3)
	for i := 0; i <= 3; i++ {
		for j, v := range q.Coeffs[i] {
			if v != 0 {
				t.Fatalf("reused GetPoly row %d coeff %d not zeroed: %d", i, j, v)
			}
		}
	}
	r.PutPoly(q)
	r.PutPoly(nil) // must not panic

	// GetPolyNoZero hands out full-chain polynomials without clearing.
	nz := r.GetPolyNoZero()
	if len(nz.Coeffs) != 4 {
		t.Fatalf("GetPolyNoZero returned %d rows, want 4", len(nz.Coeffs))
	}
	r.PutPoly(nz)

	row := r.GetRow()
	if len(row) != r.N {
		t.Fatalf("GetRow returned %d coeffs, want %d", len(row), r.N)
	}
	r.PutRow(row)

	defer func() {
		if recover() == nil {
			t.Fatal("PutPoly of a short polynomial should panic")
		}
	}()
	r.PutPoly(r.NewPolyLevel(1))
}

func BenchmarkNTTWorkers(b *testing.B) {
	primes, err := mod.GenerateNTTPrimes(45, 13, 12)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{0, runtime.NumCPU()} {
		r, err := NewRing(13, primes)
		if err != nil {
			b.Fatal(err)
		}
		r.SetWorkers(workers)
		lvl := len(primes) - 1
		p := r.NewPolyLevel(lvl)
		r.SampleUniform(rand.New(rand.NewSource(9)), p, lvl)
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.NTT(p, lvl)
				r.INTT(p, lvl)
			}
		})
	}
}

func BenchmarkBasisConvertWorkers(b *testing.B) {
	primes, err := mod.GenerateNTTPrimes(45, 13, 12)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(13, primes)
	if err != nil {
		b.Fatal(err)
	}
	be, err := NewBasisExtender(r.Moduli[:6], r.Moduli[6:])
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	in := make([][]uint64, 6)
	out := make([][]uint64, 6)
	for i := 0; i < 6; i++ {
		in[i] = make([]uint64, r.N)
		out[i] = make([]uint64, r.N)
		for k := range in[i] {
			in[i][k] = uniformUint64(rng, r.Moduli[i].Q)
		}
	}
	for _, workers := range []int{0, runtime.NumCPU()} {
		e := NewEngine(workers)
		be.SetEngine(e)
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.Convert(in, out)
			}
		})
	}
}

func benchName(prefix string, workers int) string {
	if workers == 0 {
		return prefix + "=serial"
	}
	return prefix + "=" + itoa(workers)
}
