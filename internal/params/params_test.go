package params

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperInstancesLogPQ(t *testing.T) {
	// The modulus model must reproduce Table 4's log PQ exactly.
	want := map[string]float64{"INS-1": 3090, "INS-2": 3210, "INS-3": 3160}
	for _, in := range PaperInstances() {
		if got := in.LogPQ(); got != want[in.Name] {
			t.Fatalf("%s: LogPQ=%v want %v", in.Name, got, want[in.Name])
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPaperInstancesSecurity(t *testing.T) {
	// Table 4 λ: 133.4 / 128.7 / 130.8 (the fit must land within 0.5 bits).
	want := [3]float64{133.4, 128.7, 130.8}
	for i, in := range PaperInstances() {
		if got := in.Lambda(); math.Abs(got-want[i]) > 0.5 {
			t.Fatalf("%s: λ=%.2f want %.1f±0.5", in.Name, got, want[i])
		}
	}
}

func TestKAndBeta(t *testing.T) {
	if k := INS1.K(); k != 28 {
		t.Fatalf("INS-1 k=%d want 28", k)
	}
	if k := INS2.K(); k != 20 {
		t.Fatalf("INS-2 k=%d want 20", k)
	}
	if k := INS3.K(); k != 15 {
		t.Fatalf("INS-3 k=%d want 15", k)
	}
	if b := INS2.Beta(INS2.L); b != 2 {
		t.Fatalf("INS-2 Beta(L)=%d want 2", b)
	}
	if b := INS2.Beta(5); b != 1 {
		t.Fatalf("INS-2 Beta(5)=%d want 1", b)
	}
}

func TestEvkSizeMatchesPaper(t *testing.T) {
	// Section 3.4: at INS-1, a ct at max level is 56 MB and an evk 112 MB.
	if got := INS1.CtBytes(INS1.L) >> 20; got != 56 {
		t.Fatalf("INS-1 ct = %d MiB, want 56", got)
	}
	if got := INS1.EvkBytesMax() >> 20; got != 112 {
		t.Fatalf("INS-1 evk = %d MiB, want 112", got)
	}
}

func TestTempDataNearTable4(t *testing.T) {
	// Table 4 reports 183/304/365 MB; the calibrated model must land
	// within 10%.
	want := [3]float64{183, 304, 365}
	for i, in := range PaperInstances() {
		got := float64(in.TempDataBytes()) / (1 << 20)
		if math.Abs(got-want[i])/want[i] > 0.10 {
			t.Fatalf("%s: temp data %.0f MB, want %.0f±10%%", in.Name, got, want[i])
		}
	}
}

func TestMaxDnumTable(t *testing.T) {
	// Fig. 1's inset: N=2^15..2^18 → max dnum 14, 29, 60, ~121.
	cases := map[int]int{15: 14, 16: 29, 17: 60}
	for logN, want := range cases {
		if got := MaxDnum(logN); got != want {
			t.Fatalf("MaxDnum(%d)=%d want %d", logN, got, want)
		}
	}
	// 2^18 is within ±1 of the published 121.
	if got := MaxDnum(18); got < 120 || got > 123 {
		t.Fatalf("MaxDnum(18)=%d want 121±2", got)
	}
}

func TestMaxLevelMonotoneInDnum(t *testing.T) {
	// Fig. 1a: L is non-decreasing in dnum at fixed N and security.
	f := func(seed uint8) bool {
		logN := 15 + int(seed)%4
		prev := 0
		for d := 1; d <= MaxDnum(logN); d++ {
			l := MaxLevelForDnum(logN, d)
			if l < prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSecurityMonotone(t *testing.T) {
	// λ decreases with log PQ and increases with N (Section 3.2).
	if SecurityLevel(17, 3000) <= SecurityLevel(17, 3500) {
		t.Fatal("λ must decrease with logPQ")
	}
	if SecurityLevel(18, 3000) <= SecurityLevel(17, 3000) {
		t.Fatal("λ must increase with N")
	}
}

func TestFig1Rows(t *testing.T) {
	rows := LevelsAndEvkVsDnum(17)
	if len(rows) < 10 {
		t.Fatalf("expected a dense dnum sweep, got %d rows", len(rows))
	}
	// dnum=1 at N=2^17 supports L=27 (INS-1's level).
	if rows[0].Dnum != 1 || rows[0].MaxLevel != 27 {
		t.Fatalf("first row = %+v, want dnum=1 L=27", rows[0])
	}
	// Aggregate evk size grows with dnum.
	for i := 1; i < len(rows); i++ {
		if rows[i].EvkAggBytes < rows[i-1].EvkAggBytes {
			t.Fatalf("aggregate evk size not monotone at dnum=%d", rows[i].Dnum)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := INS1
	bad.Dnum = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Dnum=0 must fail")
	}
	bad = INS1
	bad.LogN = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("LogN=5 must fail")
	}
	bad = INS1
	bad.LogP = 10
	if err := bad.Validate(); err == nil {
		t.Fatal("LogP<LogQi must fail")
	}
}
