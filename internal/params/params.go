// Package params implements the CKKS parameter-space analysis of Section 3
// of the BTS paper: the interplay between N, L, dnum, the modulus budget
// log PQ, the security level λ, and the resulting ciphertext/evk footprints
// that drive accelerator design (Figs. 1-2, Table 4, Eq. 8 and Eq. 10).
//
// Unlike internal/ckks (which instantiates real rings), this package works
// symbolically on bit sizes, so it covers the paper's full-scale N = 2^17
// instances directly.
package params

import (
	"fmt"
	"math"
)

// WordBytes is the machine word the paper assumes (64-bit residues).
const WordBytes = 8

// Instance describes a CKKS instance by its structural parameters
// (the paper's Table 4 rows and the Fig. 1/2 sweep points).
type Instance struct {
	Name string
	LogN int
	L    int // maximum multiplicative level
	Dnum int // key-switching decomposition number
	// Prime bit-size model: one base prime q0, L working primes, and
	// k = ceil((L+1)/dnum) special primes.
	LogQ0 int
	LogQi int
	LogP  int
}

// Paper instances (Table 4). The modulus model LogQ0/LogQi/LogP = 60/50/60
// reproduces the published log PQ exactly: 3090, 3210 and 3160.
var (
	INS1 = Instance{Name: "INS-1", LogN: 17, L: 27, Dnum: 1, LogQ0: 60, LogQi: 50, LogP: 60}
	INS2 = Instance{Name: "INS-2", LogN: 17, L: 39, Dnum: 2, LogQ0: 60, LogQi: 50, LogP: 60}
	INS3 = Instance{Name: "INS-3", LogN: 17, L: 44, Dnum: 3, LogQ0: 60, LogQi: 50, LogP: 60}

	// INSLattigo approximates the CPU library's default bootstrappable
	// preset (N = 2^16, high decomposition number as in its hybrid
	// key-switching), used by the Fig. 9 ablation's "small BTS".
	INSLattigo = Instance{Name: "INS-Lattigo", LogN: 16, L: 22, Dnum: 6, LogQ0: 60, LogQi: 50, LogP: 60}
)

// PaperInstances lists the Table 4 instances in order.
func PaperInstances() []Instance { return []Instance{INS1, INS2, INS3} }

// N returns the polynomial degree.
func (in Instance) N() int { return 1 << in.LogN }

// Slots returns N/2, the SIMD width of a fully packed ciphertext.
func (in Instance) Slots() int { return 1 << (in.LogN - 1) }

// K returns the number of special primes k = ceil((L+1)/dnum).
func (in Instance) K() int { return (in.L + in.Dnum) / in.Dnum }

// Alpha returns the number of q-primes per decomposition group (= K).
func (in Instance) Alpha() int { return in.K() }

// Beta returns the number of decomposition slices at the given level.
func (in Instance) Beta(level int) int {
	a := in.Alpha()
	return (level + a) / a
}

// LogPQ returns the total modulus bits: log q0 + L·log qi + k·log p.
func (in Instance) LogPQ() float64 {
	return float64(in.LogQ0) + float64(in.L)*float64(in.LogQi) + float64(in.K())*float64(in.LogP)
}

// CtBytes returns the size of a ciphertext at the given level:
// 2 polynomials × (level+1) residue rows × N words (Section 2.2).
func (in Instance) CtBytes(level int) int64 {
	return 2 * int64(level+1) * int64(in.N()) * WordBytes
}

// PtBytes returns the size of a plaintext polynomial at the given level.
func (in Instance) PtBytes(level int) int64 {
	return int64(level+1) * int64(in.N()) * WordBytes
}

// EvkBytes returns the bytes of evaluation-key material streamed for one
// key-switching at the given level: 2·β(ℓ)·(k+ℓ+1)·N·8, the denominator of
// Eq. 10 (which uses β = dnum at the maximum level).
func (in Instance) EvkBytes(level int) int64 {
	return 2 * int64(in.Beta(level)) * int64(in.K()+level+1) * int64(in.N()) * WordBytes
}

// EvkBytesMax is EvkBytes at the maximum level (the paper's "evk size";
// 112 MiB for INS-1).
func (in Instance) EvkBytesMax() int64 { return in.EvkBytes(in.L) }

// TempDataBytes estimates the peak temporary working set of a key-switching
// at the maximum level, calibrated to the paper's Table 4 column
// (183/304/365 MB for INS-1/2/3): ≈ 4.4 ct-sized rows plus 1.06 extended
// rows per decomposition slice.
func (in Instance) TempDataBytes() int64 {
	rows := 4.4*float64(in.L+1) + 1.06*float64(in.K()+in.L+1)*float64(in.Dnum)
	return int64(rows * float64(in.N()) * WordBytes)
}

// SecurityLevel estimates λ for a given (N, log PQ). It is a monotone fit of
// λ ≈ a·(N/2^17)/logPQ + b calibrated on the paper's published triples
// (N=2^17: logPQ 3090→133.4, 3210→128.7, 3160→130.8), standing in for the
// SparseLWE estimator the authors ran (see DESIGN.md substitutions).
func SecurityLevel(logN int, logPQ float64) float64 {
	if logPQ <= 0 {
		return math.Inf(1)
	}
	scale := float64(int64(1)<<uint(logN)) / float64(1<<17)
	return 388500*scale/logPQ + 7.67
}

// Lambda returns the estimated security level of the instance.
func (in Instance) Lambda() float64 { return SecurityLevel(in.LogN, in.LogPQ()) }

// Validate sanity-checks the instance.
func (in Instance) Validate() error {
	if in.LogN < 10 || in.LogN > 18 {
		return fmt.Errorf("params: LogN=%d outside [10,18]", in.LogN)
	}
	if in.L < 1 {
		return fmt.Errorf("params: L=%d must be ≥ 1", in.L)
	}
	if in.Dnum < 1 || in.Dnum > in.L+1 {
		return fmt.Errorf("params: Dnum=%d outside [1,L+1]", in.Dnum)
	}
	if in.LogQ0 < in.LogQi || in.LogP < in.LogQi {
		return fmt.Errorf("params: prime size model requires q0,p ≥ qi")
	}
	return nil
}

// --- Fig. 1: L and evk size vs dnum at fixed 128-bit security ---------------

// sweepLogQi is the working-prime size used for the Fig. 1/2 sweeps. With
// 52-bit working primes the model reproduces the paper's max-dnum table
// (N=2^15..2^18 → 14, 29, 60, ~121).
const sweepLogQi = 52

// LogPQBudget returns the maximum log PQ keeping λ ≥ target at degree 2^logN
// (inverting SecurityLevel).
func LogPQBudget(logN int, targetLambda float64) float64 {
	scale := float64(int64(1)<<uint(logN)) / float64(1<<17)
	return 388500 * scale / (targetLambda - 7.67)
}

// MaxLevelForDnum returns the largest L such that the modulus budget of a
// 128-bit-secure instance at 2^logN admits the given dnum (Fig. 1a).
// Returns 0 if even L=1 does not fit.
func MaxLevelForDnum(logN, dnum int) int {
	budget := LogPQBudget(logN, 128)
	L := 0
	for l := 1; ; l++ {
		k := (l + dnum) / dnum
		logPQ := 60 + float64(l)*sweepLogQi + float64(k)*60
		if logPQ > budget {
			break
		}
		L = l
	}
	return L
}

// MaxDnum returns the largest usable dnum (= L+1 at k=1) for 2^logN at
// 128-bit security — the paper's Fig. 1 inset table.
func MaxDnum(logN int) int {
	// Self-consistent point: dnum = L+1 with k = 1.
	budget := LogPQBudget(logN, 128)
	l := int((budget - 60 - 60) / sweepLogQi)
	return l + 1
}

// SweepInstance materializes a Fig. 1/2 sweep point at (logN, dnum) with the
// maximum 128-bit-secure L.
func SweepInstance(logN, dnum int) Instance {
	return Instance{
		Name:  fmt.Sprintf("N=2^%d dnum=%d", logN, dnum),
		LogN:  logN,
		L:     MaxLevelForDnum(logN, dnum),
		Dnum:  dnum,
		LogQ0: 60, LogQi: sweepLogQi, LogP: 60,
	}
}

// Fig1Row is one point of Fig. 1: level and evk sizes at (logN, dnum).
type Fig1Row struct {
	LogN, Dnum     int
	MaxLevel       int
	EvkSingleBytes int64 // one evk: 2·N·(k+L+1)·8 per slice × dnum slices
	EvkAggBytes    int64 // the paper's aggregate formula 2·N·(L+1)·(dnum+1)·8
}

// LevelsAndEvkVsDnum generates the Fig. 1 series for one ring degree.
func LevelsAndEvkVsDnum(logN int) []Fig1Row {
	var rows []Fig1Row
	maxD := MaxDnum(logN)
	for dnum := 1; dnum <= maxD; dnum++ {
		l := MaxLevelForDnum(logN, dnum)
		if l == 0 {
			continue
		}
		in := SweepInstance(logN, dnum)
		rows = append(rows, Fig1Row{
			LogN: logN, Dnum: dnum, MaxLevel: l,
			EvkSingleBytes: in.EvkBytesMax(),
			EvkAggBytes:    2 * int64(l+1) * int64(in.N()) * int64(dnum+1) * WordBytes,
		})
	}
	return rows
}
