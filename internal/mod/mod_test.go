package mod

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var testModuli = []uint64{
	(1 << 13) + 1,       // tiny Fermat-like prime, 2^13+1
	576460752303415297,  // ~2^59, ≡ 1 mod 2^15
	2305843009213554689, // ~2^61
	1152921504606830593, // ~2^60
	288230376151130113,  // ~2^58
	65537,               // F4
	7,                   // tiny prime (stress small moduli)
}

func TestAddSubNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range testModuli {
		for i := 0; i < 1000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := Add(a, b, q), (a+b)%q; got != want {
				t.Fatalf("Add(%d,%d,%d)=%d want %d", a, b, q, got, want)
			}
			if got, want := Sub(a, b, q), (a+q-b)%q; got != want {
				t.Fatalf("Sub(%d,%d,%d)=%d want %d", a, b, q, got, want)
			}
			if got, want := Neg(a, q), (q-a)%q; got != want {
				t.Fatalf("Neg(%d,%d)=%d want %d", a, q, got, want)
			}
		}
	}
}

func bigMulMod(a, b, q uint64) uint64 {
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	x.Mul(x, y)
	x.Mod(x, new(big.Int).SetUint64(q))
	return x.Uint64()
}

func TestMulAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range testModuli {
		for i := 0; i < 2000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			want := bigMulMod(a, b, q)
			if got := Mul(a, b, q); got != want {
				t.Fatalf("Mul(%d,%d,%d)=%d want %d", a, b, q, got, want)
			}
		}
	}
}

func TestBarrettMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range testModuli {
		br := NewBarrett(q)
		for i := 0; i < 5000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := br.Mul(a, b), Mul(a, b, q); got != want {
				t.Fatalf("q=%d: Barrett.Mul(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
		// Edge cases.
		for _, a := range []uint64{0, 1, q - 1} {
			for _, b := range []uint64{0, 1, q - 1} {
				if got, want := br.Mul(a, b), Mul(a, b, q); got != want {
					t.Fatalf("q=%d: Barrett.Mul(%d,%d)=%d want %d", q, a, b, got, want)
				}
			}
		}
	}
}

func TestBarrettMulProperty(t *testing.T) {
	q := uint64(1152921504606830593)
	br := NewBarrett(q)
	f := func(a, b uint64) bool {
		a, b = a%q, b%q
		return br.Mul(a, b) == bigMulMod(a, b, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrettReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, q := range testModuli {
		br := NewBarrett(q)
		for i := 0; i < 2000; i++ {
			a := rng.Uint64()
			if got, want := br.Reduce(a), a%q; got != want {
				t.Fatalf("q=%d: Reduce(%d)=%d want %d", q, a, got, want)
			}
		}
	}
}

func TestMulShoup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, q := range testModuli {
		for i := 0; i < 2000; i++ {
			x := rng.Uint64() % q
			w := rng.Uint64() % q
			ws := ShoupPrecomp(w, q)
			if got, want := MulShoup(x, w, ws, q), Mul(x, w, q); got != want {
				t.Fatalf("q=%d: MulShoup(%d,%d)=%d want %d", q, x, w, got, want)
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	for _, q := range testModuli {
		if !IsPrime(q) {
			continue
		}
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 200; i++ {
			a := rng.Uint64()%(q-1) + 1
			inv := Inv(a, q)
			if Mul(a, inv, q) != 1 {
				t.Fatalf("q=%d: a*Inv(a) != 1 for a=%d", q, a)
			}
		}
		if got := Pow(3, 0, q); got != 1 {
			t.Fatalf("Pow(3,0,%d)=%d want 1", q, got)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0,q) should panic")
		}
	}()
	Inv(0, 65537)
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{}
	sieve := make([]bool, 10000)
	for i := 2; i < len(sieve); i++ {
		if !sieve[i] {
			primes[uint64(i)] = true
			for j := i * i; j < len(sieve); j += i {
				sieve[j] = true
			}
		}
	}
	for n := uint64(0); n < 10000; n++ {
		if IsPrime(n) != primes[n] {
			t.Fatalf("IsPrime(%d)=%v want %v", n, IsPrime(n), primes[n])
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	cases := map[uint64]bool{
		18446744073709551557: true,  // largest 64-bit prime
		18446744073709551556: false, // even
		2305843009213693951:  true,  // Mersenne 2^61-1
		2305843009213693953:  false,
		1152921504606846883:  true,
	}
	for n, want := range cases {
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, logN := range []int{10, 12, 14} {
		primes, err := GenerateNTTPrimes(45, logN, 10)
		if err != nil {
			t.Fatal(err)
		}
		twoN := uint64(1) << (logN + 1)
		seen := map[uint64]bool{}
		for _, q := range primes {
			if !IsPrime(q) {
				t.Fatalf("generated non-prime %d", q)
			}
			if (q-1)%twoN != 0 {
				t.Fatalf("prime %d not ≡ 1 mod %d", q, twoN)
			}
			if seen[q] {
				t.Fatalf("duplicate prime %d", q)
			}
			seen[q] = true
			// Must stay close to 2^45 (within 1% for these sizes).
			center := float64(uint64(1) << 45)
			if r := float64(q)/center - 1; r > 0.01 || r < -0.01 {
				t.Fatalf("prime %d too far from 2^45 (ratio %f)", q, r+1)
			}
		}
	}
}

func TestGenerateNTTPrimesErrors(t *testing.T) {
	if _, err := GenerateNTTPrimes(63, 10, 1); err == nil {
		t.Fatal("expected error for logQ=63")
	}
	if _, err := GenerateNTTPrimes(5, 10, 1); err == nil {
		t.Fatal("expected error for logQ < logN+2")
	}
}

func TestPrimitiveRootOfUnity(t *testing.T) {
	for _, logN := range []int{4, 10, 12} {
		primes, err := GenerateNTTPrimes(40, logN, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := uint64(1) << logN
		for _, q := range primes {
			psi, err := PrimitiveRootOfUnity(q, logN)
			if err != nil {
				t.Fatal(err)
			}
			if Pow(psi, n, q) != q-1 {
				t.Fatalf("psi^N != -1 for q=%d", q)
			}
			if Pow(psi, 2*n, q) != 1 {
				t.Fatalf("psi^2N != 1 for q=%d", q)
			}
		}
	}
	if _, err := PrimitiveRootOfUnity(65537, 20); err == nil {
		t.Fatal("expected error when 2N does not divide q-1")
	}
}

func BenchmarkBarrettMul(b *testing.B) {
	q := uint64(1152921504606830593)
	br := NewBarrett(q)
	x, y := uint64(123456789123456), uint64(987654321987654)
	for i := 0; i < b.N; i++ {
		x = br.Mul(x, y)
	}
	_ = x
}

func BenchmarkMulShoup(b *testing.B) {
	q := uint64(1152921504606830593)
	w := uint64(987654321987654)
	ws := ShoupPrecomp(w, q)
	x := uint64(123456789123456)
	for i := 0; i < b.N; i++ {
		x = MulShoup(x, w, ws, q)
	}
	_ = x
}

func BenchmarkMulDiv64(b *testing.B) {
	q := uint64(1152921504606830593)
	x, y := uint64(123456789123456), uint64(987654321987654)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y, q)
	}
	_ = x
}
