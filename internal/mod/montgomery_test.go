package mod

import (
	"math/big"
	"math/rand"
	"testing"
)

// montgomeryTestPrimes returns NTT-friendly primes spanning the supported
// width range plus small odd primes and the largest prime below 2^62, so the
// REDC bounds are exercised at both extremes of the headroom budget.
func montgomeryTestPrimes(t *testing.T) []uint64 {
	t.Helper()
	qs := []uint64{3, 5, 17, 97, 7681, 65537}
	for _, logQ := range []int{20, 30, 40, 45, 50, 55, 60, 61} {
		ps, err := GenerateNTTPrimes(logQ, 4, 2)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%d, 4, 2): %v", logQ, err)
		}
		qs = append(qs, ps...)
	}
	// Largest supported modulus: scan down from 2^62-1 for a prime.
	for q := uint64(1<<MaxModulusBits) - 1; ; q -= 2 {
		if IsPrime(q) {
			qs = append(qs, q)
			break
		}
	}
	return qs
}

func TestMontgomeryConstants(t *testing.T) {
	r := new(big.Int).Lsh(big.NewInt(1), 64)
	r2exp := new(big.Int).Lsh(big.NewInt(1), 128)
	for _, q := range montgomeryTestPrimes(t) {
		mr := NewMontgomery(q)
		// QInv is -q^-1 mod 2^64: q * -QInv must be ≡ 1.
		if q*(-mr.QInv) != 1 {
			t.Errorf("q=%d: QInv is not -q^-1 mod 2^64", q)
		}
		want := new(big.Int).Mod(r2exp, new(big.Int).SetUint64(q)).Uint64()
		if mr.R2 != want {
			t.Errorf("q=%d: R2 = %d, want 2^128 mod q = %d", q, mr.R2, want)
		}
		_ = r
	}
}

func TestMFormIFormRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, q := range montgomeryTestPrimes(t) {
		mr := NewMontgomery(q)
		qb := new(big.Int).SetUint64(q)
		for i := 0; i < 200; i++ {
			x := rng.Uint64() % q
			m := mr.MForm(x)
			if m >= q {
				t.Fatalf("q=%d: MForm(%d) = %d not canonical", q, x, m)
			}
			want := new(big.Int).Lsh(new(big.Int).SetUint64(x), 64)
			if got := want.Mod(want, qb).Uint64(); m != got {
				t.Fatalf("q=%d: MForm(%d) = %d, want x·R mod q = %d", q, x, m, got)
			}
			if back := mr.IForm(m); back != x {
				t.Fatalf("q=%d: IForm(MForm(%d)) = %d", q, x, back)
			}
		}
	}
}

func TestREDCMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rInv := new(big.Int)
	for _, q := range montgomeryTestPrimes(t) {
		mr := NewMontgomery(q)
		qb := new(big.Int).SetUint64(q)
		rInv.ModInverse(new(big.Int).Lsh(big.NewInt(1), 64), qb)
		for i := 0; i < 200; i++ {
			hi := rng.Uint64() % q // validity bound: hi < q
			lo := rng.Uint64()
			tVal := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
			tVal.Add(tVal, new(big.Int).SetUint64(lo))
			tVal.Mul(tVal, rInv)
			want := tVal.Mod(tVal, qb).Uint64()
			if got := mr.REDC(hi, lo); got != want {
				t.Fatalf("q=%d: REDC(%d,%d) = %d, want %d", q, hi, lo, got, want)
			}
			lazy := mr.REDCLazy(hi, lo)
			if lazy >= 2*q {
				t.Fatalf("q=%d: REDCLazy(%d,%d) = %d exceeds 2q", q, hi, lo, lazy)
			}
			if lazy%q != want {
				t.Fatalf("q=%d: REDCLazy(%d,%d) = %d not congruent to %d", q, hi, lo, lazy, want)
			}
		}
	}
}

// TestMulLazyBounds drives MulLazy across its full documented validity range
// — a < 4q, b < q, as the lazy NTT butterflies do — checking the < 2q output
// bound and congruence with the canonical product.
func TestMulLazyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, q := range montgomeryTestPrimes(t) {
		mr := NewMontgomery(q)
		fourQ := 4 * q // q < 2^62, so no overflow
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % fourQ
			b := rng.Uint64() % q
			// Bias some iterations to the extremes of the bound.
			if i%10 == 0 {
				a = fourQ - 1
			}
			if i%10 == 1 {
				b = q - 1
				a = fourQ - 1
			}
			lazy := mr.MulLazy(a, b)
			if lazy >= 2*q {
				t.Fatalf("q=%d: MulLazy(%d,%d) = %d exceeds 2q", q, a, b, lazy)
			}
			want := mr.Mul(a%q, b)
			wantLift := mr.Mul(a, b)
			if wantLift != want {
				t.Fatalf("q=%d: Mul(%d,%d) = %d differs from reduced-operand product %d", q, a, b, wantLift, want)
			}
			if lazy%q != want {
				t.Fatalf("q=%d: MulLazy(%d,%d) = %d not congruent to Mul = %d", q, a, b, lazy, want)
			}
		}
	}
}

// TestMulMatchesBarrett pins the M-form product to the Barrett ground truth:
// IForm(Mul(MForm(a), MForm(b))) must equal Barrett.Mul(a, b) exactly.
func TestMulMatchesBarrett(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, q := range montgomeryTestPrimes(t) {
		mr := NewMontgomery(q)
		br := NewBarrett(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			got := mr.IForm(mr.Mul(mr.MForm(a), mr.MForm(b)))
			if want := br.Mul(a, b); got != want {
				t.Fatalf("q=%d: M-form product of (%d,%d) = %d, Barrett = %d", q, a, b, got, want)
			}
		}
	}
}

func TestNewMontgomeryPanics(t *testing.T) {
	for _, q := range []uint64{0, 2, 1 << 40, uint64(1) << 63, (uint64(1) << 62) + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMontgomery(%d) did not panic", q)
				}
			}()
			NewMontgomery(q)
		}()
	}
}

func BenchmarkMontgomeryMul(b *testing.B) {
	q := uint64(1152921504606830593)
	mr := NewMontgomery(q)
	x, y := uint64(123456789123456), uint64(987654321987654)
	for i := 0; i < b.N; i++ {
		x = mr.Mul(x, y)
	}
	_ = x
}

func BenchmarkMontgomeryMulLazy(b *testing.B) {
	q := uint64(1152921504606830593)
	mr := NewMontgomery(q)
	x, y := uint64(123456789123456), uint64(987654321987654)
	for i := 0; i < b.N; i++ {
		// Feedback stays valid: the result is < 2q and MulLazy accepts a < 4q.
		x = mr.MulLazy(x, y)
	}
	_ = x
}

func TestFusedTwiddleTables(t *testing.T) {
	for _, n := range []int{4, 8, 64} {
		tw := make([]uint64, n)
		for i := range tw {
			tw[i] = uint64(1000 + i) // distinct sentinels, layout-only check
		}
		fwd := FusedNTTTwiddles(tw)
		inv := FusedINTTTwiddles(tw)
		if len(fwd) != 3*(n/2) || len(inv) != 3*(n/2) {
			t.Fatalf("n=%d: table lengths %d/%d, want %d", n, len(fwd), len(inv), 3*(n/2))
		}
		for k := 1; k < n/2; k++ {
			if fwd[3*k] != tw[k] || fwd[3*k+1] != tw[2*k] || fwd[3*k+2] != tw[2*k+1] {
				t.Fatalf("n=%d: forward triple %d = {%d,%d,%d}, want {tw[%d],tw[%d],tw[%d]}",
					n, k, fwd[3*k], fwd[3*k+1], fwd[3*k+2], k, 2*k, 2*k+1)
			}
			if inv[3*k] != tw[2*k] || inv[3*k+1] != tw[2*k+1] || inv[3*k+2] != tw[k] {
				t.Fatalf("n=%d: inverse triple %d = {%d,%d,%d}, want {tw[%d],tw[%d],tw[%d]}",
					n, k, inv[3*k], inv[3*k+1], inv[3*k+2], 2*k, 2*k+1, k)
			}
		}
	}
}
