package mod

import "fmt"

// millerRabinBases is a base set proven sufficient for deterministic
// primality testing of all integers below 3.3 * 10^24, which covers uint64.
var millerRabinBases = [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for all uint64 n.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range millerRabinBases {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^s with d odd.
	d := n - 1
	s := 0
	for d&1 == 0 {
		d >>= 1
		s++
	}
	for _, a := range millerRabinBases {
		x := powSlow(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < s-1; i++ {
			x = Mul(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// powSlow is a division-based modular exponentiation valid for any modulus,
// used only by the primality test where q may exceed MaxModulusBits.
func powSlow(a, e, q uint64) uint64 {
	result := uint64(1)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base, q)
		}
		base = Mul(base, base, q)
		e >>= 1
	}
	return result
}

// GenerateNTTPrimes returns count distinct primes q ≡ 1 (mod 2N), N = 2^logN,
// as close to 2^logQ as possible, alternating above and below 2^logQ so that
// products of consecutive primes stay near 2^(k·logQ). This mirrors the
// prime-selection strategy of RNS-CKKS libraries, which keeps the
// rescaling-induced scale drift small (the paper sizes moduli 2^40..2^60).
func GenerateNTTPrimes(logQ, logN, count int) ([]uint64, error) {
	if logQ < logN+2 || logQ > MaxModulusBits-1 {
		return nil, fmt.Errorf("mod: logQ=%d outside supported range [logN+2,%d]", logQ, MaxModulusBits-1)
	}
	twoN := uint64(1) << (logN + 1)
	center := uint64(1) << logQ
	lo := center - (center-1)%twoN // largest candidate ≡ 1 mod 2N, ≤ center
	hi := lo + twoN                // smallest candidate above center
	primes := make([]uint64, 0, count)
	for len(primes) < count {
		var cand uint64
		if lo < twoN || hi-center < center-lo {
			cand, hi = hi, hi+twoN
		} else {
			cand, lo = lo, lo-twoN
		}
		if IsPrime(cand) {
			primes = append(primes, cand)
		}
		if hi >= 1<<MaxModulusBits && lo < twoN {
			return nil, fmt.Errorf("mod: exhausted candidates around 2^%d for 2N=%d", logQ, twoN)
		}
	}
	return primes, nil
}

// PrimitiveRootOfUnity returns a primitive 2N-th root of unity ψ modulo the
// prime q, with N = 2^logN. It requires q ≡ 1 (mod 2N). Because 2N is a
// power of two, ψ has order exactly 2N iff ψ^N = -1 (mod q), so candidates
// x^((q-1)/2N) need only that single check.
func PrimitiveRootOfUnity(q uint64, logN int) (uint64, error) {
	twoN := uint64(1) << (logN + 1)
	if (q-1)%twoN != 0 {
		return 0, fmt.Errorf("mod: q=%d is not ≡ 1 mod 2N=%d", q, twoN)
	}
	br := NewBarrett(q)
	exp := (q - 1) / twoN
	n := uint64(1) << logN
	for x := uint64(2); x < q; x++ {
		psi := br.Pow(x, exp)
		if br.Pow(psi, n) == q-1 { // ψ^N == -1 mod q
			return psi, nil
		}
	}
	return 0, fmt.Errorf("mod: no primitive 2N-th root of unity found for q=%d", q)
}
