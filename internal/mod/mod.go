// Package mod implements 64-bit modular arithmetic for word-sized NTT-friendly
// primes, the scalar substrate of the Full-RNS CKKS scheme accelerated by BTS.
//
// All moduli handled by this package are odd primes q < 2^62, which leaves
// enough headroom for the lazy reductions used by the Barrett and Shoup
// multiplication routines. The package also provides deterministic 64-bit
// primality testing and generation of NTT-friendly primes (q ≡ 1 mod 2N).
package mod

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. Keeping q < 2^62
// guarantees that 3q fits in a 64-bit word, which the Barrett reduction
// below relies on.
const MaxModulusBits = 62

// Add returns a+b mod q. Inputs must already be reduced.
func Add(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

// Sub returns a-b mod q. Inputs must already be reduced.
func Sub(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return q - b + a
}

// Neg returns -a mod q. The input must already be reduced.
func Neg(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}

// Mul returns a*b mod q using a 128-bit product and hardware division.
// It is the slow, always-correct fallback; hot paths use Barrett or Shoup.
func Mul(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%q, lo, q)
	return rem
}

// Barrett holds the precomputed constant floor(2^128/q) used for fast
// modular multiplication with a fixed modulus.
type Barrett struct {
	Q  uint64
	mu [2]uint64 // mu[0]*2^64 + mu[1] = floor(2^128 / q), hi word first
}

// NewBarrett precomputes the Barrett constant for q. It panics if q is 0 or
// wider than MaxModulusBits, which would void the reduction's error bound.
func NewBarrett(q uint64) Barrett {
	if q == 0 || bits.Len64(q) > MaxModulusBits {
		panic(fmt.Sprintf("mod: modulus %d outside supported range (0, 2^%d)", q, MaxModulusBits))
	}
	// Compute floor(2^128 / q) with schoolbook long division on the
	// 128-bit value 2^128-1 (the -1 never changes the quotient because q>1
	// never divides 2^128 exactly for odd q... it does change it for q=1,
	// which is excluded).
	hi := ^uint64(0) / q
	rem := ^uint64(0) % q
	// Now divide (rem+1)*2^64 by q for the low word.
	r := rem + 1
	var lo uint64
	if r == q { // (2^64-1 mod q)+1 == q means q | 2^64*... handle carry
		lo = 0
		hi++
	} else {
		lo, _ = bits.Div64(r%q, 0, q)
	}
	return Barrett{Q: q, mu: [2]uint64{hi, lo}}
}

// Mul returns a*b mod q via Barrett reduction. Inputs must be < q.
func (br Barrett) Mul(a, b uint64) uint64 {
	ahi, alo := bits.Mul64(a, b)
	return br.Reduce128(ahi, alo)
}

// Reduce128 reduces the 128-bit value ahi*2^64+alo modulo q for ANY 128-bit
// input, not only products of reduced operands: the Barrett quotient is only
// needed mod 2^64 (the remainder fits a word), and the truncation undershoot
// stays ≤ 2 regardless of the input's magnitude, which the two conditional
// subtractions absorb. This is what lets the lazy 128-bit MAC accumulators
// (ring.Acc128, BConv stage 2) sum many unreduced products and reduce once.
func (br Barrett) Reduce128(ahi, alo uint64) uint64 {
	// qhat = floor(a*mu / 2^128), computed discarding the lowest partial
	// product's low word; the truncation undershoots floor(a/q) by at most
	// two, hence the two conditional subtractions at the end.
	c0, _ := bits.Mul64(alo, br.mu[1])
	t1hi, t1lo := bits.Mul64(ahi, br.mu[1])
	t2hi, t2lo := bits.Mul64(alo, br.mu[0])
	s, c1 := bits.Add64(t1lo, t2lo, 0)
	_, c2 := bits.Add64(s, c0, 0)
	qhat := ahi*br.mu[0] + t1hi + t2hi + c1 + c2
	r := alo - qhat*br.Q
	if r >= br.Q {
		r -= br.Q
	}
	if r >= br.Q {
		r -= br.Q
	}
	return r
}

// Reduce returns a mod q for a full 64-bit a.
func (br Barrett) Reduce(a uint64) uint64 {
	return br.Reduce128(0, a)
}

// ShoupPrecomp returns floor(w * 2^64 / q), the Shoup constant attached to a
// fixed multiplicand w (e.g. an NTT twiddle factor).
func ShoupPrecomp(w, q uint64) uint64 {
	hi, _ := bits.Div64(w%q, 0, q)
	return hi
}

// MulShoup returns x*w mod q where wShoup = ShoupPrecomp(w, q).
// x must be < q; w must be < q. This is the fastest multiplication available
// and is used for all twiddle-factor products inside the NTT.
func MulShoup(x, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(x, wShoup)
	r := x*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// Pow returns a^e mod q by square-and-multiply.
func Pow(a, e, q uint64) uint64 {
	br := NewBarrett(q)
	return br.Pow(a, e)
}

// Pow returns a^e mod q using the receiver's precomputed constant.
func (br Barrett) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % br.Q
	for e > 0 {
		if e&1 == 1 {
			result = br.Mul(result, base)
		}
		base = br.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns a^-1 mod q for prime q, via Fermat's little theorem.
// It panics if a ≡ 0 mod q, which has no inverse.
func Inv(a, q uint64) uint64 {
	if a%q == 0 {
		panic("mod: zero has no modular inverse")
	}
	return Pow(a, q-2, q)
}
