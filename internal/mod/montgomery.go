package mod

import (
	"fmt"
	"math/bits"
)

// Montgomery holds the precomputed constants for Montgomery-domain arithmetic
// with a fixed odd modulus q < 2^62 and the word-sized radix R = 2^64.
//
// A value x is "in Montgomery form" (M-form) when the word stored is
// x·R mod q. The fused reduction REDC maps a 128-bit T < q·2^64 to
// T·R^-1 mod q in three multiplies, so a product of two M-form words REDCs
// straight back to M-form: REDC(aR · bR) = abR. Multiplication by a plain
// (non-M-form) constant likewise preserves the operand's form, because
// (aR)·w ≡ (aw)R. The ring layer exploits both identities: operand×operand
// kernels keep both sides in M-form, while constant tables may be stored in
// either form depending on whether the output must be a true value (base
// conversion's cross-modulus digits) or stay in M-form (twiddle factors).
//
// The lazy variants return a representative < 2q instead of canonical < q,
// saving the trailing conditional subtraction; q < 2^62 leaves two headroom
// bits, so sums u+t of two lazy values stay below 4q < 2^64 and a butterfly
// network can defer normalization to a single final pass.
type Montgomery struct {
	Q    uint64
	QInv uint64 // -q^-1 mod 2^64
	R2   uint64 // 2^128 mod q, the M-form conversion constant
}

// NewMontgomery precomputes the Montgomery constants for q. It panics if q is
// even, zero, or wider than MaxModulusBits — the REDC bounds below need
// 4q < 2^64 and an odd modulus for q^-1 mod 2^64 to exist.
func NewMontgomery(q uint64) Montgomery {
	if q == 0 || q&1 == 0 || bits.Len64(q) > MaxModulusBits {
		panic(fmt.Sprintf("mod: modulus %d unsupported for Montgomery arithmetic (need odd, < 2^%d)", q, MaxModulusBits))
	}
	// q^-1 mod 2^64 by Newton iteration: inv ≡ q^-1 mod 2^3 seeds the
	// recurrence inv ← inv·(2 − q·inv), which doubles the valid bit count
	// each step (3 → 6 → 12 → 24 → 48 → 96 ⊇ 64).
	inv := q // correct mod 2^3 for odd q
	for i := 0; i < 5; i++ {
		inv *= 2 - q*inv
	}
	// R2 = 2^128 mod q by 64 doublings of 2^64 mod q.
	r2 := (^uint64(0) % q) + 1 // 2^64 mod q (q < 2^63, so no wrap to 0 unless q | 2^64, impossible for odd q > 1)
	if r2 == q {
		r2 = 0
	}
	for i := 0; i < 64; i++ {
		r2 <<= 1
		if r2 >= q {
			r2 -= q
		}
	}
	return Montgomery{Q: q, QInv: -inv, R2: r2}
}

// REDCLazy reduces T = hi·2^64+lo to T·R^-1 mod q with the result < 2q,
// valid whenever hi < q (equivalently T < q·2^64).
func (mr Montgomery) REDCLazy(hi, lo uint64) uint64 {
	m := lo * mr.QInv
	mqHi, mqLo := bits.Mul64(m, mr.Q)
	_, carry := bits.Add64(lo, mqLo, 0)
	return hi + mqHi + carry
}

// REDC reduces T = hi·2^64+lo to the canonical T·R^-1 mod q, valid whenever
// hi < q.
func (mr Montgomery) REDC(hi, lo uint64) uint64 {
	r := mr.REDCLazy(hi, lo)
	if r >= mr.Q {
		r -= mr.Q
	}
	return r
}

// Mul returns REDC(a·b), canonical < q. For a, b in M-form this is the
// M-form product; for one plain operand it is the plain product scaled the
// same way as the other operand. Valid whenever a·b < q·2^64 — in particular
// for any a < 4q, b < q.
func (mr Montgomery) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return mr.REDC(hi, lo)
}

// MulLazy returns REDC(a·b) with the result < 2q, under the same validity
// bound as Mul. This is the butterfly multiply of the lazy NTT.
func (mr Montgomery) MulLazy(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return mr.REDCLazy(hi, lo)
}

// MForm returns x·R mod q (canonical) for any 64-bit x, converting a true
// residue into Montgomery form.
func (mr Montgomery) MForm(x uint64) uint64 {
	return mr.Mul(x, mr.R2)
}

// Fused twiddle-pair tables for radix-4 (merged two-layer) butterfly
// networks.
//
// A radix-4 Cooley–Tukey butterfly merges two consecutive radix-2 stages: the
// group indexed k = mLen+g in the first merged layer consumes twiddle tw[k],
// and its two child groups in the second layer consume the adjacent pair
// tw[2k], tw[2k+1] (the bit-reversed Longa–Naehrig layout keeps children of
// group k exactly at 2k and 2k+1). The fused tables below interleave each
// group's three twiddles into one cache-resident triple so the merged kernel
// issues a single streaming load per group instead of gathering from two
// halves of the per-stage table. Entries keep whatever form the source table
// has — the ring passes Montgomery-form tables, and the layout is
// form-agnostic.

// FusedNTTTwiddles builds the forward radix-4 triple table from a
// bit-reversed twiddle table tw of power-of-two length n ≥ 4: entry k of the
// result (k in [1, n/2), three words at 3k) is {tw[k], tw[2k], tw[2k+1]} —
// first-layer twiddle, then the second-layer pair.
func FusedNTTTwiddles(tw []uint64) []uint64 {
	n := len(tw)
	out := make([]uint64, 3*(n/2))
	for k := 1; k < n/2; k++ {
		out[3*k] = tw[k]
		out[3*k+1] = tw[2*k]
		out[3*k+2] = tw[2*k+1]
	}
	return out
}

// FusedINTTTwiddles builds the inverse (Gentleman–Sande) radix-4 triple table
// from a bit-reversed inverse twiddle table: entry k is
// {tw[2k], tw[2k+1], tw[k]} — the first merged layer consumes the child pair
// and the second layer the parent twiddle, the mirror image of the forward
// order.
func FusedINTTTwiddles(tw []uint64) []uint64 {
	n := len(tw)
	out := make([]uint64, 3*(n/2))
	for k := 1; k < n/2; k++ {
		out[3*k] = tw[2*k]
		out[3*k+1] = tw[2*k+1]
		out[3*k+2] = tw[k]
	}
	return out
}

// IForm returns x·R^-1 mod q (canonical) for any 64-bit x, converting a
// Montgomery-form word back to its true residue.
func (mr Montgomery) IForm(x uint64) uint64 {
	return mr.REDC(0, x)
}
