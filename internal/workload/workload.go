// Package workload generates HE-operation traces for the applications the
// BTS paper evaluates: the bootstrapping microbenchmark (T_mult,a/slot,
// Eq. 8), HELR logistic regression [39], ResNet-20 inference [59] with
// channel packing [50], and 2-way sorting [42].
//
// A trace is a sequence of primitive HE ops annotated with the level at
// which each executes and the ciphertext objects it touches; the simulator
// (internal/sim) expands each op into hardware work, and the minimum-bound
// model (Fig. 2) charges only the evk streaming of key-switching ops.
// Bootstrapping is inserted level-driven: whenever the remaining level
// budget cannot cover the next step, a full bootstrapping sub-trace is
// emitted — so the per-instance bootstrap counts of Table 6 are emergent,
// not hard-coded.
package workload

import (
	"fmt"
	"math"

	"bts/internal/params"
)

// OpKind enumerates the primitive HE ops of Section 2.3.
type OpKind int

const (
	HAdd OpKind = iota
	HMult
	HRot
	HRescale
	PMult
	PAdd
	CMult
	CAdd
	ModRaise
)

var opNames = map[OpKind]string{
	HAdd: "HAdd", HMult: "HMult", HRot: "HRot", HRescale: "HRescale",
	PMult: "PMult", PAdd: "PAdd", CMult: "CMult", CAdd: "CAdd", ModRaise: "ModRaise",
}

// String returns the op mnemonic.
func (k OpKind) String() string { return opNames[k] }

// UsesEvk reports whether the op performs key-switching (streams an evk).
func (k OpKind) UsesEvk() bool { return k == HMult || k == HRot }

// Op is one primitive HE operation at a specific level.
type Op struct {
	Kind  OpKind
	Level int
	// Rot is the rotation amount for HRot (distinct amounts need distinct
	// evks — the paper notes bootstrapping requires more than 40 of them).
	Rot int
	// CtIn are operand ciphertext IDs; CtOut is the produced ciphertext.
	// IDs drive the simulator's SW-cache (LRU) model.
	CtIn  []int
	CtOut int
	// PtID identifies the plaintext operand of PMult/PAdd (diagonal
	// matrices of the bootstrapping linear transforms); 0 = none.
	PtID int
	// Boot tags ops belonging to a bootstrapping sub-trace (Fig. 7b).
	Boot bool
}

// Trace is a named op sequence for one application run.
type Trace struct {
	Name string
	Inst params.Instance
	Ops  []Op
	// Bootstraps counts the bootstrapping sub-traces inserted.
	Bootstraps int
}

// Counts returns the per-kind op counts.
func (t *Trace) Counts() map[OpKind]int {
	c := map[OpKind]int{}
	for _, op := range t.Ops {
		c[op.Kind]++
	}
	return c
}

// KeySwitchOps counts ops that stream an evk.
func (t *Trace) KeySwitchOps() int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind.UsesEvk() {
			n++
		}
	}
	return n
}

// builder accumulates ops with automatic ciphertext IDs and level-driven
// bootstrap insertion.
type builder struct {
	inst   params.Instance
	boot   BootstrapShape
	ops    []Op
	level  int
	nextCt int
	nextPt int
	boots  int
	inBoot bool
}

func newBuilder(inst params.Instance, boot BootstrapShape) *builder {
	return &builder{inst: inst, boot: boot, level: inst.L, nextCt: 1, nextPt: 1}
}

func (b *builder) ct() int { b.nextCt++; return b.nextCt - 1 }
func (b *builder) pt() int { b.nextPt++; return b.nextPt - 1 }

func (b *builder) emit(kind OpKind, in []int, out int, rot, ptID int) {
	b.ops = append(b.ops, Op{
		Kind: kind, Level: b.level, Rot: rot, CtIn: in, CtOut: out, PtID: ptID, Boot: b.inBoot,
	})
}

// need ensures at least d usable levels remain, bootstrapping if not.
// The bootstrap itself consumes boot.Levels levels from the top.
func (b *builder) need(d int, workingSet []int) {
	if b.level-d >= 1 {
		return
	}
	if b.inBoot {
		panic("workload: bootstrap budget exhausted inside bootstrapping")
	}
	for _, ctID := range workingSet {
		b.bootstrapCt(ctID)
	}
}

// bootstrapCt emits a full bootstrapping sub-trace for one ciphertext and
// resets the builder's level to L - boot.Levels.
func (b *builder) bootstrapCt(ctID int) {
	b.inBoot = true
	b.boots++
	saved := b.level
	_ = saved
	b.level = b.inst.L
	b.boot.emitOps(b, ctID)
	b.level = b.inst.L - b.boot.Levels()
	b.inBoot = false
}

// dropTo lowers the builder's current level (rescales are emitted by the
// individual step helpers; this is for bookkeeping after multi-level steps).
func (b *builder) dropTo(lvl int) {
	if lvl < 0 {
		panic(fmt.Sprintf("workload: level underflow to %d", lvl))
	}
	b.level = lvl
}

// --- Bootstrapping shape (the [40]-style pipeline at paper scale) -----------

// BootstrapShape parameterizes the op counts of one bootstrapping: grouped
// CoeffToSlot/SlotToCoeff stages evaluated with BSGS, the conjugate split,
// and two EvalMod sine evaluations (Section 2.4: "hundreds of primitive HE
// ops", HMult+HRot > 77% of the time).
type BootstrapShape struct {
	// CtSStages / StCStages hold the diagonal count of each grouped
	// linear-transform stage.
	CtSStages []int
	StCStages []int
	// SineDegree of the Chebyshev approximation (per conjugate half).
	SineDegree int
	// EvalModDepth is the level consumption of one EvalMod (incl. the
	// double-angle/arcsine refinements of [12, 58] at paper scale).
	EvalModDepth int
}

// PaperBootstrapShape reproduces the paper's L_boot = 19 budget for
// fully-packed bootstrapping at N = 2^17: 3 CtS stages (radix 64/32/32 over
// 2^16 slots), depth-11 EvalMod, 3 StC stages, and 2 levels of scaling
// corrections. Key-switch count ≈ 143, matching the minimum-bound T_boot
// of Section 3.4 (≈14 ms at 1 TB/s for INS-1).
func PaperBootstrapShape() BootstrapShape {
	return BootstrapShape{
		CtSStages:    []int{127, 63, 63},
		StCStages:    []int{63, 63, 127},
		SineDegree:   63,
		EvalModDepth: 11,
	}
}

// Levels returns L_boot, the levels one bootstrapping consumes.
func (bs BootstrapShape) Levels() int {
	return len(bs.CtSStages) + bs.EvalModDepth + len(bs.StCStages) + 2
}

// bsgs returns (babySteps, giantSteps) rotation counts for a stage with d
// diagonals.
func bsgs(d int) (int, int) {
	n1 := 1
	best := math.MaxInt32
	bestN1 := 1
	for n1 = 1; n1 <= d*2; n1 <<= 1 {
		c := n1 + (d+n1-1)/n1
		if c < best {
			best = c
			bestN1 = n1
		}
	}
	return bestN1, (d + bestN1 - 1) / bestN1
}

// emitOps appends one bootstrapping's ops to the builder. ctID is the
// ciphertext being refreshed.
func (bs BootstrapShape) emitOps(b *builder, ctID int) {
	cur := ctID
	out := b.ct()
	b.emit(ModRaise, []int{cur}, out, 0, 0)
	cur = out

	// Each stage's rotation amounts are scaled by the product of the
	// radices of the preceding stages, as in the real grouped FFT
	// decomposition — this is what makes bootstrapping need the paper's
	// "more than 40" distinct rotation evks.
	stride := 1
	stage := func(diags int) {
		babies, giants := bsgs(diags)
		// Baby-step rotations of the running ciphertext; the rotated copies
		// stay live across all giant-step groups (they dominate the SW
		// cache working set of a linear-transform stage).
		babyIDs := make([]int, babies)
		babyIDs[0] = cur
		for r := 1; r < babies; r++ {
			babyIDs[r] = b.ct()
			b.emit(HRot, []int{cur}, babyIDs[r], r*stride, 0)
		}
		// One PMult + HAdd per diagonal (plaintext diagonals are distinct
		// cacheable objects), one giant-step HRot per group.
		for g := 0; g < giants; g++ {
			inGroup := babies
			if rest := diags - g*babies; rest < inGroup {
				inGroup = rest
			}
			for d := 0; d < inGroup; d++ {
				b.emit(PMult, []int{babyIDs[d%babies]}, b.ct(), 0, b.pt())
				b.emit(HAdd, []int{cur}, cur, 0, 0)
			}
			if g > 0 {
				b.emit(HRot, []int{cur}, b.ct(), g*babies*stride, 0)
			}
		}
		next := b.ct()
		b.emit(HRescale, []int{cur}, next, 0, 0)
		cur = next
		stride *= (diags + 1) / 2 // the stage's radix
		b.dropTo(b.level - 1)
	}

	for _, d := range bs.CtSStages {
		stage(d)
	}

	// Conjugate split: one conjugation (an HRot-class key-switch) + adds.
	conj := b.ct()
	b.emit(HRot, []int{cur}, conj, -1, 0) // conjugation key
	ctR := b.ct()
	ctI := b.ct()
	b.emit(HAdd, []int{cur, conj}, ctR, 0, 0)
	b.emit(HAdd, []int{cur, conj}, ctI, 0, 0)

	// EvalMod on both halves: Chebyshev basis + giants + PS recombination.
	evalMod := func(id int) int {
		m := 0
		for 1<<m < bs.SineDegree+1 {
			m++
		}
		half := (m + 1) / 2
		bsCount := 1 << half
		hmults := (bsCount - 1) + (m - half) + (1 << (m - half)) // basis + giants + PS nodes
		lvl0 := b.level
		for i := 0; i < hmults; i++ {
			// Descend levels roughly uniformly across the EvalMod depth.
			b.level = lvl0 - (i*(bs.EvalModDepth-1))/hmults
			if b.level < 1 {
				b.level = 1
			}
			next := b.ct()
			b.emit(HMult, []int{id, id}, next, 0, 0)
			b.emit(HRescale, []int{next}, next, 0, 0)
			id = next
			// Constant scaling steps interleave.
			if i%3 == 0 {
				b.emit(CMult, []int{id}, id, 0, 0)
			}
			b.emit(HAdd, []int{id}, id, 0, 0)
		}
		b.level = lvl0 - bs.EvalModDepth
		return id
	}
	lvlBefore := b.level
	sR := evalMod(ctR)
	b.level = lvlBefore
	sI := evalMod(ctI)
	comb := b.ct()
	b.emit(HAdd, []int{sR, sI}, comb, 0, 0)
	cur = comb

	for _, d := range bs.StCStages {
		stage(d)
	}
	// Final scale-correction rescales (the 2 extra levels of the budget).
	for i := 0; i < 2; i++ {
		next := b.ct()
		b.emit(HRescale, []int{cur}, next, 0, 0)
		cur = next
		b.dropTo(b.level - 1)
	}
}

// BootstrapTrace returns a single bootstrapping as a standalone trace
// (the microbenchmark behind T_mult,a/slot and Fig. 10).
func BootstrapTrace(inst params.Instance, shape BootstrapShape) Trace {
	b := newBuilder(inst, shape)
	b.inBoot = true
	b.boots = 1
	b.level = inst.L
	shape.emitOps(b, b.ct())
	return Trace{Name: "bootstrap", Inst: inst, Ops: b.ops, Bootstraps: 1}
}

// CompactBootstrapShape is a lighter pipeline for instances with small L
// (the paper notes L_boot ranges from 10 to 20; smaller budgets use less
// precise algorithms). It consumes 13 levels.
func CompactBootstrapShape() BootstrapShape {
	return BootstrapShape{
		CtSStages:    []int{255, 255},
		StCStages:    []int{255, 255},
		SineDegree:   31,
		EvalModDepth: 7,
	}
}

// ShapeForInstance picks the bootstrapping algorithm an instance can afford:
// the paper's 19-level pipeline when L allows it, the compact 13-level one
// otherwise. ok is false when the instance cannot bootstrap at all
// (L below the minimum — the dotted line of Fig. 1a).
func ShapeForInstance(inst params.Instance) (BootstrapShape, bool) {
	paper := PaperBootstrapShape()
	if inst.L >= paper.Levels()+2 {
		return paper, true
	}
	compact := CompactBootstrapShape()
	if inst.L >= compact.Levels()+1 {
		return compact, true
	}
	return BootstrapShape{}, false
}
