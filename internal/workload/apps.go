package workload

import (
	"bts/internal/params"
)

// AmortizedMultTrace is the T_mult,a/slot microbenchmark of Eq. 8: one
// bootstrapping followed by one HMult+HRescale at every usable level
// ℓ = L-L_boot .. 1. Dividing the trace's execution time by
// (L-L_boot)·(N/2) yields the amortized mult time per slot.
func AmortizedMultTrace(inst params.Instance, shape BootstrapShape) Trace {
	b := newBuilder(inst, shape)
	id := b.ct()
	b.level = 0 // exhausted ciphertext: bootstrap first
	b.bootstrapCt(id)
	for lvl := inst.L - shape.Levels(); lvl >= 1; lvl-- {
		b.level = lvl
		out := b.ct()
		b.emit(HMult, []int{id, id}, out, 0, 0)
		b.emit(HRescale, []int{out}, out, 0, 0)
		id = out
	}
	return Trace{Name: "amortized-mult", Inst: inst, Ops: b.ops, Bootstraps: b.boots}
}

// UsableLevels returns L - L_boot, the levels available to applications.
func UsableLevels(inst params.Instance, shape BootstrapShape) int {
	return inst.L - shape.Levels()
}

// --- HELR: homomorphic logistic regression [39] -----------------------------

// HELRConfig mirrors the paper's evaluation: 30 iterations, batches of 1024
// MNIST images at 14×14 = 196 features.
type HELRConfig struct {
	Iterations int
	Features   int // 196
}

// DefaultHELR matches Table 5.
func DefaultHELR() HELRConfig { return HELRConfig{Iterations: 30, Features: 196} }

// HELRTrace builds the training trace. Each iteration computes encrypted
// gradients (rotation-based inner products over the feature dimension),
// evaluates a degree-7 sigmoid approximation, and updates the weights;
// the level budget forces roughly one bootstrapping per iteration on the
// paper's instances (Fig. 7b: bootstrapping ≈ half of HELR time).
func HELRTrace(inst params.Instance, shape BootstrapShape, cfg HELRConfig) Trace {
	b := newBuilder(inst, shape)
	weights := b.ct()
	data := b.ct()

	logF := 0
	for 1<<logF < cfg.Features {
		logF++
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Inner products: rotate-and-add reduction over features (logF
		// rotations per reduction, 4 reductions per iteration) plus the
		// data product. Per-iteration depth ≈ 9 levels (product 1 +
		// sigmoid 4 + update 2 + regularization 2), per [39].
		b.need(2, []int{weights})
		prod := b.ct()
		b.emit(HMult, []int{weights, data}, prod, 0, 0)
		b.emit(HRescale, []int{prod}, prod, 0, 0)
		b.dropTo(b.level - 1)
		for rep := 0; rep < 8; rep++ {
			acc := prod
			for r := 0; r < logF; r++ {
				rot := b.ct()
				b.emit(HRot, []int{acc}, rot, 1<<r, 0)
				b.emit(HAdd, []int{acc, rot}, acc, 0, 0)
			}
		}
		// Sigmoid ≈ degree-7 polynomial: 4 HMult levels + constants.
		sig := prod
		for d := 0; d < 4; d++ {
			b.need(1, []int{sig, weights})
			next := b.ct()
			b.emit(HMult, []int{sig, sig}, next, 0, 0)
			b.emit(HRescale, []int{next}, next, 0, 0)
			b.emit(CMult, []int{next}, next, 0, 0)
			b.emit(HAdd, []int{next}, next, 0, 0)
			sig = next
			b.dropTo(b.level - 1)
		}
		// Gradient application: masked product, weight update and NAG
		// momentum steps (3 more levels: per-iteration depth totals 8).
		grad := b.ct()
		for d := 0; d < 3; d++ {
			b.need(1, []int{sig, weights})
			if d%2 == 0 {
				b.emit(PMult, []int{sig}, grad, 0, b.pt())
			} else {
				b.emit(HMult, []int{grad, weights}, grad, 0, 0)
			}
			b.emit(HRescale, []int{grad}, grad, 0, 0)
			b.dropTo(b.level - 1)
		}
		b.emit(HAdd, []int{weights, grad}, weights, 0, 0)
	}
	return Trace{Name: "HELR", Inst: inst, Ops: b.ops, Bootstraps: b.boots}
}

// --- ResNet-20 inference [59] with channel packing [50] ----------------------

// ResNetConfig describes the homomorphic CNN: 20 layers (3 groups of 6 conv
// layers plus stem and FC), each ReLU approximated by a composite minimax
// polynomial [57]; ReLULevels = 20 is calibrated so the emergent bootstrap
// counts land near Table 6 across the three instances.
type ResNetConfig struct {
	ConvLayers     int
	ReLULevels     int
	ConvRotations  int // rotations per convolution (channel-packed)
	ChannelPacking bool
}

// DefaultResNet matches the paper's setup (channel packing on).
func DefaultResNet() ResNetConfig {
	return ResNetConfig{ConvLayers: 20, ReLULevels: 20, ConvRotations: 144, ChannelPacking: true}
}

// ResNet20Trace builds the inference trace. Convolutions are realized as
// rotation+PMult accumulations over the packed feature map (2 levels each);
// ReLU is a deep polynomial evaluation. Bootstrapping is inserted whenever
// the next step does not fit the remaining levels, so the counts of Table 6
// (53/22/19 for INS-1/2/3) emerge from the instances' usable levels.
func ResNet20Trace(inst params.Instance, shape BootstrapShape, cfg ResNetConfig) Trace {
	b := newBuilder(inst, shape)
	act := b.ct()

	rotations := cfg.ConvRotations
	if !cfg.ChannelPacking {
		// Without channel packing each channel needs its own ciphertext:
		// the working set and rotation count grow by the channel factor
		// (the paper reports 17.8× worse throughput).
		rotations *= 16
	}

	conv := func() {
		b.need(2, []int{act})
		out := b.ct()
		for r := 0; r < rotations; r++ {
			rot := b.ct()
			b.emit(HRot, []int{act}, rot, r*9+1, 0)
			b.emit(PMult, []int{rot}, rot, 0, b.pt())
			b.emit(HAdd, []int{out, rot}, out, 0, 0)
		}
		b.emit(HRescale, []int{out}, out, 0, 0)
		b.dropTo(b.level - 1)
		// BN folding: one more plaintext mult level.
		b.emit(PMult, []int{out}, out, 0, b.pt())
		b.emit(HRescale, []int{out}, out, 0, 0)
		b.dropTo(b.level - 1)
		act = out
	}

	relu := func() {
		// Composite minimax polynomial: one HMult+HRescale per level, with
		// interleaved constant ops (three sub-polynomials [57]).
		for d := 0; d < cfg.ReLULevels; d++ {
			b.need(1, []int{act})
			next := b.ct()
			b.emit(HMult, []int{act, act}, next, 0, 0)
			b.emit(HMult, []int{next, act}, next, 0, 0) // PS recombination
			b.emit(HRescale, []int{next}, next, 0, 0)
			if d%2 == 0 {
				b.emit(CMult, []int{next}, next, 0, 0)
				b.emit(HAdd, []int{next}, next, 0, 0)
			}
			act = next
			b.dropTo(b.level - 1)
		}
	}

	for layer := 0; layer < cfg.ConvLayers; layer++ {
		conv()
		if layer != cfg.ConvLayers-1 {
			relu()
		}
	}
	// Average pool + FC: a rotation reduction and a final plaintext matmul.
	b.need(2, []int{act})
	for r := 0; r < 6; r++ {
		rot := b.ct()
		b.emit(HRot, []int{act}, rot, 1<<r, 0)
		b.emit(HAdd, []int{act, rot}, act, 0, 0)
	}
	b.emit(PMult, []int{act}, act, 0, b.pt())
	b.emit(HRescale, []int{act}, act, 0, 0)
	b.dropTo(b.level - 1)

	return Trace{Name: "ResNet-20", Inst: inst, Ops: b.ops, Bootstraps: b.boots}
}

// --- k-way sorting network [42] ----------------------------------------------

// SortingConfig describes the 2-way bitonic sorting network over 2^14
// elements: log²-depth compare-exchange stages, each comparison evaluated as
// a deep composite polynomial.
type SortingConfig struct {
	LogElements     int // 14
	ComparisonDepth int // levels per compare-exchange stage
}

// DefaultSorting matches the paper (2-way network, 2^14 data).
func DefaultSorting() SortingConfig { return SortingConfig{LogElements: 14, ComparisonDepth: 32} }

// SortingTrace builds the sorting trace: k(k+1)/2 compare-exchange stages
// for k = log2(elements), each a deep polynomial comparison plus masked
// swaps via rotations.
func SortingTrace(inst params.Instance, shape BootstrapShape, cfg SortingConfig) Trace {
	b := newBuilder(inst, shape)
	data := b.ct()
	stages := cfg.LogElements * (cfg.LogElements + 1) / 2

	for s := 0; s < stages; s++ {
		// Comparison polynomial: ComparisonDepth HMult levels.
		cmp := b.ct()
		b.emit(HRot, []int{data}, cmp, 1<<(s%cfg.LogElements), 0)
		for d := 0; d < cfg.ComparisonDepth; d++ {
			b.need(1, []int{cmp})
			next := b.ct()
			b.emit(HMult, []int{cmp, cmp}, next, 0, 0)
			b.emit(HRescale, []int{next}, next, 0, 0)
			if d%4 == 0 {
				b.emit(CMult, []int{next}, next, 0, 0)
				b.emit(HAdd, []int{next}, next, 0, 0)
			}
			cmp = next
			b.dropTo(b.level - 1)
		}
		// Masked swap: two products with the comparison mask + rotations.
		b.need(1, []int{data, cmp})
		swapped := b.ct()
		b.emit(HMult, []int{data, cmp}, swapped, 0, 0)
		b.emit(HRescale, []int{swapped}, swapped, 0, 0)
		b.emit(HRot, []int{swapped}, swapped, -(1 << (s % cfg.LogElements)), 0)
		b.emit(HAdd, []int{data, swapped}, data, 0, 0)
		b.dropTo(b.level - 1)
	}
	return Trace{Name: "sorting", Inst: inst, Ops: b.ops, Bootstraps: b.boots}
}
