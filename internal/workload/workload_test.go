package workload

import (
	"testing"
	"testing/quick"

	"bts/internal/params"
)

func TestBootstrapShapeLevels(t *testing.T) {
	if got := PaperBootstrapShape().Levels(); got != 19 {
		t.Fatalf("paper bootstrap consumes %d levels, want 19 (Section 2.4)", got)
	}
	if got := CompactBootstrapShape().Levels(); got != 13 {
		t.Fatalf("compact bootstrap consumes %d levels, want 13", got)
	}
}

func TestBootstrapTraceShape(t *testing.T) {
	tr := BootstrapTrace(params.INS1, PaperBootstrapShape())
	if len(tr.Ops) < 500 {
		t.Fatalf("bootstrapping should be hundreds of primitive ops, got %d", len(tr.Ops))
	}
	ks := tr.KeySwitchOps()
	// Calibrated to land the Section 3.4 minimum bound: ~143 evk streams.
	if ks < 120 || ks > 160 {
		t.Fatalf("bootstrap key-switch count %d outside [120,160]", ks)
	}
	counts := tr.Counts()
	if counts[ModRaise] != 1 {
		t.Fatalf("expected exactly one ModRaise, got %d", counts[ModRaise])
	}
	// The paper notes bootstrapping needs > 40 distinct rotation evks.
	rots := map[int]bool{}
	for _, op := range tr.Ops {
		if op.Kind == HRot {
			rots[op.Rot] = true
		}
	}
	if len(rots) <= 40 {
		t.Fatalf("only %d distinct rotation amounts, paper says > 40", len(rots))
	}
}

func TestBootstrapLevelsNeverNegative(t *testing.T) {
	for _, inst := range params.PaperInstances() {
		tr := BootstrapTrace(inst, PaperBootstrapShape())
		for i, op := range tr.Ops {
			if op.Level < 0 || op.Level > inst.L {
				t.Fatalf("%s op %d (%v) at invalid level %d", inst.Name, i, op.Kind, op.Level)
			}
		}
	}
}

func TestAmortizedTraceStructure(t *testing.T) {
	shape := PaperBootstrapShape()
	tr := AmortizedMultTrace(params.INS1, shape)
	if tr.Bootstraps != 1 {
		t.Fatalf("amortized trace has %d bootstraps, want 1", tr.Bootstraps)
	}
	// One top-level HMult per usable level outside the bootstrap.
	mults := 0
	for _, op := range tr.Ops {
		if op.Kind == HMult && !op.Boot {
			mults++
		}
	}
	if want := UsableLevels(params.INS1, shape); mults != want {
		t.Fatalf("amortized trace has %d app-level HMults, want %d", mults, want)
	}
}

func TestEmergentBootstrapCounts(t *testing.T) {
	// Table 6's per-instance bootstrap counts must emerge from level
	// accounting with the right ordering: INS-1 > INS-2 > INS-3.
	shape := PaperBootstrapShape()
	var res [3]int
	var srt [3]int
	for i, inst := range params.PaperInstances() {
		res[i] = ResNet20Trace(inst, shape, DefaultResNet()).Bootstraps
		srt[i] = SortingTrace(inst, shape, DefaultSorting()).Bootstraps
	}
	if !(res[0] > res[1] && res[1] > res[2]) {
		t.Fatalf("ResNet bootstraps %v not decreasing across INS-1/2/3", res)
	}
	if !(srt[0] > srt[1] && srt[1] > srt[2]) {
		t.Fatalf("sorting bootstraps %v not decreasing", srt)
	}
	// INS-1 magnitudes near the paper's 53 and 521.
	if res[0] < 40 || res[0] > 70 {
		t.Fatalf("ResNet INS-1 bootstraps=%d, paper reports 53", res[0])
	}
	if srt[0] < 400 || srt[0] > 650 {
		t.Fatalf("sorting INS-1 bootstraps=%d, paper reports 521", srt[0])
	}
}

func TestHELRTraceBoots(t *testing.T) {
	shape := PaperBootstrapShape()
	tr := HELRTrace(params.INS1, shape, DefaultHELR())
	if tr.Bootstraps < DefaultHELR().Iterations/2 {
		t.Fatalf("HELR on INS-1 must bootstrap ≈ once per iteration, got %d/%d",
			tr.Bootstraps, DefaultHELR().Iterations)
	}
}

func TestShapeForInstance(t *testing.T) {
	if s, ok := ShapeForInstance(params.INS1); !ok || s.Levels() != 19 {
		t.Fatal("INS-1 must use the 19-level pipeline")
	}
	small := params.Instance{Name: "small", LogN: 16, L: 15, Dnum: 2, LogQ0: 60, LogQi: 50, LogP: 60}
	if s, ok := ShapeForInstance(small); !ok || s.Levels() != 13 {
		t.Fatal("L=15 must fall back to the compact pipeline")
	}
	tiny := params.Instance{Name: "tiny", LogN: 16, L: 8, Dnum: 1, LogQ0: 60, LogQi: 50, LogP: 60}
	if _, ok := ShapeForInstance(tiny); ok {
		t.Fatal("L=8 cannot bootstrap")
	}
}

func TestTraceLevelInvariantProperty(t *testing.T) {
	// Property: every op of every app trace sits within [0, L], and evk
	// ops never appear at level 0 (key-switching needs at least one prime).
	shape := PaperBootstrapShape()
	f := func(pick uint8) bool {
		inst := params.PaperInstances()[int(pick)%3]
		traces := []Trace{
			ResNet20Trace(inst, shape, DefaultResNet()),
			SortingTrace(inst, shape, DefaultSorting()),
			HELRTrace(inst, shape, DefaultHELR()),
		}
		for _, tr := range traces {
			for _, op := range tr.Ops {
				if op.Level < 0 || op.Level > inst.L {
					return false
				}
				if op.Kind.UsesEvk() && op.Level < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelPackingReducesWork(t *testing.T) {
	// The paper reports 17.8× throughput gain from channel packing; at the
	// trace level the unpacked variant must carry far more rotations.
	shape := PaperBootstrapShape()
	packed := ResNet20Trace(params.INS1, shape, DefaultResNet())
	cfg := DefaultResNet()
	cfg.ChannelPacking = false
	unpacked := ResNet20Trace(params.INS1, shape, cfg)
	if unpacked.Counts()[HRot] < 4*packed.Counts()[HRot] {
		t.Fatalf("unpacked ResNet should need ≫ rotations: %d vs %d",
			unpacked.Counts()[HRot], packed.Counts()[HRot])
	}
}

func TestOpKindString(t *testing.T) {
	if HMult.String() != "HMult" || ModRaise.String() != "ModRaise" {
		t.Fatal("OpKind names broken")
	}
	if !HMult.UsesEvk() || !HRot.UsesEvk() || HAdd.UsesEvk() {
		t.Fatal("UsesEvk misclassifies ops")
	}
}
