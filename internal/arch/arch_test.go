package arch

import (
	"math"
	"testing"
)

func TestDefaultConfig(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.PEs() != 2048 {
		t.Fatalf("PEs=%d want 2048", c.PEs())
	}
}

func TestValidateErrors(t *testing.T) {
	c := Default()
	c.PEVer = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero grid must fail")
	}
	c = Default()
	c.LSub = 0
	if err := c.Validate(); err == nil {
		t.Fatal("LSub=0 must fail")
	}
	c = Default()
	c.HBMBytesPerSec = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero HBM bandwidth must fail")
	}
}

func TestMinNTTUMatchesEq10(t *testing.T) {
	// Eq. 10 at N=2^17, dnum=1, 1.2 GHz, 1 TB/s gives 1,328 NTTUs.
	got := MinNTTU(1<<17, 1, 1.2e9, 1e12)
	if math.Abs(got-1328) > 1 {
		t.Fatalf("MinNTTU=%f want 1328±1", got)
	}
	// BTS provisions 2,048 — comfortably above the requirement.
	if got > 2048 {
		t.Fatal("minNTTU exceeds the provisioned 2048")
	}
}

func TestMinNTTUMaximizedAtDnum1(t *testing.T) {
	prev := math.Inf(1)
	for _, dnum := range []int{1, 2, 3, 6, 14, 28} {
		v := MinNTTU(1<<17, dnum, 1.2e9, 1e12)
		if v > prev {
			t.Fatalf("minNTTU not decreasing in dnum at %d", dnum)
		}
		prev = v
	}
}

func TestTable3Totals(t *testing.T) {
	if a := TotalArea(); math.Abs(a-373.6) > 0.2 {
		t.Fatalf("total area %.2f mm², paper says 373.6", a)
	}
	if p := TotalPower(); math.Abs(p-163.2) > 0.2 {
		t.Fatalf("total power %.2f W, paper says 163.2", p)
	}
}

func TestPowerModelPlausible(t *testing.T) {
	pm := DefaultPower()
	sum := pm.NTTUW + pm.BConvW + pm.EltW + pm.ScratchW + pm.NoCW + pm.HBMW + pm.StaticW
	if sum > TotalPower()*1.1 {
		t.Fatalf("power model sums to %.1f W, exceeds chip peak %.1f W", sum, TotalPower())
	}
	if pm.HBMPJPerByte < 10 || pm.HBMPJPerByte > 100 {
		t.Fatalf("HBM energy %.1f pJ/B implausible", pm.HBMPJPerByte)
	}
}

func TestAutomorphismPEPermutation(t *testing.T) {
	// Section 5.5: under the BTS coefficient-to-PE mapping, every Galois
	// automorphism moves all residues of one PE to a single destination PE,
	// and the induced PE-level map is a permutation — the property that
	// makes HRot a contention-free NoC permutation.
	c := Default()
	n := 1 << 17
	g := uint64(1)
	for r := 0; r < 40; r++ {
		g = g * 5 % uint64(2*n)
		if !c.AutomorphismIsPermutation(g%uint64(n), n) {
			t.Fatalf("σ with g=%d is not a PE permutation", g)
		}
	}
	// Conjugation (2N-1 ≡ N-1 mod N at index level) as well.
	if !c.AutomorphismIsPermutation(uint64(2*n-1)%uint64(n), n) {
		t.Fatal("conjugation is not a PE permutation")
	}
	// Even multipliers are not valid Galois elements.
	if c.AutomorphismIsPermutation(2, n) {
		t.Fatal("even multiplier must be rejected")
	}
}
