// Package arch models the BTS hardware: the 32×64 PE grid, functional-unit
// catalog, NoCs, scratchpad and HBM of Section 5, with the area/power
// numbers of Table 3. It provides the derived quantities the paper's design
// methodology rests on, most importantly minNTTU (Eq. 10).
package arch

import "fmt"

// Config describes one BTS-like accelerator configuration. The zero value is
// not valid; use Default() (the paper's BTS) and mutate for ablations.
type Config struct {
	Name string

	// PE grid (Section 4.3): 2,048 PEs as 32 rows × 64 columns.
	PEVer, PEHor int

	// Operating frequency of NTTUs/MMAUs and the NoC (7nm nominal).
	FreqHz float64

	// Off-chip: two HBM2e stacks, 1 TB/s aggregate (Section 3.4).
	HBMBytesPerSec float64

	// On-chip scratchpad: 512 MB, 38.4 TB/s chip-wide (Section 6.1).
	ScratchpadBytes       int64
	ScratchpadBytesPerSec float64

	// PE-PE NoC bisection bandwidth (12-bit ports at 1.2 GHz → 3.6 TB/s).
	NoCBisectionBytesPerSec float64

	// LSub is the iNTT/BConv overlap batch (Eq. 11; 4 in BTS).
	LSub int
	// BConvOverlap enables the partial iNTT/BConv pipeline (Fig. 9 ablation).
	BConvOverlap bool

	// RPLP switches the data-parallelism strategy from BTS's
	// coefficient-level parallelism (CLP) to the residue-polynomial-level
	// parallelism (rPLP) of prior accelerators (Section 4.3): PEs are
	// grouped into RPLPClusters vector clusters, each processing whole
	// residue polynomials. rPLP suffers load imbalance when the number of
	// live residue polynomials is not a multiple of the cluster count
	// (the fluctuating-ℓ problem), and base conversion incurs extra
	// inter-PE exchanges.
	RPLP         bool
	RPLPClusters int
}

// Default returns the paper's BTS configuration.
func Default() Config {
	return Config{
		Name:                    "BTS",
		PEVer:                   32,
		PEHor:                   64,
		FreqHz:                  1.2e9,
		HBMBytesPerSec:          1e12,
		ScratchpadBytes:         512 << 20,
		ScratchpadBytesPerSec:   38.4e12,
		NoCBisectionBytesPerSec: 3.6e12,
		LSub:                    4,
		BConvOverlap:            true,
	}
}

// PEs returns the total processing-element count (one NTTU + BConvU each).
func (c Config) PEs() int { return c.PEVer * c.PEHor }

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.PEVer <= 0 || c.PEHor <= 0 {
		return fmt.Errorf("arch: non-positive PE grid %dx%d", c.PEVer, c.PEHor)
	}
	if c.FreqHz <= 0 || c.HBMBytesPerSec <= 0 || c.ScratchpadBytes <= 0 {
		return fmt.Errorf("arch: non-positive rate/capacity in %q", c.Name)
	}
	if c.LSub < 1 {
		return fmt.Errorf("arch: LSub must be ≥ 1")
	}
	return nil
}

// MinNTTU evaluates Eq. 10: the number of fully-pipelined butterfly units
// needed to finish the (dnum+2)·(k+ℓ+1) residue-polynomial (i)NTTs of one
// HMult within the evk streaming time 2·dnum·(k+ℓ+1)·N·8B / BW. The value
// is maximized at dnum = 1 (1,328 for N = 2^17 at 1.2 GHz and 1 TB/s),
// which is why BTS provisions 2,048 NTTUs.
func MinNTTU(n int, dnum int, freqHz, hbmBytesPerSec float64) float64 {
	nf := float64(n)
	butterflies := float64(dnum+2) * nf * log2f(nf) / 2
	computeTime := butterflies / freqHz
	evkBytes := 2 * float64(dnum) * nf * 8
	loadTime := evkBytes / hbmBytesPerSec
	return computeTime / loadTime
}

func log2f(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// --- Table 3: area and power -------------------------------------------------

// Component is one row of Table 3.
type Component struct {
	Name    string
	AreaMM2 float64 // total chip area of all instances
	PowerW  float64 // peak power of all instances
}

// Table3 returns the paper's component-level area/power breakdown (already
// aggregated chip-wide, bottom half of Table 3).
func Table3() []Component {
	return []Component{
		{"2048 PEs", 317.2, 73.21},
		{"Inter-PE NoC", 3.06, 45.93},
		{"Global BrU + NoC", 0.42, 0.10},
		{"128 local BrUs", 3.69, 0.04},
		{"HBM2e NoC", 0.10, 6.81},
		{"2 HBM2e stacks", 29.6, 31.76},
		{"PCIe5x16 interface", 19.6, 5.37},
	}
}

// TotalArea returns the paper's 373.6 mm².
func TotalArea() float64 {
	s := 0.0
	for _, c := range Table3() {
		s += c.AreaMM2
	}
	return s
}

// TotalPower returns the paper's 163.2 W peak.
func TotalPower() float64 {
	s := 0.0
	for _, c := range Table3() {
		s += c.PowerW
	}
	return s
}

// PowerModel exposes the component powers the simulator charges while a
// resource is busy (W), plus the static floor.
type PowerModel struct {
	NTTUW        float64 // all NTTUs busy (part of PE power)
	BConvW       float64 // all BConvUs busy
	EltW         float64 // element-wise ModMult/ModAdd
	ScratchW     float64 // scratchpad SRAM
	NoCW         float64 // inter-PE NoC
	HBMW         float64 // HBM stacks + PHY
	StaticW      float64 // always-on fraction (BrUs, PCIe, leakage)
	HBMPJPerByte float64
}

// DefaultPower derives the simulator's power model from Table 3's per-PE
// breakdown (top half: NTTU 12.17 mW, BConvU 8.98 mW, element-wise 1.43 mW,
// scratchpad 9.86 mW per PE at peak).
func DefaultPower() PowerModel {
	pes := 2048.0
	return PowerModel{
		NTTUW:        12.17e-3 * pes,
		BConvW:       (8.42 + 0.56) * 1e-3 * pes,
		EltW:         (1.35 + 0.08) * 1e-3 * pes,
		ScratchW:     9.86e-3 * pes,
		NoCW:         45.93,
		HBMW:         31.76 + 6.81,
		StaticW:      0.1 * 163.2,
		HBMPJPerByte: (31.76 + 6.81) / 1e12 * 1e12, // ≈ 38.6 pJ/B at 1 TB/s
	}
}
