package arch

// This file models the PE-coefficient mapping of Sections 5.1 and 5.5: the
// N residues of a residue polynomial are viewed as an (Nx, Ny, Nz) =
// (PEHor, PEVer, N/PEs) cube, with the residue of coefficient index
// i = x + Nx·y + Nx·Ny·z held by the PE at grid coordinate (x, y).

// PEOfCoeff returns the (x, y) grid coordinate holding coefficient index i.
func (c Config) PEOfCoeff(i, n int) (x, y int) {
	nx := c.PEHor
	ny := c.PEVer
	x = i % nx
	y = (i / nx) % ny
	return x, y
}

// AutomorphismDestination returns the PE that receives PE (x,y)'s residues
// under the automorphism σ_g: i ↦ i·g mod N (Eq. 5 applied to the index
// lattice). Section 5.5's key observation is that this is well defined:
// *all* residues of one PE move to the same destination PE, because indices
// held by a PE differ only in the high bit-field Nx·Ny·z, and multiplying by
// odd g preserves the low bit-field's congruence class modulo Nx·Ny.
func (c Config) AutomorphismDestination(x, y int, g uint64, n int) (dx, dy int) {
	i := x + c.PEHor*y // z = 0 representative
	di := int(uint64(i) * g % uint64(n))
	return c.PEOfCoeff(di, n)
}

// AutomorphismIsPermutation verifies that σ_g induces a *permutation* on the
// PE grid (every PE sends to exactly one PE and receives from exactly one) —
// the property that lets the xbar-based PE-PE NoC route HRot traffic without
// contention, with a communication pattern known ahead of time.
func (c Config) AutomorphismIsPermutation(g uint64, n int) bool {
	if g%2 == 0 {
		return false // Galois elements are odd
	}
	seen := make(map[[2]int]bool, c.PEs())
	for y := 0; y < c.PEVer; y++ {
		for x := 0; x < c.PEHor; x++ {
			// All z-slices of this PE must agree on the destination.
			base := x + c.PEHor*y
			nz := n / c.PEs()
			dx0, dy0 := -1, -1
			for z := 0; z < nz; z++ {
				i := base + c.PEs()*z
				di := int(uint64(i) * g % uint64(n))
				dx, dy := c.PEOfCoeff(di, n)
				if z == 0 {
					dx0, dy0 = dx, dy
				} else if dx != dx0 || dy != dy0 {
					return false
				}
			}
			dst := [2]int{dx0, dy0}
			if seen[dst] {
				return false
			}
			seen[dst] = true
		}
	}
	return len(seen) == c.PEs()
}
