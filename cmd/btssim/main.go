// Command btssim runs the BTS cycle-level simulator on one workload trace
// and prints timing, traffic, utilization and energy statistics. Usage:
//
//	btssim -instance INS-2 -workload resnet -scratchpad 512 -hbm 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bts/internal/arch"
	"bts/internal/params"
	"bts/internal/sim"
	"bts/internal/workload"
)

func main() {
	instName := flag.String("instance", "INS-1", "CKKS instance: INS-1, INS-2, INS-3, INS-Lattigo")
	wl := flag.String("workload", "bootstrap", "workload: bootstrap, amortized, helr, resnet, sorting")
	scratchMB := flag.Int64("scratchpad", 512, "scratchpad capacity in MB")
	hbmGBs := flag.Float64("hbm", 1000, "HBM bandwidth in GB/s")
	overlap := flag.Bool("overlap", true, "overlap BConv with iNTT (Eq. 11)")
	flag.Parse()

	var inst params.Instance
	switch *instName {
	case "INS-1":
		inst = params.INS1
	case "INS-2":
		inst = params.INS2
	case "INS-3":
		inst = params.INS3
	case "INS-Lattigo":
		inst = params.INSLattigo
	default:
		fmt.Fprintf(os.Stderr, "unknown instance %q\n", *instName)
		os.Exit(2)
	}

	shape, ok := workload.ShapeForInstance(inst)
	if !ok {
		fmt.Fprintf(os.Stderr, "instance %s cannot bootstrap\n", inst.Name)
		os.Exit(2)
	}
	var tr workload.Trace
	switch *wl {
	case "bootstrap":
		tr = workload.BootstrapTrace(inst, shape)
	case "amortized":
		tr = workload.AmortizedMultTrace(inst, shape)
	case "helr":
		tr = workload.HELRTrace(inst, shape, workload.DefaultHELR())
	case "resnet":
		tr = workload.ResNet20Trace(inst, shape, workload.DefaultResNet())
	case "sorting":
		tr = workload.SortingTrace(inst, shape, workload.DefaultSorting())
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	hw := arch.Default()
	hw.ScratchpadBytes = *scratchMB << 20
	hw.HBMBytesPerSec = *hbmGBs * 1e9
	hw.BConvOverlap = *overlap

	s := sim.New(hw, inst)
	st := s.RunTrace(tr)

	fmt.Printf("workload %s on %s (%d ops, %d bootstraps)\n", tr.Name, inst.Name, len(tr.Ops), tr.Bootstraps)
	fmt.Printf("  time            %.3f ms (bootstrapping %.1f%%)\n", st.Time*1e3, 100*st.BootTime/st.Time)
	fmt.Printf("  HBM traffic     %.2f GB  (cache hits %d / misses %d)\n",
		float64(st.HBMBytes)/1e9, st.CacheHits, st.CacheMiss)
	fmt.Printf("  energy          %.2f J (avg %.1f W), EDAP %.3g J·s·mm²\n",
		st.EnergyJ, st.EnergyJ/st.Time, st.EDAP())
	for _, r := range []string{"HBM", "NTTU", "BConvU", "NoC", "Scratchpad"} {
		fmt.Printf("  %-11s busy %5.1f%%\n", r, 100*st.Utilization(r))
	}
	fmt.Println("  per-op-kind time:")
	type kv struct {
		k workload.OpKind
		v float64
	}
	var kinds []kv
	for k, v := range st.PerKind {
		kinds = append(kinds, kv{k, v})
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].v > kinds[j].v })
	for _, e := range kinds {
		fmt.Printf("    %-9s %9.3f ms (%5.1f%%)\n", e.k, e.v*1e3, 100*e.v/st.Time)
	}
}
