// Command btsserve is the multi-tenant FHE serving daemon: an HTTP server
// speaking the internal/wire binary format in front of the internal/serve
// batch scheduler. Clients mirror the daemon's CKKS parameters (GET
// /v1/params), open named sessions by uploading evaluation keys, and submit
// jobs — programs of Add/Sub/Mult/Rotate/Conjugate/Rescale/Bootstrap ops —
// over wire-format ciphertexts. The secret key never leaves the client.
//
// Usage:
//
//	btsserve [-addr 127.0.0.1:8631] [-params toy|small|boot] [-workers N]
//	         [-batch 8] [-batch-window 200us] [-queue 1024]
//	         [-store DIR] [-quota BYTES] [-key-cache BYTES]
//	         [-job-timeout 0] [-drain-timeout 30s]
//	         [-metrics] [-slow-job 0] [-pprof]
//
// Fault-tolerance flags:
//
//	-store          root directory of the durable session store; sessions
//	                and their uploaded keys survive restarts (keys rehydrate
//	                lazily on first use)
//	-quota          per-session decoded evaluation-key byte quota
//	                (0 = unlimited); oversized uploads fail with HTTP 413
//	-key-cache      total decoded-key bytes kept resident across sessions
//	                (0 = unlimited; requires -store): cold sessions' keys
//	                are evicted to disk and reloaded on demand
//	-job-timeout    default per-job deadline (0 = none); requests may set
//	                their own via JobRequest.timeout_ms
//	-drain-timeout  how long SIGTERM/SIGINT shutdown waits for in-flight
//	                jobs before abandoning them (they fail with typed
//	                retryable errors, never a wrong result)
//
// The BTS_FAILPOINTS environment variable arms fault-injection failpoints
// for chaos drills, e.g.
// BTS_FAILPOINTS="serve.store.load=error,count=1;serve.op.exec=delay,delay=50ms"
// (see internal/faultinject).
//
// Observability flags:
//
//	-metrics    serve Prometheus text on GET /metrics and expvar JSON on
//	            GET /debug/vars (default true; -metrics=false opts out).
//	            Exported series cover the execution engine (dispatches,
//	            steal counts, RunBlocks shapes, pool hit/miss), the wire
//	            codec (bytes/envelopes in and out), the scheduler (batch
//	            sizes, linger waits, queue depth, job results), per-op
//	            latency histograms keyed op kind × level, the per-session
//	            op mix, and each session's running noise floor.
//	-slow-job   latency threshold above which a job's full span tree —
//	            HTTP submit → queue → per-op → evaluator internals →
//	            bootstrap phases — is retained and served on GET
//	            /v1/traces (0, the default, disables tracing).
//	-pprof      mount net/http/pprof under /debug/pprof/ (off by default;
//	            profiling endpoints on a serving port are opt-in).
//
// Parameter presets (all reduced-degree research instances, not
// production-hardened lattice parameters):
//
//	toy    N=2^11, 4 levels  — the quickstart instance, fastest turnaround
//	small  N=2^12, 8 levels  — the speedup-experiment instance (default)
//	boot   N=2^10, 15 levels — bootstrappable chain; enables the
//	                           "bootstrap" op for sessions whose rotation
//	                           keys cover the advertised set. The daemon
//	                           runs the factored two-stage radix
//	                           CoeffToSlot/SlotToCoeff pipeline, so the
//	                           advertised rotation set (and every tenant's
//	                           key upload) is a fraction of the dense
//	                           transform's requirement
//
// The daemon exits gracefully on SIGINT/SIGTERM: it stops accepting
// connections, drains queued and in-flight jobs (bounded by -drain-timeout),
// and exits 0. Durable sessions need no flush — the store is write-through.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bts/internal/ckks"
	"bts/internal/faultinject"
	"bts/internal/serve"
)

// presetLiteral returns the parameter literal for a named preset and whether
// the preset enables bootstrapping.
func presetLiteral(name string) (ckks.ParametersLiteral, bool, error) {
	switch name {
	case "toy":
		return ckks.ParametersLiteral{
			LogN: 11, LogQ: []int{50, 40, 40, 40}, LogP: 51,
			Dnum: 2, LogScale: 40, H: 64,
		}, false, nil
	case "small":
		return ckks.ParametersLiteral{
			LogN: 12, LogQ: []int{50, 40, 40, 40, 40, 40, 40, 40}, LogP: 51,
			Dnum: 3, LogScale: 40, H: 64,
		}, false, nil
	case "boot":
		logQ := []int{55}
		for i := 0; i < 14; i++ {
			logQ = append(logQ, 45)
		}
		return ckks.ParametersLiteral{
			LogN: 10, LogQ: logQ, LogP: 55,
			Dnum: 2, LogScale: 45, H: 8,
		}, true, nil
	}
	return ckks.ParametersLiteral{}, false, fmt.Errorf("unknown preset %q (toy, small, boot)", name)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8631", "listen address")
	preset := flag.String("params", "small", "parameter preset (toy, small, boot)")
	workers := flag.Int("workers", 0, "execution-engine workers (0 = shared GOMAXPROCS pool)")
	batch := flag.Int("batch", 8, "max jobs per scheduler batch")
	parallel := flag.Int("parallel", 4, "max batches in flight at once")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "linger time to fill a batch")
	queue := flag.Int("queue", 1024, "max queued jobs")
	storeDir := flag.String("store", "", "durable session store directory (empty = RAM-only sessions)")
	quota := flag.Int64("quota", 0, "per-session decoded key-byte quota (0 = unlimited)")
	keyCache := flag.Int64("key-cache", 0, "total resident decoded key bytes before LRU eviction (0 = unlimited; requires -store)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs at shutdown")
	metrics := flag.Bool("metrics", true, "serve Prometheus text on /metrics and expvar on /debug/vars")
	slowJob := flag.Duration("slow-job", 0, "trace jobs and retain span trees of jobs slower than this (0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	lit, boot, err := presetLiteral(*preset)
	if err != nil {
		log.Fatal(err)
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		log.Fatal(err)
	}
	if spec := os.Getenv("BTS_FAILPOINTS"); spec != "" {
		if err := faultinject.ArmFromSpec(spec); err != nil {
			log.Fatalf("btsserve: BTS_FAILPOINTS: %v", err)
		}
		log.Printf("btsserve: fault injection armed: %s", spec)
	}
	cfg := serve.Config{
		Params:            params,
		Workers:           *workers,
		BatchSize:         *batch,
		Parallel:          *parallel,
		BatchWindow:       *batchWindow,
		MaxQueue:          *queue,
		StoreDir:          *storeDir,
		SessionQuotaBytes: *quota,
		KeyCacheBytes:     *keyCache,
		DefaultJobTimeout: *jobTimeout,
		DisableMetrics:    !*metrics,
		SlowJob:           *slowJob,
		Pprof:             *pprofOn,
	}
	if boot {
		bp := ckks.DefaultBootstrapParams()
		cfg.Bootstrap = &bp
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if boot {
		log.Printf("btsserve: preset %s (N=2^%d, L=%d, dnum=%d), batch=%d, window=%s, bootstrap on (%d rotation keys per session)",
			*preset, params.LogN, params.MaxLevel(), params.Dnum, *batch, *batchWindow, len(srv.BootstrapRotations()))
	} else {
		log.Printf("btsserve: preset %s (N=2^%d, L=%d, dnum=%d), batch=%d, window=%s, bootstrap=false",
			*preset, params.LogN, params.MaxLevel(), params.Dnum, *batch, *batchWindow)
	}

	if *storeDir != "" {
		st := srv.Stats()
		log.Printf("btsserve: durable store at %s (%d stored sessions), quota=%d B/session, key-cache=%d B",
			*storeDir, len(st.Sessions), *quota, *keyCache)
	}
	if *jobTimeout > 0 {
		log.Printf("btsserve: default job deadline %s", *jobTimeout)
	}
	if *metrics {
		log.Printf("btsserve: metrics on /metrics, expvar on /debug/vars")
	}
	if *slowJob > 0 {
		log.Printf("btsserve: tracing jobs, retaining span trees over %s on /v1/traces", *slowJob)
	}
	if *pprofOn {
		log.Printf("btsserve: pprof on /debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		got := <-sig
		log.Printf("btsserve: %s: draining (up to %s)", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Stop accepting connections first (in-flight HTTP requests finish),
		// then drain the scheduler: queued and executing jobs complete, new
		// submits fail with a retryable "unavailable" error.
		_ = httpSrv.Shutdown(ctx)
		if err := srv.Drain(ctx); err != nil {
			log.Printf("btsserve: drain abandoned after %s: remaining jobs failed cleanly", *drainTimeout)
		} else {
			log.Print("btsserve: drained")
		}
	}()
	log.Printf("btsserve: listening on http://%s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	srv.Close()
	log.Print("btsserve: exit")
}
