// Command btsparams explores the CKKS parameter space of Section 3: the
// L/dnum/evk-size interplay at fixed security (Fig. 1) and the security of
// arbitrary (N, L, dnum) instances. Usage:
//
//	btsparams -logn 17            # Fig. 1 sweep at N=2^17
//	btsparams -logn 17 -l 27 -dnum 1   # inspect one instance
//	btsparams -preset table2      # the paper instance: chain, radices, key set
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"bts/internal/ckks"
	"bts/internal/params"
)

func main() {
	logN := flag.Int("logn", 17, "log2 of the ring degree")
	l := flag.Int("l", 0, "maximum level L (0 = sweep dnum instead)")
	dnum := flag.Int("dnum", 1, "decomposition number")
	preset := flag.String("preset", "", "named instance to describe (table2)")
	flag.Parse()

	if *preset != "" {
		if *preset != "table2" {
			fmt.Fprintf(os.Stderr, "unknown preset %q (table2)\n", *preset)
			os.Exit(2)
		}
		if err := describeTable2(); err != nil {
			fmt.Fprintln(os.Stderr, "table2:", err)
			os.Exit(1)
		}
		return
	}

	if *l > 0 {
		inst := params.Instance{
			Name: "custom", LogN: *logN, L: *l, Dnum: *dnum,
			LogQ0: 60, LogQi: 50, LogP: 60,
		}
		if err := inst.Validate(); err != nil {
			fmt.Println("invalid instance:", err)
			return
		}
		fmt.Printf("N=2^%d L=%d dnum=%d: k=%d, logPQ=%.0f, λ≈%.1f\n",
			inst.LogN, inst.L, inst.Dnum, inst.K(), inst.LogPQ(), inst.Lambda())
		fmt.Printf("  ct@L    %6.1f MiB\n", float64(inst.CtBytes(inst.L))/(1<<20))
		fmt.Printf("  evk     %6.1f MiB\n", float64(inst.EvkBytesMax())/(1<<20))
		fmt.Printf("  temp    %6.1f MiB\n", float64(inst.TempDataBytes())/(1<<20))
		return
	}

	fmt.Printf("Fig. 1 sweep at N=2^%d, 128-bit security (max dnum = %d):\n", *logN, params.MaxDnum(*logN))
	fmt.Printf("%6s %6s %12s %16s\n", "dnum", "max L", "evk (MiB)", "agg evks (GiB)")
	for _, r := range params.LevelsAndEvkVsDnum(*logN) {
		fmt.Printf("%6d %6d %12.0f %16.2f\n",
			r.Dnum, r.MaxLevel, float64(r.EvkSingleBytes)/(1<<20), float64(r.EvkAggBytes)/(1<<30))
	}
}

// describeTable2 prints the paper-parameter instance (Table 2's INS-1 as
// realized by ckks.Table2Literal): the generated modulus chain, the S=3
// factored-bootstrap stage radices with their BSGS rotation plans, and the
// resulting key-set size. The rotation plan is computed statically from the
// stage diagonal index sets (ckks.BSGSRotations) — no plaintext diagonal is
// encoded, so the command stays interactive even at N=2^17.
func describeTable2() error {
	lit := ckks.Table2Literal()
	p, err := ckks.NewParameters(lit)
	if err != nil {
		return err
	}
	bp := ckks.Table2BootstrapParams()
	inst := params.INS1

	fmt.Printf("Table 2 preset (%s): N=2^%d, L=%d, dnum=%d, H=%d, Δ=2^%d\n",
		inst.Name, p.LogN, p.MaxLevel(), p.Dnum, p.H, lit.LogScale)
	fmt.Printf("  logPQ=%.0f bits, λ≈%.1f\n", p.LogQP(), params.SecurityLevel(p.LogN, p.LogQP()))
	fmt.Printf("  ct@L %6.1f MiB, evk %6.1f MiB, temp %6.1f MiB\n",
		float64(inst.CtBytes(inst.L))/(1<<20),
		float64(inst.EvkBytesMax())/(1<<20),
		float64(inst.TempDataBytes())/(1<<20))

	fmt.Printf("modulus chain Q (%d primes):\n", len(p.Q))
	for i, q := range p.Q {
		fmt.Printf("  q%-3d %2d-bit  %d\n", i, bitLen(q), q)
	}
	fmt.Printf("special chain P (%d primes):\n", len(p.P))
	for i, q := range p.P {
		fmt.Printf("  p%-3d %2d-bit  %d\n", i, bitLen(q), q)
	}

	// Stage shapes: the context is needed only for the encoder's slot-domain
	// diagonal factorization; no bootstrapping keys or plaintexts are built.
	ctx, err := ckks.NewContext(p)
	if err != nil {
		return err
	}
	enc := ckks.NewEncoder(ctx)

	union := map[int]bool{}
	describe := func(name string, kind ckks.DFTKind, stages int) error {
		diags, err := enc.DFTStageDiags(kind, stages)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d stages):\n", name, stages)
		for i, d := range diags {
			keys := make([]int, 0, len(d))
			for k := range d {
				keys = append(keys, k)
			}
			n1, rots := ckks.BSGSRotations(keys, p.Slots())
			for _, r := range rots {
				union[r] = true
			}
			fmt.Printf("  stage %d: %3d diagonals (radix), n1=%d, %d rotations\n",
				i, len(d), n1, len(rots))
		}
		return nil
	}
	if err := describe("CoeffToSlot", ckks.DFTInverse, bp.CtSStages); err != nil {
		return err
	}
	if err := describe("SlotToCoeff", ckks.DFTForward, bp.StCStages); err != nil {
		return err
	}

	// Key set: the rotation union plus the relinearization and conjugation
	// keys, each one switching key of the dnum=1 shape.
	nKeys := len(union) + 2
	total := float64(nKeys) * float64(inst.EvkBytesMax())
	fmt.Printf("key set: %d rotation keys + relin + conj = %d keys × %.1f MiB = %.2f GiB\n",
		len(union), nKeys, float64(inst.EvkBytesMax())/(1<<20), total/(1<<30))
	fmt.Printf("bootstrap depth: %d levels of L=%d (S=%d radix stages/transform, sine degree %d, K=%.0f)\n",
		bp.MinLevels(), p.MaxLevel(), bp.CtSStages, bp.SineDegree, bp.K)
	return nil
}

func bitLen(q uint64) int { return bits.Len64(q) }
