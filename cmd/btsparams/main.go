// Command btsparams explores the CKKS parameter space of Section 3: the
// L/dnum/evk-size interplay at fixed security (Fig. 1) and the security of
// arbitrary (N, L, dnum) instances. Usage:
//
//	btsparams -logn 17            # Fig. 1 sweep at N=2^17
//	btsparams -logn 17 -l 27 -dnum 1   # inspect one instance
package main

import (
	"flag"
	"fmt"

	"bts/internal/params"
)

func main() {
	logN := flag.Int("logn", 17, "log2 of the ring degree")
	l := flag.Int("l", 0, "maximum level L (0 = sweep dnum instead)")
	dnum := flag.Int("dnum", 1, "decomposition number")
	flag.Parse()

	if *l > 0 {
		inst := params.Instance{
			Name: "custom", LogN: *logN, L: *l, Dnum: *dnum,
			LogQ0: 60, LogQi: 50, LogP: 60,
		}
		if err := inst.Validate(); err != nil {
			fmt.Println("invalid instance:", err)
			return
		}
		fmt.Printf("N=2^%d L=%d dnum=%d: k=%d, logPQ=%.0f, λ≈%.1f\n",
			inst.LogN, inst.L, inst.Dnum, inst.K(), inst.LogPQ(), inst.Lambda())
		fmt.Printf("  ct@L    %6.1f MiB\n", float64(inst.CtBytes(inst.L))/(1<<20))
		fmt.Printf("  evk     %6.1f MiB\n", float64(inst.EvkBytesMax())/(1<<20))
		fmt.Printf("  temp    %6.1f MiB\n", float64(inst.TempDataBytes())/(1<<20))
		return
	}

	fmt.Printf("Fig. 1 sweep at N=2^%d, 128-bit security (max dnum = %d):\n", *logN, params.MaxDnum(*logN))
	fmt.Printf("%6s %6s %12s %16s\n", "dnum", "max L", "evk (MiB)", "agg evks (GiB)")
	for _, r := range params.LevelsAndEvkVsDnum(*logN) {
		fmt.Printf("%6d %6d %12.0f %16.2f\n",
			r.Dnum, r.MaxLevel, float64(r.EvkSingleBytes)/(1<<20), float64(r.EvkAggBytes)/(1<<30))
	}
}
