package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bts/internal/ckks"
)

// hoistingReport is the JSON document `-experiment hoisting` writes to
// stdout (CI archives it as BENCH_hoisting.json — the start of the repo's
// perf-trajectory record). It compares the hoisted/double-hoisted
// key-switching pipeline against the naive per-rotation path on the
// rotation-heavy workloads the BTS paper singles out: a CoeffToSlot-sized
// BSGS linear transform and the full bootstrap.
type hoistingReport struct {
	Experiment string         `json:"experiment"`
	Workers    int            `json:"workers"`
	Params     map[string]any `json:"params"`

	// Rotate: k rotations of one ciphertext, naive vs hoisted, plus the
	// bit-identity check of every hoisted output against Rotate.
	Rotate hoistingRotate `json:"rotate"`

	// Transform: the CoeffToSlot-sized dense BSGS transform.
	Transform hoistingTransform `json:"transform"`

	// Bootstrap: end-to-end bootstrap through both transform paths.
	Bootstrap hoistingBootstrap `json:"bootstrap"`

	// DecomposeMs is the cost of the shared decomposition (iNTT + ModUp +
	// NTT over all slices); BabyGiantCostRatio is the measured cost of a
	// naive rotation (what a giant step pays) over a hoisted baby rotation
	// (permute + MAC + ModDown) — the live value of the bsgsSplit weight.
	DecomposeMs        float64 `json:"decompose_ms"`
	BabyGiantCostRatio float64 `json:"baby_giant_cost_ratio"`

	Pass bool `json:"pass"`
}

type hoistingRotate struct {
	Count        int     `json:"count"`
	NaiveMs      float64 `json:"naive_ms"`
	HoistedMs    float64 `json:"hoisted_ms"`
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"bit_identical"`
}

type hoistingTransform struct {
	Slots int `json:"slots"`
	Diags int `json:"diags"`
	Level int `json:"level"`
	// N1 is the hoisted-model baby-step split; ClassicN1 is what the seed's
	// unweighted n1 + #diags/n1 model picked for the eager path.
	N1        int `json:"n1"`
	ClassicN1 int `json:"classic_n1"`
	// EagerMs evaluates eagerly at the hoisted split (isolates the hoisting
	// mechanism); EagerClassicMs evaluates eagerly at the classic split (the
	// seed's end-to-end behavior). Speedup is the conservative one: best
	// hoisted vs best eager.
	EagerMs        float64 `json:"eager_ms"`
	EagerClassicMs float64 `json:"eager_classic_ms"`
	HoistedMs      float64 `json:"hoisted_ms"`
	Speedup        float64 `json:"speedup"`
	MaxErr         float64 `json:"max_err"`
}

type hoistingBootstrap struct {
	EagerMs    float64 `json:"eager_ms"`
	HoistedMs  float64 `json:"hoisted_ms"`
	Speedup    float64 `json:"speedup"`
	EagerErr   float64 `json:"eager_err"`
	HoistedErr float64 `json:"hoisted_err"`
}

// hoisting runs the naive-vs-hoisted comparison and exits non-zero if the
// bit-identity, precision, or minimum-speedup contracts are violated, so CI
// can gate on it.
func hoisting(workers int) {
	rep, err := runHoisting(workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hoisting bench: %v\n", err)
		os.Exit(1)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "hoisting bench: contract violated (bit identity, precision, or speedup)")
		os.Exit(1)
	}
}

func runHoisting(workers int) (*hoistingReport, error) {
	// The LogN=10 bootstrappable toy instance (same shape as the speedup
	// experiment's bootstrap row): CoeffToSlot there is a dense
	// slots×slots transform in single-stage form.
	logQ := []int{55}
	for i := 0; i < 14; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10,
		LogQ:     logQ,
		LogP:     55,
		Dnum:     2,
		LogScale: 45,
		H:        8,
	})
	if err != nil {
		return nil, err
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return nil, err
	}
	defer ctx.Close()
	ctx.SetWorkers(workers)

	rep := &hoistingReport{
		Experiment: "hoisting",
		Workers:    workers,
		Params: map[string]any{
			"logN":  params.LogN,
			"L":     params.MaxLevel(),
			"dnum":  params.Dnum,
			"slots": params.Slots(),
		},
		Pass: true,
	}

	kg := ckks.NewKeyGenerator(ctx, 9001)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	encoder := ckks.NewEncoder(ctx)
	enc := ckks.NewEncryptorSK(ctx, sk, 9002)
	dec := ckks.NewDecryptor(ctx, sk)

	rng := rand.New(rand.NewSource(9003))
	n := params.Slots()
	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	lvl := params.MaxLevel()
	pt, err := encoder.Encode(values, lvl, params.Scale)
	if err != nil {
		return nil, err
	}
	ct, err := enc.EncryptNew(pt)
	if err != nil {
		return nil, err
	}

	// CoeffToSlot-sized transform: a dense n×n random matrix (CoeffToSlot
	// in single-stage form keeps all n diagonals).
	diags := map[int][]complex128{}
	for k := 0; k < n; k++ {
		d := make([]complex128, n)
		for j := range d {
			d[j] = complex(2*rng.Float64()-1, 2*rng.Float64()-1) / complex(float64(n), 0)
		}
		diags[k] = d
	}
	lt, err := ckks.NewLinearTransform(encoder, diags, lvl, float64(params.Q[lvl]))
	if err != nil {
		return nil, err
	}
	// The seed's split model minimized n1 + #diags/n1 with no weight; the
	// classic-split transform is the pre-hoisting baseline end to end.
	classicN1 := 1
	for n1, best := 1, int(^uint(0)>>1); n1 <= n; n1 <<= 1 {
		if c := n1 + (len(diags)+n1-1)/n1; c < best {
			classicN1, best = n1, c
		}
	}
	ltClassic, err := ckks.NewLinearTransformN1(encoder, diags, lvl, float64(params.Q[lvl]), classicN1)
	if err != nil {
		return nil, err
	}

	// One key set covers both transform splits, the standalone rotations,
	// and the bootstrap pipeline.
	rotSet := []int{1, 2, 5, 16, 64, 100, 200}
	probe := ckks.NewEvaluator(ctx, encoder, rlk, nil)
	bt0, err := ckks.NewBootstrapper(ctx, encoder, probe, ckks.DefaultBootstrapParams())
	if err != nil {
		return nil, err
	}
	rotations := append(append(lt.Rotations(), ltClassic.Rotations()...), rotSet...)
	rotations = append(rotations, bt0.Rotations()...)
	rtks := kg.GenRotationKeys(sk, rotations, true)
	eval := ckks.NewEvaluator(ctx, encoder, rlk, rtks)
	bt, err := ckks.NewBootstrapper(ctx, encoder, eval, ckks.DefaultBootstrapParams())
	if err != nil {
		return nil, err
	}

	timeIt := func(iters int, f func()) float64 {
		f() // warm pools and permutation caches
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start).Seconds() * 1e3 / float64(iters)
	}

	// --- Rotations of one ciphertext: naive vs hoisted, bit-identity. ---
	rep.Rotate.Count = len(rotSet)
	rep.Rotate.NaiveMs = timeIt(5, func() {
		for _, r := range rotSet {
			ctx.PutCiphertext(eval.Rotate(ct, r))
		}
	})
	rep.Rotate.HoistedMs = timeIt(5, func() {
		for _, out := range eval.RotateHoisted(ct, rotSet) {
			ctx.PutCiphertext(out)
		}
	})
	rep.Rotate.Speedup = rep.Rotate.NaiveMs / rep.Rotate.HoistedMs
	rep.Rotate.BitIdentical = true
	hoistedOut := eval.RotateHoisted(ct, rotSet)
	for _, r := range rotSet {
		naive := eval.Rotate(ct, r)
		h := hoistedOut[r]
		if !ctx.RingQ.Equal(h.C0, naive.C0, naive.Level) || !ctx.RingQ.Equal(h.C1, naive.C1, naive.Level) {
			rep.Rotate.BitIdentical = false
			rep.Pass = false
		}
		ctx.PutCiphertext(naive)
		ctx.PutCiphertext(h)
	}

	// Measured split weights: a hoisted baby step pays (HoistedMs -
	// DecomposeMs)/count, a giant step pays a naive rotation.
	rep.DecomposeMs = timeIt(10, func() { eval.DecomposeNTT(ct).Release() })
	babyMs := (rep.Rotate.HoistedMs - rep.DecomposeMs) / float64(len(rotSet))
	if babyMs > 0 {
		rep.BabyGiantCostRatio = (rep.Rotate.NaiveMs / float64(len(rotSet))) / babyMs
	}

	// --- CoeffToSlot-sized BSGS transform: eager vs double-hoisted. ---
	want := make([]complex128, n)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			want[j] += diags[k][j] * values[(j+k)%n]
		}
	}
	rep.Transform.Slots = n
	rep.Transform.Diags = len(diags)
	rep.Transform.N1 = lt.N1()
	rep.Transform.ClassicN1 = ltClassic.N1()
	rep.Transform.Level = lvl
	eval.SetEagerTransforms(true)
	rep.Transform.EagerMs = timeIt(3, func() {
		ctx.PutCiphertext(eval.LinearTransform(ct, lt))
	})
	rep.Transform.EagerClassicMs = timeIt(3, func() {
		ctx.PutCiphertext(eval.LinearTransform(ct, ltClassic))
	})
	eval.SetEagerTransforms(false)
	rep.Transform.HoistedMs = timeIt(3, func() {
		ctx.PutCiphertext(eval.LinearTransform(ct, lt))
	})
	bestEager := rep.Transform.EagerMs
	if rep.Transform.EagerClassicMs < bestEager {
		bestEager = rep.Transform.EagerClassicMs
	}
	rep.Transform.Speedup = bestEager / rep.Transform.HoistedMs
	out := eval.Rescale(eval.LinearTransform(ct, lt))
	rep.Transform.MaxErr = maxAbsErrC(encoder.Decode(dec.DecryptNew(out)), want)
	ctx.PutCiphertext(out)
	if rep.Transform.MaxErr > 1e-3 {
		rep.Pass = false
	}
	if rep.Transform.Speedup < 2 {
		// The acceptance bar: hoisting must at least halve the
		// CoeffToSlot-sized transform even against the eager path at its
		// own best split.
		rep.Pass = false
	}

	// --- End-to-end bootstrap through both transform paths. ---
	bootVals := []complex128{0.25, -0.5}
	wantBoot := make([]complex128, n)
	for i := range wantBoot {
		wantBoot[i] = bootVals[i%len(bootVals)]
	}
	bpt, err := encoder.Encode(bootVals, 0, params.Scale)
	if err != nil {
		return nil, err
	}
	bct, err := enc.EncryptNew(bpt)
	if err != nil {
		return nil, err
	}
	bootRun := func() (float64, error) {
		refreshed, err := bt.Bootstrap(bct)
		if err != nil {
			return 0, err
		}
		e := maxAbsErrC(encoder.Decode(dec.DecryptNew(refreshed)), wantBoot)
		ctx.PutCiphertext(refreshed)
		return e, nil
	}
	eval.SetEagerTransforms(true)
	if rep.Bootstrap.EagerErr, err = bootRun(); err != nil {
		return nil, err
	}
	rep.Bootstrap.EagerMs = timeIt(1, func() {
		if _, berr := bt.Bootstrap(bct); berr != nil {
			panic(berr)
		}
	})
	eval.SetEagerTransforms(false)
	if rep.Bootstrap.HoistedErr, err = bootRun(); err != nil {
		return nil, err
	}
	rep.Bootstrap.HoistedMs = timeIt(1, func() {
		if _, berr := bt.Bootstrap(bct); berr != nil {
			panic(berr)
		}
	})
	rep.Bootstrap.Speedup = rep.Bootstrap.EagerMs / rep.Bootstrap.HoistedMs
	if rep.Bootstrap.HoistedErr > 2e-2 || rep.Bootstrap.HoistedErr > 2*rep.Bootstrap.EagerErr+1e-9 {
		rep.Pass = false
	}

	return rep, nil
}

func maxAbsErrC(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		re := real(a[i]) - real(b[i])
		im := imag(a[i]) - imag(b[i])
		if re < 0 {
			re = -re
		}
		if im < 0 {
			im = -im
		}
		if re > m {
			m = re
		}
		if im > m {
			m = im
		}
	}
	return m
}
