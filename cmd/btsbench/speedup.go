package main

import (
	"fmt"
	"math/rand"
	"time"

	"bts/internal/ckks"
	"bts/internal/eval"
)

// speedup measures the real CKKS library serially and on the limb-parallel
// execution engine. The same contexts, keys and ciphertexts are reused for
// both runs — only the engine's worker count changes — so the comparison
// isolates the engine, and the outputs are bit-identical by construction
// (see the equivalence tests in internal/ring and internal/ckks).
func speedup(workers int) {
	fmt.Printf("host run: %d workers vs serial (outputs bit-identical)\n", workers)

	// LogN=12 evaluation instance (the reduced degree of the library
	// benchmarks; paper scale is 2^17).
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{50, 40, 40, 40, 40, 40, 40, 40},
		LogP:     51,
		Dnum:     3,
		LogScale: 40,
		H:        64,
	})
	if err != nil {
		fmt.Printf("setup failed: %v\n", err)
		return
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		fmt.Printf("setup failed: %v\n", err)
		return
	}
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, []int{1}, true)
	encoder := ckks.NewEncoder(ctx)
	evaluator := ckks.NewEvaluator(ctx, encoder, rlk, rtks)
	enc := ckks.NewEncryptorSK(ctx, sk, 2)

	rng := rand.New(rand.NewSource(3))
	maxLvl := params.MaxLevel()
	values := make([]complex128, params.Slots())
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	pt, _ := encoder.Encode(values, maxLvl, params.Scale)
	ct0, _ := enc.EncryptNew(pt)
	ct1, _ := enc.EncryptNew(pt)
	prod := evaluator.MulRelin(ct0, ct1)
	scratch := ctx.RingQ.NewPolyLevel(maxLvl)
	ctx.RingQ.SampleUniform(rng, scratch, maxLvl)

	// Reduced-degree bootstrap instance (same shape as the functional tests).
	bctx, bt, bct, err := speedupBootSetup()
	if err != nil {
		fmt.Printf("bootstrap setup failed: %v\n", err)
		return
	}

	type op struct {
		name  string
		iters int
		run   func()
	}
	ops := []op{
		{"NTT+iNTT (8 limbs)", 50, func() {
			ctx.RingQ.NTT(scratch, maxLvl)
			ctx.RingQ.INTT(scratch, maxLvl)
		}},
		{"HMult+relin", 20, func() { evaluator.MulRelin(ct0, ct1) }},
		{"HRot", 20, func() { evaluator.Rotate(ct0, 1) }},
		{"HRescale", 20, func() { evaluator.Rescale(prod) }},
		{"Bootstrap (LogN=10)", 1, func() {
			if _, err := bt.Bootstrap(bct); err != nil {
				panic(err)
			}
		}},
	}

	time1 := func(o op) time.Duration {
		o.run() // warm the scratch pools and permutation caches
		start := time.Now()
		for i := 0; i < o.iters; i++ {
			o.run()
		}
		return time.Since(start) / time.Duration(o.iters)
	}

	setWorkers := func(n int) {
		ctx.SetWorkers(n)
		bctx.SetWorkers(n)
	}

	var cells [][]string
	for _, o := range ops {
		setWorkers(0)
		serial := time1(o)
		setWorkers(workers)
		parallel := time1(o)
		cells = append(cells, []string{
			o.name,
			fmt.Sprintf("%.3f", serial.Seconds()*1e3),
			fmt.Sprintf("%.3f", parallel.Seconds()*1e3),
			fmt.Sprintf("%.2fx", serial.Seconds()/parallel.Seconds()),
		})
	}
	fmt.Print(eval.FormatTable(
		[]string{"op", "serial ms", fmt.Sprintf("workers=%d ms", workers), "speedup"}, cells))
}

// speedupBootSetup builds the LogN=10 bootstrappable toy instance used by the
// bootstrap row of the speedup table.
func speedupBootSetup() (*ckks.Context, *ckks.Bootstrapper, *ckks.Ciphertext, error) {
	logQ := []int{55}
	for i := 0; i < 14; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10,
		LogQ:     logQ,
		LogP:     55,
		Dnum:     2,
		LogScale: 45,
		H:        8,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return nil, nil, nil, err
	}
	kg := ckks.NewKeyGenerator(ctx, 7001)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	encoder := ckks.NewEncoder(ctx)

	// Build the bootstrapper twice: first keyless to learn the rotations.
	probe := ckks.NewEvaluator(ctx, encoder, rlk, nil)
	bt0, err := ckks.NewBootstrapper(ctx, encoder, probe, ckks.DefaultBootstrapParams())
	if err != nil {
		return nil, nil, nil, err
	}
	rtks := kg.GenRotationKeys(sk, bt0.Rotations(), true)
	evaluator := ckks.NewEvaluator(ctx, encoder, rlk, rtks)
	bt, err := ckks.NewBootstrapper(ctx, encoder, evaluator, ckks.DefaultBootstrapParams())
	if err != nil {
		return nil, nil, nil, err
	}
	enc := ckks.NewEncryptorSK(ctx, sk, 7002)
	pt, _ := encoder.Encode([]complex128{0.25, -0.5}, 0, params.Scale)
	ct, err := enc.EncryptNew(pt)
	if err != nil {
		return nil, nil, nil, err
	}
	return ctx, bt, ct, nil
}
