package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"bts/internal/mod"
	"bts/internal/ring"
)

// shardingReport is the JSON document `-experiment sharding` writes to
// stdout (CI archives it as BENCH_sharding.json — the next point in the
// repo's perf-trajectory record after BENCH_hoisting.json). It measures the
// low-level regime the BTS paper's PE grid is provisioned for: ciphertexts
// whose remaining limb count is below the core count, where pure
// limb-parallel dispatch leaves most of the machine idle and the 2-D
// (limb × coefficient-block) sharded dispatch keeps it busy.
type shardingReport struct {
	Experiment string `json:"experiment"`
	Workers    int    `json:"workers"`
	HostCores  int    `json:"host_cores"`
	LogN       int    `json:"logN"`
	Primes     int    `json:"primes"`
	BlockSize  int    `json:"block_size"`

	// Results holds one row per (op, level): the serial time, the time under
	// pure limb-parallel dispatch (sharding disabled by a block size of N),
	// the time under sharded dispatch, and the sharded-vs-limb-only speedup.
	Results []shardingResult `json:"results"`

	Gate shardingGate `json:"gate"`
	Pass bool         `json:"pass"`
}

type shardingResult struct {
	Op    string `json:"op"`
	Level int    `json:"level"`
	Limbs int    `json:"limbs"`

	SerialMs   float64 `json:"serial_ms"`
	LimbOnlyMs float64 `json:"limb_only_ms"`
	ShardedMs  float64 `json:"sharded_ms"`
	// Speedup is sharded vs limb-only at the same worker count — the gain
	// attributable purely to the coefficient dimension.
	Speedup         float64 `json:"speedup"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`

	// BitIdentical confirms serial, limb-only, sharded (default block), and
	// sharded with an odd block size all produced identical outputs.
	BitIdentical bool `json:"bit_identical"`
}

// shardingGate records what the pass/fail verdict enforced. Bit-identity is
// always fatal, on every host. The ≥2× speedup threshold is enforced over
// the NTT and element-wise rows (the op families the acceptance bar names;
// automorphism and rescale rows stay informational) whose limb count leaves
// sharding at least 2× of parallel headroom — limbs ≤ effective cores / 2,
// where effective cores = min(workers, NumCPU). On an ≥8-core host that is
// every level ≤ 3 row (the issue's bar); on a 4-core CI runner the gate
// still arms for levels 0–1, so a regression that kills the sharding win
// cannot pass CI green. Hosts with fewer than 4 effective cores (no row has
// 2× headroom) gate bit-identity only and archive the timings.
type shardingGate struct {
	SpeedupEnforced bool    `json:"speedup_enforced"`
	EffectiveCores  int     `json:"effective_cores"`
	Threshold       float64 `json:"threshold"`
	// GatedLevels lists the levels whose ntt/elemwise rows the speedup gate
	// covered (limbs ≤ effective cores / 2).
	GatedLevels []int `json:"gated_levels"`
	// MeanLowLevelSpeedup is the geometric mean of the sharded-vs-limb-only
	// speedup over the gated rows; the gate requires it to reach Threshold.
	MeanLowLevelSpeedup float64 `json:"mean_low_level_speedup"`
	// WorstLowLevelSpeedup is the minimum over the same gated rows; the
	// gate requires sharding to never regress them (≥ 1.0 after a 10%
	// noise margin).
	WorstLowLevelSpeedup float64 `json:"worst_low_level_speedup"`
}

const shardingGateThreshold = 2.0
const shardingMaxLevel = 3

// sharding runs the limb-only vs sharded comparison and exits non-zero if
// bit-identity is violated at any (worker, block) configuration, or — on
// hosts with enough cores to measure it — if the low-level speedup misses
// the ≥2× bar, so CI can gate on the report.
func sharding(workers int) {
	rep, err := runSharding(workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharding bench: %v\n", err)
		os.Exit(1)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "sharding bench: contract violated (bit identity or low-level speedup)")
		os.Exit(1)
	}
}

func runSharding(workers int) (*shardingReport, error) {
	const logN = 14
	const nPrimes = 8
	n := 1 << logN
	if workers < 2 {
		workers = 2
	}
	primes, err := mod.GenerateNTTPrimes(45, logN, nPrimes)
	if err != nil {
		return nil, err
	}

	// Four rings over one prime chain: the serial reference, limb-only
	// dispatch (block size N disables coefficient sharding), the sharded
	// engine under test, and an odd-block-size ring for the bit-identity
	// sweep only.
	newRing := func(w, block int) (*ring.Ring, error) {
		r, err := ring.NewRing(logN, primes)
		if err != nil {
			return nil, err
		}
		r.SetWorkers(w)
		if block > 0 {
			r.Exec().SetBlockSize(block)
		}
		return r, nil
	}
	rSerial, err := newRing(0, 0)
	if err != nil {
		return nil, err
	}
	rLimb, err := newRing(workers, n)
	if err != nil {
		return nil, err
	}
	rShard, err := newRing(workers, 0)
	if err != nil {
		return nil, err
	}
	rOdd, err := newRing(workers, 999)
	if err != nil {
		return nil, err
	}
	rings := []*ring.Ring{rSerial, rLimb, rShard, rOdd}

	rep := &shardingReport{
		Experiment: "sharding",
		Workers:    workers,
		HostCores:  runtime.NumCPU(),
		LogN:       logN,
		Primes:     nPrimes,
		BlockSize:  rShard.Exec().BlockSize(),
		Pass:       true,
	}

	type op struct {
		name     string
		minLevel int
		iters    int
		run      func(r *ring.Ring, x, y, out *ring.Poly, lvl int)
	}
	ops := []op{
		{"ntt", 0, 12, func(r *ring.Ring, x, _, _ *ring.Poly, lvl int) {
			r.NTT(x, lvl)
			r.INTT(x, lvl)
		}},
		{"elemwise", 0, 40, func(r *ring.Ring, x, y, out *ring.Poly, lvl int) {
			r.MulCoeffsAndAdd(x, y, out, lvl)
			r.Add(out, y, out, lvl)
			r.MulCoeffs(out, x, out, lvl)
		}},
		{"automorphism", 0, 40, func(r *ring.Ring, x, _, out *ring.Poly, lvl int) {
			r.AutomorphismNTT(x, r.GaloisElement(5), out, lvl)
		}},
		{"rescale", 1, 12, func(r *ring.Ring, x, _, _ *ring.Poly, lvl int) {
			r.DivRoundByLastModulusNTT(x, lvl)
		}},
	}

	timeIt := func(iters int, f func()) float64 {
		f() // warm pools and twiddle/permutation caches
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start).Seconds() * 1e3 / float64(iters)
	}

	for lvl := 0; lvl <= shardingMaxLevel && lvl < nPrimes; lvl++ {
		for _, o := range ops {
			if lvl < o.minLevel {
				continue
			}
			seed := int64(100*lvl + len(o.name))
			// Per-ring clones of identical inputs; outputs seeded identically
			// so accumulating kernels stay comparable.
			mk := func() (x, y, out *ring.Poly) {
				x = rSerial.NewPolyLevel(nPrimes - 1)
				y = rSerial.NewPolyLevel(nPrimes - 1)
				out = rSerial.NewPolyLevel(nPrimes - 1)
				rSerial.SampleUniform(rand.New(rand.NewSource(seed)), x, nPrimes-1)
				rSerial.SampleUniform(rand.New(rand.NewSource(seed+1)), y, nPrimes-1)
				rSerial.SampleUniform(rand.New(rand.NewSource(seed+2)), out, nPrimes-1)
				return
			}
			res := shardingResult{Op: o.name, Level: lvl, Limbs: lvl + 1, BitIdentical: true}

			// Bit-identity: one application on every ring, all four compared.
			// The NTT row is checked in two phases — after the forward
			// transform alone and again after the inverse — so a sharded
			// NTT bug that the symmetric INTT bug would undo cannot hide
			// inside the roundtrip.
			if o.name == "ntt" {
				var refFwd, refBack *ring.Poly
				for ri, r := range rings {
					x, _, _ := mk()
					r.NTT(x, lvl)
					fwd := rSerial.CopyNew(x, nPrimes-1)
					r.INTT(x, lvl)
					if ri == 0 {
						refFwd, refBack = fwd, x
						continue
					}
					if !rSerial.Equal(refFwd, fwd, lvl) || !rSerial.Equal(refBack, x, lvl) {
						res.BitIdentical = false
						rep.Pass = false
					}
				}
			} else {
				var refX, refOut *ring.Poly
				for ri, r := range rings {
					x, y, out := mk()
					o.run(r, x, y, out, lvl)
					if ri == 0 {
						refX, refOut = x, out
						continue
					}
					if !rSerial.Equal(refX, x, lvl) || !rSerial.Equal(refOut, out, lvl) {
						res.BitIdentical = false
						rep.Pass = false
					}
				}
			}

			// Timing: rescale consumes its input's last limb, so it gets a
			// pre-built fresh input per iteration (allocation outside the
			// timed region); the other ops re-run on the same operands.
			if o.name == "rescale" {
				bench := func(r *ring.Ring) float64 {
					xs := make([]*ring.Poly, o.iters+1)
					for i := range xs {
						xs[i], _, _ = mk()
					}
					o.run(r, xs[o.iters], nil, nil, lvl) // warm pools
					start := time.Now()
					for i := 0; i < o.iters; i++ {
						o.run(r, xs[i], nil, nil, lvl)
					}
					return time.Since(start).Seconds() * 1e3 / float64(o.iters)
				}
				res.SerialMs = bench(rSerial)
				res.LimbOnlyMs = bench(rLimb)
				res.ShardedMs = bench(rShard)
			} else {
				bench := func(r *ring.Ring) float64 {
					x, y, out := mk()
					return timeIt(o.iters, func() { o.run(r, x, y, out, lvl) })
				}
				res.SerialMs = bench(rSerial)
				res.LimbOnlyMs = bench(rLimb)
				res.ShardedMs = bench(rShard)
			}
			if res.ShardedMs > 0 {
				res.Speedup = res.LimbOnlyMs / res.ShardedMs
				res.SpeedupVsSerial = res.SerialMs / res.ShardedMs
			}
			rep.Results = append(rep.Results, res)
		}
	}

	gate := &rep.Gate
	gate.Threshold = shardingGateThreshold
	gate.EffectiveCores = workers
	if c := runtime.NumCPU(); c < gate.EffectiveCores {
		gate.EffectiveCores = c
	}
	logMean := 0.0
	worst := 0.0
	gated := 0
	levelSeen := map[int]bool{}
	for _, r := range rep.Results {
		if r.Op != "ntt" && r.Op != "elemwise" {
			continue
		}
		if 2*r.Limbs > gate.EffectiveCores {
			continue // limb-only dispatch already fills ≥ half the cores
		}
		if !levelSeen[r.Level] {
			levelSeen[r.Level] = true
			gate.GatedLevels = append(gate.GatedLevels, r.Level)
		}
		if gated == 0 || r.Speedup < worst {
			worst = r.Speedup
		}
		if r.Speedup > 0 {
			logMean += math.Log(r.Speedup)
		}
		gated++
	}
	gate.SpeedupEnforced = gated > 0
	if gated > 0 {
		gate.MeanLowLevelSpeedup = math.Exp(logMean / float64(gated))
	}
	gate.WorstLowLevelSpeedup = worst
	if gate.SpeedupEnforced {
		// The bar of the issue: sharding must at least double the low-level
		// element-wise/NTT throughput over limb-only dispatch wherever the
		// limb count leaves it 2× of headroom (all of level ≤ 3 at ≥ 8
		// cores), and must never regress a gated op (10% noise margin).
		if gate.MeanLowLevelSpeedup < gate.Threshold || gate.WorstLowLevelSpeedup < 0.9 {
			rep.Pass = false
		}
	}
	return rep, nil
}
