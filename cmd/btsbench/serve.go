package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"bts/internal/ckks"
	"bts/internal/serve"
)

// serveReport is the JSON document the serve experiment prints to stdout —
// the throughput/latency data point of the serving trajectory.
type serveReport struct {
	Experiment  string         `json:"experiment"`
	Clients     int            `json:"clients"`
	DurationSec float64        `json:"duration_sec"`
	OpsPerJob   int            `json:"ops_per_job"`
	Jobs        uint64         `json:"jobs"`
	Ops         uint64         `json:"ops"`
	Errors      uint64         `json:"errors"`
	JobsPerSec  float64        `json:"jobs_per_sec"`
	OpsPerSec   float64        `json:"ops_per_sec"`
	LatencyMs   serveLatency   `json:"latency_ms"`
	Verified    bool           `json:"verified"`
	Server      serve.Stats    `json:"server"`
	Params      map[string]any `json:"params"`
}

type serveLatency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// serveBench drives a btsserve daemon with `clients` concurrent tenants for
// `duration`. With addr == "" it stands up an in-process daemon on loopback
// (self-contained benchmark); with addr set it targets an already-running
// daemon (the CI smoke test starts the real binary and points the bench at
// it). Each tenant opens its own session, pre-encrypts a pair of input
// vectors, and loops submitting a 4-op job (HRot → HMult → HRescale → HAdd)
// over the wire format; the last response of every tenant is decrypted and
// checked against the expected plaintext result. The report goes to stdout
// as JSON (progress chatter goes to stderr), so CI can archive it as an
// artifact.
func serveBench(clients int, duration time.Duration, workers int, addr string) {
	var base string
	if addr == "" {
		params, err := ckks.NewParameters(ckks.ParametersLiteral{
			LogN: 12, LogQ: []int{50, 40, 40, 40, 40, 40, 40, 40}, LogP: 51,
			Dnum: 3, LogScale: 40, H: 64,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve bench setup: %v\n", err)
			os.Exit(1)
		}
		srv, err := serve.New(serve.Config{Params: params, Workers: workers, BatchSize: clients, Parallel: clients})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve bench setup: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve bench listen: %v\n", err)
			os.Exit(1)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
	} else if len(addr) > 7 && addr[:7] == "http://" {
		base = addr
	} else {
		base = "http://" + addr
	}
	fmt.Fprintf(os.Stderr, "serve bench: daemon on %s, %d clients, %s\n", base, clients, duration)

	fetched, _, err := serve.FetchParams(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve bench params: %v\n", err)
		os.Exit(1)
	}

	ops := []serve.Op{
		{Kind: serve.OpRotate, A: 0, By: 1},
		{Kind: serve.OpMul, A: 2, B: 1},
		{Kind: serve.OpRescale, A: 3},
		{Kind: serve.OpAdd, A: 4, B: 0},
	}

	type clientResult struct {
		latenciesMs []float64
		jobs        uint64
		errs        uint64
		verified    bool
		err         error
	}
	results := make([]clientResult, clients)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for cn := 0; cn < clients; cn++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			r := &results[cn]
			ctx, err := ckks.NewContext(fetched)
			if err != nil {
				r.err = err
				return
			}
			kg := ckks.NewKeyGenerator(ctx, int64(9000+cn))
			sk := kg.GenSecretKey()
			rlk := kg.GenRelinearizationKey(sk)
			rtks := kg.GenRotationKeys(sk, []int{1}, true)
			encoder := ckks.NewEncoder(ctx)
			enc := ckks.NewEncryptorSK(ctx, sk, int64(9100+cn))
			dec := ckks.NewDecryptor(ctx, sk)
			api := serve.NewClient(base, ctx)
			name := fmt.Sprintf("tenant-%d", cn)
			if r.err = api.OpenSession(name, rlk, rtks); r.err != nil {
				return
			}

			slots := fetched.Slots()
			a := make([]complex128, slots)
			b := make([]complex128, slots)
			for i := range a {
				a[i] = complex(float64((i+cn)%17)/17, 0)
				b[i] = complex(float64((i+2*cn)%13)/13, 0)
			}
			ptA, _ := encoder.Encode(a, fetched.MaxLevel(), fetched.Scale)
			ptB, _ := encoder.Encode(b, fetched.MaxLevel(), fetched.Scale)
			ctA, err := enc.EncryptNew(ptA)
			if err != nil {
				r.err = err
				return
			}
			ctB, err := enc.EncryptNew(ptB)
			if err != nil {
				r.err = err
				return
			}

			var last *ckks.Ciphertext
			for time.Now().Before(deadline) {
				start := time.Now()
				res, err := api.Do(name, ops, ctA, ctB)
				if err != nil {
					r.errs++
					fmt.Fprintf(os.Stderr, "serve bench client %d: job failed: %v\n", cn, err)
					time.Sleep(50 * time.Millisecond) // don't hammer a failing daemon
					continue
				}
				r.latenciesMs = append(r.latenciesMs, time.Since(start).Seconds()*1e3)
				r.jobs++
				last = res
			}
			if last != nil {
				got := encoder.Decode(dec.DecryptNew(last))
				r.verified = true
				for i := 0; i < slots; i++ {
					want := a[(i+1)%slots]*b[i] + a[i]
					d := real(got[i]) - real(want)
					if d > 1e-3 || d < -1e-3 {
						r.verified = false
						break
					}
				}
			}
		}(cn)
	}
	wg.Wait()

	report := serveReport{
		Experiment:  "serve",
		Clients:     clients,
		DurationSec: duration.Seconds(),
		OpsPerJob:   len(ops),
		Verified:    true,
		Params: map[string]any{
			"log_n": fetched.LogN, "levels": fetched.MaxLevel(), "dnum": fetched.Dnum,
		},
	}
	if resp, err := http.Get(base + "/v1/stats"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&report.Server)
		resp.Body.Close()
	}
	var all []float64
	for cn := range results {
		r := &results[cn]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "serve bench client %d: %v\n", cn, r.err)
			report.Errors++
			report.Verified = false
			continue
		}
		report.Jobs += r.jobs
		report.Errors += r.errs
		all = append(all, r.latenciesMs...)
		if !r.verified {
			report.Verified = false
		}
	}
	report.Ops = report.Jobs * uint64(len(ops))
	report.JobsPerSec = float64(report.Jobs) / duration.Seconds()
	report.OpsPerSec = float64(report.Ops) / duration.Seconds()
	// Any per-request error fails verification: the smoke test must not go
	// green on a daemon that drops requests, even if a late job succeeds.
	if report.Errors > 0 {
		report.Verified = false
	}
	if len(all) > 0 {
		sort.Float64s(all)
		report.LatencyMs = serveLatency{
			P50: serve.Percentile(all, 50),
			P90: serve.Percentile(all, 90),
			P99: serve.Percentile(all, 99),
			Max: all[len(all)-1],
		}
	}
	out, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(out))
	if !report.Verified {
		os.Exit(1)
	}
}
