// Command btsbench regenerates every table and figure of the BTS paper's
// evaluation section and prints them as text tables (the same rows the root
// benchmark harness reports). Usage:
//
//	btsbench [-experiment all|table1|fig1|fig2|fig3b|table3|table4|fig6|fig7|fig8|fig9|fig10|table5|table6|slowdown|speedup|hoisting|sharding|bootstrap|table2|serve|dag] [-workers N]
//	         [-clients K] [-duration 5s] [-full] [-cpuprofile f] [-memprofile f]
//
// Several experiments are special: instead of replaying the paper's model
// they measure the host machine and are therefore excluded from "all".
//
// The speedup experiment runs the real CKKS library (NTT, HMult
// key-switching, HRot, HRescale and a reduced-degree bootstrap) serially and
// then on the limb-parallel execution engine with -workers goroutines,
// reporting the measured serial-vs-parallel speedup curve.
//
// The hoisting experiment compares naive per-rotation key-switching against
// the hoisted/double-hoisted pipeline on a CoeffToSlot-sized BSGS linear
// transform and a full small-N bootstrap, printing a JSON report (archived
// by CI as BENCH_hoisting.json) and exiting non-zero if hoisted rotations
// are not bit-identical, precision leaves the budget, or the transform
// speedup falls under 2x.
//
// The sharding experiment measures the 2-D (limb × coefficient-block)
// sharded dispatch against pure limb-parallel dispatch on low-level
// (level ≤ 3) NTT, element-wise, automorphism and rescale kernels, printing
// a JSON report (archived by CI as BENCH_sharding.json) and exiting non-zero
// if any configuration is not bit-identical to serial, or if the
// NTT/element-wise speedup misses the 2x bar on the levels where sharding
// has 2x of parallel headroom (limbs ≤ cores/2 — all of level ≤ 3 on an
// 8-core host).
//
// The bootstrap experiment compares the factored (two-stage radix)
// CoeffToSlot/SlotToCoeff bootstrap pipeline against the dense single-stage
// reference on the LogN=10 boot instance — rotation-key footprint, measured
// key-switch op counts (hoisted rotations tallied separately from full
// key-switches), end-to-end wall time and output precision — plus the
// internal/sim calibration cross-check of the measured op mix. It prints a
// JSON report (archived by CI as BENCH_bootstrap.json) and exits non-zero if
// either pipeline leaves the precision budget, the staged pipeline spends
// fewer than 1.5x fewer key-switch ops, or it is not measurably faster end
// to end.
//
// The table2 experiment measures the Montgomery-domain ring core against the
// retained Barrett reference kernels, the fused radix-4 NTT/iNTT row kernels
// against the per-stage radix-2 kernels they replaced (single-threaded, with
// ns/butterfly and effective GB/s per transform), and runs the S=3 factored
// bootstrap followed by a 1/2/4/8-worker scaling table (-scaling=false skips
// the scaling re-runs). It prints a JSON report (archived by CI as
// BENCH_table2.json) and exits non-zero if the geomean Montgomery speedup
// misses 1.3x, the fused radix-4 geomean misses its floor (1.25x full, 1.05x
// smoke), precision leaves the budget at any worker count, no working level
// remains after refresh, or — full mode on a >= 8-CPU host — the 8-worker
// bootstrap is not >= 4x faster than the same run's 1-worker row. By default
// it runs a scaled-down LogN=12 smoke instance; -full selects the real
// N=2^17 Table 2 paper instance (minutes of runtime, several GiB of keys —
// the bench workflow's job, not the PR gate's).
//
// The -cpuprofile/-memprofile flags write pprof profiles for any experiment
// (the heap profile is captured after the experiment returns). Profiles are
// only flushed on gate-passing runs: a failing gate exits immediately.
//
// The serve experiment is the serving-runtime load generator: it stands up
// an in-process btsserve daemon on loopback, drives it with -clients
// concurrent tenants for -duration (each looping a rotate→multiply→rescale→
// add job over wire-format ciphertexts), decrypts and verifies the final
// result of every tenant, and prints a JSON throughput/latency report
// (jobs/s, HE ops/s, p50/p90/p99 latency) to stdout.
//
// The dag experiment compares a chained rotation-fan pipeline submitted as
// one register-addressed DAG job against the per-op round-trip equivalent:
// it gates on the DAG run moving ≥5x fewer wire bytes, spending ≥1.5x fewer
// key-switch decompositions (scheduler auto-hoisting), and producing a
// bit-identical ciphertext. Like serve, it accepts -addr to drive an
// already-running daemon.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"bts/internal/arch"
	"bts/internal/eval"
	"bts/internal/workload"
)

func main() {
	which := flag.String("experiment", "all", "experiment to run (all, table1, fig1, ... slowdown, speedup, serve)")
	workers := flag.Int("workers", runtime.NumCPU(), "execution-engine worker count for -experiment speedup/serve (0 = serial)")
	clients := flag.Int("clients", 4, "concurrent tenants for -experiment serve")
	duration := flag.Duration("duration", 5*time.Second, "load duration for -experiment serve")
	serveAddr := flag.String("addr", "", "for -experiment serve: drive an already-running btsserve at this address instead of an in-process daemon")
	full := flag.Bool("full", false, "for -experiment table2: run the real N=2^17 paper instance instead of the scaled-down smoke instance")
	scaling := flag.Bool("scaling", true, "for -experiment table2: append the 1/2/4/8-worker bootstrap scaling table (disable to time a single worker count only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when the experiment completes")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	experiments := []struct {
		name string
		run  func()
	}{
		{"table1", table1}, {"fig1", fig1}, {"fig2", fig2}, {"fig3b", fig3b},
		{"table3", table3}, {"table4", table4}, {"fig6", fig6}, {"fig7", fig7},
		{"fig8", fig8}, {"fig9", fig9}, {"fig10", fig10}, {"table5", table5},
		{"table6", table6}, {"slowdown", slowdown},
	}
	ran := false
	for _, e := range experiments {
		if *which == "all" || *which == e.name {
			fmt.Printf("\n===== %s =====\n", e.name)
			e.run()
			ran = true
		}
	}
	if *which == "speedup" {
		fmt.Printf("\n===== speedup =====\n")
		speedup(*workers)
		ran = true
	}
	if *which == "hoisting" {
		hoisting(*workers)
		ran = true
	}
	if *which == "sharding" {
		sharding(*workers)
		ran = true
	}
	if *which == "bootstrap" {
		bootstrapBench(*workers)
		ran = true
	}
	if *which == "table2" {
		table2Bench(*workers, *full, *scaling)
		ran = true
	}
	if *which == "serve" {
		serveBench(*clients, *duration, *workers, *serveAddr)
		ran = true
	}
	if *which == "dag" {
		dagBench(*workers, *serveAddr)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

func table1() {
	var cells [][]string
	for _, r := range eval.Table1() {
		cells = append(cells, []string{r.Platform, fmt.Sprint(r.LogN), fmt.Sprint(r.Slots),
			fmt.Sprint(r.Bootstrap), r.Parallelism, fmt.Sprintf("%.3g", r.MultPerSec)})
	}
	fmt.Print(eval.FormatTable([]string{"platform", "logN", "slots", "boot", "parallelism", "FHE mult/s"}, cells))
}

func fig1() {
	res := eval.Fig1()
	for _, logN := range []int{15, 16, 17, 18} {
		rows := res[logN]
		fmt.Printf("N=2^%d (max dnum %d):\n", logN, rows[len(rows)-1].Dnum)
		var cells [][]string
		for _, r := range rows {
			if r.Dnum > 8 && r.Dnum%8 != 0 && r.Dnum != rows[len(rows)-1].Dnum {
				continue // thin out the print; the data is dense
			}
			cells = append(cells, []string{fmt.Sprint(r.Dnum), fmt.Sprint(r.MaxLevel),
				fmt.Sprintf("%.0f", float64(r.EvkSingleBytes)/(1<<20)),
				fmt.Sprintf("%.2f", float64(r.EvkAggBytes)/(1<<30))})
		}
		fmt.Print(eval.FormatTable([]string{"dnum", "max L", "evk (MiB)", "aggregate evks (GiB)"}, cells))
	}
}

func fig2() {
	rows := eval.Fig2()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Lambda < rows[j].Lambda })
	var cells [][]string
	for _, r := range rows {
		if !r.Feasible || r.Lambda > 250 || r.Lambda < 70 {
			continue
		}
		cells = append(cells, []string{fmt.Sprintf("2^%d", r.LogN), fmt.Sprint(r.L),
			fmt.Sprint(r.Dnum), fmt.Sprintf("%.1f", r.Lambda), fmt.Sprintf("%.1f", r.TmultASlotNs)})
	}
	fmt.Print(eval.FormatTable([]string{"N", "L", "dnum", "λ", "min-bound Tmult,a/slot (ns)"}, cells))
}

func fig3b() {
	var cells [][]string
	for _, r := range eval.Fig3b() {
		cells = append(cells, []string{fmt.Sprint(r.Dnum), fmt.Sprintf("%.1f", r.BConvPct),
			fmt.Sprintf("%.1f", r.NTTPct), fmt.Sprintf("%.1f", r.INTTPct), fmt.Sprintf("%.1f", r.OthersPct)})
	}
	fmt.Print(eval.FormatTable([]string{"dnum", "BConv %", "NTT %", "iNTT %", "others %"}, cells))
}

func table3() {
	var cells [][]string
	for _, c := range eval.Table3() {
		cells = append(cells, []string{c.Name, fmt.Sprintf("%.2f", c.AreaMM2), fmt.Sprintf("%.2f", c.PowerW)})
	}
	cells = append(cells, []string{"Total", fmt.Sprintf("%.1f", arch.TotalArea()), fmt.Sprintf("%.1f", arch.TotalPower())})
	fmt.Print(eval.FormatTable([]string{"component", "area mm²", "power W"}, cells))
	fmt.Printf("minNTTU (Eq.10, N=2^17, dnum=1) = %.0f → BTS provisions 2048\n",
		arch.MinNTTU(1<<17, 1, 1.2e9, 1e12))
}

func table4() {
	var cells [][]string
	for _, r := range eval.Table4() {
		cells = append(cells, []string{r.Name, fmt.Sprint(r.L), fmt.Sprint(r.Dnum),
			fmt.Sprintf("%.0f", r.LogPQ), fmt.Sprintf("%.1f", r.Lambda),
			fmt.Sprintf("%.0f", r.TempDataMB), fmt.Sprintf("%.0f", r.EvkMB), fmt.Sprintf("%.0f", r.CtMB)})
	}
	fmt.Print(eval.FormatTable([]string{"instance", "L", "dnum", "logPQ", "λ", "temp MB", "evk MB", "ct MB"}, cells))
}

func fig6() {
	var cells [][]string
	for _, r := range eval.Fig6() {
		cells = append(cells, []string{r.System, fmt.Sprintf("%.1f", r.TmultASlotNs), fmt.Sprintf("%.0fx", r.SpeedupVsCPU)})
	}
	fmt.Print(eval.FormatTable([]string{"system", "Tmult,a/slot (ns)", "speedup vs CPU"}, cells))
}

func fig7() {
	var cells [][]string
	for _, r := range eval.Fig7a() {
		cells = append(cells, []string{r.Instance, fmt.Sprintf("%.1f", r.MinBoundNs),
			fmt.Sprintf("%.1f", r.With512MNs), fmt.Sprintf("%.1f", r.With2GNs)})
	}
	fmt.Print(eval.FormatTable([]string{"instance", "min bound ns", "512MB ns", "2GB ns"}, cells))
	cells = nil
	for _, r := range eval.Fig7b() {
		cells = append(cells, []string{r.App, fmt.Sprintf("%.1f%%", r.BootstrapPct)})
	}
	fmt.Print(eval.FormatTable([]string{"application", "bootstrapping share"}, cells))
}

func fig8() {
	res := eval.Fig8()
	fmt.Printf("HMult on INS-1: total %.1f µs; HBM %.0f%% / NTTU %.0f%% / BConvU %.0f%% busy\n",
		res.TotalUs, res.HBMUtilPct, res.NTTUUtilPct, res.BConvUtilPct)
	for _, ev := range res.Events {
		fmt.Printf("  %-12s %8.1f .. %8.1f µs\n", ev.Phase, ev.Start*1e6, ev.End*1e6)
	}
}

func fig9() {
	var cells [][]string
	for _, r := range eval.Fig9() {
		cells = append(cells, []string{r.Config, fmt.Sprintf("%.3f", r.TmultASlotUs), fmt.Sprintf("%.0fx", r.Speedup)})
	}
	fmt.Print(eval.FormatTable([]string{"configuration", "Tmult,a/slot µs", "speedup vs Lattigo"}, cells))
}

func fig10() {
	var cells [][]string
	for _, r := range eval.Fig10() {
		ks := r.PerKindMs[workload.HMult] + r.PerKindMs[workload.HRot]
		cells = append(cells, []string{fmt.Sprint(r.ScratchpadMB), fmt.Sprintf("%.1f", r.BootstrapMs),
			fmt.Sprintf("%.1f", ks), fmt.Sprintf("%.1f", r.PerKindMs[workload.PMult]), fmt.Sprintf("%.3g", r.EDAP)})
	}
	fmt.Print(eval.FormatTable([]string{"scratchpad MB", "bootstrap ms", "HMult+HRot ms", "PMult ms", "EDAP"}, cells))
}

func table5() {
	var cells [][]string
	for _, r := range eval.Table5() {
		cells = append(cells, []string{r.System, fmt.Sprintf("%.1f", r.MsPerIter), fmt.Sprintf("%.0fx", r.Speedup)})
	}
	fmt.Print(eval.FormatTable([]string{"system", "HELR ms/iter", "speedup"}, cells))
}

func table6() {
	var cells [][]string
	for _, r := range eval.Table6() {
		cells = append(cells, []string{r.App, r.System, fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%.0fx", r.Speedup), fmt.Sprint(r.Bootstraps)})
	}
	fmt.Print(eval.FormatTable([]string{"application", "system", "time s", "speedup", "#boots"}, cells))
}

func slowdown() {
	var cells [][]string
	for _, r := range eval.SlowdownVsPlain() {
		cells = append(cells, []string{r.App, fmt.Sprintf("%.4f", r.FHESec),
			fmt.Sprintf("%.5f", r.PlainSec), fmt.Sprintf("%.0fx", r.Slowdown)})
	}
	fmt.Print(eval.FormatTable([]string{"application", "FHE on BTS s", "plain CPU s", "slowdown"}, cells))
}
