package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bts/internal/ckks"
	"bts/internal/params"
	"bts/internal/sim"
	"bts/internal/workload"
)

// bootstrapReport is the JSON document `-experiment bootstrap` writes to
// stdout (CI archives it as BENCH_bootstrap.json). It compares the factored
// (radix-stage) CoeffToSlot/SlotToCoeff bootstrap pipeline against the dense
// single-stage reference on the LogN=10 boot instance — rotation-key
// footprint, measured key-switch op counts, wall time and output precision —
// and runs the internal/sim calibration cross-check on the staged mix.
type bootstrapReport struct {
	Experiment string         `json:"experiment"`
	Workers    int            `json:"workers"`
	Params     map[string]any `json:"params"`

	Dense  bootstrapPath `json:"dense"`
	Staged bootstrapPath `json:"staged"`

	// KeySwitchRatio is dense/staged on the evk-consuming op count (full
	// key-switches + hoisted rotations) — the Table 2 economy the factored
	// pipeline buys. The CI gate demands ≥ 1.5.
	KeySwitchRatio float64 `json:"key_switch_ratio"`
	// RotationKeyRatio is dense/staged on the rotation-key set size (the
	// per-tenant key-upload cost of the serving runtime's boot preset).
	RotationKeyRatio float64 `json:"rotation_key_ratio"`
	// Speedup is dense/staged end-to-end bootstrap wall time.
	Speedup float64 `json:"speedup"`
	// DeltaErr is the slot-wise deviation between the two pipelines' outputs
	// (both must also individually stay inside the precision budget).
	DeltaErr float64 `json:"delta_err"`

	// Calibration is the software-vs-simulator cross-check of the staged op
	// mix (hoisted rotations counted separately from full HRots).
	Calibration sim.CalibrationReport `json:"calibration"`

	Pass bool `json:"pass"`
}

// bootstrapPath describes one transform pipeline's measured run.
type bootstrapPath struct {
	// CtSDiags/StCDiags are the per-stage diagonal counts (one entry for the
	// dense matrices).
	CtSDiags []int `json:"cts_diags"`
	StCDiags []int `json:"stc_diags"`
	// RotationKeys is the size of the rotation-key set the path requires.
	RotationKeys int     `json:"rotation_keys"`
	TimeMs       float64 `json:"time_ms"`
	MaxErr       float64 `json:"max_err"`
	Level        int     `json:"level"`

	// Measured op mix over one bootstrap (evaluator counters).
	Mult           int64 `json:"mult"`
	FullRot        int64 `json:"full_rot"`
	HoistedRot     int64 `json:"hoisted_rot"`
	Decompose      int64 `json:"decompose"`
	ModDown        int64 `json:"mod_down"`
	KeySwitchTotal int64 `json:"key_switch_total"`
}

// bootstrapBench runs the staged-vs-dense comparison and exits non-zero if
// the precision, key-switch-economy, or speedup contracts are violated, so
// CI can gate on it.
func bootstrapBench(workers int) {
	rep, err := runBootstrapBench(workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bootstrap bench: %v\n", err)
		os.Exit(1)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "bootstrap bench: contract violated (precision, key-switch ratio, or speedup)")
		os.Exit(1)
	}
}

func runBootstrapBench(workers int) (*bootstrapReport, error) {
	logQ := []int{55}
	for i := 0; i < 14; i++ {
		logQ = append(logQ, 45)
	}
	p, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10,
		LogQ:     logQ,
		LogP:     55,
		Dnum:     2,
		LogScale: 45,
		H:        8,
	})
	if err != nil {
		return nil, err
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		return nil, err
	}
	defer ctx.Close()
	ctx.SetWorkers(workers)

	bp := ckks.DefaultBootstrapParams()
	rep := &bootstrapReport{
		Experiment: "bootstrap",
		Workers:    workers,
		Params: map[string]any{
			"logN":       p.LogN,
			"L":          p.MaxLevel(),
			"dnum":       p.Dnum,
			"slots":      p.Slots(),
			"cts_stages": bp.CtSStages,
			"stc_stages": bp.StCStages,
		},
		Pass: true,
	}

	kg := ckks.NewKeyGenerator(ctx, 9101)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	encoder := ckks.NewEncoder(ctx)
	enc := ckks.NewEncryptorSK(ctx, sk, 9102)
	dec := ckks.NewDecryptor(ctx, sk)

	// One key set covers both pipelines (union), so toggling is fair.
	probe := ckks.NewEvaluator(ctx, encoder, rlk, nil)
	bt0, err := ckks.NewBootstrapper(ctx, encoder, probe, bp)
	if err != nil {
		return nil, err
	}
	rtks := kg.GenRotationKeys(sk, bt0.AllRotations(), true)
	eval := ckks.NewEvaluator(ctx, encoder, rlk, rtks)
	bt, err := ckks.NewBootstrapper(ctx, encoder, eval, bp)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(9103))
	n := p.Slots()
	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1) * 0.7
	}
	pt, err := encoder.Encode(values, 0, p.Scale)
	if err != nil {
		return nil, err
	}
	ct, err := enc.EncryptNew(pt)
	if err != nil {
		return nil, err
	}

	ctsChain, stcChain := bt.Chains()
	var stagedVals, denseVals []complex128
	runPath := func(dense bool) (bootstrapPath, []complex128, error) {
		bt.SetDenseTransforms(dense)
		path := bootstrapPath{}
		if dense {
			path.CtSDiags = []int{n}
			path.StCDiags = []int{n}
			path.RotationKeys = len(bt.DenseRotations())
		} else {
			path.CtSDiags = ctsChain.DiagCounts()
			path.StCDiags = stcChain.DiagCounts()
			path.RotationKeys = len(bt.Rotations())
		}

		eval.ResetCounters()
		out, err := bt.Bootstrap(ct)
		if err != nil {
			return path, nil, err
		}
		ops := eval.Counters()
		path.Mult = ops.Mult
		path.FullRot = ops.FullRot
		path.HoistedRot = ops.HoistedRot
		path.Decompose = ops.Decompose
		path.ModDown = ops.ModDown
		path.KeySwitchTotal = ops.KeySwitchTotal()
		path.Level = out.Level
		vals := encoder.Decode(dec.DecryptNew(out))
		path.MaxErr = maxAbsErrC(vals, values)
		ctx.PutCiphertext(out)

		// Best of 2 timed runs (the warm-up above already primed the pools
		// and permutation caches).
		best := 0.0
		for i := 0; i < 2; i++ {
			start := time.Now()
			out, err := bt.Bootstrap(ct)
			if err != nil {
				return path, nil, err
			}
			ctx.PutCiphertext(out)
			if el := time.Since(start).Seconds() * 1e3; best == 0 || el < best {
				best = el
			}
		}
		path.TimeMs = best
		return path, vals, nil
	}

	if rep.Staged, stagedVals, err = runPath(false); err != nil {
		return nil, err
	}
	if rep.Dense, denseVals, err = runPath(true); err != nil {
		return nil, err
	}
	bt.SetDenseTransforms(false)

	rep.KeySwitchRatio = float64(rep.Dense.KeySwitchTotal) / float64(rep.Staged.KeySwitchTotal)
	rep.RotationKeyRatio = float64(rep.Dense.RotationKeys) / float64(rep.Staged.RotationKeys)
	rep.Speedup = rep.Dense.TimeMs / rep.Staged.TimeMs
	rep.DeltaErr = maxAbsErrC(stagedVals, denseVals)

	// Calibration cross-check: replay a trace shaped like the staged
	// software pipeline and compare its op mix against the measured one,
	// hoisted rotations counted separately (see internal/sim's package doc).
	inst := params.Instance{Name: "boot-sw", LogN: p.LogN, L: p.MaxLevel(), Dnum: p.Dnum,
		LogQ0: 55, LogQi: 45, LogP: 55}
	chebDepth := 1 // ceil(log2(SineDegree+1)) + 1, the EvalMod level consumption
	for 1<<(chebDepth-1) < bp.SineDegree+1 {
		chebDepth++
	}
	shape := workload.BootstrapShape{
		CtSStages:    rep.Staged.CtSDiags,
		StCStages:    rep.Staged.StCDiags,
		SineDegree:   bp.SineDegree,
		EvalModDepth: chebDepth,
	}
	mix := sim.MeasuredOpMix{
		Mult:       rep.Staged.Mult,
		FullRot:    rep.Staged.FullRot,
		HoistedRot: rep.Staged.HoistedRot,
		Decompose:  rep.Staged.Decompose,
	}
	rep.Calibration = sim.CrossCheckBootstrap(workload.BootstrapTrace(inst, shape), mix, 0)

	// The gates: equal precision budget, ≥1.5× fewer key-switch ops, and a
	// measured end-to-end speedup.
	const errBudget = 2e-2
	if rep.Staged.MaxErr > errBudget || rep.Dense.MaxErr > errBudget || rep.DeltaErr > errBudget {
		rep.Pass = false
	}
	if rep.Staged.MaxErr > 2*rep.Dense.MaxErr+1e-9 {
		rep.Pass = false
	}
	if rep.KeySwitchRatio < 1.5 {
		rep.Pass = false
	}
	if rep.Speedup <= 1.0 {
		rep.Pass = false
	}
	if rep.Staged.Level < 2 {
		rep.Pass = false
	}
	return rep, nil
}
